package ttdb

import (
	"fmt"

	"warp/internal/sqldb"
)

// repairState snapshots the generation state a repair-side operation runs
// under: the repair ("next") generation and the GC horizon. Snapshotting
// it once at operation entry lets the scope-locked internals run without
// re-acquiring db.mu (the lock ordering forbids that).
type repairState struct {
	next     int64
	gcBefore int64
}

// repairSnapshot returns the current repair state, or an error when no
// repair is open.
func (db *DB) repairSnapshot() (repairState, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.inRepair {
		return repairState{}, fmt.Errorf("ttdb: no repair in progress")
	}
	return repairState{next: db.currentGen.Load() + 1, gcBefore: db.gcBefore}, nil
}

// BeginRepair opens the next repair generation (§4.3): a logical fork of
// the current database contents. Repair-time operations (ReExec, Rollback)
// apply to the next generation while normal execution continues against the
// current one. It returns the generation number repair runs in.
func (db *DB) BeginRepair() (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.inRepair {
		return 0, fmt.Errorf("ttdb: repair already in progress")
	}
	db.inRepair = true
	return db.currentGen.Load() + 1, nil
}

// FinishRepair atomically makes the repaired generation current. The caller
// (WARP's core) is responsible for briefly suspending the web server and
// draining final requests first (§4.3), and for ensuring all repair workers
// have completed. Rows visible only to older generations are purged.
//
// The purge mutates only rows this repair demoted or created — every one
// of which was dirty-marked (at partition-shard granularity) by the
// repair operation that touched it — so the generation switch adds no
// dirt of its own and a repaired hot row marks a sub-table section, not
// the whole table (docs/persistence.md).
func (db *DB) FinishRepair() error {
	metas := db.lockAll()
	defer db.unlockAll(metas)
	if !db.inRepair {
		return fmt.Errorf("ttdb: no repair in progress")
	}
	cur := db.currentGen.Add(1)
	db.inRepair = false
	// Purge rows invisible from the new current generation onward.
	for _, m := range metas {
		del := &sqldb.Delete{
			Table: m.name,
			Where: &sqldb.BinaryExpr{Op: sqldb.OpLt, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(cur))},
		}
		if _, err := db.raw.ExecStmt(del, nil); err != nil {
			return err
		}
	}
	return nil
}

// AbortRepair discards the next generation, restoring the database to the
// state normal execution sees. WARP uses this when a user-initiated undo
// would cause conflicts for other users (§5.5). Like FinishRepair, it
// mutates only rows repair operations already dirty-marked.
func (db *DB) AbortRepair() error {
	metas := db.lockAll()
	defer db.unlockAll(metas)
	if !db.inRepair {
		return fmt.Errorf("ttdb: no repair in progress")
	}
	cur := db.currentGen.Load()
	next := cur + 1
	for _, m := range metas {
		// Rows created by repair vanish...
		del := &sqldb.Delete{
			Table: m.name,
			Where: &sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
		}
		if _, err := db.raw.ExecStmt(del, nil); err != nil {
			return err
		}
		// ...and rows demoted during repair become shared again.
		upd := &sqldb.Update{
			Table: m.name,
			Set:   []sqldb.Assignment{{Column: ColEndGen, Expr: sqldb.Lit(sqldb.Int(Infinity))}},
			Where: sqldb.Eq(ColEndGen, sqldb.Int(cur)),
		}
		if _, err := db.raw.ExecStmt(upd, nil); err != nil {
			return err
		}
	}
	db.inRepair = false
	return nil
}

// physicalRow captures one stored version with its bookkeeping columns.
// The column index is shared across every row of one decode batch, so
// decoding n versions costs one map, not n.
type physicalRow struct {
	cols  map[string]int // column name -> position in row (shared)
	row   []sqldb.Value
	rowID sqldb.Value
	start int64
	end   int64
	sGen  int64
	eGen  int64
}

// val returns the named column's value and whether the column exists.
func (pr *physicalRow) val(c string) (sqldb.Value, bool) {
	i, ok := pr.cols[c]
	if !ok {
		return sqldb.Value{}, false
	}
	return pr.row[i], true
}

// colVal is val without the presence flag (missing columns read NULL).
func (pr *physicalRow) colVal(c string) sqldb.Value {
	v, _ := pr.val(c)
	return v
}

func (db *DB) decodePhysical(m *tableMeta, res *sqldb.Result) []physicalRow {
	colOf := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		colOf[c] = i
	}
	out := make([]physicalRow, 0, len(res.Rows))
	for _, row := range res.Rows {
		pr := physicalRow{cols: colOf, row: row}
		pr.rowID = pr.colVal(m.rowIDCol)
		pr.start = pr.colVal(ColStartTime).AsInt()
		pr.end = pr.colVal(ColEndTime).AsInt()
		pr.sGen = pr.colVal(ColStartGen).AsInt()
		pr.eGen = pr.colVal(ColEndGen).AsInt()
		out = append(out, pr)
	}
	return out
}

// checkVersionsInScope verifies that every version's lock-column value
// falls inside the scope, before anything is mutated. A miss means the
// operation's statically derived scope was too narrow (a row's partition
// column was rewritten after the original record, or a uniqueness
// collision landed in a sibling partition); the entry point retries
// under the whole-table scope.
func (db *DB) checkVersionsInScope(m *tableMeta, versions []physicalRow, sc lockScope) error {
	if sc.whole || m.lockCol == "" {
		return nil
	}
	for _, pr := range versions {
		if err := sc.check(pr.colVal(m.lockCol).Key()); err != nil {
			return err
		}
	}
	return nil
}

// targetWhere builds a predicate that identifies exactly one physical row
// version by row ID and version interval.
func (db *DB) targetWhere(m *tableMeta, pr physicalRow) sqldb.Expr {
	return sqldb.And(
		sqldb.Eq(m.rowIDCol, pr.rowID),
		sqldb.Eq(ColStartTime, sqldb.Int(pr.start)),
		sqldb.Eq(ColEndTime, sqldb.Int(pr.end)),
		sqldb.Eq(ColStartGen, sqldb.Int(pr.sGen)),
		sqldb.Eq(ColEndGen, sqldb.Int(pr.eGen)),
	)
}

// demote confines a shared physical row to generations up to current, so
// the next generation no longer sees it (§4.4 preservation).
func (db *DB) demote(m *tableMeta, pr physicalRow) error {
	upd := &sqldb.Update{
		Table: m.name,
		Set:   []sqldb.Assignment{{Column: ColEndGen, Expr: sqldb.Lit(sqldb.Int(db.currentGen.Load()))}},
		Where: db.targetWhere(m, pr),
	}
	res, err := db.raw.ExecStmt(upd, nil)
	if err != nil {
		return err
	}
	if res.Affected != 1 {
		return fmt.Errorf("ttdb: demote targeted %d rows in %s, want 1", res.Affected, m.name)
	}
	return nil
}

// insertCopy inserts a copy of pr with the given version overrides.
func (db *DB) insertCopy(m *tableMeta, pr physicalRow, end int64, sGen, eGen int64) error {
	cols := db.physicalColumns(m)
	ins := &sqldb.Insert{Table: m.name, Columns: cols}
	vals := make([]sqldb.Expr, len(cols))
	for i, c := range cols {
		v := pr.colVal(c)
		switch c {
		case ColEndTime:
			v = sqldb.Int(end)
		case ColStartGen:
			v = sqldb.Int(sGen)
		case ColEndGen:
			v = sqldb.Int(eGen)
		}
		vals[i] = sqldb.Lit(v)
	}
	ins.Rows = [][]sqldb.Expr{vals}
	_, err := db.raw.ExecStmt(ins, nil)
	return err
}

// deletePhysical removes one physical row version outright.
func (db *DB) deletePhysical(m *tableMeta, pr physicalRow) error {
	del := &sqldb.Delete{Table: m.name, Where: db.targetWhere(m, pr)}
	res, err := db.raw.ExecStmt(del, nil)
	if err != nil {
		return err
	}
	if res.Affected != 1 {
		return fmt.Errorf("ttdb: delete targeted %d rows in %s, want 1", res.Affected, m.name)
	}
	return nil
}

// scopeForRows derives the lock scope for operating on the given rows:
// the lock-column keys of every version of every row, from an unlocked
// pre-scan of the raw engine. The pre-scan may go stale before the scope
// is acquired; the scope checks inside the locked operation catch that
// and escalate, so staleness costs a retry, never correctness.
func (db *DB) scopeForRows(m *tableMeta, rowIDs []sqldb.Value) lockScope {
	if db.coarseLocks.Load() || m.lockCol == "" || len(rowIDs) == 0 {
		return wholeScope()
	}
	list := make([]sqldb.Expr, len(rowIDs))
	for i, id := range rowIDs {
		list[i] = sqldb.Lit(id)
	}
	sel := &sqldb.Select{
		Items: []sqldb.SelectItem{{Expr: sqldb.Col(m.lockCol)}},
		Table: m.name,
		Where: &sqldb.InExpr{Expr: sqldb.Col(m.rowIDCol), List: list},
	}
	res, err := db.raw.ExecStmt(sel, nil)
	if err != nil {
		return wholeScope()
	}
	keys := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		keys = append(keys, row[0].Key())
	}
	return db.maybeCoalesce(m, keyScope(keys))
}

// RollbackRow rolls back a single row (named by row ID) to time t in the
// repair generation (§4.1): versions from t onward disappear from the next
// generation, and the version covering t becomes live again. Versions
// shared with the current generation are preserved for it by demotion.
// It returns the partitions whose contents changed.
func (db *DB) RollbackRow(table string, rowID sqldb.Value, t int64) ([]Partition, error) {
	return db.RollbackRows(table, []sqldb.Value{rowID}, t)
}

// rollbackRowLocked is the per-row rollback, run under a scope covering
// the row's lock-column keys. Every row it would mutate is verified
// against the scope before any mutation, so an errScopeConflict return
// leaves the table untouched by this row's rollback and the caller can
// retry under a wider scope; a completed rollback re-run under the wider
// scope is a no-op.
func (db *DB) rollbackRowLocked(m *tableMeta, rowID sqldb.Value, t int64, st repairState, sc lockScope) ([]Partition, error) {
	if t <= st.gcBefore {
		return nil, fmt.Errorf("ttdb: rollback to %d is beyond the GC horizon %d", t, st.gcBefore)
	}
	next := st.next

	// All versions of this row visible anywhere in the next generation.
	where := sqldb.And(
		sqldb.Eq(m.rowIDCol, rowID),
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
		&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(next))},
	)
	res, err := db.selectPhysical(m, where, nil)
	if err != nil {
		return nil, err
	}
	versions := db.decodePhysical(m, res)
	if err := db.checkVersionsInScope(m, versions, sc); err != nil {
		return nil, err
	}

	set := NewPartitionSet()
	var keep []physicalRow
	for _, pr := range versions {
		for _, p := range m.rowPartitions(pr.colVal) {
			set.Add(p)
		}
		if pr.start < t {
			keep = append(keep, pr)
		}
	}
	// Revive the version covering t, if it was closed; find it before
	// mutating so the revival's uniqueness colliders can be scope-checked
	// up front.
	var latest *physicalRow
	for i := range keep {
		if latest == nil || keep[i].start > latest.start {
			latest = &keep[i]
		}
	}
	revive := latest != nil && latest.end != Infinity && latest.end >= t
	var colliders []collider
	if revive {
		// The revival can collide with a row inserted later under the same
		// uniqueness key: the §6 case where an INSERT's success changes
		// during repair. Probe once: the set is verified against the scope
		// before any mutation, and the same set is resolved after the main
		// row's versions are cleared (clearing them cannot add or remove
		// colliders — the probe already excludes the main row).
		var err error
		colliders, err = db.revivalColliders(m, *latest, st)
		if err != nil {
			return nil, err
		}
		for _, other := range colliders {
			if err := db.checkVersionsInScope(m, other.versions, sc); err != nil {
				return nil, err
			}
		}
	}

	db.markDirtyScope(m, sc)
	for _, pr := range versions {
		if pr.start < t {
			continue
		}
		// This version vanishes from the next generation.
		if pr.sGen >= next {
			if err := db.deletePhysical(m, pr); err != nil {
				return nil, err
			}
		} else {
			if err := db.demote(m, pr); err != nil {
				return nil, err
			}
		}
	}
	if revive {
		if err := db.resolveRevivalCollisions(m, colliders, st, set, sc); err != nil {
			return nil, err
		}
		if latest.sGen >= next {
			upd := &sqldb.Update{
				Table: m.name,
				Set:   []sqldb.Assignment{{Column: ColEndTime, Expr: sqldb.Lit(sqldb.Int(Infinity))}},
				Where: db.targetWhere(m, *latest),
			}
			if _, err := db.raw.ExecStmt(upd, nil); err != nil {
				return nil, err
			}
		} else {
			if err := db.demote(m, *latest); err != nil {
				return nil, err
			}
			if err := db.insertCopy(m, *latest, Infinity, next, Infinity); err != nil {
				return nil, err
			}
		}
	}
	// Index the rollback itself: the partitions' contents changed at t.
	m.indexVersionEvent(set.Slice(), rowID, t)
	return set.Slice(), nil
}

// collider is one row whose live next-generation version shares a
// uniqueness key with a row about to be revived.
type collider struct {
	rowID    sqldb.Value
	versions []physicalRow
}

// revivalColliders probes (read-only) for live next-generation rows that
// share a uniqueness key with pr, returning each with all of its
// next-generation-visible versions.
func (db *DB) revivalColliders(m *tableMeta, pr physicalRow, st repairState) ([]collider, error) {
	next := st.next
	_, uniques, err := db.raw.Schema(m.name)
	if err != nil {
		return nil, err
	}
	var out []collider
	seen := make(map[string]bool)
	for _, u := range uniques {
		// Build the live-collision probe over the constraint's application
		// columns (the version columns were appended by createTable).
		var conds []sqldb.Expr
		usable := true
		for _, col := range u.Columns {
			switch col {
			case ColEndTime, ColEndGen:
				continue
			case ColStartTime, ColStartGen:
				usable = false
			default:
				v, ok := pr.val(col)
				if !ok || v.IsNull() {
					usable = false
				} else {
					conds = append(conds, sqldb.Eq(col, v))
				}
			}
		}
		if !usable || len(conds) == 0 {
			continue
		}
		where := sqldb.And(append(conds,
			sqldb.Eq(ColEndTime, sqldb.Int(Infinity)),
			&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
			&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(next))})...)
		res, err := db.selectPhysical(m, where, nil)
		if err != nil {
			return nil, err
		}
		for _, other := range db.decodePhysical(m, res) {
			if other.rowID.Equal(pr.rowID) || seen[other.rowID.Key()] {
				continue
			}
			seen[other.rowID.Key()] = true
			vWhere := sqldb.And(
				sqldb.Eq(m.rowIDCol, other.rowID),
				&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
				&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(next))},
			)
			vRes, err := db.selectPhysical(m, vWhere, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, collider{rowID: other.rowID, versions: db.decodePhysical(m, vRes)})
		}
	}
	return out, nil
}

// resolveRevivalCollisions rolls back the probed live next-generation
// rows that share a uniqueness key with the row about to be revived
// (§6). Each collider is rolled back to before its first appearance, so
// in the repaired timeline its insert fails; its own rollback keeps no
// versions, so it never revives or recurses. The colliders' partitions
// are added to dirt so the inserts that created them re-execute and
// observe their changed (now failing) outcome.
func (db *DB) resolveRevivalCollisions(m *tableMeta, colliders []collider, st repairState, dirt *PartitionSet, sc lockScope) error {
	for _, other := range colliders {
		first := int64(0)
		for i, pr := range other.versions {
			if i == 0 || pr.start < first {
				first = pr.start
			}
		}
		ps, err := db.rollbackRowLocked(m, other.rowID, first, st, sc)
		if err != nil {
			return err
		}
		dirt.AddAll(ps)
	}
	return nil
}

// RollbackRows rolls back several rows of one table to time t. The scope
// is derived from the rows' own lock-column keys, so rollbacks of rows in
// disjoint partitions proceed concurrently; a rollback that escapes its
// derived scope retries under the whole-table scope (completed per-row
// rollbacks are idempotent, so the retry re-converges).
func (db *DB) RollbackRows(table string, rowIDs []sqldb.Value, t int64) ([]Partition, error) {
	st, err := db.repairSnapshot()
	if err != nil {
		return nil, err
	}
	m, err := db.meta(table)
	if err != nil {
		return nil, err
	}
	sc := db.scopeForRows(m, rowIDs)
	// The set accumulates across an escalation retry: per-row rollbacks
	// completed in a narrow-scope attempt stay applied (the retry re-runs
	// them as no-ops), so their dirt — including uniqueness-collider
	// rollbacks the no-op re-run will not re-probe — must not be lost.
	set := NewPartitionSet()
	for {
		m.locks.lock(sc)
		err := func() error {
			for _, id := range rowIDs {
				ps, err := db.rollbackRowLocked(m, id, t, st, sc)
				if err != nil {
					return err
				}
				set.AddAll(ps)
			}
			return nil
		}()
		m.locks.unlock(sc)
		if err == errScopeConflict && !sc.whole {
			scopeEscalations.Inc()
			sc = wholeScope()
			continue
		}
		if err != nil {
			return nil, err
		}
		return set.Slice(), nil
	}
}

// ReExec re-executes a query at its original time t in the repair
// generation (§4.4). For writes it performs the paper's two-phase
// re-execution (§4.2): it computes the new matching row set, rolls back
// both the original and the new rows to just before t, and then executes
// the write in the next generation. orig is the record from the original
// execution, or nil for a query with no original counterpart (for example,
// a patched application run issuing a brand-new query).
//
// The returned Record describes the re-executed query; its WritePartitions
// include everything touched by rollback, which the repair controller uses
// for dependency propagation.
func (db *DB) ReExec(src string, params []sqldb.Value, t int64, orig *Record) (*sqldb.Result, *Record, error) {
	cs, err := db.stmts.Get(src)
	if err != nil {
		return nil, nil, err
	}
	return db.reExecStmt(cs.Stmt, cs, params, t, orig)
}

// ReExecPrepared is ReExec for a cached statement handle: repair replay
// re-executes each recorded query without re-parsing or re-stringifying
// its SQL (the handle carries both the AST and the canonical text).
func (db *DB) ReExecPrepared(cs *sqldb.CachedStmt, params []sqldb.Value, t int64, orig *Record) (*sqldb.Result, *Record, error) {
	return db.reExecStmt(cs.Stmt, cs, params, t, orig)
}

// origScope derives the lock-column keys the original record's write set
// touched — the rows a two-phase re-execution must roll back.
func origScope(m *tableMeta, orig *Record) lockScope {
	if orig == nil {
		return keyScope(nil)
	}
	var keys []string
	for _, p := range orig.WritePartitions {
		if p.IsWholeTable() {
			return wholeScope()
		}
		if p.Column == m.lockCol {
			keys = append(keys, p.Key)
		}
	}
	if len(keys) == 0 && len(orig.WriteRowIDs) > 0 {
		// Rows were written but no lock-column partition recorded:
		// cannot bound the rollback.
		return wholeScope()
	}
	return keyScope(keys)
}

// ReExecStmt is ReExec for a parsed statement. Re-executions on disjoint
// partition scopes — different tables, or disjoint lock-column keys of one
// table — run in parallel; the scope is held for the full two-phase span
// so a re-execution is atomic with respect to overlapping operations.
func (db *DB) ReExecStmt(stmt sqldb.Statement, params []sqldb.Value, t int64, orig *Record) (*sqldb.Result, *Record, error) {
	return db.reExecStmt(stmt, nil, params, t, orig)
}

func (db *DB) reExecStmt(stmt sqldb.Statement, cs *sqldb.CachedStmt, params []sqldb.Value, t int64, orig *Record) (*sqldb.Result, *Record, error) {
	st, err := db.repairSnapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("ttdb: ReExec outside repair")
	}
	db.clock.AdvanceTo(t)

	run := func(table string, fn func(m *tableMeta, sc lockScope, dirt *PartitionSet) (*sqldb.Result, *Record, error)) (*sqldb.Result, *Record, error) {
		m, err := db.meta(table)
		if err != nil {
			return nil, nil, err
		}
		sc := db.maybeCoalesce(m, m.effectiveScope(db, m.scopeForStmt(stmt, params).merge(origScope(m, orig))))
		// dirt accumulates across an escalation retry: rollbacks completed
		// in a narrow-scope attempt stay applied (the retry re-runs them as
		// no-ops), so their partitions — including uniqueness-collider
		// rollbacks the no-op re-run will not re-probe — must survive into
		// the returned record's write set.
		dirt := NewPartitionSet()
		for {
			m.locks.lock(sc)
			res, rec, err := fn(m, sc, dirt)
			m.locks.unlock(sc)
			if err == errScopeConflict && !sc.whole {
				// The statically derived scope was too narrow (see
				// locks.go); fall back to the table lock and re-run. No
				// mutation escaped the narrow scope, and completed row
				// rollbacks within it are idempotent under the retry.
				scopeEscalations.Inc()
				sc = wholeScope()
				continue
			}
			return res, rec, err
		}
	}

	switch s := stmt.(type) {
	case *sqldb.Insert:
		return run(s.Table, func(m *tableMeta, sc lockScope, dirt *PartitionSet) (*sqldb.Result, *Record, error) {
			return db.reExecInsert(s, cs, params, t, st, orig, m, sc, dirt)
		})
	case *sqldb.Update:
		return run(s.Table, func(m *tableMeta, sc lockScope, dirt *PartitionSet) (*sqldb.Result, *Record, error) {
			return db.reExecWrite(stmt, cs, s.Table, s.Where, params, t, st, orig, m, sc, dirt)
		})
	case *sqldb.Delete:
		return run(s.Table, func(m *tableMeta, sc lockScope, dirt *PartitionSet) (*sqldb.Result, *Record, error) {
			return db.reExecWrite(stmt, cs, s.Table, s.Where, params, t, st, orig, m, sc, dirt)
		})
	default:
		// Reads re-execute at their original time; DDL during repair
		// replays as-is in the shared schema space.
		m, sc, unlock, err := db.lockFor(stmt, params)
		if err != nil {
			return nil, nil, err
		}
		defer unlock()
		return db.execAt(stmt, cs, params, t, st.next, orig, m, sc)
	}
}

func (db *DB) reExecInsert(s *sqldb.Insert, cs *sqldb.CachedStmt, params []sqldb.Value, t int64, st repairState, orig *Record, m *tableMeta, sc lockScope, dirt *PartitionSet) (*sqldb.Result, *Record, error) {
	db.markDirtyScope(m, sc)
	if orig != nil {
		for _, id := range orig.WriteRowIDs {
			ps, err := db.rollbackRowLocked(m, id, t, st, sc)
			if err != nil {
				return nil, nil, err
			}
			dirt.AddAll(ps)
		}
	}
	res, rec, err := db.execAt(s, cs, params, t, st.next, orig, m, sc)
	if err != nil && rec == nil {
		return nil, nil, err
	}
	if rec != nil {
		set := NewPartitionSet()
		set.AddAll(rec.WritePartitions)
		set.AddAll(dirt.Slice())
		rec.WritePartitions = set.Slice()
	}
	return res, rec, err
}

// reExecWrite implements two-phase re-execution for UPDATE and DELETE.
func (db *DB) reExecWrite(stmt sqldb.Statement, cs *sqldb.CachedStmt, table string, where sqldb.Expr, params []sqldb.Value, t int64, st repairState, orig *Record, m *tableMeta, sc lockScope, dirt *PartitionSet) (*sqldb.Result, *Record, error) {
	db.markDirtyScope(m, sc) // phases B/C mutate even when the final exec fails
	next := st.next

	// Phase A: find the rows the new WHERE clause matches at time t in the
	// repair generation.
	var userWhere sqldb.Expr
	if where != nil {
		userWhere = where.CloneExpr()
	}
	sel := &sqldb.Select{
		Items: []sqldb.SelectItem{{Expr: sqldb.Col(m.rowIDCol)}},
		Table: table,
		Where: sqldb.And(userWhere, liveWhere(t, next)),
	}
	newRes, err := db.raw.ExecStmt(sel, params)
	if err != nil {
		return nil, nil, err
	}

	// Phase B: roll back original ∪ new row IDs to just before t.
	seen := make(map[string]bool)
	var all []sqldb.Value
	if orig != nil {
		for _, id := range orig.WriteRowIDs {
			if !seen[id.Key()] {
				seen[id.Key()] = true
				all = append(all, id)
			}
		}
	}
	for _, row := range newRes.Rows {
		if !seen[row[0].Key()] {
			seen[row[0].Key()] = true
			all = append(all, row[0])
		}
	}
	for _, id := range all {
		ps, err := db.rollbackRowLocked(m, id, t, st, sc)
		if err != nil {
			return nil, nil, err
		}
		dirt.AddAll(ps)
	}

	// Phase C: execute the write at t in the repair generation, preserving
	// any still-shared matched rows for the current generation first.
	if err := db.preserveSharedMatches(m, userWhere, params, t, next); err != nil {
		return nil, nil, err
	}
	res, rec, err := db.execAt(stmt, cs, params, t, next, orig, m, sc)
	if err != nil && rec == nil {
		return nil, nil, err
	}
	if rec != nil {
		set := NewPartitionSet()
		set.AddAll(rec.WritePartitions)
		set.AddAll(dirt.Slice())
		rec.WritePartitions = set.Slice()
	}
	return res, rec, err
}

// preserveSharedMatches implements §4.4: before a repair-generation write
// touches rows still shared with the current generation, each such row is
// demoted and a next-generation copy takes its place.
func (db *DB) preserveSharedMatches(m *tableMeta, userWhere sqldb.Expr, params []sqldb.Value, t, next int64) error {
	var w sqldb.Expr
	if userWhere != nil {
		w = userWhere.CloneExpr()
	}
	where := sqldb.And(w, liveWhere(t, next),
		&sqldb.BinaryExpr{Op: sqldb.OpLt, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))})
	res, err := db.selectPhysical(m, where, params)
	if err != nil {
		return err
	}
	for _, pr := range db.decodePhysical(m, res) {
		if err := db.demote(m, pr); err != nil {
			return err
		}
		if err := db.insertCopy(m, pr, pr.end, next, Infinity); err != nil {
			return err
		}
	}
	return nil
}

// GC discards row versions that ended before the horizon, in sync with the
// action history graph's garbage collection (§4.2). Rollback to a time at
// or before the horizon becomes impossible afterwards, and partition-index
// entries older than the horizon are pruned. GC is refused while a repair
// is in progress.
func (db *DB) GC(beforeTime int64) error {
	metas := db.lockAll()
	defer db.unlockAll(metas)
	if db.inRepair {
		return fmt.Errorf("ttdb: GC during repair")
	}
	cur := db.currentGen.Load()
	db.markAllDirty() // GC rewrites every table's physical row set
	for _, m := range metas {
		del := &sqldb.Delete{
			Table: m.name,
			Where: &sqldb.BinaryExpr{
				Op:   sqldb.OpOr,
				Left: &sqldb.BinaryExpr{Op: sqldb.OpLt, Left: sqldb.Col(ColEndTime), Right: sqldb.Lit(sqldb.Int(beforeTime))},
				Right: &sqldb.BinaryExpr{
					Op: sqldb.OpLt, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(cur)),
				},
			},
		}
		if _, err := db.raw.ExecStmt(del, nil); err != nil {
			return err
		}
		m.pruneIndexBefore(beforeTime)
	}
	if beforeTime > db.gcBefore {
		db.gcBefore = beforeTime
	}
	if db.obs != nil {
		db.obs.Collected(beforeTime)
	}
	return nil
}
