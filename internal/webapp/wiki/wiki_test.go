package wiki

import (
	"strings"
	"testing"

	"warp/internal/browser"
	"warp/internal/core"
)

// setup installs GoWiki on a fresh WARP deployment with a few users and
// pages.
func setup(t *testing.T) (*core.Warp, *App) {
	t.Helper()
	w := core.New(core.Config{Seed: 7})
	a, err := Install(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []struct {
		name  string
		admin bool
	}{{"admin", true}, {"alice", false}, {"bob", false}, {"mallory", false}} {
		if err := a.CreateUser(u.name, "pw-"+u.name, u.admin); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{"Main", "Sandbox", "AlicePage"} {
		if err := a.CreatePage(p, "original content of "+p, false); err != nil {
			t.Fatal(err)
		}
	}
	return w, a
}

// login drives the login flow through the browser.
func login(t *testing.T, b *browser.Browser, user string) {
	t.Helper()
	p := b.Open("/login.php")
	if err := p.TypeInto("user", user); err != nil {
		t.Fatal(err)
	}
	if err := p.TypeInto("password", "pw-"+user); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(0); err != nil {
		t.Fatal(err)
	}
	if b.Cookies()["sid"] == "" {
		t.Fatalf("login failed for %s", user)
	}
}

// editPage drives a page edit through the browser and returns the final
// page.
func editPage(t *testing.T, b *browser.Browser, title, newContent string) *browser.Page {
	t.Helper()
	p := b.Open("/edit.php?title=" + title)
	if err := p.TypeInto("content", newContent); err != nil {
		t.Fatalf("edit %s: %v", title, err)
	}
	p2, err := p.Submit(0)
	if err != nil {
		t.Fatal(err)
	}
	return p2
}

func TestBrowseLoginEdit(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()

	p := b.Open("/index.php?title=Main")
	if !strings.Contains(p.DOM.InnerText(), "original content of Main") {
		t.Fatalf("page render: %q", p.DOM.InnerText())
	}
	login(t, b, "alice")
	editPage(t, b, "Main", "hello from alice")
	got, err := a.PageContent("Main")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello from alice" {
		t.Fatalf("content = %q", got)
	}
	if ed, _ := a.PageEditor("Main"); ed != "alice" {
		t.Fatalf("editor = %q", ed)
	}
	// The visit logs were uploaded.
	if w.Storage().PageVisits < 3 {
		t.Fatalf("visits logged = %d", w.Storage().PageVisits)
	}
}

func TestProtectionACL(t *testing.T) {
	w, a := setup(t)
	if err := a.CreatePage("Secret", "classified", true); err != nil {
		t.Fatal(err)
	}
	b := w.NewBrowser()
	login(t, b, "bob")
	p := b.Open("/edit.php?title=Secret")
	if !strings.Contains(p.DOM.InnerText(), "permission") {
		t.Fatalf("expected denial: %q", p.DOM.InnerText())
	}
	if err := a.Grant("Secret", "bob"); err != nil {
		t.Fatal(err)
	}
	editPage(t, b, "Secret", "bob was here")
	if got, _ := a.PageContent("Secret"); got != "bob was here" {
		t.Fatalf("content = %q", got)
	}
}

func TestEditSanitizesOnSave(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	login(t, b, "alice")
	editPage(t, b, "Main", "<script>warpjs: get /index.php</script>")
	got, _ := a.PageContent("Main")
	if strings.Contains(got, "<script>") {
		t.Fatalf("content not sanitized: %q", got)
	}
}

func TestSQLInjectionWorksUnpatched(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	// The paper's attack: append attack text to every page via thelang.
	b.Open("/maintenance.php?thelang=" + urlQuery("en', content = content || 'ATTACK"))
	got, _ := a.PageContent("Main")
	if !strings.HasSuffix(got, "ATTACK") {
		t.Fatalf("injection failed: %q", got)
	}
	got, _ = a.PageContent("Sandbox")
	if !strings.HasSuffix(got, "ATTACK") {
		t.Fatalf("injection should hit every page: %q", got)
	}
	_ = w
}

func urlQuery(s string) string {
	r := strings.NewReplacer(" ", "%20", "'", "%27", "|", "%7C", "<", "%3C", ">", "%3E", "=", "%3D", "&", "%26", ";", "%3B", "{", "%7B", "}", "%7D", "/", "%2F", "?", "%3F", "+", "%2B", "\n", "%0A", "\"", "%22", "#", "%23")
	return r.Replace(s)
}

//
// End-to-end repair scenarios
//

// TestRetroPatchStoredXSS runs the paper's §1 worst-case scenario end to
// end: a stored XSS payload reaches a victim's browser, acts with the
// victim's privileges, and the administrator later repairs everything by
// retroactively patching the vulnerable file.
func TestRetroPatchStoredXSS(t *testing.T) {
	w, a := setup(t)

	// Mallory stores the payload through the vulnerable block tool. The
	// payload, when executed in a victim's browser, appends attacker text
	// to AlicePage through the victim's own session.
	attacker := w.NewBrowser()
	login(t, attacker, "mallory")
	payload := `<script>warpjs: appendedit /edit.php?title=AlicePage content  +PWNED</script>`
	attacker.Open("/block.php?ip=" + urlQuery(payload))

	// Alice, the victim, views the infected block log; the payload runs in
	// her browser and corrupts AlicePage.
	alice := w.NewBrowser()
	login(t, alice, "alice")
	alice.Open("/blocklog.php")
	got, _ := a.PageContent("AlicePage")
	if !strings.Contains(got, "+PWNED") {
		t.Fatalf("attack did not land: %q", got)
	}

	// Alice also does legitimate work afterwards.
	editPage(t, alice, "Sandbox", "alice legit edit")

	// Bob browses unrelated pages.
	bob := w.NewBrowser()
	login(t, bob, "bob")
	bob.Open("/index.php?title=Main")

	// The administrator retroactively applies the CVE-2009-4589 patch.
	vuln, _ := a.VulnerabilityByKind("Stored XSS")
	rep, err := w.RetroPatch(vuln.File, vuln.Patch)
	if err != nil {
		t.Fatal(err)
	}

	// The attack's effect is gone; legitimate work survives.
	got, _ = a.PageContent("AlicePage")
	if strings.Contains(got, "PWNED") {
		t.Fatalf("attack persisted after repair: %q", got)
	}
	if got != "original content of AlicePage" {
		t.Fatalf("page not restored: %q", got)
	}
	if got, _ := a.PageContent("Sandbox"); got != "alice legit edit" {
		t.Fatalf("legitimate edit lost: %q", got)
	}
	// The block log entry is now sanitized.
	res, _, err := w.DB.Exec("SELECT note FROM blocklog")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || strings.Contains(res.Rows[0][0].AsText(), "<script>") {
		t.Fatalf("block log not sanitized: %v", res.Rows)
	}
	// No user conflicts: WARP disentangled everything automatically.
	if n := rep.UsersWithConflicts(); n != 0 {
		t.Fatalf("conflicts = %d (%+v)", n, rep.Conflicts)
	}
	// Repair was selective: Bob's unrelated browsing was not replayed.
	if rep.PageVisitsReplayed >= rep.TotalPageVisits {
		t.Fatalf("repair replayed everything: %d/%d", rep.PageVisitsReplayed, rep.TotalPageVisits)
	}
}

// TestRetroPatchPreservesVictimEditViaMerge is the §8.3 append-only case:
// the victim edited a page that the attack had appended to; repair removes
// the attack text and re-applies the victim's edit by three-way merge.
func TestRetroPatchPreservesVictimEditViaMerge(t *testing.T) {
	w, a := setup(t)

	attacker := w.NewBrowser()
	login(t, attacker, "mallory")
	payload := `<script>warpjs: appendedit /edit.php?title=AlicePage content \nATTACKLINE</script>`
	attacker.Open("/block.php?ip=" + urlQuery(payload))

	alice := w.NewBrowser()
	login(t, alice, "alice")
	alice.Open("/blocklog.php") // infected; appends ATTACKLINE to AlicePage

	// Alice edits the (corrupted) page: she appends her own line after the
	// attack line.
	cur, _ := a.PageContent("AlicePage")
	if !strings.Contains(cur, "ATTACKLINE") {
		t.Fatalf("attack did not land: %q", cur)
	}
	editPage(t, alice, "AlicePage", cur+"\nalice line")

	vuln, _ := a.VulnerabilityByKind("Stored XSS")
	rep, err := w.RetroPatch(vuln.File, vuln.Patch)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := a.PageContent("AlicePage")
	if strings.Contains(got, "ATTACKLINE") {
		t.Fatalf("attack text survived: %q", got)
	}
	if !strings.Contains(got, "alice line") {
		t.Fatalf("victim's edit lost: %q", got)
	}
	if n := rep.UsersWithConflicts(); n != 0 {
		t.Fatalf("unexpected conflicts: %+v", rep.Conflicts)
	}
}

// TestRetroPatchUnexploitedVulnerability: patching a bug nobody exploited
// must leave the database unchanged (repair idempotence).
func TestRetroPatchUnexploitedVulnerability(t *testing.T) {
	w, a := setup(t)
	alice := w.NewBrowser()
	login(t, alice, "alice")
	editPage(t, alice, "Main", "alice content")
	alice.Open("/blocklog.php")

	vuln, _ := a.VulnerabilityByKind("Stored XSS")
	rep, err := w.RetroPatch(vuln.File, vuln.Patch)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := a.PageContent("Main"); got != "alice content" {
		t.Fatalf("content changed: %q", got)
	}
	if n := rep.UsersWithConflicts(); n != 0 {
		t.Fatalf("conflicts on unexploited patch: %+v", rep.Conflicts)
	}
}

// TestUndoACLMistake is the paper's administrator-mistake scenario: the
// admin grants the wrong user access to a protected page, the user edits
// it, and the admin undoes the granting page visit. The user's edit is
// reverted and the user gets a conflict.
func TestUndoACLMistake(t *testing.T) {
	w, a := setup(t)
	if err := a.CreatePage("Secret", "classified", true); err != nil {
		t.Fatal(err)
	}

	admin := w.NewBrowser()
	login(t, admin, "admin")
	// The admin grants bob access through the protection form.
	grantForm := admin.Open("/acl.php?title=Secret")
	if err := grantForm.TypeInto("user", "bob"); err != nil {
		t.Fatal(err)
	}
	grantPost, err := grantForm.Submit(0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasACL("Secret", "bob") {
		t.Fatal("grant failed")
	}

	// Bob exploits his unexpected access.
	bob := w.NewBrowser()
	login(t, bob, "bob")
	editPage(t, bob, "Secret", "bob read the secrets")

	// The admin undoes the page visit whose POST made the grant.
	rep, err := w.UndoVisit(admin.ClientID, grantPost.Log.VisitID, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.HasACL("Secret", "bob") {
		t.Fatal("grant not undone")
	}
	if got, _ := a.PageContent("Secret"); got != "classified" {
		t.Fatalf("bob's edit not reverted: %q", got)
	}
	// Bob has a conflict: his edit no longer applies (§8.2: 1 user).
	if n := rep.UsersWithConflicts(); n != 1 {
		t.Fatalf("users with conflicts = %d (%+v)", n, rep.Conflicts)
	}
	if len(w.ConflictsFor(bob.ClientID)) == 0 {
		t.Fatal("bob's conflict not queued")
	}
}

// TestRetroPatchSQLInjection: the injection corrupts every page; repair
// restores them all and preserves post-attack legitimate edits.
func TestRetroPatchSQLInjection(t *testing.T) {
	w, a := setup(t)

	attacker := w.NewBrowser()
	attacker.Open("/maintenance.php?thelang=" + urlQuery("en', content = content || '<script>warpjs: get /index.php</script>"))
	if got, _ := a.PageContent("Main"); !strings.Contains(got, "script") {
		t.Fatalf("injection did not land: %q", got)
	}

	// Post-attack, alice edits Sandbox: her edit form shows the corrupted
	// content and she appends her own line below it.
	alice := w.NewBrowser()
	login(t, alice, "alice")
	cur, _ := a.PageContent("Sandbox")
	editPage(t, alice, "Sandbox", cur+"\nand alice")

	vuln, _ := a.VulnerabilityByKind("SQL injection")
	rep, err := w.RetroPatch(vuln.File, vuln.Patch)
	if err != nil {
		t.Fatal(err)
	}
	for _, title := range []string{"Main", "AlicePage"} {
		if got, _ := a.PageContent(title); strings.Contains(got, "script") {
			t.Fatalf("%s still corrupted: %q", title, got)
		}
	}
	got, _ := a.PageContent("Sandbox")
	if strings.Contains(got, "script") {
		t.Fatalf("Sandbox still corrupted: %q", got)
	}
	if !strings.Contains(got, "and alice") {
		t.Fatalf("alice's edit lost: %q", got)
	}
	if n := rep.UsersWithConflicts(); n != 0 {
		t.Fatalf("conflicts: %+v", rep.Conflicts)
	}
}

// TestRetroPatchReflectedXSS: a victim visits an attacker page that frames
// the vulnerable installer URL; the reflected payload edits a page with
// the victim's session. Patching the installer undoes it.
func TestRetroPatchReflectedXSS(t *testing.T) {
	w, a := setup(t)

	alice := w.NewBrowser()
	login(t, alice, "alice")
	reflURL := "/config/index.php?wgDBname=" + urlQuery(`<script>warpjs: appendedit /edit.php?title=Main content  REFLECTED</script>`)
	attackHTML := `<html><body>win a prize!<iframe src="` + reflURL + `"></iframe></body></html>`
	alice.OpenAttackerPage("http://evil.example/prize", attackHTML)
	if got, _ := a.PageContent("Main"); !strings.Contains(got, "REFLECTED") {
		t.Fatalf("reflected attack did not land: %q", got)
	}

	vuln, _ := a.VulnerabilityByKind("Reflected XSS")
	rep, err := w.RetroPatch(vuln.File, vuln.Patch)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := a.PageContent("Main"); strings.Contains(got, "REFLECTED") {
		t.Fatalf("attack persisted: %q", got)
	}
	if n := rep.UsersWithConflicts(); n != 0 {
		t.Fatalf("conflicts: %+v", rep.Conflicts)
	}
}

// TestRetroPatchClickjacking: a victim interacts with the wiki through an
// attacker's invisible iframe. After the X-Frame-Options patch the framed
// interaction cannot replay and the victim gets a conflict (Table 3:
// conflicts expected).
func TestRetroPatchClickjacking(t *testing.T) {
	w, a := setup(t)

	alice := w.NewBrowser()
	login(t, alice, "alice")
	attackHTML := `<html><body>click the bouncing cow!<iframe src="/edit.php?title=Main"></iframe></body></html>`
	p := alice.OpenAttackerPage("http://evil.example/cow", attackHTML)
	frame := p.Frames()[0]
	if frame.Blocked {
		t.Fatal("frame should load before the patch")
	}
	// Alice thinks she's playing a game; she actually edits Main.
	if err := frame.TypeInto("content", "cow clicked"); err != nil {
		t.Fatal(err)
	}
	if _, err := frame.Submit(0); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.PageContent("Main"); got != "cow clicked" {
		t.Fatalf("clickjack edit missing: %q", got)
	}

	vuln, _ := a.VulnerabilityByKind("Clickjacking")
	rep, err := w.RetroPatch(vuln.File, vuln.Patch)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := a.PageContent("Main"); got != "original content of Main" {
		t.Fatalf("clickjacked edit not undone: %q", got)
	}
	if n := rep.UsersWithConflicts(); n != 1 {
		t.Fatalf("users with conflicts = %d (%+v)", n, rep.Conflicts)
	}
	found := false
	for _, c := range rep.Conflicts {
		if c.Kind == browser.ConflictFrameBlocked {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected frame-blocked conflict: %+v", rep.Conflicts)
	}
}

// TestRetroPatchLoginCSRF: the attacker's page silently logs the victim in
// under the attacker's account; her edits land under his name. After the
// patch, the CSRF login is rejected on replay and her edits re-execute
// under her own session.
func TestRetroPatchLoginCSRF(t *testing.T) {
	w, a := setup(t)

	alice := w.NewBrowser()
	login(t, alice, "alice")
	// The attack: silently re-log the victim in as mallory.
	attackHTML := `<html><body>cute kittens<script>warpjs: post /login.php user=mallory&password=pw-mallory</script></body></html>`
	alice.OpenAttackerPage("http://evil.example/kittens", attackHTML)

	// Alice, believing she is herself, edits a page. It is attributed to
	// mallory.
	editPage(t, alice, "Sandbox", "alice thinks she wrote this")
	if ed, _ := a.PageEditor("Sandbox"); ed != "mallory" {
		t.Fatalf("CSRF should attribute edit to mallory, got %q", ed)
	}

	vuln, _ := a.VulnerabilityByKind("CSRF")
	if _, err := w.RetroPatch(vuln.File, vuln.Patch); err != nil {
		t.Fatal(err)
	}
	// The edit is preserved but re-attributed to alice (§8.2).
	if got, _ := a.PageContent("Sandbox"); got != "alice thinks she wrote this" {
		t.Fatalf("edit lost: %q", got)
	}
	if ed, _ := a.PageEditor("Sandbox"); ed != "alice" {
		t.Fatalf("edit should be re-attributed to alice, got %q", ed)
	}
	// Alice's diverged cookie is queued for invalidation (§5.3).
	if !w.PendingCookieInvalidation(alice.ClientID) {
		t.Fatal("cookie invalidation not queued")
	}
}
