package wiki

import (
	"strings"
	"testing"
)

// TestAnnotationInventory checks the §8.1 claim for GoWiki: running under
// WARP requires no handler changes, only per-table annotations — a row ID
// column assigned once and never overwritten, plus the columns queries
// filter on.
func TestAnnotationInventory(t *testing.T) {
	ann := Annotations()
	if len(ann) != len(Schema()) {
		t.Fatalf("%d annotations for %d tables; every table must be annotated",
			len(ann), len(Schema()))
	}
	for _, ddl := range Schema() {
		name := tableOf(ddl)
		spec, ok := ann[name]
		if !ok {
			t.Fatalf("table %s has no annotation", name)
		}
		// Declared columns must exist in the DDL.
		for _, col := range append([]string{spec.RowIDColumn}, spec.PartitionColumns...) {
			if col == "" {
				continue
			}
			if !strings.Contains(ddl, col) {
				t.Errorf("table %s: annotated column %q not in schema", name, col)
			}
		}
	}
	// The paper's own example (§4.1): pages uses the immutable page_id as
	// row ID and is partitioned by title and last editor.
	pages := ann["pages"]
	if pages.RowIDColumn != "page_id" {
		t.Fatalf("pages row ID = %q", pages.RowIDColumn)
	}
	want := map[string]bool{"title": true, "last_editor": true}
	for _, c := range pages.PartitionColumns {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Fatalf("pages partitions missing %v", want)
	}
}

func tableOf(ddl string) string {
	fields := strings.Fields(ddl)
	for i, f := range fields {
		if strings.EqualFold(f, "TABLE") && i+1 < len(fields) {
			// Skip an IF NOT EXISTS clause (the schema is idempotent so
			// setup replays against recovered deployments).
			if strings.EqualFold(fields[i+1], "IF") && i+4 < len(fields) {
				return fields[i+4]
			}
			return fields[i+1]
		}
	}
	return ""
}

// TestVulnerabilitiesMatchTable2 pins the Table 2 inventory: six entries,
// five with CVEs and patches, one administrator mistake repaired by undo.
func TestVulnerabilitiesMatchTable2(t *testing.T) {
	a := &App{}
	vulns := a.Vulnerabilities()
	if len(vulns) != 6 {
		t.Fatalf("vulnerabilities = %d, want 6", len(vulns))
	}
	wantCVEs := map[string]string{
		"Reflected XSS": "CVE-2009-0737",
		"Stored XSS":    "CVE-2009-4589",
		"CSRF":          "CVE-2010-1150",
		"Clickjacking":  "CVE-2011-0003",
		"SQL injection": "CVE-2004-2186",
		"ACL error":     "—",
	}
	for kind, cve := range wantCVEs {
		v, ok := a.VulnerabilityByKind(kind)
		if !ok {
			t.Fatalf("missing %s", kind)
		}
		if v.CVE != cve {
			t.Fatalf("%s: CVE %q, want %q", kind, v.CVE, cve)
		}
		if kind != "ACL error" && v.Patch.Entry == nil && v.Patch.Lib == nil {
			t.Fatalf("%s has no patch", kind)
		}
	}
	if _, ok := a.VulnerabilityByKind("Nope"); ok {
		t.Fatal("unknown kind matched")
	}
}
