package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout:
//
//	[8 bytes] magic "WARPSNAP"
//	[4 bytes] payload length (little-endian uint32)
//	[4 bytes] CRC-32C of the payload
//	[n bytes] payload
//
// Snapshots are written to a temporary file, fsynced, and renamed into
// place, so a crash mid-write leaves either the old snapshot or the new
// one — never a half-written file that validates.
var snapMagic = [8]byte{'W', 'A', 'R', 'P', 'S', 'N', 'A', 'P'}

// writeSnapshotFile atomically writes payload as the snapshot named path.
func writeSnapshotFile(path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[0:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshotFile validates and returns a snapshot's payload.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 || [8]byte(data[0:8]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s: bad header", ErrCorrupt, filepath.Base(path))
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	sum := binary.LittleEndian.Uint32(data[12:16])
	if n != len(data)-16 {
		return nil, fmt.Errorf("%w: snapshot %s: length mismatch", ErrCorrupt, filepath.Base(path))
	}
	payload := data[16:]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: snapshot %s: checksum failure", ErrCorrupt, filepath.Base(path))
	}
	return payload, nil
}

// syncDir fsyncs a directory so renames and removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
