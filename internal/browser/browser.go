// Package browser implements WARP's client browser simulator, the WARP
// browser extension, and the server-side re-execution browser (paper §5).
//
// The browser stands in for Firefox in the paper's prototype. It fetches
// pages through an injected transport (in-process calls into the WARP
// server), maintains a cookie jar, parses responses into DOM trees
// (internal/dom), executes page-embedded scripts, and hosts user
// interaction.
//
// The WARP extension behavior is built in: every HTTP request carries a
// ⟨client ID, visit ID, request ID⟩ tuple (§5.1), and every DOM-level user
// event — clicks, keyboard input into fields, form submissions — is
// recorded with the XPath of its target (§5.2) and uploaded to the server.
//
// Page scripts use a small command language ("warpjs") that stands in for
// JavaScript: scripts can issue GET and POST requests and perform
// read-modify-write page edits, which is exactly the capability the
// paper's XSS payloads need. Attack pages inject warpjs the way real
// attacks inject JavaScript; when a retroactive patch removes the
// injection, re-executing the page simply finds no script to run.
package browser

import (
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"sync"

	"warp/internal/dom"
	"warp/internal/httpd"
)

// Transport delivers one HTTP request to the server and returns its
// response. WARP's core wires this to the logging HTTP server.
type Transport func(*httpd.Request) *httpd.Response

// EventKind classifies recorded DOM-level events.
type EventKind uint8

// Event kinds.
const (
	EventInput  EventKind = iota // keyboard input into a text field
	EventClick                   // click on a link
	EventSubmit                  // form submission
	EventCheck                   // toggle a checkbox
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventInput:
		return "input"
	case EventClick:
		return "click"
	case EventSubmit:
		return "submit"
	case EventCheck:
		return "check"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one recorded DOM-level user event (§5.2).
type Event struct {
	Kind  EventKind
	XPath string // target element
	Base  string // EventInput: field value before the user's edit
	Value string // EventInput: field value after; EventCheck: "on"/"off"
}

// RequestTrace records one HTTP request issued during a page visit.
type RequestTrace struct {
	RequestID   int64
	Method      string
	URL         string
	FormEncoded string
	ReqFP       uint64 // request fingerprint
	RespFP      uint64 // response fingerprint
}

// VisitLog is the per-page-visit log the extension uploads to the server
// (§5.2): the page's identity, its frame relationship, recorded events,
// and the requests the page issued.
type VisitLog struct {
	ClientID    string
	VisitID     int64
	ParentVisit int64 // 0 when the visit did not originate from another page
	IsFrame     bool  // loaded as a sub-frame (iframe)
	URL         string
	Method      string
	FormEncoded string // main request form body, for standalone replay
	// Cookies is the browser's cookie jar when the visit started; the
	// server-side re-execution browser loads it when replaying the visit
	// standalone (§5.3).
	Cookies map[string]string
	// Time is the server's logical time when the log was uploaded; the
	// repair controller orders visit replays by it. Assigned server-side.
	Time int64
	// AttackerHTML is set for pages not served by the WARP-managed server
	// (the attacker's own site): the browser records the page content so
	// the visit can be re-executed. Server-hosted pages leave this empty.
	AttackerHTML string
	Events       []Event
	Requests     []RequestTrace
	Blocked      bool // frame load was refused (X-Frame-Options)

	// mu guards Events and Requests, which the browser grows in place
	// after the log was uploaded (the in-process §5.2 model: the server
	// holds the shared object and re-reads it on periodic re-sync). The
	// persistence layer's background checkpoints can encode the log
	// concurrently with a page load, so growth and encode serialize
	// through Lock/Unlock.
	mu sync.Mutex
}

// Lock takes the log's growth lock; see the mu field.
func (v *VisitLog) Lock() { v.mu.Lock() }

// Unlock releases the log's growth lock.
func (v *VisitLog) Unlock() { v.mu.Unlock() }

// ReplaceWith copies src's contents into v in place, preserving v's
// pointer identity (and lock): recovery's visit-log upsert refreshes
// the object the per-client stores already hold. src must not be
// shared with a live browser.
func (v *VisitLog) ReplaceWith(src *VisitLog) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.ClientID = src.ClientID
	v.VisitID = src.VisitID
	v.ParentVisit = src.ParentVisit
	v.IsFrame = src.IsFrame
	v.URL = src.URL
	v.Method = src.Method
	v.FormEncoded = src.FormEncoded
	v.Cookies = src.Cookies
	v.Time = src.Time
	v.AttackerHTML = src.AttackerHTML
	v.Events = src.Events
	v.Requests = src.Requests
	v.Blocked = src.Blocked
}

// ApproxLogBytes estimates the uploaded log size (Table 6 accounting).
func (v *VisitLog) ApproxLogBytes() int {
	n := len(v.ClientID) + len(v.URL) + len(v.Method) + len(v.FormEncoded) + len(v.AttackerHTML) + 24
	for _, e := range v.Events {
		n += 1 + len(e.XPath) + len(e.Base) + len(e.Value)
	}
	for _, r := range v.Requests {
		n += 16 + len(r.Method) + len(r.URL) + len(r.FormEncoded) + 16
	}
	return n
}

// Browser is one simulated client browser.
type Browser struct {
	ClientID string
	// HasExtension controls whether the WARP extension is active: without
	// it, no IDs are attached and no logs are uploaded (§2.3, Table 4's
	// "no extension" configuration).
	HasExtension bool

	transport Transport
	upload    func(*VisitLog)
	cookies   map[string]string
	visitSeq  int64
}

// New creates a browser. upload receives visit logs as they are created
// (the extension's log upload, §5.2); it may be nil. rng names the source
// used to draw the client ID — "a long random value" (§5.1).
func New(transport Transport, upload func(*VisitLog), rng *rand.Rand) *Browser {
	return &Browser{
		ClientID:     fmt.Sprintf("client-%016x", rng.Uint64()),
		HasExtension: true,
		transport:    transport,
		upload:       upload,
		cookies:      map[string]string{},
	}
}

// Cookies returns a copy of the browser's cookie jar.
func (b *Browser) Cookies() map[string]string {
	out := make(map[string]string, len(b.cookies))
	for k, v := range b.cookies {
		out[k] = v
	}
	return out
}

// SetCookie sets a cookie directly (used by tests and by cookie
// invalidation, §5.3).
func (b *Browser) SetCookie(name, value string) { b.cookies[name] = value }

// ClearCookie removes a cookie.
func (b *Browser) ClearCookie(name string) { delete(b.cookies, name) }

// Page is one open page in a browser frame.
type Page struct {
	Browser *Browser
	Log     *VisitLog
	DOM     *dom.Node
	URL     string
	Blocked bool

	frames []*Page
	reqSeq int64

	// replayOrig is set on server-side re-execution pages: the original
	// visit log, used to match re-issued requests to their original
	// request IDs (§5.3).
	replayOrig    *VisitLog
	replayMatched map[int]bool
}

// roundTrip sends a request with cookies and extension headers, applies
// cookie changes, and traces the exchange in the visit log.
func (p *Page) roundTrip(method, rawURL string, form url.Values) (*httpd.Response, *httpd.Request) {
	req := httpd.NewRequest(method, rawURL)
	if form != nil {
		req.Form = form
	}
	for k, v := range p.Browser.cookies {
		req.Cookies[k] = v
	}
	p.reqSeq++
	requestID := p.reqSeq
	if p.replayOrig != nil {
		// Re-execution extension: match this request to an original one so
		// it carries the same request ID (§5.3, §6).
		if rid, ok := p.matchOriginalRequest(method, rawURL, form); ok {
			requestID = rid
		} else {
			requestID = int64(len(p.replayOrig.Requests)) + p.reqSeq
		}
	}
	if p.Browser.HasExtension {
		req.ClientID = p.Browser.ClientID
		req.VisitID = p.Log.VisitID
		req.RequestID = requestID
		req.Headers[httpd.HeaderClientID] = req.ClientID
		req.Headers[httpd.HeaderVisitID] = fmt.Sprintf("%d", req.VisitID)
		req.Headers[httpd.HeaderRequestID] = fmt.Sprintf("%d", req.RequestID)
	}
	resp := p.Browser.transport(req)
	if resp == nil {
		resp = httpd.ServerError("no response")
	}
	for k, v := range resp.SetCookies {
		p.Browser.cookies[k] = v
	}
	for _, k := range resp.ClearCookies {
		delete(p.Browser.cookies, k)
	}
	p.Log.Lock()
	p.Log.Requests = append(p.Log.Requests, RequestTrace{
		RequestID:   requestID,
		Method:      method,
		URL:         rawURL,
		FormEncoded: form.Encode(),
		ReqFP:       req.Fingerprint(),
		RespFP:      resp.Fingerprint(),
	})
	p.Log.Unlock()
	return resp, req
}

// matchOriginalRequest finds the first unconsumed original request with
// the same method, URL, and form body, returning its request ID.
func (p *Page) matchOriginalRequest(method, rawURL string, form url.Values) (int64, bool) {
	if p.replayMatched == nil {
		p.replayMatched = make(map[int]bool)
	}
	enc := form.Encode()
	for i, tr := range p.replayOrig.Requests {
		if p.replayMatched[i] {
			continue
		}
		if tr.Method == method && tr.URL == rawURL && tr.FormEncoded == enc {
			p.replayMatched[i] = true
			return tr.RequestID, true
		}
	}
	return 0, false
}

// newVisit allocates a visit and its log.
func (b *Browser) newVisit(parent int64, isFrame bool, method, rawURL string, form url.Values) *Page {
	b.visitSeq++
	log := &VisitLog{
		ClientID:    b.ClientID,
		VisitID:     b.visitSeq,
		ParentVisit: parent,
		IsFrame:     isFrame,
		URL:         rawURL,
		Method:      method,
		FormEncoded: form.Encode(),
		Cookies:     b.Cookies(),
	}
	p := &Page{Browser: b, Log: log}
	if b.HasExtension && b.upload != nil {
		b.upload(log)
	}
	return p
}

// Open navigates a fresh frame (tab) to a URL, executing any page scripts,
// and returns the open page.
func (b *Browser) Open(rawURL string) *Page {
	return b.navigate(0, false, "GET", rawURL, url.Values{})
}

// navigate performs a main-frame or sub-frame page load.
func (b *Browser) navigate(parent int64, isFrame bool, method, rawURL string, form url.Values) *Page {
	p := b.newVisit(parent, isFrame, method, rawURL, form)
	resp, _ := p.roundTrip(method, rawURL, form)
	p.loadResponse(resp, isFrame)
	return p
}

// loadResponse renders a response into the page: redirect following,
// frame-blocking, DOM parsing, script execution, and sub-frame loading.
func (p *Page) loadResponse(resp *httpd.Response, isFrame bool) {
	// Follow one level of redirects (e.g. post-login), as browsers do.
	for i := 0; i < 4 && resp.Status == 303; i++ {
		loc := resp.Headers["Location"]
		if loc == "" {
			break
		}
		p.URL = loc
		resp, _ = p.roundTrip("GET", loc, url.Values{})
	}
	if isFrame && strings.EqualFold(resp.Headers["X-Frame-Options"], "DENY") {
		// The clickjacking defense (Table 2): the browser refuses to render
		// the document inside a frame.
		p.Blocked = true
		p.Log.Blocked = true
		p.DOM = dom.NewDocument()
		return
	}
	p.DOM = dom.Parse(resp.Body)
	p.runScripts()
	p.loadFrames()
}

// loadFrames loads iframe sub-documents as dependent page visits.
func (p *Page) loadFrames() {
	for _, f := range p.DOM.ElementsByTag("iframe") {
		src, ok := f.Attr("src")
		if !ok || src == "" {
			continue
		}
		sub := p.Browser.navigate(p.Log.VisitID, true, "GET", src, url.Values{})
		p.frames = append(p.frames, sub)
	}
}

// Frames returns sub-frame pages loaded by this page.
func (p *Page) Frames() []*Page { return p.frames }

// OpenAttackerPage opens a page that is NOT served by the WARP-managed
// server — the attacker's own web site. The browser records the page
// content in the visit log so the visit can be re-executed during repair
// (the attacker's site is outside WARP's control and assumed unchanged).
// Scripts on the page run with the browser's cookies for the WARP site,
// which is precisely what CSRF and clickjacking attacks exploit.
func (b *Browser) OpenAttackerPage(pageURL, html string) *Page {
	p := b.newVisit(0, false, "GET", pageURL, url.Values{})
	p.Log.AttackerHTML = html
	p.URL = pageURL
	p.DOM = dom.Parse(html)
	p.runScripts()
	p.loadFrames()
	return p
}

//
// User interaction (recorded as DOM-level events, §5.2)
//

// record appends an event to the visit log.
func (p *Page) record(e Event) {
	if p.Browser.HasExtension {
		p.Log.Lock()
		p.Log.Events = append(p.Log.Events, e)
		p.Log.Unlock()
	}
}

// TypeInto simulates the user editing a text field (input or textarea)
// identified by name. The event records the field's prior value and the
// user's final text, which is what three-way merge needs during replay
// (§5.3).
func (p *Page) TypeInto(fieldName, text string) error {
	if p.Blocked || p.DOM == nil {
		return fmt.Errorf("browser: page not rendered")
	}
	field := p.DOM.ByName(fieldName)
	if field == nil {
		return fmt.Errorf("browser: no field %q", fieldName)
	}
	base := fieldValue(field)
	setFieldValue(field, text)
	p.record(Event{Kind: EventInput, XPath: dom.PathOf(field), Base: base, Value: text})
	return nil
}

// Check sets a checkbox identified by name.
func (p *Page) Check(fieldName string, on bool) error {
	if p.Blocked || p.DOM == nil {
		return fmt.Errorf("browser: page not rendered")
	}
	field := p.DOM.ByName(fieldName)
	if field == nil {
		return fmt.Errorf("browser: no field %q", fieldName)
	}
	val := "off"
	if on {
		field.SetAttr("checked", "checked")
		val = "on"
	}
	p.record(Event{Kind: EventCheck, XPath: dom.PathOf(field), Value: val})
	return nil
}

// ClickLink simulates clicking the first link whose text contains label.
// The navigation creates a new page visit that depends on this one (§5.1).
func (p *Page) ClickLink(label string) (*Page, error) {
	if p.Blocked || p.DOM == nil {
		return nil, fmt.Errorf("browser: page not rendered")
	}
	var target *dom.Node
	for _, a := range p.DOM.ElementsByTag("a") {
		if strings.Contains(a.InnerText(), label) {
			target = a
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("browser: no link %q", label)
	}
	p.record(Event{Kind: EventClick, XPath: dom.PathOf(target)})
	href := target.AttrOr("href", "")
	return p.Browser.navigate(p.Log.VisitID, false, "GET", href, url.Values{}), nil
}

// Submit simulates submitting the index-th form on the page (0-based).
// Field values come from the DOM, including values changed by TypeInto.
func (p *Page) Submit(index int) (*Page, error) {
	if p.Blocked || p.DOM == nil {
		return nil, fmt.Errorf("browser: page not rendered")
	}
	forms := p.DOM.ElementsByTag("form")
	if index < 0 || index >= len(forms) {
		return nil, fmt.Errorf("browser: no form %d", index)
	}
	form := forms[index]
	p.record(Event{Kind: EventSubmit, XPath: dom.PathOf(form)})
	method, action, vals := formSubmission(form)
	if strings.EqualFold(method, "GET") {
		u := action
		if enc := vals.Encode(); enc != "" {
			u = action + "?" + enc
		}
		return p.Browser.navigate(p.Log.VisitID, false, "GET", u, url.Values{}), nil
	}
	return p.Browser.navigate(p.Log.VisitID, false, "POST", action, vals), nil
}

// formSubmission extracts method, action, and field values from a form.
func formSubmission(form *dom.Node) (string, string, url.Values) {
	method := strings.ToUpper(form.AttrOr("method", "GET"))
	action := form.AttrOr("action", "")
	vals := url.Values{}
	fv := form.FormValues()
	for _, k := range dom.SortedKeys(fv) {
		vals.Set(k, fv[k])
	}
	return method, action, vals
}

// fieldValue reads a form control's current value.
func fieldValue(n *dom.Node) string {
	if n.Tag == "textarea" {
		return n.InnerText()
	}
	return n.AttrOr("value", "")
}

// setFieldValue writes a form control's value.
func setFieldValue(n *dom.Node, v string) {
	if n.Tag == "textarea" {
		n.SetText(v)
		return
	}
	n.SetAttr("value", v)
}
