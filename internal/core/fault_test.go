package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/store/faultfs"
	"warp/internal/ttdb"
)

// The deployment-level fault suite (ISSUE: storage fault injection).
// The store's own sweep (internal/store/fault_test.go) proves acked
// appends survive; this suite proves the paper system's end-to-end
// contract: whatever I/O operation fails, the deployment either
// absorbs the fault and recovers bit-identical to a never-faulted
// oracle, or lands in degraded read-only mode with every committed
// pre-fault action still readable — never a third outcome.

// faultDurability mirrors testDurability with an injecting filesystem
// and fast retry backoff.
func faultDurability(ffs *faultfs.FS) store.Options {
	return store.Options{
		SyncEveryAppend: true,
		Shards:          2,
		FS:              ffs,
		RetryAttempts:   3,
		RetryBackoff:    time.Microsecond,
	}
}

// sweepInstall is installGuestbook without t.Fatal: under injected
// faults the deployment may legitimately degrade mid-install, and the
// sweep must classify that outcome rather than abort.
func sweepInstall(w *Warp) error {
	if err := w.DB.Annotate("entries", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"author"}}); err != nil {
		return err
	}
	if err := w.Runtime.Register("guestbook.php", app.Version{Entry: guestbookHandler(false), Note: "vulnerable"}); err != nil {
		return err
	}
	w.Runtime.Mount("/", "guestbook.php")
	_, _, err := w.DB.Exec("CREATE TABLE entries (id INTEGER PRIMARY KEY, author TEXT, msg TEXT)")
	return err
}

func runGuestbookWorkload(w *Warp) {
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	for _, step := range workloadSteps(browsers) {
		step()
	}
}

// sweepOracle runs the never-faulted reference once: its dump is the
// bit-identical target, its rows the committed-prefix reference.
func sweepOracle(t *testing.T) (dump string, rows []string) {
	t.Helper()
	w := buildWarpDur(t, t.TempDir(), 1, testDurability())
	runGuestbookWorkload(w)
	dump = dumpWarp(t, w)
	res, _, err := w.DB.Exec("SELECT author, msg FROM entries ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		rows = append(rows, row[0].AsText()+"|"+row[1].AsText())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("oracle Close: %v", err)
	}
	return dump, rows
}

// countWorkloadOps measures roughly how many I/O operations one full
// run issues, bounding the sweep range.
func countWorkloadOps(t *testing.T) int64 {
	t.Helper()
	probe := faultfs.New(nil)
	cfg := Config{Seed: 1, RepairWorkers: 1, Durability: faultDurability(probe)}
	w, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("probe Open: %v", err)
	}
	if err := sweepInstall(w); err != nil {
		t.Fatalf("probe install: %v", err)
	}
	runGuestbookWorkload(w)
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("probe Checkpoint: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("probe Close: %v", err)
	}
	return probe.OpCount()
}

// sweepStep picks the sweep sampling density: every op when
// WARP_FAULT_SWEEP=full (the nightly CI job), a capped sample
// otherwise (the PR-gating job).
func sweepStep(t *testing.T, total int64) int64 {
	if os.Getenv("WARP_FAULT_SWEEP") == "full" {
		return 1
	}
	step := total / 24
	if testing.Short() {
		step = total / 8
	}
	if step < 1 {
		step = 1
	}
	t.Logf("sampling every %d of %d ops (WARP_FAULT_SWEEP=full sweeps all)", step, total)
	return step
}

func waitDegraded(t *testing.T, w *Warp) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !w.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("storage faulted but the deployment neither recovered nor degraded — a third outcome")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultSweepTransient injects a single transient I/O failure at
// operation #k for swept k. A lone fault must always be absorbed —
// write retries, fsync poisoning + segment rotation, or the fault-fence
// checkpoint — and the reopened deployment must be bit-identical to the
// never-faulted oracle.
func TestFaultSweepTransient(t *testing.T) {
	total := countWorkloadOps(t)
	want, _ := sweepOracle(t)
	step := sweepStep(t, total)

	for k := int64(1); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("op%04d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(nil)
			ffs.FailOp(k, fmt.Errorf("%w: transient EIO", faultfs.ErrInjected))
			cfg := Config{Seed: 1, RepairWorkers: 1, Durability: faultDurability(ffs)}
			w, err := Open(dir, cfg)
			if err != nil {
				// The fault hit recovery reads: Open refuses cleanly
				// before acking anything, which is outcome (a) with an
				// empty prefix.
				return
			}
			if err := sweepInstall(w); err != nil {
				t.Fatalf("install under transient fault: %v", err)
			}
			runGuestbookWorkload(w)

			// One checkpoint retry is legitimate (the fault may have been
			// spent inside the first attempt); a second failure is not.
			err = w.Checkpoint()
			if err != nil {
				err = w.Checkpoint()
			}
			if err != nil {
				t.Fatalf("checkpoint after transient fault: %v", err)
			}
			if w.Degraded() {
				t.Fatalf("single transient fault degraded the deployment: %v", w.DegradedCause())
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			w2 := buildWarp(t, dir, 1)
			defer w2.Close()
			if got := dumpWarp(t, w2); got != want {
				t.Fatalf("fault at op %d: recovered state differs from oracle\n--- got ---\n%s--- want ---\n%s", k, got, want)
			}
		})
	}
}

// TestFaultSweepPersistent injects a permanent failure from operation
// #k on — a dying disk — for swept k, and asserts the two-outcome
// invariant: either a checkpoint still succeeds and recovery is
// bit-identical to the oracle, or the deployment lands degraded with
// reads serving, writes/repair refused, and every committed pre-fault
// row recovered on a clean reopen.
func TestFaultSweepPersistent(t *testing.T) {
	total := countWorkloadOps(t)
	want, oracleRows := sweepOracle(t)
	step := sweepStep(t, total)

	for k := int64(1); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("op%04d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(nil)
			ffs.FailFrom(k, fmt.Errorf("%w: dying disk", faultfs.ErrInjected))
			cfg := Config{Seed: 1, RepairWorkers: 1, Durability: faultDurability(ffs)}
			w, err := Open(dir, cfg)
			if err != nil {
				return // refused at Open: nothing acked, nothing to lose
			}
			installErr := sweepInstall(w)
			if installErr != nil && !errors.Is(installErr, ErrDegraded) {
				t.Fatalf("install failed with a non-degraded error: %v", installErr)
			}
			runGuestbookWorkload(w)

			if err := w.Checkpoint(); err == nil {
				// Outcome (a): the storage absorbed everything up to a
				// full checkpoint. Close's own final checkpoint may still
				// hit the dying disk; the successful one above is the
				// recovery root either way.
				_ = w.Close()
				w2 := buildWarp(t, dir, 1)
				defer w2.Close()
				if got := dumpWarp(t, w2); got != want {
					t.Fatalf("fault from op %d: recovered state differs from oracle\n--- got ---\n%s--- want ---\n%s", k, got, want)
				}
				return
			}

			// Outcome (b): the deployment must degrade.
			waitDegraded(t, w)
			hasTable := false
			for _, name := range w.DB.Tables() {
				if name == "entries" {
					hasTable = true
				}
			}
			if hasTable {
				if _, _, err := w.DB.Exec("SELECT author, msg FROM entries ORDER BY id"); err != nil {
					t.Fatalf("degraded deployment refused a read: %v", err)
				}
				alice := ttdb.Partition{Table: "entries", Column: "author", Key: sqldb.Text("alice").Key()}
				if _, err := w.DB.PartitionRowsSince(alice, 0); err != nil {
					t.Fatalf("degraded deployment refused a time-travel read: %v", err)
				}
			}
			if _, _, err := w.DB.Exec("INSERT INTO entries (id, author, msg) VALUES (999, 'x', 'y')"); !errors.Is(err, ErrDegraded) {
				t.Fatalf("degraded write refused with %v, want ErrDegraded", err)
			}
			if installErr == nil {
				if _, err := w.RetroPatch("guestbook.php", app.Version{Entry: guestbookHandler(true), Note: "patch"}); !errors.Is(err, ErrDegraded) {
					t.Fatalf("degraded repair refused with %v, want ErrDegraded", err)
				}
			}
			_ = w.Close()

			// Every committed pre-fault row must be readable after a
			// clean reopen: recovered rows form a prefix of the oracle's.
			w2 := buildWarp(t, dir, 1)
			defer w2.Close()
			res, _, err := w2.DB.Exec("SELECT author, msg FROM entries ORDER BY id")
			if err != nil {
				t.Fatalf("reading recovered rows: %v", err)
			}
			for i, row := range res.Rows {
				got := row[0].AsText() + "|" + row[1].AsText()
				if i >= len(oracleRows) || got != oracleRows[i] {
					t.Fatalf("fault from op %d: recovered row %d = %q, not a prefix of the oracle's rows %v", k, i, got, oracleRows)
				}
			}
		})
	}
}

// TestDegradedModeServesReads is the acceptance test for degraded
// mode: after the disk dies, reads and time-travel queries keep
// serving, writes and repair are refused with ErrDegraded end to end,
// health reports the cause, and a clean reopen restores full service.
func TestDegradedModeServesReads(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := Config{Seed: 1, RepairWorkers: 1, Durability: faultDurability(ffs)}
	w, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	installGuestbook(t, w, false)
	runGuestbookWorkload(w)

	// The disk dies: every I/O from here on fails.
	ffs.FailFrom(ffs.OpCount()+1, fmt.Errorf("%w: dying disk", faultfs.ErrInjected))
	if err := w.FlushLogs(); err == nil {
		t.Fatal("FlushLogs on a dead disk succeeded")
	}
	waitDegraded(t, w)

	// Reads serve — through the full HTTP path and directly.
	resp := w.HandleRequest(httpd.NewRequest("GET", "/"))
	if resp.Status != 200 || !strings.Contains(resp.Body, "alice") {
		t.Fatalf("degraded read request: status=%d body=%q", resp.Status, resp.Body)
	}
	res, _, err := w.DB.Exec("SELECT author, msg FROM entries ORDER BY id")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("degraded SELECT: rows=%d err=%v", len(res.Rows), err)
	}

	// Time-travel reads serve.
	alice := ttdb.Partition{Table: "entries", Column: "author", Key: sqldb.Text("alice").Key()}
	rows, err := w.DB.PartitionRowsSince(alice, 0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("degraded PartitionRowsSince: rows=%d err=%v", len(rows), err)
	}

	// Writes are refused, both directly and through HTTP.
	if _, _, err := w.DB.Exec("INSERT INTO entries (id, author, msg) VALUES (999, 'x', 'y')"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded INSERT: %v, want ErrDegraded", err)
	}
	resp = w.HandleRequest(httpd.NewRequest("GET", "/?author=eve&msg=too+late"))
	if resp.Status != 500 {
		t.Fatalf("degraded write request served with status %d", resp.Status)
	}

	// Repair, checkpoint, and flush are refused.
	if _, err := w.RetroPatch("guestbook.php", app.Version{Entry: guestbookHandler(true), Note: "patch"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded RetroPatch: %v, want ErrDegraded", err)
	}
	if err := w.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Checkpoint: %v, want ErrDegraded", err)
	}
	if err := w.FlushLogs(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded FlushLogs: %v, want ErrDegraded", err)
	}

	// Health reports the state.
	h := w.Health()
	if !h.Degraded || h.DegradedCause == "" || h.LastStorageFault == "" {
		t.Fatalf("degraded health snapshot incomplete: %+v", h)
	}
	if err := w.Close(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Close: %v, want ErrDegraded", err)
	}

	// Operator path back: fix the storage (here: stop injecting) and
	// reopen. Full service resumes with all committed state.
	w2 := buildWarp(t, dir, 1)
	defer w2.Close()
	if w2.Degraded() {
		t.Fatal("reopened deployment still degraded")
	}
	res, _, err = w2.DB.Exec("SELECT author, msg FROM entries ORDER BY id")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("reopened SELECT: rows=%d err=%v", len(res.Rows), err)
	}
	if _, _, err := w2.DB.Exec("INSERT INTO entries (id, author, msg) VALUES (999, 'carol', 'back online')"); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}

// TestScrubRescuesWhatRecoveryWouldLose is the scrubber-vs-recovery
// test: bit rot in a cold sealed WAL segment silently truncates the
// replayable chain (recovery stops at the corrupt segment and flags
// TailCorrupt), while a scrub pass on the live deployment detects the
// same corruption early and the fault-fence checkpoint re-secures the
// full state from memory before it is ever needed from disk.
func TestScrubRescuesWhatRecoveryWouldLose(t *testing.T) {
	base := t.TempDir()
	live := filepath.Join(base, "live")
	dur := store.Options{SyncEveryAppend: true, SegmentBytes: 512}
	w := buildWarpDur(t, live, 1, dur)
	runGuestbookWorkload(w)
	want := dumpWarp(t, w)

	// Bit-rot the oldest (sealed) WAL segment on disk.
	victim := filepath.Join(live, "wal-00-00000001.log")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(live)
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("workload produced only %d segments; cannot corrupt a sealed one", segs)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Control arm: recovery without a scrub loses the tail. (A copy, so
	// the live deployment is unaffected.)
	blind := filepath.Join(base, "blind")
	copyDir(t, live, blind)
	wb := buildWarp(t, blind, 1)
	if !wb.Recovery().TailCorrupt {
		t.Fatal("recovery over the corrupted chain did not flag TailCorrupt")
	}
	if got := dumpWarp(t, wb); got == want {
		t.Fatal("recovery over the corrupted chain lost nothing — corruption not in the replay path")
	}
	_ = wb.Close()

	// Live arm: the scrubber catches it first, the fence checkpoint
	// re-secures the state, and recovery is complete.
	if err := w.ScrubNow(); err == nil {
		t.Fatal("scrub missed the corrupted segment")
	}
	h := w.Health()
	if h.Scrub.Corrupt == 0 || len(h.Scrub.Quarantined) == 0 {
		t.Fatalf("scrub stats did not record the corruption: %+v", h.Scrub)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("fence checkpoint after scrub: %v", err)
	}
	if w.Degraded() {
		t.Fatalf("recoverable corruption degraded the deployment: %v", w.DegradedCause())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := buildWarpDur(t, live, 1, dur)
	defer w2.Close()
	if w2.Recovery().TailCorrupt {
		t.Fatal("post-rescue recovery still sees corruption")
	}
	if got := dumpWarp(t, w2); got != want {
		t.Fatalf("post-rescue recovery differs\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
