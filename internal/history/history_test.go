package history

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestAppendAndLookup(t *testing.T) {
	g := New()
	file := FileNode("edit.php")
	part := PartitionNode("pages/title=tMain")

	a1 := &Action{Kind: KindAppRun, Time: 10, Inputs: []Dep{{Node: file, Time: 10}}, Outputs: []Dep{{Node: part, Time: 11}}}
	a2 := &Action{Kind: KindQuery, Time: 12, Inputs: []Dep{{Node: part, Time: 12}}}
	a3 := &Action{Kind: KindAppRun, Time: 20, Inputs: []Dep{{Node: file, Time: 20}}}
	id1 := g.Append(a1)
	g.Append(a2)
	g.Append(a3)

	if g.Len() != 3 {
		t.Fatalf("len = %d", g.Len())
	}
	if got := g.Get(id1); got != a1 {
		t.Fatal("Get returned wrong action")
	}

	readers := g.Readers(file, 0)
	if len(readers) != 2 || readers[0] != a1 || readers[1] != a3 {
		t.Fatalf("readers of file = %v", readers)
	}
	readers = g.Readers(file, 15)
	if len(readers) != 1 || readers[0] != a3 {
		t.Fatalf("readers from t=15 = %v", readers)
	}
	writers := g.Writers(part, 0)
	if len(writers) != 1 || writers[0] != a1 {
		t.Fatalf("writers of part = %v", writers)
	}
}

func TestByKindAndOrder(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		kind := KindAppRun
		if i%2 == 1 {
			kind = KindQuery
		}
		g.Append(&Action{Kind: kind, Time: int64(i)})
	}
	runs := g.ByKind(KindAppRun)
	if len(runs) != 5 {
		t.Fatalf("runs = %d", len(runs))
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].Time < runs[i-1].Time {
			t.Fatal("ByKind must preserve time order")
		}
	}
}

func TestReadersSortedByTime(t *testing.T) {
	g := New()
	n := NodeID("part:x")
	// Append out of time order; lookups must still return time order.
	g.Append(&Action{Kind: KindQuery, Time: 30, Inputs: []Dep{{Node: n, Time: 30}}})
	g.Append(&Action{Kind: KindQuery, Time: 10, Inputs: []Dep{{Node: n, Time: 10}}})
	g.Append(&Action{Kind: KindQuery, Time: 20, Inputs: []Dep{{Node: n, Time: 20}}})
	rs := g.Readers(n, 0)
	if len(rs) != 3 || rs[0].Time != 10 || rs[1].Time != 20 || rs[2].Time != 30 {
		t.Fatalf("order = %v", []int64{rs[0].Time, rs[1].Time, rs[2].Time})
	}
}

func TestGC(t *testing.T) {
	g := New()
	n := NodeID("part:x")
	for i := 0; i < 100; i++ {
		g.Append(&Action{Kind: KindQuery, Time: int64(i), Inputs: []Dep{{Node: n, Time: int64(i)}}})
	}
	removed := g.GC(50)
	if removed != 50 {
		t.Fatalf("removed = %d", removed)
	}
	if g.Len() != 50 {
		t.Fatalf("len = %d", g.Len())
	}
	rs := g.Readers(n, 0)
	if len(rs) != 50 || rs[0].Time != 50 {
		t.Fatalf("post-GC readers: %d from %d", len(rs), rs[0].Time)
	}
	// Collected actions are gone from Get.
	if g.Get(1) != nil {
		t.Fatal("collected action still reachable")
	}
}

func TestLoadedNodesAccounting(t *testing.T) {
	g := New()
	g.Append(&Action{Kind: KindQuery, Time: 1, Inputs: []Dep{{Node: "part:a", Time: 1}}})
	g.ResetLoadStats()
	g.Readers("part:a", 0)
	g.Readers("part:a", 0) // same node: still one
	g.Readers("part:b", 0) // miss still counts as a load probe
	if got := g.LoadedNodes(); got != 2 {
		t.Fatalf("loaded nodes = %d, want 2", got)
	}
}

func TestApproxBytes(t *testing.T) {
	g := New()
	g.Append(&Action{Kind: KindQuery, Time: 1, Inputs: []Dep{{Node: "part:abc", Time: 1}}, Payload: "x"})
	n := g.ApproxBytes(func(p any) int { return len(p.(string)) })
	if n <= 0 {
		t.Fatalf("bytes = %d", n)
	}
	if g.ApproxBytes(nil) <= 0 {
		t.Fatal("nil sizer must still count structure")
	}
}

// TestPropertyIndexConsistency: after random appends and GCs, every
// reader/writer lookup returns exactly the live actions that declared the
// dependency, in time order.
func TestPropertyIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New()
	type expect struct {
		node NodeID
		time int64
		id   ActionID
	}
	var reads, writes []expect
	gcHorizon := int64(0)
	tick := int64(0)
	for step := 0; step < 500; step++ {
		if rng.Intn(20) == 0 {
			gcHorizon = tick - int64(rng.Intn(50))
			g.GC(gcHorizon)
			continue
		}
		tick++
		node := NodeID(fmt.Sprintf("part:n%d", rng.Intn(8)))
		a := &Action{Kind: KindQuery, Time: tick}
		if rng.Intn(2) == 0 {
			a.Inputs = []Dep{{Node: node, Time: tick}}
		} else {
			a.Outputs = []Dep{{Node: node, Time: tick}}
		}
		id := g.Append(a)
		if len(a.Inputs) > 0 {
			reads = append(reads, expect{node, tick, id})
		} else {
			writes = append(writes, expect{node, tick, id})
		}
	}
	check := func(lookup func(NodeID, int64) []*Action, exp []expect) {
		byNode := map[NodeID][]expect{}
		for _, e := range exp {
			if e.time >= gcHorizon {
				byNode[e.node] = append(byNode[e.node], e)
			}
		}
		for node, want := range byNode {
			got := lookup(node, 0)
			if len(got) != len(want) {
				t.Fatalf("node %s: %d results, want %d", node, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].id {
					t.Fatalf("node %s: result %d = action %d, want %d", node, i, got[i].ID, want[i].id)
				}
			}
		}
	}
	check(g.Readers, reads)
	check(g.Writers, writes)
}
