package sqldb

import (
	"strings"
	"testing"
)

// mustExec executes src and fails the test on error.
func mustExec(t *testing.T, db *DB, src string, params ...Value) *Result {
	t.Helper()
	res, err := db.Exec(src, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE pages (
		page_id INTEGER PRIMARY KEY,
		title TEXT NOT NULL,
		editor INTEGER,
		content TEXT DEFAULT ''
	)`)
	mustExec(t, db, `INSERT INTO pages (page_id, title, editor, content) VALUES
		(1, 'Main', 10, 'welcome'),
		(2, 'Sandbox', 11, 'play here'),
		(3, 'Help', 10, 'how to')`)
	return db
}

func TestSelectBasics(t *testing.T) {
	db := newTestDB(t)

	res := mustExec(t, db, "SELECT title FROM pages WHERE page_id = 2")
	if res.NumRows() != 1 || res.Rows[0][0].AsText() != "Sandbox" {
		t.Fatalf("got %+v", res.Rows)
	}

	res = mustExec(t, db, "SELECT * FROM pages ORDER BY title")
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.NumRows())
	}
	if res.Rows[0][1].AsText() != "Help" || res.Rows[2][1].AsText() != "Sandbox" {
		t.Fatalf("order wrong: %v", res.Rows)
	}
	if len(res.Columns) != 4 {
		t.Fatalf("star should expand to 4 columns, got %v", res.Columns)
	}

	res = mustExec(t, db, "SELECT page_id FROM pages WHERE editor = 10 ORDER BY page_id DESC")
	if res.NumRows() != 2 || res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("got %+v", res.Rows)
	}

	res = mustExec(t, db, "SELECT page_id FROM pages ORDER BY page_id LIMIT 1 OFFSET 1")
	if res.NumRows() != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("limit/offset wrong: %+v", res.Rows)
	}
}

func TestSelectExpressionsAndParams(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT title || '!' FROM pages WHERE page_id = ?", Int(1))
	if res.Rows[0][0].AsText() != "Main!" {
		t.Fatalf("concat: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT 2 + 3 * 4")
	if res.Rows[0][0].AsInt() != 14 {
		t.Fatalf("precedence: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT page_id FROM pages WHERE title LIKE 'S%'")
	if res.NumRows() != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("like: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT page_id FROM pages WHERE page_id IN (1, 3) ORDER BY page_id")
	if res.NumRows() != 2 || res.Rows[1][0].AsInt() != 3 {
		t.Fatalf("in: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 3 {
		t.Fatalf("count: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT MAX(page_id), MIN(page_id), SUM(page_id) FROM pages")
	r := res.Rows[0]
	if r[0].AsInt() != 3 || r[1].AsInt() != 1 || r[2].AsInt() != 6 {
		t.Fatalf("agg: %v", r)
	}
	res = mustExec(t, db, "SELECT COUNT(*) FROM pages WHERE editor = 99")
	if res.FirstValue().AsInt() != 0 {
		t.Fatalf("empty count: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT MAX(page_id) FROM pages WHERE editor = 99")
	if !res.FirstValue().IsNull() {
		t.Fatalf("empty max should be NULL: %v", res.Rows)
	}
}

func TestInsertDefaultsAndReturning(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "INSERT INTO pages (page_id, title) VALUES (4, 'New') RETURNING page_id, content")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if res.Rows[0][0].AsInt() != 4 || res.Rows[0][1].AsText() != "" {
		t.Fatalf("returning: %v", res.Rows)
	}
	// editor column had no default: must be NULL.
	res = mustExec(t, db, "SELECT editor FROM pages WHERE page_id = 4")
	if !res.FirstValue().IsNull() {
		t.Fatalf("editor should be NULL, got %v", res.FirstValue())
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "UPDATE pages SET content = content || '+', editor = 42 WHERE editor = 10 RETURNING page_id")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	got := mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if got.FirstValue().AsText() != "welcome+" {
		t.Fatalf("update content: %v", got.FirstValue())
	}
	// Update with no matches.
	res = mustExec(t, db, "UPDATE pages SET editor = 1 WHERE page_id = 999")
	if res.Affected != 0 {
		t.Fatalf("affected = %d, want 0", res.Affected)
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "DELETE FROM pages WHERE page_id = 2 RETURNING title")
	if res.Affected != 1 || res.Rows[0][0].AsText() != "Sandbox" {
		t.Fatalf("delete: %+v", res)
	}
	if db.RowCount("pages") != 2 {
		t.Fatalf("row count = %d, want 2", db.RowCount("pages"))
	}
	// Deleted row is gone from scans.
	got := mustExec(t, db, "SELECT COUNT(*) FROM pages WHERE title = 'Sandbox'")
	if got.FirstValue().AsInt() != 0 {
		t.Fatal("deleted row still visible")
	}
	// Its primary key can be reused.
	mustExec(t, db, "INSERT INTO pages (page_id, title) VALUES (2, 'Sandbox2')")
}

func TestUniqueConstraints(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Exec("INSERT INTO pages (page_id, title) VALUES (1, 'Dup')")
	if err == nil || !IsUniqueViolation(err) {
		t.Fatalf("expected unique violation, got %v", err)
	}
	// Update into collision.
	_, err = db.Exec("UPDATE pages SET page_id = 1 WHERE page_id = 2")
	if err == nil || !IsUniqueViolation(err) {
		t.Fatalf("expected unique violation on update, got %v", err)
	}
	// Failed update must not corrupt state: page 2 still reachable.
	res := mustExec(t, db, "SELECT title FROM pages WHERE page_id = 2")
	if res.NumRows() != 1 {
		t.Fatal("failed update corrupted index state")
	}
	// Update of the row onto itself is fine.
	mustExec(t, db, "UPDATE pages SET page_id = 1, title = 'Main2' WHERE page_id = 1")
}

func TestCompositeUnique(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE acl (page INTEGER, user_id INTEGER, UNIQUE (page, user_id))")
	mustExec(t, db, "INSERT INTO acl (page, user_id) VALUES (1, 1), (1, 2), (2, 1)")
	if _, err := db.Exec("INSERT INTO acl (page, user_id) VALUES (1, 2)"); !IsUniqueViolation(err) {
		t.Fatalf("want violation, got %v", err)
	}
	// NULL never collides.
	mustExec(t, db, "INSERT INTO acl (page, user_id) VALUES (1, NULL), (1, NULL)")
}

func TestNotNull(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("INSERT INTO pages (page_id) VALUES (9)"); err == nil {
		t.Fatal("NOT NULL title should reject missing value")
	}
	if _, err := db.Exec("UPDATE pages SET title = NULL WHERE page_id = 1"); err == nil {
		t.Fatal("NOT NULL title should reject NULL update")
	}
}

func TestIndexUseMatchesScan(t *testing.T) {
	db := newTestDB(t)
	noIndex := mustExec(t, db, "SELECT page_id FROM pages WHERE title = 'Help'")
	mustExec(t, db, "CREATE INDEX idx_title ON pages (title)")
	withIndex := mustExec(t, db, "SELECT page_id FROM pages WHERE title = 'Help'")
	if noIndex.Fingerprint() != withIndex.Fingerprint() {
		t.Fatalf("index changed results: %v vs %v", noIndex.Rows, withIndex.Rows)
	}
	// Index stays correct across updates and deletes.
	mustExec(t, db, "UPDATE pages SET title = 'HelpX' WHERE page_id = 3")
	res := mustExec(t, db, "SELECT page_id FROM pages WHERE title = 'HelpX'")
	if res.NumRows() != 1 {
		t.Fatalf("index missed updated row: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT page_id FROM pages WHERE title = 'Help'")
	if res.NumRows() != 0 {
		t.Fatalf("index kept stale row: %v", res.Rows)
	}
	mustExec(t, db, "DELETE FROM pages WHERE title = 'HelpX'")
	res = mustExec(t, db, "SELECT page_id FROM pages WHERE title = 'HelpX'")
	if res.NumRows() != 0 {
		t.Fatalf("index kept deleted row: %v", res.Rows)
	}
}

func TestIndexWithParam(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE INDEX idx_title ON pages (title)")
	res := mustExec(t, db, "SELECT page_id FROM pages WHERE title = ?", Text("Main"))
	if res.NumRows() != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("param-index lookup: %v", res.Rows)
	}
}

func TestAlterTableAdd(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "ALTER TABLE pages ADD COLUMN views INTEGER DEFAULT 0")
	res := mustExec(t, db, "SELECT views FROM pages WHERE page_id = 1")
	if res.FirstValue().AsInt() != 0 {
		t.Fatalf("default for existing rows: %v", res.FirstValue())
	}
	mustExec(t, db, "UPDATE pages SET views = 5 WHERE page_id = 1")
	res = mustExec(t, db, "SELECT views FROM pages WHERE page_id = 1")
	if res.FirstValue().AsInt() != 5 {
		t.Fatalf("update new column: %v", res.FirstValue())
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT DISTINCT editor FROM pages WHERE editor IS NOT NULL ORDER BY editor")
	if res.NumRows() != 2 {
		t.Fatalf("distinct rows = %d, want 2: %v", res.NumRows(), res.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO pages (page_id, title) VALUES (7, 'NullEd')")
	// editor IS NULL matches; editor = NULL does not.
	res := mustExec(t, db, "SELECT page_id FROM pages WHERE editor IS NULL")
	if res.NumRows() != 1 || res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("is null: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT page_id FROM pages WHERE editor = NULL")
	if res.NumRows() != 0 {
		t.Fatalf("= NULL must match nothing: %v", res.Rows)
	}
	// NOT over NULL comparison stays non-matching.
	res = mustExec(t, db, "SELECT page_id FROM pages WHERE NOT (editor = NULL)")
	if res.NumRows() != 0 {
		t.Fatalf("NOT NULL-comparison must match nothing: %v", res.Rows)
	}
}

func TestSetUniques(t *testing.T) {
	db := newTestDB(t)
	// Relax pk to (page_id, title): now a duplicate page_id with different
	// title is allowed.
	if err := db.SetUniques("pages", []UniqueConstraint{{Columns: []string{"page_id", "title"}, Primary: true}}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO pages (page_id, title) VALUES (1, 'Other')")
	// Tightening back must fail now (duplicates exist) and keep old rules.
	if err := db.SetUniques("pages", []UniqueConstraint{{Columns: []string{"page_id"}, Primary: true}}); err == nil {
		t.Fatal("tightening over duplicates should fail")
	}
	// The relaxed constraint is still in effect after the failed tightening.
	if _, err := db.Exec("INSERT INTO pages (page_id, title) VALUES (1, 'Third')"); err != nil {
		t.Fatalf("relaxed constraint should allow insert: %v", err)
	}
}

func TestResultFingerprint(t *testing.T) {
	db := newTestDB(t)
	a := mustExec(t, db, "SELECT * FROM pages ORDER BY page_id")
	b := mustExec(t, db, "SELECT * FROM pages ORDER BY page_id")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical queries must fingerprint equal")
	}
	mustExec(t, db, "UPDATE pages SET content = 'x' WHERE page_id = 1")
	c := mustExec(t, db, "SELECT * FROM pages ORDER BY page_id")
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("changed data must change fingerprint")
	}
}

func TestErrorsAreDiagnostic(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Exec("SELECT nope FROM pages")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want column name in error, got %v", err)
	}
	_, err = db.Exec("SELECT * FROM nosuch")
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want table name in error, got %v", err)
	}
	_, err = db.Exec("SELECT * FROM pages WHERE page_id = ?")
	if err == nil {
		t.Fatal("missing parameter should error")
	}
	_, err = db.Exec("SELECT 1 / 0")
	if err == nil {
		t.Fatal("division by zero should error")
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "DROP TABLE pages")
	if db.HasTable("pages") {
		t.Fatal("table still present")
	}
	if _, err := db.Exec("DROP TABLE pages"); err == nil {
		t.Fatal("double drop should fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS pages")
}

func TestBooleanColumn(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE f (id INTEGER PRIMARY KEY, ok BOOLEAN DEFAULT FALSE)")
	mustExec(t, db, "INSERT INTO f (id, ok) VALUES (1, TRUE), (2, FALSE), (3, 1)")
	res := mustExec(t, db, "SELECT id FROM f WHERE ok = TRUE ORDER BY id")
	if res.NumRows() != 2 || res.Rows[1][0].AsInt() != 3 {
		t.Fatalf("bool filter (int coercion): %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM f WHERE ok ORDER BY id")
	if res.NumRows() != 2 {
		t.Fatalf("bare bool column as predicate: %v", res.Rows)
	}
}

// indexLookup runs an equality query twice — once in the form the
// planner can serve from the hash index, once wrapped so only a full
// scan answers it — and fails unless both agree. Divergence means the
// index's buckets and the table's rows drifted apart.
func indexLookup(t *testing.T, db *DB, table, col string, v Value, wantIDs ...int64) {
	t.Helper()
	idx := mustExec(t, db, "SELECT page_id FROM "+table+" WHERE "+col+" = ? ORDER BY page_id", v)
	scan := mustExec(t, db, "SELECT page_id FROM "+table+" WHERE NOT ("+col+" != ?) ORDER BY page_id", v)
	got := func(r *Result) []int64 {
		var out []int64
		for _, row := range r.Rows {
			out = append(out, row[0].AsInt())
		}
		return out
	}
	gi, gs := got(idx), got(scan)
	if len(gi) != len(gs) {
		t.Fatalf("index returned %v, scan returned %v", gi, gs)
	}
	for i := range gi {
		if gi[i] != gs[i] {
			t.Fatalf("index returned %v, scan returned %v", gi, gs)
		}
	}
	if len(gi) != len(wantIDs) {
		t.Fatalf("lookup %s=%v: got %v, want %v", col, v, gi, wantIDs)
	}
	for i := range gi {
		if gi[i] != wantIDs[i] {
			t.Fatalf("lookup %s=%v: got %v, want %v", col, v, gi, wantIDs)
		}
	}
}

// TestIndexMaintainedUnderUpdate: rewriting an indexed column must move
// the row between hash buckets — the old key stops matching, the new
// one starts, and index results always agree with a scan.
func TestIndexMaintainedUnderUpdate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE INDEX idx_editor ON pages (editor)")
	indexLookup(t, db, "pages", "editor", Int(10), 1, 3)
	indexLookup(t, db, "pages", "editor", Int(11), 2)

	// Move page 1 from editor 10 to editor 11.
	mustExec(t, db, "UPDATE pages SET editor = 11 WHERE page_id = 1")
	indexLookup(t, db, "pages", "editor", Int(10), 3)
	indexLookup(t, db, "pages", "editor", Int(11), 1, 2)

	// Update that keeps the key: still exactly one bucket entry.
	mustExec(t, db, "UPDATE pages SET editor = 11, content = 'x' WHERE page_id = 1")
	indexLookup(t, db, "pages", "editor", Int(11), 1, 2)

	// Multi-row update moving every row to one bucket.
	mustExec(t, db, "UPDATE pages SET editor = 7")
	indexLookup(t, db, "pages", "editor", Int(7), 1, 2, 3)
	indexLookup(t, db, "pages", "editor", Int(10))
	indexLookup(t, db, "pages", "editor", Int(11))

	// A failed (atomic) update must leave the index untouched: page_id
	// is unique, so this violates and rolls back after touching rows.
	if _, err := db.Exec("UPDATE pages SET page_id = 9, editor = 8 WHERE editor = 7"); !IsUniqueViolation(err) {
		t.Fatalf("expected unique violation, got %v", err)
	}
	indexLookup(t, db, "pages", "editor", Int(7), 1, 2, 3)
	indexLookup(t, db, "pages", "editor", Int(8))
}

// TestIndexMaintainedUnderDeleteReinsert: deletes tombstone slots and
// re-inserts take fresh ones; bucket entries must follow.
func TestIndexMaintainedUnderDeleteReinsert(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE INDEX idx_editor ON pages (editor)")
	mustExec(t, db, "DELETE FROM pages WHERE page_id = 1")
	indexLookup(t, db, "pages", "editor", Int(10), 3)
	mustExec(t, db, "INSERT INTO pages (page_id, title, editor) VALUES (4, 'New', 10)")
	indexLookup(t, db, "pages", "editor", Int(10), 3, 4)
	// Delete + re-insert the same logical row: new slot, same key.
	mustExec(t, db, "DELETE FROM pages WHERE page_id = 4")
	mustExec(t, db, "INSERT INTO pages (page_id, title, editor) VALUES (4, 'New2', 10)")
	indexLookup(t, db, "pages", "editor", Int(10), 3, 4)
}
