package bench

import (
	"testing"
	"time"
)

const (
	partClients = 16
	partPages   = 2
	partLatency = 1500 * time.Microsecond
)

// assertSameOutcome requires two partition-repair measurements to have
// identical work accounting and identical final hot-table contents.
func assertSameOutcome(t *testing.T, label string, a, b *PartitionRepairResult) {
	t.Helper()
	if a.Report.AppRunsReexecuted != b.Report.AppRunsReexecuted ||
		a.Report.QueriesReexecuted != b.Report.QueriesReexecuted ||
		a.Report.PageVisitsReplayed != b.Report.PageVisitsReplayed {
		t.Fatalf("%s: accounting differs: %d/%d/%d vs %d/%d/%d", label,
			a.Report.AppRunsReexecuted, a.Report.QueriesReexecuted, a.Report.PageVisitsReplayed,
			b.Report.AppRunsReexecuted, b.Report.QueriesReexecuted, b.Report.PageVisitsReplayed)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row count differs: %d vs %d", label, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("%s: row %d differs: %q vs %q", label, i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestPartitionRepairMatchesSerial: the partition-granular pipeline at 4
// workers must produce byte-identical final state and identical work
// accounting to the serial engine, and to the table-granular baseline —
// locking granularity is a performance decision, never a semantic one.
func TestPartitionRepairMatchesSerial(t *testing.T) {
	serial, err := PartitionRepair(partClients, partPages, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Report.PageVisitsReplayed != partClients*(partPages+1) {
		t.Fatalf("visits replayed = %d, want %d (every visit of every client)",
			serial.Report.PageVisitsReplayed, partClients*(partPages+1))
	}
	if len(serial.Rows) != partClients*partPages {
		t.Fatalf("rows = %d, want %d", len(serial.Rows), partClients*partPages)
	}
	parallel, err := PartitionRepair(partClients, partPages, 4, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "serial vs 4 workers", serial, parallel)
	coarse, err := PartitionRepair(partClients, partPages, 4, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "partition vs table-granular", serial, coarse)
}

// TestPartitionRepairSpeedup is the tentpole's acceptance bar: on the
// single-hot-table workload, the partition-granular pipeline at 4
// workers repairs at least 2x faster than the table-granular (globally
// exclusive) baseline at the same worker count.
func TestPartitionRepairSpeedup(t *testing.T) {
	baseline, err := PartitionRepair(partClients, partPages, 4, partLatency, true)
	if err != nil {
		t.Fatal(err)
	}
	partition, err := PartitionRepair(partClients, partPages, 4, partLatency, false)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "speedup outcome", baseline, partition)
	speedup := float64(baseline.RepairTime) / float64(partition.RepairTime)
	t.Logf("table-granular %v, partition-granular %v, speedup %.2fx at 4 workers",
		baseline.RepairTime, partition.RepairTime, speedup)
	if raceEnabled {
		// Race instrumentation serializes worker interleavings and swamps
		// the overlapped latency; the correctness half above still ran.
		t.Skip("skipping speedup assertion under the race detector")
	}
	if speedup < 2.0 {
		t.Fatalf("speedup %.2fx at 4 workers, want >= 2x (table-granular %v, partition %v)",
			speedup, baseline.RepairTime, partition.RepairTime)
	}
}
