package ttdb

import (
	"fmt"
	"hash/fnv"

	"warp/internal/sqldb"
)

// QueryKind classifies a recorded query.
type QueryKind uint8

// Query kinds.
const (
	KindRead QueryKind = iota
	KindInsert
	KindUpdate
	KindDelete
	KindDDL
)

// String names the kind.
func (k QueryKind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindDelete:
		return "delete"
	case KindDDL:
		return "ddl"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is the durable log entry for one executed query: what WARP's
// database manager records during normal execution (§4, §7) and what the
// repair controller needs to re-execute the query later and decide whether
// its result changed.
type Record struct {
	SQL    string
	Params []sqldb.Value
	Time   int64
	Gen    int64
	Table  string
	Kind   QueryKind

	// ReadPartitions is what the query's WHERE clause may have read.
	ReadPartitions []Partition
	// WritePartitions covers every partition value of every touched row,
	// before and after the write.
	WritePartitions []Partition
	// WriteRowIDs names the rows the query modified (§4.2: the write set
	// recorded for two-phase re-execution).
	WriteRowIDs []sqldb.Value

	// Result is the application-visible result; ErrText records a failed
	// outcome (for example a uniqueness violation, §6).
	Result  *sqldb.Result
	ErrText string

	// PreImage is the overwritten text value of a single-row,
	// single-column UPDATE — the merge base online repair uses to
	// three-way merge a live write logged during repair against the
	// repaired value of the same row (docs/repair.md). HasPreImage
	// distinguishes a captured empty string from "not captured".
	PreImage    string
	HasPreImage bool
}

// IsWrite reports whether the record is a database mutation.
func (r *Record) IsWrite() bool {
	return r.Kind == KindInsert || r.Kind == KindUpdate || r.Kind == KindDelete
}

// Outcome fingerprints the query's observable outcome — result rows,
// affected count, and error state — so the repair controller can test
// result equivalence (§2.1).
func (r *Record) Outcome() uint64 {
	h := fnv.New64a()
	if r.ErrText != "" {
		h.Write([]byte("err:"))
		h.Write([]byte(r.ErrText))
		return h.Sum64()
	}
	if r.Result == nil {
		return h.Sum64()
	}
	fp := r.Result.Fingerprint()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(fp >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// TouchedPartitions returns the union of read and write partitions.
func (r *Record) TouchedPartitions() []Partition {
	out := make([]Partition, 0, len(r.ReadPartitions)+len(r.WritePartitions))
	out = append(out, r.ReadPartitions...)
	out = append(out, r.WritePartitions...)
	return out
}

// ApproxLogBytes estimates the size of this record on disk, for the
// paper's Table 6 storage accounting.
func (r *Record) ApproxLogBytes() int {
	n := len(r.SQL) + len(r.ErrText) + 8 /* time */ + 8 /* gen */
	for _, p := range r.Params {
		n += 9 + len(p.Str)
	}
	for _, p := range r.ReadPartitions {
		n += len(p.Table) + len(p.Column) + len(p.Key)
	}
	for _, p := range r.WritePartitions {
		n += len(p.Table) + len(p.Column) + len(p.Key)
	}
	n += 9 * len(r.WriteRowIDs)
	if r.Result != nil {
		for _, c := range r.Result.Columns {
			n += len(c)
		}
		for _, row := range r.Result.Rows {
			for _, v := range row {
				n += 9 + len(v.Str)
			}
		}
	}
	return n
}
