package bench

import (
	"testing"
	"time"

	"warp/internal/store"
)

// BenchmarkDurableWrite reports the durable hot path against the
// in-memory baseline on the logged write request path: WAL off, WAL
// with the default windowed group commit, and WAL with fsync-awaited
// appends. Compare the ns/op lines for the throughput ratio.
func BenchmarkDurableWrite(b *testing.B) {
	run := func(b *testing.B, dir string, opts store.Options) {
		w, err := DurableDeployment(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer w.Crash()                                  // skip the exit checkpoint; timing only
		if _, err := ServeWrites(w, 32, 1); err != nil { // warm up
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := ServeWrites(w, b.N, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("memory", func(b *testing.B) {
		run(b, "", store.Options{})
	})
	b.Run("wal", func(b *testing.B) {
		run(b, b.TempDir(), store.Options{})
	})
	b.Run("wal-sync", func(b *testing.B) {
		run(b, b.TempDir(), store.Options{SyncEveryAppend: true})
	})
}

// TestDurableOverheadBound is the acceptance bar: on the paper's wiki
// workload generator, the durable deployment (default group commit)
// stays within 3x of the in-memory one. The measured line always prints
// so CI logs carry the number; the bound is asserted only without the
// race detector (instrumentation distorts the ratio).
func TestDurableOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("workload measurement in -short mode")
	}
	const users, bound = 8, 3.0
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		mem, dur, err := DurableWorkloadOverhead(users, t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratio = float64(dur) / float64(mem)
		t.Logf("durable-vs-memory (%d-user wiki workload, attempt %d): memory=%v durable=%v overhead=%.2fx",
			users, attempt+1, mem.Round(time.Millisecond), dur.Round(time.Millisecond), ratio)
		if ratio <= bound {
			break
		}
	}
	if !raceEnabled && ratio > bound {
		t.Fatalf("durable workload is %.2fx the in-memory one; group commit must keep it within %.1fx", ratio, bound)
	}
}

// TestDurableWorkloadRecovers ties the bench path back to correctness:
// the workload the overhead test persists must actually be recoverable.
func TestDurableWorkloadRecovers(t *testing.T) {
	dir := t.TempDir()
	w, err := DurableDeployment(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ServeWrites(w, 50, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := DurableDeployment(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	res, _, err := w2.DB.Exec("SELECT COUNT(*) FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FirstValue().AsInt(); got != 50 {
		t.Fatalf("recovered %d notes, want 50", got)
	}
	// And the recovered deployment still accepts writes with fresh IDs.
	if _, err := ServeWrites(w2, 10, 100); err != nil {
		t.Fatal(err)
	}
	res, _, err = w2.DB.Exec("SELECT COUNT(*) FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FirstValue().AsInt(); got != 60 {
		t.Fatalf("after more writes: %d notes, want 60", got)
	}
}
