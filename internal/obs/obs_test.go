package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBounds checks the bucket geometry: every nanosecond value
// lands in the bucket whose [lower, upper] range contains it, bucket 0
// is exactly 0, and the power-of-two boundaries split the way the
// bit-length rule says (2^(i-1) opens bucket i).
func TestBucketBounds(t *testing.T) {
	for _, ns := range []int64{-5, 0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 20, (1 << 40) - 1, 1 << 40, 1<<62 + 1} {
		i := bucketOf(ns)
		want := ns
		if want < 0 {
			want = 0
		}
		if lo, hi := bucketLower(i), BucketUpper(i); want < lo || want > hi {
			t.Errorf("bucketOf(%d) = %d, but bucket range is [%d, %d]", ns, i, lo, hi)
		}
	}
	if got := bucketOf(0); got != 0 {
		t.Errorf("bucketOf(0) = %d, want 0", got)
	}
	for i := 1; i < NumBuckets-1; i++ {
		// The lower bound of bucket i+1 is one past the upper bound of
		// bucket i: no gaps, no overlap.
		if bucketLower(i+1) != BucketUpper(i)+1 {
			t.Fatalf("gap between bucket %d (upper %d) and bucket %d (lower %d)",
				i, BucketUpper(i), i+1, bucketLower(i+1))
		}
	}
}

// testDurations returns a deterministic pseudorandom duration sample
// spanning several orders of magnitude (the spread of real exec/fsync
// latencies).
func testDurations(n int) []time.Duration {
	out := make([]time.Duration, 0, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		// Spread over ~2^10..2^34 ns (µs to tens of seconds).
		shift := 10 + (state>>58)%25
		out = append(out, time.Duration((state>>20)%(uint64(1)<<shift)))
	}
	return out
}

// TestQuantileOracle observes a recorded duration sample and checks the
// histogram quantiles against the exact order statistics of the sorted
// sample: each reported quantile must land in the same power-of-two
// bucket as the true value — the documented resolution bound.
func TestQuantileOracle(t *testing.T) {
	durs := testDurations(5000)
	var h Histogram
	for _, d := range durs {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(durs)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(durs))
	}

	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		oracle := sorted[int(q*float64(len(sorted)-1))]
		got := s.Quantile(q)
		if bucketOf(int64(got)) != bucketOf(int64(oracle)) {
			t.Errorf("Quantile(%.2f) = %v (bucket %d), oracle %v (bucket %d)",
				q, got, bucketOf(int64(got)), oracle, bucketOf(int64(oracle)))
		}
	}

	// Max is the containing bucket's upper bound for the true maximum.
	trueMax := sorted[len(sorted)-1]
	if got := s.Max(); got != time.Duration(BucketUpper(bucketOf(int64(trueMax)))) {
		t.Errorf("Max() = %v, want upper bound of bucket holding %v", got, trueMax)
	}

	// Mean is exact: Sum and Count are not bucketed.
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	if got, want := s.Mean(), sum/time.Duration(len(durs)); got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
}

// TestQuantileEdges covers the empty, single-observation, and clamping
// cases.
func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty snapshot should report zeros")
	}
	var h Histogram
	h.Observe(100 * time.Microsecond)
	s := h.Snapshot()
	b := bucketOf(int64(100 * time.Microsecond))
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); bucketOf(int64(got)) != b {
			t.Errorf("single-observation Quantile(%g) = %v, outside bucket %d", q, got, b)
		}
	}
}

// TestMergeSub checks that snapshots add and subtract exactly: merging
// two disjoint samples equals observing both into one histogram, and a
// window bracketed by two snapshots recovers exactly the observations
// in between.
func TestMergeSub(t *testing.T) {
	a, b := testDurations(500), testDurations(700)[500:]
	var ha, hb, hboth Histogram
	for _, d := range a {
		ha.Observe(d)
		hboth.Observe(d)
	}
	for _, d := range b {
		hb.Observe(d)
		hboth.Observe(d)
	}
	merged := ha.Snapshot()
	merged.Merge(hb.Snapshot())
	if merged != hboth.Snapshot() {
		t.Error("Merge(a, b) differs from observing a∪b directly")
	}
	if diff := hboth.Snapshot().Sub(ha.Snapshot()); diff != hb.Snapshot() {
		t.Error("Sub window differs from the observations inside it")
	}
}

// TestRegistryIdempotent checks that re-requesting a metric name returns
// the same instance and that snapshots come out sorted with lookups
// working.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1, c2 := r.Counter("z_total"), r.Counter("z_total")
	if c1 != c2 {
		t.Error("Counter registration not idempotent")
	}
	c1.Add(3)
	r.Counter("a_total").Inc()
	r.Gauge("g").Set(-7)
	r.Histogram("h_seconds").Observe(time.Millisecond)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_total" || s.Counters[1].Name != "z_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counter("z_total") != 3 || s.Counter("a_total") != 1 || s.Counter("missing") != 0 {
		t.Error("Snapshot.Counter lookups wrong")
	}
	if s.Gauge("g") != -7 {
		t.Error("Snapshot.Gauge lookup wrong")
	}
	if hs, ok := s.Histogram("h_seconds"); !ok || hs.Count != 1 {
		t.Error("Snapshot.Histogram lookup wrong")
	}

	c1.Add(5)
	r.Histogram("h_seconds").Observe(time.Millisecond)
	win := r.Snapshot().Sub(s)
	if win.Counter("z_total") != 5 || win.Counter("a_total") != 0 {
		t.Error("Snapshot.Sub counter deltas wrong")
	}
	if win.Gauge("g") != -7 {
		t.Error("Snapshot.Sub should keep gauges instantaneous")
	}
	if hs, _ := win.Histogram("h_seconds"); hs.Count != 1 {
		t.Errorf("Snapshot.Sub histogram window count = %d, want 1", hs.Count)
	}
}

// TestWritePrometheus checks the text exposition: TYPE lines, baked-in
// label merging, cumulative le buckets in seconds, and the +Inf bucket
// equal to _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("warp_x_total").Add(9)
	r.Gauge(`warp_g{kind="a"}`).Set(4)
	h := r.Histogram(`warp_h_seconds{shape="eq"}`)
	h.Observe(time.Second)
	h.Observe(2 * time.Second)
	h.Observe(time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE warp_x_total counter\nwarp_x_total 9\n",
		"# TYPE warp_g gauge\nwarp_g{kind=\"a\"} 4\n",
		"# TYPE warp_h_seconds histogram\n",
		`warp_h_seconds_bucket{shape="eq",le="+Inf"} 3`,
		`warp_h_seconds_count{shape="eq"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 1ms observation's bucket count must be
	// included in the ≥1s buckets' counts.
	var lastCum int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "warp_h_seconds_bucket") {
			v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
			if err != nil {
				t.Fatalf("unparsable bucket line %q: %v", line, err)
			}
			if v < lastCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastCum = v
		}
	}
	if lastCum != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", lastCum)
	}
}

// TestSplitName checks baked-in label parsing.
func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, base, labels string }{
		{"m", "m", ""},
		{`m{a="b"}`, "m", `a="b"`},
		{"m{broken", "m{broken", ""},
	} {
		base, labels := splitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
}

// TestTraceNil checks that every trace operation is inert on a nil
// trace, so instrumented code needs no conditionals when tracing is
// off.
func TestTraceNil(t *testing.T) {
	var tr *Trace
	sp := tr.Begin("phase")
	sp.End()
	tr.Finish()
	if s := tr.Snapshot(); s.Name != "" || len(s.Phases) != 0 {
		t.Error("nil trace snapshot should be zero")
	}
}

// TestTracePhases checks per-phase aggregation, first-seen ordering,
// open-span accounting, and the bounded detail list with drop counting.
func TestTracePhases(t *testing.T) {
	tr := NewTrace("repair:test")
	sp := tr.Begin("frontier")
	sp.End()
	for i := 0; i < 3; i++ {
		sp := tr.Begin("replay")
		sp.End()
	}
	open := tr.Begin("commit")
	s := tr.Snapshot()
	if s.Open != 1 {
		t.Errorf("Open = %d, want 1", s.Open)
	}
	open.End()
	tr.Finish()
	tr.Finish() // idempotent

	s = tr.Snapshot()
	if !s.Done || s.Name != "repair:test" {
		t.Fatalf("snapshot after Finish: %+v", s)
	}
	wantOrder := []string{"frontier", "replay", "commit"}
	if len(s.Phases) != len(wantOrder) {
		t.Fatalf("phases = %+v, want %v", s.Phases, wantOrder)
	}
	for i, name := range wantOrder {
		if s.Phases[i].Phase != name {
			t.Errorf("phase[%d] = %q, want %q (first-seen order)", i, s.Phases[i].Phase, name)
		}
	}
	if got := s.Phase("replay").Count; got != 3 {
		t.Errorf("replay count = %d, want 3", got)
	}
	if s.Phase("absent").Count != 0 {
		t.Error("absent phase should report zero")
	}
	if len(s.Spans) != 5 {
		t.Errorf("spans = %d, want 5", len(s.Spans))
	}

	// Overflow: past maxTraceSpans the detail list stops growing but
	// aggregates and the drop counter keep counting.
	for i := len(s.Spans); i < maxTraceSpans+10; i++ {
		sp := tr.Begin("replay")
		sp.End()
	}
	s = tr.Snapshot()
	if len(s.Spans) != maxTraceSpans {
		t.Errorf("spans = %d, want cap %d", len(s.Spans), maxTraceSpans)
	}
	if s.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", s.Dropped)
	}
	if got := s.Phase("replay").Count; got != uint64(3+maxTraceSpans+10-5) {
		t.Errorf("replay count = %d, want %d (aggregates ignore the cap)", got, 3+maxTraceSpans+10-5)
	}
}

// TestConcurrentObserve hammers one histogram, counter, and gauge from
// many goroutines while another goroutine snapshots continuously — the
// -race run is the assertion that the atomics are used correctly; the
// final counts are the assertion that no observation is lost.
func TestConcurrentObserve(t *testing.T) {
	const (
		writers = 8
		perW    = 2000
	)
	r := NewRegistry()
	h := r.Histogram("h")
	c := r.Counter("c")
	g := r.Gauge("g")
	tr := NewTrace("t")

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		prev := r.Snapshot()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := r.Snapshot()
			// Windows bracketed by racing snapshots must still be
			// monotone: counts never go backwards.
			if cur.Counter("c") < prev.Counter("c") {
				t.Error("counter went backwards across snapshots")
				return
			}
			hs, _ := cur.Histogram("h")
			ps, _ := prev.Histogram("h")
			if hs.Count < ps.Count {
				t.Error("histogram count went backwards across snapshots")
				return
			}
			tr.Snapshot()
			prev = cur
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(w*perW+i) * time.Microsecond)
				c.Inc()
				g.Add(1)
				g.Add(-1)
				sp := tr.Begin("work")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := h.Snapshot()
	if want := uint64(writers * perW); s.Count != want {
		t.Errorf("histogram count = %d, want %d", s.Count, want)
	}
	if c.Value() != uint64(writers*perW) {
		t.Errorf("counter = %d, want %d", c.Value(), writers*perW)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if got := tr.Snapshot().Phase("work").Count; got != uint64(writers*perW) {
		t.Errorf("trace phase count = %d, want %d", got, writers*perW)
	}
}

// TestEnabledToggle checks the package-level gate.
func TestEnabledToggle(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(true)
	if !Enabled() {
		t.Error("Enabled() = false after SetEnabled(true)")
	}
	SetEnabled(false)
	if Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
}
