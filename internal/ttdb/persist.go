package ttdb

import (
	"fmt"
	"sort"

	"warp/internal/sqldb"
	"warp/internal/store"
)

// This file implements the time-travel database's side of durability
// (docs/persistence.md): binary codecs for values and query records, a
// full-state snapshot encoder/decoder, and WAL-record replay.
//
// The division of labor with internal/store: ttdb encodes and decodes
// its own state with store's generic codec primitives and emits change
// events through the Observer interface; store only moves opaque bytes.
//
// Replay strategy: every normal-execution mutation is logged as its
// query Record (SQL, parameters, time, generation, write set). Replaying
// the records in logged order through the same execution engine, at
// their original times and generations and reusing their original row
// IDs, rebuilds bit-identical physical state — the versioned tables, the
// per-partition version index, and the row ID allocator.

// EncodeValue appends one SQL value to the encoder.
func EncodeValue(enc *store.Encoder, v sqldb.Value) {
	enc.Byte(byte(v.Kind))
	switch v.Kind {
	case sqldb.KindInt:
		enc.Int(v.Int)
	case sqldb.KindText:
		enc.String(v.Str)
	case sqldb.KindBool:
		enc.Bool(v.B)
	}
}

// DecodeValue reads one SQL value.
func DecodeValue(dec *store.Decoder) sqldb.Value {
	switch sqldb.Kind(dec.Byte()) {
	case sqldb.KindInt:
		return sqldb.Int(dec.Int())
	case sqldb.KindText:
		return sqldb.Text(dec.String())
	case sqldb.KindBool:
		return sqldb.Bool(dec.Bool())
	default:
		return sqldb.Null()
	}
}

func encodeValues(enc *store.Encoder, vals []sqldb.Value) {
	enc.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		EncodeValue(enc, v)
	}
}

func decodeValues(dec *store.Decoder) []sqldb.Value {
	n := dec.Count()
	out := make([]sqldb.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DecodeValue(dec))
	}
	return out
}

func encodePartition(enc *store.Encoder, p Partition) {
	enc.String(p.Table)
	enc.String(p.Column)
	enc.String(p.Key)
}

func decodePartition(dec *store.Decoder) Partition {
	return Partition{Table: dec.String(), Column: dec.String(), Key: dec.String()}
}

func encodePartitions(enc *store.Encoder, ps []Partition) {
	enc.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		encodePartition(enc, p)
	}
}

func decodePartitions(dec *store.Decoder) []Partition {
	n := dec.Count()
	out := make([]Partition, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decodePartition(dec))
	}
	return out
}

func encodeResult(enc *store.Encoder, res *sqldb.Result) {
	if res == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.Uvarint(uint64(len(res.Columns)))
	for _, c := range res.Columns {
		enc.String(c)
	}
	enc.Int(int64(res.Affected))
	enc.Uvarint(uint64(len(res.Rows)))
	for _, row := range res.Rows {
		encodeValues(enc, row)
	}
}

func decodeResult(dec *store.Decoder) *sqldb.Result {
	if !dec.Bool() {
		return nil
	}
	res := &sqldb.Result{}
	n := dec.Count()
	for i := 0; i < n; i++ {
		res.Columns = append(res.Columns, dec.String())
	}
	res.Affected = int(dec.Int())
	n = dec.Count()
	for i := 0; i < n; i++ {
		res.Rows = append(res.Rows, decodeValues(dec))
	}
	return res
}

// EncodeRecord appends a query record to the encoder.
func EncodeRecord(enc *store.Encoder, r *Record) {
	enc.String(r.SQL)
	encodeValues(enc, r.Params)
	enc.Int(r.Time)
	enc.Int(r.Gen)
	enc.String(r.Table)
	enc.Byte(byte(r.Kind))
	encodePartitions(enc, r.ReadPartitions)
	encodePartitions(enc, r.WritePartitions)
	encodeValues(enc, r.WriteRowIDs)
	encodeResult(enc, r.Result)
	enc.String(r.ErrText)
}

// DecodeRecord reads a query record.
func DecodeRecord(dec *store.Decoder) *Record {
	r := &Record{
		SQL:    dec.String(),
		Params: decodeValues(dec),
		Time:   dec.Int(),
		Gen:    dec.Int(),
		Table:  dec.String(),
		Kind:   QueryKind(dec.Byte()),
	}
	r.ReadPartitions = decodePartitions(dec)
	r.WritePartitions = decodePartitions(dec)
	r.WriteRowIDs = decodeValues(dec)
	r.Result = decodeResult(dec)
	r.ErrText = dec.String()
	return r
}

func encodeSpec(enc *store.Encoder, spec TableSpec) {
	enc.String(spec.RowIDColumn)
	enc.Uvarint(uint64(len(spec.PartitionColumns)))
	for _, c := range spec.PartitionColumns {
		enc.String(c)
	}
}

func decodeSpec(dec *store.Decoder) TableSpec {
	spec := TableSpec{RowIDColumn: dec.String()}
	n := dec.Count()
	for i := 0; i < n; i++ {
		spec.PartitionColumns = append(spec.PartitionColumns, dec.String())
	}
	return spec
}

// DecodeSpec reads a table annotation (the payload of an annotation WAL
// record, written by the core's observer from TableAnnotated events).
func DecodeSpec(dec *store.Decoder) TableSpec { return decodeSpec(dec) }

// EncodeSpec appends a table annotation to the encoder.
func EncodeSpec(enc *store.Encoder, spec TableSpec) { encodeSpec(enc, spec) }

const stateVersion = 1

// EncodeMeta serializes the database's global metadata — the current
// generation, the GC horizon, and pending table annotations — as one
// snapshot section. Table contents are encoded separately (EncodeTable),
// so an incremental checkpoint rewrites only the tables that changed.
func (db *DB) EncodeMeta(enc *store.Encoder) {
	db.mu.Lock()
	defer db.mu.Unlock()
	enc.Byte(stateVersion)
	enc.Int(db.currentGen.Load())
	enc.Int(db.gcBefore)

	specNames := make([]string, 0, len(db.specs))
	for name := range db.specs {
		specNames = append(specNames, name)
	}
	sort.Strings(specNames)
	enc.Uvarint(uint64(len(specNames)))
	for _, name := range specNames {
		enc.String(name)
		encodeSpec(enc, db.specs[name])
	}
}

// RestoreMeta rebuilds the global metadata from an EncodeMeta section.
func (db *DB) RestoreMeta(dec *store.Decoder) error {
	if v := dec.Byte(); v != stateVersion {
		if err := dec.Err(); err != nil {
			return err
		}
		return fmt.Errorf("ttdb: unsupported snapshot state version %d", v)
	}
	db.currentGen.Store(dec.Int())
	db.gcBefore = dec.Int()

	nSpecs := dec.Count()
	for i := 0; i < nSpecs; i++ {
		name := dec.String()
		db.specs[name] = decodeSpec(dec)
	}
	return dec.Err()
}

// EncodeTable serializes one table's complete state — annotation,
// augmented schema, physical row versions, row-ID allocator, and
// per-partition version index — as a self-contained snapshot section.
// The table's lock is held for the duration; the caller is responsible
// for quiescing direct writers, the same rule EncodeState had.
func (db *DB) EncodeTable(enc *store.Encoder, table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, err := db.lockTable(table)
	if err != nil {
		return err
	}
	defer m.mu.Unlock()
	return db.encodeTableLocked(enc, m)
}

func (db *DB) encodeTableLocked(enc *store.Encoder, m *tableMeta) error {
	enc.String(m.name)
	encodeSpec(enc, m.spec)
	enc.Int(m.nextRowID)
	enc.Uvarint(uint64(len(m.userCols)))
	for _, c := range m.userCols {
		enc.String(c)
	}

	cols, uniques, err := db.raw.Schema(m.name)
	if err != nil {
		return err
	}
	enc.Uvarint(uint64(len(cols)))
	for _, c := range cols {
		enc.String(c.Name)
		enc.Byte(byte(c.Type))
		enc.Bool(c.NotNull)
		if c.Default != nil {
			enc.Bool(true)
			EncodeValue(enc, c.Default.Value)
		} else {
			enc.Bool(false)
		}
	}
	enc.Uvarint(uint64(len(uniques)))
	for _, u := range uniques {
		enc.String(u.Name)
		enc.Bool(u.Primary)
		enc.Uvarint(uint64(len(u.Columns)))
		for _, c := range u.Columns {
			enc.String(c)
		}
	}
	idxCols := db.raw.IndexedColumns(m.name)
	enc.Uvarint(uint64(len(idxCols)))
	for _, c := range idxCols {
		enc.String(c)
	}

	rows, err := db.selectPhysical(m, nil, nil)
	if err != nil {
		return err
	}
	enc.Uvarint(uint64(len(rows.Columns)))
	for _, c := range rows.Columns {
		enc.String(c)
	}
	enc.Uvarint(uint64(len(rows.Rows)))
	for _, row := range rows.Rows {
		encodeValues(enc, row)
	}

	parts := make([]Partition, 0, len(m.partIdx))
	for p := range m.partIdx {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].Column != parts[j].Column {
			return parts[i].Column < parts[j].Column
		}
		return parts[i].Key < parts[j].Key
	})
	enc.Uvarint(uint64(len(parts)))
	for _, p := range parts {
		enc.String(p.Column)
		enc.String(p.Key)
		entries := m.partIdx[p]
		enc.Uvarint(uint64(len(entries)))
		for _, e := range entries {
			EncodeValue(enc, e.rowID)
			enc.Int(e.t)
		}
	}
	return nil
}

// RestoreTable rebuilds one table from an EncodeTable section. The
// database must not already hold the table; RestoreMeta must run first
// so annotations are in place.
func (db *DB) RestoreTable(dec *store.Decoder) error {
	return db.restoreTable(dec)
}

// EncodeState serializes the database's complete state — metadata plus
// every table — as one payload: the full (compaction) form of the
// sectioned codecs above, also used directly by tests. The caller is
// responsible for quiescing concurrent direct writers; the call itself
// takes every table lock, so anything running through the normal
// execution paths serializes with it.
func (db *DB) EncodeState(enc *store.Encoder) error {
	metas := db.lockAll()
	defer db.unlockAll(metas)

	enc.Byte(stateVersion)
	enc.Int(db.currentGen.Load())
	enc.Int(db.gcBefore)

	specNames := make([]string, 0, len(db.specs))
	for name := range db.specs {
		specNames = append(specNames, name)
	}
	sort.Strings(specNames)
	enc.Uvarint(uint64(len(specNames)))
	for _, name := range specNames {
		enc.String(name)
		encodeSpec(enc, db.specs[name])
	}

	enc.Uvarint(uint64(len(metas))) // metas are sorted by name (lockAll)
	for _, m := range metas {
		if err := db.encodeTableLocked(enc, m); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState rebuilds the database from a snapshot written by
// EncodeState. The receiver must be freshly opened (no tables).
func (db *DB) RestoreState(dec *store.Decoder) error {
	if v := dec.Byte(); v != stateVersion {
		if err := dec.Err(); err != nil {
			return err
		}
		return fmt.Errorf("ttdb: unsupported snapshot state version %d", v)
	}
	db.currentGen.Store(dec.Int())
	db.gcBefore = dec.Int()

	nSpecs := dec.Count()
	for i := 0; i < nSpecs; i++ {
		name := dec.String()
		db.specs[name] = decodeSpec(dec)
	}

	nTables := dec.Count()
	for i := 0; i < nTables; i++ {
		if err := db.restoreTable(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

func (db *DB) restoreTable(dec *store.Decoder) error {
	name := dec.String()
	spec := decodeSpec(dec)
	m := &tableMeta{
		name:      name,
		spec:      spec,
		rowIDCol:  spec.RowIDColumn,
		partCols:  make(map[string]bool),
		partIdx:   make(map[Partition][]partEntry),
		nextRowID: dec.Int(),
	}
	if m.rowIDCol == "" {
		m.rowIDCol = ColRowID
		m.synthetic = true
	}
	for _, pc := range spec.PartitionColumns {
		m.partCols[pc] = true
	}
	nUser := dec.Count()
	for i := 0; i < nUser; i++ {
		m.userCols = append(m.userCols, dec.String())
	}

	// Recreate the (already augmented) physical schema directly on the
	// raw engine: the versioning columns and extended uniqueness
	// constraints were applied when the table was first created.
	ct := &sqldb.CreateTable{Table: name}
	nCols := dec.Count()
	for i := 0; i < nCols; i++ {
		col := sqldb.ColumnDef{Name: dec.String(), Type: sqldb.Kind(dec.Byte()), NotNull: dec.Bool()}
		if dec.Bool() {
			col.Default = &sqldb.Literal{Value: DecodeValue(dec)}
		}
		ct.Columns = append(ct.Columns, col)
	}
	nUniq := dec.Count()
	for i := 0; i < nUniq; i++ {
		u := sqldb.UniqueConstraint{Name: dec.String(), Primary: dec.Bool()}
		nc := dec.Count()
		for j := 0; j < nc; j++ {
			u.Columns = append(u.Columns, dec.String())
		}
		ct.Uniques = append(ct.Uniques, u)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if _, err := db.raw.ExecStmt(ct, nil); err != nil {
		return err
	}
	nIdx := dec.Count()
	for i := 0; i < nIdx; i++ {
		col := dec.String()
		ci := &sqldb.CreateIndex{Name: "warp_idx_" + name + "_" + col, Table: name, Column: col}
		if _, err := db.raw.ExecStmt(ci, nil); err != nil {
			return err
		}
	}

	nRowCols := dec.Count()
	rowCols := make([]string, 0, nRowCols)
	for i := 0; i < nRowCols; i++ {
		rowCols = append(rowCols, dec.String())
	}
	nRows := dec.Count()
	const chunk = 256
	ins := &sqldb.Insert{Table: name, Columns: rowCols}
	for i := 0; i < nRows; i++ {
		vals := decodeValues(dec)
		if len(vals) != len(rowCols) {
			return fmt.Errorf("ttdb: snapshot row of %s has %d values for %d columns", name, len(vals), len(rowCols))
		}
		exprs := make([]sqldb.Expr, len(vals))
		for j, v := range vals {
			exprs[j] = sqldb.Lit(v)
		}
		ins.Rows = append(ins.Rows, exprs)
		if len(ins.Rows) == chunk || i == nRows-1 {
			if err := dec.Err(); err != nil {
				return err
			}
			if _, err := db.raw.ExecStmt(ins, nil); err != nil {
				return err
			}
			ins.Rows = ins.Rows[:0]
		}
	}

	nParts := dec.Count()
	for i := 0; i < nParts; i++ {
		p := Partition{Table: name, Column: dec.String(), Key: dec.String()}
		nEnt := dec.Count()
		entries := make([]partEntry, 0, nEnt)
		for j := 0; j < nEnt; j++ {
			entries = append(entries, partEntry{rowID: DecodeValue(dec), t: dec.Int()})
		}
		m.partIdx[p] = entries
	}
	if err := dec.Err(); err != nil {
		return err
	}

	db.tablesMu.Lock()
	db.tables[name] = m
	db.tablesMu.Unlock()
	return nil
}

// Replay re-applies one logged query record during recovery: the
// statement re-executes at its original time and generation, reusing its
// originally assigned row IDs, which reproduces the exact physical state
// the original execution created. Records must replay in logged order.
func (db *DB) Replay(rec *Record) error {
	stmt, err := sqldb.Parse(rec.SQL)
	if err != nil {
		return fmt.Errorf("ttdb: replaying %q: %w", rec.SQL, err)
	}
	m, unlock, err := db.lockFor(stmt)
	if err != nil {
		return fmt.Errorf("ttdb: replaying %q: %w", rec.SQL, err)
	}
	defer unlock()
	db.clock.AdvanceTo(rec.Time)
	if _, _, err := db.execAt(stmt, rec.Params, rec.Time, rec.Gen, rec, m); err != nil {
		return fmt.Errorf("ttdb: replaying %q: %w", rec.SQL, err)
	}
	return nil
}
