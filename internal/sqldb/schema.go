package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is an in-memory SQL database. A DB is safe for concurrent use; all
// statement execution is serialized, which matches the single-writer model
// the WARP paper assumes for its query log.
//
// The zero value is not usable; call Open.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table
	// epoch counts DDL and constraint changes; compiled statement plans
	// record the epoch they were built at and recompile when it moves
	// (plan.go). Guarded by mu.
	epoch uint64
	// stmts caches parsed statements and their plans for the text-based
	// Exec entry point.
	stmts *StmtCache
	// counters accumulates plan-cache and scan-path introspection
	// (stats.go). Guarded by mu: every exec path increments under it.
	counters execCounters
	// ownedExec, while true, makes runSelect cut result rows from pooled
	// arena storage (resultpool.go). Set only by the *Owned entry points,
	// under mu for the span of one execution.
	ownedExec bool
	// lastShape records the plan shape of the execution in flight so the
	// timed entry points can bucket its latency (obsmetrics.go). Guarded
	// by mu; meaningful only between an entry point's reset and its read.
	lastShape ExecShape
}

// Open returns a new, empty database.
func Open() *DB {
	return &DB{tables: make(map[string]*Table), stmts: NewStmtCache(0)}
}

// bumpEpoch invalidates every compiled plan. Caller holds mu.
func (db *DB) bumpEpoch() { db.epoch++ }

// Epoch returns the DDL epoch, for tests asserting plan invalidation.
func (db *DB) Epoch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.epoch
}

// Table holds the schema and rows of one table. Rows occupy stable slots
// in paged storage (pages.go): a row's slot never changes, and deleted
// rows leave tombstones, which keeps index bookkeeping simple and scan
// order deterministic.
type Table struct {
	Name     string
	Columns  []ColumnDef
	Uniques  []UniqueConstraint
	colIdx   map[string]int
	store    pageStore
	liveRows int
	indexes  map[string]*colIndex
	uniques  []*uniqueSet
}

type row struct {
	vals    []Value
	deleted bool
}

// colIndex is a dual-structure index on a single column: hash buckets
// answer equality probes in O(1), and the ordered skip list (ordindex.go)
// keeps the same postings in key order for range and ORDER BY scans.
// Both halves keep row slots sorted ascending so scans through an index
// preserve insertion order among equal keys.
type colIndex struct {
	column  string
	buckets map[string][]int
	ord     *ordIndex
}

func newColIndex(column string) *colIndex {
	return &colIndex{column: column, buckets: make(map[string][]int), ord: newOrdIndex()}
}

func (ix *colIndex) add(v Value, slot int) {
	key := v.Key()
	b := ix.buckets[key]
	// Slots are almost always appended in increasing order; handle the
	// general case with a binary insert.
	i := sort.SearchInts(b, slot)
	if i < len(b) && b[i] == slot {
		return
	}
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = slot
	ix.buckets[key] = b
	ix.ord.add(v, slot)
}

func (ix *colIndex) remove(v Value, slot int) {
	key := v.Key()
	b := ix.buckets[key]
	i := sort.SearchInts(b, slot)
	if i < len(b) && b[i] == slot {
		b = append(b[:i], b[i+1:]...)
		if len(b) == 0 {
			delete(ix.buckets, key)
		} else {
			ix.buckets[key] = b
		}
		ix.ord.remove(v, slot)
	}
}

// uniqueSet enforces one unique constraint via a key → slot map.
type uniqueSet struct {
	def  UniqueConstraint
	cols []int // column positions
	m    map[string]int
}

func (u *uniqueSet) keyFor(vals []Value) (string, bool) {
	var b strings.Builder
	for _, ci := range u.cols {
		v := vals[ci]
		if v.IsNull() {
			// SQL semantics: NULL never collides in a unique constraint.
			return "", false
		}
		b.WriteString(v.Key())
		b.WriteByte(0)
	}
	return b.String(), true
}

func (t *Table) columnPos(name string) (int, bool) {
	i, ok := t.colIdx[name]
	return i, ok
}

// ColumnNames returns the table's column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.colIdx[name]
	return ok
}

// NumLiveRows returns the number of non-deleted rows.
func (t *Table) NumLiveRows() int { return t.liveRows }

func (t *Table) rebuildColIdx() {
	t.colIdx = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.colIdx[c.Name] = i
	}
}

func (t *Table) buildUniqueSets() error {
	t.uniques = nil
	for _, def := range t.Uniques {
		us := &uniqueSet{def: def, m: make(map[string]int)}
		for _, col := range def.Columns {
			ci, ok := t.columnPos(col)
			if !ok {
				return fmt.Errorf("sql: table %s: unique constraint references unknown column %s", t.Name, col)
			}
			us.cols = append(us.cols, ci)
		}
		t.uniques = append(t.uniques, us)
	}
	return t.store.forEachLive(func(slot int, r *row) error {
		for _, us := range t.uniques {
			if key, ok := us.keyFor(r.vals); ok {
				if prev, dup := us.m[key]; dup {
					return fmt.Errorf("sql: table %s: rows %d and %d violate %s", t.Name, prev, slot, us.def.String())
				}
				us.m[key] = slot
			}
		}
		return nil
	})
}

// Tables returns the names of all tables, sorted.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns the column definitions and unique constraints of a table.
// It returns copies; mutating them does not affect the database.
func (db *DB) Schema(table string) (cols []ColumnDef, uniques []UniqueConstraint, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return nil, nil, fmt.Errorf("sql: no such table %s", table)
	}
	cols = append(cols, t.Columns...)
	uniques = append(uniques, t.Uniques...)
	return cols, uniques, nil
}

// IndexedColumns returns the names of the columns with a hash index on
// the table, sorted. Snapshot encoding uses it to recreate indexes on
// recovery.
func (db *DB) IndexedColumns(table string) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return nil
	}
	cols := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(table string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.tables[table]
	return ok
}

// RowCount returns the number of live rows in the table, or 0 if the table
// does not exist.
func (db *DB) RowCount(table string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[table]; ok {
		return t.liveRows
	}
	return 0
}

// TotalRows returns the total number of live rows across all tables. WARP's
// storage accounting (Table 6) uses this to measure database growth.
func (db *DB) TotalRows() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, t := range db.tables {
		n += t.liveRows
	}
	return n
}

// ApproxTableBytes estimates the storage footprint of a table in bytes,
// counting live and historical (tombstoned) rows. WARP's storage accounting
// (paper Table 6) uses this to report database log growth per page visit.
func (db *DB) ApproxTableBytes(table string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return 0
	}
	n := 0
	t.store.forEachLive(func(_ int, r *row) error {
		for _, v := range r.vals {
			n += 9 + len(v.Str) // kind byte + 8-byte scalar + text payload
		}
		return nil
	})
	return n
}

// ApproxBytes estimates the storage footprint of all tables.
func (db *DB) ApproxBytes() int {
	n := 0
	for _, t := range db.Tables() {
		n += db.ApproxTableBytes(t)
	}
	return n
}

// SetUniques replaces the unique constraints of a table and revalidates
// existing rows. The time-travel layer uses this to extend application
// uniqueness constraints with version columns (paper §6).
func (db *DB) SetUniques(table string, uniques []UniqueConstraint) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("sql: no such table %s", table)
	}
	db.bumpEpoch()
	old := t.Uniques
	t.Uniques = uniques
	if err := t.buildUniqueSets(); err != nil {
		t.Uniques = old
		if rerr := t.buildUniqueSets(); rerr != nil {
			return fmt.Errorf("sql: constraint rollback failed: %v (after %v)", rerr, err)
		}
		return err
	}
	return nil
}
