package core

import (
	"errors"
	"fmt"
	"time"

	"warp/internal/obs"
	"warp/internal/store"
)

// Degraded read-only mode (docs/persistence.md "Failure model"). When
// the storage layer reports a fault — a poisoned fsync, an exhausted
// write retry, a checkpoint that could not be installed, scrub-detected
// corruption — the persister's fault fence attempts one checkpoint to
// re-secure the in-memory state. If that checkpoint succeeds, every
// committed byte is durable again under a fresh recovery root and the
// deployment carries on. If it fails, the storage is presumed unable to
// accept writes, and the deployment degrades rather than risking
// acknowledged-but-lost data: reads and time-travel queries keep
// serving (the in-memory state is intact and everything committed
// before the fault is recoverable from disk), while writes, repairs,
// and checkpoints are refused with ErrDegraded. Degraded mode is
// terminal for the process; the operator path back is to fix the
// underlying storage and re-Open the directory.

// ErrDegraded is returned (wrapped, with the storage cause) by every
// write path of a degraded deployment.
var ErrDegraded = errors.New("warp: degraded (read-only) mode")

var degradedGauge = obs.NewGauge("warp_store_degraded")

// degradedState is the terminal fault record a degraded Warp holds.
type degradedState struct {
	cause error
	since time.Time
	err   error // the wrapped ErrDegraded handed to refused writers
}

// enterDegraded switches the deployment into degraded read-only mode.
// Idempotent; only the first cause is kept.
func (w *Warp) enterDegraded(cause error) {
	st := &degradedState{
		cause: cause,
		since: time.Now(),
		err:   fmt.Errorf("%w: %v", ErrDegraded, cause),
	}
	if !w.degraded.CompareAndSwap(nil, st) {
		return
	}
	degradedGauge.Set(1)
	// Gate the database's normal-execution write path: live requests keep
	// reading, but any INSERT/UPDATE/DELETE/DDL — whether from
	// handleRequest, an admission-gated query during repair, or a direct
	// DB.Exec — is refused before it mutates state that can no longer be
	// made durable.
	w.DB.SetWriteGate(func() error { return st.err })
}

// Degraded reports whether the deployment is in degraded read-only mode.
func (w *Warp) Degraded() bool { return w.degraded.Load() != nil }

// DegradedCause returns the storage fault that degraded the deployment
// (nil when healthy).
func (w *Warp) DegradedCause() error {
	if st := w.degraded.Load(); st != nil {
		return st.cause
	}
	return nil
}

// degradedErr returns the wrapped ErrDegraded for refusal sites, nil
// when healthy.
func (w *Warp) degradedErr() error {
	if st := w.degraded.Load(); st != nil {
		return st.err
	}
	return nil
}

// Health is a point-in-time operational snapshot of the deployment,
// served by the deployment server's /warp/health endpoint.
type Health struct {
	// Degraded is true when the deployment is in read-only degraded mode.
	Degraded bool
	// DegradedCause and DegradedSince describe the fault that degraded
	// the deployment (empty/zero when healthy).
	DegradedCause string
	DegradedSince time.Time
	// LastStorageFault is the most recent fault the store reported, even
	// if the fault fence absorbed it with a successful checkpoint.
	LastStorageFault string
	// Scrub is the background scrubber's cumulative progress (zero value
	// for in-memory deployments or when scrubbing is disabled).
	Scrub store.ScrubStats
}

// Health reports the deployment's current health.
func (w *Warp) Health() Health {
	var h Health
	if st := w.degraded.Load(); st != nil {
		h.Degraded = true
		h.DegradedCause = st.cause.Error()
		h.DegradedSince = st.since
	}
	if w.pers != nil {
		if err := w.pers.st.LastFault(); err != nil {
			h.LastStorageFault = err.Error()
		}
		h.Scrub = w.pers.st.ScrubStats()
	}
	return h
}

// ScrubNow runs one synchronous storage scrub pass (no-op for in-memory
// deployments); see store.ScrubNow.
func (w *Warp) ScrubNow() error {
	if w.pers == nil {
		return nil
	}
	return w.pers.st.ScrubNow()
}
