package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/obs"
	"warp/internal/ttdb"
)

// TestRepairMetricsLive is the observability acceptance test: during a
// BenchmarkPartitionRepair-style run (hot partitioned table, per-client
// visit-replay chains, parallel workers), Warp.Metrics() must report
// the repair in flight — active gauge up, scheduler progress gauges
// moving, phase trace accumulating — and after it finishes, a complete
// phase breakdown plus populated exec latency histograms. The
// concurrent Metrics() polling is also the -race stress for histogram,
// counter, and trace writes during parallel repair.
func TestRepairMetricsLive(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	const (
		clients = 8
		pages   = 3
		workers = 4
		latency = 2 * time.Millisecond
	)
	w := core.New(core.Config{Seed: 99, RepairWorkers: workers})
	if err := w.DB.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := w.Runtime.Register("login.php", app.Version{Entry: loginHandler(false)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Runtime.Register("page.php", app.Version{Entry: postsHandler(latency)}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/login", "login.php")
	w.Runtime.Mount("/page", "page.php")
	id := 0
	for c := 0; c < clients; c++ {
		b := w.NewBrowser()
		if p := b.Open("/login"); p.DOM == nil {
			t.Fatalf("login failed for client %d", c)
		}
		for n := 0; n < pages; n++ {
			id++
			if p := b.Open(fmt.Sprintf("/page?owner=%s&id=%d&body=p%d", b.ClientID, id, n)); p.DOM == nil {
				t.Fatalf("page visit failed for client %d", c)
			}
		}
	}

	before := obs.Default.Snapshot()

	// Poll the metrics surface while the repair runs. Each client's
	// replay chain is pages+1 visits of ≥latency serial work, so the
	// repair takes several milliseconds even across workers — plenty of
	// 200µs polling windows to catch it live.
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	var sawActive, sawReplayPhase bool
	var maxReplayed int64
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := w.Metrics()
			if m.Obs.Gauge("warp_core_repair_active") == 1 {
				sawActive = true
			}
			if g := m.Obs.Gauge("warp_core_repair_actions_replayed"); g > maxReplayed {
				maxReplayed = g
			}
			if m.Repair != nil && !m.Repair.Done && m.Repair.Phase("replay").Count > 0 {
				sawReplayPhase = true
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	rep, err := w.RetroPatch("login.php", app.Version{Entry: loginHandler(true), Note: "session hardening"})
	close(stop)
	pollers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := clients * (pages + 1); rep.PageVisitsReplayed != want {
		t.Fatalf("visits replayed = %d, want %d", rep.PageVisitsReplayed, want)
	}
	if !sawActive {
		t.Error("never observed warp_core_repair_active = 1 during the repair")
	}
	if !sawReplayPhase {
		t.Error("never observed a live (unfinished) repair trace with replay spans")
	}

	m := w.Metrics()
	if m.Repair == nil {
		t.Fatal("Metrics().Repair is nil after an instrumented repair")
	}
	if !m.Repair.Done || !strings.HasPrefix(m.Repair.Name, "repair:") {
		t.Fatalf("final repair trace: done=%v name=%q", m.Repair.Done, m.Repair.Name)
	}
	for _, phase := range []string{"frontier", "replay", "commit"} {
		if m.Repair.Phase(phase).Count == 0 {
			t.Errorf("repair trace has no %q spans: %+v", phase, m.Repair.Phases)
		}
	}
	if m.Obs.Gauge("warp_core_repair_active") != 0 {
		t.Error("warp_core_repair_active still 1 after repair")
	}
	if m.Obs.Gauge("warp_core_repair_actions_remaining") != 0 {
		t.Errorf("actions remaining = %d after repair, want 0",
			m.Obs.Gauge("warp_core_repair_actions_remaining"))
	}
	replayed := m.Obs.Gauge("warp_core_repair_actions_replayed")
	if replayed < int64(clients*(pages+1)) {
		t.Errorf("actions replayed = %d, want ≥ %d (one per replayed visit)", replayed, clients*(pages+1))
	}
	if maxReplayed == 0 || maxReplayed > replayed {
		t.Errorf("live progress gauge peaked at %d, final %d", maxReplayed, replayed)
	}

	// The window over the whole test must show the repair counted and
	// the per-layer latency histograms populated: exec latencies from
	// the replayed queries, per-item repair latencies, lock waits only
	// if there was contention (not asserted).
	win := m.Obs.Sub(before)
	if got := win.Counter("warp_core_repairs_total"); got != 1 {
		t.Errorf("repairs in window = %d, want 1", got)
	}
	var execObs uint64
	for _, h := range win.Histograms {
		if strings.HasPrefix(h.Name, "warp_sqldb_exec_seconds") {
			execObs += h.Hist.Count
		}
	}
	if execObs == 0 {
		t.Error("no exec latency observations recorded during the repair window")
	}
	if hs, ok := win.Histogram("warp_core_repair_item_seconds"); !ok || hs.Count == 0 {
		t.Error("no repair item latency observations recorded")
	} else if hs.Quantile(0.5) <= 0 || hs.Quantile(0.99) < hs.Quantile(0.5) {
		t.Errorf("repair item quantiles inconsistent: p50=%v p99=%v", hs.Quantile(0.5), hs.Quantile(0.99))
	}
}
