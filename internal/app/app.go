// Package app implements WARP's application runtime and application repair
// manager (paper §3) — the role PHP plus WARP's PHP module played in the
// original prototype.
//
// Application code is organized as named source files (edit.php,
// login.php, ...), each holding a Go function. Files are versioned:
// registering a new version of a file is how patches — including
// retroactive patches — enter the system. During normal execution the
// runtime records, per run: the HTTP request and response, every source
// file loaded, every database query with its result, and the outcomes of
// nondeterministic calls (time, randomness, session-ID generation),
// exactly the dependencies §3.1 lists. During repair the runtime re-runs
// the (possibly patched) code, matching nondeterministic calls to the
// original run by call site, in order (§3.3).
package app

import (
	"fmt"
	"math/rand"
	"sync"

	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
	"warp/internal/vclock"
)

// Script is the entry point of an application source file: it handles one
// HTTP request. It is the analog of a PHP page.
type Script func(*Ctx) *httpd.Response

// Library is the exported API of a source file loaded via Include, for
// files that act as shared code rather than entry points.
type Library any

// Version is one version of a source file's code.
type Version struct {
	Entry Script
	Lib   Library
	Note  string // human-readable description (e.g. the CVE a patch fixes)
}

type sourceFile struct {
	name     string
	versions []Version
}

// Runtime hosts an application's source files and executes runs.
type Runtime struct {
	mu     sync.Mutex
	db     *ttdb.DB
	clock  *vclock.Clock
	rng    *rand.Rand
	draws  int64 // values drawn from rng; persisted so restarts resume the stream
	files  map[string]*sourceFile
	routes map[string]string
	runSeq int64
}

// NewRuntime creates a runtime over a time-travel database. seed drives
// the runtime's source of nondeterminism (tokens, random numbers); the
// value is arbitrary, and recorded values — not the seed — are what repair
// relies on.
func NewRuntime(db *ttdb.DB, seed int64) *Runtime {
	return &Runtime{
		db:     db,
		clock:  db.Clock(),
		rng:    rand.New(rand.NewSource(seed)),
		files:  make(map[string]*sourceFile),
		routes: make(map[string]string),
	}
}

// Register installs the first version of a source file.
func (rt *Runtime) Register(name string, v Version) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, exists := rt.files[name]; exists {
		return fmt.Errorf("app: file %s already registered", name)
	}
	rt.files[name] = &sourceFile{name: name, versions: []Version{v}}
	return nil
}

// Patch installs a new version of an existing source file. It is the
// entry point for security patches (§3.2).
func (rt *Runtime) Patch(name string, v Version) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f, ok := rt.files[name]
	if !ok {
		return fmt.Errorf("app: cannot patch unknown file %s", name)
	}
	f.versions = append(f.versions, v)
	return nil
}

// FileVersion returns the current version number of a file (1-based), or 0
// if unknown.
func (rt *Runtime) FileVersion(name string) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if f, ok := rt.files[name]; ok {
		return len(f.versions)
	}
	return 0
}

// Files returns the registered source file names.
func (rt *Runtime) Files() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.files))
	for n := range rt.files {
		out = append(out, n)
	}
	return out
}

// SetRunSeqFloor advances the run-ID allocator to at least v. Recovery
// calls it with the highest recovered run ID so post-recovery runs never
// reuse a recorded identity.
func (rt *Runtime) SetRunSeqFloor(v int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if v > rt.runSeq {
		rt.runSeq = v
	}
}

// nextRand draws the next value of the runtime's seeded nondeterminism
// stream, advancing the persistent cursor. Every generator (Token,
// RandInt) consumes exactly one draw, so a recovered deployment can
// fast-forward the stream by cursor alone (AdvanceRNGCursor).
func (rt *Runtime) nextRand() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.draws++
	return rt.rng.Uint64()
}

// RNGCursor reports how many values the runtime's seeded nondeterminism
// stream has produced. The persistence layer stores it in each
// checkpoint so a restarted deployment resumes the stream instead of
// replaying it from the seed — without this, the first post-restart
// login would regenerate a recovered session's sid and fail its
// uniqueness check (docs/persistence.md).
func (rt *Runtime) RNGCursor() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draws
}

// AdvanceRNGCursor fast-forwards the seeded stream to the given cursor.
// Recovery calls it with the checkpointed cursor; positions already
// passed are left alone.
func (rt *Runtime) AdvanceRNGCursor(n int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.draws < n {
		rt.rng.Uint64()
		rt.draws++
	}
}

// Mount routes an HTTP path to a source file.
func (rt *Runtime) Mount(path, file string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.routes[path] = file
}

// RouteOf resolves an HTTP path to a source file name.
func (rt *Runtime) RouteOf(path string) (string, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f, ok := rt.routes[path]
	return f, ok
}

func (rt *Runtime) current(name string) (Version, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f, ok := rt.files[name]
	if !ok || len(f.versions) == 0 {
		return Version{}, false
	}
	return f.versions[len(f.versions)-1], true
}

// NonDetCall records one intercepted nondeterministic call (§3.1): the
// call site and the value returned.
type NonDetCall struct {
	Site  string
	Value string
}

// RunRecord is everything WARP logs about one application run: the
// payload of a KindAppRun action in the history graph.
type RunRecord struct {
	RunID       int64
	Time        int64 // logical start time
	File        string
	Req         *httpd.Request
	Resp        *httpd.Response
	FilesLoaded []string
	Queries     []*ttdb.Record
	NonDet      []NonDetCall
	Failed      bool // script panicked
}

// ApproxLogBytes estimates the application-level log footprint of the run
// (request, response, nondeterminism), excluding database records, which
// are accounted separately (Table 6's App vs DB split).
func (r *RunRecord) ApproxLogBytes() int {
	n := 16
	if r.Req != nil {
		n += r.Req.ApproxBytes()
	}
	if r.Resp != nil {
		n += r.Resp.ApproxBytes()
	}
	for _, f := range r.FilesLoaded {
		n += len(f)
	}
	for _, nd := range r.NonDet {
		n += len(nd.Site) + len(nd.Value)
	}
	return n
}

// DBLogBytes estimates the database-level log footprint of the run.
func (r *RunRecord) DBLogBytes() int {
	n := 0
	for _, q := range r.Queries {
		n += q.ApproxLogBytes()
	}
	return n
}

// QueryFunc executes one SQL query on behalf of a run. During normal
// execution it is the time-travel database's Exec; during repair the
// controller substitutes a function that re-executes in the repair
// generation and tracks dependencies (§3.3: "all inputs and outputs to and
// from the application are handled by the repair controller").
type QueryFunc func(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error)

// Ctx is the execution context a script sees: its window onto the request,
// the database, and the interposed nondeterministic functions.
type Ctx struct {
	Req *httpd.Request

	rt     *Runtime
	rec    *RunRecord
	query  QueryFunc
	orig   *RunRecord
	ndNext map[string]int // per-site cursor into orig.NonDet
	loaded map[string]bool
}

// Query executes a SQL statement, recording it and its dependencies.
func (c *Ctx) Query(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	res, rec, err := c.query(sql, params)
	if rec != nil {
		c.rec.Queries = append(c.rec.Queries, rec)
	}
	return res, err
}

// MustQuery is Query for statements that cannot fail in a correct
// application; it panics on error, which the runtime converts into a 500
// response (the PHP fatal-error analog).
func (c *Ctx) MustQuery(sql string, params ...sqldb.Value) *sqldb.Result {
	res, err := c.Query(sql, params...)
	if err != nil {
		panic(fmt.Sprintf("query failed: %v", err))
	}
	return res
}

// nondet returns the recorded value for a call site during replay, or
// generates a fresh value. Matching is per site, in order (§3.3).
func (c *Ctx) nondet(site string, generate func() string) string {
	if c.orig != nil {
		idx := c.ndNext[site]
		seen := 0
		for _, nd := range c.orig.NonDet {
			if nd.Site != site {
				continue
			}
			if seen == idx {
				c.ndNext[site] = idx + 1
				c.rec.NonDet = append(c.rec.NonDet, NonDetCall{Site: site, Value: nd.Value})
				return nd.Value
			}
			seen++
		}
		// No original counterpart: fall through and generate fresh. This is
		// the paper's heuristic-miss path; correctness is unaffected.
	}
	v := generate()
	c.rec.NonDet = append(c.rec.NonDet, NonDetCall{Site: site, Value: v})
	return v
}

// Now returns the current time as the application sees it (the date()/
// time() analog). Recorded and replayed.
func (c *Ctx) Now(site string) int64 {
	v := c.nondet(site, func() string {
		return fmt.Sprintf("%d", c.rt.clock.Now())
	})
	var n int64
	fmt.Sscanf(v, "%d", &n)
	return n
}

// Token returns a random 16-hex-digit token (the mt_rand/session_start
// analog, used for session IDs and CSRF challenges). Recorded and
// replayed; a fresh draw consumes exactly one position of the runtime's
// resumable stream.
func (c *Ctx) Token(site string) string {
	return c.nondet(site, func() string {
		return fmt.Sprintf("%016x", c.rt.nextRand())
	})
}

// RandInt returns a nonnegative random int below n. Recorded and
// replayed; a fresh draw consumes exactly one position of the runtime's
// resumable stream.
func (c *Ctx) RandInt(site string, n int64) int64 {
	v := c.nondet(site, func() string {
		return fmt.Sprintf("%d", int64(c.rt.nextRand()%uint64(n)))
	})
	var out int64
	fmt.Sscanf(v, "%d", &out)
	return out
}

// Include loads another source file (the require/include analog),
// recording the dependency (§3.1), and returns its exported library.
func (c *Ctx) Include(name string) (Library, error) {
	v, ok := c.rt.current(name)
	if !ok {
		return nil, fmt.Errorf("app: include of unknown file %s", name)
	}
	if !c.loaded[name] {
		c.loaded[name] = true
		c.rec.FilesLoaded = append(c.rec.FilesLoaded, name)
	}
	return v.Lib, nil
}

// Run executes one application run. file names the entry source file; req
// is the HTTP request. query routes the run's SQL (nil means direct normal
// execution on the runtime's database). orig, when non-nil, is the
// original run whose nondeterminism should be replayed (repair mode).
func (rt *Runtime) Run(file string, req *httpd.Request, query QueryFunc, orig *RunRecord) (rec *RunRecord, err error) {
	v, ok := rt.current(file)
	if !ok || v.Entry == nil {
		return nil, fmt.Errorf("app: no runnable file %s", file)
	}
	rt.mu.Lock()
	rt.runSeq++
	runID := rt.runSeq
	rt.mu.Unlock()

	if query == nil {
		query = func(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error) {
			return rt.db.Exec(sql, params...)
		}
	}
	rec = &RunRecord{
		RunID: runID,
		Time:  rt.clock.Tick(),
		File:  file,
		Req:   req,
	}
	ctx := &Ctx{
		Req:    req,
		rt:     rt,
		rec:    rec,
		query:  query,
		orig:   orig,
		ndNext: make(map[string]int),
		loaded: make(map[string]bool),
	}
	ctx.loaded[file] = true
	rec.FilesLoaded = append(rec.FilesLoaded, file)

	defer func() {
		if p := recover(); p != nil {
			rec.Failed = true
			rec.Resp = httpd.ServerError(fmt.Sprintf("internal error: %v", p))
			err = nil
		}
	}()
	rec.Resp = v.Entry(ctx)
	if rec.Resp == nil {
		rec.Resp = httpd.ServerError("handler returned no response")
	}
	return rec, nil
}
