package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Options tunes a Store. The zero value selects the defaults below.
type Options struct {
	// SyncEveryAppend makes Append wait until its record is fsynced.
	// Concurrent appenders share fsyncs (group commit): one leader syncs
	// while followers' frames accumulate in the buffer for the next
	// sync. Off by default: records are fsynced by the group-commit
	// window instead, trading a bounded post-crash data-loss window
	// (at most GroupWindow) for an fsync-free hot path.
	SyncEveryAppend bool
	// GroupWindow is the maximum delay between fsyncs of buffered
	// records (default 2ms).
	GroupWindow time.Duration
	// SegmentBytes rotates the WAL to a new segment file past this size
	// (default 16 MiB).
	SegmentBytes int64
	// SnapshotBytes signals NeedSnapshot after this many WAL bytes since
	// the last snapshot (default 64 MiB); negative disables the signal.
	SnapshotBytes int64
}

func (o Options) withDefaults() Options {
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 64 << 20
	}
	return o
}

// Record is one typed WAL record.
type Record struct {
	Type    byte
	Payload []byte
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Snapshot is the payload of the newest valid snapshot, nil if none.
	Snapshot []byte
	// Records is the WAL tail after that snapshot, in append order.
	Records []Record
	// TailCorrupt is true when replay stopped at a torn or corrupt
	// frame: Records is the consistent prefix before it.
	TailCorrupt bool
	// SnapshotFallback is true when a newer snapshot file existed but
	// failed validation and an older one was used instead.
	SnapshotFallback bool
}

// ErrCrashed is returned by operations on a store after Crash.
var ErrCrashed = errors.New("store: store has crashed")

// Store is an open persistence directory: one active WAL segment plus
// the snapshot history. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu           sync.Mutex
	cond         *sync.Cond
	w            *walWriter
	seq          int64 // sequence number of the active segment
	lsn          int64 // total bytes appended
	synced       int64 // LSN known durable
	syncing      bool  // a leader is fsyncing outside the lock
	snapshotting bool  // a WriteSnapshot build is running outside the lock
	walSince     int64 // WAL bytes since the last snapshot
	snapped      bool  // NeedSnapshot already signalled for this interval
	dead         bool
	closed       bool

	needSnap chan struct{}

	flushStop chan struct{}
	flushDone chan struct{}
}

func segPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

func snapPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", seq))
}

// Open opens (creating if needed) a persistence directory, recovers the
// newest valid snapshot plus the WAL tail after it, and starts a fresh
// segment for new appends. The possibly-torn previous tail segment is
// never appended to again.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var walSeqs, snapSeqs []int64
	maxSeq := int64(0)
	for _, e := range entries {
		var seq int64
		switch {
		case fileSeq(e.Name(), "wal-", ".log", &seq):
			walSeqs = append(walSeqs, seq)
		case fileSeq(e.Name(), "snap-", ".snap", &seq):
			snapSeqs = append(snapSeqs, seq)
		default:
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })

	rec := &Recovery{}
	snapSeq := int64(-1)
	var snapErr error
	for i, seq := range snapSeqs {
		payload, err := readSnapshotFile(snapPath(dir, seq))
		if err != nil {
			snapErr = err
			continue
		}
		rec.Snapshot = payload
		snapSeq = seq
		rec.SnapshotFallback = i > 0
		break
	}
	if rec.Snapshot == nil && snapErr != nil {
		// Snapshots existed but none validates: refusing to run from a
		// silently wrong base state beats inventing one.
		return nil, nil, snapErr
	}

	// Replay the consecutive run of segments after the chosen snapshot.
	// Segment sequence numbers are allocated densely (a snapshot shares
	// the number of the segment it finalized), so a missing segment in
	// the run is a gap — typically segments pruned by a newer snapshot
	// that later failed validation — and everything past it was appended
	// against state this recovery does not have. Stopping there keeps
	// the recovered stream a true prefix; TailCorrupt reports that
	// later records exist but are unreachable.
	haveSeg := make(map[int64]bool, len(walSeqs))
	for _, seq := range walSeqs {
		haveSeg[seq] = true
	}
	start := snapSeq + 1
	if snapSeq < 0 && len(walSeqs) > 0 {
		start = walSeqs[0]
	}
	next := start
	for ; haveSeg[next] && !rec.TailCorrupt; next++ {
		clean, err := readSegment(segPath(dir, next), func(payload []byte) error {
			p := make([]byte, len(payload)-1)
			copy(p, payload[1:])
			rec.Records = append(rec.Records, Record{Type: payload[0], Payload: p})
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if !clean {
			rec.TailCorrupt = true
		}
	}
	if !rec.TailCorrupt && len(walSeqs) > 0 && walSeqs[len(walSeqs)-1] >= next {
		rec.TailCorrupt = true // unreachable segments beyond a gap
	}

	s := &Store{
		dir:       dir,
		opts:      opts,
		seq:       maxSeq + 1,
		needSnap:  make(chan struct{}, 1),
		flushStop: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.w, err = openSegment(segPath(dir, s.seq))
	if err != nil {
		return nil, nil, err
	}
	go s.flusher()
	return s, rec, nil
}

func fileSeq(name, prefix, suffix string, seq *int64) bool {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	n, err := fmt.Sscanf(name[len(prefix):len(prefix)+8], "%d", seq)
	return err == nil && n == 1
}

// Dir returns the persistence directory.
func (s *Store) Dir() string { return s.dir }

// Dead reports whether the store has crashed (Crash was called).
func (s *Store) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// NeedSnapshot signals (at most once per snapshot interval) that the WAL
// has grown past Options.SnapshotBytes and a checkpoint would bound
// recovery time.
func (s *Store) NeedSnapshot() <-chan struct{} { return s.needSnap }

// WALBytesSinceSnapshot returns the bytes appended since the last
// snapshot (or since Open).
func (s *Store) WALBytesSinceSnapshot() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSince
}

// Append writes one typed record to the WAL. With SyncEveryAppend it
// returns once the record is durable; otherwise the record becomes
// durable within GroupWindow.
func (s *Store) Append(typ byte, payload []byte) error {
	frame := make([]byte, 1+len(payload))
	frame[0] = typ
	copy(frame[1:], payload)

	s.mu.Lock()
	if s.dead || s.closed {
		s.mu.Unlock()
		return ErrCrashed
	}
	if err := s.w.append(frame); err != nil {
		s.mu.Unlock()
		return err
	}
	n := int64(frameHeaderLen + len(frame))
	s.lsn += n
	s.walSince += n
	target := s.lsn
	if s.opts.SnapshotBytes > 0 && s.walSince >= s.opts.SnapshotBytes && !s.snapped {
		s.snapped = true
		select {
		case s.needSnap <- struct{}{}:
		default:
		}
	}
	if s.w.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	var err error
	if s.opts.SyncEveryAppend {
		err = s.waitSyncedLocked(target)
	}
	s.mu.Unlock()
	return err
}

// waitSyncedLocked blocks until LSN target is durable, acting as the
// group-commit leader when no sync is in flight. Called with s.mu held.
func (s *Store) waitSyncedLocked(target int64) error {
	for s.synced < target {
		if s.dead || s.closed {
			return ErrCrashed
		}
		if s.syncing {
			s.cond.Wait()
			continue
		}
		// Leader: flush the shared buffer under the lock (a memory
		// copy), fsync outside it so followers keep appending frames
		// that ride the next sync.
		s.syncing = true
		lsn := s.lsn
		if err := s.w.flush(); err != nil {
			s.syncing = false
			s.cond.Broadcast()
			return err
		}
		f := s.w.f
		s.mu.Unlock()
		err := f.Sync()
		s.mu.Lock()
		s.syncing = false
		if err == nil && lsn > s.synced {
			s.synced = lsn
		}
		s.cond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync makes every appended record durable before returning.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.closed {
		return ErrCrashed
	}
	return s.waitSyncedLocked(s.lsn)
}

// syncQuietly is the flusher's periodic fsync.
func (s *Store) syncQuietly() {
	s.mu.Lock()
	if !s.dead && !s.closed && s.synced < s.lsn {
		_ = s.waitSyncedLocked(s.lsn)
	}
	s.mu.Unlock()
}

func (s *Store) flusher() {
	defer close(s.flushDone)
	tick := time.NewTicker(s.opts.GroupWindow)
	defer tick.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-tick.C:
			s.syncQuietly()
		}
	}
}

// rotateLocked finalizes the active segment and starts the next one.
// Called with s.mu held and no sync in flight or after waiting one out.
func (s *Store) rotateLocked() error {
	for s.syncing {
		s.cond.Wait()
	}
	if s.dead || s.closed {
		return ErrCrashed
	}
	if err := s.w.close(); err != nil {
		return err
	}
	s.synced = s.lsn
	s.seq++
	w, err := openSegment(segPath(s.dir, s.seq))
	if err != nil {
		return err
	}
	s.w = w
	s.cond.Broadcast()
	return nil
}

// WriteSnapshot rotates the WAL, builds a snapshot payload with the
// given encoder function, atomically installs it, and prunes superseded
// WAL segments and older snapshots.
//
// The caller must quiesce mutators for the duration of the call: every
// state change that is WAL-logged must either be fully reflected in the
// encoded payload or append only after the rotation point. The store
// lock is NOT held while build runs — the builder typically takes the
// application's own locks, which concurrent appenders hold while
// calling Append, so holding the store lock across build would invert
// that order and deadlock. Appends that race the build (e.g. visit-log
// upserts, which are idempotent) land in post-rotation segments and
// replay over the snapshot.
func (s *Store) WriteSnapshot(build func(*Encoder) error) error {
	s.mu.Lock()
	for s.syncing || s.snapshotting {
		if s.dead || s.closed {
			s.mu.Unlock()
			return ErrCrashed
		}
		s.cond.Wait()
	}
	if s.dead || s.closed {
		s.mu.Unlock()
		return ErrCrashed
	}
	// Rotate first: records appended after this point land in segments
	// that survive the prune and replay over the new snapshot.
	if err := s.rotateLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	snapSeq := s.seq - 1 // between the finalized segment and the new one
	coveredWAL := s.walSince
	s.snapshotting = true
	s.mu.Unlock()

	enc := NewEncoder()
	err := build(enc)
	if err == nil {
		err = writeSnapshotFile(snapPath(s.dir, snapSeq), enc.Bytes())
	}

	s.mu.Lock()
	s.snapshotting = false
	if err == nil {
		// Bytes appended during the build belong to post-rotation
		// segments the snapshot does not cover; keep counting them.
		s.walSince -= coveredWAL
		s.snapped = false
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if err != nil {
		return err
	}

	// Prune outside the lock: recovery correctness does not depend on
	// it, only disk usage does.
	s.prune(snapSeq)
	return nil
}

// prune removes WAL segments and snapshots superseded by snapshot seq.
func (s *Store) prune(snapSeq int64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var seq int64
		switch {
		case fileSeq(e.Name(), "wal-", ".log", &seq):
			if seq <= snapSeq {
				_ = os.Remove(filepath.Join(s.dir, e.Name()))
			}
		case fileSeq(e.Name(), "snap-", ".snap", &seq):
			if seq < snapSeq {
				_ = os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	_ = syncDir(s.dir)
}

// Close flushes and fsyncs the WAL and releases the store. Closing a
// crashed store is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.dead || s.closed {
		s.mu.Unlock()
		return nil
	}
	for s.syncing {
		s.cond.Wait()
	}
	// Re-check after the wait: a concurrent Close or Crash may have won
	// the race while the lock was released (double-closing flushStop
	// would panic).
	if s.dead || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.w.close()
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.flushStop)
	<-s.flushDone
	return err
}

// Crash simulates a process crash: user-space buffers are dropped, the
// files are abandoned as-is, and every subsequent operation fails with
// ErrCrashed. What recovery will see is exactly what had reached the OS.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.dead || s.closed {
		s.mu.Unlock()
		return
	}
	s.dead = true
	s.w.abandon()
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.flushStop)
	<-s.flushDone
}
