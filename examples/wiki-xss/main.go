// wiki-xss walks through the paper's §1 worst-case scenario end to end on
// GoWiki: a stored XSS payload reaches a victim's browser, acts with the
// victim's privileges, the victim keeps working on the corrupted page —
// and a single retroactive patch disentangles all of it: the attack's
// effects disappear while the victim's edit is preserved by DOM-level
// replay with three-way text merge.
package main

import (
	"fmt"
	"net/url"
	"strings"

	"warp"
	"warp/internal/webapp/wiki"
)

func main() {
	sys := warp.New(warp.Config{Seed: 7})
	app, err := wiki.Install(sys.Warp)
	must(err)
	must(app.CreateUser("alice", "pw-alice", false))
	must(app.CreateUser("mallory", "pw-mallory", false))
	must(app.CreatePage("AlicePage", "alice's important notes", false))

	fmt.Println("== 1. the attack ==")
	mallory := sys.NewBrowser()
	login(mallory, "mallory")
	payload := `<script>warpjs: appendedit /edit.php?title=AlicePage content \nPWNED-BY-MALLORY</script>`
	mallory.Open("/block.php?ip=" + url.QueryEscape(payload))
	fmt.Println("mallory stored an XSS payload via the vulnerable block tool (CVE-2009-4589)")

	alice := sys.NewBrowser()
	login(alice, "alice")
	alice.Open("/blocklog.php")
	content, _ := app.PageContent("AlicePage")
	fmt.Printf("alice viewed the block log; the payload ran in her browser.\nAlicePage: %q\n\n", content)

	fmt.Println("== 2. the victim keeps working ==")
	p := alice.Open("/edit.php?title=AlicePage")
	field := p.DOM.ByName("content")
	must2(p.TypeInto("content", field.InnerText()+"\nalice's new paragraph"))
	_, err = p.Submit(0)
	must(err)
	content, _ = app.PageContent("AlicePage")
	fmt.Printf("alice edited the (corrupted) page:\n%q\n\n", content)

	fmt.Println("== 3. retroactive patching ==")
	vuln, _ := app.VulnerabilityByKind("Stored XSS")
	fmt.Printf("applying %s to %s: %s\n", vuln.CVE, vuln.File, vuln.Fix)
	report, err := sys.RetroPatch(vuln.File, vuln.Patch)
	must(err)
	fmt.Println("repair:", report.String())

	fmt.Println("\n== 4. result ==")
	content, _ = app.PageContent("AlicePage")
	fmt.Printf("AlicePage: %q\n", content)
	switch {
	case strings.Contains(content, "PWNED"):
		fmt.Println("FAIL: attack residue left behind")
	case !strings.Contains(content, "alice's new paragraph"):
		fmt.Println("FAIL: alice's edit lost")
	default:
		fmt.Println("attack undone, alice's work preserved, zero user input required")
	}
}

func login(b *warp.Browser, user string) {
	p := b.Open("/login.php")
	must2(p.TypeInto("user", user))
	must2(p.TypeInto("password", "pw-"+user))
	_, err := p.Submit(0)
	must(err)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func must2(err error) { must(err) }
