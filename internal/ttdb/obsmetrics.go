package ttdb

import "warp/internal/obs"

// Partition-lock instrumentation (docs/observability.md). The gauges
// and the escalation counter are unconditional single atomic adds,
// folded into sections that already hold the manager's mutex; the
// wait histogram reads the clock only when an acquisition actually
// blocks and obs is enabled, so the uncontended lock path stays
// clock-free.
var (
	// lockWaitHist observes how long blocked scope acquisitions wait,
	// whole-table and keyed alike. Uncontended acquisitions are not
	// observed — the histogram measures contention, not traffic.
	lockWaitHist = obs.NewHistogram("warp_ttdb_lock_wait_seconds")
	// partitionsLocked is the number of lock-column keys currently held
	// across all tables.
	partitionsLocked = obs.NewGauge("warp_ttdb_partitions_locked")
	// wholeTableLocks is the number of whole-table scopes currently
	// held.
	wholeTableLocks = obs.NewGauge("warp_ttdb_table_locks_held")
	// scopeEscalations counts keyed scopes that hit errScopeConflict
	// and retried under the whole-table scope.
	scopeEscalations = obs.NewCounter("warp_ttdb_scope_escalations_total")
	// rangeLocksHeld is the number of coalesced key-range scopes
	// currently held across all tables.
	rangeLocksHeld = obs.NewGauge("warp_ttdb_range_locks_held")
	// scopeCoalesced counts wide IN key sets collapsed into a covering
	// key-range scope by maybeCoalesce.
	scopeCoalesced = obs.NewCounter("warp_ttdb_scope_coalesce_total")
)
