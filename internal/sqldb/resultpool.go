package sqldb

import (
	"sync"
	"time"
)

// Result row storage pooling for the exec path. A SELECT allocates one
// []Value per row plus the Rows header; on the rewriting layer's hot
// paths some of those results are purely internal — the phase-1 capture
// read of an UPDATE is consumed and dropped within the same call — so
// their storage can be recycled instead of re-allocated per execution.
//
// Results built through the *Owned entry points cut every row from one
// arena; the caller hands the storage back with PutResult when the
// result (and every row slice obtained from it) is no longer
// referenced. Results from the ordinary entry points escape to the
// application and to records, so they are never arena-backed.
//
// Mirrors the store encoder pool (store/codec.go): a sync.Pool with
// retention caps so one oversized result does not pin its backing
// forever.

const (
	// maxPooledResultValues caps the value backing retained by the pool.
	maxPooledResultValues = 1 << 14
	// maxPooledResultRows caps the row-header slice retained by the pool.
	maxPooledResultRows = 1 << 12
)

// resultArena is the recyclable storage behind an owned Result's rows.
type resultArena struct {
	vals    []Value   // current backing chunk; row slices are cut from it
	rows    [][]Value // recycled Rows header
	lastCut int       // size of the most recent cut, for dropLastRow
}

var resultArenaPool = sync.Pool{New: func() any { return new(resultArena) }}

// newPooledResult returns a Result whose rows will be cut from pooled
// storage until PutResult reclaims it.
func newPooledResult() *Result {
	a := resultArenaPool.Get().(*resultArena)
	return &Result{Rows: a.rows[:0], arena: a}
}

// appendRow extends the result by one zeroed row of n values and
// returns it for filling. Owned results cut the row from the arena;
// others allocate it.
func (r *Result) appendRow(n int) []Value {
	a := r.arena
	if a == nil {
		row := make([]Value, n)
		r.Rows = append(r.Rows, row)
		return row
	}
	if len(a.vals)+n > cap(a.vals) {
		// Grow into a fresh chunk. Rows already cut keep the old chunk
		// alive until the result is dropped or released; only the final
		// chunk returns to the pool.
		c := 2 * cap(a.vals)
		if c < 256 {
			c = 256
		}
		if c < n {
			c = n
		}
		a.vals = make([]Value, 0, c)
	}
	start := len(a.vals)
	a.vals = a.vals[:start+n]
	a.lastCut = n
	row := a.vals[start : start+n : start+n]
	for i := range row {
		row[i] = Value{}
	}
	r.Rows = append(r.Rows, row)
	return row
}

// dropLastRow removes the most recently appended row (DISTINCT found a
// duplicate), returning its arena cut — whose size is tracked, so a row
// slice that outgrew its cut cannot corrupt neighboring rows' storage.
func (r *Result) dropLastRow() {
	n := len(r.Rows)
	if n == 0 {
		return
	}
	r.Rows = r.Rows[:n-1]
	if a := r.arena; a != nil && a.lastCut > 0 {
		a.vals = a.vals[:len(a.vals)-a.lastCut]
		a.lastCut = 0
	}
}

// PutResult returns an owned result's row storage to the pool. Call it
// only when the result — including every row slice obtained from it —
// is no longer referenced anywhere; results aliased into records or
// stripped sub-results must never be released. Releasing a result that
// was not arena-backed is a no-op.
func PutResult(res *Result) {
	if res == nil || res.arena == nil {
		return
	}
	a := res.arena
	res.arena = nil
	if cap(a.vals) > maxPooledResultValues || cap(res.Rows) > maxPooledResultRows {
		return
	}
	a.vals = a.vals[:0]
	a.rows = res.Rows[:0]
	res.Rows = nil
	resultArenaPool.Put(a)
}

// ExecCachedOwned is ExecCached returning an owned result: a SELECT's
// rows are cut from pooled storage, and the caller must hand the result
// to PutResult once fully consumed.
func (db *DB) ExecCachedOwned(cs *CachedStmt, params []Value) (*Result, error) {
	if !timedExec() {
		db.mu.Lock()
		defer db.mu.Unlock()
		db.ownedExec = true
		defer func() { db.ownedExec = false }()
		return db.execCachedLocked(cs, params)
	}
	start := time.Now()
	db.mu.Lock()
	db.ownedExec = true
	db.lastShape = ShapeOther
	res, err := db.execCachedLocked(cs, params)
	shape := db.lastShape
	db.ownedExec = false
	db.mu.Unlock()
	observeExec(start, shape, cs, nil)
	return res, err
}

// ExecStmtOwned is ExecStmt returning an owned result; see
// ExecCachedOwned.
func (db *DB) ExecStmtOwned(stmt Statement, params []Value) (*Result, error) {
	if !timedExec() {
		db.mu.Lock()
		defer db.mu.Unlock()
		db.ownedExec = true
		defer func() { db.ownedExec = false }()
		return db.execStmtLocked(stmt, params)
	}
	start := time.Now()
	db.mu.Lock()
	db.ownedExec = true
	db.lastShape = ShapeOther
	res, err := db.execStmtLocked(stmt, params)
	shape := db.lastShape
	db.ownedExec = false
	db.mu.Unlock()
	observeExec(start, shape, nil, stmt)
	return res, err
}
