package bench

import (
	"fmt"
	"strings"
	"time"

	"warp/internal/taint"
)

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: WARP repairs the attack scenarios listed in Table 2.\n")
	fmt.Fprintf(&b, "%-16s  %-22s  %-9s  %s\n", "Attack scenario", "Initial repair", "Repaired?", "# users with conflicts")
	for _, r := range rows {
		mark := "yes"
		if !r.Repaired {
			mark = "NO"
		}
		fmt.Fprintf(&b, "%-16s  %-22s  %-9s  %d\n", r.Scenario, r.InitialRepair, mark, r.UsersConflict)
	}
	return b.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Effectiveness of WARP UI repair (users with conflicts, 8 victims).\n")
	fmt.Fprintf(&b, "%-12s  %-13s  %-13s  %s\n", "Attack action", "No extension", "No text merge", "WARP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s  %-13d  %-13d  %d\n", r.AttackAction, r.NoExtension, r.NoTextMerge, r.FullWARP)
	}
	return b.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: Comparison of WARP with the taint-tracking baseline (Akkuş & Goel).\n")
	b.WriteString("Baseline FP shown without / with table white-listing, for the no-FN (flow) policy.\n")
	fmt.Fprintf(&b, "%-28s  %-16s  %-10s  %-8s  %s\n",
		"Bug causing corruption", "Baseline FP", "Base input", "WARP FP", "WARP input")
	for _, r := range rows {
		var flow, flowWL taint.PolicyResult
		var direct taint.PolicyResult
		for _, p := range r.Comparison.Baseline {
			switch p.Policy {
			case taint.PolicyFlow:
				flow = p
			case taint.PolicyFlowWhitelist:
				flowWL = p
			case taint.PolicyDirect:
				direct = p
			}
		}
		warpInput := "No"
		if r.Comparison.WARPNeedsInput {
			warpInput = "Yes"
		}
		fmt.Fprintf(&b, "%-28s  %3d / %-8d  %-10s  %-8d  %s\n",
			string(r.Bug), flow.FalsePositives, flowWL.FalsePositives, "Yes",
			r.Comparison.WARPFalsePositives, warpInput)
		if direct.FalseNegatives > 0 {
			fmt.Fprintf(&b, "%-28s  (narrow 'direct' policy would miss %d corrupted rows — false negatives)\n",
				"", direct.FalseNegatives)
		}
	}
	return b.String()
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: Overheads for users browsing and editing Wiki pages.\n")
	fmt.Fprintf(&b, "%-9s  %10s %10s %13s   %12s %12s %12s\n",
		"Workload", "No WARP", "WARP", "During repair", "Browser B/v", "App B/v", "DB B/v")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s  %8.1f/s %8.1f/s %11.1f/s   %12.0f %12.0f %12.0f\n",
			r.Workload, r.NoWARPVisitsPerSec, r.WARPVisitsPerSec, r.DuringRepairPerSec,
			r.BrowserBytesPerVisit, r.AppBytesPerVisit, r.DBBytesPerVisit)
	}
	return b.String()
}

// FormatTable7 renders Tables 7/8.
func FormatTable7(title string, rows []Table7Row) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-33s %15s %15s %17s %10s %10s  %s\n",
		"Attack scenario", "Page visits", "App runs", "SQL queries", "Orig exec", "Repair", "breakdown (graph/browser/db/app/ctrl)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-33s %7d/%-7d %7d/%-7d %8d/%-8d %10s %10s  %s/%s/%s/%s/%s\n",
			r.Scenario,
			r.VisitsReplayed, r.VisitsTotal,
			r.RunsReexecuted, r.RunsTotal,
			r.QueriesReexecuted, r.QueryTotal,
			round(r.OriginalExec), round(r.Repair.Total),
			round(r.Repair.Graph), round(r.Repair.Browser), round(r.Repair.DB),
			round(r.Repair.App), round(r.Repair.Ctrl))
	}
	return b.String()
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(100 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
