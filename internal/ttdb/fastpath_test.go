package ttdb

import (
	"fmt"
	"sync"
	"testing"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

// agreeIndexScan compares an indexed equality lookup with a scan-only
// rewrite of the same predicate on the raw engine: the page_id index
// must agree with the table after every maintenance event.
func agreeIndexScan(t *testing.T, db *DB, v int64, want ...string) {
	t.Helper()
	idx, _ := mustExec(t, db, "SELECT content FROM pages WHERE page_id = ?", sqldb.Int(v))
	scan, _ := mustExec(t, db, "SELECT content FROM pages WHERE NOT (page_id != ?)", sqldb.Int(v))
	render := func(r *sqldb.Result) []string {
		var out []string
		for _, row := range r.Rows {
			out = append(out, row[0].AsText())
		}
		return out
	}
	gi, gs := render(idx), render(scan)
	if fmt.Sprint(gi) != fmt.Sprint(gs) {
		t.Fatalf("index sees %v, scan sees %v", gi, gs)
	}
	if fmt.Sprint(gi) != fmt.Sprint(want) {
		t.Fatalf("page %d: got %v, want %v", v, gi, want)
	}
}

// agreeOrderedScan compares a range + ORDER BY query served by the
// ordered index with a rewrite the planner cannot index (a NOT-wrapped
// bound and an ORDER BY expression force the scan-and-sort path): both
// must see the same rows in the same order after every maintenance
// event, including repair's slot reuse.
func agreeOrderedScan(t *testing.T, db *DB, lo int64, want ...string) {
	t.Helper()
	idx, _ := mustExec(t, db, "SELECT content FROM pages WHERE page_id >= ? ORDER BY page_id", sqldb.Int(lo))
	scan, _ := mustExec(t, db, "SELECT content FROM pages WHERE NOT (page_id < ?) ORDER BY page_id + 0", sqldb.Int(lo))
	render := func(r *sqldb.Result) []string {
		var out []string
		for _, row := range r.Rows {
			out = append(out, row[0].AsText())
		}
		return out
	}
	gi, gs := render(idx), render(scan)
	if fmt.Sprint(gi) != fmt.Sprint(gs) {
		t.Fatalf("ordered index sees %v, scan-and-sort sees %v", gi, gs)
	}
	if fmt.Sprint(gi) != fmt.Sprint(want) {
		t.Fatalf("range from %d: got %v, want %v", lo, gi, want)
	}
}

// TestIndexAgreesAfterRollbackReinsert: repair rollback demotes and
// deletes physical versions and revival re-inserts copies into fresh
// engine slots; the row-ID hash index must track every step, including
// the generation-switch purge that removes mid-table slots.
func TestIndexAgreesAfterRollbackReinsert(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recV1 := mustExec(t, db, "UPDATE pages SET content = 'v1' WHERE page_id = 1")
	mustExec(t, db, "UPDATE pages SET content = 'v2' WHERE page_id = 1")
	mustExec(t, db, "DELETE FROM pages WHERE page_id = 2")

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	// Roll page 1 back to just after v1: versions from v2 on vanish from
	// the next generation and the v1 version revives via demote +
	// insertCopy (a fresh slot).
	if _, err := db.RollbackRow("pages", sqldb.Int(1), recV1.Time+1); err != nil {
		t.Fatal(err)
	}
	// Re-execute an insert during repair so the purge later removes its
	// rolled-back sibling versions from the middle of the table.
	if _, _, err := db.ReExec("INSERT INTO pages (page_id, title, editor, content) VALUES (4, 'New', 12, 'fresh')", nil, db.Clock().Now(), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}

	agreeIndexScan(t, db, 1, "v1")
	agreeIndexScan(t, db, 2)
	agreeIndexScan(t, db, 3, "docs")
	agreeIndexScan(t, db, 4, "fresh")
	agreeOrderedScan(t, db, 1, "v1", "docs", "fresh")

	// Post-repair writes keep the index in step with reused row IDs.
	mustExec(t, db, "INSERT INTO pages (page_id, title, editor, content) VALUES (2, 'Sandbox', 11, 'again')")
	agreeIndexScan(t, db, 2, "again")
	agreeOrderedScan(t, db, 2, "again", "docs", "fresh")
	mustExec(t, db, "UPDATE pages SET content = 'v3' WHERE page_id = 1")
	agreeIndexScan(t, db, 1, "v3")
	agreeOrderedScan(t, db, 1, "v3", "again", "docs", "fresh")
}

// TestCachedExecAcrossGenerationSwitch: the statement cache must stay
// semantically invisible across BeginRepair / FinishRepair / AbortRepair
// — the same cached handles keep answering with the right generation's
// rows, and the canonical SQL recorded is byte-identical to the
// uncached rendering.
func TestCachedExecAcrossGenerationSwitch(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	sel := "SELECT content FROM pages WHERE page_id = 1"

	res, rec := mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "welcome" {
		t.Fatalf("content = %q", got)
	}
	stmt, err := sqldb.Parse(sel)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SQL != stmt.String() {
		t.Fatalf("cached canonical %q != direct rendering %q", rec.SQL, stmt.String())
	}

	// Repair rewrites page 1 in the next generation; the cached handle
	// must keep reading the *current* generation until the switch.
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReExec("UPDATE pages SET content = 'repaired' WHERE page_id = 1", nil, db.Clock().Now(), nil); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "welcome" {
		t.Fatalf("pre-switch cached read sees %q, want welcome", got)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "repaired" {
		t.Fatalf("post-switch cached read sees %q, want repaired", got)
	}

	// And across an aborted repair the cached handle must not leak the
	// discarded generation.
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReExec("UPDATE pages SET content = 'discarded' WHERE page_id = 1", nil, db.Clock().Now(), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.AbortRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "repaired" {
		t.Fatalf("post-abort cached read sees %q, want repaired", got)
	}
}

// TestCachedWriteAugmentation: UPDATE and DELETE build one parameterized
// augmentation per DDL epoch — repeated writes through the statement
// cache keep hitting the same raw-engine handles, DDL rebuilds them (the
// phase-1 capture column set depends on the table's columns), and the
// cached path leaves the same state and history as the slow path would.
func TestCachedWriteAugmentation(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)

	upd := "UPDATE pages SET content = ? WHERE page_id = ?"
	mustExec(t, db, upd, sqldb.Text("a"), sqldb.Int(1))
	cs, err := db.Prepare(upd)
	if err != nil {
		t.Fatal(err)
	}
	a1, ok := cs.Aux().(*updateAug)
	if !ok {
		t.Fatalf("update aux = %T, want *updateAug", cs.Aux())
	}
	mustExec(t, db, upd, sqldb.Text("b"), sqldb.Int(1))
	if a2 := cs.Aux().(*updateAug); a2 != a1 {
		t.Fatal("update augmentation rebuilt without a DDL epoch change")
	}
	res, _ := mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if got := res.FirstValue().AsText(); got != "b" {
		t.Fatalf("content = %q, want b", got)
	}
	// Both cached updates must have gone through the full three phases:
	// original version plus one closed historical version per update.
	raw, err := db.Raw().Exec("SELECT content FROM pages WHERE page_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumRows() != 3 {
		t.Fatalf("physical versions = %d, want 3", raw.NumRows())
	}

	// DDL moves the epoch: the cached handles must rebuild so the new
	// column participates in the phase-1 capture.
	mustExec(t, db, "ALTER TABLE pages ADD COLUMN views INTEGER")
	mustExec(t, db, upd, sqldb.Text("c"), sqldb.Int(1))
	if a3 := cs.Aux().(*updateAug); a3 == a1 {
		t.Fatal("update augmentation survived a DDL epoch change")
	}

	del := "DELETE FROM pages WHERE page_id = ?"
	mustExec(t, db, del, sqldb.Int(2))
	dcs, err := db.Prepare(del)
	if err != nil {
		t.Fatal(err)
	}
	d1, ok := dcs.Aux().(*deleteAug)
	if !ok {
		t.Fatalf("delete aux = %T, want *deleteAug", dcs.Aux())
	}
	mustExec(t, db, del, sqldb.Int(3))
	if d2 := dcs.Aux().(*deleteAug); d2 != d1 {
		t.Fatal("delete augmentation rebuilt without a DDL epoch change")
	}
	res, _ = mustExec(t, db, "SELECT page_id FROM pages ORDER BY page_id")
	if res.NumRows() != 1 || res.FirstValue().AsInt() != 1 {
		t.Fatalf("post-delete visible rows = %v", res.Rows)
	}
	// Deletes close intervals, they do not remove versions.
	raw, err = db.Raw().Exec("SELECT page_id FROM pages WHERE page_id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumRows() != 1 {
		t.Fatalf("deleted row's physical versions = %d, want 1", raw.NumRows())
	}
}

// TestExplainThroughAugmentation: the rewriting layer's Explain shows
// the plans the augmented statements execute with — application
// predicates keep riding the row-ID/partition indexes (equality, range,
// and index-served ORDER BY) after the liveWhere conjuncts attach.
func TestExplainThroughAugmentation(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	cases := []struct{ src, want string }{
		{"SELECT content FROM pages WHERE page_id = ?",
			"select(pages) scan=index-eq(page_id)"},
		{"SELECT content FROM pages WHERE page_id >= ? ORDER BY page_id",
			"select(pages) scan=index-range(page_id lo..+inf) order=index(page_id)"},
		{"SELECT content FROM pages ORDER BY title DESC",
			"select(pages) scan=full order=index-desc(title)"},
		{"UPDATE pages SET content = 'x' WHERE page_id = 1",
			"select(pages) scan=index-eq(page_id); update(pages) scan=index-eq(page_id)"},
		{"DELETE FROM pages WHERE page_id = 1",
			"update(pages) scan=index-eq(page_id)"},
	}
	for _, c := range cases {
		got, err := db.Explain(c.src)
		if err != nil {
			t.Fatalf("Explain(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Explain(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

// TestCachedExecRaceWithDDLAndGC mixes cached reads and writes with
// concurrent DDL (CREATE INDEX / ALTER TABLE) and GC on the time-travel
// layer; under -race this guards the augmentation cache's epoch
// protocol end to end.
func TestCachedExecRaceWithDDLAndGC(t *testing.T) {
	db := Open(&vclock.Clock{})
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)")
	for i := 0; i < 8; i++ {
		mustExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("u%d", i%4)), sqldb.Text("b"))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := sqldb.Text(fmt.Sprintf("u%d", g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := db.Exec("SELECT body FROM notes WHERE owner = ?", owner); err != nil {
					t.Errorf("cached select: %v", err)
					return
				}
				if _, _, err := db.Exec("UPDATE notes SET body = ? WHERE owner = ?",
					sqldb.Text(fmt.Sprintf("b%d", i)), owner); err != nil {
					t.Errorf("cached update: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		mustExec(t, db, "CREATE INDEX IF NOT EXISTS idx_notes_body ON notes (body)")
		mustExec(t, db, fmt.Sprintf("ALTER TABLE notes ADD COLUMN extra%d INTEGER", i))
		if err := db.GC(db.Clock().Now() - 100); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
