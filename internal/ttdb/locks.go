package ttdb

// Partition-granular locking (docs/repair.md).
//
// Through PR 1 every operation on a table — an exec, a two-phase
// re-execution, a rollback — held that table's single mutex for its full
// multi-statement span, so two repair workers touching disjoint rows of
// one hot table serialized at the DB layer even though the scheduler's
// dependency frontier had already proven them independent. This file
// replaces the table mutex with a per-table partition lock manager:
//
//   - an operation declares a *lock scope* before it runs: either a set
//     of keys in the table's designated lock column (the first declared
//     partition column) or the whole table;
//   - keyed scopes on disjoint keys run concurrently; a whole-table
//     scope excludes everything, which is the conservative fallback for
//     unpartitionable statements (no usable WHERE bound, a write to the
//     partition column itself, tables with no partition columns);
//   - acquisition is all-or-nothing under the manager's mutex with the
//     keys in sorted order, so operations cannot deadlock on partial
//     acquisitions within a table, and a pending whole-table request
//     blocks new keyed entrants so DDL/generation switches cannot
//     starve.
//
// Scopes are declared from static analysis (WHERE conjuncts, INSERT
// values, recorded write sets), so an operation can occasionally
// discover mid-flight that it must touch a row outside its scope — a
// uniqueness-revival collision landing in a sibling partition, a row
// whose partition column was rewritten after the original record. Such
// operations verify every row against their scope *before mutating* and
// return errScopeConflict; the entry point releases the keyed scope and
// retries once under the whole-table scope. Completed per-row rollbacks
// are idempotent, so the retry re-converges.
//
// Lock ordering is unchanged from PR 1: db.mu → table locks (lockAll in
// name order), and code holding a table scope never acquires db.mu.
// tableMeta.mu survives as a leaf *latch* for the table's in-memory
// bookkeeping (row-ID allocator, per-partition version index); it is
// held only for map/counter touches, never across a statement.

import (
	"errors"
	"sort"
	"sync"
	"time"

	"warp/internal/obs"
	"warp/internal/sqldb"
)

// errScopeConflict reports that an operation holding a keyed partition
// scope must touch a row outside that scope. Entry points catch it and
// retry under the whole-table scope.
var errScopeConflict = errors.New("ttdb: operation escaped its partition lock scope")

// lockScope names the slice of one table an operation locks: a sorted,
// distinct set of lock-column keys, a set of coalesced key ranges, or
// the whole table. Ranges are the compact form of IN-heavy scopes
// (docs/repair.md): a wide key set collapses to one covering interval in
// Key()-string order, so acquisition and conflict checks stay O(ranges)
// instead of O(keys). A range over-claims keys that fall between the
// listed ones; over-claiming a lock scope is always safe — it only
// serializes more.
type lockScope struct {
	whole  bool
	keys   []string
	ranges []keyRange
}

// keyRange is one inclusive interval of lock-column keys, bounded in
// Key()-string order (the same order keyScope sorts by, so covers and
// conflict checks agree with the keyed form).
type keyRange struct {
	lo, hi string
}

// contains reports whether a key falls inside the range.
func (r keyRange) contains(key string) bool { return r.lo <= key && key <= r.hi }

// overlaps reports whether two ranges share any key.
func (r keyRange) overlaps(o keyRange) bool { return r.lo <= o.hi && o.lo <= r.hi }

// wholeScope returns the scope covering the entire table.
func wholeScope() lockScope { return lockScope{whole: true} }

// keyScope returns a keyed scope over the given lock-column keys,
// sorted and de-duplicated. An empty key set is legal (the operation
// provably touches no rows) and conflicts with nothing but a
// whole-table scope.
func keyScope(keys []string) lockScope {
	sort.Strings(keys)
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return lockScope{keys: out}
}

// rangeScope returns a scope covering one inclusive key interval.
func rangeScope(lo, hi string) lockScope {
	return lockScope{ranges: []keyRange{{lo: lo, hi: hi}}}
}

// covers reports whether a lock-column key falls inside the scope.
func (s lockScope) covers(key string) bool {
	if s.whole {
		return true
	}
	for _, r := range s.ranges {
		if r.contains(key) {
			return true
		}
	}
	i := sort.SearchStrings(s.keys, key)
	return i < len(s.keys) && s.keys[i] == key
}

// merge unions two scopes.
func (s lockScope) merge(o lockScope) lockScope {
	if s.whole || o.whole {
		return wholeScope()
	}
	out := keyScope(append(append([]string{}, s.keys...), o.keys...))
	out.ranges = append(append([]keyRange{}, s.ranges...), o.ranges...)
	return out
}

// partLocks is one table's lock manager. Keyed scopes hold their keys
// exclusively, range scopes hold their intervals exclusively, and the
// whole-table scope excludes every keyed and ranged holder.
type partLocks struct {
	mu        sync.Mutex
	cond      *sync.Cond
	whole     bool
	wholeWait int
	held      map[string]bool
	// heldRanges are the coalesced intervals currently held. Two held
	// ranges never overlap (acquisition excludes that), so releases
	// remove by value unambiguously. The slice stays short — one entry
	// per concurrently running coalesced operation.
	heldRanges []keyRange
}

func newPartLocks() *partLocks {
	l := &partLocks{held: make(map[string]bool)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// lock blocks until the scope can be held. Keyed and ranged scopes are
// acquired all-or-nothing; a waiting whole-table scope bars new keyed
// entrants so it cannot starve.
func (l *partLocks) lock(s lockScope) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.whole {
		l.wholeWait++
		if l.whole || len(l.held) > 0 || len(l.heldRanges) > 0 {
			var start time.Time
			if obs.Enabled() {
				start = time.Now()
			}
			for l.whole || len(l.held) > 0 || len(l.heldRanges) > 0 {
				l.cond.Wait()
			}
			if !start.IsZero() {
				lockWaitHist.Observe(time.Since(start))
			}
		}
		l.wholeWait--
		l.whole = true
		wholeTableLocks.Add(1)
		return
	}
	if !l.available(s) {
		var start time.Time
		if obs.Enabled() {
			start = time.Now()
		}
		for !l.available(s) {
			l.cond.Wait()
		}
		if !start.IsZero() {
			lockWaitHist.Observe(time.Since(start))
		}
	}
	for _, k := range s.keys {
		l.held[k] = true
	}
	l.heldRanges = append(l.heldRanges, s.ranges...)
	partitionsLocked.Add(int64(len(s.keys)))
	rangeLocksHeld.Add(int64(len(s.ranges)))
}

// available reports whether a keyed or ranged scope could be taken right
// now. Called with l.mu held.
func (l *partLocks) available(s lockScope) bool {
	if l.whole || l.wholeWait > 0 {
		return false
	}
	for _, k := range s.keys {
		if l.held[k] {
			return false
		}
		for _, hr := range l.heldRanges {
			if hr.contains(k) {
				return false
			}
		}
	}
	for _, r := range s.ranges {
		for _, hr := range l.heldRanges {
			if r.overlaps(hr) {
				return false
			}
		}
		// A requested range conflicts with every held key inside it. The
		// held map is bounded by the keys of concurrently running keyed
		// operations, so this scan is small even when the range is wide.
		for k := range l.held {
			if r.contains(k) {
				return false
			}
		}
	}
	return true
}

// unlock releases a scope taken by lock.
func (l *partLocks) unlock(s lockScope) {
	l.mu.Lock()
	if s.whole {
		l.whole = false
		wholeTableLocks.Add(-1)
	} else {
		for _, k := range s.keys {
			delete(l.held, k)
		}
		for _, r := range s.ranges {
			for i, hr := range l.heldRanges {
				if hr == r {
					l.heldRanges = append(l.heldRanges[:i], l.heldRanges[i+1:]...)
					break
				}
			}
		}
		partitionsLocked.Add(-int64(len(s.keys)))
		rangeLocksHeld.Add(-int64(len(s.ranges)))
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// lockScopeFor acquires the scope on a table and returns its meta with
// a release function.
func (db *DB) lockScope(table string, sc lockScope) (*tableMeta, func(), error) {
	m, err := db.meta(table)
	if err != nil {
		return nil, nil, err
	}
	m.locks.lock(sc)
	return m, func() { m.locks.unlock(sc) }, nil
}

// effectiveScope clamps a derived scope to the table's locking
// capability: tables without a lock column — and databases forced into
// table-granular mode — always use the whole-table scope.
func (m *tableMeta) effectiveScope(db *DB, sc lockScope) lockScope {
	if db.coarseLocks.Load() || m.lockCol == "" {
		return wholeScope()
	}
	return sc
}

// checkScope verifies one lock-column key against the scope, returning
// errScopeConflict when the operation would escape it.
func (s lockScope) check(key string) error {
	if !s.covers(key) {
		return errScopeConflict
	}
	return nil
}

// coalesceThreshold is the keyed-scope size above which maybeCoalesce
// considers collapsing the key set into one covering range. Below it,
// per-key acquisition is already O(small); above it, wide IN scopes —
// typically repair items re-executing a recorded multi-row write — pay
// a per-key cost on every acquisition and conflict check.
const coalesceThreshold = 16

// maybeCoalesce collapses a wide all-text keyed scope into one covering
// key-range when the table is dense over that interval, so IN-heavy
// repair scopes stop paying per-key acquisition without degenerating to
// the whole-table scope. The density probe is an unlocked range scan of
// the raw engine riding the ordered index (docs/performance.md); like
// scopeForRows' pre-scan it may go stale before the scope is acquired,
// which is safe — a range only ever over-claims, and over-claiming a
// lock scope serializes more, never less. Coalescing is refused when
// the interval holds more than twice the requested keys: locking a
// sparse range would block unrelated live writers for no win.
func (db *DB) maybeCoalesce(m *tableMeta, sc lockScope) lockScope {
	if sc.whole || len(sc.ranges) > 0 || len(sc.keys) < coalesceThreshold {
		return sc
	}
	if m == nil || m.lockCol == "" || db.coarseLocks.Load() {
		return sc
	}
	// Only text keys coalesce: a text Key() ("t"+value) sorts exactly as
	// the value does, so the covering interval in Key() space is the same
	// interval the ordered index enumerates. Integer Key() forms sort
	// lexicographically, not numerically, and mixed-type sets have no
	// meaningful single interval.
	for _, k := range sc.keys {
		if len(k) == 0 || k[0] != 't' {
			return sc
		}
	}
	lo, hi := sc.keys[0], sc.keys[len(sc.keys)-1]
	sel := &sqldb.Select{
		Items: []sqldb.SelectItem{{Expr: sqldb.Col(m.lockCol)}},
		Table: m.name,
		Where: sqldb.And(
			&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(m.lockCol), Right: sqldb.Lit(sqldb.Text(lo[1:]))},
			&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(m.lockCol), Right: sqldb.Lit(sqldb.Text(hi[1:]))},
		),
	}
	res, err := db.raw.ExecStmt(sel, nil)
	if err != nil {
		return sc
	}
	distinct := make(map[string]struct{}, len(sc.keys))
	for _, row := range res.Rows {
		distinct[row[0].Key()] = struct{}{}
	}
	if len(distinct) > 2*len(sc.keys) {
		return sc
	}
	scopeCoalesced.Inc()
	return rangeScope(lo, hi)
}
