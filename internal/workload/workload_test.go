package workload

import (
	"strings"
	"testing"

	"warp/internal/attacks"
)

// runScenario runs one §8.2 scenario on a small workload and repairs it,
// returning the result and the repair report.
func runScenario(t *testing.T, name string, users int, victimsAtStart bool) (*Result, *coreReport) {
	t.Helper()
	sc, ok := attacks.ByName(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	res, err := Run(Config{Users: users, Victims: 3, Seed: 1234, Scenario: sc, VictimsAtStart: victimsAtStart})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Repair(res.Env)
	if err != nil {
		t.Fatal(err)
	}
	return res, &coreReport{rep.PageVisitsReplayed, rep.TotalPageVisits, rep.UsersWithConflicts(), rep.AppRunsReexecuted, rep.QueriesReexecuted}
}

type coreReport struct {
	visitsReplayed, totalVisits int
	usersWithConflicts          int
	runs, queries               int
}

// TestTable3Scenarios verifies the paper's Table 3: every scenario is
// repaired, with conflicts only where the paper reports them
// (clickjacking: the victims; ACL error: the exploiting user).
func TestTable3Scenarios(t *testing.T) {
	const users = 12
	cases := []struct {
		name          string
		wantConflicts int
	}{
		{"Reflected XSS", 0},
		{"Stored XSS", 0},
		{"CSRF", 0},
		{"Clickjacking", 3},
		{"SQL injection", 0},
		{"ACL error", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, rep := runScenario(t, tc.name, users, false)
			app := res.Env.App

			// Repaired: no attack residue anywhere.
			team, err := app.PageContent(res.Env.TargetPage)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(team, "PWNED") || strings.Contains(team, "mooo") {
				t.Fatalf("%s: attack residue on team page: %q", tc.name, team)
			}
			if got, _ := app.PageContent("Main"); strings.Contains(got, "SQLI-ATTACK") {
				t.Fatalf("%s: SQLi residue: %q", tc.name, got)
			}
			if got, _ := app.PageContent("Restricted"); strings.Contains(got, "should not") {
				t.Fatalf("%s: ACL exploit residue: %q", tc.name, got)
			}

			// Legitimate background work is preserved: every user's append
			// to the team page and their own-page edits.
			for _, u := range res.Env.Others {
				if !strings.Contains(team, "note from "+u.Name) {
					t.Fatalf("%s: lost %s's append: %q", tc.name, u.Name, team)
				}
				own, _ := app.PageContent("Page-" + u.Name)
				if !strings.Contains(own, "edited by its owner") {
					t.Fatalf("%s: lost %s's edit: %q", tc.name, u.Name, own)
				}
			}

			if rep.usersWithConflicts != tc.wantConflicts {
				t.Fatalf("%s: users with conflicts = %d, want %d",
					tc.name, rep.usersWithConflicts, tc.wantConflicts)
			}
		})
	}
}

// TestCSRFReattribution: after CSRF repair, the victims' post-attack edits
// belong to the victims again, not the attacker (§8.2).
func TestCSRFReattribution(t *testing.T) {
	sc, _ := attacks.ByName("CSRF")
	res, err := Run(Config{Users: 8, Victims: 2, Seed: 99, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	// Before repair: victims' post-attack edits are attributed to the
	// attacker.
	misattributed := 0
	for _, v := range res.Env.Victims {
		if ed, _ := res.Env.App.PageEditor("Page-" + v.Name); ed == "attacker" {
			misattributed++
		}
	}
	if misattributed == 0 {
		t.Fatal("CSRF attack did not misattribute any edits")
	}
	if _, err := sc.Repair(res.Env); err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Env.Victims {
		if ed, _ := res.Env.App.PageEditor("Page-" + v.Name); ed != v.Name {
			t.Fatalf("victim %s's page editor = %q after repair", v.Name, ed)
		}
		own, _ := res.Env.App.PageContent("Page-" + v.Name)
		if !strings.Contains(own, "post-attack note by "+v.Name) {
			t.Fatalf("victim %s's edit lost: %q", v.Name, own)
		}
	}
}

// TestSelectiveRepair: isolated attacks re-execute a small fraction of
// the workload (Table 7's headline result), while clickjacking re-executes
// nearly everything.
func TestSelectiveRepair(t *testing.T) {
	_, isolated := runScenario(t, "Stored XSS", 14, false)
	frac := float64(isolated.visitsReplayed) / float64(isolated.totalVisits)
	if frac > 0.5 {
		t.Fatalf("stored XSS replayed %.0f%% of visits; want selective repair", frac*100)
	}
	_, full := runScenario(t, "Clickjacking", 14, false)
	fullFrac := float64(full.visitsReplayed) / float64(full.totalVisits)
	if fullFrac < 0.9 {
		t.Fatalf("clickjacking replayed %.0f%% of visits; want near-total re-execution", fullFrac*100)
	}
}

// TestVictimsAtStartReexecutesMoreQueries reproduces Table 7's fifth row:
// with victims at the start of the workload, repair re-executes the same
// visits but many more database queries (the later appends to the rolled-
// back partition re-apply).
func TestVictimsAtStartReexecutesMoreQueries(t *testing.T) {
	_, end := runScenario(t, "Reflected XSS", 14, false)
	_, start := runScenario(t, "Reflected XSS", 14, true)
	if start.queries <= end.queries {
		t.Fatalf("victims-at-start should re-execute more queries: start=%d end=%d",
			start.queries, end.queries)
	}
	if start.visitsReplayed > end.visitsReplayed+2 {
		t.Fatalf("victims-at-start should not balloon visit replays: start=%d end=%d",
			start.visitsReplayed, end.visitsReplayed)
	}
}

// TestCleanWorkload: the workload generator itself produces a consistent
// wiki without a scenario.
func TestCleanWorkload(t *testing.T) {
	res, err := Run(Config{Users: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PageVisits == 0 || res.AppRuns == 0 || res.Queries == 0 {
		t.Fatalf("empty workload: %+v", res)
	}
	team, _ := res.Env.App.PageContent("TeamPage")
	for _, u := range res.Env.AllUsers() {
		if !strings.Contains(team, "note from "+u.Name) {
			t.Fatalf("missing %s's append: %q", u.Name, team)
		}
	}
}
