module warp

go 1.23
