package blog

import (
	"strings"
	"testing"

	"warp/internal/core"
)

func setup(t *testing.T) (*core.Warp, *App) {
	t.Helper()
	w := core.New(core.Config{Seed: 3})
	a, err := Install(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CreatePost(1, "First", "hello"); err != nil {
		t.Fatal(err)
	}
	return w, a
}

func TestPostViewCommentVote(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	b.Open("/comment.php?id=1&u=alice&text=nice")
	b.Open("/vote.php?id=1&u=alice&val=1")
	if a.CommentCount(1) != 1 || a.VoteCount(1) != 1 {
		t.Fatalf("counts: %d comments, %d votes", a.CommentCount(1), a.VoteCount(1))
	}
	p := b.Open("/post.php?id=1")
	text := p.DOM.InnerText()
	if !strings.Contains(text, "alice: nice") || !strings.Contains(text, "1 votes") {
		t.Fatalf("render: %q", text)
	}
	// Double vote rejected by the unique constraint.
	b.Open("/vote.php?id=1&u=alice&val=1")
	if a.VoteCount(1) != 1 {
		t.Fatalf("double vote: %d", a.VoteCount(1))
	}
	// Comment on a missing post 404s.
	p = b.Open("/comment.php?id=99&u=alice&text=x")
	if !strings.Contains(p.DOM.InnerText(), "") && a.CommentCount(99) != 0 {
		t.Fatal("comment on missing post")
	}
}

func TestLostVotesBugAndPatch(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	b.Open("/vote.php?id=1&u=alice&val=1")
	b.Open("/vote.php?id=1&u=bob&val=1")
	b.Open("/editpost.php?id=1&body=edited")
	if a.VoteCount(1) != 0 {
		t.Fatalf("bug should wipe votes, got %d", a.VoteCount(1))
	}
	if a.PostBody(1) != "edited" {
		t.Fatalf("edit lost: %q", a.PostBody(1))
	}
	// Retroactive patch restores the votes and keeps the edit.
	rep, err := w.RetroPatch("editpost.php", a.EditpostFixed())
	if err != nil {
		t.Fatal(err)
	}
	if a.VoteCount(1) != 2 {
		t.Fatalf("votes not restored: %d", a.VoteCount(1))
	}
	if a.PostBody(1) != "edited" {
		t.Fatalf("edit lost in repair: %q", a.PostBody(1))
	}
	if len(rep.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", rep.Conflicts)
	}
}

func TestLostCommentsBugAndPatch(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	b.Open("/comment.php?id=1&u=alice&text=one")
	b.Open("/comment.php?id=1&u=bob&text=two")
	b.Open("/movepost.php?id=1&category=archive")
	if a.CommentCount(1) != 0 {
		t.Fatalf("bug should wipe comments, got %d", a.CommentCount(1))
	}
	if _, err := w.RetroPatch("movepost.php", a.MovepostFixed()); err != nil {
		t.Fatal(err)
	}
	if a.CommentCount(1) != 2 {
		t.Fatalf("comments not restored: %d", a.CommentCount(1))
	}
	// The move itself (legitimate) is preserved.
	res, _, err := w.DB.Exec("SELECT category FROM posts WHERE node_id = 1")
	if err != nil || res.FirstValue().AsText() != "archive" {
		t.Fatalf("category: %v %v", res.FirstValue(), err)
	}
}

func TestDigestDerivesCounts(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	b.Open("/vote.php?id=1&u=alice&val=1")
	b.Open("/comment.php?id=1&u=alice&text=hi")
	b.Open("/digest.php?id=1")
	res, _, err := w.DB.Exec("SELECT nvotes, ncomments FROM digests WHERE node_id = 1")
	if err != nil || res.Empty() {
		t.Fatalf("digest missing: %v", err)
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsInt() != 1 {
		t.Fatalf("digest: %v", res.Rows[0])
	}
	// Re-running updates in place.
	b.Open("/vote.php?id=1&u=bob&val=1")
	b.Open("/digest.php?id=1")
	res, _, _ = w.DB.Exec("SELECT nvotes FROM digests WHERE node_id = 1")
	if res.FirstValue().AsInt() != 2 {
		t.Fatalf("digest not updated: %v", res.FirstValue())
	}
	_ = a
}
