// Package faultfs is an error-injecting storefs.FS for fault testing.
// It wraps an inner filesystem (usually storefs.OS), assigns every I/O
// operation a global 1-based index, and consults a rule list before
// forwarding each operation. Rules can fail exactly the Nth operation
// (the error-at-every-op sweep), fail every operation from an index on
// (a dying disk), fail operations by kind or path substring (every
// fsync, ENOSPC on every write), or corrupt the data a read returns
// (a bit-rotted sector).
//
// Injected errors wrap ErrInjected so tests can tell an injected fault
// from a real one.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"

	"warp/internal/store/storefs"
)

// ErrInjected is the base of every injected error.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrNoSpace is a convenience ENOSPC wrapping ErrInjected.
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// Op kinds, one per storefs.FS / storefs.File operation faultfs counts.
const (
	OpOpen     = "open"
	OpRead     = "read"     // File.Read
	OpReadFile = "readfile" // FS.ReadFile
	OpReadDir  = "readdir"
	OpWrite    = "write"
	OpSync     = "sync"
	OpSyncDir  = "syncdir"
	OpRename   = "rename"
	OpRemove   = "remove"
	OpMkdir    = "mkdir"
	OpTruncate = "truncate"
)

// Op describes one I/O operation about to execute.
type Op struct {
	// N is the operation's global 1-based index.
	N int64
	// Kind is one of the Op* constants.
	Kind string
	// Path is the file or directory operated on.
	Path string
}

// Rule inspects an operation and returns a non-nil error to inject a
// failure (the inner operation does not run), or nil to let it pass.
type Rule func(op Op) error

// FS is the fault-injecting filesystem. The zero value is not usable;
// call New.
type FS struct {
	inner storefs.FS

	mu      sync.Mutex
	ops     int64
	rules   []Rule
	corrupt []corruptRule
}

type corruptRule struct {
	substr string
	flip   func(data []byte)
}

// New wraps inner (storefs.OS when nil) with fault injection. A fresh
// FS injects nothing; it only counts operations until rules are added.
func New(inner storefs.FS) *FS {
	if inner == nil {
		inner = storefs.OS
	}
	return &FS{inner: inner}
}

// OpCount returns how many operations have executed (or been failed)
// so far. A counting pass over a workload yields the sweep bound.
func (f *FS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// AddRule installs an arbitrary injection rule.
func (f *FS) AddRule(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
}

// Clear removes every rule (the counter keeps running).
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.corrupt = nil
}

// FailOp fails exactly operation #n with err.
func (f *FS) FailOp(n int64, err error) {
	f.AddRule(func(op Op) error {
		if op.N == n {
			return fmt.Errorf("%w: op %d (%s %s): %w", ErrInjected, op.N, op.Kind, op.Path, err)
		}
		return nil
	})
}

// FailFrom fails every operation with index >= n with err: the
// persistent-failure (dying disk) model.
func (f *FS) FailFrom(n int64, err error) {
	f.AddRule(func(op Op) error {
		if op.N >= n {
			return fmt.Errorf("%w: op %d (%s %s): %w", ErrInjected, op.N, op.Kind, op.Path, err)
		}
		return nil
	})
}

// FailKind fails every operation of the given kind whose path contains
// pathSubstr (empty matches all paths). FailKind(OpSync, "", err) is
// the fsyncgate scenario; FailKind(OpWrite, "", ErrNoSpace) is a full
// disk.
func (f *FS) FailKind(kind, pathSubstr string, err error) {
	f.AddRule(func(op Op) error {
		if op.Kind == kind && (pathSubstr == "" || strings.Contains(op.Path, pathSubstr)) {
			return fmt.Errorf("%w: op %d (%s %s): %w", ErrInjected, op.N, op.Kind, op.Path, err)
		}
		return nil
	})
}

// CorruptReads flips one bit in the middle of every ReadFile (and
// File.Read) whose path contains pathSubstr: the bit-rot model. The
// underlying file is untouched.
func (f *FS) CorruptReads(pathSubstr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt = append(f.corrupt, corruptRule{substr: pathSubstr, flip: func(data []byte) {
		if len(data) > 0 {
			data[len(data)/2] ^= 0x40
		}
	}})
}

// op assigns the next index and consults the rules.
func (f *FS) op(kind, path string) error {
	f.mu.Lock()
	f.ops++
	o := Op{N: f.ops, Kind: kind, Path: path}
	rules := f.rules
	f.mu.Unlock()
	for _, r := range rules {
		if err := r(o); err != nil {
			return err
		}
	}
	return nil
}

// maybeCorrupt applies read-corruption rules to data in place.
func (f *FS) maybeCorrupt(path string, data []byte) {
	f.mu.Lock()
	rules := f.corrupt
	f.mu.Unlock()
	for _, r := range rules {
		if r.substr == "" || strings.Contains(path, r.substr) {
			r.flip(data)
		}
	}
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (storefs.File, error) {
	if err := f.op(OpOpen, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, path: name, inner: inner}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.op(OpReadFile, name); err != nil {
		return nil, err
	}
	data, err := f.inner.ReadFile(name)
	if err == nil {
		f.maybeCorrupt(name, data)
	}
	return data, err
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.op(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.op(OpRename, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.op(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.op(OpMkdir, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.op(OpSyncDir, dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// file wraps one open file with fault injection. Reads, writes, syncs,
// and truncates count as operations; Seek, Stat, and Close do not (the
// store's correctness never depends on their failure).
type file struct {
	fs    *FS
	path  string
	inner storefs.File
}

func (w *file) Read(p []byte) (int, error) {
	if err := w.fs.op(OpRead, w.path); err != nil {
		return 0, err
	}
	n, err := w.inner.Read(p)
	if n > 0 {
		w.fs.maybeCorrupt(w.path, p[:n])
	}
	return n, err
}

func (w *file) Write(p []byte) (int, error) {
	if err := w.fs.op(OpWrite, w.path); err != nil {
		return 0, err
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	if err := w.fs.op(OpSync, w.path); err != nil {
		return err
	}
	return w.inner.Sync()
}

func (w *file) Truncate(size int64) error {
	if err := w.fs.op(OpTruncate, w.path); err != nil {
		return err
	}
	return w.inner.Truncate(size)
}

func (w *file) Seek(offset int64, whence int) (int64, error) {
	return w.inner.Seek(offset, whence)
}

func (w *file) Stat() (os.FileInfo, error) { return w.inner.Stat() }
func (w *file) Close() error               { return w.inner.Close() }
