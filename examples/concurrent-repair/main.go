// concurrent-repair demonstrates the three kinds of repair concurrency:
//
//   - repair generations (§4.3): the wiki keeps serving users while a
//     large repair runs, and at the end the repaired generation atomically
//     becomes current;
//   - the parallel repair scheduler: actions on disjoint time-travel
//     partitions repair on multiple workers (Config.RepairWorkers), while
//     conflicting actions keep the paper's time order;
//   - partition-granular concurrency on a single hot table: row-range
//     (lock-column) scopes in the database plus per-client page-visit
//     replay, compared against the table-granular baseline
//     (Config.TableGranularLocks).
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"warp/internal/attacks"
	"warp/internal/bench"
	"warp/internal/workload"
)

func main() {
	// Part 1 — repair generations: a clickjacking workload whose repair
	// re-executes nearly everything, so there is a meaningful window to
	// serve traffic in.
	sc, _ := attacks.ByName("Clickjacking")
	res, err := workload.Run(workload.Config{Users: 40, Victims: 3, Seed: 21, Scenario: sc})
	must(err)
	sys := res.Env.W

	fmt.Printf("workload: %d page visits, %d runs, %d queries logged\n",
		res.PageVisits, res.AppRuns, res.Queries)
	fmt.Println("starting repair; serving traffic concurrently…")

	var served atomic.Int64
	stop := make(chan struct{})
	go func() {
		b := sys.NewBrowser()
		for {
			select {
			case <-stop:
				return
			default:
				p := b.Open("/index.php?title=Main")
				if p.DOM != nil {
					served.Add(1)
				}
			}
		}
	}()

	start := time.Now()
	report, err := sc.Repair(res.Env)
	must(err)
	close(stop)

	fmt.Printf("repair finished in %v while serving %d page visits concurrently\n",
		time.Since(start).Round(time.Millisecond), served.Load())
	fmt.Println("repair:", report.String())
	fmt.Println("the repaired generation is now current; normal operation never stopped")

	// Part 2 — the parallel scheduler: the same partition-disjoint repair
	// at 1, 2, and 4 workers. The work accounting is identical at every
	// worker count; only the wall time changes.
	fmt.Println()
	fmt.Println("parallel repair scheduler on a partition-disjoint workload (24 runs):")
	for _, workers := range []int{1, 2, 4} {
		r, err := bench.ParallelRepair(12, 2, workers, 500*time.Microsecond)
		must(err)
		fmt.Printf("  %d worker(s): repair %8v  (%d runs, %d queries re-executed)\n",
			workers, r.RepairTime.Round(time.Microsecond),
			r.Report.AppRunsReexecuted, r.Report.QueriesReexecuted)
	}

	// Part 3 — partition granularity on one hot table: every client's
	// visits hit the same `posts` table (disjoint partitions), and the
	// repair cascades into per-client visit-replay chains. The old
	// table-granular mode serializes the replays globally; the
	// partition-granular pipeline overlaps them across workers.
	fmt.Println()
	fmt.Println("partition-granular repair on a single hot table (12 clients × 3 visits):")
	base, err := bench.PartitionRepair(12, 2, 4, time.Millisecond, true)
	must(err)
	fmt.Printf("  table-granular baseline, 4 workers: repair %8v\n", base.RepairTime.Round(time.Microsecond))
	for _, workers := range []int{1, 4} {
		r, err := bench.PartitionRepair(12, 2, workers, time.Millisecond, false)
		must(err)
		fmt.Printf("  partition-granular, %d worker(s):   repair %8v  (%d visits replayed)\n",
			workers, r.RepairTime.Round(time.Microsecond), r.Report.PageVisitsReplayed)
	}
	fmt.Println("same repaired state in every configuration; only the wall time changes")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
