// Package wiki implements GoWiki, the MediaWiki stand-in evaluated by the
// paper (§8). It is a complete multi-user wiki: accounts, sessions, page
// viewing and editing, page protection with access control lists, a block
// log, a web installer, and a maintenance endpoint — enough surface to
// host all six vulnerabilities of the paper's Table 2:
//
//	reflected XSS   CVE-2009-0737  config/index.php echoes installer
//	                               options unescaped
//	stored XSS      CVE-2009-4589  block.php stores the ip parameter
//	                               unescaped; the block log renders it
//	CSRF            CVE-2010-1150  login.php accepts login POSTs without a
//	                               challenge token
//	clickjacking    CVE-2011-0003  no X-Frame-Options header (common.php)
//	SQL injection   CVE-2004-2186  maintenance.php concatenates thelang
//	                               into an UPDATE
//	ACL error       —              administrator grants the wrong user
//	                               access (repaired by undo, not patching)
//
// Following the paper's trust model, page content is sanitized when saved
// through edit.php; the vulnerabilities are the paths around that
// sanitization. Patched versions of each file are provided by
// Vulnerabilities for retroactive patching.
package wiki

import (
	"fmt"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// App is an installed GoWiki application.
type App struct {
	W *core.Warp
}

// Annotations returns the per-table WARP annotations (row ID and partition
// columns) — the "89 lines of annotation" work of §8.1, here as data.
func Annotations() map[string]ttdb.TableSpec {
	return map[string]ttdb.TableSpec{
		"users":    {RowIDColumn: "user_id", PartitionColumns: []string{"name", "user_id"}},
		"sessions": {RowIDColumn: "sid", PartitionColumns: []string{"sid"}},
		// The paper's own example (§4.1): immutable page_id is the row ID;
		// queries look pages up by title or last editor.
		"pages":    {RowIDColumn: "page_id", PartitionColumns: []string{"title", "last_editor"}},
		"acl":      {PartitionColumns: []string{"page_title", "user_name"}}, // synthetic row ID
		"blocklog": {},                                                      // synthetic row ID, whole-table deps
		"tokens":   {RowIDColumn: "token", PartitionColumns: []string{"token"}},
	}
}

// Schema returns the application's DDL. The benchmark harness also runs
// it against a plain (non-versioned) engine for the paper's "No WARP"
// baseline (Table 6).
func Schema() []string { return append([]string{}, schema...) }

// schema is the application schema, created through the time-travel layer.
var schema = []string{
	`CREATE TABLE IF NOT EXISTS users (
		user_id INTEGER PRIMARY KEY,
		name TEXT UNIQUE NOT NULL,
		password TEXT NOT NULL,
		is_admin BOOLEAN DEFAULT FALSE
	)`,
	`CREATE TABLE IF NOT EXISTS sessions (
		sid TEXT PRIMARY KEY,
		user_id INTEGER NOT NULL
	)`,
	`CREATE TABLE IF NOT EXISTS pages (
		page_id INTEGER PRIMARY KEY,
		title TEXT UNIQUE NOT NULL,
		lang TEXT DEFAULT 'en',
		last_editor TEXT DEFAULT '',
		protected BOOLEAN DEFAULT FALSE,
		content TEXT DEFAULT ''
	)`,
	`CREATE TABLE IF NOT EXISTS acl (
		page_title TEXT NOT NULL,
		user_name TEXT NOT NULL,
		UNIQUE (page_title, user_name)
	)`,
	`CREATE TABLE IF NOT EXISTS blocklog (
		note TEXT NOT NULL
	)`,
	`CREATE TABLE IF NOT EXISTS tokens (
		token TEXT PRIMARY KEY
	)`,
}

// Install annotates and creates the schema, registers every source file,
// and mounts the routes. It runs against a fresh deployment or a
// recovered one (warp.Open): annotations re-declare identically and the
// DDL uses IF NOT EXISTS, so setup is idempotent across restarts.
func Install(w *core.Warp) (*App, error) {
	a := &App{W: w}
	for table, spec := range Annotations() {
		if err := w.DB.Annotate(table, spec); err != nil {
			return nil, err
		}
	}
	for _, ddl := range schema {
		if _, _, err := w.DB.Exec(ddl); err != nil {
			return nil, err
		}
	}
	files := map[string]app.Version{
		"common.php":       {Lib: a.commonV1(), Note: "layout helpers (vulnerable: no frame guard)"},
		"index.php":        {Entry: a.indexPHP, Note: "page viewer"},
		"edit.php":         {Entry: a.editPHP, Note: "page editor"},
		"append.php":       {Entry: a.appendPHP, Note: "quick append (write-only page edit)"},
		"login.php":        {Entry: a.loginV1, Note: "login (vulnerable: no CSRF challenge)"},
		"logout.php":       {Entry: a.logoutPHP, Note: "logout"},
		"block.php":        {Entry: a.blockV1, Note: "block tool (vulnerable: stored XSS via ip)"},
		"blocklog.php":     {Entry: a.blocklogPHP, Note: "block log viewer"},
		"config/index.php": {Entry: a.installerV1, Note: "installer (vulnerable: reflected XSS)"},
		"maintenance.php":  {Entry: a.maintenanceV1, Note: "maintenance (vulnerable: SQL injection)"},
		"acl.php":          {Entry: a.aclPHP, Note: "page protection admin"},
	}
	for name, v := range files {
		if err := w.Runtime.Register(name, v); err != nil {
			return nil, err
		}
	}
	routes := map[string]string{
		"/":                 "index.php",
		"/index.php":        "index.php",
		"/edit.php":         "edit.php",
		"/append.php":       "append.php",
		"/login.php":        "login.php",
		"/logout.php":       "logout.php",
		"/block.php":        "block.php",
		"/blocklog.php":     "blocklog.php",
		"/config/index.php": "config/index.php",
		"/maintenance.php":  "maintenance.php",
		"/acl.php":          "acl.php",
	}
	for path, file := range routes {
		w.Runtime.Mount(path, file)
	}
	return a, nil
}

// CreateUser seeds an account. Seeding happens before WARP's log horizon,
// like the base checkpoint the paper rolls back to.
func (a *App) CreateUser(name, password string, admin bool) error {
	res, _, err := a.W.DB.Exec("SELECT COALESCE(MAX(user_id), 0) + 1 FROM users")
	if err != nil {
		return err
	}
	id := res.FirstValue().AsInt()
	_, _, err = a.W.DB.Exec(
		"INSERT INTO users (user_id, name, password, is_admin) VALUES (?, ?, ?, ?)",
		sqldb.Int(id), sqldb.Text(name), sqldb.Text(password), sqldb.Bool(admin))
	return err
}

// CreatePage seeds a page.
func (a *App) CreatePage(title, content string, protected bool) error {
	res, _, err := a.W.DB.Exec("SELECT COALESCE(MAX(page_id), 0) + 1 FROM pages")
	if err != nil {
		return err
	}
	id := res.FirstValue().AsInt()
	_, _, err = a.W.DB.Exec(
		"INSERT INTO pages (page_id, title, content, protected) VALUES (?, ?, ?, ?)",
		sqldb.Int(id), sqldb.Text(title), sqldb.Text(content), sqldb.Bool(protected))
	return err
}

// Grant seeds an ACL entry allowing a user to edit a protected page.
func (a *App) Grant(title, user string) error {
	_, _, err := a.W.DB.Exec(
		"INSERT INTO acl (page_title, user_name) VALUES (?, ?)",
		sqldb.Text(title), sqldb.Text(user))
	return err
}

// PageContent reads a page's current content directly (test/bench helper).
func (a *App) PageContent(title string) (string, error) {
	res, _, err := a.W.DB.Exec("SELECT content FROM pages WHERE title = ?", sqldb.Text(title))
	if err != nil {
		return "", err
	}
	if res.Empty() {
		return "", fmt.Errorf("wiki: no page %q", title)
	}
	return res.FirstValue().AsText(), nil
}

// PageEditor reads a page's last_editor column (test/bench helper).
func (a *App) PageEditor(title string) (string, error) {
	res, _, err := a.W.DB.Exec("SELECT last_editor FROM pages WHERE title = ?", sqldb.Text(title))
	if err != nil {
		return "", err
	}
	if res.Empty() {
		return "", fmt.Errorf("wiki: no page %q", title)
	}
	return res.FirstValue().AsText(), nil
}

// HasACL reports whether user may edit the protected page (test helper).
func (a *App) HasACL(title, user string) bool {
	res, _, err := a.W.DB.Exec(
		"SELECT COUNT(*) FROM acl WHERE page_title = ? AND user_name = ?",
		sqldb.Text(title), sqldb.Text(user))
	return err == nil && res.FirstValue().AsInt() > 0
}
