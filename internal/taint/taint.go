// Package taint implements the baseline WARP is compared against in the
// paper's §8.4 (Table 5): Akkuş & Goel's taint-tracking data-recovery
// system for web applications (DSN 2010).
//
// That system recovers from data-corruption bugs by offline dependency
// analysis: the administrator identifies the HTTP request that triggered
// the bug, the analyzer computes which database state the request could
// have influenced under a chosen dependency policy, and the administrator
// rolls the flagged state back by hand. Coarse policies flag too much
// (false positives — legitimate data lost); narrow policies flag too
// little (false negatives — corruption left behind). Table white-listing
// trims false positives at the cost of administrator effort.
//
// The implementation here runs the same analysis over WARP's recorded
// action history graph: requests with their query read partitions and
// write row sets. The policies mirror the behavioral classes of the
// original system rather than its exact rule set.
package taint

import (
	"fmt"
	"sort"

	"warp/internal/core"
	"warp/internal/history"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// RowKey names one application row: a table and the Key() of its row ID.
type RowKey struct {
	Table string
	Key   string
}

// String renders the key.
func (k RowKey) String() string { return k.Table + "/" + k.Key }

// Policy selects a dependency analysis policy.
type Policy uint8

// Policies, from narrowest to broadest.
const (
	// PolicyDirect flags only the rows written by the flagged request
	// itself. It misses derived corruption (false negatives).
	PolicyDirect Policy = iota
	// PolicyFlow propagates taint: any later request that read a
	// partition containing tainted rows becomes tainted, and everything it
	// wrote is flagged. No false negatives, many false positives.
	PolicyFlow
	// PolicyFlowWhitelist is PolicyFlow with administrator-supplied table
	// white-listing: reads from white-listed tables do not propagate
	// taint.
	PolicyFlowWhitelist
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyDirect:
		return "direct"
	case PolicyFlow:
		return "flow"
	case PolicyFlowWhitelist:
		return "flow+whitelist"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Analysis is the outcome of one offline dependency analysis.
type Analysis struct {
	Policy          Policy
	TaintedRows     map[RowKey]bool
	TaintedRequests int
	FalsePositives  int // flagged rows that were not actually corrupted
	FalseNegatives  int // corrupted rows the analysis missed
}

// Analyze runs the offline dependency analysis on a deployment's recorded
// history. buggyRun is the run action the administrator identified as the
// bug trigger; whitelist lists tables whose reads do not propagate taint
// (PolicyFlowWhitelist only); corrupted is the ground-truth set of
// corrupted rows, used for the FP/FN accounting.
func Analyze(w *core.Warp, buggyRun history.ActionID, pol Policy, whitelist map[string]bool, corrupted map[RowKey]bool) (*Analysis, error) {
	act := w.Graph.Get(buggyRun)
	if act == nil || act.Kind != history.KindAppRun {
		return nil, fmt.Errorf("taint: action %d is not an application run", buggyRun)
	}
	a := &Analysis{Policy: pol, TaintedRows: make(map[RowKey]bool)}

	taintedParts := ttdb.NewPartitionSet()
	taintRunWrites := func(run *history.Action) {
		payload, ok := run.Payload.(*core.RunPayload)
		if !ok {
			return
		}
		for _, q := range payload.Rec.Queries {
			if !q.IsWrite() {
				continue
			}
			for _, id := range q.WriteRowIDs {
				a.TaintedRows[RowKey{Table: q.Table, Key: id.Key()}] = true
			}
			taintedParts.AddAll(q.WritePartitions)
		}
	}
	taintRunWrites(act)
	a.TaintedRequests = 1

	if pol != PolicyDirect {
		// Propagate forward in time over all later runs.
		for _, run := range w.Graph.ByKind(history.KindAppRun) {
			if run.Time <= act.Time || run.ID == act.ID {
				continue
			}
			payload, ok := run.Payload.(*core.RunPayload)
			if !ok || payload.Repaired {
				continue
			}
			tainted := false
			for _, q := range payload.Rec.Queries {
				if q.Kind == ttdb.KindInsert {
					// An INSERT's recorded read set is its uniqueness
					// footprint (WARP's §6 bookkeeping), not a data flow;
					// the taint baseline tracks only genuine reads.
					continue
				}
				reads := q.ReadPartitions
				if pol == PolicyFlowWhitelist {
					reads = dropWhitelisted(reads, whitelist)
				}
				if taintedParts.OverlapsAny(reads) {
					tainted = true
					break
				}
			}
			if tainted {
				a.TaintedRequests++
				taintRunWrites(run)
			}
		}
	}

	for k := range a.TaintedRows {
		if !corrupted[k] {
			a.FalsePositives++
		}
	}
	for k := range corrupted {
		if !a.TaintedRows[k] {
			a.FalseNegatives++
		}
	}
	return a, nil
}

func dropWhitelisted(parts []ttdb.Partition, whitelist map[string]bool) []ttdb.Partition {
	if len(whitelist) == 0 {
		return parts
	}
	out := parts[:0:0]
	for _, p := range parts {
		if !whitelist[p.Table] {
			out = append(out, p)
		}
	}
	return out
}

// LiveRows returns the live application rows of a table keyed by row ID,
// fingerprinted by content. It reads raw storage filtered to the current
// generation.
func LiveRows(db *ttdb.DB, table, rowIDCol string) (map[string]uint64, error) {
	gen := db.CurrentGen()
	q := fmt.Sprintf(
		"SELECT * FROM %s WHERE warp_end_time = %d AND warp_start_gen <= %d AND warp_end_gen >= %d",
		table, ttdb.Infinity, gen, gen)
	res, err := db.Raw().Exec(q)
	if err != nil {
		return nil, err
	}
	idIdx := -1
	var userCols []int
	for i, c := range res.Columns {
		switch c {
		case rowIDCol:
			idIdx = i
			userCols = append(userCols, i)
		case ttdb.ColRowID:
			idIdx = i
		case ttdb.ColStartTime, ttdb.ColEndTime, ttdb.ColStartGen, ttdb.ColEndGen:
		default:
			userCols = append(userCols, i)
		}
	}
	if idIdx < 0 {
		return nil, fmt.Errorf("taint: table %s has no row ID column %s", table, rowIDCol)
	}
	out := make(map[string]uint64, len(res.Rows))
	for _, row := range res.Rows {
		sub := &sqldb.Result{}
		for _, ci := range userCols {
			sub.Rows = append(sub.Rows, []sqldb.Value{row[ci]})
		}
		out[row[idIdx].Key()] = sub.Fingerprint()
	}
	return out, nil
}

// DiffRows compares one table between two deployments (same workload) and
// returns the rows whose content differs or that exist on only one side.
// It is the ground-truth oracle for corruption: the reference deployment
// ran the same workload with the bug already fixed.
func DiffRows(got, want *ttdb.DB, table, rowIDCol string) ([]RowKey, error) {
	a, err := LiveRows(got, table, rowIDCol)
	if err != nil {
		return nil, err
	}
	b, err := LiveRows(want, table, rowIDCol)
	if err != nil {
		return nil, err
	}
	var out []RowKey
	for k, fp := range a {
		if bfp, ok := b[k]; !ok || bfp != fp {
			out = append(out, RowKey{Table: table, Key: k})
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			out = append(out, RowKey{Table: table, Key: k})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
