// External test package: core wires httpd into a full deployment here,
// and httpd itself is imported by core, so this smoke test of the
// /warp/metrics endpoint cannot live inside package httpd.
package httpd_test

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/obs"
	"warp/internal/sqldb"
)

var (
	// One sample line of the Prometheus text format (version 0.0.4):
	// metric name, optional {key="value",...} label set, float value.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (\S+)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// TestMetricsEndpointParses drives a small deployment with
// observability on, fetches the metrics handler that warp-server mounts
// at GET /warp/metrics, and verifies every line of the exposition
// parses: TYPE comments, samples with optional label sets, finite
// values, cumulative histogram buckets with a trailing +Inf equal to
// _count, and the series the instrumented layers must have produced.
func TestMetricsEndpointParses(t *testing.T) {
	prevEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevEnabled)

	w := core.New(core.Config{Seed: 7})
	if _, _, err := w.DB.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := w.Runtime.Register("index.php", app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		c.MustQuery("INSERT INTO notes (id, body) VALUES (?, ?)", sqldb.Int(1), sqldb.Text("hello"))
		c.MustQuery("SELECT body FROM notes WHERE id = ?", sqldb.Int(1))
		return httpd.HTML("<html><body>ok</body></html>")
	}}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "index.php")
	b := w.NewBrowser()
	if p := b.Open("/"); p.DOM == nil {
		t.Fatal("page visit failed")
	}

	req := httptest.NewRequest("GET", "/warp/metrics", nil)
	rec := httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()

	// count trails the bucket series of the same histogram; bucket
	// counts must be cumulative and end at the +Inf value.
	var (
		lastBucketName string
		lastCum        float64
		sawInf         bool
	)
	names := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !typeRe.MatchString(line) {
				t.Fatalf("line %d: unparsable comment %q", ln+1, line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparsable sample %q", ln+1, line)
		}
		name, labels := m[1], m[2]
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		names[name] = true

		if strings.HasSuffix(name, "_bucket") {
			key := name + labelsWithoutLe(labels)
			if key != lastBucketName {
				lastBucketName, lastCum, sawInf = key, 0, false
			}
			if v < lastCum {
				t.Fatalf("line %d: bucket series %s not cumulative (%g < %g)", ln+1, key, v, lastCum)
			}
			lastCum = v
			if strings.Contains(labels, `le="+Inf"`) {
				sawInf = true
			}
		} else if strings.HasSuffix(name, "_count") && lastBucketName != "" &&
			strings.TrimSuffix(name, "_count") == strings.TrimSuffix(strings.SplitN(lastBucketName, "{", 2)[0], "_bucket") {
			if !sawInf {
				t.Fatalf("histogram %s has no +Inf bucket", name)
			}
			if v != lastCum {
				t.Fatalf("%s = %g, but +Inf bucket = %g", name, v, lastCum)
			}
		}
	}

	// The layers instrumented in this run must have exported series.
	for _, want := range []string{
		"warp_core_requests_total",
		"warp_core_request_seconds_count",
		"warp_sqldb_exec_seconds_bucket",
		"warp_sqldb_exec_seconds_count",
	} {
		if !names[want] {
			t.Errorf("exposition is missing series %s", want)
		}
	}
}

// labelsWithoutLe strips the le label so bucket series of one histogram
// share a key.
func labelsWithoutLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, kv := range strings.Split(inner, ",") {
		if !strings.HasPrefix(kv, "le=") {
			kept = append(kept, kv)
		}
	}
	return "{" + strings.Join(kept, ",") + "}"
}
