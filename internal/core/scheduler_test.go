package core

import (
	"fmt"
	"strings"
	"testing"

	"warp/internal/app"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// buildDisjointWorkload creates a notes deployment where each of users
// owners wrote notes notes into their own partition, then retro-patches
// with a sanitizing handler so every run re-executes. Returns the report
// and the final table contents.
func buildDisjointWorkload(t *testing.T, workers, users, notes int) (*Report, []string) {
	t.Helper()
	w := newNotesAppWorkers(t, workers)
	for u := 0; u < users; u++ {
		for n := 0; n < notes; n++ {
			resp := w.HandleRequest(httpd.NewRequest("GET",
				fmt.Sprintf("/?owner=u%d&body=<b>note-%d-%d</b>", u, u, n)))
			if resp.Status != 200 {
				t.Fatalf("seed request failed: %d", resp.Status)
			}
		}
	}
	fixed := func(c *app.Ctx) *httpd.Response {
		if body := c.Req.Param("body"); body != "" {
			clean := strings.ReplaceAll(strings.ReplaceAll(body, "<", "&lt;"), ">", "&gt;")
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM notes").FirstValue()
			c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
				id, sqldb.Text(c.Req.Param("owner")), sqldb.Text(clean))
		}
		res := c.MustQuery("SELECT body FROM notes WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			sb.WriteString("<li>" + row[0].AsText() + "</li>")
		}
		sb.WriteString("</ul></body></html>")
		return httpd.HTML(sb.String())
	}
	rep, err := w.RetroPatch("notes.php", app.Version{Entry: fixed, Note: "sanitize"})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := w.DB.Exec("SELECT owner, body FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, r[0].AsText()+"|"+r[1].AsText())
	}
	return rep, rows
}

// newNotesAppWorkers is newNotesApp with an explicit worker count.
func newNotesAppWorkers(t *testing.T, workers int) *Warp {
	t.Helper()
	w := New(Config{Seed: 5, RepairWorkers: workers})
	if err := w.DB.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	handler := func(c *app.Ctx) *httpd.Response {
		if body := c.Req.Param("body"); body != "" {
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM notes").FirstValue()
			c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
				id, sqldb.Text(c.Req.Param("owner")), sqldb.Text(body))
		}
		res := c.MustQuery("SELECT body FROM notes WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		var b strings.Builder
		b.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			b.WriteString("<li>" + row[0].AsText() + "</li>")
		}
		b.WriteString("</ul></body></html>")
		return httpd.HTML(b.String())
	}
	if err := w.Runtime.Register("notes.php", app.Version{Entry: handler}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "notes.php")
	return w
}

// TestParallelRepairMatchesSerial repairs the same partition-disjoint
// workload with the serial engine and with 4 workers and requires
// identical reports (work accounting, conflicts) and identical final
// table states.
func TestParallelRepairMatchesSerial(t *testing.T) {
	serialRep, serialRows := buildDisjointWorkload(t, 1, 6, 3)
	parallelRep, parallelRows := buildDisjointWorkload(t, 4, 6, 3)

	if serialRep.RepairWorkers != 1 || parallelRep.RepairWorkers != 4 {
		t.Fatalf("workers = %d / %d, want 1 / 4", serialRep.RepairWorkers, parallelRep.RepairWorkers)
	}
	if serialRep.AppRunsReexecuted == 0 {
		t.Fatal("workload repaired nothing")
	}
	type counts struct{ runs, queries, visits, cancelled, conflicts int }
	s := counts{serialRep.AppRunsReexecuted, serialRep.QueriesReexecuted, serialRep.PageVisitsReplayed, serialRep.RunsCancelled, len(serialRep.Conflicts)}
	p := counts{parallelRep.AppRunsReexecuted, parallelRep.QueriesReexecuted, parallelRep.PageVisitsReplayed, parallelRep.RunsCancelled, len(parallelRep.Conflicts)}
	if s != p {
		t.Fatalf("report mismatch:\n  serial   %+v\n  parallel %+v", s, p)
	}
	if len(serialRows) != len(parallelRows) {
		t.Fatalf("row count mismatch: %d vs %d", len(serialRows), len(parallelRows))
	}
	for i := range serialRows {
		if serialRows[i] != parallelRows[i] {
			t.Fatalf("row %d mismatch: %q vs %q", i, serialRows[i], parallelRows[i])
		}
	}
	// The sanitizer must have rewritten every note in both timelines.
	for _, r := range parallelRows {
		if strings.Contains(r, "<b>") {
			t.Fatalf("unsanitized row survived parallel repair: %q", r)
		}
	}
}

// TestSerialIdenticalToLegacyEngine pins the serial path's report against
// the values the pre-scheduler engine produced for the same workload, so
// RepairWorkers=1 stays a faithful reproduction of the paper's loop.
func TestSerialIdenticalToLegacyEngine(t *testing.T) {
	rep, _ := buildDisjointWorkload(t, 1, 3, 2)
	// 3 users x 2 notes = 6 runs, each re-executed once by the patch.
	if rep.AppRunsReexecuted != 6 {
		t.Fatalf("runs re-executed = %d, want 6", rep.AppRunsReexecuted)
	}
	if rep.TotalAppRuns != 6 {
		t.Fatalf("total runs = %d, want 6", rep.TotalAppRuns)
	}
	// Every run's response changes (sanitized body) and the extensionless
	// client yields one conflict per changed response.
	if len(rep.Conflicts) != 6 {
		t.Fatalf("conflicts = %d, want 6", len(rep.Conflicts))
	}
	if rep.Generation != 2 {
		t.Fatalf("generation = %d, want 2", rep.Generation)
	}
}

// TestRepairWorkersKnob checks the default resolution of the knob.
func TestRepairWorkersKnob(t *testing.T) {
	w := newNotesAppWorkers(t, 0)
	rs := w.newSession(2)
	if rs.sched.workers < 1 {
		t.Fatalf("default workers = %d, want >= 1", rs.sched.workers)
	}
	w2 := newNotesAppWorkers(t, 7)
	rs2 := w2.newSession(2)
	if rs2.sched.workers != 7 {
		t.Fatalf("workers = %d, want 7", rs2.sched.workers)
	}
	w3 := newNotesAppWorkers(t, -3)
	rs3 := w3.newSession(2)
	if rs3.sched.workers != 1 {
		t.Fatalf("negative workers = %d, want clamp to 1", rs3.sched.workers)
	}
}

// TestUndoPartition rolls back one owner's partition to before an attack
// and checks the rest of the table is untouched, at both worker counts.
func TestUndoPartition(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := newNotesAppWorkers(t, workers)
		seed := func(owner, body string) {
			resp := w.HandleRequest(httpd.NewRequest("GET", "/?owner="+owner+"&body="+body))
			if resp.Status != 200 {
				t.Fatalf("seed failed: %d", resp.Status)
			}
		}
		seed("alice", "clean")
		seed("bob", "bob-note")
		preAttack := w.Clock.Now()
		seed("alice", "INJECTED")

		alice := ttdb.Partition{Table: "notes", Column: "owner", Key: sqldb.Text("alice").Key()}
		rep, err := w.UndoPartition(alice, preAttack+1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.RunsCancelled == 0 {
			t.Fatalf("workers=%d: no runs cancelled", workers)
		}
		res, _, _ := w.DB.Exec("SELECT owner, body FROM notes ORDER BY id")
		var bodies []string
		for _, r := range res.Rows {
			bodies = append(bodies, r[1].AsText())
		}
		for _, b := range bodies {
			if b == "INJECTED" {
				t.Fatalf("workers=%d: injected row survived partition undo: %v", workers, bodies)
			}
		}
		found := false
		for _, b := range bodies {
			if b == "bob-note" {
				found = true
			}
		}
		if !found {
			t.Fatalf("workers=%d: bob's partition damaged: %v", workers, bodies)
		}
	}
}

// TestParallelUndoVisit exercises the exclusive visit path and run
// cancellation under the parallel scheduler.
func TestParallelUndoVisit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := newNotesAppWorkers(t, workers)
		b := w.NewBrowser()
		b.Open("/?owner=alice&body=keep")
		evil := b.Open("/?owner=alice&body=EVIL")
		_ = evil
		undoVisit := int64(2)
		rep, err := w.UndoVisit(b.ClientID, undoVisit, true)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.RunsCancelled == 0 {
			t.Fatalf("workers=%d: nothing cancelled", workers)
		}
		res, _, _ := w.DB.Exec("SELECT body FROM notes ORDER BY id")
		for _, r := range res.Rows {
			if r[0].AsText() == "EVIL" {
				t.Fatalf("workers=%d: undone note survived", workers)
			}
		}
	}
}
