package main

import (
	"reflect"
	"testing"
)

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkRangeScan/indexed-8": "BenchmarkRangeScan/indexed",
		"BenchmarkNormalExec/update":   "BenchmarkNormalExec/update",
		"BenchmarkCheckpoint-16":       "BenchmarkCheckpoint",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMissingFamilies(t *testing.T) {
	base := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkRangeScan/indexed":  {NsPerOp: 1},
		"BenchmarkRangeScan/fullscan": {NsPerOp: 1},
		"BenchmarkNormalExec/update":  {NsPerOp: 1},
		"BenchmarkCheckpoint":         {NsPerOp: 1},
	}}
	cur := &Report{Benchmarks: map[string]Metrics{
		// RangeScan lost one sub-benchmark but the family survives;
		// NormalExec and Checkpoint vanished entirely.
		"BenchmarkRangeScan/indexed": {NsPerOp: 1},
	}}
	got := missingFamilies(base, cur)
	want := []string{"BenchmarkCheckpoint", "BenchmarkNormalExec"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("missingFamilies = %v, want %v", got, want)
	}
}

func TestGateFailsOnMissingFamily(t *testing.T) {
	base := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkRangeScan/indexed": {NsPerOp: 100},
		"BenchmarkNormalExec/update": {NsPerOp: 100},
	}}
	cur := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkRangeScan/indexed": {NsPerOp: 100},
	}}
	if gate(base, cur, 0.30) {
		t.Error("gate passed with an entire baselined family missing")
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkRangeScan/indexed": {NsPerOp: 100, AllocsPerOp: 10},
	}}
	cur := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkRangeScan/indexed": {NsPerOp: 120, AllocsPerOp: 12},
	}}
	if !gate(base, cur, 0.30) {
		t.Error("gate failed within threshold")
	}
	cur.Benchmarks["BenchmarkRangeScan/indexed"] = Metrics{NsPerOp: 140, AllocsPerOp: 10}
	if gate(base, cur, 0.30) {
		t.Error("gate passed a 40% ns/op regression")
	}
}
