package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Ordered-index correctness: every indexed query must produce exactly
// the rows, values, and row order of the same query against an
// index-free table, where every scan is a full scan and every ORDER BY
// is the executor's stable sort. The oracle database is therefore a
// plain copy of the same data with no CREATE INDEX.

// twinDBs returns an indexed database and its index-free oracle, both
// loaded with n rows of mixed data: clustered ints, scattered texts, and
// NULLs in both indexed columns.
func twinDBs(t *testing.T, rng *rand.Rand, n int) (idx, oracle *DB) {
	t.Helper()
	idx, oracle = Open(), Open()
	ddl := "CREATE TABLE items (id INTEGER, grade INTEGER, tag TEXT, note TEXT)"
	for _, db := range []*DB{idx, oracle} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for _, col := range []string{"id", "grade", "tag"} {
		if _, err := idx.Exec(fmt.Sprintf("CREATE INDEX ix_%s ON items (%s)", col, col)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		var grade, tag Value
		if rng.Intn(8) == 0 {
			grade = Null()
		} else {
			grade = Int(int64(rng.Intn(20)))
		}
		if rng.Intn(8) == 0 {
			tag = Null()
		} else {
			tag = Text(fmt.Sprintf("t%02d", rng.Intn(30)))
		}
		args := []Value{Int(int64(i)), grade, tag, Text(fmt.Sprintf("note-%d", i))}
		for _, db := range []*DB{idx, oracle} {
			if _, err := db.Exec("INSERT INTO items (id, grade, tag, note) VALUES (?, ?, ?, ?)", args...); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Delete a scattered subset so both sides carry tombstones.
	for i := 0; i < n/5; i++ {
		id := Int(int64(rng.Intn(n)))
		for _, db := range []*DB{idx, oracle} {
			if _, err := db.Exec("DELETE FROM items WHERE id = ?", id); err != nil {
				t.Fatal(err)
			}
		}
	}
	return idx, oracle
}

// renderResult flattens a result for comparison, order included.
func renderResult(r *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	for _, row := range r.Rows {
		b.WriteByte('\n')
		for _, v := range row {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
	}
	return b.String()
}

// randomRangeQuery generates a query whose WHERE and ORDER BY exercise
// the ordered-scan planner: ranges, BETWEEN, bounded IN, and ORDER BY on
// indexed and unindexed columns, ascending and descending.
func randomRangeQuery(rng *rand.Rand) (string, []Value) {
	cols := []string{"id", "grade", "tag", "note"}
	icol := func() string { return cols[rng.Intn(2)] }
	var where string
	var params []Value
	switch rng.Intn(8) {
	case 0:
		where = fmt.Sprintf(" WHERE %s >= %d", icol(), rng.Intn(20))
	case 1:
		where = fmt.Sprintf(" WHERE %s < %d", icol(), rng.Intn(20))
	case 2:
		where = fmt.Sprintf(" WHERE %s BETWEEN %d AND %d", icol(), rng.Intn(10), 5+rng.Intn(15))
	case 3:
		where = fmt.Sprintf(" WHERE %s > ? AND %s <= ?", icol(), icol())
		params = append(params, Int(int64(rng.Intn(10))), Int(int64(5+rng.Intn(15))))
	case 4:
		where = fmt.Sprintf(" WHERE %s IN (%d, %d, ?)", icol(), rng.Intn(20), rng.Intn(20))
		params = append(params, Int(int64(rng.Intn(20))))
	case 5:
		where = fmt.Sprintf(" WHERE tag >= 't%02d' AND tag < 't%02d'", rng.Intn(15), 10+rng.Intn(20))
	case 6:
		where = fmt.Sprintf(" WHERE grade >= %d AND tag > ?", rng.Intn(20))
		params = append(params, Text(fmt.Sprintf("t%02d", rng.Intn(30))))
	case 7:
		// No WHERE: pure ORDER BY enumeration.
	}
	var order string
	if rng.Intn(4) != 0 {
		order = " ORDER BY " + cols[rng.Intn(len(cols))]
		if rng.Intn(2) == 0 {
			order += " DESC"
		}
	}
	var limit string
	if rng.Intn(4) == 0 {
		limit = fmt.Sprintf(" LIMIT %d OFFSET %d", rng.Intn(10), rng.Intn(5))
	}
	return "SELECT id, grade, tag, note FROM items" + where + order + limit, params
}

// TestOrderedScanMatchesOracle: index-served range / BETWEEN / IN /
// ORDER BY queries return exactly what a full scan plus stable sort
// returns — same rows, same values, same order.
func TestOrderedScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, oracle := twinDBs(t, rng, 400)
	sawIndexScan := false
	for i := 0; i < 500; i++ {
		q, params := randomRangeQuery(rng)
		got, err := idx.Exec(q, params...)
		if err != nil {
			t.Fatalf("indexed: %q: %v", q, err)
		}
		want, err := oracle.Exec(q, params...)
		if err != nil {
			t.Fatalf("oracle: %q: %v", q, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Fatalf("divergence on %q %v:\nindexed:\n%s\noracle:\n%s",
				q, params, renderResult(got), renderResult(want))
		}
		if desc, err := idx.Explain(q); err == nil && strings.Contains(desc, "index-") {
			sawIndexScan = true
		}
	}
	if !sawIndexScan {
		t.Fatal("no generated query planned an index scan; generator is broken")
	}
	st := idx.ExecStats()
	if st.IndexScans == 0 {
		t.Fatalf("no index scans recorded: %+v", st)
	}
}

// TestOrderedScanMatchesOracleAfterChurn: the same agreement must hold
// after heavy update/delete/re-insert churn, which exercises skip-list
// removal, posting-list maintenance, and tombstone pages.
func TestOrderedScanMatchesOracleAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	idx, oracle := twinDBs(t, rng, 300)
	for i := 0; i < 400; i++ {
		var stmt string
		var params []Value
		switch rng.Intn(3) {
		case 0:
			stmt = "UPDATE items SET grade = ?, tag = ? WHERE id = ?"
			params = []Value{Int(int64(rng.Intn(20))), Text(fmt.Sprintf("t%02d", rng.Intn(30))), Int(int64(rng.Intn(300)))}
		case 1:
			stmt = "DELETE FROM items WHERE id = ?"
			params = []Value{Int(int64(rng.Intn(300)))}
		case 2:
			stmt = "INSERT INTO items (id, grade, tag, note) VALUES (?, ?, ?, 'x')"
			params = []Value{Int(int64(300 + i)), Int(int64(rng.Intn(20))), Text(fmt.Sprintf("t%02d", rng.Intn(30)))}
		}
		for _, db := range []*DB{idx, oracle} {
			if _, err := db.Exec(stmt, params...); err != nil {
				t.Fatalf("%q: %v", stmt, err)
			}
		}
	}
	for i := 0; i < 300; i++ {
		q, params := randomRangeQuery(rng)
		got, err := idx.Exec(q, params...)
		if err != nil {
			t.Fatalf("indexed: %q: %v", q, err)
		}
		want, err := oracle.Exec(q, params...)
		if err != nil {
			t.Fatalf("oracle: %q: %v", q, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Fatalf("divergence after churn on %q %v:\nindexed:\n%s\noracle:\n%s",
				q, params, renderResult(got), renderResult(want))
		}
	}
}

// TestExplainOrderByIndexedNoSort is the EXPLAIN-style acceptance
// assertion: ORDER BY on an indexed column executes with no sort step,
// with and without a compatible range predicate, while incompatible
// shapes keep the sort.
func TestExplainOrderByIndexedNoSort(t *testing.T) {
	db := Open()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	mustExec("CREATE TABLE posts (id INTEGER, owner TEXT, body TEXT)")
	mustExec("CREATE INDEX ix_id ON posts (id)")
	mustExec("CREATE INDEX ix_owner ON posts (owner)")

	cases := []struct {
		q    string
		want string
	}{
		{"SELECT id FROM posts ORDER BY id", "select(posts) scan=full order=index(id)"},
		{"SELECT id FROM posts ORDER BY id DESC", "select(posts) scan=full order=index-desc(id)"},
		{"SELECT id FROM posts WHERE id >= 10 AND id < 20 ORDER BY id", "select(posts) scan=index-range(id lo..hi) order=index(id)"},
		{"SELECT id FROM posts WHERE id BETWEEN 10 AND 20 ORDER BY id", "select(posts) scan=index-range(id lo..hi) order=index(id)"},
		{"SELECT id FROM posts WHERE owner = 'a' ORDER BY owner", "select(posts) scan=index-eq(owner) order=index(owner)"},
		{"SELECT id FROM posts WHERE id IN (1, 2, 3) ORDER BY id", "select(posts) scan=index-in(id) order=index(id)"},
		// Sort survives where the index cannot serve the order.
		{"SELECT id FROM posts WHERE owner = 'a' ORDER BY id", "select(posts) scan=index-eq(owner) order=sort"},
		{"SELECT id FROM posts ORDER BY body", "select(posts) scan=full order=sort"},
		{"SELECT id FROM posts ORDER BY id, owner", "select(posts) scan=full order=sort"},
	}
	for _, c := range cases {
		got, err := db.Explain(c.q)
		if err != nil {
			t.Fatalf("%q: %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Explain(%q) = %q, want %q", c.q, got, c.want)
		}
	}
}

// TestRangePlanResults spot-checks the exact semantics of the ordered
// paths on a tiny fixed table, including NULL placement and ties.
func TestRangePlanResults(t *testing.T) {
	db := Open()
	mustExec := func(q string, params ...Value) *Result {
		t.Helper()
		r, err := db.Exec(q, params...)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mustExec("CREATE TABLE s (k INTEGER, v TEXT)")
	mustExec("CREATE INDEX ix_k ON s (k)")
	for i, k := range []any{3, 1, nil, 2, 1, nil, 5} {
		kv := Null()
		if k != nil {
			kv = Int(int64(k.(int)))
		}
		mustExec("INSERT INTO s (k, v) VALUES (?, ?)", kv, Text(fmt.Sprintf("r%d", i)))
	}
	check := func(q string, want string, params ...Value) {
		t.Helper()
		r := mustExec(q, params...)
		var got []string
		for _, row := range r.Rows {
			got = append(got, row[0].AsText())
		}
		if s := strings.Join(got, " "); s != want {
			t.Errorf("%q: got %q, want %q", q, s, want)
		}
	}
	// Ascending: NULLs first, ties in insertion order.
	check("SELECT v FROM s ORDER BY k", "r2 r5 r1 r4 r3 r0 r6")
	// Descending: NULLs last, ties still in insertion order.
	check("SELECT v FROM s ORDER BY k DESC", "r6 r0 r3 r1 r4 r2 r5")
	// Ranges never include NULL keys.
	check("SELECT v FROM s WHERE k >= 1 ORDER BY k", "r1 r4 r3 r0 r6")
	check("SELECT v FROM s WHERE k > 1 AND k <= 3 ORDER BY k DESC", "r0 r3")
	check("SELECT v FROM s WHERE k BETWEEN 2 AND 3", "r0 r3")
	check("SELECT v FROM s WHERE k IN (5, 1) ORDER BY k DESC", "r6 r1 r4")
	// Unresolvable parameter bound falls back to a scan but stays correct.
	check("SELECT v FROM s WHERE k >= ? ORDER BY k", "r3 r0 r6", Int(2))
	// NULL bound matches nothing.
	check("SELECT v FROM s WHERE k < ?", "", Null())
}
