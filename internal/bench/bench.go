// Package bench regenerates every experimental table of the paper's
// evaluation (§8, Tables 3–8). Both the testing.B benchmarks at the
// repository root and cmd/warp-bench drive these functions; the latter
// prints rows in the paper's layout.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator, not Apache/PostgreSQL/Firefox on 2011 hardware —
// but the shapes under test match: which scenarios repair, who conflicts,
// what fraction of actions re-executes, how repair scales with workload
// size, and how WARP compares to the taint-tracking baseline.
package bench

import (
	"fmt"
	"strings"
	"time"

	"warp/internal/attacks"
	"warp/internal/browser"
	"warp/internal/core"
	"warp/internal/taint"
	"warp/internal/workload"
)

// DefaultRepairWorkers is the repair worker count every table's repairs
// run with: 0 means GOMAXPROCS, 1 reproduces the paper's serial engine.
// cmd/warp-bench sets it from -repair-workers; a repair's outcome is
// independent of the value, only wall time changes.
var DefaultRepairWorkers int

// Table3Row is one row of Table 3: scenario, repair method, success, and
// users with conflicts.
type Table3Row struct {
	Scenario      string
	InitialRepair string
	Repaired      bool
	UsersConflict int
}

// Table3 runs the six §8.2 scenarios and reports repair outcomes.
func Table3(users int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, sc := range attacks.Scenarios() {
		res, err := workload.Run(workload.Config{Users: users, Victims: 3, Seed: 1000, Scenario: sc, RepairWorkers: DefaultRepairWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s: workload: %w", sc.Name, err)
		}
		rep, err := sc.Repair(res.Env)
		if err != nil {
			return nil, fmt.Errorf("%s: repair: %w", sc.Name, err)
		}
		repaired, err := verifyRepaired(res)
		if err != nil {
			return nil, fmt.Errorf("%s: verify: %w", sc.Name, err)
		}
		rows = append(rows, Table3Row{
			Scenario:      sc.Name,
			InitialRepair: sc.InitialRepair,
			Repaired:      repaired,
			UsersConflict: rep.UsersWithConflicts(),
		})
	}
	return rows, nil
}

// verifyRepaired checks that no attack residue survived and background
// work is intact.
func verifyRepaired(res *workload.Result) (bool, error) {
	app := res.Env.App
	team, err := app.PageContent(res.Env.TargetPage)
	if err != nil {
		return false, err
	}
	if strings.Contains(team, "PWNED") || strings.Contains(team, "mooo") {
		return false, nil
	}
	if got, _ := app.PageContent("Main"); strings.Contains(got, "SQLI-ATTACK") {
		return false, nil
	}
	if got, _ := app.PageContent("Restricted"); strings.Contains(got, "should not") {
		return false, nil
	}
	for _, u := range res.Env.Others {
		if !strings.Contains(team, "note from "+u.Name) {
			return false, nil
		}
	}
	return true, nil
}

// Table4Row is one row of Table 4: users with conflicts per replay
// configuration for one attack action type.
type Table4Row struct {
	AttackAction string
	NoExtension  int
	NoTextMerge  int
	FullWARP     int
}

// Table4 measures browser re-execution effectiveness (§8.3): one attacker,
// eight victims, three payload types, three replay configurations.
func Table4() ([]Table4Row, error) {
	payloads := []struct {
		name   string
		script string
	}{
		{"read-only", `<script>warpjs: get /index.php?title=Main</script>`},
		{"append-only", `<script>warpjs: appendedit /edit.php?title=TeamPage content \nAPPENDED</script>`},
		{"overwrite", `<script>warpjs: overwriteedit /edit.php?title=TeamPage content OVERWRITTEN</script>`},
	}
	configs := []struct {
		name string
		cfg  browser.ReplayConfig
	}{
		{"noext", browser.ReplayConfig{HasLog: false}},
		{"nomerge", browser.ReplayConfig{HasLog: true, TextMerge: false}},
		{"full", browser.FullReplay},
	}
	rows := make([]Table4Row, len(payloads))
	for pi, p := range payloads {
		rows[pi].AttackAction = p.name
		for _, c := range configs {
			n, err := table4Run(p.script, c.cfg)
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", p.name, c.name, err)
			}
			switch c.name {
			case "noext":
				rows[pi].NoExtension = n
			case "nomerge":
				rows[pi].NoTextMerge = n
			case "full":
				rows[pi].FullWARP = n
			}
		}
	}
	return rows, nil
}

// table4Run builds the 8-victim stored-XSS experiment under one replay
// configuration and returns the users with conflicts after repair.
func table4Run(script string, cfg browser.ReplayConfig) (int, error) {
	sc := &attacks.Scenario{
		Name:          "Stored XSS (table 4)",
		InitialRepair: "Retroactive patching",
		Setup: func(e *attacks.Env) error {
			e.Attacker.B.Open("/block.php?ip=" + urlQ(script))
			return nil
		},
		Trigger: func(e *attacks.Env, victim *attacks.User) error {
			victim.B.Open("/blocklog.php")
			// The victim edits the team page after exposure: they rewrite
			// the first line (of whatever content they saw) and append a
			// note. WARP must preserve this or raise a conflict (§8.3).
			p := victim.B.Open("/edit.php?title=TeamPage")
			field := p.DOM.ByName("content")
			if field == nil {
				return fmt.Errorf("no edit form")
			}
			lines := strings.SplitN(field.InnerText(), "\n", 2)
			edited := "reviewed by " + victim.Name + ": " + lines[0]
			if len(lines) > 1 {
				edited += "\n" + lines[1]
			}
			edited += "\nnote by " + victim.Name
			if err := p.TypeInto("content", edited); err != nil {
				return err
			}
			_, err := p.Submit(0)
			return err
		},
		Repair: nil, // assigned below
	}
	sc.Repair = func(e *attacks.Env) (*core.Report, error) {
		v, _ := e.App.VulnerabilityByKind("Stored XSS")
		return e.W.RetroPatch(v.File, v.Patch)
	}
	res, err := workload.Run(workload.Config{
		Users: 11, Victims: 8, Seed: 2000, Scenario: sc, Replay: &cfg, RepairWorkers: DefaultRepairWorkers,
	})
	if err != nil {
		return 0, err
	}
	rep, err := sc.Repair(res.Env)
	if err != nil {
		return 0, err
	}
	return rep.UsersWithConflicts(), nil
}

func urlQ(s string) string {
	r := strings.NewReplacer(" ", "%20", "'", "%27", "<", "%3C", ">", "%3E", "=", "%3D",
		"&", "%26", ";", "%3B", "/", "%2F", "?", "%3F", "+", "%2B", "\n", "%0A", "\\", "%5C", "#", "%23")
	return r.Replace(s)
}

// Table5Row is one row of Table 5.
type Table5Row struct {
	Bug        taint.Bug
	Comparison *taint.Comparison
}

// Table5 runs the four §8.4 corruption-bug comparisons.
func Table5(scale int) ([]Table5Row, error) {
	var rows []Table5Row
	for _, bug := range taint.Bugs() {
		cmp, err := taint.RunComparison(bug, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bug, err)
		}
		rows = append(rows, Table5Row{Bug: bug, Comparison: cmp})
	}
	return rows, nil
}

// Table7Row is one row of Tables 7 and 8.
type Table7Row struct {
	Scenario string

	VisitsReplayed, VisitsTotal   int
	RunsReexecuted, RunsTotal     int
	QueriesReexecuted, QueryTotal int

	OriginalExec time.Duration
	Repair       core.Timing
}

// Table7 reproduces Table 7: repair performance across the attack
// scenarios at the given user count (the paper uses 100). Rows: the four
// isolated scenarios, reflected XSS with victims at the start, and the
// two whole-history scenarios (CSRF, clickjacking).
func Table7(users int) ([]Table7Row, error) {
	type spec struct {
		label          string
		scenario       string
		victimsAtStart bool
	}
	specs := []spec{
		{"Reflected XSS", "Reflected XSS", false},
		{"Stored XSS", "Stored XSS", false},
		{"SQL injection", "SQL injection", false},
		{"ACL error", "ACL error", false},
		{"Reflected XSS (victims at start)", "Reflected XSS", true},
		{"CSRF", "CSRF", false},
		{"Clickjacking", "Clickjacking", false},
	}
	var rows []Table7Row
	for _, sp := range specs {
		row, err := runPerfScenario(sp.label, sp.scenario, users, sp.victimsAtStart)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Table8 reproduces Table 8: the isolated scenarios at large scale (the
// paper uses 5,000 users).
func Table8(users int) ([]Table7Row, error) {
	var rows []Table7Row
	for _, name := range []string{"Reflected XSS", "Stored XSS", "SQL injection", "ACL error"} {
		row, err := runPerfScenario(name, name, users, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runPerfScenario(label, name string, users int, victimsAtStart bool) (*Table7Row, error) {
	sc, ok := attacks.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q", name)
	}
	res, err := workload.Run(workload.Config{
		Users: users, Victims: 3, Seed: 3000, Scenario: sc, VictimsAtStart: victimsAtStart,
		RepairWorkers: DefaultRepairWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: workload: %w", label, err)
	}
	rep, err := sc.Repair(res.Env)
	if err != nil {
		return nil, fmt.Errorf("%s: repair: %w", label, err)
	}
	return &Table7Row{
		Scenario:          label,
		VisitsReplayed:    rep.PageVisitsReplayed,
		VisitsTotal:       rep.TotalPageVisits,
		RunsReexecuted:    rep.AppRunsReexecuted,
		RunsTotal:         rep.TotalAppRuns,
		QueriesReexecuted: rep.QueriesReexecuted,
		QueryTotal:        rep.TotalQueries,
		OriginalExec:      res.OriginalExecTime,
		Repair:            rep.Timing,
	}, nil
}
