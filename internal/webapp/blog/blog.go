// Package blog implements GoBlog, the Drupal stand-in used for the
// comparison with Akkuş & Goel's data-recovery system (paper §8.4,
// Table 5). It is a small multi-user blog: posts, comments, and votes,
// with two data-corruption bugs modeled on the Drupal bugs evaluated
// there:
//
//   - lost voting info: saving an edit to a post erroneously deletes the
//     post's vote records (editpost.php);
//   - lost comments: moving a post to another category erroneously
//     deletes the post's comments (movepost.php).
//
// Both bugs come with fixed versions for retroactive patching. For
// brevity the blog identifies users by a ?u= parameter instead of
// sessions; the corruption and recovery behavior under study is in the
// database, not the authentication path.
package blog

import (
	"fmt"
	"strings"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/dom"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// App is an installed GoBlog.
type App struct {
	W *core.Warp
}

// Install creates the schema and registers the source files.
func Install(w *core.Warp) (*App, error) {
	a := &App{W: w}
	specs := map[string]ttdb.TableSpec{
		"posts":    {RowIDColumn: "node_id", PartitionColumns: []string{"node_id", "category"}},
		"votes":    {PartitionColumns: []string{"node_id", "voter"}},
		"comments": {PartitionColumns: []string{"node_id", "author"}},
		"digests":  {RowIDColumn: "node_id", PartitionColumns: []string{"node_id"}},
	}
	for t, s := range specs {
		if err := w.DB.Annotate(t, s); err != nil {
			return nil, err
		}
	}
	ddl := []string{
		`CREATE TABLE posts (node_id INTEGER PRIMARY KEY, title TEXT NOT NULL, body TEXT, category TEXT DEFAULT 'general')`,
		`CREATE TABLE votes (node_id INTEGER NOT NULL, voter TEXT NOT NULL, val INTEGER NOT NULL, UNIQUE (node_id, voter))`,
		`CREATE TABLE comments (node_id INTEGER NOT NULL, author TEXT NOT NULL, body TEXT NOT NULL)`,
		`CREATE TABLE digests (node_id INTEGER PRIMARY KEY, nvotes INTEGER NOT NULL, ncomments INTEGER NOT NULL)`,
	}
	for _, q := range ddl {
		if _, _, err := w.DB.Exec(q); err != nil {
			return nil, err
		}
	}
	files := map[string]app.Version{
		"post.php":     {Entry: a.postPHP, Note: "post viewer with comment and vote forms"},
		"comment.php":  {Entry: a.commentPHP, Note: "add a comment"},
		"vote.php":     {Entry: a.votePHP, Note: "vote on a post"},
		"digest.php":   {Entry: a.digestPHP, Note: "recompute a post's stats digest"},
		"editpost.php": {Entry: a.editpostBuggy, Note: "edit a post (BUG: wipes the post's votes)"},
		"movepost.php": {Entry: a.movepostBuggy, Note: "recategorize a post (BUG: wipes the post's comments)"},
	}
	for n, v := range files {
		if err := w.Runtime.Register(n, v); err != nil {
			return nil, err
		}
	}
	for _, p := range []string{"/post.php", "/comment.php", "/vote.php", "/digest.php", "/editpost.php", "/movepost.php"} {
		w.Runtime.Mount(p, strings.TrimPrefix(p, "/"))
	}
	return a, nil
}

// CreatePost seeds a post.
func (a *App) CreatePost(id int64, title, body string) error {
	_, _, err := a.W.DB.Exec("INSERT INTO posts (node_id, title, body) VALUES (?, ?, ?)",
		sqldb.Int(id), sqldb.Text(title), sqldb.Text(body))
	return err
}

// VoteCount returns the number of votes on a post.
func (a *App) VoteCount(id int64) int {
	res, _, err := a.W.DB.Exec("SELECT COUNT(*) FROM votes WHERE node_id = ?", sqldb.Int(id))
	if err != nil {
		return -1
	}
	return int(res.FirstValue().AsInt())
}

// CommentCount returns the number of comments on a post.
func (a *App) CommentCount(id int64) int {
	res, _, err := a.W.DB.Exec("SELECT COUNT(*) FROM comments WHERE node_id = ?", sqldb.Int(id))
	if err != nil {
		return -1
	}
	return int(res.FirstValue().AsInt())
}

// PostBody returns a post's body.
func (a *App) PostBody(id int64) string {
	res, _, err := a.W.DB.Exec("SELECT body FROM posts WHERE node_id = ?", sqldb.Int(id))
	if err != nil {
		return ""
	}
	return res.FirstValue().AsText()
}

func (a *App) postPHP(c *app.Ctx) *httpd.Response {
	id := c.Req.Param("id")
	res, err := c.Query("SELECT title, body, category FROM posts WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil || res.Empty() {
		return httpd.NotFound("no such post")
	}
	votes, err := c.Query("SELECT COUNT(*), COALESCE(SUM(val), 0) FROM votes WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	comments, err := c.Query("SELECT author, body FROM comments WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<html><body><h1>%s</h1><div id="body">%s</div>`,
		dom.Escape(res.Rows[0][0].AsText()), dom.Escape(res.Rows[0][1].AsText()))
	fmt.Fprintf(&b, `<div id="score">%d votes, total %d</div><ul id="comments">`,
		votes.Rows[0][0].AsInt(), votes.Rows[0][1].AsInt())
	for _, row := range comments.Rows {
		fmt.Fprintf(&b, "<li>%s: %s</li>", dom.Escape(row[0].AsText()), dom.Escape(row[1].AsText()))
	}
	b.WriteString(`</ul>`)
	fmt.Fprintf(&b, `<form action="/comment.php" method="post"><input type="hidden" name="id" value="%s"/><input type="hidden" name="u" value=""/><input type="text" name="text" value=""/><input type="submit" name="go" value="Comment"/></form>`, dom.EscapeAttr(id))
	fmt.Fprintf(&b, `<form action="/vote.php" method="post"><input type="hidden" name="id" value="%s"/><input type="hidden" name="u" value=""/><input type="text" name="val" value="1"/><input type="submit" name="go" value="Vote"/></form>`, dom.EscapeAttr(id))
	b.WriteString("</body></html>")
	return httpd.HTML(b.String())
}

// postExists is the existence check every mutation performs (this read is
// also the dependency through which the taint baseline's flow policy
// over-approximates, §8.4).
func postExists(c *app.Ctx, id string) (bool, error) {
	res, err := c.Query("SELECT node_id FROM posts WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return false, err
	}
	return !res.Empty(), nil
}

func (a *App) commentPHP(c *app.Ctx) *httpd.Response {
	id, u, text := c.Req.Param("id"), c.Req.Param("u"), c.Req.Param("text")
	if id == "" || u == "" || text == "" {
		return httpd.NotFound("missing fields")
	}
	if ok, err := postExists(c, id); err != nil {
		return httpd.ServerError(err.Error())
	} else if !ok {
		return httpd.NotFound("no such post")
	}
	if _, err := c.Query("INSERT INTO comments (node_id, author, body) VALUES (?, ?, ?)",
		sqldb.Int(atoi(id)), sqldb.Text(u), sqldb.Text(text)); err != nil {
		return httpd.ServerError(err.Error())
	}
	return httpd.Redirect("/post.php?id=" + id)
}

func (a *App) votePHP(c *app.Ctx) *httpd.Response {
	id, u, val := c.Req.Param("id"), c.Req.Param("u"), c.Req.Param("val")
	if id == "" || u == "" {
		return httpd.NotFound("missing fields")
	}
	if ok, err := postExists(c, id); err != nil {
		return httpd.ServerError(err.Error())
	} else if !ok {
		return httpd.NotFound("no such post")
	}
	if _, err := c.Query("INSERT INTO votes (node_id, voter, val) VALUES (?, ?, ?)",
		sqldb.Int(atoi(id)), sqldb.Text(u), sqldb.Int(atoi(val))); err != nil {
		if sqldb.IsUniqueViolation(err) {
			return httpd.HTML("<html><body>already voted</body></html>")
		}
		return httpd.ServerError(err.Error())
	}
	return httpd.Redirect("/post.php?id=" + id)
}

// digestPHP recomputes a post's stats digest from the vote and comment
// counts: derived data, which becomes silently corrupted when it is
// computed from corrupted counts (the false-negative trap of §8.4).
func (a *App) digestPHP(c *app.Ctx) *httpd.Response {
	id := c.Req.Param("id")
	if id == "" {
		return httpd.NotFound("missing id")
	}
	nv, err := c.Query("SELECT COUNT(*) FROM votes WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	nc, err := c.Query("SELECT COUNT(*) FROM comments WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	cur, err := c.Query("SELECT node_id FROM digests WHERE node_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	if cur.Empty() {
		_, err = c.Query("INSERT INTO digests (node_id, nvotes, ncomments) VALUES (?, ?, ?)",
			sqldb.Int(atoi(id)), nv.FirstValue(), nc.FirstValue())
	} else {
		_, err = c.Query("UPDATE digests SET nvotes = ?, ncomments = ? WHERE node_id = ?",
			nv.FirstValue(), nc.FirstValue(), sqldb.Int(atoi(id)))
	}
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	return httpd.HTML("<html><body>digest updated</body></html>")
}

// editpostBuggy saves a new body for a post. The bug (Table 5, "Drupal —
// lost voting info"): the save path erroneously deletes the post's votes.
func (a *App) editpostBuggy(c *app.Ctx) *httpd.Response {
	id, body := c.Req.Param("id"), c.Req.Param("body")
	if id == "" {
		return httpd.NotFound("missing id")
	}
	if _, err := c.Query("UPDATE posts SET body = ? WHERE node_id = ?",
		sqldb.Text(body), sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	// BUG: votes are wiped on every edit.
	if _, err := c.Query("DELETE FROM votes WHERE node_id = ?", sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	return httpd.Redirect("/post.php?id=" + id)
}

// EditpostFixed is the patched editpost.php: the vote wipe is gone.
func (a *App) EditpostFixed() app.Version {
	return app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		id, body := c.Req.Param("id"), c.Req.Param("body")
		if id == "" {
			return httpd.NotFound("missing id")
		}
		if _, err := c.Query("UPDATE posts SET body = ? WHERE node_id = ?",
			sqldb.Text(body), sqldb.Int(atoi(id))); err != nil {
			return httpd.ServerError(err.Error())
		}
		return httpd.Redirect("/post.php?id=" + id)
	}, Note: "fix: stop deleting votes on edit"}
}

// movepostBuggy recategorizes a post. The bug (Table 5, "Drupal — lost
// comments"): the move path erroneously deletes the post's comments.
func (a *App) movepostBuggy(c *app.Ctx) *httpd.Response {
	id, cat := c.Req.Param("id"), c.Req.Param("category")
	if id == "" || cat == "" {
		return httpd.NotFound("missing fields")
	}
	if _, err := c.Query("UPDATE posts SET category = ? WHERE node_id = ?",
		sqldb.Text(cat), sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	// BUG: comments are wiped on every move.
	if _, err := c.Query("DELETE FROM comments WHERE node_id = ?", sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	return httpd.Redirect("/post.php?id=" + id)
}

// MovepostFixed is the patched movepost.php.
func (a *App) MovepostFixed() app.Version {
	return app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		id, cat := c.Req.Param("id"), c.Req.Param("category")
		if id == "" || cat == "" {
			return httpd.NotFound("missing fields")
		}
		if _, err := c.Query("UPDATE posts SET category = ? WHERE node_id = ?",
			sqldb.Text(cat), sqldb.Int(atoi(id))); err != nil {
			return httpd.ServerError(err.Error())
		}
		return httpd.Redirect("/post.php?id=" + id)
	}, Note: "fix: stop deleting comments on move"}
}

func atoi(s string) int64 {
	var n int64
	fmt.Sscanf(s, "%d", &n)
	return n
}
