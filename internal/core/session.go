package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/httpd"
	"warp/internal/obs"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// session is the state of one repair (the paper's repair controller).
// A session is shared by the scheduler's repair workers: the maps below
// are guarded by mu, the timing counters are atomic, and the work queue
// itself lives in the scheduler.
type session struct {
	w   *Warp
	gen int64
	rep *Report
	cfg browser.ReplayConfig

	sched *scheduler

	// mu guards the session maps, counters, and the report's work
	// accounting. It is never held across a scheduler push or a Warp/graph
	// lock acquisition.
	mu  sync.Mutex
	seq int64

	// dirt maps partitions to the earliest time their contents changed
	// during this repair.
	dirt map[ttdb.Partition]int64

	origRuns    map[history.NodeID]history.ActionID // first-seen (original) run per exchange
	served      map[history.NodeID]*servedEntry
	activeVisit map[string]bool

	jarOverride map[string]map[string]string // diverged replay cookie jars

	// navOverrides remembers, per child visit, the parent's latest
	// re-derived main request (e.g. a merged form), so a later standalone
	// re-replay of the child does not fall back to the stale recorded one.
	navOverrides map[string]*workItem

	conflicts []browser.Conflict

	// Distinct work accounting for the Tables 7/8 "re-executed actions"
	// columns: repeats of the same item (fixpoint passes) count once.
	doneVisits  map[string]bool
	doneRuns    map[history.ActionID]bool
	doneQueries map[history.ActionID]bool

	traceMu sync.Mutex
	trace   func(format string, args ...any)

	// obsTrace is the session's phase trace (frontier / replay /
	// rollback / commit spans); nil when obs is disabled — every Trace
	// method is nil-safe.
	obsTrace *obs.Trace

	// timing, in nanoseconds; atomic because workers account concurrently.
	tInit    atomic.Int64
	tGraph   atomic.Int64
	tBrowser atomic.Int64
	tDB      atomic.Int64
	tApp     atomic.Int64

	// liveSince is the logical time the session started: records with a
	// later time were logged by live traffic while this repair ran, the
	// only writes the online merge path (replay.go) may touch.
	liveSince int64

	// mergedLive memoizes, per merged live write (table/row/time), the
	// three-way-merged text. The merge is computed once, against the live
	// write's original pre-image; every later re-execution of the same
	// write — query-level or via its run's replay, which re-derives the
	// raw request parameters — applies the memoized text, so the fixpoint
	// converges on the merged value instead of oscillating.
	mergedLive map[string]string

	// passChanges counts state changes observed during the current
	// fixpoint pass: dirt-map entries created or lowered, and query
	// outcomes that changed on re-execution. A pass that drains with
	// zero changes re-executed deterministic, already-converged work, so
	// the fixpoint loop stops instead of burning its full pass budget.
	passChanges atomic.Int64
}

// servedEntry caches the outcome of re-serving one HTTP exchange during
// repair, so a visit replay does not re-execute a run the controller
// already re-executed (§5.3 pruning).
type servedEntry struct {
	reqFP uint64
	resp  *httpd.Response
}

func (w *Warp) newSession(gen int64) *session {
	rep := &Report{Generation: gen}
	rep.TotalAppRuns = len(w.Graph.ByKind(history.KindAppRun))
	rep.TotalQueries = len(w.Graph.ByKind(history.KindQuery))
	w.mu.Lock()
	rep.TotalPageVisits = len(w.visitOrder)
	w.mu.Unlock()
	w.Graph.ResetLoadStats()
	workers := w.cfg.RepairWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	rs := &session{
		w:            w,
		gen:          gen,
		rep:          rep,
		cfg:          *w.cfg.Replay,
		dirt:         make(map[ttdb.Partition]int64),
		origRuns:     make(map[history.NodeID]history.ActionID),
		served:       make(map[history.NodeID]*servedEntry),
		activeVisit:  make(map[string]bool),
		jarOverride:  make(map[string]map[string]string),
		navOverrides: make(map[string]*workItem),
		doneVisits:   make(map[string]bool),
		doneRuns:     make(map[history.ActionID]bool),
		doneQueries:  make(map[history.ActionID]bool),
		mergedLive:   make(map[string]string),
		trace:        w.cfg.Trace,
	}
	rs.sched = newScheduler(rs, workers,
		50*(rep.TotalAppRuns+rep.TotalQueries+rep.TotalPageVisits)+10000)
	return rs
}

// nextSeq issues the next session-unique sequence number, used for heap
// tie-breaking and synthetic IDs.
func (rs *session) nextSeq() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.seq++
	return rs.seq
}

// markRun counts a distinct run re-execution.
func (rs *session) markRun(id history.ActionID) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.doneRuns[id] {
		rs.doneRuns[id] = true
		rs.rep.AppRunsReexecuted++
	}
}

// markQuery counts a distinct query re-execution.
func (rs *session) markQuery(id history.ActionID) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.doneQueries[id] {
		rs.doneQueries[id] = true
		rs.rep.QueriesReexecuted++
	}
}

// addConflict queues one repair conflict.
func (rs *session) addConflict(c browser.Conflict) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.conflicts = append(rs.conflicts, c)
}

// tracef logs one controller step when tracing is enabled.
func (rs *session) tracef(format string, args ...any) {
	if rs.trace == nil {
		return
	}
	rs.traceMu.Lock()
	defer rs.traceMu.Unlock()
	rs.trace(format, args...)
}

//
// Dirt tracking and propagation (§4.1: partition-based dependencies)
//

// addDirt records that partitions changed from a given time on and
// enqueues every logged query reading or writing them afterwards.
func (rs *session) addDirt(parts []ttdb.Partition, from int64) {
	rs.mu.Lock()
	for _, p := range parts {
		if old, ok := rs.dirt[p]; !ok || from < old {
			rs.dirt[p] = from
			rs.passChanges.Add(1)
		}
	}
	rs.mu.Unlock()
	for _, p := range parts {
		rs.propagate(p, from)
	}
}

// partitionNodes expands a partition into the graph nodes its
// dependencies live on: a keyed partition maps to its own node plus the
// table's conservative whole-table node; a whole-table partition fans out
// to every interned node of the table. Shared by dirt propagation and
// partition undo.
func (rs *session) partitionNodes(p ttdb.Partition) []history.NodeID {
	seen := make(map[history.NodeID]bool)
	var nodes []history.NodeID
	add := func(n history.NodeID) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	rs.w.mu.Lock()
	if p.IsWholeTable() {
		// Whole-table dirt touches every partition of the table.
		for n := range rs.w.partsByTable[p.Table] {
			add(n)
		}
	} else {
		add(history.PartitionNode(p.String()))
		add(history.PartitionNode(ttdb.WholeTable(p.Table).String()))
	}
	rs.w.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// propagate finds actions depending on a partition strictly after the
// causing time. Forward-only propagation is what makes the repair loop
// terminate: re-executing an action at time t can only ever enqueue work
// later than t.
func (rs *session) propagate(p ttdb.Partition, from int64) {
	t0 := time.Now()
	nodes := rs.partitionNodes(p)
	var acts []*history.Action
	for _, n := range nodes {
		acts = append(acts, rs.w.Graph.Readers(n, from+1)...)
		acts = append(acts, rs.w.Graph.Writers(n, from+1)...)
	}
	rs.tGraph.Add(int64(time.Since(t0)))
	for _, a := range acts {
		if a.Kind == history.KindQuery {
			rs.enqueueQuery(a)
		}
	}
}

// dirtyAt reports whether any of the partitions was dirtied at or before t
// (meaning a query reading them at time t could see changed data).
func (rs *session) dirtyAt(parts []ttdb.Partition, t int64) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, p := range parts {
		if p.IsWholeTable() {
			for dp, dt := range rs.dirt {
				if dp.Table == p.Table && dt <= t {
					return true
				}
			}
			continue
		}
		if dt, ok := rs.dirt[p]; ok && dt <= t {
			return true
		}
		if dt, ok := rs.dirt[ttdb.WholeTable(p.Table)]; ok && dt <= t {
			return true
		}
	}
	return false
}

// claimed reports whether any of the partitions is dirty in the repair
// generation at all — once dirtied, a partition stays claimed by the
// repair until the final commit. The admission gate paces live writes
// into claimed partitions.
func (rs *session) claimed(parts []ttdb.Partition) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, p := range parts {
		if p.IsWholeTable() {
			for dp := range rs.dirt {
				if dp.Table == p.Table {
					return true
				}
			}
			continue
		}
		if _, ok := rs.dirt[p]; ok {
			return true
		}
		if _, ok := rs.dirt[ttdb.WholeTable(p.Table)]; ok {
			return true
		}
	}
	return false
}

// dirtSnapshot copies the current dirt map, for the drain passes.
func (rs *session) dirtSnapshot() map[ttdb.Partition]int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[ttdb.Partition]int64, len(rs.dirt))
	for p, t := range rs.dirt {
		out[p] = t
	}
	return out
}

//
// Repair entry points
//

// RetroPatch retroactively applies a security patch (§3.2): it installs
// the new version of the source file and re-executes every application run
// that loaded that file, recursively repairing everything affected.
func (w *Warp) RetroPatch(file string, v app.Version) (*Report, error) {
	return w.RetroPatchSince(file, v, 0)
}

// RetroPatchSince is RetroPatch from a given past time (the paper's
// "time at which this patch should be applied", default the epoch).
func (w *Warp) RetroPatchSince(file string, v app.Version, since int64) (*Report, error) {
	intent := &RepairIntent{Kind: IntentRetroPatch, File: file, Note: v.Note, Since: since}
	return w.repair(intent, func(rs *session) error {
		t0 := time.Now()
		if err := w.Runtime.Patch(file, v); err != nil {
			return err
		}
		w.Graph.Append(&history.Action{
			Kind:    history.KindPatch,
			Time:    w.Clock.Tick(),
			Outputs: []history.Dep{{Node: history.FileNode(file), Time: since}},
			Payload: v.Note,
		})
		tg := time.Now()
		runs := w.Graph.Readers(history.FileNode(file), since)
		rs.tGraph.Add(int64(time.Since(tg)))
		for _, a := range runs {
			if a.Kind == history.KindAppRun {
				rs.enqueueRun(a)
			}
		}
		rs.tInit.Add(int64(time.Since(t0)))
		return nil
	}, "")
}

// UndoVisit cancels a past page visit: every HTTP request the visit made
// is undone, with effects recursively repaired (§5.5). Non-administrators
// may not cause conflicts for other users; such repairs abort.
func (w *Warp) UndoVisit(clientID string, visitID int64, admin bool) (*Report, error) {
	return w.undoVisit(clientID, visitID, admin, false)
}

// undoVisit is UndoVisit with the conflict-dequeue marker carried into
// the durable repair intent (ResolveConflictByCancel sets it).
func (w *Warp) undoVisit(clientID string, visitID int64, admin, dequeue bool) (*Report, error) {
	initiator := clientID
	if admin {
		initiator = "" // administrators may cancel anything
	}
	intent := &RepairIntent{Kind: IntentUndoVisit, Client: clientID, Visit: visitID, Admin: admin, Dequeue: dequeue}
	return w.repair(intent, func(rs *session) error {
		t0 := time.Now()
		w.mu.Lock()
		vlog := w.visitByID[clientID][visitID]
		w.mu.Unlock()
		if vlog == nil {
			return fmt.Errorf("warp: no visit log for %s/%d", clientID, visitID)
		}
		for _, tr := range vlog.Requests {
			rs.cancelExchange(clientID, visitID, tr.RequestID)
		}
		rs.tInit.Add(int64(time.Since(t0)))
		return nil
	}, initiator)
}

// UndoPartition cancels every application run that wrote into one
// time-travel partition at or after time t: the partition-granularity
// intrusion-recovery primitive (§4.1 applied at partition scope — contain
// and repair an intrusion by the partition it landed in). The writing
// runs are found through the history graph's partition edges, their
// effects rolled back through the database's per-partition version index,
// and dirt propagation re-executes everything downstream that read the
// partition afterwards.
func (w *Warp) UndoPartition(p ttdb.Partition, t int64) (*Report, error) {
	intent := &RepairIntent{Kind: IntentUndoPartition, Partition: p.String(), From: t}
	return w.repair(intent, func(rs *session) error {
		t0 := time.Now()
		// Find the write actions into p at or after t via the graph's
		// partition edges (same fan-out as dirt propagation).
		tg := time.Now()
		nodes := rs.partitionNodes(p)
		runs := make(map[history.ActionID]bool)
		var runOrder []history.ActionID
		for _, n := range nodes {
			for _, a := range w.Graph.Writers(n, t) {
				qp, ok := a.Payload.(*QueryPayload)
				if !ok || qp.Superseded.Load() {
					continue
				}
				if !runs[qp.RunAction] {
					runs[qp.RunAction] = true
					runOrder = append(runOrder, qp.RunAction)
				}
			}
		}
		rs.tGraph.Add(int64(time.Since(tg)))
		// Cancel each writing run outright, exactly as UndoVisit cancels
		// the runs behind a visit's exchanges.
		for _, id := range runOrder {
			act := w.Graph.Get(id)
			if act == nil {
				continue
			}
			if payload, ok := act.Payload.(*RunPayload); ok {
				rs.cancelRun(payload, payload.Rec.Req.ClientID, payload.Rec.Req.VisitID)
			}
		}
		// Belt and braces: roll the partition itself back via the version
		// index, so even writes whose records lost their row IDs are undone.
		sp := rs.obsTrace.Begin("rollback")
		dirt, err := w.DB.RollbackPartition(p, t)
		sp.End()
		if err != nil {
			return err
		}
		rs.addDirt(append(dirt, p), t)
		rs.tInit.Add(int64(time.Since(t0)))
		return nil
	}, "")
}

// repair runs a full repair session: fork a generation, seed the queue,
// process to fixpoint, drain under suspension, and commit (or abort when a
// non-admin undo caused conflicts for other users).
//
// Durability protocol (persist.go): the intent is logged (after
// re-persisting grown visit logs, which the repair will read) before any
// repair work, aborts log an end marker, and a commit is made durable by
// a checkpoint written under the final suspension. Repair-generation
// mutations are never WAL-logged, so a crash anywhere in between
// recovers the pre-repair state plus the pending intent.
func (w *Warp) repair(intent *RepairIntent, seed func(*session) error, restrictConflictsTo string) (*Report, error) {
	w.repairMu.Lock()
	defer w.repairMu.Unlock()

	// A degraded deployment refuses repair outright: repair rewrites
	// history and must end with a durable commit checkpoint, which the
	// failed storage cannot provide.
	if err := w.degradedErr(); err != nil {
		return nil, err
	}

	// A recovered deployment whose application re-registered older code
	// than the checkpoint recorded must not repair: re-executing recorded
	// runs through mismatched handlers silently corrupts the repaired
	// timeline. A retroactive patch of the stale file itself is the fix
	// and is allowed through.
	if stale := w.StaleFiles(); len(stale) > 0 {
		var bad []string
		for _, f := range stale {
			if intent.Kind == IntentRetroPatch && f == intent.File {
				continue
			}
			bad = append(bad, f)
		}
		if len(bad) > 0 {
			return nil, fmt.Errorf("warp: stale code registration for %s (recovered deployment runs older versions than recorded); re-apply the newer versions before repairing", strings.Join(bad, ", "))
		}
	}

	tStart := time.Now()
	repairsTotal.Inc()
	repairActive.Set(1)
	defer repairActive.Set(0)
	actionsReplayed.Set(0)
	actionsRemaining.Set(0)
	var tr *obs.Trace
	if obs.Enabled() {
		tr = obs.NewTrace("repair:" + intent.Kind.String())
		w.lastRepairTrace.Store(tr)
		defer tr.Finish()
	}
	gen, err := w.DB.BeginRepair()
	if err != nil {
		return nil, err
	}
	if w.pers != nil {
		w.pers.syncVisitLogs()
		if err := w.pers.logIntent(intent); err != nil {
			_ = w.DB.AbortRepair()
			return nil, fmt.Errorf("warp: persisting repair intent: %w", err)
		}
	}
	abort := func() {
		_ = w.DB.AbortRepair()
		if w.pers != nil {
			w.pers.logRepairEnd()
		}
	}
	rs := w.newSession(gen)
	rs.obsTrace = tr
	rs.liveSince = w.Clock.Now()

	// Suspension policy (docs/repair.md "Online repair"): by default the
	// deployment keeps serving while repair runs — live writes pass
	// through the admission gate, which queues them briefly when their
	// partition footprint collides with an in-flight repair item — and
	// the exclusive suspension shrinks to the final commit window below.
	// Config.ExclusiveRepair restores the paper's stop-the-world span.
	exclusive := w.cfg.ExclusiveRepair
	suspended := false
	suspend := func() {
		if !suspended {
			w.Suspend()
			suspended = true
		}
	}
	defer func() {
		if suspended {
			w.Resume()
		}
	}()
	if exclusive {
		suspend()
	} else {
		w.admission.Store(&admissionGate{w: w, rs: rs, sched: rs.sched})
		defer w.admission.Store(nil)
		if w.cfg.RepairSLO > 0 && obs.Enabled() {
			gov := startThrottle(rs.sched, w.cfg.RepairSLO)
			defer gov.halt()
		}
	}

	sp := tr.Begin("frontier")
	err = seed(rs)
	sp.End()
	if err != nil {
		abort()
		return nil, err
	}
	drainPass := func() error {
		rs.passChanges.Store(0)
		sp = tr.Begin("replay")
		err := rs.sched.drain()
		sp.End()
		return err
	}
	if err := drainPass(); err != nil {
		abort()
		return nil, err
	}

	// Catch-up (online repair): re-propagate dirt and drain while the
	// deployment is still serving, so writes logged by live traffic
	// during the bulk replay are folded into the repair generation
	// before anything suspends. Each converged pass shrinks the racing
	// window; the suspended pass below closes it.
	if !exclusive {
		for pass := 0; pass < 4; pass++ {
			for p, t := range rs.dirtSnapshot() {
				rs.propagate(p, t)
			}
			if rs.sched.pendingLen() == 0 {
				break
			}
			if err := drainPass(); err != nil {
				abort()
				return nil, err
			}
			if rs.passChanges.Load() == 0 {
				break
			}
		}
	}

	// Commit window (§4.3): briefly suspend normal operation,
	// re-propagate all dirt so requests logged during repair on repaired
	// partitions are re-applied, and process to fixpoint. A pass that
	// drains without a single dirt or outcome change re-executed only
	// deterministic, already-converged work, so the loop stops there
	// rather than spending its full pass budget on identical re-drains.
	suspend()
	for pass := 0; pass < 8; pass++ {
		for p, t := range rs.dirtSnapshot() {
			rs.propagate(p, t)
		}
		if rs.sched.pendingLen() == 0 {
			break
		}
		if err := drainPass(); err != nil {
			abort()
			return nil, err
		}
		if rs.passChanges.Load() == 0 {
			break
		}
	}

	// Non-admin undo must not spill conflicts onto other users (§5.5).
	if restrictConflictsTo != "" {
		for _, c := range rs.conflicts {
			if c.Client != restrictConflictsTo {
				if err := w.DB.AbortRepair(); err != nil {
					return nil, err
				}
				if w.pers != nil {
					w.pers.logRepairEnd()
				}
				rs.rep.Aborted = true
				rs.rep.Conflicts = rs.conflicts
				rs.rep.Timing.Total = time.Since(tStart)
				return rs.rep, fmt.Errorf("warp: undo would conflict for user %s; aborted", c.Client)
			}
		}
	}

	commitSpan := tr.Begin("commit")
	defer commitSpan.End()
	if err := w.DB.FinishRepair(); err != nil {
		return nil, err
	}

	// Queue conflicts and cookie invalidations for affected clients.
	w.mu.Lock()
	w.conflicts = append(w.conflicts, rs.conflicts...)
	for client, jar := range rs.jarOverride {
		var names []string
		for name := range jar {
			names = append(names, name)
		}
		sort.Strings(names)
		w.cookieInvalid[client] = names
	}
	w.mu.Unlock()

	// Commit point for durability: the checkpoint both persists the
	// repaired state and retires the intent by truncating the WAL. Still
	// under the §4.3 suspension, so the cut is consistent. A crashed
	// store (fault injection / dying process) is fine to ignore — the
	// intent stays pending and the next Open re-runs the repair on the
	// pre-repair state, converging to this same outcome. Any other
	// failure must surface: the in-memory generation has switched, so
	// letting the deployment keep serving (and WAL-logging post-repair
	// records) against an intent that will replay over pre-repair state
	// would make recovery diverge from what was acknowledged.
	if w.pers != nil {
		// Repair rewrote history payloads and visit logs in place, paths
		// the observer-based dirty tracking cannot see; force those
		// sections into the commit checkpoint.
		w.pers.markRepairDirty()
		if err := w.checkpointQuiesced(); err != nil && !errors.Is(err, store.ErrCrashed) {
			rs.rep.Timing.Total = time.Since(tStart)
			return rs.rep, fmt.Errorf("warp: repair committed in memory but its checkpoint failed (intent remains pending): %w", err)
		}
	}

	rs.rep.Conflicts = rs.conflicts
	rs.rep.GraphNodesLoaded = w.Graph.LoadedNodes()
	rs.rep.RepairWorkers = rs.sched.workers
	rs.rep.Timing.Init = time.Duration(rs.tInit.Load())
	rs.rep.Timing.Graph = time.Duration(rs.tGraph.Load())
	rs.rep.Timing.Browser = time.Duration(rs.tBrowser.Load())
	rs.rep.Timing.DB = time.Duration(rs.tDB.Load())
	rs.rep.Timing.App = time.Duration(rs.tApp.Load())
	rs.rep.Timing.Total = time.Since(tStart)
	rs.rep.Timing.Ctrl = rs.rep.Timing.Total - rs.rep.Timing.Init - rs.rep.Timing.Graph -
		rs.rep.Timing.Browser - rs.rep.Timing.DB - rs.rep.Timing.App
	if rs.rep.Timing.Ctrl < 0 {
		// With parallel workers the per-layer sums can exceed wall time.
		rs.rep.Timing.Ctrl = 0
	}
	return rs.rep, nil
}
