package browser

import (
	"net/url"
	"strings"

	"warp/internal/dom"
)

// ScriptPrefix marks a page-embedded script the browser executes. Scripts
// are the attack vehicle in the paper's scenarios: XSS payloads inject
// script elements whose code issues HTTP requests with the victim's
// cookies. The command language ("warpjs") stands in for JavaScript.
//
// Commands are semicolon-separated:
//
//	get <url>                       — issue a GET request
//	post <url> <k=v&k2=v2>          — issue a POST request
//	appendedit <edit-url> <field> <text>
//	                                — fetch an edit form, append text to
//	                                  the named textarea, and submit it
//	                                  (a read-modify-write page edit)
//	overwriteedit <edit-url> <field> <text>
//	                                — same, but replace the field contents
//
// The placeholder {self} expands to the script's own source wrapped in a
// script tag, which lets payloads propagate themselves (the worm behavior
// of §1's example attack).
const ScriptPrefix = "warpjs:"

// runScripts executes every warpjs script on the page, in document order.
// It is used both during normal execution and during server-side replay:
// if repair removed the injected script from the page, re-execution simply
// finds nothing to run (§5).
func (p *Page) runScripts() {
	if p.DOM == nil {
		return
	}
	for _, s := range p.DOM.ElementsByTag("script") {
		src := strings.TrimSpace(s.InnerText())
		if !strings.HasPrefix(src, ScriptPrefix) {
			continue
		}
		p.execScript(strings.TrimPrefix(src, ScriptPrefix))
	}
}

// execScript runs one script body.
func (p *Page) execScript(body string) {
	self := "<script>" + ScriptPrefix + body + "</script>"
	for _, raw := range strings.Split(body, ";") {
		cmd := strings.TrimSpace(raw)
		if cmd == "" {
			continue
		}
		fields := strings.SplitN(cmd, " ", 2)
		op := fields[0]
		rest := ""
		if len(fields) > 1 {
			rest = strings.TrimSpace(fields[1])
		}
		switch op {
		case "get":
			p.roundTrip("GET", expandSelf(rest, self), nil)
		case "post":
			parts := strings.SplitN(rest, " ", 2)
			target := parts[0]
			form := url.Values{}
			if len(parts) > 1 {
				if vals, err := url.ParseQuery(expandSelf(parts[1], self)); err == nil {
					form = vals
				}
			}
			p.roundTrip("POST", target, form)
		case "appendedit", "overwriteedit":
			parts := strings.SplitN(rest, " ", 3)
			if len(parts) != 3 {
				continue
			}
			p.scriptEdit(parts[0], parts[1], expandSelf(parts[2], self), op == "appendedit")
		}
	}
}

// expandSelf substitutes the self-propagation placeholder and translates
// literal \n escapes, so payloads can be written inline in attributes.
func expandSelf(s, self string) string {
	s = strings.ReplaceAll(s, "{self}", self)
	return strings.ReplaceAll(s, `\n`, "\n")
}

// scriptEdit performs a read-modify-write edit through an edit form, the
// way the paper's XSS payload modifies a second Wiki page from the
// victim's browser: fetch the form, alter the named field, submit.
func (p *Page) scriptEdit(editURL, field, text string, appendMode bool) {
	resp, _ := p.roundTrip("GET", editURL, nil)
	if resp.Status != 200 {
		return
	}
	formDoc := dom.Parse(resp.Body)
	forms := formDoc.ElementsByTag("form")
	if len(forms) == 0 {
		return
	}
	form := forms[0]
	target := form.ByName(field)
	if target == nil {
		return
	}
	if appendMode {
		setFieldValue(target, fieldValue(target)+text)
	} else {
		setFieldValue(target, text)
	}
	method, action, vals := formSubmission(form)
	if strings.EqualFold(method, "GET") {
		u := action
		if enc := vals.Encode(); enc != "" {
			u = action + "?" + enc
		}
		p.roundTrip("GET", u, nil)
		return
	}
	p.roundTrip("POST", action, vals)
}
