module warp

go 1.24
