// Package ttdb implements WARP's time-travel database (paper §4).
//
// The time-travel database is a SQL-rewriting layer over the embedded
// engine in internal/sqldb, exactly as the paper's prototype was a
// query-rewriting layer over PostgreSQL (§6). It provides:
//
//   - continuous versioning of every row: each table is augmented with
//     start_time and end_time columns, and updates and deletes create new
//     versions instead of destroying old ones (§4.2);
//   - repair generations: start_gen and end_gen columns let an online
//     repair build the "next" generation of the database while normal
//     operation continues against the "current" one (§4.3);
//   - row IDs: a stable per-row name, either an application column declared
//     by annotation or a synthesized warp_row_id column (§4.1);
//   - partitions: tables are logically split by the values of declared
//     partition columns, and every query's read and write partition sets are
//     extracted so the repair controller can skip unaffected queries (§4.1);
//   - two-phase re-execution of multi-row writes and fine-grained rollback
//     of individual rows to a past time (§4.2).
//
// All timestamps are logical (internal/vclock); Infinity marks live
// versions.
//
// # Concurrency
//
// The database is safe for concurrent use by normal execution and by
// parallel repair workers. Locking is layered:
//
//   - db.mu guards generation/repair/GC state and table annotations;
//   - db.tablesMu guards the table registry;
//   - each tableMeta has a partition lock manager (locks.go): an
//     operation holds a *scope* — a set of keys in the table's lock
//     column, or the whole table — for the full multi-statement span of
//     an operation (an exec, a two-phase re-execution, a rollback), so
//     operations on disjoint partitions of one table proceed in
//     parallel while operations on overlapping partitions serialize;
//   - tableMeta.mu is a leaf latch for the table's in-memory
//     bookkeeping (row-ID allocator, version index), held only for
//     momentary touches under a scope.
//
// DDL, generation switches (FinishRepair/AbortRepair), and GC take every
// table's whole scope. The acquisition order is db.mu → table scopes, and
// code holding a table scope never acquires db.mu. tablesMu is a leaf: it
// is taken only for momentary registry reads/writes and is never held
// across a scope (or db.mu) acquisition — which is why createTable and
// DropTable may briefly write-lock it even while lockAll holds every
// table's whole scope.
package ttdb

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

// Reserved column names added to every table. Applications must not declare
// columns with these names.
const (
	ColRowID     = "warp_row_id"
	ColStartTime = "warp_start_time"
	ColEndTime   = "warp_end_time"
	ColStartGen  = "warp_start_gen"
	ColEndGen    = "warp_end_gen"
)

// Infinity is the "still valid" timestamp/generation marker.
const Infinity = vclock.Infinity

// defaultRowShards is the number of row shards a partitioned table's
// checkpoint sections are split into (persist.go): dirty tracking and
// checkpoint rewrites happen per shard, so a repaired hot row rewrites
// 1/defaultRowShards of the table instead of all of it. Tables without
// partition columns use a single shard (their dirt is whole-table
// anyway).
const defaultRowShards = 8

// TableSpec carries the per-table annotations the paper requires from the
// programmer or administrator (§4.1, §8.1): which application column is a
// stable row ID (empty to let WARP synthesize one) and which columns
// partition the table for dependency analysis (empty for none, meaning
// whole-table dependencies).
type TableSpec struct {
	RowIDColumn      string
	PartitionColumns []string
}

// tableMeta is the runtime bookkeeping for one augmented table. locks
// serializes overlapping-scope operations (locks.go); mu is a leaf
// latch guarding the allocator and version index.
type tableMeta struct {
	mu        sync.Mutex
	locks     *partLocks
	name      string
	spec      TableSpec
	rowIDCol  string // spec.RowIDColumn or ColRowID
	synthetic bool   // rowIDCol == ColRowID
	userCols  []string
	partCols  map[string]bool
	// lockCol is the designated locking/sharding partition column: the
	// first declared partition column, or "" when the table has none.
	// Lock scopes and checkpoint row shards are keyed by this column's
	// values; dependency analysis still uses every partition column.
	lockCol   string
	shards    int
	nextRowID int64

	// partIdx is the per-partition version index: for every partition, the
	// row-version events (row ID, time) that touched it. It turns repair's
	// "find rows touching partition P at or after time T" from a table scan
	// into an index lookup (see partindex.go). Guarded by mu.
	partIdx map[Partition][]partEntry

	// restore buffers shard sections until the last one arrives, so rows
	// re-insert in their original physical scan order regardless of which
	// shard they live in (persist.go).
	restore *tableRestore
}

// tableRestore accumulates a table's row shards during snapshot restore.
type tableRestore struct {
	cols     []string
	rows     []posRow
	restored int
}

// posRow is one physical row tagged with its original scan position.
type posRow struct {
	pos  uint64
	vals []sqldb.Value
}

// shardOfKey maps a lock-column key to the table's row shard that holds
// it in checkpoints.
func (m *tableMeta) shardOfKey(key string) int {
	if m.shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(m.shards))
}

// Observer receives database change events, in per-table commit order.
// It is the seam a persistence layer attaches to (internal/store encodes
// these as WAL records) without reaching into the database's internals;
// the database is fully usable with no observer set.
//
// RecordApplied runs while the mutated table's lock scope (and, for DDL,
// the database lock) is still held, so the event order an observer sees
// per partition is exactly the execution order; events of disjoint
// partitions of one table may interleave in either order, matching their
// true concurrency.
// Implementations must not call back into the DB.
type Observer interface {
	// RecordApplied fires after a normal-execution mutation (INSERT,
	// UPDATE, DELETE, or DDL) commits. Reads are not reported, and
	// repair-generation re-execution is not reported either: a repair is
	// made durable as a whole when it commits (see internal/core).
	RecordApplied(rec *Record)
	// TableAnnotated fires when a table gains row-ID / partition
	// annotations.
	TableAnnotated(table string, spec TableSpec)
	// Collected fires after GC discarded row versions older than
	// beforeTime.
	Collected(beforeTime int64)
}

// DirtyShards names the parts of one table mutated since the last
// checkpoint: the whole table, or a set of row-shard indices.
type DirtyShards struct {
	Whole  bool
	Shards []int
}

// DirtySet maps table names to their dirty parts.
type DirtySet map[string]DirtyShards

// dirtyTable is the internal accumulator behind DirtyShards.
type dirtyTable struct {
	whole  bool
	shards map[int]bool
}

// DB is a time-travel database.
type DB struct {
	// mu guards specs, inRepair, and gcBefore, and serializes global
	// operations (DDL, generation switches, GC) at their entry.
	mu    sync.Mutex
	raw   *sqldb.DB
	clock *vclock.Clock

	// stmts is the deployment-wide prepared-statement cache: normal
	// execution (Exec), WAL replay (Replay), and repair re-execution
	// (ReExec, core's run replay) all parse through it, so each distinct
	// query form is parsed once and its canonical SQL — what Record.SQL
	// carries — is built once.
	stmts *sqldb.StmtCache

	specs map[string]TableSpec

	// tablesMu guards the tables registry map itself; the per-table locks
	// guard the tables' contents.
	tablesMu sync.RWMutex
	tables   map[string]*tableMeta

	// currentGen is atomic so exec paths can read it while holding only a
	// table scope; it changes only under lockAll (FinishRepair).
	currentGen atomic.Int64
	inRepair   bool

	// coarseLocks forces every lock scope to the whole table — the
	// pre-partition-lock behavior, kept for comparison benchmarks and as
	// an operational escape hatch (core.Config.TableGranularLocks).
	coarseLocks atomic.Bool

	gcBefore int64 // versions strictly older than this have been collected

	// dirtyMu guards dirty, the per-shard set of table slices mutated
	// since the last checkpoint. It is a leaf lock: taken only for
	// momentary set updates, under any combination of db.mu and table
	// scopes. The persistence layer snapshots and clears the set at
	// checkpoint time (TakeDirty) so incremental checkpoints rewrite
	// only changed shards.
	dirtyMu sync.Mutex
	dirty   map[string]*dirtyTable

	// obs, when set, receives change events. Installed once before use
	// (SetObserver); read under the locks its callbacks fire under.
	obs Observer

	// writeGate, when set, is consulted before any normal-execution
	// write statement runs; a non-nil return refuses the statement
	// without executing it. Reads are never gated. Installed by the
	// persistence layer when the deployment degrades to read-only mode.
	writeGate atomic.Pointer[func() error]
}

// Open creates a time-travel database over a fresh storage engine, sharing
// the given logical clock with the rest of the system.
func Open(clock *vclock.Clock) *DB {
	db := &DB{
		raw:    sqldb.Open(),
		clock:  clock,
		stmts:  sqldb.NewStmtCache(0),
		specs:  make(map[string]TableSpec),
		tables: make(map[string]*tableMeta),
		dirty:  make(map[string]*dirtyTable),
	}
	db.currentGen.Store(1)
	return db
}

// SetTableGranularLocks switches the database between partition-granular
// scopes (default) and the pre-refactor table-granular locking, in which
// every operation takes its table's whole scope. Flip before concurrent
// use; partition mode and table mode produce identical states, only
// concurrency differs.
func (db *DB) SetTableGranularLocks(coarse bool) { db.coarseLocks.Store(coarse) }

// markDirtyWhole records that a table's physical state changed across
// shards. Safe under any lock (dirtyMu is a leaf).
func (db *DB) markDirtyWhole(table string) {
	if table == "" {
		return
	}
	db.dirtyMu.Lock()
	e := db.dirty[table]
	if e == nil {
		e = &dirtyTable{}
		db.dirty[table] = e
	}
	e.whole = true
	db.dirtyMu.Unlock()
}

// markDirtyScope records the dirt a scoped operation can produce: the
// row shards of its keys, or the whole table for a whole-table scope.
// Marked before executing, so even a write that fails partway can only
// over-mark, never leave a mutated shard clean.
func (db *DB) markDirtyScope(m *tableMeta, sc lockScope) {
	if sc.whole || len(sc.ranges) > 0 {
		// A coalesced range cannot enumerate its shards, so it dirties the
		// whole table — the conservative trade coalescing already accepts.
		db.markDirtyWhole(m.name)
		return
	}
	db.dirtyMu.Lock()
	e := db.dirty[m.name]
	if e == nil {
		e = &dirtyTable{}
		db.dirty[m.name] = e
	}
	if !e.whole {
		if e.shards == nil {
			e.shards = make(map[int]bool)
		}
		for _, k := range sc.keys {
			e.shards[m.shardOfKey(k)] = true
		}
	}
	db.dirtyMu.Unlock()
}

// markAllDirty flags every registered table, for operations that rewrite
// physical state across the board (GC).
func (db *DB) markAllDirty() {
	db.tablesMu.RLock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	db.tablesMu.RUnlock()
	for _, name := range names {
		db.markDirtyWhole(name)
	}
}

// TakeDirty atomically returns and clears the set of table shards
// mutated since the last call. The caller (the persistence layer) must
// quiesce mutators across the take-encode span — the same rule a
// checkpoint already imposes — or re-mark the set with MarkDirty if the
// checkpoint fails.
func (db *DB) TakeDirty() DirtySet {
	db.dirtyMu.Lock()
	out := make(DirtySet, len(db.dirty))
	for name, e := range db.dirty {
		ds := DirtyShards{Whole: e.whole}
		if !e.whole {
			for s := range e.shards {
				ds.Shards = append(ds.Shards, s)
			}
			sort.Ints(ds.Shards)
		}
		out[name] = ds
	}
	db.dirty = make(map[string]*dirtyTable)
	db.dirtyMu.Unlock()
	return out
}

// MarkDirty re-flags table shards, undoing a TakeDirty whose checkpoint
// failed (also usable by tests to force a section rewrite).
func (db *DB) MarkDirty(set DirtySet) {
	db.dirtyMu.Lock()
	for name, ds := range set {
		e := db.dirty[name]
		if e == nil {
			e = &dirtyTable{}
			db.dirty[name] = e
		}
		if ds.Whole {
			e.whole = true
			continue
		}
		if e.shards == nil {
			e.shards = make(map[int]bool)
		}
		for _, s := range ds.Shards {
			e.shards[s] = true
		}
	}
	db.dirtyMu.Unlock()
}

// MarkTableDirty flags whole tables (test and recovery convenience).
func (db *DB) MarkTableDirty(tables ...string) {
	for _, t := range tables {
		db.markDirtyWhole(t)
	}
}

// ShardCount returns the number of checkpoint row shards of a table.
func (db *DB) ShardCount(table string) int {
	m, err := db.meta(table)
	if err != nil {
		return 1
	}
	return m.shards
}

// Raw returns the underlying storage engine. It is exposed for tests and
// storage accounting only; going around the rewriting layer on live tables
// breaks versioning invariants.
func (db *DB) Raw() *sqldb.DB { return db.raw }

// StmtCache returns the deployment-wide prepared-statement cache, so
// layers above (the repair controller's run replay) can share parsed
// handles instead of re-parsing SQL text.
func (db *DB) StmtCache() *sqldb.StmtCache { return db.stmts }

// Prepare parses src through the statement cache, returning the shared
// handle. The handle's statement must not be mutated.
func (db *DB) Prepare(src string) (*sqldb.CachedStmt, error) {
	return db.stmts.Get(src)
}

// Clock returns the logical clock shared with the rest of the system.
func (db *DB) Clock() *vclock.Clock { return db.clock }

// CurrentGen returns the current repair generation.
func (db *DB) CurrentGen() int64 { return db.currentGen.Load() }

// InRepair reports whether a repair generation is open.
func (db *DB) InRepair() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inRepair
}

// SetObserver installs the database's change observer (nil to remove).
// Install before concurrent use; the observer is not re-notified of
// state that already exists.
func (db *DB) SetObserver(o Observer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs = o
}

// SetWriteGate installs (or, with nil, removes) the write gate: a
// check every normal-execution write statement must pass before it
// runs. A non-nil return refuses the statement with that error. Reads
// and repair-generation re-execution are not gated — the gate protects
// durability of new writes, and repair entry is refused upstream.
func (db *DB) SetWriteGate(gate func() error) {
	if gate == nil {
		db.writeGate.Store(nil)
		return
	}
	db.writeGate.Store(&gate)
}

// Annotate declares the row ID column and partition columns for a table,
// before the table is created. Annotating after creation is an error,
// except that re-declaring the identical spec is a no-op — so
// application setup code can run unchanged against a recovered
// deployment whose tables already exist.
func (db *DB) Annotate(table string, spec TableSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tablesMu.RLock()
	m, exists := db.tables[table]
	db.tablesMu.RUnlock()
	if exists {
		if specEqual(m.spec, spec) {
			return nil
		}
		return fmt.Errorf("ttdb: table %s already created; annotate before CREATE TABLE", table)
	}
	if prev, ok := db.specs[table]; ok && specEqual(prev, spec) {
		return nil
	}
	db.specs[table] = spec
	if db.obs != nil {
		db.obs.TableAnnotated(table, spec)
	}
	return nil
}

// specEqual compares two table annotations.
func specEqual(a, b TableSpec) bool {
	if a.RowIDColumn != b.RowIDColumn || len(a.PartitionColumns) != len(b.PartitionColumns) {
		return false
	}
	for i, c := range a.PartitionColumns {
		if b.PartitionColumns[i] != c {
			return false
		}
	}
	return true
}

// Tables returns the names of all registered tables, sorted.
func (db *DB) Tables() []string { return db.raw.Tables() }

// meta returns table bookkeeping, or an error for unknown tables.
func (db *DB) meta(table string) (*tableMeta, error) {
	db.tablesMu.RLock()
	m, ok := db.tables[table]
	db.tablesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ttdb: no such table %s", table)
	}
	return m, nil
}

// lockAll acquires db.mu plus every table's whole scope in name order,
// for operations that must exclude all concurrent table activity (DDL,
// generation switches, GC). Release with unlockAll.
func (db *DB) lockAll() []*tableMeta {
	db.mu.Lock()
	// Holding db.mu excludes all DDL (the only mutator of db.tables), so
	// one registry snapshot is stable for the rest of the call.
	db.tablesMu.RLock()
	metas := make([]*tableMeta, 0, len(db.tables))
	for _, m := range db.tables {
		metas = append(metas, m)
	}
	db.tablesMu.RUnlock()
	sort.Slice(metas, func(i, j int) bool { return metas[i].name < metas[j].name })
	for _, m := range metas {
		m.locks.lock(wholeScope())
	}
	return metas
}

// unlockAll releases the scopes acquired by lockAll.
func (db *DB) unlockAll(metas []*tableMeta) {
	for i := len(metas) - 1; i >= 0; i-- {
		metas[i].locks.unlock(wholeScope())
	}
	db.mu.Unlock()
}

// createTable intercepts CREATE TABLE: it augments the schema with WARP's
// bookkeeping columns, extends uniqueness constraints with end_time and
// end_gen so multiple versions of a row can coexist (§6), and creates
// hash indexes on the row ID column and every partition column. Called
// with lockAll held.
func (db *DB) createTable(ct *sqldb.CreateTable) error {
	db.tablesMu.RLock()
	_, exists := db.tables[ct.Table]
	db.tablesMu.RUnlock()
	if exists {
		if ct.IfNotExists {
			return nil
		}
		return fmt.Errorf("ttdb: table %s already exists", ct.Table)
	}
	spec := db.specs[ct.Table]
	m := &tableMeta{
		locks:     newPartLocks(),
		name:      ct.Table,
		spec:      spec,
		rowIDCol:  spec.RowIDColumn,
		partCols:  make(map[string]bool),
		partIdx:   make(map[Partition][]partEntry),
		nextRowID: 1,
		shards:    1,
	}
	if len(spec.PartitionColumns) > 0 {
		m.lockCol = spec.PartitionColumns[0]
		m.shards = defaultRowShards
	}
	aug := ct.Clone().(*sqldb.CreateTable)
	cols := make(map[string]bool)
	for _, c := range aug.Columns {
		cols[c.Name] = true
		m.userCols = append(m.userCols, c.Name)
	}
	for _, reserved := range []string{ColRowID, ColStartTime, ColEndTime, ColStartGen, ColEndGen} {
		if cols[reserved] {
			return fmt.Errorf("ttdb: table %s declares reserved column %s", ct.Table, reserved)
		}
	}
	if m.rowIDCol == "" {
		m.rowIDCol = ColRowID
		m.synthetic = true
		aug.Columns = append(aug.Columns, sqldb.ColumnDef{Name: ColRowID, Type: sqldb.KindInt})
	} else if !cols[m.rowIDCol] {
		return fmt.Errorf("ttdb: table %s: row ID column %s does not exist", ct.Table, m.rowIDCol)
	}
	for _, pc := range spec.PartitionColumns {
		if !cols[pc] {
			return fmt.Errorf("ttdb: table %s: partition column %s does not exist", ct.Table, pc)
		}
		m.partCols[pc] = true
	}
	aug.Columns = append(aug.Columns,
		sqldb.ColumnDef{Name: ColStartTime, Type: sqldb.KindInt, NotNull: true},
		sqldb.ColumnDef{Name: ColEndTime, Type: sqldb.KindInt, NotNull: true},
		sqldb.ColumnDef{Name: ColStartGen, Type: sqldb.KindInt, NotNull: true},
		sqldb.ColumnDef{Name: ColEndGen, Type: sqldb.KindInt, NotNull: true},
	)
	// Multiple versions of one application row must coexist: extend every
	// uniqueness constraint with the version end markers (§6).
	for i := range aug.Uniques {
		aug.Uniques[i].Columns = append(aug.Uniques[i].Columns, ColEndTime, ColEndGen)
		aug.Uniques[i].Primary = false
	}
	if _, err := db.raw.ExecStmt(aug, nil); err != nil {
		return err
	}
	// Indexes keep rollback and row-targeted rewrites fast.
	indexCols := map[string]bool{m.rowIDCol: true}
	for pc := range m.partCols {
		indexCols[pc] = true
	}
	for col := range indexCols {
		ci := &sqldb.CreateIndex{Name: "warp_idx_" + ct.Table + "_" + col, Table: ct.Table, Column: col}
		if _, err := db.raw.ExecStmt(ci, nil); err != nil {
			return err
		}
	}
	db.tablesMu.Lock()
	db.tables[ct.Table] = m
	db.tablesMu.Unlock()
	return nil
}

// liveWhere returns the predicate selecting versions visible at time t in
// generation g: start_time <= t < end_time AND start_gen <= g <= end_gen.
func liveWhere(t, g int64) sqldb.Expr {
	return sqldb.And(
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartTime), Right: sqldb.Lit(sqldb.Int(t))},
		&sqldb.BinaryExpr{Op: sqldb.OpGt, Left: sqldb.Col(ColEndTime), Right: sqldb.Lit(sqldb.Int(t))},
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(g))},
		&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(g))},
	)
}

// metaColumns lists WARP's bookkeeping columns in a stable order.
func (m *tableMeta) metaColumns() []string {
	cols := []string{ColStartTime, ColEndTime, ColStartGen, ColEndGen}
	if m.synthetic {
		cols = append([]string{ColRowID}, cols...)
	}
	return cols
}

// StorageStats summarizes physical storage, for the paper's Table 6
// accounting.
type StorageStats struct {
	Tables       int
	PhysicalRows int
	ApproxBytes  int
}

// Stats returns current storage statistics.
func (db *DB) Stats() StorageStats {
	db.tablesMu.RLock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	db.tablesMu.RUnlock()
	st := StorageStats{}
	for _, name := range names {
		st.Tables++
		st.PhysicalRows += db.raw.RowCount(name)
		st.ApproxBytes += db.raw.ApproxTableBytes(name)
	}
	return st
}
