package history

import (
	"reflect"
	"testing"
)

// buildDepGraph records a tiny write/read chain over two partitions:
//
//	a1 writes P at t=10
//	a2 reads  P at t=20
//	a3 writes Q at t=30
//	a4 reads P and Q at t=40
func buildDepGraph() (*Graph, []ActionID) {
	g := New()
	p := PartitionNode("t/user=a")
	q := PartitionNode("t/user=b")
	a1 := g.Append(&Action{Kind: KindQuery, Time: 10, Outputs: []Dep{{Node: p, Time: 10}}})
	a2 := g.Append(&Action{Kind: KindQuery, Time: 20, Inputs: []Dep{{Node: p, Time: 20}}})
	a3 := g.Append(&Action{Kind: KindQuery, Time: 30, Outputs: []Dep{{Node: q, Time: 30}}})
	a4 := g.Append(&Action{Kind: KindQuery, Time: 40, Inputs: []Dep{{Node: p, Time: 40}, {Node: q, Time: 40}}})
	return g, []ActionID{a1, a2, a3, a4}
}

func TestDepsAndDependents(t *testing.T) {
	g, ids := buildDepGraph()
	a1, a2, a3, a4 := ids[0], ids[1], ids[2], ids[3]

	if got := g.Deps(a2); !reflect.DeepEqual(got, []ActionID{a1}) {
		t.Fatalf("Deps(a2) = %v, want [a1]", got)
	}
	if got := g.Deps(a4); !reflect.DeepEqual(got, []ActionID{a1, a3}) {
		t.Fatalf("Deps(a4) = %v, want [a1 a3]", got)
	}
	if got := g.Deps(a1); len(got) != 0 {
		t.Fatalf("Deps(a1) = %v, want none", got)
	}
	if got := g.Dependents(a1); !reflect.DeepEqual(got, []ActionID{a2, a4}) {
		t.Fatalf("Dependents(a1) = %v, want [a2 a4]", got)
	}
	if got := g.Dependents(a3); !reflect.DeepEqual(got, []ActionID{a4}) {
		t.Fatalf("Dependents(a3) = %v, want [a4]", got)
	}
	if got := g.Dependents(a4); len(got) != 0 {
		t.Fatalf("Dependents(a4) = %v, want none", got)
	}
}

func TestDepsRespectsTimeDirection(t *testing.T) {
	g := New()
	p := PartitionNode("t/user=a")
	// A write strictly after the reader's time is not a dependency.
	late := g.Append(&Action{Kind: KindQuery, Time: 50, Outputs: []Dep{{Node: p, Time: 50}}})
	rd := g.Append(&Action{Kind: KindQuery, Time: 20, Inputs: []Dep{{Node: p, Time: 20}}})
	if got := g.Deps(rd); len(got) != 0 {
		t.Fatalf("Deps(reader) = %v, want none (writer is later)", got)
	}
	if got := g.Dependents(late); len(got) != 0 {
		t.Fatalf("Dependents(late writer) = %v, want none (reader is earlier)", got)
	}
}

func TestDepsUnknownAction(t *testing.T) {
	g, _ := buildDepGraph()
	if g.Deps(999) != nil || g.Dependents(999) != nil {
		t.Fatal("unknown action should have no edges")
	}
	in, out := g.DepsOf(999)
	if in != nil || out != nil {
		t.Fatal("unknown action should have no deps")
	}
}

func TestDepsOfReturnsCopies(t *testing.T) {
	g, ids := buildDepGraph()
	in, _ := g.DepsOf(ids[3])
	if len(in) != 2 {
		t.Fatalf("DepsOf inputs = %v", in)
	}
	in[0].Node = "mutated"
	in2, _ := g.DepsOf(ids[3])
	if in2[0].Node == "mutated" {
		t.Fatal("DepsOf must return copies, not aliases")
	}
}

func TestDepsAfterAddDeps(t *testing.T) {
	g, ids := buildDepGraph()
	q := PartitionNode("t/user=b")
	// Repair discovers that a2 also reads Q.
	g.AddDeps(ids[1], []Dep{{Node: q, Time: 20}}, nil)
	// a2 still has only a1 as dep (a3 wrote Q later than a2's time)...
	if got := g.Deps(ids[1]); !reflect.DeepEqual(got, []ActionID{ids[0]}) {
		t.Fatalf("Deps(a2) = %v", got)
	}
	// ...but a2 now shows up among Q readers via DepsOf.
	in, _ := g.DepsOf(ids[1])
	if len(in) != 2 {
		t.Fatalf("DepsOf(a2) inputs = %v, want 2", in)
	}
}

// TestDepsHonorWholeTableOverlap: the action-level dependency API must
// treat a whole-table partition edge as overlapping every keyed partition
// of that table, in both directions.
func TestDepsHonorWholeTableOverlap(t *testing.T) {
	g := New()
	keyed := PartitionNode("t/user=a")
	wild := PartitionNode("t/*")
	otherTable := PartitionNode("u/*")

	wWild := g.Append(&Action{Kind: KindQuery, Time: 10, Outputs: []Dep{{Node: wild, Time: 10}}})
	rKeyed := g.Append(&Action{Kind: KindQuery, Time: 20, Inputs: []Dep{{Node: keyed, Time: 20}}})
	wKeyed := g.Append(&Action{Kind: KindQuery, Time: 30, Outputs: []Dep{{Node: keyed, Time: 30}}})
	rWild := g.Append(&Action{Kind: KindQuery, Time: 40, Inputs: []Dep{{Node: wild, Time: 40}}})
	rOther := g.Append(&Action{Kind: KindQuery, Time: 50, Inputs: []Dep{{Node: otherTable, Time: 50}}})

	// A keyed reader depends on an earlier whole-table writer.
	if got := g.Deps(rKeyed); !reflect.DeepEqual(got, []ActionID{wWild}) {
		t.Fatalf("Deps(keyed reader) = %v, want [whole-table writer]", got)
	}
	// A whole-table reader depends on earlier keyed and wildcard writers.
	if got := g.Deps(rWild); !reflect.DeepEqual(got, []ActionID{wWild, wKeyed}) {
		t.Fatalf("Deps(wildcard reader) = %v, want [wild keyed]", got)
	}
	// Dependents of the whole-table writer include both later readers.
	if got := g.Dependents(wWild); !reflect.DeepEqual(got, []ActionID{rKeyed, rWild}) {
		t.Fatalf("Dependents(wildcard writer) = %v, want both readers", got)
	}
	// Dependents of the keyed writer include the wildcard reader.
	if got := g.Dependents(wKeyed); !reflect.DeepEqual(got, []ActionID{rWild}) {
		t.Fatalf("Dependents(keyed writer) = %v, want [wildcard reader]", got)
	}
	// A different table never overlaps.
	if got := g.Deps(rOther); len(got) != 0 {
		t.Fatalf("Deps(other-table reader) = %v, want none", got)
	}
}

// TestPartitionDepsOf splits partition edges from plain node edges.
func TestPartitionDepsOf(t *testing.T) {
	g := New()
	id := g.Append(&Action{
		Kind: KindQuery, Time: 10,
		Inputs:  []Dep{{Node: PartitionNode("t/user=a"), Time: 10}, {Node: HTTPNode("c", 1, 1), Time: 10}},
		Outputs: []Dep{{Node: PartitionNode("t/*"), Time: 10}, {Node: CookieNode("c"), Time: 10}},
	})
	pd := g.PartitionDepsOf(id)
	if !reflect.DeepEqual(pd.PartReads, []string{"t/user=a"}) {
		t.Fatalf("PartReads = %v", pd.PartReads)
	}
	if !reflect.DeepEqual(pd.PartWrites, []string{"t/*"}) {
		t.Fatalf("PartWrites = %v", pd.PartWrites)
	}
	if !reflect.DeepEqual(pd.NodeReads, []NodeID{HTTPNode("c", 1, 1)}) {
		t.Fatalf("NodeReads = %v", pd.NodeReads)
	}
	if !reflect.DeepEqual(pd.NodeWrites, []NodeID{CookieNode("c")}) {
		t.Fatalf("NodeWrites = %v", pd.NodeWrites)
	}
	if pd := g.PartitionDepsOf(999); pd.PartReads != nil || pd.NodeReads != nil {
		t.Fatalf("PartitionDepsOf(unknown) = %+v, want zero", pd)
	}
}
