package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokOp    // punctuation and operators
	tokParam // ?
)

// token is one lexical token.
type token struct {
	kind tokenKind
	text string // keyword/ident text is upper-cased for keywords, raw for idents
	val  int64  // for tokInt
	str  string // for tokString
	pos  int    // byte offset in input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ON": true, "ALTER": true, "ADD": true,
	"COLUMN": true, "DROP": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "IS": true, "IN": true, "LIKE": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"DISTINCT": true, "AS": true, "PRIMARY": true, "KEY": true, "UNIQUE": true,
	"INTEGER": true, "INT": true, "TEXT": true, "VARCHAR": true, "BOOLEAN": true,
	"BOOL": true, "TRUE": true, "FALSE": true, "DEFAULT": true, "RETURNING": true,
	"IF": true, "EXISTS": true, "CONSTRAINT": true, "BETWEEN": true,
}

// lexer splits SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error describing the first invalid
// character or unterminated literal.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: lex error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.scanString()
	case c >= '0' && c <= '9':
		return l.scanNumber()
	case isIdentStart(rune(c)):
		return l.scanWord()
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	}
	// Operators, longest match first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=", "||":
		l.pos += 2
		t := two
		if t == "<>" {
			t = "!="
		}
		return token{kind: tokOp, text: t, pos: start}, nil
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", c)
}

func (l *lexer) scanString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, str: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	text := l.src[start:l.pos]
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, l.errorf(start, "invalid integer %q", text)
	}
	return token{kind: tokInt, val: n, text: text, pos: start}, nil
}

func (l *lexer) scanWord() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return token{kind: tokKeyword, text: upper, pos: start}, nil
	}
	return token{kind: tokIdent, text: word, pos: start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
