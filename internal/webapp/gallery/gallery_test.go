package gallery

import (
	"strings"
	"testing"

	"warp/internal/core"
)

func setup(t *testing.T) (*core.Warp, *App) {
	t.Helper()
	w := core.New(core.Config{Seed: 4})
	a, err := Install(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CreateAlbum(1, "Holiday"); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateAlbum(2, "Archive"); err != nil {
		t.Fatal(err)
	}
	if err := a.CreatePhoto(1, 1, "sunset", "IMAGEDATA-1"); err != nil {
		t.Fatal(err)
	}
	return w, a
}

func TestPermissionsGateViewing(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	p := b.Open("/photo.php?id=1&u=alice")
	if !strings.Contains(p.DOM.InnerText(), "not allowed") {
		t.Fatalf("unpermitted view allowed: %q", p.DOM.InnerText())
	}
	b.Open("/grant.php?id=1&user=alice")
	p = b.Open("/photo.php?id=1&u=alice")
	if !strings.Contains(p.DOM.InnerText(), "sunset") {
		t.Fatalf("permitted view denied: %q", p.DOM.InnerText())
	}
	_ = a
}

func TestMovePermsBugAndPatch(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	b.Open("/grant.php?id=1&user=alice")
	b.Open("/grant.php?id=1&user=bob")
	b.Open("/movephoto.php?id=1&album=2")
	if a.PermCount(1) != 0 {
		t.Fatalf("bug should wipe perms: %d", a.PermCount(1))
	}
	if a.AlbumOf(1) != 2 {
		t.Fatalf("move lost: album %d", a.AlbumOf(1))
	}
	if _, err := w.RetroPatch("movephoto.php", a.MovephotoFixed()); err != nil {
		t.Fatal(err)
	}
	if a.PermCount(1) != 2 {
		t.Fatalf("perms not restored: %d", a.PermCount(1))
	}
	if a.AlbumOf(1) != 2 {
		t.Fatalf("legitimate move reverted: album %d", a.AlbumOf(1))
	}
}

func TestResizeBugAndPatch(t *testing.T) {
	w, a := setup(t)
	b := w.NewBrowser()
	want := Thumb("IMAGEDATA-1")
	if a.ThumbOf(1) != want {
		t.Fatalf("seed thumb: %q", a.ThumbOf(1))
	}
	b.Open("/resize.php?id=1")
	if a.ThumbOf(1) == want {
		t.Fatal("bug should corrupt the thumbnail")
	}
	if _, err := w.RetroPatch("resize.php", a.ResizeFixed()); err != nil {
		t.Fatal(err)
	}
	if a.ThumbOf(1) != want {
		t.Fatalf("thumbnail not repaired: %q", a.ThumbOf(1))
	}
}

func TestRegrantAfterRepairUniqueOutcome(t *testing.T) {
	// §6: repair watches INSERT success changes. A re-grant that originally
	// succeeded (perms were wiped) collides after repair restores the
	// original grant; WARP converges to exactly one permission row.
	w, a := setup(t)
	b := w.NewBrowser()
	b.Open("/grant.php?id=1&user=alice")
	b.Open("/movephoto.php?id=1&album=2") // wipes perms
	b.Open("/grant.php?id=1&user=alice")  // re-grant (succeeded originally)
	if _, err := w.RetroPatch("movephoto.php", a.MovephotoFixed()); err != nil {
		t.Fatal(err)
	}
	if a.PermCount(1) != 1 {
		t.Fatalf("perm rows after repair = %d, want exactly 1", a.PermCount(1))
	}
}
