package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// onlineDeployment builds the OnlineRepair workload (hot `posts` table,
// login + posts pages, clients×pages seeded visits) and returns the
// deployment plus the first client's owner key, for tests that want to
// aim live traffic at a partition the repair will claim.
func onlineDeployment(t *testing.T, clients, pages int, appLatency time.Duration, cfg core.Config) (*core.Warp, string) {
	t.Helper()
	w := core.New(cfg)
	if err := w.DB.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := w.Runtime.Register("login.php", app.Version{Entry: loginHandler(false)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Runtime.Register("page.php", app.Version{Entry: postsHandler(appLatency)}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/login", "login.php")
	w.Runtime.Mount("/page", "page.php")

	owner0 := ""
	id := 0
	for c := 0; c < clients; c++ {
		b := w.NewBrowser()
		if owner0 == "" {
			owner0 = b.ClientID
		}
		if p := b.Open("/login"); p.DOM == nil {
			t.Fatalf("login failed for client %d", c)
		}
		for n := 0; n < pages; n++ {
			id++
			if p := b.Open(fmt.Sprintf("/page?owner=%s&id=%d&body=<i>p%d</i>", b.ClientID, id, n)); p.DOM == nil {
				t.Fatalf("page visit failed for client %d", c)
			}
		}
	}
	return w, owner0
}

// awaitRepairStart blocks until the deployment is mid-repair (or the
// repair already finished, signalled on done).
func awaitRepairStart(w *core.Warp, done chan error) {
	for !w.DB.InRepair() {
		select {
		case err := <-done:
			done <- err // repair already over; requeue the result for the caller
			return
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func postsRows(t *testing.T, w *core.Warp) []string {
	t.Helper()
	res, _, err := w.DB.Exec("SELECT owner, body FROM posts ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, r[0].AsText()+"|"+r[1].AsText())
	}
	return rows
}

// onlineEquivRun runs one repair with a fixed set of live writes fired
// mid-repair — three into a partition no repair item touches and three
// into the first repaired client's partition — and returns the final
// hot-table contents. Under ExclusiveRepair the same requests block at
// the suspension barrier and execute after the commit; either way the
// deterministic request set must leave the database in the same state.
func onlineEquivRun(t *testing.T, exclusive bool) []string {
	t.Helper()
	const clients, pages = 6, 2
	w, owner0 := onlineDeployment(t, clients, pages, 2*time.Millisecond, core.Config{
		Seed: 99, RepairWorkers: 4, ExclusiveRepair: exclusive,
	})

	done := make(chan error, 1)
	go func() {
		_, err := w.RetroPatch("login.php", app.Version{Entry: loginHandler(true), Note: "session hardening"})
		done <- err
	}()
	awaitRepairStart(w, done)

	for i := 0; i < 6; i++ {
		owner := "live"
		if i >= 3 {
			owner = owner0
		}
		id := 1_000_001 + i
		req := httpd.NewRequest("GET", fmt.Sprintf("/page?owner=%s&id=%d&body=live%d", owner, id, i))
		if resp := w.HandleRequest(req); resp.Status != 200 {
			t.Fatalf("live request %d failed with status %d", i, resp.Status)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return postsRows(t, w)
}

// TestOnlineRepairMatchesExclusive is the online-repair acceptance bar
// (docs/repair.md): coexistence is a latency optimization, never a
// semantic one. The same deployment, repair, and deterministic live
// request mix — disjoint and overlapping partitions — must end in
// byte-identical database contents whether live execution coexisted
// with the repair or was suspended for all of it.
func TestOnlineRepairMatchesExclusive(t *testing.T) {
	online := onlineEquivRun(t, false)
	exclusive := onlineEquivRun(t, true)
	if len(online) != len(exclusive) {
		t.Fatalf("row count differs: online %d vs exclusive %d\nonline: %v\nexclusive: %v",
			len(online), len(exclusive), online, exclusive)
	}
	for i := range online {
		if online[i] != exclusive[i] {
			t.Fatalf("row %d differs: online %q vs exclusive %q", i, online[i], exclusive[i])
		}
	}
}

// editHandler inserts or updates a post whose body arrives `|`-separated
// (stored newline-separated, so line-based three-way merge has lines to
// work with). The patched version hardens line1 — but only on the
// insert path, so a live UPDATE racing the repair carries the user's
// unpatched edit and must be merged, not overwritten.
func editHandler(patched bool, delay time.Duration) app.Script {
	return func(c *app.Ctx) *httpd.Response {
		body := strings.ReplaceAll(c.Req.Param("body"), "|", "\n")
		if c.Req.Param("new") != "" {
			if patched {
				body = strings.ReplaceAll(body, "line1", "line1-patched")
			}
			c.MustQuery("INSERT INTO posts (id, owner, body) VALUES (?, ?, ?)",
				sqldb.Int(atoi(c.Req.Param("id"))), sqldb.Text(c.Req.Param("owner")), sqldb.Text(body))
		} else if body != "" {
			c.MustQuery("UPDATE posts SET body = ? WHERE id = ?",
				sqldb.Text(body), sqldb.Int(atoi(c.Req.Param("id"))))
		}
		res := c.MustQuery("SELECT body FROM posts WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		if delay > 0 {
			time.Sleep(delay)
		}
		return httpd.HTML("<html><body>" + fmt.Sprint(len(res.Rows)) + " posts</body></html>")
	}
}

// TestOnlineRepairMergesLiveWrite exercises the conflicting-live-write
// merge path: a live UPDATE lands on a row mid-repair while the repair
// is rewriting that row's history. The update's pre-image is the merge
// base, the repaired row is "theirs", the user's new value is "ours" —
// a clean three-way merge keeps both the retroactive patch and the
// user's edit. Timing-dependent (the update must land before the final
// commit window), so the run retries a few times and requires the merge
// to land at least once.
func TestOnlineRepairMergesLiveWrite(t *testing.T) {
	const want = "line1-patched\nline2\nline3-user"
	var got string
	for attempt := 0; attempt < 5; attempt++ {
		got = mergeRun(t)
		if got == want {
			return
		}
		t.Logf("attempt %d: live write missed the repair window (got %q)", attempt, got)
	}
	t.Fatalf("merge never happened: final body %q, want %q", got, want)
}

func mergeRun(t *testing.T) string {
	t.Helper()
	w := core.New(core.Config{Seed: 99, RepairWorkers: 2})
	if err := w.DB.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	// The repair must outlast the admission window (the live update
	// targets a claimed partition, so the gate paces it for the full
	// admissionWait before it executes): enough filler visits at enough
	// simulated latency to keep the drain busy well past it.
	const delay = 8 * time.Millisecond
	if err := w.Runtime.Register("edit.php", app.Version{Entry: editHandler(false, delay)}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/edit", "edit.php")

	b := w.NewBrowser()
	if p := b.Open("/edit?new=1&id=1&owner=u0&body=line1|line2|line3"); p.DOM == nil {
		t.Fatal("seed visit failed")
	}
	for i := 2; i <= 12; i++ {
		if p := b.Open(fmt.Sprintf("/edit?new=1&id=%d&owner=u0&body=filler", i)); p.DOM == nil {
			t.Fatal("filler visit failed")
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := w.RetroPatch("edit.php", app.Version{Entry: editHandler(true, delay), Note: "harden line1"})
		done <- err
	}()
	awaitRepairStart(w, done)

	req := httpd.NewRequest("GET", "/edit?id=1&owner=u0&body=line1|line2|line3-user")
	if resp := w.HandleRequest(req); resp.Status != 200 {
		t.Fatalf("live update failed with status %d", resp.Status)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	res, _, err := w.DB.Exec("SELECT body FROM posts WHERE id = ?", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows for id=1, want 1", len(res.Rows))
	}
	return res.Rows[0][0].AsText()
}

// TestLiveExecDuringRepairStress hammers a mid-repair deployment with
// concurrent live traffic — two goroutines on partitions no repair item
// touches, two on repaired clients' partitions — and requires every
// request to succeed. Run under `go test -race ./...` in CI, this is
// the data-race gate for the admission gate, the throttle governor, and
// partition-lock coexistence between live execution and repair workers.
func TestLiveExecDuringRepairStress(t *testing.T) {
	const clients, pages = 8, 2
	w, owner0 := onlineDeployment(t, clients, pages, time.Millisecond, core.Config{
		Seed: 99, RepairWorkers: 4, RepairSLO: 20 * time.Millisecond,
	})

	done := make(chan error, 1)
	go func() {
		_, err := w.RetroPatch("login.php", app.Version{Entry: loginHandler(true), Note: "session hardening"})
		done <- err
	}()
	awaitRepairStart(w, done)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		owner := fmt.Sprintf("stress%d", g)
		if g >= 2 {
			owner = owner0 // overlap the partitions being repaired
		}
		base := 2_000_000 + g*100_000
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Cap the volume: the admission gate paces writes into claimed
			// partitions, but the disjoint goroutines run unthrottled and
			// have no reason to generate unbounded rows.
			for i := 0; i < 500; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httpd.NewRequest("GET",
					fmt.Sprintf("/page?owner=%s&id=%d&body=s%d", owner, base+i, i))
				if resp := w.HandleRequest(req); resp.Status != 200 {
					errc <- fmt.Errorf("live request %s/%d failed with status %d", owner, i, resp.Status)
					return
				}
			}
		}()
	}

	err := <-done
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case lerr := <-errc:
		t.Fatal(lerr)
	default:
	}
	if rows := postsRows(t, w); len(rows) < clients*pages {
		t.Fatalf("final table has %d rows, want at least %d seeded", len(rows), clients*pages)
	}
}
