package httpd

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func TestSplitURLAndParams(t *testing.T) {
	req := NewRequest("GET", "/edit.php?title=Main&x=1")
	if req.Path != "/edit.php" {
		t.Fatalf("path = %q", req.Path)
	}
	if req.Param("title") != "Main" || req.Param("x") != "1" {
		t.Fatalf("params: %v", req.Query)
	}
	req.Form.Set("title", "FromForm")
	// Query wins over form.
	if req.Param("title") != "Main" {
		t.Fatal("query should take precedence")
	}
	req2 := NewRequest("POST", "/save")
	req2.Form.Set("body", "x")
	if req2.Param("body") != "x" {
		t.Fatal("form fallback broken")
	}
	if req.URLString() == "" || !strings.HasPrefix(req.URLString(), "/edit.php?") {
		t.Fatalf("url string: %q", req.URLString())
	}
}

func TestRequestFingerprintSensitivity(t *testing.T) {
	base := NewRequest("GET", "/a?x=1")
	base.Cookies["sid"] = "s1"
	same := base.Clone()
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("clone must fingerprint equal")
	}
	for _, mutate := range []func(r *Request){
		func(r *Request) { r.Method = "POST" },
		func(r *Request) { r.Path = "/b" },
		func(r *Request) { r.Query.Set("x", "2") },
		func(r *Request) { r.Form.Set("y", "3") },
		func(r *Request) { r.Cookies["sid"] = "s2" },
	} {
		m := base.Clone()
		mutate(m)
		if m.Fingerprint() == base.Fingerprint() {
			t.Fatalf("mutation not reflected in fingerprint: %+v", m)
		}
	}
	// Extension IDs must NOT affect the fingerprint: the same request
	// replayed with matched IDs compares equal.
	m := base.Clone()
	m.ClientID, m.VisitID, m.RequestID = "c", 9, 9
	if m.Fingerprint() != base.Fingerprint() {
		t.Fatal("warp IDs must not affect request fingerprints")
	}
}

func TestResponseFingerprintSensitivity(t *testing.T) {
	base := HTML("<p>hi</p>")
	if base.Fingerprint() != HTML("<p>hi</p>").Fingerprint() {
		t.Fatal("equal responses must fingerprint equal")
	}
	for _, mutate := range []func(r *Response){
		func(r *Response) { r.Status = 404 },
		func(r *Response) { r.Body = "other" },
		func(r *Response) { r.Headers["X-Frame-Options"] = "DENY" },
		func(r *Response) { r.SetCookie("sid", "x") },
		func(r *Response) { r.ClearCookie("sid") },
	} {
		m := HTML("<p>hi</p>")
		mutate(m)
		if m.Fingerprint() == base.Fingerprint() {
			t.Fatalf("mutation not reflected: %+v", m)
		}
	}
}

func TestResponseHelpers(t *testing.T) {
	r := Redirect("/next")
	if r.Status != 303 || r.Headers["Location"] != "/next" {
		t.Fatalf("redirect: %+v", r)
	}
	if NotFound("x").Status != 404 || ServerError("y").Status != 500 {
		t.Fatal("status helpers broken")
	}
	c := r.Clone()
	c.Headers["Location"] = "/other"
	if r.Headers["Location"] != "/next" {
		t.Fatal("clone shares headers")
	}
}

func TestAdapterRoundTrip(t *testing.T) {
	var got *Request
	ad := &Adapter{Handler: func(req *Request) *Response {
		got = req
		resp := HTML("<p>served</p>")
		resp.SetCookie("sid", "abc")
		resp.ClearCookie("old")
		return resp
	}}
	srv := httptest.NewServer(ad)
	defer srv.Close()

	hreq, _ := http.NewRequest("POST", srv.URL+"/edit.php?title=Main", strings.NewReader(url.Values{"content": {"hello"}}.Encode()))
	hreq.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	hreq.Header.Set(HeaderClientID, "client-1")
	hreq.Header.Set(HeaderVisitID, "7")
	hreq.Header.Set(HeaderRequestID, "3")
	hreq.AddCookie(&http.Cookie{Name: "sid", Value: "old-sid"})
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if got == nil || got.Path != "/edit.php" || got.Param("title") != "Main" {
		t.Fatalf("request not adapted: %+v", got)
	}
	if got.Form.Get("content") != "hello" {
		t.Fatalf("form not parsed: %v", got.Form)
	}
	if got.ClientID != "client-1" || got.VisitID != 7 || got.RequestID != 3 {
		t.Fatalf("warp headers not adapted: %+v", got)
	}
	if got.Cookie("sid") != "old-sid" {
		t.Fatalf("cookie not adapted: %v", got.Cookies)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	found := false
	for _, c := range resp.Cookies() {
		if c.Name == "sid" && c.Value == "abc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("set-cookie not adapted: %v", resp.Cookies())
	}
}
