package httpd

import (
	"net/http"
	"strconv"
)

// HandlerFunc serves one in-process request.
type HandlerFunc func(*Request) *Response

// Adapter bridges net/http to a WARP handler, so a WARP-managed
// application can be served to real browsers (cmd/warp-server).
type Adapter struct {
	Handler HandlerFunc
}

// ServeHTTP implements http.Handler.
func (a *Adapter) ServeHTTP(w http.ResponseWriter, hr *http.Request) {
	req := NewRequest(hr.Method, hr.URL.RequestURI())
	if err := hr.ParseForm(); err == nil {
		req.Form = hr.PostForm
	}
	for _, c := range hr.Cookies() {
		req.Cookies[c.Name] = c.Value
	}
	for k := range hr.Header {
		req.Headers[k] = hr.Header.Get(k)
	}
	req.ClientID = hr.Header.Get(HeaderClientID)
	req.VisitID, _ = strconv.ParseInt(hr.Header.Get(HeaderVisitID), 10, 64)
	req.RequestID, _ = strconv.ParseInt(hr.Header.Get(HeaderRequestID), 10, 64)

	resp := a.Handler(req)
	for k, v := range resp.Headers {
		w.Header().Set(k, v)
	}
	for name, val := range resp.SetCookies {
		http.SetCookie(w, &http.Cookie{Name: name, Value: val, Path: "/"})
	}
	for _, name := range resp.ClearCookies {
		http.SetCookie(w, &http.Cookie{Name: name, Value: "", Path: "/", MaxAge: -1})
	}
	w.WriteHeader(resp.Status)
	_, _ = w.Write([]byte(resp.Body))
}
