package merge

import (
	"math/rand"
	"strings"
	"testing"
)

func TestMergeIdentity(t *testing.T) {
	base := "alpha\nbeta\ngamma"
	// Nobody changed anything.
	got, ok := Merge(base, base, base)
	if !ok || got != base {
		t.Fatalf("identity merge: %q ok=%v", got, ok)
	}
}

func TestMergeOneSided(t *testing.T) {
	base := "a\nb\nc"
	mine := "a\nB\nc"
	// Only one side changed: result is that side (both orders).
	if got, ok := Merge(base, mine, base); !ok || got != mine {
		t.Fatalf("merge(base, mine, base) = %q ok=%v", got, ok)
	}
	if got, ok := Merge(base, base, mine); !ok || got != mine {
		t.Fatalf("merge(base, base, mine) = %q ok=%v", got, ok)
	}
}

func TestMergeDisjointEdits(t *testing.T) {
	base := "one\ntwo\nthree\nfour\nfive"
	a := "ONE\ntwo\nthree\nfour\nfive" // edits first line
	b := "one\ntwo\nthree\nfour\nFIVE" // edits last line
	got, ok := Merge(base, a, b)
	if !ok {
		t.Fatal("disjoint edits must merge")
	}
	want := "ONE\ntwo\nthree\nfour\nFIVE"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestMergeAppendVsEdit(t *testing.T) {
	// The paper's Wiki scenario (§8.3, append-only attack): the repaired
	// page lost an attacker-appended line, while the user edited another
	// part. Equivalently: one side appends, the other edits elsewhere.
	base := "intro\nbody\noutro"
	a := "intro\nbody\noutro\nappended by attacker"
	b := "intro\nbody EDITED\noutro"
	got, ok := Merge(base, a, b)
	if !ok {
		t.Fatal("append + disjoint edit must merge")
	}
	if !strings.Contains(got, "appended by attacker") || !strings.Contains(got, "body EDITED") {
		t.Fatalf("merge lost a change: %q", got)
	}
}

func TestMergeConflict(t *testing.T) {
	base := "x\ny\nz"
	a := "x\nY1\nz"
	b := "x\nY2\nz"
	if _, ok := Merge(base, a, b); ok {
		t.Fatal("overlapping different edits must conflict")
	}
}

func TestMergeBothSidesSameChange(t *testing.T) {
	base := "x\ny\nz"
	a := "x\nY\nz"
	b := "x\nY\nz"
	got, ok := Merge(base, a, b)
	if !ok || got != a {
		t.Fatalf("identical changes must merge cleanly: %q ok=%v", got, ok)
	}
}

func TestMergeInsertionsAtSamePoint(t *testing.T) {
	base := "a\nb"
	a := "a\nINS-A\nb"
	b := "a\nINS-B\nb"
	// Insertions of different text at the same point conflict.
	if _, ok := Merge(base, a, b); ok {
		t.Fatal("same-point different insertions must conflict")
	}
}

func TestMergeDeletions(t *testing.T) {
	base := "a\nb\nc\nd"
	a := "a\nc\nd" // deleted b
	b := "a\nb\nc" // deleted d
	got, ok := Merge(base, a, b)
	if !ok || got != "a\nc" {
		t.Fatalf("got %q ok=%v, want \"a\\nc\"", got, ok)
	}
}

func TestMergeEmptyBase(t *testing.T) {
	got, ok := Merge("", "added", "")
	if !ok || got != "added" {
		t.Fatalf("empty-base merge: %q ok=%v", got, ok)
	}
	if _, ok := Merge("", "one", "two"); ok {
		t.Fatal("two different creations must conflict")
	}
}

// TestPropertyMergeLaws checks the DESIGN.md merge invariants on random
// inputs: merge(base, x, base) == x and merge(base, base, x) == x, and a
// clean merge of one-sided edits never reports conflict.
func TestPropertyMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	words := []string{"alpha", "beta", "gamma", "delta", "eps"}
	randDoc := func(n int) string {
		lines := make([]string, rng.Intn(n))
		for i := range lines {
			lines[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(lines, "\n")
	}
	mutate := func(s string) string {
		lines := splitLines(s)
		if len(lines) == 0 {
			return words[rng.Intn(len(words))]
		}
		i := rng.Intn(len(lines))
		switch rng.Intn(3) {
		case 0:
			lines[i] = "edited-" + lines[i]
		case 1:
			lines = append(lines[:i], lines[i+1:]...)
		default:
			lines = append(lines[:i], append([]string{"inserted"}, lines[i:]...)...)
		}
		return strings.Join(lines, "\n")
	}
	for i := 0; i < 500; i++ {
		base := randDoc(8)
		x := mutate(base)
		if got, ok := Merge(base, x, base); !ok || got != x {
			t.Fatalf("merge(base,x,base): base=%q x=%q got=%q ok=%v", base, x, got, ok)
		}
		if got, ok := Merge(base, base, x); !ok || got != x {
			t.Fatalf("merge(base,base,x): base=%q x=%q got=%q ok=%v", base, x, got, ok)
		}
	}
}

// TestPropertyMergePreservesDisjointEdits: edits to lines far apart always
// merge and preserve both edits.
func TestPropertyMergePreservesDisjointEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		n := 10 + rng.Intn(10)
		lines := make([]string, n)
		for i := range lines {
			// Unique lines so LCS alignment is unambiguous.
			lines[i] = strings.Repeat("x", i+1)
		}
		base := strings.Join(lines, "\n")
		i := rng.Intn(n / 2)
		j := n/2 + 2 + rng.Intn(n/2-2)

		la := append([]string{}, lines...)
		la[i] = "edit-a"
		lb := append([]string{}, lines...)
		lb[j] = "edit-b"
		got, ok := Merge(base, strings.Join(la, "\n"), strings.Join(lb, "\n"))
		if !ok {
			t.Fatalf("disjoint edits conflicted (i=%d j=%d n=%d)", i, j, n)
		}
		if !strings.Contains(got, "edit-a") || !strings.Contains(got, "edit-b") {
			t.Fatalf("lost an edit: %q", got)
		}
	}
}
