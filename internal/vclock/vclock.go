// Package vclock provides the logical clock that orders all WARP actions.
//
// WARP's time-travel database and action history graph need a total order
// over queries, HTTP exchanges, and browser events. A logical (Lamport-style)
// counter gives that order deterministically, which keeps re-execution and
// the test suite reproducible; wall-clock time would not.
package vclock

import "sync/atomic"

// Infinity is the timestamp used for "still valid" row versions
// (the paper's ∞ end_time).
const Infinity int64 = 1<<63 - 1

// Stride is the gap between consecutive normal-execution timestamps.
// Repair needs to insert brand-new events (for example, queries a patched
// application issues that the original run did not) between original
// timestamps, so Tick leaves room.
const Stride int64 = 1024

// Clock is a monotonically increasing logical clock. The zero value is
// ready to use and starts at time Stride on the first Tick.
type Clock struct {
	t atomic.Int64
}

// Tick advances the clock by Stride and returns the new timestamp.
func (c *Clock) Tick() int64 { return c.t.Add(Stride) }

// Now returns the current timestamp without advancing the clock.
func (c *Clock) Now() int64 { return c.t.Load() }

// AdvanceTo moves the clock forward to at least t. It never moves the
// clock backwards.
func (c *Clock) AdvanceTo(t int64) {
	for {
		cur := c.t.Load()
		if cur >= t || c.t.CompareAndSwap(cur, t) {
			return
		}
	}
}
