//go:build !race

package bench

// raceEnabled reports whether the race detector is instrumenting this
// test binary; wall-time assertions are skipped under it.
const raceEnabled = false
