package ttdb

// Partition-granular locking (docs/repair.md).
//
// Through PR 1 every operation on a table — an exec, a two-phase
// re-execution, a rollback — held that table's single mutex for its full
// multi-statement span, so two repair workers touching disjoint rows of
// one hot table serialized at the DB layer even though the scheduler's
// dependency frontier had already proven them independent. This file
// replaces the table mutex with a per-table partition lock manager:
//
//   - an operation declares a *lock scope* before it runs: either a set
//     of keys in the table's designated lock column (the first declared
//     partition column) or the whole table;
//   - keyed scopes on disjoint keys run concurrently; a whole-table
//     scope excludes everything, which is the conservative fallback for
//     unpartitionable statements (no usable WHERE bound, a write to the
//     partition column itself, tables with no partition columns);
//   - acquisition is all-or-nothing under the manager's mutex with the
//     keys in sorted order, so operations cannot deadlock on partial
//     acquisitions within a table, and a pending whole-table request
//     blocks new keyed entrants so DDL/generation switches cannot
//     starve.
//
// Scopes are declared from static analysis (WHERE conjuncts, INSERT
// values, recorded write sets), so an operation can occasionally
// discover mid-flight that it must touch a row outside its scope — a
// uniqueness-revival collision landing in a sibling partition, a row
// whose partition column was rewritten after the original record. Such
// operations verify every row against their scope *before mutating* and
// return errScopeConflict; the entry point releases the keyed scope and
// retries once under the whole-table scope. Completed per-row rollbacks
// are idempotent, so the retry re-converges.
//
// Lock ordering is unchanged from PR 1: db.mu → table locks (lockAll in
// name order), and code holding a table scope never acquires db.mu.
// tableMeta.mu survives as a leaf *latch* for the table's in-memory
// bookkeeping (row-ID allocator, per-partition version index); it is
// held only for map/counter touches, never across a statement.

import (
	"errors"
	"sort"
	"sync"
	"time"

	"warp/internal/obs"
)

// errScopeConflict reports that an operation holding a keyed partition
// scope must touch a row outside that scope. Entry points catch it and
// retry under the whole-table scope.
var errScopeConflict = errors.New("ttdb: operation escaped its partition lock scope")

// lockScope names the slice of one table an operation locks: a sorted,
// distinct set of lock-column keys, or the whole table.
type lockScope struct {
	whole bool
	keys  []string
}

// wholeScope returns the scope covering the entire table.
func wholeScope() lockScope { return lockScope{whole: true} }

// keyScope returns a keyed scope over the given lock-column keys,
// sorted and de-duplicated. An empty key set is legal (the operation
// provably touches no rows) and conflicts with nothing but a
// whole-table scope.
func keyScope(keys []string) lockScope {
	sort.Strings(keys)
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return lockScope{keys: out}
}

// covers reports whether a lock-column key falls inside the scope.
func (s lockScope) covers(key string) bool {
	if s.whole {
		return true
	}
	i := sort.SearchStrings(s.keys, key)
	return i < len(s.keys) && s.keys[i] == key
}

// merge unions two scopes.
func (s lockScope) merge(o lockScope) lockScope {
	if s.whole || o.whole {
		return wholeScope()
	}
	return keyScope(append(append([]string{}, s.keys...), o.keys...))
}

// partLocks is one table's lock manager. Keyed scopes hold their keys
// exclusively; the whole-table scope excludes every keyed holder.
type partLocks struct {
	mu        sync.Mutex
	cond      *sync.Cond
	whole     bool
	wholeWait int
	held      map[string]bool
}

func newPartLocks() *partLocks {
	l := &partLocks{held: make(map[string]bool)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// lock blocks until the scope can be held. Keyed scopes are acquired
// all-or-nothing; a waiting whole-table scope bars new keyed entrants
// so it cannot starve.
func (l *partLocks) lock(s lockScope) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.whole {
		l.wholeWait++
		if l.whole || len(l.held) > 0 {
			var start time.Time
			if obs.Enabled() {
				start = time.Now()
			}
			for l.whole || len(l.held) > 0 {
				l.cond.Wait()
			}
			if !start.IsZero() {
				lockWaitHist.Observe(time.Since(start))
			}
		}
		l.wholeWait--
		l.whole = true
		wholeTableLocks.Add(1)
		return
	}
	if !l.available(s) {
		var start time.Time
		if obs.Enabled() {
			start = time.Now()
		}
		for !l.available(s) {
			l.cond.Wait()
		}
		if !start.IsZero() {
			lockWaitHist.Observe(time.Since(start))
		}
	}
	for _, k := range s.keys {
		l.held[k] = true
	}
	partitionsLocked.Add(int64(len(s.keys)))
}

// available reports whether a keyed scope could be taken right now.
// Called with l.mu held.
func (l *partLocks) available(s lockScope) bool {
	if l.whole || l.wholeWait > 0 {
		return false
	}
	for _, k := range s.keys {
		if l.held[k] {
			return false
		}
	}
	return true
}

// unlock releases a scope taken by lock.
func (l *partLocks) unlock(s lockScope) {
	l.mu.Lock()
	if s.whole {
		l.whole = false
		wholeTableLocks.Add(-1)
	} else {
		for _, k := range s.keys {
			delete(l.held, k)
		}
		partitionsLocked.Add(-int64(len(s.keys)))
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// lockScopeFor acquires the scope on a table and returns its meta with
// a release function.
func (db *DB) lockScope(table string, sc lockScope) (*tableMeta, func(), error) {
	m, err := db.meta(table)
	if err != nil {
		return nil, nil, err
	}
	m.locks.lock(sc)
	return m, func() { m.locks.unlock(sc) }, nil
}

// effectiveScope clamps a derived scope to the table's locking
// capability: tables without a lock column — and databases forced into
// table-granular mode — always use the whole-table scope.
func (m *tableMeta) effectiveScope(db *DB, sc lockScope) lockScope {
	if db.coarseLocks.Load() || m.lockCol == "" {
		return wholeScope()
	}
	return sc
}

// checkScope verifies one lock-column key against the scope, returning
// errScopeConflict when the operation would escape it.
func (s lockScope) check(key string) error {
	if !s.covers(key) {
		return errScopeConflict
	}
	return nil
}
