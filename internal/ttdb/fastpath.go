package ttdb

// The normal-operation select fast path.
//
// The slow path re-derives the augmented statement on every execution:
// clone the SELECT, expand stars, conjoin liveWhere(t, gen) with fresh
// literals. Because the literals change every call, the raw engine can
// never reuse a compiled plan for it. This file caches a *parameterized*
// augmentation on the statement's cached handle instead: the version
// predicate reads the visibility time and generation from two trailing
// parameters, so the augmented statement — and therefore its compiled
// plan in the raw engine — is reused verbatim across executions. The
// recorded Record is unchanged: Record.SQL stays the original
// statement's canonical text and Record.Params the application's
// parameters.
//
// The cache is invalidated by the raw engine's DDL epoch (star
// expansion depends on the table's user columns, and the engine
// re-plans on the same signal), and bypassed when the caller's
// parameter count disagrees with the statement's placeholder count —
// the slow path preserves the engine's out-of-range diagnostics.

import (
	"warp/internal/sqldb"
)

// stmtAug is the cached parameterized augmentation of one SELECT.
type stmtAug struct {
	epoch   uint64
	nStatic int // parameters the original statement expects
	handle  *sqldb.CachedStmt
}

// augSelectFor returns the cached augmentation of s, rebuilding it when
// the engine's DDL epoch moved. Concurrent rebuilds are benign
// (last-writer wins; both results are equivalent).
func (db *DB) augSelectFor(m *tableMeta, s *sqldb.Select, cs *sqldb.CachedStmt) *stmtAug {
	epoch := db.raw.Epoch()
	if a, ok := cs.Aux().(*stmtAug); ok && a.epoch == epoch {
		return a
	}
	nStatic := sqldb.CountParams(s)
	aug := s.Clone().(*sqldb.Select)
	expandStars(m, aug)
	aug.Where = sqldb.And(aug.Where, liveWhereParams(nStatic))
	a := &stmtAug{epoch: epoch, nStatic: nStatic, handle: sqldb.NewCachedStmt(aug)}
	cs.SetAux(a)
	return a
}

// updateAug is the cached parameterized augmentation of one UPDATE: the
// phase-1 capture select and the phase-2 in-place update. Both read the
// visibility time and generation from the two trailing parameters, and
// phase 2's start_time bump reads the same time parameter, so one
// extended parameter slice drives both phases.
type updateAug struct {
	epoch   uint64
	nStatic int
	sel     *sqldb.CachedStmt // phase 1: capture old physical versions
	upd     *sqldb.CachedStmt // phase 2: in-place update, start_time bumped
}

// deleteAug is the cached parameterized augmentation of one DELETE —
// the interval-closing UPDATE it executes as (end_time = t, §4.2).
type deleteAug struct {
	epoch   uint64
	nStatic int
	upd     *sqldb.CachedStmt
}

// augUpdateFor returns the cached augmentation of an UPDATE, rebuilding
// it when the engine's DDL epoch moved (the phase-1 capture column set
// depends on the table's columns). Concurrent rebuilds are benign.
func (db *DB) augUpdateFor(m *tableMeta, s *sqldb.Update, cs *sqldb.CachedStmt) *updateAug {
	epoch := db.raw.Epoch()
	if a, ok := cs.Aux().(*updateAug); ok && a.epoch == epoch {
		return a
	}
	n := sqldb.CountParams(s)
	sel := db.physicalSelect(m, liveCloneWhere(s.Where, n))
	upd := s.Clone().(*sqldb.Update)
	upd.Set = append(upd.Set, sqldb.Assignment{Column: ColStartTime, Expr: &sqldb.Param{Index: n}})
	upd.Where = liveCloneWhere(s.Where, n)
	upd.Returning = returningWithMeta(m, s.Returning)
	a := &updateAug{epoch: epoch, nStatic: n,
		sel: sqldb.NewCachedStmt(sel), upd: sqldb.NewCachedStmt(upd)}
	cs.SetAux(a)
	return a
}

// augDeleteFor returns the cached augmentation of a DELETE, rebuilding
// it when the engine's DDL epoch moved.
func (db *DB) augDeleteFor(m *tableMeta, s *sqldb.Delete, cs *sqldb.CachedStmt) *deleteAug {
	epoch := db.raw.Epoch()
	if a, ok := cs.Aux().(*deleteAug); ok && a.epoch == epoch {
		return a
	}
	n := sqldb.CountParams(s)
	upd := &sqldb.Update{
		Table:     s.Table,
		Set:       []sqldb.Assignment{{Column: ColEndTime, Expr: &sqldb.Param{Index: n}}},
		Where:     liveCloneWhere(s.Where, n),
		Returning: returningWithMeta(m, s.Returning),
	}
	a := &deleteAug{epoch: epoch, nStatic: n, upd: sqldb.NewCachedStmt(upd)}
	cs.SetAux(a)
	return a
}

// liveCloneWhere conjoins a fresh clone of an application WHERE with the
// parameterized visibility predicate.
func liveCloneWhere(where sqldb.Expr, n int) sqldb.Expr {
	var w sqldb.Expr
	if where != nil {
		w = where.CloneExpr()
	}
	return sqldb.And(w, liveWhereParams(n))
}

// extParams appends the visibility time and generation to the
// application's parameters, matching liveWhereParams(n)'s placeholders.
func extParams(params []sqldb.Value, n int, t, gen int64) []sqldb.Value {
	ext := make([]sqldb.Value, n+2)
	copy(ext, params)
	ext[n] = sqldb.Int(t)
	ext[n+1] = sqldb.Int(gen)
	return ext
}

// returningWithMeta is the application's RETURNING list plus the row-ID
// and partition columns every write path appends for fillWriteInfo.
func returningWithMeta(m *tableMeta, app []string) []string {
	ret := append(append([]string{}, app...), m.rowIDCol)
	for col := range m.partCols {
		ret = append(ret, col)
	}
	return ret
}

// expandStars replaces * select items with the application's columns so
// WARP's bookkeeping columns stay invisible. Shared by the cached fast
// path and the clone-per-execution slow path (exec.go), which must
// produce identical column sets. aug must be the caller's own clone.
func expandStars(m *tableMeta, aug *sqldb.Select) {
	var items []sqldb.SelectItem
	for _, it := range aug.Items {
		if it.Star {
			for _, c := range m.userCols {
				items = append(items, sqldb.SelectItem{Expr: sqldb.Col(c)})
			}
			continue
		}
		items = append(items, it)
	}
	aug.Items = items
}

// liveWhereParams is liveWhere with the visibility time and generation
// read from parameters n and n+1 instead of baked-in literals.
func liveWhereParams(n int) sqldb.Expr {
	tp := &sqldb.Param{Index: n}
	gp := &sqldb.Param{Index: n + 1}
	return sqldb.And(
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartTime), Right: tp},
		&sqldb.BinaryExpr{Op: sqldb.OpGt, Left: sqldb.Col(ColEndTime), Right: tp},
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: gp},
		&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: gp},
	)
}
