// The SLO throttle governor (docs/repair.md "Online repair"): paces
// repair workers against a live-request latency target.
//
// An online repair competes with normal execution for CPU and for
// partition locks. Config.RepairSLO names the live p99 the operator is
// willing to trade repair speed for; while a repair drains, the governor
// samples the warp_core_request_seconds histogram on a short ticker,
// computes the p99 of each window's delta, and moves the scheduler's
// dispatch ceiling one worker at a time — down when the window's p99
// exceeds the SLO, back up when it clears 70% of it. Windows with no
// live traffic recover concurrency, so an idle deployment repairs at
// full speed. The governor is additive-increase/additive-decrease on
// purpose: repair items are short, so one-step moves converge in a few
// windows, and the floor of one worker keeps the repair always making
// progress toward its own completion.
package core

import (
	"time"
)

// throttleInterval is the governor's sampling window.
const throttleInterval = 10 * time.Millisecond

// throttleGovernor runs beside one online repair session.
type throttleGovernor struct {
	sched *scheduler
	slo   time.Duration
	stop  chan struct{}
	done  chan struct{}
}

// startThrottle launches the governor. Callers gate on RepairSLO > 0 and
// obs.Enabled() — without the request histogram there is nothing to
// read.
func startThrottle(sched *scheduler, slo time.Duration) *throttleGovernor {
	g := &throttleGovernor{sched: sched, slo: slo, stop: make(chan struct{}), done: make(chan struct{})}
	throttleLevel.Set(int64(sched.workers))
	go g.run()
	return g
}

func (g *throttleGovernor) run() {
	defer close(g.done)
	limit := g.sched.workers
	prev := requestHist.Snapshot()
	ticker := time.NewTicker(throttleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		cur := requestHist.Snapshot()
		delta := cur.Sub(prev)
		prev = cur
		next := limit
		if delta.Count == 0 {
			// No live requests completed this window: nothing to protect,
			// recover concurrency.
			if limit < g.sched.workers {
				next = limit + 1
			}
		} else {
			p99 := delta.Quantile(0.99)
			switch {
			case p99 > g.slo && limit > 1:
				next = limit - 1
			case p99 < g.slo*7/10 && limit < g.sched.workers:
				next = limit + 1
			}
		}
		if next != limit {
			limit = next
			g.sched.setWorkerLimit(limit)
			throttleLevel.Set(int64(limit))
		}
	}
}

// halt stops the governor and lifts its cap.
func (g *throttleGovernor) halt() {
	close(g.stop)
	<-g.done
	g.sched.setWorkerLimit(0)
	throttleLevel.Set(0)
}
