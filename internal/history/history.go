// Package history implements WARP's action history graph, the data
// structure WARP borrows from Retro (paper §2.1, Figure 1).
//
// A node represents the history of some part of the system over time — a
// source code file, a database partition, an HTTP exchange, a browser page
// visit, a client's cookie. An action represents a unit of (re-)executable
// work — an application run, a database query, a browser page execution, a
// retroactive patch — with input and output dependencies on nodes at
// specific times.
//
// During normal execution the repair managers append actions; during repair
// the controller walks the graph to find what must be re-executed. The
// graph maintains per-node time-sorted indexes so the controller can load
// only the parts of the graph an attack actually touched (the paper's
// incremental loading, §8.5).
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID names a node. IDs are structured strings, built by the helper
// constructors below.
type NodeID string

// FileNode returns the node for an application source file.
func FileNode(name string) NodeID { return NodeID("file:" + name) }

// PartitionNode returns the node for a database partition. Partition is
// the string form of a ttdb.Partition.
func PartitionNode(partition string) NodeID { return NodeID("part:" + partition) }

// PartitionName returns the partition string of a partition node, undoing
// PartitionNode. ok is false for nodes of other kinds.
func (n NodeID) PartitionName() (string, bool) {
	const prefix = "part:"
	s := string(n)
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return "", false
	}
	return s[len(prefix):], true
}

// partitionTable splits a partition node into its table and whether it
// is the whole-table wildcard. Partition strings are "<table>/*" or
// "<table>/<column>=<key>" (ttdb.Partition.String); table names are SQL
// identifiers, so the first "/" is unambiguous.
func (n NodeID) partitionTable() (table string, whole bool, ok bool) {
	name, ok := n.PartitionName()
	if !ok {
		return "", false, false
	}
	i := strings.IndexByte(name, '/')
	if i <= 0 {
		return "", false, false
	}
	return name[:i], name[i+1:] == "*", true
}

// wholeTableNode returns the wildcard partition node of a table.
func wholeTableNode(table string) NodeID { return PartitionNode(table + "/*") }

// HTTPNode returns the node for one HTTP exchange, identified by the
// browser-assigned ⟨client, visit, request⟩ tuple (§5.1).
func HTTPNode(clientID string, visitID, requestID int64) NodeID {
	return NodeID(fmt.Sprintf("http:%s/%d/%d", clientID, visitID, requestID))
}

// VisitNode returns the node for a browser page visit.
func VisitNode(clientID string, visitID int64) NodeID {
	return NodeID(fmt.Sprintf("visit:%s/%d", clientID, visitID))
}

// CookieNode returns the node for a client's cookie state.
func CookieNode(clientID string) NodeID { return NodeID("cookie:" + clientID) }

// ActionID identifies an action in the graph.
type ActionID int64

// Kind classifies actions.
type Kind uint8

// Action kinds.
const (
	KindAppRun    Kind = iota // one run of application code (a "PHP execution")
	KindQuery                 // one SQL query issued by a run
	KindPageVisit             // one browser page execution
	KindPatch                 // a retroactive patch application
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAppRun:
		return "app-run"
	case KindQuery:
		return "query"
	case KindPageVisit:
		return "page-visit"
	case KindPatch:
		return "patch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Dep is a dependency edge endpoint: a node at a time.
type Dep struct {
	Node NodeID
	Time int64
}

// Action is one unit of recorded, re-executable work.
type Action struct {
	ID      ActionID
	Kind    Kind
	Time    int64 // when the action started (logical clock)
	Inputs  []Dep
	Outputs []Dep
	// Payload carries the kind-specific record (an app-run record, a query
	// record, a page-visit record). The repair managers interpret it.
	Payload any
}

// Observer receives graph change events, in the order they commit. It
// is how a persistence layer follows the graph without the graph knowing
// anything about storage (internal/store encodes these events as WAL
// records); the graph is fully usable with no observer set.
//
// Callbacks run inside the graph's critical section, so the append order
// an observer sees is exactly the graph's order. Implementations must
// not call back into the Graph.
type Observer interface {
	// ActionAppended fires after an action is assigned its ID and
	// indexed. The action's payload is shared, not copied.
	ActionAppended(a *Action)
	// GraphCollected fires after GC removed actions older than
	// beforeTime.
	GraphCollected(beforeTime int64)
}

// Graph is the action history graph. It is safe for concurrent use.
type Graph struct {
	mu      sync.RWMutex
	actions map[ActionID]*Action
	order   []ActionID // in append (≈ time) order
	nextID  ActionID
	obs     Observer

	// Per-node indexes: actions that read from / wrote to a node, in
	// append order.
	readers map[NodeID][]ActionID
	writers map[NodeID][]ActionID

	// loadedNodes counts distinct nodes touched by repair-time lookups,
	// approximating the paper's incremental graph loading cost metric.
	loadedNodes map[NodeID]bool

	// tableNodes indexes every partition node seen on a dependency edge
	// by its table, so the action-level dependency API can honor
	// whole-table ↔ keyed-partition overlap (a write to "t/*" depends on
	// readers of every "t/..." node and vice versa).
	tableNodes map[string]map[NodeID]bool

	// muts counts structural mutations (appends, restores, dependency
	// extensions, GC). The persistence layer compares it against the
	// count at the last checkpoint to decide whether the graph section
	// must be rewritten — the graph's side of dirty tracking. In-place
	// payload mutations (repair superseding actions) do not pass through
	// the graph and are force-marked by the repair commit path instead.
	muts int64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		actions:     make(map[ActionID]*Action),
		readers:     make(map[NodeID][]ActionID),
		writers:     make(map[NodeID][]ActionID),
		loadedNodes: make(map[NodeID]bool),
		tableNodes:  make(map[string]map[NodeID]bool),
		nextID:      1,
	}
}

// indexPartitionNode records a partition node in the per-table index.
// Caller holds g.mu.
func (g *Graph) indexPartitionNode(n NodeID) {
	table, _, ok := n.partitionTable()
	if !ok {
		return
	}
	byTable := g.tableNodes[table]
	if byTable == nil {
		byTable = make(map[NodeID]bool)
		g.tableNodes[table] = byTable
	}
	byTable[n] = true
}

// relatedPartitionNodes returns the other nodes whose partitions overlap
// n: the table's wildcard node for a keyed partition, every indexed node
// of the table for the wildcard. Caller holds g.mu (read side is fine:
// the index is only grown under the write lock).
func (g *Graph) relatedPartitionNodes(n NodeID) []NodeID {
	table, whole, ok := n.partitionTable()
	if !ok {
		return nil
	}
	if !whole {
		w := wholeTableNode(table)
		if g.tableNodes[table][w] {
			return []NodeID{w}
		}
		return nil
	}
	var out []NodeID
	for other := range g.tableNodes[table] {
		if other != n {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetObserver installs the graph's change observer (nil to remove).
// Install before concurrent use; the observer is not re-notified of
// actions already in the graph.
func (g *Graph) SetObserver(o Observer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.obs = o
}

// Append records a new action and returns its assigned ID.
func (g *Graph) Append(a *Action) ActionID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.muts++
	a.ID = g.nextID
	g.nextID++
	g.actions[a.ID] = a
	g.order = append(g.order, a.ID)
	for _, d := range a.Inputs {
		g.readers[d.Node] = append(g.readers[d.Node], a.ID)
		g.indexPartitionNode(d.Node)
	}
	for _, d := range a.Outputs {
		g.writers[d.Node] = append(g.writers[d.Node], a.ID)
		g.indexPartitionNode(d.Node)
	}
	if g.obs != nil {
		g.obs.ActionAppended(a)
	}
	return a.ID
}

// RestoreAction re-appends a previously recorded action during recovery,
// preserving its original ID (recovery replays actions in their logged
// append order, so the graph's order is reproduced exactly). The
// observer is not notified: restored actions are already durable.
func (g *Graph) RestoreAction(a *Action) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a.ID <= 0 {
		return fmt.Errorf("history: restore of action without ID")
	}
	if _, exists := g.actions[a.ID]; exists {
		return fmt.Errorf("history: restore of duplicate action %d", a.ID)
	}
	g.muts++
	g.actions[a.ID] = a
	g.order = append(g.order, a.ID)
	for _, d := range a.Inputs {
		g.readers[d.Node] = append(g.readers[d.Node], a.ID)
		g.indexPartitionNode(d.Node)
	}
	for _, d := range a.Outputs {
		g.writers[d.Node] = append(g.writers[d.Node], a.ID)
		g.indexPartitionNode(d.Node)
	}
	if a.ID >= g.nextID {
		g.nextID = a.ID + 1
	}
	return nil
}

// Get returns an action by ID, or nil if unknown (e.g. collected).
func (g *Graph) Get(id ActionID) *Action {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.actions[id]
}

// AddDeps extends an existing action with additional dependencies,
// indexing them. Repair uses this when a re-executed query's record
// replaces the original in place but touches new partitions.
func (g *Graph) AddDeps(id ActionID, inputs, outputs []Dep) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.actions[id]
	if a == nil {
		return
	}
	g.muts++
	have := make(map[Dep]bool, len(a.Inputs)+len(a.Outputs))
	for _, d := range a.Inputs {
		have[d] = true
	}
	for _, d := range inputs {
		if !have[d] {
			a.Inputs = append(a.Inputs, d)
			g.readers[d.Node] = append(g.readers[d.Node], id)
			g.indexPartitionNode(d.Node)
		}
	}
	have = make(map[Dep]bool, len(a.Outputs))
	for _, d := range a.Outputs {
		have[d] = true
	}
	for _, d := range outputs {
		if !have[d] {
			a.Outputs = append(a.Outputs, d)
			g.writers[d.Node] = append(g.writers[d.Node], id)
			g.indexPartitionNode(d.Node)
		}
	}
}

// DepsOf returns copies of an action's input and output dependency edges.
// Unlike reading Action.Inputs/Outputs directly, DepsOf is safe against a
// concurrent AddDeps extending the action: the repair scheduler uses it to
// derive work-item footprints without re-deriving partition sets from the
// underlying query records.
func (g *Graph) DepsOf(id ActionID) (inputs, outputs []Dep) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a := g.actions[id]
	if a == nil {
		return nil, nil
	}
	return append([]Dep{}, a.Inputs...), append([]Dep{}, a.Outputs...)
}

// PartitionDeps is the dependency-edge view of one action with its
// partition edges pre-split from its plain node edges: the partition
// names (ttdb.Partition string forms, parseable with ttdb.ParsePartition)
// an action reads and writes, and the remaining non-partition nodes
// (HTTP exchanges, cookies, files). The repair scheduler's frontier
// builds work-item footprints from this view, so two actions on the same
// table are admitted concurrently exactly when their partition sets do
// not overlap.
type PartitionDeps struct {
	PartReads  []string
	PartWrites []string
	NodeReads  []NodeID
	NodeWrites []NodeID
}

// PartitionDepsOf returns an action's dependency edges split into
// partition edges and plain node edges. Like DepsOf it is safe against a
// concurrent AddDeps.
func (g *Graph) PartitionDepsOf(id ActionID) PartitionDeps {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var pd PartitionDeps
	a := g.actions[id]
	if a == nil {
		return pd
	}
	for _, d := range a.Inputs {
		if name, ok := d.Node.PartitionName(); ok {
			pd.PartReads = append(pd.PartReads, name)
		} else {
			pd.NodeReads = append(pd.NodeReads, d.Node)
		}
	}
	for _, d := range a.Outputs {
		if name, ok := d.Node.PartitionName(); ok {
			pd.PartWrites = append(pd.PartWrites, name)
		} else {
			pd.NodeWrites = append(pd.NodeWrites, d.Node)
		}
	}
	return pd
}

// Deps returns the distinct actions the given action depends on: every
// action with an output edge to one of its input nodes at or before its
// time. The result is in (time, ID) order and excludes the action itself.
func (g *Graph) Deps(id ActionID) []ActionID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a := g.actions[id]
	if a == nil {
		return nil
	}
	seen := make(map[ActionID]bool)
	var out []*Action
	for _, d := range a.Inputs {
		for _, node := range append([]NodeID{d.Node}, g.relatedPartitionNodes(d.Node)...) {
			for _, wid := range g.writers[node] {
				w := g.actions[wid]
				if w == nil || wid == id || seen[wid] || w.Time > a.Time {
					continue
				}
				seen[wid] = true
				out = append(out, w)
			}
		}
	}
	return sortedIDs(out)
}

// Dependents returns the distinct actions depending on the given action:
// every action with an input edge from one of its output nodes at or after
// its time. The result is in (time, ID) order and excludes the action
// itself. Deps and Dependents are the action-level dependency-edge view of
// the graph; the repair scheduler consumes the node-level view (DepsOf)
// to build work-item footprints.
func (g *Graph) Dependents(id ActionID) []ActionID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a := g.actions[id]
	if a == nil {
		return nil
	}
	seen := make(map[ActionID]bool)
	var out []*Action
	for _, d := range a.Outputs {
		for _, node := range append([]NodeID{d.Node}, g.relatedPartitionNodes(d.Node)...) {
			for _, rid := range g.readers[node] {
				r := g.actions[rid]
				if r == nil || rid == id || seen[rid] || r.Time < a.Time {
					continue
				}
				seen[rid] = true
				out = append(out, r)
			}
		}
	}
	return sortedIDs(out)
}

func sortedIDs(acts []*Action) []ActionID {
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].Time != acts[j].Time {
			return acts[i].Time < acts[j].Time
		}
		return acts[i].ID < acts[j].ID
	})
	ids := make([]ActionID, len(acts))
	for i, a := range acts {
		ids[i] = a.ID
	}
	return ids
}

// Len returns the number of live actions.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.actions)
}

// Readers returns the actions with an input dependency on node at or after
// fromTime, in time order.
func (g *Graph) Readers(node NodeID, fromTime int64) []*Action {
	return g.lookup(g.readers, node, fromTime)
}

// Writers returns the actions with an output dependency on node at or
// after fromTime, in time order.
func (g *Graph) Writers(node NodeID, fromTime int64) []*Action {
	return g.lookup(g.writers, node, fromTime)
}

func (g *Graph) lookup(index map[NodeID][]ActionID, node NodeID, fromTime int64) []*Action {
	g.mu.Lock()
	g.loadedNodes[node] = true
	ids := index[node]
	out := make([]*Action, 0, len(ids))
	for _, id := range ids {
		a := g.actions[id]
		if a != nil && a.Time >= fromTime {
			out = append(out, a)
		}
	}
	g.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// ByKind returns all live actions of a kind, in time order. Used by
// repair initialization (e.g. find every app run that loaded a file) and by
// tests.
func (g *Graph) ByKind(k Kind) []*Action {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Action
	for _, id := range g.order {
		a := g.actions[id]
		if a != nil && a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// All returns every live action in append order.
func (g *Graph) All() []*Action {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Action, 0, len(g.order))
	for _, id := range g.order {
		if a := g.actions[id]; a != nil {
			out = append(out, a)
		}
	}
	return out
}

// LoadedNodes reports how many distinct nodes repair-time lookups have
// touched, the incremental-loading metric of §8.5.
func (g *Graph) LoadedNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.loadedNodes)
}

// ResetLoadStats clears the loaded-node accounting (e.g. between repairs).
func (g *Graph) ResetLoadStats() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.loadedNodes = make(map[NodeID]bool)
}

// GC removes actions older than beforeTime, in sync with the time-travel
// database's version GC (§4.2): repair needs both the old row versions and
// the graph entries, so both horizons move together.
func (g *Graph) GC(beforeTime int64) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := 0
	keep := g.order[:0]
	for _, id := range g.order {
		a := g.actions[id]
		if a == nil {
			continue
		}
		if a.Time < beforeTime {
			delete(g.actions, id)
			removed++
			continue
		}
		keep = append(keep, id)
	}
	g.order = keep
	if removed > 0 {
		g.muts++
		// Rebuild indexes without the dead actions.
		g.readers = make(map[NodeID][]ActionID)
		g.writers = make(map[NodeID][]ActionID)
		g.tableNodes = make(map[string]map[NodeID]bool)
		for _, id := range g.order {
			a := g.actions[id]
			for _, d := range a.Inputs {
				g.readers[d.Node] = append(g.readers[d.Node], a.ID)
				g.indexPartitionNode(d.Node)
			}
			for _, d := range a.Outputs {
				g.writers[d.Node] = append(g.writers[d.Node], a.ID)
				g.indexPartitionNode(d.Node)
			}
		}
	}
	if removed > 0 && g.obs != nil {
		g.obs.GraphCollected(beforeTime)
	}
	return removed
}

// MutationCount returns the number of structural mutations the graph
// has seen. The persistence layer snapshots it at checkpoint time and
// rewrites the graph section only when it has advanced since.
func (g *Graph) MutationCount() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.muts
}

// ApproxBytes estimates the log size of the graph, for Table 6 storage
// accounting. sizer is consulted for each payload; it may be nil.
func (g *Graph) ApproxBytes(sizer func(payload any) int) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, a := range g.actions {
		n += 16 // id + time
		for _, d := range a.Inputs {
			n += len(d.Node) + 8
		}
		for _, d := range a.Outputs {
			n += len(d.Node) + 8
		}
		if sizer != nil {
			n += sizer(a.Payload)
		}
	}
	return n
}
