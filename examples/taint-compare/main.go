// taint-compare runs one of the paper's §8.4 comparisons: the same
// data-corruption bug recovered by the taint-tracking baseline (offline
// dependency analysis with policies, administrator-guided) and by WARP
// (retroactive patching, automatic and exact).
package main

import (
	"fmt"

	"warp/internal/taint"
)

func main() {
	cmp, err := taint.RunComparison(taint.BugLostVotes, 60)
	must(err)

	fmt.Printf("bug: %s\n", cmp.Bug)
	fmt.Printf("ground-truth corrupted rows: %d\n\n", cmp.Corrupted)

	fmt.Println("taint-tracking baseline (administrator identifies the buggy request):")
	for _, p := range cmp.Baseline {
		fmt.Printf("  policy %-15s false positives %3d   false negatives %d\n",
			p.Policy, p.FalsePositives, p.FalseNegatives)
	}
	fmt.Println("  → narrow policies miss derived corruption; broad ones roll back")
	fmt.Println("    legitimate rows. The administrator must pick and guide.")

	fmt.Printf("\nWARP (retroactive patch, no administrator guidance):\n")
	fmt.Printf("  rows differing from bug-free oracle after repair: %d\n", cmp.WARPFalsePositives)
	fmt.Printf("  conflicts requiring user input: %d\n", cmp.WARPConflicts)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
