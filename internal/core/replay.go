// Run, query, and page-visit re-execution: the repair controller's
// replay layer. These handlers run on scheduler workers; shared session
// state is guarded by session.mu, database access by ttdb's per-table
// locks, and graph access by the graph's own lock.
package core

import (
	"fmt"
	"net/url"
	"sort"
	"time"

	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/httpd"
	"warp/internal/merge"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

//
// Query re-checking and re-execution (§4)
//

func (rs *session) processQuery(it *workItem) error {
	act := rs.w.Graph.Get(it.action)
	if act == nil {
		return nil
	}
	payload := act.Payload.(*QueryPayload)
	if payload.Superseded.Load() {
		return nil
	}
	// If the owning run is itself queued, its re-execution covers this
	// query.
	if rs.sched.isPending(runKeyOf(payload.RunAction)) {
		return nil
	}
	rec := payload.Rec

	oldOutcome := rec.Outcome()
	rec.Params = rs.mergeLiveText(rec, rec.Params)
	rs.tracef("qcheck t=%d kind=%s sql=%.60s", rec.Time, rec.Kind, rec.SQL)
	t0 := time.Now()
	_, newRec, err := rs.w.DB.ReExec(rec.SQL, rec.Params, rec.Time, origForReExec(rec))
	rs.tDB.Add(int64(time.Since(t0)))
	rs.markQuery(act.ID)
	if err != nil && newRec == nil {
		return fmt.Errorf("warp: re-executing %q: %w", rec.SQL, err)
	}
	if rec.IsWrite() {
		// Re-applied write: the re-executed record replaces the original
		// *in place*, so the query action and the owning run record (which
		// share the pointer) both see the repaired-timeline state, and the
		// action's identity is stable, which bounds reprocessing. Newly
		// touched partitions are indexed onto the same action.
		*rec = *newRec
		var ins, outs []history.Dep
		rs.w.mu.Lock()
		for _, p := range rec.ReadPartitions {
			ins = append(ins, history.Dep{Node: rs.w.partNode(p), Time: rec.Time})
		}
		for _, p := range rec.WritePartitions {
			outs = append(outs, history.Dep{Node: rs.w.partNode(p), Time: rec.Time})
		}
		rs.w.mu.Unlock()
		rs.w.Graph.AddDeps(act.ID, ins, outs)
		rs.addDirt(rec.WritePartitions, rec.Time)
	}
	if newRec.Outcome() != oldOutcome {
		// The query's observable result changed: the application run that
		// issued it may behave differently (§4, §7).
		rs.passChanges.Add(1)
		if runAct := rs.w.Graph.Get(payload.RunAction); runAct != nil {
			rs.enqueueRun(runAct)
		}
	}
	return nil
}

// mergeLiveText reconciles a live write logged during this repair with
// a concurrent repair of the same row (docs/repair.md "Online repair").
// When the record is a mergeable UPDATE — one row, one text column —
// and the repair generation holds a different value for that row than
// the one the live writer overwrote, the two edits are three-way merged
// (the live write's pre-image as base, the repaired value as theirs,
// the live parameter as ours) and the merged text replaces the write's
// parameter. The merge is computed once and memoized per write
// (session.mergedLive): the owning run's replay re-derives the raw
// request parameters on every pass, so without the memo the merged and
// raw values would alternate and the fixpoint could not converge. A
// conflicting merge keeps the live write unchanged: last-writer-wins,
// the same outcome exclusive repair would produce by replaying the
// write after the repaired state. Records from before the session never
// merge, so repair of historical timelines is untouched.
func (rs *session) mergeLiveText(orig *ttdb.Record, params []sqldb.Value) []sqldb.Value {
	if orig == nil || orig.Time <= rs.liveSince {
		return params
	}
	info, ok := rs.w.DB.MergeableUpdate(orig)
	if !ok || info.ParamIdx >= len(params) || params[info.ParamIdx].Kind != sqldb.KindText {
		return params
	}
	key := fmt.Sprintf("%s\x00%s\x00%d", orig.Table, orig.WriteRowIDs[0].Key(), orig.Time)
	rs.mu.Lock()
	merged, seen := rs.mergedLive[key]
	rs.mu.Unlock()
	if !seen {
		if !orig.HasPreImage {
			return params
		}
		theirs, ok := rs.w.DB.RepairValueBefore(info, orig.WriteRowIDs[0], orig.Time)
		if !ok {
			return params
		}
		base, ours := orig.PreImage, params[info.ParamIdx].Str
		if theirs == base || theirs == ours {
			// The repair did not change the row the live writer saw (or
			// both sides agree): the write as recorded is already correct.
			return params
		}
		var clean bool
		merged, clean = merge.Merge(base, theirs, ours)
		if !clean {
			mergeConflicts.Inc()
			rs.tracef("merge conflict t=%d table=%s row kept live value", orig.Time, orig.Table)
			return params
		}
		rs.mu.Lock()
		if prev, dup := rs.mergedLive[key]; dup {
			merged = prev // another worker merged first; keep its result
		} else {
			rs.mergedLive[key] = merged
		}
		rs.mu.Unlock()
		liveWritesMerged.Inc()
		rs.tracef("merged live write t=%d table=%s", orig.Time, orig.Table)
	}
	out := append([]sqldb.Value{}, params...)
	out[info.ParamIdx] = sqldb.Text(merged)
	return out
}

// origForReExec passes the original record for write re-execution (two-
// phase re-execution needs the original write set); reads re-execute
// standalone.
func origForReExec(rec *ttdb.Record) *ttdb.Record {
	if rec.IsWrite() {
		return rec
	}
	return nil
}

//
// Run re-execution (§3.3)
//

func (rs *session) processRun(it *workItem) error {
	act := rs.w.Graph.Get(it.action)
	if act == nil {
		return nil
	}
	payload := act.Payload.(*RunPayload)
	if payload.Superseded.Load() {
		return nil
	}
	_, err := rs.executeRun(act, payload.Rec.Req.Clone())
	return err
}

// origRunFor resolves the original-timeline run action for an HTTP
// exchange node, memoizing the first sighting (before repair overwrites
// the latest-run map).
func (rs *session) origRunFor(node history.NodeID) *history.Action {
	rs.mu.Lock()
	id, ok := rs.origRuns[node]
	rs.mu.Unlock()
	if ok {
		return rs.w.Graph.Get(id)
	}
	rs.w.mu.Lock()
	id, ok = rs.w.runByHTTP[node]
	rs.w.mu.Unlock()
	if !ok {
		return nil
	}
	rs.mu.Lock()
	if prev, dup := rs.origRuns[node]; dup {
		id = prev // another worker memoized first; keep its sighting
	} else {
		rs.origRuns[node] = id
	}
	rs.mu.Unlock()
	return rs.w.Graph.Get(id)
}

// runClean reports whether a recorded run would re-execute identically:
// same code versions and no query read from a partition dirtied at or
// before the query's time.
func (rs *session) runClean(payload *RunPayload) bool {
	if payload.Superseded.Load() {
		return false
	}
	for f, ver := range payload.FileVersions {
		if rs.w.Runtime.FileVersion(f) != ver {
			return false
		}
	}
	for _, q := range payload.Rec.Queries {
		if rs.dirtyAt(q.ReadPartitions, q.Time) {
			return false
		}
		if q.IsWrite() && rs.dirtyAt(q.WritePartitions, q.Time) {
			return false
		}
	}
	return true
}

// executeRun re-executes one application run in the repair generation,
// re-matching its queries, undoing writes it no longer performs, and
// cascading to the browser when its response changed. Returns the new
// response.
func (rs *session) executeRun(origAct *history.Action, req *httpd.Request) (*httpd.Response, error) {
	origPayload := origAct.Payload.(*RunPayload)
	orig := origPayload.Rec
	node := rs.w.httpNodeForReplay(req)
	// Remember the original mapping before it is overwritten.
	rs.mu.Lock()
	if _, ok := rs.origRuns[node]; !ok {
		rs.origRuns[node] = origAct.ID
	}
	rs.mu.Unlock()

	file, ok := rs.w.Runtime.RouteOf(req.Path)
	if !ok {
		return httpd.NotFound("no route for " + req.Path), nil
	}

	matcher := newQueryMatcher(orig.Queries)
	lastTime := origAct.Time
	qf := func(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error) {
		cs, err := rs.w.DB.Prepare(sql)
		if err != nil {
			return nil, nil, err
		}
		// Match against the original run's queries by normalized SQL text
		// (records store the parsed statement's canonical form, which the
		// cached handle carries without re-rendering).
		origRec := matcher.match(cs.Canonical())
		var t int64
		if origRec != nil {
			t = origRec.Time
			// A replayed live write re-derives its raw request parameters;
			// re-apply (or compute) the three-way merge with the repaired
			// row so the run-level replay preserves both sides too.
			params = rs.mergeLiveText(origRec, params)
		} else {
			// A brand-new query: give it a fresh slot just after the
			// previous query of this run (the clock strides leave room).
			lastTime++
			t = lastTime
		}
		t0 := time.Now()
		res, newRec, err := rs.w.DB.ReExecPrepared(cs, params, t, origRec)
		rs.tDB.Add(int64(time.Since(t0)))
		if newRec != nil {
			lastTime = newRec.Time
			if newRec.IsWrite() {
				rs.tracef("  run-query write t=%d sql=%.60s", t, sql)
				rs.addDirt(newRec.WritePartitions, t)
			}
		}
		return res, newRec, err
	}

	t0 := time.Now()
	dbBefore := rs.tDB.Load()
	newRec, err := rs.w.Runtime.Run(file, req, qf, orig)
	rs.tApp.Add(int64(time.Since(t0)) - (rs.tDB.Load() - dbBefore))
	if err != nil {
		return nil, err
	}
	rs.markRun(origAct.ID)

	// Undo the effects of original queries the new code no longer issues
	// (e.g. the attack's writes, §2.2).
	for _, rec := range matcher.unconsumedWrites() {
		if err := rs.rollbackWrite(rec); err != nil {
			return nil, err
		}
	}

	// The original run and its queries no longer describe the timeline.
	origPayload.Superseded.Store(true)
	for _, qid := range origPayload.QueryActions {
		if qa := rs.w.Graph.Get(qid); qa != nil {
			qa.Payload.(*QueryPayload).Superseded.Store(true)
		}
	}
	repaired := true
	rs.w.recordRun(newRec, &repaired)

	// Cascade to the browser if the client-visible response changed (§5).
	if orig.Resp != nil && newRec.Resp != nil && orig.Resp.Fingerprint() != newRec.Resp.Fingerprint() {
		rs.tracef("run %s %s changed response (visit %s/%d)", req.Method, req.Path, orig.Req.ClientID, orig.Req.VisitID)
		rs.cascadeToBrowser(orig.Req)
	}
	rs.mu.Lock()
	rs.served[node] = &servedEntry{reqFP: req.Fingerprint(), resp: newRec.Resp}
	rs.mu.Unlock()
	return newRec.Resp, nil
}

// cascadeToBrowser queues the page visit that received a changed response,
// or queues a conflict when the client has no extension log (§2.3).
func (rs *session) cascadeToBrowser(req *httpd.Request) {
	if req.ClientID == "" {
		rs.addConflict(browser.Conflict{
			Kind:   browser.ConflictNoLog,
			Client: req.ClientID,
			Detail: fmt.Sprintf("response to %s %s changed but the client has no extension log", req.Method, req.Path),
		})
		return
	}
	rs.w.mu.Lock()
	vlog := rs.w.visitByID[req.ClientID][req.VisitID]
	rs.w.mu.Unlock()
	if vlog == nil {
		rs.addConflict(browser.Conflict{
			Kind:    browser.ConflictNoLog,
			Client:  req.ClientID,
			VisitID: req.VisitID,
			Detail:  "changed response for a visit with no uploaded log",
		})
		return
	}
	rs.enqueueVisit(vlog)
}

// rollbackWrite undoes one recorded write query.
func (rs *session) rollbackWrite(rec *ttdb.Record) error {
	if len(rec.WriteRowIDs) == 0 {
		rs.addDirt(rec.WritePartitions, rec.Time)
		return nil
	}
	rs.tracef("rollback write t=%d table=%s rows=%d sql=%.60s", rec.Time, rec.Table, len(rec.WriteRowIDs), rec.SQL)
	t0 := time.Now()
	sp := rs.obsTrace.Begin("rollback")
	dirt, err := rs.w.DB.RollbackRows(rec.Table, rec.WriteRowIDs, rec.Time)
	sp.End()
	rs.tDB.Add(int64(time.Since(t0)))
	if err != nil {
		return err
	}
	rs.addDirt(append(dirt, rec.WritePartitions...), rec.Time)
	return nil
}

// cancelExchange undoes the application run behind one HTTP exchange.
func (rs *session) cancelExchange(clientID string, visitID, requestID int64) {
	rs.tracef("cancel exchange %s/%d/%d", clientID, visitID, requestID)
	node := history.HTTPNode(clientID, visitID, requestID)
	act := rs.origRunFor(node)
	if act == nil {
		return
	}
	rs.cancelRun(act.Payload.(*RunPayload), clientID, visitID)
}

// cancelRun undoes one recorded application run: its writes are rolled
// back and the run and its queries leave the repaired timeline. Shared by
// exchange cancellation (UndoVisit, dropped replay requests) and
// partition cancellation (UndoPartition).
func (rs *session) cancelRun(payload *RunPayload, clientID string, visitID int64) {
	if payload.Superseded.Load() {
		return
	}
	for _, q := range payload.Rec.Queries {
		if q.IsWrite() {
			if err := rs.rollbackWrite(q); err != nil {
				// Rollback beyond the GC horizon is the only failure here;
				// surface it as a conflict rather than wedging repair.
				rs.addConflict(browser.Conflict{
					Kind: browser.ConflictNoLog, Client: clientID, VisitID: visitID,
					Detail: fmt.Sprintf("cannot undo %q: %v", q.SQL, err),
				})
			}
		}
	}
	payload.Superseded.Store(true)
	for _, qid := range payload.QueryActions {
		if qa := rs.w.Graph.Get(qid); qa != nil {
			qa.Payload.(*QueryPayload).Superseded.Store(true)
		}
	}
	rs.mu.Lock()
	rs.rep.RunsCancelled++
	rs.mu.Unlock()
}

// cancelVisitTree deep-cancels a visit that no longer happens in the
// repaired timeline, including the visits it spawned.
func (rs *session) cancelVisitTree(log *browser.VisitLog) {
	rs.tracef("cancel visit tree %s/%d url=%s", log.ClientID, log.VisitID, log.URL)
	for _, tr := range log.Requests {
		rs.cancelExchange(log.ClientID, log.VisitID, tr.RequestID)
	}
	rs.w.mu.Lock()
	children := append([]*browser.VisitLog{}, rs.w.childVisits(log.ClientID, log.VisitID)...)
	rs.w.mu.Unlock()
	for _, c := range children {
		rs.cancelVisitTree(c)
	}
}

//
// Browser re-execution (§5.3)
//

// repairTransport serves HTTP requests from replayed browsers: it prunes
// unchanged requests and re-executes affected runs in the repair
// generation.
func (rs *session) repairTransport(req *httpd.Request) *httpd.Response {
	node := rs.w.httpNodeForReplay(req)
	rs.mu.Lock()
	e, ok := rs.served[node]
	rs.mu.Unlock()
	if ok && e.reqFP == req.Fingerprint() {
		return e.resp
	}
	origAct := rs.origRunFor(node)
	if origAct == nil {
		// A request with no original counterpart: fresh execution.
		return rs.freshRun(req)
	}
	payload := origAct.Payload.(*RunPayload)
	if req.Fingerprint() == payload.Rec.Req.Fingerprint() && rs.runClean(payload) {
		// Identical request, unaffected run: reuse the original response
		// (§5.3 pruning).
		return payload.Rec.Resp
	}
	resp, err := rs.executeRun(origAct, req)
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	return resp
}

// freshRun executes a request that never happened in the original
// timeline (e.g. a patched page newly navigating somewhere).
func (rs *session) freshRun(req *httpd.Request) *httpd.Response {
	file, ok := rs.w.Runtime.RouteOf(req.Path)
	if !ok {
		return httpd.NotFound("no route for " + req.Path)
	}
	lastTime := rs.w.Clock.Now()
	qf := func(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error) {
		lastTime++
		t0 := time.Now()
		res, rec, err := rs.w.DB.ReExec(sql, params, lastTime, nil)
		rs.tDB.Add(int64(time.Since(t0)))
		if rec != nil && rec.IsWrite() {
			rs.addDirt(rec.WritePartitions, rec.Time)
		}
		return res, rec, err
	}
	t0 := time.Now()
	dbBefore := rs.tDB.Load()
	rec, err := rs.w.Runtime.Run(file, req, qf, nil)
	rs.tApp.Add(int64(time.Since(t0)) - (rs.tDB.Load() - dbBefore))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	rs.markRun(history.ActionID(-rs.nextSeq())) // fresh runs get synthetic ids
	repaired := true
	rs.w.recordRun(rec, &repaired)
	node := rs.w.httpNodeForReplay(req)
	rs.mu.Lock()
	rs.served[node] = &servedEntry{reqFP: req.Fingerprint(), resp: rec.Resp}
	rs.mu.Unlock()
	return rec.Resp
}

func (rs *session) processVisit(it *workItem) error {
	rs.w.mu.Lock()
	vlog := rs.w.visitByID[it.client][it.visit]
	rs.w.mu.Unlock()
	if vlog == nil {
		return nil
	}
	key := fmt.Sprintf("v:%s/%d", it.client, it.visit)
	rs.mu.Lock()
	rs.activeVisit[key] = true
	if !rs.doneVisits[key] {
		rs.doneVisits[key] = true
		rs.rep.PageVisitsReplayed++
	}
	// The clone's cookie jar: the diverged replay jar if the client's
	// timeline forked earlier, else the jar recorded at visit start (§5.3).
	jar := rs.jarOverride[it.client]
	rs.mu.Unlock()
	defer func() {
		rs.mu.Lock()
		delete(rs.activeVisit, key)
		rs.mu.Unlock()
	}()
	if jar == nil {
		jar = cloneJar(vlog.Cookies)
	} else {
		jar = cloneJar(jar)
	}

	// The original main response body, for the UI-conflict hook.
	origBody := ""
	if len(vlog.Requests) > 0 {
		if act := rs.origRunFor(history.HTTPNode(it.client, it.visit, vlog.Requests[0].RequestID)); act != nil {
			if resp := act.Payload.(*RunPayload).Rec.Resp; resp != nil {
				origBody = resp.Body
			}
		}
	}

	// A parent's replay may have re-derived this visit's main request
	// (e.g. with three-way-merged form content); a stored override from an
	// earlier replay of the parent also applies to standalone re-replays.
	if !it.hasNav {
		rs.mu.Lock()
		ov, ok := rs.navOverrides[key]
		rs.mu.Unlock()
		if ok {
			it = &workItem{
				kind: it.kind, time: it.time, client: it.client, visit: it.visit,
				navMethod: ov.navMethod, navURL: ov.navURL, navForm: ov.navForm, hasNav: true,
			}
		}
	}
	var mainResp *httpd.Response
	if it.hasNav {
		req := rs.buildRequest(it.navMethod, it.navURL, it.navForm, it.client, it.visit, mainRequestID(vlog), jar)
		mainResp = rs.repairTransport(req)
		applyCookies(jar, mainResp)
		for i := 0; i < 4 && mainResp.Status == 303 && mainResp.Headers["Location"] != ""; i++ {
			req = rs.buildRequest("GET", mainResp.Headers["Location"], url.Values{}, it.client, it.visit, 0, jar)
			mainResp = rs.repairTransport(req)
			applyCookies(jar, mainResp)
		}
	}

	t0 := time.Now()
	dbBefore, appBefore := rs.tDB.Load(), rs.tApp.Load()
	out := browser.ReplayVisit(vlog, mainResp, origBody, jar, rs.repairTransport, rs.cfg)
	// Attribute nested serve time to DB/App, the rest to the browser.
	rs.tBrowser.Add(int64(time.Since(t0)) - (rs.tDB.Load() - dbBefore) - (rs.tApp.Load() - appBefore))

	rs.tracef("replayed visit %s/%d url=%s navs=%d conflicts=%d unmatched=%d", it.client, it.visit, vlog.URL, len(out.Navigations), len(out.Conflicts), len(out.UnmatchedOriginals))
	for _, c := range out.Conflicts {
		rs.addConflict(c)
	}
	if !rs.cfg.HasLog {
		// Without the extension WARP cannot verify or undo browser-side
		// activity; the conflict above is all it can report (§2.3).
		return nil
	}

	// Original requests the replay did not re-issue are undone: this is
	// how an XSS payload's HTTP requests disappear (§2.2).
	for _, tr := range out.UnmatchedOriginals {
		rs.cancelExchange(it.client, it.visit, tr.RequestID)
	}

	// Match navigations to the original child visits.
	rs.w.mu.Lock()
	children := append([]*browser.VisitLog{}, rs.w.childVisits(it.client, it.visit)...)
	rs.w.mu.Unlock()
	usedChild := make(map[int64]bool)
	for _, nav := range out.Navigations {
		child := matchChild(children, usedChild, nav)
		if child == nil {
			// A navigation that never happened originally: execute it fresh.
			req := rs.buildRequest(nav.Method, nav.URL, nav.Form, it.client, rs.freshVisitID(), 1, out.CookiesAfter)
			resp := rs.repairTransport(req)
			applyCookies(out.CookiesAfter, resp)
			continue
		}
		usedChild[child.VisitID] = true
		req := rs.buildRequest(nav.Method, nav.URL, nav.Form, it.client, child.VisitID, mainRequestID(child), out.CookiesAfter)
		origAct := rs.origRunFor(rs.w.httpNodeForReplay(req))
		prunable := false
		if origAct != nil {
			p := origAct.Payload.(*RunPayload)
			prunable = req.Fingerprint() == p.Rec.Req.Fingerprint() && rs.runClean(p) &&
				jarEqual(child.Cookies, out.CookiesAfter)
		}
		if prunable {
			rs.tracef("  nav %s %s -> child %d pruned", nav.Method, nav.URL, child.VisitID)
			continue
		}
		rs.tracef("  nav %s %s -> child %d enqueued", nav.Method, nav.URL, child.VisitID)
		item := &workItem{
			kind: workVisitReplay, time: child.Time,
			client: it.client, visit: child.VisitID,
			navMethod: nav.Method, navURL: nav.URL, navForm: nav.Form, hasNav: true,
		}
		rs.mu.Lock()
		rs.navOverrides[fmt.Sprintf("v:%s/%d", it.client, child.VisitID)] = item
		rs.mu.Unlock()
		rs.sched.push(item)
	}
	// Original children the replay no longer navigated to never happen in
	// the repaired timeline: undo their whole subtrees.
	for _, child := range children {
		if !usedChild[child.VisitID] {
			rs.cancelVisitTree(child)
		}
	}

	// Cookie divergence: if the replayed jar no longer matches the
	// original timeline, the client's later visits re-execute with the
	// new cookies (§5.3, and the CSRF recovery path of §8.2).
	rs.trackCookieDivergence(it.client, it.visit, out.CookiesAfter)
	return nil
}

// trackCookieDivergence compares the replayed jar against the recorded jar
// of the client's next visit and queues that visit when they differ. At
// the end of the client's timeline the comparison is against the jar the
// original execution ended with; a diverged final jar is queued for
// cookie invalidation (§5.3).
func (rs *session) trackCookieDivergence(client string, visitID int64, after map[string]string) {
	rs.w.mu.Lock()
	logs := rs.w.visitsOfClient(client)
	var cur, next *browser.VisitLog
	for _, v := range logs {
		if v.VisitID == visitID {
			cur = v
		}
		if v.VisitID > visitID {
			next = v
			break
		}
	}
	rs.w.mu.Unlock()
	if next == nil {
		if cur != nil && jarEqual(rs.origJarAfter(cur), after) {
			rs.setJarOverride(client, nil)
		} else {
			rs.setJarOverride(client, after)
		}
		return
	}
	if jarEqual(next.Cookies, after) {
		rs.setJarOverride(client, nil)
		return
	}
	rs.tracef("cookie divergence for %s after visit %d; queueing visit %d", client, visitID, next.VisitID)
	rs.setJarOverride(client, after)
	rs.enqueueVisit(next)
}

// setJarOverride installs (or, with a nil jar, clears) a client's diverged
// replay cookie jar.
func (rs *session) setJarOverride(client string, jar map[string]string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if jar == nil {
		delete(rs.jarOverride, client)
		return
	}
	rs.jarOverride[client] = jar
}

// origJarAfter reconstructs the cookie jar the client held after a visit
// in the original timeline, from the visit's starting jar and its
// responses' cookie changes.
func (rs *session) origJarAfter(vlog *browser.VisitLog) map[string]string {
	jar := cloneJar(vlog.Cookies)
	for _, tr := range vlog.Requests {
		act := rs.origRunFor(history.HTTPNode(vlog.ClientID, vlog.VisitID, tr.RequestID))
		if act == nil {
			continue
		}
		if resp := act.Payload.(*RunPayload).Rec.Resp; resp != nil {
			applyCookies(jar, resp)
		}
	}
	return jar
}

// buildRequest assembles a replay-path HTTP request.
func (rs *session) buildRequest(method, rawURL string, form url.Values, client string, visit, reqID int64, jar map[string]string) *httpd.Request {
	req := httpd.NewRequest(method, rawURL)
	if form != nil {
		req.Form = form
	}
	for k, v := range jar {
		req.Cookies[k] = v
	}
	req.ClientID = client
	req.VisitID = visit
	req.RequestID = reqID
	return req
}

// freshVisitID allocates IDs for navigations that create brand-new visits
// during repair.
func (rs *session) freshVisitID() int64 {
	return 1<<40 + rs.nextSeq()
}

// mainRequestID returns the request ID of a visit's main request.
func mainRequestID(v *browser.VisitLog) int64 {
	if len(v.Requests) > 0 {
		return v.Requests[0].RequestID
	}
	return 1
}

// matchChild finds the first unconsumed child visit matching a navigation
// by method and path.
func matchChild(children []*browser.VisitLog, used map[int64]bool, nav browser.Navigation) *browser.VisitLog {
	navPath, _ := httpd.SplitURL(nav.URL)
	for _, c := range children {
		if used[c.VisitID] {
			continue
		}
		cPath, _ := httpd.SplitURL(c.URL)
		if c.Method == nav.Method && cPath == navPath && c.IsFrame == nav.IsFrame {
			return c
		}
	}
	// Fall back to the first unconsumed child of the same frame-ness.
	for _, c := range children {
		if !used[c.VisitID] && c.IsFrame == nav.IsFrame {
			return c
		}
	}
	return nil
}

func cloneJar(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func jarEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func applyCookies(jar map[string]string, resp *httpd.Response) {
	for k, v := range resp.SetCookies {
		jar[k] = v
	}
	for _, k := range resp.ClearCookies {
		delete(jar, k)
	}
}

//
// Query matching for run re-execution
//

// queryMatcher pairs queries issued by a re-executed run with the original
// run's queries, by SQL text, in order (§3.3's in-order matching applied
// to queries).
type queryMatcher struct {
	bySQL map[string][]*ttdb.Record
	used  map[*ttdb.Record]bool
}

func newQueryMatcher(orig []*ttdb.Record) *queryMatcher {
	m := &queryMatcher{bySQL: make(map[string][]*ttdb.Record), used: make(map[*ttdb.Record]bool)}
	for _, q := range orig {
		m.bySQL[q.SQL] = append(m.bySQL[q.SQL], q)
	}
	return m
}

// match consumes and returns the next original query with the same SQL
// text, or nil.
func (m *queryMatcher) match(sql string) *ttdb.Record {
	list := m.bySQL[sql]
	for _, q := range list {
		if !m.used[q] {
			m.used[q] = true
			return q
		}
	}
	return nil
}

// unconsumedWrites returns original write queries the new execution did
// not re-issue.
func (m *queryMatcher) unconsumedWrites() []*ttdb.Record {
	var out []*ttdb.Record
	for _, list := range m.bySQL {
		for _, q := range list {
			if !m.used[q] && q.IsWrite() {
				out = append(out, q)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
