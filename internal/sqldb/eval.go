package sqldb

import (
	"fmt"
	"strings"
)

// evalCtx supplies column values and statement parameters to expression
// evaluation. agg, when set, resolves aggregate calls to pre-computed
// values (used by SELECT with aggregates).
type evalCtx struct {
	lookup func(name string) (Value, bool)
	params []Value
	agg    func(fc *FuncCall) (Value, error)
}

// errEval wraps expression evaluation failures.
func errEval(format string, args ...any) error {
	return fmt.Errorf("sql: eval: %s", fmt.Sprintf(format, args...))
}

// evalExpr evaluates e in ctx. Three-valued logic is approximated the way
// most embedded engines do: comparisons with NULL yield NULL (represented
// as the NULL value), and WHERE treats anything but TRUE as non-matching.
func evalExpr(e Expr, ctx *evalCtx) (Value, error) {
	switch e := e.(type) {
	case *Literal:
		return e.Value, nil
	case *Param:
		if e.Index < 0 || e.Index >= len(ctx.params) {
			return Null(), errEval("parameter %d out of range (%d supplied)", e.Index+1, len(ctx.params))
		}
		return ctx.params[e.Index], nil
	case *ColumnRef:
		if ctx.lookup == nil {
			return Null(), errEval("column %s referenced outside row context", e.Name)
		}
		v, ok := ctx.lookup(e.Name)
		if !ok {
			return Null(), errEval("no such column %s", e.Name)
		}
		return v, nil
	case *UnaryExpr:
		v, err := evalExpr(e.Operand, ctx)
		if err != nil {
			return Null(), err
		}
		switch e.Op {
		case OpNot:
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.IsTrue()), nil
		case OpNeg:
			if v.IsNull() {
				return Null(), nil
			}
			return Int(-v.AsInt()), nil
		}
		return Null(), errEval("unknown unary operator")
	case *BinaryExpr:
		return evalBinary(e, ctx)
	case *InExpr:
		return evalIn(e, ctx)
	case *IsNullExpr:
		v, err := evalExpr(e.Expr, ctx)
		if err != nil {
			return Null(), err
		}
		return Bool(v.IsNull() != e.Not), nil
	case *FuncCall:
		return evalFunc(e, ctx)
	default:
		return Null(), errEval("unsupported expression %T", e)
	}
}

func evalBinary(e *BinaryExpr, ctx *evalCtx) (Value, error) {
	// AND/OR get short-circuit handling with NULL propagation.
	switch e.Op {
	case OpAnd:
		l, err := evalExpr(e.Left, ctx)
		if err != nil {
			return Null(), err
		}
		if !l.IsNull() && !l.IsTrue() {
			return Bool(false), nil
		}
		r, err := evalExpr(e.Right, ctx)
		if err != nil {
			return Null(), err
		}
		if !r.IsNull() && !r.IsTrue() {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(true), nil
	case OpOr:
		l, err := evalExpr(e.Left, ctx)
		if err != nil {
			return Null(), err
		}
		if l.IsTrue() {
			return Bool(true), nil
		}
		r, err := evalExpr(e.Right, ctx)
		if err != nil {
			return Null(), err
		}
		if r.IsTrue() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(false), nil
	}

	l, err := evalExpr(e.Left, ctx)
	if err != nil {
		return Null(), err
	}
	r, err := evalExpr(e.Right, ctx)
	if err != nil {
		return Null(), err
	}
	return applyBinary(e.Op, l, r)
}

// applyBinary applies a non-short-circuit binary operator to two
// evaluated operands. Shared by the interpreter (evalBinary) and the
// compiled evaluator (plan.go), so the two paths cannot drift.
func applyBinary(op BinOp, l, r Value) (Value, error) {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c, ok := compareValues(l, r)
		if !ok {
			return Null(), nil
		}
		switch op {
		case OpEq:
			return Bool(c == 0), nil
		case OpNe:
			return Bool(c != 0), nil
		case OpLt:
			return Bool(c < 0), nil
		case OpLe:
			return Bool(c <= 0), nil
		case OpGt:
			return Bool(c > 0), nil
		case OpGe:
			return Bool(c >= 0), nil
		}
	case OpLike:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(likeMatch(r.AsText(), l.AsText())), nil
	case OpConcat:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Text(l.AsText() + r.AsText()), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case OpAdd:
			return Int(a + b), nil
		case OpSub:
			return Int(a - b), nil
		case OpMul:
			return Int(a * b), nil
		case OpDiv:
			if b == 0 {
				return Null(), errEval("division by zero")
			}
			return Int(a / b), nil
		case OpMod:
			if b == 0 {
				return Null(), errEval("modulo by zero")
			}
			return Int(a % b), nil
		}
	}
	return Null(), errEval("unknown binary operator")
}

func evalIn(e *InExpr, ctx *evalCtx) (Value, error) {
	v, err := evalExpr(e.Expr, ctx)
	if err != nil {
		return Null(), err
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, item := range e.List {
		iv, err := evalExpr(item, ctx)
		if err != nil {
			return Null(), err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if c, ok := compareValues(v, iv); ok && c == 0 {
			return Bool(!e.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(e.Not), nil
}

func evalFunc(e *FuncCall, ctx *evalCtx) (Value, error) {
	if e.IsAggregate() {
		if ctx.agg != nil {
			return ctx.agg(e)
		}
		return Null(), errEval("aggregate %s not allowed here", e.Name)
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := evalExpr(a, ctx)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	return scalarFunc(e.Name, args)
}

// scalarFunc applies a non-aggregate function to evaluated arguments.
// Shared by the interpreter and the compiled evaluator (plan.go).
func scalarFunc(name string, args []Value) (Value, error) {
	switch name {
	case "LOWER":
		if err := wantArgs(name, 1, args); err != nil {
			return Null(), err
		}
		return Text(strings.ToLower(args[0].AsText())), nil
	case "UPPER":
		if err := wantArgs(name, 1, args); err != nil {
			return Null(), err
		}
		return Text(strings.ToUpper(args[0].AsText())), nil
	case "LENGTH":
		if err := wantArgs(name, 1, args); err != nil {
			return Null(), err
		}
		return Int(int64(len(args[0].AsText()))), nil
	case "ABS":
		if err := wantArgs(name, 1, args); err != nil {
			return Null(), err
		}
		n := args[0].AsInt()
		if n < 0 {
			n = -n
		}
		return Int(n), nil
	case "COALESCE":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return Null(), errEval("SUBSTR takes 2 or 3 arguments")
		}
		s := args[0].AsText()
		start := int(args[1].AsInt()) - 1 // SQL SUBSTR is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return Text(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			if n := int(args[2].AsInt()); start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return Text(s[start:end]), nil
	default:
		return Null(), errEval("unknown function %s", name)
	}
}

func wantArgs(name string, n int, args []Value) error {
	if len(args) != n {
		return errEval("%s takes %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

// likeMatch implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. Matching is case-sensitive, like Postgres.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}
