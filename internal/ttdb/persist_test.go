package ttdb

import (
	"fmt"
	"strings"
	"testing"

	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/vclock"
)

// collectObserver records emitted events for replay.
type collectObserver struct {
	records []*Record
	specs   []struct {
		table string
		spec  TableSpec
	}
}

func (c *collectObserver) RecordApplied(rec *Record) { c.records = append(c.records, rec) }
func (c *collectObserver) TableAnnotated(table string, spec TableSpec) {
	c.specs = append(c.specs, struct {
		table string
		spec  TableSpec
	}{table, spec})
}
func (c *collectObserver) Collected(int64) {}

// dump renders every physical row of every table, deterministically.
func dump(t *testing.T, db *DB) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d\n", db.CurrentGen())
	for _, table := range db.Tables() {
		m, err := db.meta(table)
		if err != nil {
			t.Fatal(err)
		}
		m.mu.Lock()
		res, err := db.selectPhysical(m, nil, nil)
		nextRowID := m.nextRowID
		m.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "table %s nextRowID=%d cols=%v\n", table, nextRowID, res.Columns)
		rows := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			rows = append(rows, fmt.Sprint(row))
		}
		for _, r := range rows {
			fmt.Fprintln(&b, r)
		}
	}
	return b.String()
}

func seedDB(t *testing.T, obs Observer) *DB {
	t.Helper()
	db := Open(&vclock.Clock{})
	if obs != nil {
		db.SetObserver(obs)
	}
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Annotate("tags", TableSpec{}); err != nil { // synthetic row IDs
		t.Fatal(err)
	}
	mustExec := func(sql string, params ...sqldb.Value) {
		t.Helper()
		if _, _, err := db.Exec(sql, params...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)")
	mustExec("CREATE TABLE tags (name TEXT, note_id INTEGER)")
	for i := 1; i <= 5; i++ {
		mustExec("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("u%d", i%2)), sqldb.Text(fmt.Sprintf("note %d", i)))
		mustExec("INSERT INTO tags (name, note_id) VALUES (?, ?)",
			sqldb.Text(fmt.Sprintf("tag%d", i)), sqldb.Int(int64(i)))
	}
	mustExec("UPDATE notes SET body = 'edited' WHERE id = 2")
	mustExec("DELETE FROM tags WHERE note_id = 3")
	return db
}

func TestSnapshotRoundtrip(t *testing.T) {
	db := seedDB(t, nil)
	enc := store.NewEncoder()
	if err := db.EncodeState(enc); err != nil {
		t.Fatal(err)
	}

	clock := &vclock.Clock{}
	clock.AdvanceTo(db.Clock().Now())
	db2 := Open(clock)
	if err := db2.RestoreState(store.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := dump(t, db2), dump(t, db); got != want {
		t.Fatalf("restored state differs:\n--- restored ---\n%s--- original ---\n%s", got, want)
	}

	// The restored database keeps working: inserts do not reuse row IDs
	// and the partition index answers rollback queries.
	if _, _, err := db2.Exec("INSERT INTO tags (name, note_id) VALUES ('fresh', 9)"); err != nil {
		t.Fatal(err)
	}
	res, _, err := db2.Exec("SELECT COUNT(*) FROM tags")
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsInt() != 5 {
		t.Fatalf("tags count = %d, want 5", res.FirstValue().AsInt())
	}
	rows, err := db2.PartitionRowsSince(Partition{Table: "notes", Column: "owner", Key: sqldb.Text("u0").Key()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("restored partition index is empty")
	}
}

func TestRecordReplayRebuildsState(t *testing.T) {
	obs := &collectObserver{}
	db := seedDB(t, obs)

	clock := &vclock.Clock{}
	db2 := Open(clock)
	for _, s := range obs.specs {
		if err := db2.Annotate(s.table, s.spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range obs.records {
		if err := db2.Replay(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := dump(t, db2), dump(t, db); got != want {
		t.Fatalf("replayed state differs:\n--- replayed ---\n%s--- original ---\n%s", got, want)
	}
	if clock.Now() < db.Clock().Now()-vclock.Stride {
		t.Fatalf("replay left the clock behind: %d vs %d", clock.Now(), db.Clock().Now())
	}
}

func TestRecordCodecRoundtrip(t *testing.T) {
	obs := &collectObserver{}
	seedDB(t, obs)
	render := func(r *Record) string {
		result := "<nil>"
		if r.Result != nil {
			result = fmt.Sprintf("%+v", *r.Result)
		}
		return fmt.Sprintf("%q %v %d %d %s %s %v %v %v %s %s",
			r.SQL, r.Params, r.Time, r.Gen, r.Table, r.Kind,
			r.ReadPartitions, r.WritePartitions, r.WriteRowIDs, result, r.ErrText)
	}
	for _, rec := range obs.records {
		enc := store.NewEncoder()
		EncodeRecord(enc, rec)
		got := DecodeRecord(store.NewDecoder(enc.Bytes()))
		if render(got) != render(rec) {
			t.Fatalf("record roundtrip mismatch:\n got %s\nwant %s", render(got), render(rec))
		}
		if got.Outcome() != rec.Outcome() {
			t.Fatal("outcome fingerprint changed across codec")
		}
	}
}

func TestAnnotateIdempotentAfterCreate(t *testing.T) {
	db := Open(&vclock.Clock{})
	spec := TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}
	if err := db.Annotate("notes", spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT)"); err != nil {
		t.Fatal(err)
	}
	// Setup code re-running against a recovered deployment re-annotates
	// identically: a no-op, not an error.
	if err := db.Annotate("notes", spec); err != nil {
		t.Fatalf("identical re-annotation: %v", err)
	}
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "owner"}); err == nil {
		t.Fatal("conflicting re-annotation must fail")
	}
}
