// Package sqldb implements a small embedded SQL database engine.
//
// It is the substrate that stands in for PostgreSQL in the WARP
// reproduction: a lexer, parser, and executor for the SQL subset used by the
// web applications under test and by the time-travel rewriting layer
// (internal/ttdb). The engine supports CREATE TABLE, CREATE INDEX, ALTER
// TABLE ADD COLUMN, INSERT, SELECT, UPDATE, and DELETE with expression
// WHERE clauses, ORDER BY, LIMIT/OFFSET, positional parameters, RETURNING
// clauses, unique constraints, and hash indexes.
//
// The engine is deliberately simple where WARP does not need power (no
// joins, no multi-statement transactions — the paper's prototype disabled
// those too, see §6) and careful where WARP does need it (uniqueness
// semantics, precise write sets via RETURNING, AST-level query rewriting).
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The value kinds supported by the engine.
const (
	KindNull Kind = iota
	KindInt
	KindText
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
	B    bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{Kind: KindText, Str: s} }

// Bool returns a BOOLEAN value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsTrue reports whether v is the boolean TRUE. NULL and non-boolean values
// are not true.
func (v Value) IsTrue() bool { return v.Kind == KindBool && v.B }

// AsInt returns the value as an int64, converting from text and bool
// representations when sensible. NULL converts to 0.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	case KindText:
		n, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
		if err != nil {
			return 0
		}
		return n
	default:
		return 0
	}
}

// AsText returns the value rendered as text. NULL renders as the empty
// string.
func (v Value) AsText() string {
	switch v.Kind {
	case KindText:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// String renders the value as a SQL literal, suitable for logging.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KindText:
		return QuoteString(v.Str)
	default:
		return "?invalid?"
	}
}

// QuoteString renders s as a single-quoted SQL string literal, doubling
// embedded quotes.
func QuoteString(s string) string {
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	b.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			b.WriteByte('\'')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('\'')
	return b.String()
}

// Equal reports SQL equality between two values. NULL is not equal to
// anything, including NULL (use IsNull for that test). Integers and booleans
// compare across kinds the way the engine's comparison operator does.
func (v Value) Equal(o Value) bool {
	eq, ok := compareValues(v, o)
	return ok && eq == 0
}

// Key returns a string key that uniquely identifies the value for use in
// hash indexes and uniqueness checks. Distinct values map to distinct keys.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.Int, 10)
	case KindBool:
		if v.B {
			return "bt"
		}
		return "bf"
	case KindText:
		return "t" + v.Str
	default:
		return "?"
	}
}

// compareValues compares a and b, returning -1, 0, or 1 and whether the
// comparison is defined. Comparisons involving NULL are undefined. Integer
// and boolean values are compared numerically; text compares
// lexicographically. Mixed int/text comparisons coerce text to int when the
// text parses as an integer, otherwise compare as text.
func compareValues(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.Kind == KindText && b.Kind == KindText {
		return strings.Compare(a.Str, b.Str), true
	}
	if a.Kind == KindText || b.Kind == KindText {
		// Mixed comparison: prefer numeric when both sides are numeric;
		// otherwise numeric values rank before non-numeric text, which keeps
		// the order antisymmetric across kinds.
		at, aNum := textNumeric(a)
		bt, bNum := textNumeric(b)
		if aNum && bNum {
			return compareInt(at, bt), true
		}
		if aNum {
			return -1, true
		}
		if bNum {
			return 1, true
		}
		return strings.Compare(a.AsText(), b.AsText()), true
	}
	return compareInt(a.AsInt(), b.AsInt()), true
}

func textNumeric(v Value) (int64, bool) {
	if v.Kind == KindInt || v.Kind == KindBool {
		return v.AsInt(), true
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
	return n, err == nil
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
