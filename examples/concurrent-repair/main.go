// concurrent-repair demonstrates repair generations (§4.3): the wiki keeps
// serving users while a large repair runs; at the end the repaired
// generation atomically becomes current.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"warp/internal/attacks"
	"warp/internal/workload"
)

func main() {
	// A clickjacking workload: its repair re-executes nearly everything,
	// so there is a meaningful window to serve traffic in.
	sc, _ := attacks.ByName("Clickjacking")
	res, err := workload.Run(workload.Config{Users: 40, Victims: 3, Seed: 21, Scenario: sc})
	must(err)
	sys := res.Env.W

	fmt.Printf("workload: %d page visits, %d runs, %d queries logged\n",
		res.PageVisits, res.AppRuns, res.Queries)
	fmt.Println("starting repair; serving traffic concurrently…")

	var served atomic.Int64
	stop := make(chan struct{})
	go func() {
		b := sys.NewBrowser()
		for {
			select {
			case <-stop:
				return
			default:
				p := b.Open("/index.php?title=Main")
				if p.DOM != nil {
					served.Add(1)
				}
			}
		}
	}()

	start := time.Now()
	report, err := sc.Repair(res.Env)
	must(err)
	close(stop)

	fmt.Printf("repair finished in %v while serving %d page visits concurrently\n",
		time.Since(start).Round(time.Millisecond), served.Load())
	fmt.Println("repair:", report.String())
	fmt.Println("the repaired generation is now current; normal operation never stopped")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
