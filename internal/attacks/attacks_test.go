package attacks_test

import (
	"strings"
	"testing"

	"warp/internal/attacks"
	"warp/internal/workload"
)

// verifyRepaired checks that no attack residue survived and the background
// users' legitimate edits are intact (the Table 3 "Repaired?" criterion).
func verifyRepaired(t *testing.T, res *workload.Result) {
	t.Helper()
	app := res.Env.App
	team, err := app.PageContent(res.Env.TargetPage)
	if err != nil {
		t.Fatalf("target page: %v", err)
	}
	for _, residue := range []string{"PWNED", "mooo"} {
		if strings.Contains(team, residue) {
			t.Fatalf("attack residue %q survived on %s:\n%s", residue, res.Env.TargetPage, team)
		}
	}
	if got, _ := app.PageContent("Main"); strings.Contains(got, "SQLI-ATTACK") {
		t.Fatalf("SQL injection residue survived on Main:\n%s", got)
	}
	if got, _ := app.PageContent("Restricted"); strings.Contains(got, "should not") {
		t.Fatalf("ACL-error residue survived on Restricted:\n%s", got)
	}
	for _, u := range res.Env.Others {
		if !strings.Contains(team, "note from "+u.Name) {
			t.Fatalf("legitimate edit of %s lost from %s:\n%s", u.Name, res.Env.TargetPage, team)
		}
	}
}

// TestScenariosEndToEnd drives each of the six §8.2 attack scenarios
// through a full workload and repair — with the parallel scheduler — and
// verifies the attack's effects are gone while users' work survives.
func TestScenariosEndToEnd(t *testing.T) {
	for _, sc := range attacks.Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			res, err := workload.Run(workload.Config{
				Users: 8, Victims: 2, Seed: 42, Scenario: sc, RepairWorkers: 4,
			})
			if err != nil {
				t.Fatalf("workload: %v", err)
			}
			rep, err := sc.Repair(res.Env)
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			if rep.Aborted {
				t.Fatal("repair aborted")
			}
			if rep.RepairWorkers != 4 {
				t.Fatalf("repair ran with %d workers, want 4", rep.RepairWorkers)
			}
			if rep.AppRunsReexecuted == 0 && rep.RunsCancelled == 0 {
				t.Fatal("repair did no work")
			}
			verifyRepaired(t, res)
		})
	}
}

// TestScenarioConflictShape pins the Table 3 conflict pattern on the
// serial engine: only the clickjacking attack (whose replay diverges the
// victims' UI state) and the ACL error (whose undo invalidates another
// user's legitimate edit) leave users with conflicts — the paper's
// 0,0,0,3,0,1 column shape.
func TestScenarioConflictShape(t *testing.T) {
	expectConflicts := map[string]bool{
		"Reflected XSS": false,
		"Stored XSS":    false,
		"CSRF":          false,
		"Clickjacking":  true,
		"SQL injection": false,
		"ACL error":     true,
	}
	for _, sc := range attacks.Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			res, err := workload.Run(workload.Config{
				Users: 8, Victims: 2, Seed: 42, Scenario: sc, RepairWorkers: 1,
			})
			if err != nil {
				t.Fatalf("workload: %v", err)
			}
			rep, err := sc.Repair(res.Env)
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			want, known := expectConflicts[sc.Name]
			if !known {
				t.Fatalf("scenario %q missing from expectation table", sc.Name)
			}
			if got := rep.UsersWithConflicts() > 0; got != want {
				t.Fatalf("users with conflicts = %d, want >0 == %v", rep.UsersWithConflicts(), want)
			}
			verifyRepaired(t, res)
		})
	}
}

// TestByName checks the scenario registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"Reflected XSS", "Stored XSS", "CSRF", "Clickjacking", "SQL injection", "ACL error"} {
		if _, ok := attacks.ByName(name); !ok {
			t.Fatalf("scenario %q not found", name)
		}
	}
	if _, ok := attacks.ByName("nope"); ok {
		t.Fatal("unknown scenario found")
	}
}
