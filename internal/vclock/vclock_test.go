package vclock

import (
	"sync"
	"testing"
)

func TestTickMonotonicWithStride(t *testing.T) {
	var c Clock
	prev := c.Now()
	for i := 0; i < 100; i++ {
		next := c.Tick()
		if next <= prev {
			t.Fatalf("tick not monotonic: %d then %d", prev, next)
		}
		if next-prev != Stride {
			t.Fatalf("stride = %d, want %d", next-prev, Stride)
		}
		prev = next
	}
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	c.Tick()
	now := c.Now()
	c.AdvanceTo(now - 5) // never moves backwards
	if c.Now() != now {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	c.AdvanceTo(now + 500)
	if c.Now() != now+500 {
		t.Fatalf("AdvanceTo: %d, want %d", c.Now(), now+500)
	}
}

func TestConcurrentTicksUnique(t *testing.T) {
	var c Clock
	const goroutines, ticks = 8, 200
	seen := make(chan int64, goroutines*ticks)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ticks; i++ {
				seen <- c.Tick()
			}
		}()
	}
	wg.Wait()
	close(seen)
	uniq := make(map[int64]bool)
	for v := range seen {
		if uniq[v] {
			t.Fatalf("duplicate timestamp %d", v)
		}
		uniq[v] = true
	}
}
