package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
	"warp/internal/store/storefs"
)

// routerFor opens a store with a custom router that knows two groups
// and reports everything else unknown (-1).
func routedOpts(shards int) Options {
	opts := testOpts()
	opts.Shards = shards
	opts.ShardOf = func(group string) int {
		switch group {
		case "users":
			return 1
		case "pages":
			return 2
		}
		return -1 // unknown table
	}
	return opts
}

func TestShardRouterUnknownFallsBackToShardZero(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, routedOpts(3))
	defer s.Close()
	if got := s.ShardFor("users"); got != 1 {
		t.Fatalf("ShardFor(users) = %d, want 1", got)
	}
	if got := s.ShardFor("pages"); got != 2 {
		t.Fatalf("ShardFor(pages) = %d, want 2", got)
	}
	// Unknown tables and the metadata group land on shard 0.
	if got := s.ShardFor("sessions"); got != 0 {
		t.Fatalf("ShardFor(unknown) = %d, want 0", got)
	}
	if got := s.ShardFor(""); got != 0 {
		t.Fatalf("ShardFor(meta) = %d, want 0", got)
	}

	// The records physically land on their shards.
	if err := s.AppendGroup("users", 1, []byte("users-record")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendGroup("sessions", 1, []byte("sessions-record")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	find := func(shard int, want string) bool {
		data, err := os.ReadFile(segName(dir, shard, 1))
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Contains(data, []byte(want))
	}
	if !find(1, "users-record") {
		t.Fatal("known group's record not on its routed shard")
	}
	if !find(0, "sessions-record") {
		t.Fatal("unknown group's record not on shard 0")
	}
}

// TestDefaultRouterStableAndInRange pins the hash router's contract:
// deterministic, metadata on shard 0, named groups on 1..n-1.
func TestDefaultRouterStableAndInRange(t *testing.T) {
	opts := testOpts()
	opts.Shards = 4
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, opts)
	defer s.Close()
	if s.ShardFor("") != 0 {
		t.Fatal("metadata must stay on shard 0")
	}
	for _, g := range []string{"users", "pages", "tags", "notes", "entries"} {
		i := s.ShardFor(g)
		if i < 1 || i >= 4 {
			t.Fatalf("ShardFor(%s) = %d, out of 1..3", g, i)
		}
		if j := s.ShardFor(g); j != i {
			t.Fatalf("router not deterministic for %s: %d then %d", g, i, j)
		}
	}
}

// TestShardTailTruncationDropsOnlyThatShard: interleave records across
// two shards, crash with everything synced, then truncate one shard's
// tail mid-frame. Recovery must keep the other shard's records intact
// and drop only the truncated shard's suffix, reporting TailCorrupt.
func TestShardTailTruncationDropsOnlyThatShard(t *testing.T) {
	dir := t.TempDir()
	opts := routedOpts(3)
	s, _ := mustOpen(t, dir, opts)
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.AppendGroup("users", 1, []byte(fmt.Sprintf("users-%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(2, []byte(fmt.Sprintf("meta-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the users shard (shard 1) mid-frame.
	path := segName(dir, 1, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	if !rec.TailCorrupt {
		t.Fatal("truncated shard tail not reported")
	}
	var users, meta int
	for _, r := range rec.Records {
		switch r.Type {
		case 1:
			if want := fmt.Sprintf("users-%02d", users); string(r.Payload) != want {
				t.Fatalf("users record %d = %q, want %q", users, r.Payload, want)
			}
			users++
		case 2:
			if want := fmt.Sprintf("meta-%02d", meta); string(r.Payload) != want {
				t.Fatalf("meta record %d = %q, want %q", meta, r.Payload, want)
			}
			meta++
		}
	}
	if meta != n {
		t.Fatalf("meta shard lost records: %d/%d — truncation must drop only the damaged shard's suffix", meta, n)
	}
	if users >= n {
		t.Fatalf("users shard recovered %d records from a truncated tail", users)
	}
	if users == 0 {
		t.Fatal("users shard lost its entire prefix, not just the torn suffix")
	}
}

// TestMetadataNeverOutlivesDataRecords pins the cross-shard causality
// barrier in windowed (non-fsync-per-append) mode: for pairs of
// (data-shard record, then metadata record), a crash must never keep a
// metadata record while losing its earlier data record. The background
// flusher is disabled (huge GroupWindow) and SegmentBytes is tiny, so
// the only fsyncs are segment rotations — exactly the path that must
// run the data-shards-first barrier.
func TestMetadataNeverOutlivesDataRecords(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupWindow: time.Hour, Shards: 2, SegmentBytes: 512}
	s, _ := mustOpen(t, dir, opts)
	// Metadata records are much larger than data records, so shard 0
	// rotates (= fsyncs) far more often than the data shard — the
	// adversarial shape: without the rotation barrier, shard 0's latest
	// rotation would persist metadata whose data records still sit in
	// the data shard's unsynced buffer.
	const pairs = 100
	pad := strings.Repeat("x", 120)
	for i := 0; i < pairs; i++ {
		if err := s.AppendGroup("users", 1, []byte(fmt.Sprintf("data-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(2, []byte(fmt.Sprintf("meta-%03d/%s", i, pad))); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()

	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	data := make(map[string]bool)
	metas := 0
	for _, r := range rec.Records {
		switch r.Type {
		case 1:
			data[string(r.Payload)] = true
		case 2:
			metas++
			want := "data-" + string(r.Payload[len("meta-"):len("meta-")+3])
			if !data[want] {
				t.Fatalf("metadata record %q durable but its data record %q lost", r.Payload[:8], want)
			}
		}
	}
	if metas == 0 {
		t.Fatal("no metadata records became durable; rotations never fired and the test exercised nothing")
	}
}

// TestManifestMissingDeltaIsError: deleting a checkpoint file the
// manifest references must fail Open loudly instead of recovering a
// partial state.
func TestManifestMissingDeltaIsError(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	checkpointOne(t, s, "base", "base-state")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	removed := false
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		var seq int64
		if parseSeqName(e.Name(), "ckpt-", ".sec", &seq) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed = true
		}
	}
	if !removed {
		t.Fatal("no checkpoint file written")
	}
	if _, _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open recovered a checkpoint whose delta file is missing")
	}
}

// TestManifestSectionMissingFromDeltaIsError: a manifest naming a
// section its delta file does not contain is corruption, not a partial
// load.
func TestManifestSectionMissingFromDeltaIsError(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	checkpointOne(t, s, "base", "base-state")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the manifest to reference a section that does not exist.
	var seq int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if parseSeqName(e.Name(), "manifest-", ".mf", &seq) {
			m, err := readManifestFile(storefs.OS, filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			m.sections = append(m.sections, manifestSection{name: "ghost", fileSeq: m.sections[0].fileSeq})
			if err := writeManifestFile(storefs.OS, dir, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open recovered a manifest naming a nonexistent section")
	}
}

// TestRecoveryMergesShardsInLSNOrder: single-threaded interleaved
// appends across three shards must come back in exactly the order they
// were appended.
func TestRecoveryMergesShardsInLSNOrder(t *testing.T) {
	dir := t.TempDir()
	opts := routedOpts(3)
	s, _ := mustOpen(t, dir, opts)
	var want []Record
	groups := []string{"users", "pages", "", "users", "", "pages"}
	for i := 0; i < 60; i++ {
		g := groups[i%len(groups)]
		r := Record{Type: byte(i%3 + 1), Payload: []byte(fmt.Sprintf("%s/%02d", g, i))}
		want = append(want, r)
		if err := s.AppendGroup(g, r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	assertRecords(t, rec.Records, want, false)
}

// TestShardCountChangeAcrossRestart: records written under one shard
// count must recover when the store reopens with another, and the next
// checkpoint prunes the orphan shard files.
func TestShardCountChangeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, routedOpts(3))
	var want []Record
	for i := 0; i < 30; i++ {
		g := []string{"users", "pages", ""}[i%3]
		r := Record{Type: 1, Payload: []byte(fmt.Sprintf("%s-%02d", g, i))}
		want = append(want, r)
		if err := s.AppendGroup(g, r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen single-sharded: all three chains must merge back.
	s2, rec := mustOpen(t, dir, testOpts())
	assertRecords(t, rec.Records, want, false)
	// A checkpoint covers the orphan shard files; they must be pruned.
	checkpointOne(t, s2, "state", "compacted")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		var seq int64
		var id int
		if parseSegName(e.Name(), &id, &seq) && id != 0 {
			data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
			if len(data) > 0 {
				t.Fatalf("orphan shard segment %s survived the checkpoint", e.Name())
			}
		}
	}

	s3, rec3 := mustOpen(t, dir, testOpts())
	defer s3.Close()
	if !rec3.Manifest || len(rec3.Records) != 0 {
		t.Fatalf("post-compaction recovery: manifest=%v records=%d", rec3.Manifest, len(rec3.Records))
	}
}
