package bench

import (
	"fmt"
	"strings"
	"time"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// PartitionRepair measures the partition-granular repair pipeline on a
// single hot table: every client's page visits read and write their own
// partition of one `posts` table, and the repair — a retroactive patch
// of the login page that changes every client's cookie state — cascades
// through cookie divergence (§5.3) into a per-client chain of page-visit
// replays, each re-executing its run (with appLatency of simulated
// application work) against the hot table.
//
// With tableGranular=false the refactored pipeline runs: visit replays
// are exclusive only per client and the hot table takes partition
// (lock-column key) scopes, so independent clients' replays — and their
// DB re-executions on disjoint partitions of the one table — proceed in
// parallel across workers. With tableGranular=true the pre-refactor
// behavior is restored (globally exclusive visit replay, whole-table DB
// locks): the baseline BenchmarkPartitionRepair compares against.
//
// The repair outcome — re-execution accounting and final table contents
// — is identical at every worker count and in both locking modes; only
// the wall time changes.
func PartitionRepair(clients, pages, workers int, appLatency time.Duration, tableGranular bool) (*PartitionRepairResult, error) {
	w := core.New(core.Config{Seed: 99, RepairWorkers: workers, TableGranularLocks: tableGranular})
	if err := w.DB.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		return nil, err
	}
	if _, _, err := w.DB.Exec("CREATE TABLE posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		return nil, err
	}
	if err := w.Runtime.Register("login.php", app.Version{Entry: loginHandler(false)}); err != nil {
		return nil, err
	}
	if err := w.Runtime.Register("page.php", app.Version{Entry: postsHandler(appLatency)}); err != nil {
		return nil, err
	}
	w.Runtime.Mount("/login", "login.php")
	w.Runtime.Mount("/page", "page.php")

	id := 0
	for c := 0; c < clients; c++ {
		b := w.NewBrowser()
		if p := b.Open("/login"); p.DOM == nil {
			return nil, fmt.Errorf("bench: login failed for client %d", c)
		}
		for n := 0; n < pages; n++ {
			id++
			p := b.Open(fmt.Sprintf("/page?owner=%s&id=%d&body=<i>p%d</i>", b.ClientID, id, n))
			if p.DOM == nil {
				return nil, fmt.Errorf("bench: page visit failed for client %d", c)
			}
		}
	}

	start := time.Now()
	rep, err := w.RetroPatch("login.php", app.Version{Entry: loginHandler(true), Note: "session hardening"})
	if err != nil {
		return nil, err
	}
	out := &PartitionRepairResult{Workers: workers, RepairTime: time.Since(start), Report: rep}
	res, _, err := w.DB.Exec("SELECT owner, body FROM posts ORDER BY id")
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		out.Rows = append(out.Rows, r[0].AsText()+"|"+r[1].AsText())
	}
	return out, nil
}

// PartitionRepairResult is one measurement of the partition-granular
// pipeline, with the hot table's final contents for equivalence checks
// across worker counts and locking modes.
type PartitionRepairResult struct {
	Workers    int
	RepairTime time.Duration
	Report     *core.Report
	Rows       []string
}

// loginHandler issues a session cookie. The patched version additionally
// sets a hardening cookie and brands the page, so every client's login
// response — and through cookie divergence, every later page visit of
// that client — changes during repair.
func loginHandler(patched bool) app.Script {
	return func(c *app.Ctx) *httpd.Response {
		sid := c.Token("login.sid")
		body := "<html><body>welcome</body></html>"
		if patched {
			body = "<html><body>welcome (hardened)</body></html>"
		}
		resp := httpd.HTML(body)
		resp.SetCookie("sid", sid)
		if patched {
			resp.SetCookie("csrf", c.Token("login.csrf"))
		}
		return resp
	}
}

// postsHandler writes one post into the owner's partition of the hot
// table and renders the owner's posts, sleeping appLatency to simulate
// the application-side work (template rendering, helper I/O) a replay
// overlaps across workers.
func postsHandler(appLatency time.Duration) app.Script {
	return func(c *app.Ctx) *httpd.Response {
		if body := c.Req.Param("body"); body != "" {
			c.MustQuery("INSERT INTO posts (id, owner, body) VALUES (?, ?, ?)",
				sqldb.Int(atoi(c.Req.Param("id"))), sqldb.Text(c.Req.Param("owner")), sqldb.Text(body))
		}
		res := c.MustQuery("SELECT body FROM posts WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		if appLatency > 0 {
			time.Sleep(appLatency)
		}
		var b strings.Builder
		b.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			b.WriteString("<li>" + row[0].AsText() + "</li>")
		}
		b.WriteString("</ul></body></html>")
		return httpd.HTML(b.String())
	}
}
