// Online-repair admission (docs/repair.md "Online repair"): the seam
// that lets normal execution coexist with a running repair.
//
// While a repair session drains its work queue, the deployment no longer
// suspends — live requests keep executing on every partition the repair
// frontier has not claimed. The scheduler's cached footprints double as
// admission claims: before a live write executes, the gate derives its
// partition footprint by static analysis (ttdb.StmtPartitions — the same
// analysis the lock scopes use) and compares it against every in-flight
// repair item and against the session's dirt map (partitions the repair
// has already claimed for its generation). A disjoint write proceeds
// immediately; a conflicting write waits briefly — for the colliding
// items to retire, or for the flat admission window on a claimed
// partition — then proceeds regardless: a write racing past the
// frontier is logged in the action history graph, so dirt propagation
// re-enqueues it and the repair fixpoint folds it into the repair
// generation (session.go). The wait is never needed for correctness; it
// narrows the race window and paces sustained writers on claimed
// partitions so they cannot feed the drain new work faster than it
// retires.
//
// Live reads are never gated: they read the current generation, which
// repair does not mutate until the final generation-switch commit
// window, and that window still takes the exclusive suspension.
package core

import (
	"sync"
	"time"

	"warp/internal/app"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// admissionWait bounds how long a conflicting live write waits for the
// repair frontier to move off its partitions before executing anyway.
const admissionWait = 50 * time.Millisecond

// admissionGate gates live writes against the repair frontier. One gate
// exists per repair session; Warp.admission holds it while the session
// runs online.
type admissionGate struct {
	w     *Warp
	rs    *session
	sched *scheduler
}

// queryFunc is the app.QueryFunc handleRequest injects while a repair is
// online: admission check, then the normal-execution Exec path.
func (g *admissionGate) queryFunc(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error) {
	// A deployment that degraded mid-repair refuses the write before the
	// admission wait: the database's write gate would reject it anyway,
	// and there is no point pacing a statement that cannot execute.
	if err := g.w.degradedErr(); err != nil {
		return nil, nil, err
	}
	g.admit(sql, params)
	return g.w.DB.Exec(sql, params...)
}

// admit blocks a conflicting live write until the colliding repair items
// retire or the admission timeout passes. Reads and unparseable
// statements pass through untouched (the Exec path will surface the
// parse error itself).
func (g *admissionGate) admit(sql string, params []sqldb.Value) {
	parts, isWrite, err := g.w.DB.StmtPartitions(sql, params)
	if err != nil || !isWrite {
		return
	}
	claimed := parts == nil || g.rs.claimed(parts)
	if !claimed && !g.sched.conflictsWithInflight(parts) {
		return
	}
	liveWritesQueued.Inc()
	liveWritesWaiting.Add(1)
	if claimed {
		// The partition is dirty in the repair generation, so it stays
		// claimed until the final commit — there is nothing to wait out.
		// Pace the write for the full admission window instead: every
		// such write re-enters the repair's dirt propagation, and an
		// unpaced writer could feed the drain new work faster than it
		// retires, stalling the repair indefinitely.
		time.Sleep(admissionWait)
	} else {
		g.sched.waitConflictClear(parts, admissionWait)
	}
	liveWritesWaiting.Add(-1)
}

// conflictsWithInflight reports whether a live write's partition
// footprint overlaps any in-flight repair item's claims. A nil footprint
// (DDL) conflicts with everything in flight.
func (s *scheduler) conflictsWithInflight(parts []ttdb.Partition) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conflictsLocked(parts)
}

func (s *scheduler) conflictsLocked(parts []ttdb.Partition) bool {
	for _, fp := range s.inflight {
		if fp.exclusive || parts == nil {
			return true
		}
		if fp.reads.OverlapsAny(parts) || fp.writes.OverlapsAny(parts) {
			return true
		}
	}
	return false
}

// waitConflictClear waits until the footprint stops conflicting with
// in-flight repair items, or the timeout passes. Completions broadcast
// the scheduler's cond, so the wait wakes as the frontier moves; the
// timer covers the uninstall race (a gate loaded just before the session
// finished would otherwise wait on a cond nobody signals again).
func (s *scheduler) waitConflictClear(parts []ttdb.Partition, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	var timerOnce sync.Once
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.conflictsLocked(parts) {
		if !time.Now().Before(deadline) {
			return
		}
		timerOnce.Do(func() {
			time.AfterFunc(timeout, s.cond.Broadcast)
		})
		s.cond.Wait()
	}
}

// liveQueryFunc returns the QueryFunc normal execution should use right
// now: the admission gate's while a repair is online, nil (plain
// DB.Exec) otherwise.
func (w *Warp) liveQueryFunc() app.QueryFunc {
	if g := w.admission.Load(); g != nil {
		return g.queryFunc
	}
	return nil
}
