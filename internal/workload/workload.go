// Package workload generates the multi-user wiki workloads of the paper's
// evaluation (§8.2, §8.5): N users who all log in, read pages, and edit
// pages, with one attacker, a few victims, and everyone else unaffected.
// Attack scenarios (internal/attacks) are spliced in at the start or the
// end of the workload — the paper's "victims at start/end" variants
// (Table 7).
package workload

import (
	"fmt"
	"time"

	"warp/internal/attacks"
	"warp/internal/browser"
	"warp/internal/core"
	"warp/internal/history"
	"warp/internal/store"
	"warp/internal/webapp/wiki"
)

// Config describes one workload.
type Config struct {
	// Users is the total number of users (the paper uses 100 and 5,000).
	// Minimum 5: one admin, one attacker, and the victims.
	Users int
	// Victims is the number of attacked users (the paper uses 3).
	Victims int
	// Seed drives deployment nondeterminism.
	Seed int64
	// VictimsAtStart places the attack before the background activity
	// (Table 7's fifth row) instead of after it.
	VictimsAtStart bool
	// Scenario is the attack to run; nil runs a clean workload (used for
	// the Table 6 overhead measurements).
	Scenario *attacks.Scenario
	// Replay overrides the browser re-execution configuration (Table 4's
	// degraded modes); nil means full WARP replay.
	Replay *browser.ReplayConfig
	// RepairWorkers sets the parallel repair worker count (0 means
	// GOMAXPROCS, 1 the serial engine).
	RepairWorkers int
	// DataDir, when non-empty, runs the workload against a durable
	// deployment (core.Open) persisting under this directory; the
	// durability benchmarks use it to measure WAL overhead on the
	// paper's workloads. Empty keeps everything in memory.
	DataDir string
	// Durability tunes the persistent store when DataDir is set.
	Durability store.Options
	// Trace, when set, receives repair-controller trace lines.
	Trace func(format string, args ...any)
}

// Result is a generated workload: the environment plus original-execution
// statistics for the Tables 7/8 denominators.
type Result struct {
	Env *attacks.Env

	OriginalExecTime time.Duration
	PageVisits       int
	AppRuns          int
	Queries          int
}

// Run builds a deployment, installs GoWiki, seeds users and pages, and
// executes the workload.
func Run(cfg Config) (*Result, error) {
	if cfg.Users < 5 {
		return nil, fmt.Errorf("workload: need at least 5 users, got %d", cfg.Users)
	}
	if cfg.Victims <= 0 {
		cfg.Victims = 3
	}
	if cfg.Victims > cfg.Users-2 {
		return nil, fmt.Errorf("workload: %d victims do not fit in %d users", cfg.Victims, cfg.Users)
	}

	ccfg := core.Config{Seed: cfg.Seed, Replay: cfg.Replay, RepairWorkers: cfg.RepairWorkers,
		Trace: cfg.Trace, Durability: cfg.Durability}
	var w *core.Warp
	durable := cfg.DataDir != ""
	if durable {
		var err error
		if w, err = core.Open(cfg.DataDir, ccfg); err != nil {
			return nil, err
		}
	} else {
		w = core.New(ccfg)
	}
	// A durable deployment owns goroutines and an open WAL; on success
	// the caller closes it (Result.Env.W), on failure we must.
	ok := false
	if durable {
		defer func() {
			if !ok {
				_ = w.Close()
			}
		}()
	}
	app, err := wiki.Install(w)
	if err != nil {
		return nil, err
	}
	env := &attacks.Env{W: w, App: app, TargetPage: "TeamPage"}

	// Seed accounts and pages (the pre-horizon base state).
	names := make([]string, cfg.Users)
	for i := range names {
		switch {
		case i == 0:
			names[i] = "admin"
		case i == 1:
			names[i] = "attacker"
		case i < 2+cfg.Victims:
			names[i] = fmt.Sprintf("victim%d", i-1)
		default:
			names[i] = fmt.Sprintf("user%d", i)
		}
		if err := app.CreateUser(names[i], "pw-"+names[i], i == 0); err != nil {
			return nil, err
		}
	}
	if err := app.CreatePage("Main", "welcome to GoWiki", false); err != nil {
		return nil, err
	}
	if err := app.CreatePage(env.TargetPage, "team notes", false); err != nil {
		return nil, err
	}
	if err := app.CreatePage("Restricted", "need-to-know only", true); err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := app.CreatePage("Page-"+n, "home page of "+n, false); err != nil {
			return nil, err
		}
	}

	// One browser per user.
	for i, n := range names {
		u := &attacks.User{Name: n, B: w.NewBrowser()}
		switch {
		case i == 0:
			env.Admin = u
		case i == 1:
			env.Attacker = u
		case i < 2+cfg.Victims:
			env.Victims = append(env.Victims, u)
		default:
			env.Others = append(env.Others, u)
		}
	}

	start := time.Now()

	// Everyone logs in (§8.2: "all users login, read, and edit").
	for _, u := range env.AllUsers() {
		if err := login(u); err != nil {
			return nil, fmt.Errorf("workload: login %s: %v", u.Name, err)
		}
	}

	runAttack := func() error {
		if cfg.Scenario == nil {
			return nil
		}
		if err := cfg.Scenario.Setup(env); err != nil {
			return err
		}
		if cfg.Scenario.Name == "ACL error" {
			return attacks.ExploitACL(env)
		}
		for _, v := range env.Victims {
			if err := cfg.Scenario.Trigger(env, v); err != nil {
				return err
			}
			// The victim keeps working after exposure (their edits are what
			// repair must preserve or re-attribute).
			if err := editOwnPage(v, "post-attack note by "+v.Name); err != nil {
				return err
			}
		}
		return nil
	}

	if cfg.VictimsAtStart {
		if err := runAttack(); err != nil {
			return nil, err
		}
	}

	// Background activity: read own page, quick-append to the shared page,
	// edit own page.
	for _, u := range env.AllUsers() {
		if err := browse(env, u); err != nil {
			return nil, fmt.Errorf("workload: browse %s: %v", u.Name, err)
		}
	}

	if !cfg.VictimsAtStart {
		if err := runAttack(); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Env:              env,
		OriginalExecTime: time.Since(start),
		PageVisits:       w.Storage().PageVisits,
		AppRuns:          len(w.Graph.ByKind(history.KindAppRun)),
		Queries:          len(w.Graph.ByKind(history.KindQuery)),
	}
	ok = true
	return res, nil
}

// login drives the login form flow.
func login(u *attacks.User) error {
	p := u.B.Open("/login.php")
	if err := p.TypeInto("user", u.Name); err != nil {
		return err
	}
	if err := p.TypeInto("password", "pw-"+u.Name); err != nil {
		return err
	}
	if _, err := p.Submit(0); err != nil {
		return err
	}
	if u.B.Cookies()["sid"] == "" {
		return fmt.Errorf("no session established")
	}
	return nil
}

// browse is one user's background activity.
func browse(env *attacks.Env, u *attacks.User) error {
	own := "Page-" + u.Name
	// Read the own page; it carries the quick-append form.
	p := u.B.Open("/index.php?title=" + own)
	// Append a note to the shared team page (write-only: no read of the
	// team page's content).
	if err := p.TypeInto("title", env.TargetPage); err != nil {
		return err
	}
	if err := p.TypeInto("text", "note from "+u.Name); err != nil {
		return err
	}
	if _, err := p.Submit(0); err != nil {
		return err
	}
	// Edit the own page.
	return editOwnPage(u, "edited by its owner")
}

// editOwnPage appends a line to the user's own page through the edit form.
func editOwnPage(u *attacks.User, line string) error {
	return editPage(u, "Page-"+u.Name, line)
}

// editPage appends a line to a page through the edit form flow.
func editPage(u *attacks.User, title, line string) error {
	p := u.B.Open("/edit.php?title=" + title)
	field := p.DOM.ByName("content")
	if field == nil {
		return fmt.Errorf("no edit form on %s (permission denied?)", title)
	}
	cur := field.InnerText()
	if err := p.TypeInto("content", cur+"\n"+line); err != nil {
		return err
	}
	_, err := p.Submit(0)
	return err
}
