package sqldb

// Slot-stable paged row storage. Rows live in fixed-size pages instead
// of one ever-growing slice: a slot s maps to pages[s>>pageShift] at
// offset s&pageMask, so growth never moves existing rows (no doubling
// copies of a multi-gigabyte table) and a page of consecutive slots sits
// in a few cache lines for the scan paths. Each page carries a live-row
// count — the slot map — so scans skip pages that hold only tombstones,
// which matters after the time-travel layer's generation purges and GC
// tombstone entire regions of history.
//
// The slot contract is unchanged from the slice layout and is what
// checkpoint streaming (EncodeTableShards), repair rollback, and the
// indexes all rely on: slots are allocated in ascending order, a row's
// slot never changes, and deletes leave tombstones rather than reusing
// the slot, so a slot remains a durable total order over a table's rows.

const (
	pageShift = 8 // 256 rows per page
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type rowPage struct {
	rows [pageSize]row
	live int // live (non-tombstone) rows on this page
}

// pageStore holds one table's rows.
type pageStore struct {
	pages []*rowPage
	n     int // slots allocated; slot n is the next append point
}

// numSlots returns the number of allocated slots (live + tombstones).
func (ps *pageStore) numSlots() int { return ps.n }

// rowAt returns the row at an allocated slot.
func (ps *pageStore) rowAt(slot int) *row {
	return &ps.pages[slot>>pageShift].rows[slot&pageMask]
}

// alloc appends a live row and returns its slot.
func (ps *pageStore) alloc(vals []Value) int {
	slot := ps.n
	if slot>>pageShift == len(ps.pages) {
		ps.pages = append(ps.pages, &rowPage{})
	}
	pg := ps.pages[slot>>pageShift]
	pg.rows[slot&pageMask] = row{vals: vals}
	pg.live++
	ps.n++
	return slot
}

// kill tombstones a slot, dropping its values.
func (ps *pageStore) kill(slot int) {
	pg := ps.pages[slot>>pageShift]
	pg.rows[slot&pageMask] = row{deleted: true}
	pg.live--
}

// forEachLive streams live rows in ascending slot order, skipping pages
// with no live rows without touching their slots. A non-nil error from
// fn aborts the walk and is returned.
func (ps *pageStore) forEachLive(fn func(slot int, r *row) error) error {
	for pi, pg := range ps.pages {
		if pg.live == 0 {
			continue
		}
		base := pi << pageShift
		limit := pageSize
		if rem := ps.n - base; rem < limit {
			limit = rem
		}
		for off := 0; off < limit; off++ {
			r := &pg.rows[off]
			if r.deleted {
				continue
			}
			if err := fn(base+off, r); err != nil {
				return err
			}
		}
	}
	return nil
}
