package ttdb

import (
	"fmt"

	"warp/internal/sqldb"
)

// repairState snapshots the generation state a repair-side operation runs
// under: the repair ("next") generation and the GC horizon. Snapshotting
// it once at operation entry lets the table-locked internals run without
// re-acquiring db.mu (the lock ordering forbids that).
type repairState struct {
	next     int64
	gcBefore int64
}

// repairSnapshot returns the current repair state, or an error when no
// repair is open.
func (db *DB) repairSnapshot() (repairState, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.inRepair {
		return repairState{}, fmt.Errorf("ttdb: no repair in progress")
	}
	return repairState{next: db.currentGen.Load() + 1, gcBefore: db.gcBefore}, nil
}

// BeginRepair opens the next repair generation (§4.3): a logical fork of
// the current database contents. Repair-time operations (ReExec, Rollback)
// apply to the next generation while normal execution continues against the
// current one. It returns the generation number repair runs in.
func (db *DB) BeginRepair() (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.inRepair {
		return 0, fmt.Errorf("ttdb: repair already in progress")
	}
	db.inRepair = true
	return db.currentGen.Load() + 1, nil
}

// FinishRepair atomically makes the repaired generation current. The caller
// (WARP's core) is responsible for briefly suspending the web server and
// draining final requests first (§4.3), and for ensuring all repair workers
// have completed. Rows visible only to older generations are purged.
func (db *DB) FinishRepair() error {
	metas := db.lockAll()
	defer db.unlockAll(metas)
	if !db.inRepair {
		return fmt.Errorf("ttdb: no repair in progress")
	}
	cur := db.currentGen.Add(1)
	db.inRepair = false
	db.markAllDirty() // the generation switch rewrites every table's rows
	// Purge rows invisible from the new current generation onward.
	for _, m := range metas {
		del := &sqldb.Delete{
			Table: m.name,
			Where: &sqldb.BinaryExpr{Op: sqldb.OpLt, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(cur))},
		}
		if _, err := db.raw.ExecStmt(del, nil); err != nil {
			return err
		}
	}
	return nil
}

// AbortRepair discards the next generation, restoring the database to the
// state normal execution sees. WARP uses this when a user-initiated undo
// would cause conflicts for other users (§5.5).
func (db *DB) AbortRepair() error {
	metas := db.lockAll()
	defer db.unlockAll(metas)
	if !db.inRepair {
		return fmt.Errorf("ttdb: no repair in progress")
	}
	cur := db.currentGen.Load()
	next := cur + 1
	db.markAllDirty() // discarding the forked generation mutates rows too
	for _, m := range metas {
		// Rows created by repair vanish...
		del := &sqldb.Delete{
			Table: m.name,
			Where: &sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
		}
		if _, err := db.raw.ExecStmt(del, nil); err != nil {
			return err
		}
		// ...and rows demoted during repair become shared again.
		upd := &sqldb.Update{
			Table: m.name,
			Set:   []sqldb.Assignment{{Column: ColEndGen, Expr: sqldb.Lit(sqldb.Int(Infinity))}},
			Where: sqldb.Eq(ColEndGen, sqldb.Int(cur)),
		}
		if _, err := db.raw.ExecStmt(upd, nil); err != nil {
			return err
		}
	}
	db.inRepair = false
	return nil
}

// physicalRow captures one stored version with its bookkeeping columns.
type physicalRow struct {
	vals  map[string]sqldb.Value
	rowID sqldb.Value
	start int64
	end   int64
	sGen  int64
	eGen  int64
}

func (db *DB) decodePhysical(m *tableMeta, res *sqldb.Result) []physicalRow {
	colOf := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		colOf[c] = i
	}
	out := make([]physicalRow, 0, len(res.Rows))
	for _, row := range res.Rows {
		pr := physicalRow{vals: make(map[string]sqldb.Value, len(row))}
		for c, i := range colOf {
			pr.vals[c] = row[i]
		}
		pr.rowID = pr.vals[m.rowIDCol]
		pr.start = pr.vals[ColStartTime].AsInt()
		pr.end = pr.vals[ColEndTime].AsInt()
		pr.sGen = pr.vals[ColStartGen].AsInt()
		pr.eGen = pr.vals[ColEndGen].AsInt()
		out = append(out, pr)
	}
	return out
}

// targetWhere builds a predicate that identifies exactly one physical row
// version by row ID and version interval.
func (db *DB) targetWhere(m *tableMeta, pr physicalRow) sqldb.Expr {
	return sqldb.And(
		sqldb.Eq(m.rowIDCol, pr.rowID),
		sqldb.Eq(ColStartTime, sqldb.Int(pr.start)),
		sqldb.Eq(ColEndTime, sqldb.Int(pr.end)),
		sqldb.Eq(ColStartGen, sqldb.Int(pr.sGen)),
		sqldb.Eq(ColEndGen, sqldb.Int(pr.eGen)),
	)
}

// demote confines a shared physical row to generations up to current, so
// the next generation no longer sees it (§4.4 preservation).
func (db *DB) demote(m *tableMeta, pr physicalRow) error {
	upd := &sqldb.Update{
		Table: m.name,
		Set:   []sqldb.Assignment{{Column: ColEndGen, Expr: sqldb.Lit(sqldb.Int(db.currentGen.Load()))}},
		Where: db.targetWhere(m, pr),
	}
	res, err := db.raw.ExecStmt(upd, nil)
	if err != nil {
		return err
	}
	if res.Affected != 1 {
		return fmt.Errorf("ttdb: demote targeted %d rows in %s, want 1", res.Affected, m.name)
	}
	return nil
}

// insertCopy inserts a copy of pr with the given version overrides.
func (db *DB) insertCopy(m *tableMeta, pr physicalRow, end int64, sGen, eGen int64) error {
	cols := db.physicalColumns(m)
	ins := &sqldb.Insert{Table: m.name, Columns: cols}
	vals := make([]sqldb.Expr, len(cols))
	for i, c := range cols {
		v := pr.vals[c]
		switch c {
		case ColEndTime:
			v = sqldb.Int(end)
		case ColStartGen:
			v = sqldb.Int(sGen)
		case ColEndGen:
			v = sqldb.Int(eGen)
		}
		vals[i] = sqldb.Lit(v)
	}
	ins.Rows = [][]sqldb.Expr{vals}
	_, err := db.raw.ExecStmt(ins, nil)
	return err
}

// deletePhysical removes one physical row version outright.
func (db *DB) deletePhysical(m *tableMeta, pr physicalRow) error {
	del := &sqldb.Delete{Table: m.name, Where: db.targetWhere(m, pr)}
	res, err := db.raw.ExecStmt(del, nil)
	if err != nil {
		return err
	}
	if res.Affected != 1 {
		return fmt.Errorf("ttdb: delete targeted %d rows in %s, want 1", res.Affected, m.name)
	}
	return nil
}

// RollbackRow rolls back a single row (named by row ID) to time t in the
// repair generation (§4.1): versions from t onward disappear from the next
// generation, and the version covering t becomes live again. Versions
// shared with the current generation are preserved for it by demotion.
// It returns the partitions whose contents changed.
func (db *DB) RollbackRow(table string, rowID sqldb.Value, t int64) ([]Partition, error) {
	st, err := db.repairSnapshot()
	if err != nil {
		return nil, err
	}
	m, err := db.lockTable(table)
	if err != nil {
		return nil, err
	}
	defer m.mu.Unlock()
	return db.rollbackRowLocked(m, rowID, t, st)
}

// rollbackRowLocked is RollbackRow with the table lock held.
func (db *DB) rollbackRowLocked(m *tableMeta, rowID sqldb.Value, t int64, st repairState) ([]Partition, error) {
	if t <= st.gcBefore {
		return nil, fmt.Errorf("ttdb: rollback to %d is beyond the GC horizon %d", t, st.gcBefore)
	}
	db.markDirty(m.name)
	next := st.next

	// All versions of this row visible anywhere in the next generation.
	where := sqldb.And(
		sqldb.Eq(m.rowIDCol, rowID),
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
		&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(next))},
	)
	res, err := db.selectPhysical(m, where, nil)
	if err != nil {
		return nil, err
	}
	versions := db.decodePhysical(m, res)

	set := NewPartitionSet()
	var keep []physicalRow
	for _, pr := range versions {
		for _, p := range m.rowPartitions(func(c string) sqldb.Value { return pr.vals[c] }) {
			set.Add(p)
		}
		if pr.start < t {
			keep = append(keep, pr)
			continue
		}
		// This version vanishes from the next generation.
		if pr.sGen >= next {
			if err := db.deletePhysical(m, pr); err != nil {
				return nil, err
			}
		} else {
			if err := db.demote(m, pr); err != nil {
				return nil, err
			}
		}
	}
	// Revive the version covering t, if it was closed.
	var latest *physicalRow
	for i := range keep {
		if latest == nil || keep[i].start > latest.start {
			latest = &keep[i]
		}
	}
	if latest != nil && latest.end != Infinity && latest.end >= t {
		// The revival can collide with a row inserted later under the same
		// uniqueness key: the §6 case where an INSERT's success changes
		// during repair. The later row is rolled back first (it will fail
		// when its query re-executes), then the revival proceeds.
		if err := db.resolveRevivalCollisions(m, *latest, st, set, 0); err != nil {
			return nil, err
		}
		if latest.sGen >= next {
			upd := &sqldb.Update{
				Table: m.name,
				Set:   []sqldb.Assignment{{Column: ColEndTime, Expr: sqldb.Lit(sqldb.Int(Infinity))}},
				Where: db.targetWhere(m, *latest),
			}
			if _, err := db.raw.ExecStmt(upd, nil); err != nil {
				return nil, err
			}
		} else {
			if err := db.demote(m, *latest); err != nil {
				return nil, err
			}
			if err := db.insertCopy(m, *latest, Infinity, next, Infinity); err != nil {
				return nil, err
			}
		}
	}
	// Index the rollback itself: the partitions' contents changed at t.
	m.indexVersionEvent(set.Slice(), rowID, t)
	return set.Slice(), nil
}

// resolveRevivalCollisions rolls back any live next-generation rows that
// share a uniqueness key with the row about to be revived (§6). Their
// partitions are added to dirt so the inserts that created them re-execute
// and observe their changed (now failing) outcome.
func (db *DB) resolveRevivalCollisions(m *tableMeta, pr physicalRow, st repairState, dirt *PartitionSet, depth int) error {
	if depth > 8 {
		return fmt.Errorf("ttdb: table %s: uniqueness collision resolution did not converge", m.name)
	}
	next := st.next
	_, uniques, err := db.raw.Schema(m.name)
	if err != nil {
		return err
	}
	for _, u := range uniques {
		// Build the live-collision probe over the constraint's application
		// columns (the version columns were appended by createTable).
		var conds []sqldb.Expr
		usable := true
		for _, col := range u.Columns {
			switch col {
			case ColEndTime, ColEndGen:
				continue
			case ColStartTime, ColStartGen:
				usable = false
			default:
				v, ok := pr.vals[col]
				if !ok || v.IsNull() {
					usable = false
				} else {
					conds = append(conds, sqldb.Eq(col, v))
				}
			}
		}
		if !usable || len(conds) == 0 {
			continue
		}
		where := sqldb.And(append(conds,
			sqldb.Eq(ColEndTime, sqldb.Int(Infinity)),
			&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))},
			&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(next))})...)
		res, err := db.selectPhysical(m, where, nil)
		if err != nil {
			return err
		}
		for _, other := range db.decodePhysical(m, res) {
			if other.rowID.Equal(pr.rowID) {
				continue
			}
			// Roll the colliding row back to before its first appearance:
			// in the repaired timeline its insert fails.
			first, err := db.firstStartTime(m, other.rowID, next)
			if err != nil {
				return err
			}
			ps, err := db.rollbackRowLocked(m, other.rowID, first, st)
			if err != nil {
				return err
			}
			dirt.AddAll(ps)
		}
	}
	return nil
}

// firstStartTime returns the earliest version start of a row visible in
// the given generation.
func (db *DB) firstStartTime(m *tableMeta, rowID sqldb.Value, gen int64) (int64, error) {
	sel := &sqldb.Select{
		Items: []sqldb.SelectItem{{Expr: &sqldb.FuncCall{Name: "MIN", Args: []sqldb.Expr{sqldb.Col(ColStartTime)}}}},
		Table: m.name,
		Where: sqldb.And(
			sqldb.Eq(m.rowIDCol, rowID),
			&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(gen))},
			&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(gen))},
		),
	}
	res, err := db.raw.ExecStmt(sel, nil)
	if err != nil {
		return 0, err
	}
	if res.FirstValue().IsNull() {
		return 0, fmt.Errorf("ttdb: row %v has no versions in gen %d", rowID, gen)
	}
	return res.FirstValue().AsInt(), nil
}

// RollbackRows rolls back several rows of one table to time t.
func (db *DB) RollbackRows(table string, rowIDs []sqldb.Value, t int64) ([]Partition, error) {
	st, err := db.repairSnapshot()
	if err != nil {
		return nil, err
	}
	m, err := db.lockTable(table)
	if err != nil {
		return nil, err
	}
	defer m.mu.Unlock()
	set := NewPartitionSet()
	for _, id := range rowIDs {
		ps, err := db.rollbackRowLocked(m, id, t, st)
		if err != nil {
			return nil, err
		}
		set.AddAll(ps)
	}
	return set.Slice(), nil
}

// ReExec re-executes a query at its original time t in the repair
// generation (§4.4). For writes it performs the paper's two-phase
// re-execution (§4.2): it computes the new matching row set, rolls back
// both the original and the new rows to just before t, and then executes
// the write in the next generation. orig is the record from the original
// execution, or nil for a query with no original counterpart (for example,
// a patched application run issuing a brand-new query).
//
// The returned Record describes the re-executed query; its WritePartitions
// include everything touched by rollback, which the repair controller uses
// for dependency propagation.
func (db *DB) ReExec(src string, params []sqldb.Value, t int64, orig *Record) (*sqldb.Result, *Record, error) {
	stmt, err := sqldb.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return db.ReExecStmt(stmt, params, t, orig)
}

// ReExecStmt is ReExec for a parsed statement. Re-executions on different
// tables run in parallel; the target table's lock is held for the full
// two-phase span so a re-execution is atomic with respect to other
// operations on the table.
func (db *DB) ReExecStmt(stmt sqldb.Statement, params []sqldb.Value, t int64, orig *Record) (*sqldb.Result, *Record, error) {
	st, err := db.repairSnapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("ttdb: ReExec outside repair")
	}
	db.clock.AdvanceTo(t)

	switch s := stmt.(type) {
	case *sqldb.Insert:
		m, err := db.lockTable(s.Table)
		if err != nil {
			return nil, nil, err
		}
		defer m.mu.Unlock()
		return db.reExecInsert(s, params, t, st, orig, m)
	case *sqldb.Update:
		m, err := db.lockTable(s.Table)
		if err != nil {
			return nil, nil, err
		}
		defer m.mu.Unlock()
		return db.reExecWrite(stmt, s.Table, s.Where, params, t, st, orig, m)
	case *sqldb.Delete:
		m, err := db.lockTable(s.Table)
		if err != nil {
			return nil, nil, err
		}
		defer m.mu.Unlock()
		return db.reExecWrite(stmt, s.Table, s.Where, params, t, st, orig, m)
	default:
		// Reads re-execute at their original time; DDL during repair
		// replays as-is in the shared schema space.
		m, unlock, err := db.lockFor(stmt)
		if err != nil {
			return nil, nil, err
		}
		defer unlock()
		return db.execAt(stmt, params, t, st.next, orig, m)
	}
}

func (db *DB) reExecInsert(s *sqldb.Insert, params []sqldb.Value, t int64, st repairState, orig *Record, m *tableMeta) (*sqldb.Result, *Record, error) {
	db.markDirty(m.name)
	dirt := NewPartitionSet()
	if orig != nil {
		for _, id := range orig.WriteRowIDs {
			ps, err := db.rollbackRowLocked(m, id, t, st)
			if err != nil {
				return nil, nil, err
			}
			dirt.AddAll(ps)
		}
	}
	res, rec, err := db.execAt(s, params, t, st.next, orig, m)
	if err != nil && rec == nil {
		return nil, nil, err
	}
	if rec != nil {
		set := NewPartitionSet()
		set.AddAll(rec.WritePartitions)
		set.AddAll(dirt.Slice())
		rec.WritePartitions = set.Slice()
	}
	return res, rec, err
}

// reExecWrite implements two-phase re-execution for UPDATE and DELETE.
func (db *DB) reExecWrite(stmt sqldb.Statement, table string, where sqldb.Expr, params []sqldb.Value, t int64, st repairState, orig *Record, m *tableMeta) (*sqldb.Result, *Record, error) {
	db.markDirty(m.name) // phases B/C mutate even when the final exec fails
	next := st.next

	// Phase A: find the rows the new WHERE clause matches at time t in the
	// repair generation.
	var userWhere sqldb.Expr
	if where != nil {
		userWhere = where.CloneExpr()
	}
	sel := &sqldb.Select{
		Items: []sqldb.SelectItem{{Expr: sqldb.Col(m.rowIDCol)}},
		Table: table,
		Where: sqldb.And(userWhere, liveWhere(t, next)),
	}
	newRes, err := db.raw.ExecStmt(sel, params)
	if err != nil {
		return nil, nil, err
	}

	// Phase B: roll back original ∪ new row IDs to just before t.
	seen := make(map[string]bool)
	var all []sqldb.Value
	if orig != nil {
		for _, id := range orig.WriteRowIDs {
			if !seen[id.Key()] {
				seen[id.Key()] = true
				all = append(all, id)
			}
		}
	}
	for _, row := range newRes.Rows {
		if !seen[row[0].Key()] {
			seen[row[0].Key()] = true
			all = append(all, row[0])
		}
	}
	dirt := NewPartitionSet()
	for _, id := range all {
		ps, err := db.rollbackRowLocked(m, id, t, st)
		if err != nil {
			return nil, nil, err
		}
		dirt.AddAll(ps)
	}

	// Phase C: execute the write at t in the repair generation, preserving
	// any still-shared matched rows for the current generation first.
	if err := db.preserveSharedMatches(m, userWhere, params, t, next); err != nil {
		return nil, nil, err
	}
	res, rec, err := db.execAt(stmt, params, t, next, orig, m)
	if err != nil && rec == nil {
		return nil, nil, err
	}
	if rec != nil {
		set := NewPartitionSet()
		set.AddAll(rec.WritePartitions)
		set.AddAll(dirt.Slice())
		rec.WritePartitions = set.Slice()
	}
	return res, rec, err
}

// preserveSharedMatches implements §4.4: before a repair-generation write
// touches rows still shared with the current generation, each such row is
// demoted and a next-generation copy takes its place.
func (db *DB) preserveSharedMatches(m *tableMeta, userWhere sqldb.Expr, params []sqldb.Value, t, next int64) error {
	var w sqldb.Expr
	if userWhere != nil {
		w = userWhere.CloneExpr()
	}
	where := sqldb.And(w, liveWhere(t, next),
		&sqldb.BinaryExpr{Op: sqldb.OpLt, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(next))})
	res, err := db.selectPhysical(m, where, params)
	if err != nil {
		return err
	}
	for _, pr := range db.decodePhysical(m, res) {
		if err := db.demote(m, pr); err != nil {
			return err
		}
		if err := db.insertCopy(m, pr, pr.end, next, Infinity); err != nil {
			return err
		}
	}
	return nil
}

// GC discards row versions that ended before the horizon, in sync with the
// action history graph's garbage collection (§4.2). Rollback to a time at
// or before the horizon becomes impossible afterwards, and partition-index
// entries older than the horizon are pruned. GC is refused while a repair
// is in progress.
func (db *DB) GC(beforeTime int64) error {
	metas := db.lockAll()
	defer db.unlockAll(metas)
	if db.inRepair {
		return fmt.Errorf("ttdb: GC during repair")
	}
	cur := db.currentGen.Load()
	db.markAllDirty() // GC rewrites every table's physical row set
	for _, m := range metas {
		del := &sqldb.Delete{
			Table: m.name,
			Where: &sqldb.BinaryExpr{
				Op:   sqldb.OpOr,
				Left: &sqldb.BinaryExpr{Op: sqldb.OpLt, Left: sqldb.Col(ColEndTime), Right: sqldb.Lit(sqldb.Int(beforeTime))},
				Right: &sqldb.BinaryExpr{
					Op: sqldb.OpLt, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(cur)),
				},
			},
		}
		if _, err := db.raw.ExecStmt(del, nil); err != nil {
			return err
		}
		m.pruneIndexBefore(beforeTime)
	}
	if beforeTime > db.gcBefore {
		db.gcBefore = beforeTime
	}
	if db.obs != nil {
		db.obs.Collected(beforeTime)
	}
	return nil
}
