// Command warp-demo runs the six §8.2 attack scenarios end to end on a
// small multi-user workload and narrates what WARP does for each: the
// attack, the recovery initiation (retroactive patch or visit undo), and
// the verified outcome. It is the quickest way to see the whole system
// work.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"warp/internal/attacks"
	"warp/internal/webapp/wiki"
	"warp/internal/workload"
)

func main() {
	users := flag.Int("users", 12, "workload size")
	only := flag.String("scenario", "", "run a single scenario by name")
	flag.Parse()

	for _, sc := range attacks.Scenarios() {
		if *only != "" && sc.Name != *only {
			continue
		}
		if err := runScenario(sc, *users); err != nil {
			fmt.Fprintf(os.Stderr, "warp-demo: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
	}
}

func runScenario(sc *attacks.Scenario, users int) error {
	fmt.Printf("════ %s ════\n", sc.Name)
	if v, ok := (&wiki.App{}).VulnerabilityByKind(sc.Name); ok && v.CVE != "—" {
		fmt.Printf("vulnerability: %s in %s — %s\n", v.CVE, v.File, v.Description)
		fmt.Printf("fix: %s\n", v.Fix)
	}
	res, err := workload.Run(workload.Config{Users: users, Victims: 3, Seed: 99, Scenario: sc})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d users, %d page visits, %d app runs, %d queries; attack executed\n",
		users, res.PageVisits, res.AppRuns, res.Queries)

	team, _ := res.Env.App.PageContent(res.Env.TargetPage)
	fmt.Printf("state before repair: team page %d bytes", len(team))
	if strings.Contains(team, "PWNED") || strings.Contains(team, "mooo") {
		fmt.Printf(" (CORRUPTED)")
	}
	fmt.Printf("\ninitiating %s…\n", sc.InitialRepair)

	rep, err := sc.Repair(res.Env)
	if err != nil {
		return err
	}
	fmt.Println("repair:", rep.String())

	team, _ = res.Env.App.PageContent(res.Env.TargetPage)
	clean := !strings.Contains(team, "PWNED") && !strings.Contains(team, "mooo")
	if got, _ := res.Env.App.PageContent("Main"); strings.Contains(got, "SQLI-ATTACK") {
		clean = false
	}
	if got, _ := res.Env.App.PageContent("Restricted"); strings.Contains(got, "should not") {
		clean = false
	}
	preserved := true
	for _, u := range res.Env.Others {
		if !strings.Contains(team, "note from "+u.Name) {
			preserved = false
		}
	}
	fmt.Printf("verified: attack undone=%v, legitimate work preserved=%v, users needing input=%d\n\n",
		clean, preserved, rep.UsersWithConflicts())
	return nil
}
