// Quickstart: the smallest end-to-end WARP use, against the public API
// only — now with durable persistence. It builds a one-file guestbook
// with an XSS bug on a persistent store, records normal operation
// (including an attack), then simulates a deploy: the process "restarts"
// by closing and reopening the store. The action history graph and the
// time-travel database survive the restart — which is exactly what makes
// the next step possible: retroactively patching the bug on the
// *reopened* deployment, so the attack's effects disappear while the
// legitimate entries survive.
package main

import (
	"fmt"
	"os"
	"strings"

	"warp"
)

// guestbook returns the application page. Application code is not
// persisted (like PHP source, it lives outside the database), so both
// runs register it; sanitize selects the patched version.
func guestbook(sanitize bool) warp.Script {
	return func(c *warp.Ctx) *warp.Response {
		if msg := c.Req.Param("msg"); msg != "" {
			if sanitize {
				msg = strings.NewReplacer("<", "&lt;", ">", "&gt;").Replace(msg)
			}
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM entries").FirstValue()
			c.MustQuery("INSERT INTO entries (id, author, msg) VALUES (?, ?, ?)",
				id, warp.Text(c.Req.Param("author")), warp.Text(msg))
		}
		res := c.MustQuery("SELECT author, msg FROM entries ORDER BY id")
		var b strings.Builder
		b.WriteString("<html><body><h1>Guestbook</h1><ul>")
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "<li>%s: %s</li>", row[0].AsText(), row[1].AsText())
		}
		b.WriteString("</ul></body></html>")
		return &warp.Response{Status: 200, Body: b.String(),
			Headers: map[string]string{"Content-Type": "text/html"}, SetCookies: map[string]string{}}
	}
}

// install is the application's setup, run on every process start. It is
// idempotent: re-annotation of an identical spec is a no-op and the DDL
// uses IF NOT EXISTS, so it works on both a fresh and a recovered store.
func install(sys *warp.System, sanitize bool) {
	must(sys.DB.Annotate("entries", warp.TableSpec{
		RowIDColumn:      "id",
		PartitionColumns: []string{"author"},
	}))
	_, _, err := sys.DB.Exec(`CREATE TABLE IF NOT EXISTS entries (id INTEGER PRIMARY KEY, author TEXT, msg TEXT)`)
	must(err)
	note := "vulnerable: stored XSS"
	if sanitize {
		note = "sanitize on save"
	}
	must(sys.Runtime.Register("guestbook.php", warp.Version{Entry: guestbook(sanitize), Note: note}))
	sys.Runtime.Mount("/", "guestbook.php")
}

func main() {
	dir, err := os.MkdirTemp("", "warp-quickstart-*")
	must(err)
	defer os.RemoveAll(dir)

	// --- First process lifetime: normal operation, including an attack.
	sys, err := warp.Open(dir, warp.Config{Seed: 1})
	must(err)
	install(sys, false)

	alice := sys.NewBrowser()
	mallory := sys.NewBrowser()
	alice.Open("/?author=alice&msg=hello+world")
	mallory.Open("/?author=mallory&msg=" + "%3Cscript%3Ewarpjs%3A%20get%20%2Fsteal%3C%2Fscript%3E")
	victim := sys.NewBrowser()
	victim.Open("/") // the victim's browser would run the injected script

	before, _, _ := sys.DB.Exec("SELECT COUNT(*) FROM entries")
	fmt.Printf("run 1: %d entries, script stored: %v, history actions: %d\n",
		before.FirstValue().AsInt(), contains(sys, "<script>"), sys.Graph.Len())
	must(sys.Close()) // deploy: the process exits

	// --- Second process lifetime: reopen the same store. The history
	// graph and versioned database are recovered from disk — without
	// them, the audit trail repair depends on would be gone.
	sys, err = warp.Open(dir, warp.Config{Seed: 1})
	must(err)
	install(sys, false)
	st := sys.Recovery()
	fmt.Printf("run 2: recovered snapshot=%v walRecords=%d, history actions: %d, entries survive: %v\n",
		st.FromSnapshot, st.WALRecords, sys.Graph.Len(), contains(sys, "hello world"))

	// The developers publish a patch: retroactively apply it to the
	// recovered history. WARP re-executes every recorded run of
	// guestbook.php against the fixed code and repairs everything the
	// attack influenced.
	report, err := sys.RetroPatch("guestbook.php", warp.Version{Entry: guestbook(true), Note: "sanitize on save"})
	must(err)

	after, _, _ := sys.DB.Exec("SELECT COUNT(*) FROM entries")
	fmt.Printf("after repair:  %d entries, script stored: %v\n",
		after.FirstValue().AsInt(), contains(sys, "<script>"))
	fmt.Println("repair report:", report.String())
	must(sys.Close())
}

func contains(sys *warp.System, needle string) bool {
	res, _, err := sys.DB.Exec("SELECT msg FROM entries")
	if err != nil {
		return false
	}
	for _, row := range res.Rows {
		if strings.Contains(row[0].AsText(), needle) {
			return true
		}
	}
	return false
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
