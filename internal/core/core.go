// Package core wires WARP together (paper Figure 1): the logging HTTP
// server manager, the application runtime and its repair manager, the
// time-travel database, the browser log store, and the repair controller.
//
// During normal execution every HTTP request flows through HandleRequest,
// which runs the application, records the run and its queries as actions
// in the action history graph, and accounts log storage. Browser
// extensions upload per-visit event logs through UploadVisitLog.
//
// Repair (repair.go) is initiated by RetroPatch or UndoVisit and follows
// the paper's rollback-and-reexecute scheme over the graph.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/httpd"
	"warp/internal/obs"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/ttdb"
	"warp/internal/vclock"
)

// Config carries tunables for a WARP deployment.
type Config struct {
	// Seed drives all simulated nondeterminism (tokens, client IDs).
	Seed int64
	// Replay selects browser re-execution fidelity; nil means full WARP
	// replay. The degraded configurations reproduce the paper's Table 4.
	Replay *browser.ReplayConfig
	// ClientLogQuota bounds the number of visit logs retained per client,
	// so one client cannot monopolize (or starve) server log space (§5.2).
	// 0 means the default of 100000.
	ClientLogQuota int
	// RepairWorkers is the number of parallel repair workers the scheduler
	// dispatches ready actions to. Actions on disjoint time-travel
	// partitions repair concurrently; conflicting actions retain the
	// paper's time order. 0 means GOMAXPROCS; 1 reproduces the serial
	// repair engine exactly.
	RepairWorkers int
	// TableGranularLocks restores the pre-partition-lock concurrency
	// model: every database operation takes its whole table's lock and
	// page-visit replays are globally exclusive. Repair outcomes are
	// identical either way; the knob exists for comparison benchmarks
	// (BenchmarkPartitionRepair's baseline) and as an operational escape
	// hatch. See docs/repair.md.
	TableGranularLocks bool
	// RepairSLO is the live-request p99 latency target an online repair
	// paces itself against: a throttle governor samples the
	// warp_core_request_seconds histogram while repair runs and sheds
	// repair-worker concurrency whenever live p99 exceeds the target
	// (throttle.go). 0 disables the governor; the governor also needs
	// obs enabled to see the histogram.
	RepairSLO time.Duration
	// ExclusiveRepair restores the paper's stop-the-world behavior:
	// the deployment suspends for the whole repair instead of only the
	// final generation-switch commit window. The repair outcome is
	// identical either way (TestOnlineRepairMatchesExclusive); the knob
	// is the baseline for BenchmarkOnlineRepair and an operational
	// escape hatch. See docs/repair.md.
	ExclusiveRepair bool
	// Trace, when set, receives a line for every repair-controller step —
	// the debugging view of what rollback-and-reexecute decided and why.
	Trace func(format string, args ...any)
	// Durability tunes the write-ahead log and snapshot store for
	// deployments created with Open (docs/persistence.md); New ignores
	// it. The zero value selects the store's defaults: windowed group
	// commit, 16 MiB segments, checkpoint every 64 MiB of WAL.
	Durability store.Options
}

// Warp is one WARP-managed web application deployment.
type Warp struct {
	Clock   *vclock.Clock
	DB      *ttdb.DB
	Runtime *app.Runtime
	Graph   *history.Graph

	cfg Config
	rng *rand.Rand
	// rngDraws counts values drawn from rng (browser seeds); persisted in
	// core/meta so a recovered deployment resumes the seeded stream
	// instead of re-issuing recovered client identities. Atomic so the
	// persister's RecordApplied observer — which runs under ttdb lock
	// scopes and must not take w.mu (core.GC holds w.mu while acquiring
	// scopes) — can read it when ordering cursor WAL records ahead of
	// mutation records.
	rngDraws atomic.Int64

	// mu guards the log stores, indexes, queues, and counters below.
	// suspendMu implements the brief repair cut-over suspension (§4.3):
	// requests hold it shared; Suspend takes it exclusively.
	// repairMu serializes repairs.
	mu        sync.Mutex
	suspendMu sync.RWMutex
	repairMu  sync.Mutex

	// Browser log store (§5.2): per-client visit logs under quota.
	visitLogs  map[string][]*browser.VisitLog
	visitByID  map[string]map[int64]*browser.VisitLog
	visitOrder []*browser.VisitLog // all logs in upload order

	// HTTP server manager state: exchange node → app-run action.
	runByHTTP map[history.NodeID]history.ActionID
	srvReqSeq int64 // request counter for extensionless clients

	// Partition index: table → partition nodes seen, for conservative
	// whole-table dirt fan-out during repair.
	partsByTable map[string]map[history.NodeID]bool

	// Cookie invalidation queue (§5.3) and conflict queue (§5.4).
	cookieInvalid map[string][]string
	conflicts     []browser.Conflict

	// Storage accounting (Table 6).
	browserLogBytes int
	appLogBytes     int
	dbLogBytes      int

	// Durable persistence (persist.go). pers is nil for in-memory
	// deployments (New); pendingIntent is the repair a crashed instance
	// left in flight; recovery summarizes what Open restored.
	pers          *persister
	pendingIntent *RepairIntent
	recovery      RecoveryStats

	// lastRepairTrace is the phase trace of the current (or most recent)
	// repair session; set only while obs is enabled. Atomic so Metrics
	// can read it live while a repair runs.
	lastRepairTrace atomic.Pointer[obs.Trace]

	// admission is the live-write admission gate of the currently running
	// online repair (admission.go), nil outside repair. Atomic because
	// every request loads it on its query path.
	admission atomic.Pointer[admissionGate]

	// degraded is the terminal storage-fault record of a deployment in
	// degraded read-only mode (degraded.go), nil while healthy. Atomic
	// because write paths test it without taking Warp.mu.
	degraded atomic.Pointer[degradedState]

	// recoveredFileVersions is the file → version-count map the last
	// checkpoint recorded. The application re-registers its code after
	// Open (code is not persisted); StaleFiles compares the two so a
	// recovered deployment detects stale registration instead of
	// silently replaying with mismatched handlers.
	recoveredFileVersions map[string]int
}

// New creates a WARP deployment with a fresh clock, database, runtime, and
// history graph.
func New(cfg Config) *Warp {
	if cfg.ClientLogQuota == 0 {
		cfg.ClientLogQuota = 100000
	}
	if cfg.Replay == nil {
		full := browser.FullReplay
		cfg.Replay = &full
	}
	clock := &vclock.Clock{}
	db := ttdb.Open(clock)
	if cfg.TableGranularLocks {
		db.SetTableGranularLocks(true)
	}
	return &Warp{
		Clock:         clock,
		DB:            db,
		Runtime:       app.NewRuntime(db, cfg.Seed),
		Graph:         history.New(),
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed ^ 0x5741525f)),
		visitLogs:     make(map[string][]*browser.VisitLog),
		visitByID:     make(map[string]map[int64]*browser.VisitLog),
		runByHTTP:     make(map[history.NodeID]history.ActionID),
		partsByTable:  make(map[string]map[history.NodeID]bool),
		cookieInvalid: make(map[string][]string),
	}
}

// RunPayload is the graph payload for an application-run action.
type RunPayload struct {
	Rec *app.RunRecord
	// FileVersions snapshots the code versions the run used, so repair can
	// prune runs whose code is unchanged.
	FileVersions map[string]int
	// QueryActions are the graph actions for the run's queries. Guarded by
	// Warp.mu once the run action is published to the graph.
	QueryActions []history.ActionID
	// Superseded marks runs replaced or cancelled during a repair: their
	// recorded effects no longer describe the repaired timeline. Atomic
	// because parallel repair workers flag and test it concurrently.
	Superseded atomic.Bool
	// Repaired marks actions appended by repair itself.
	Repaired bool
}

// QueryPayload is the graph payload for a query action.
type QueryPayload struct {
	Rec       *ttdb.Record
	RunAction history.ActionID
	// Superseded is atomic for the same reason as RunPayload.Superseded.
	Superseded atomic.Bool
	Repaired   bool

	// run is the owning run's payload; Rec aliases run.Rec.Queries[i].
	// The persistence codec uses it to encode the alias as a reference
	// (codec.go) without a graph lookup.
	run *RunPayload
}

// httpNodeFor derives the HTTP exchange node for a request, assigning a
// server-side identifier to requests from extensionless clients (the
// paper's server-side request IDs, §7). Caller holds w.mu.
func (w *Warp) httpNodeFor(req *httpd.Request) history.NodeID {
	if req.ClientID != "" {
		return history.HTTPNode(req.ClientID, req.VisitID, req.RequestID)
	}
	w.srvReqSeq++
	return history.HTTPNode("srv", 0, w.srvReqSeq)
}

// httpNodeForReplay derives the exchange node for a replay-path request,
// which always carries client identifiers.
func (w *Warp) httpNodeForReplay(req *httpd.Request) history.NodeID {
	return history.HTTPNode(req.ClientID, req.VisitID, req.RequestID)
}

// HandleRequest serves one request under normal execution: route, run the
// application, record the run in the history graph. It is the Apache +
// WARP-logging-module path of Figure 1. Requests block briefly while a
// finishing repair cuts over (§4.3) but otherwise run concurrently with
// repair.
func (w *Warp) HandleRequest(req *httpd.Request) *httpd.Response {
	requestsTotal.Inc()
	if !obs.Enabled() {
		return w.handleRequest(req)
	}
	start := time.Now()
	resp := w.handleRequest(req)
	requestHist.Observe(time.Since(start))
	return resp
}

func (w *Warp) handleRequest(req *httpd.Request) *httpd.Response {
	w.suspendMu.RLock()
	defer w.suspendMu.RUnlock()

	// Cookie invalidation (§5.3): if repair left this client's replayed
	// cookie diverged, delete the cookie on its next contact.
	w.mu.Lock()
	var invalidated []string
	if names, ok := w.cookieInvalid[req.ClientID]; ok && req.ClientID != "" {
		for _, n := range names {
			delete(req.Cookies, n)
		}
		invalidated = names
		delete(w.cookieInvalid, req.ClientID)
	}
	w.mu.Unlock()

	file, ok := w.Runtime.RouteOf(req.Path)
	if !ok {
		return httpd.NotFound("no route for " + req.Path)
	}
	rec, err := w.Runtime.Run(file, req, w.liveQueryFunc(), nil)
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	w.recordRun(rec, nil)
	resp := rec.Resp
	for _, n := range invalidated {
		resp.ClearCookie(n)
	}
	return resp
}

// recordRun appends a run and its queries to the action history graph.
// When repaired is non-nil the actions are flagged as produced by repair.
func (w *Warp) recordRun(rec *app.RunRecord, repaired *bool) history.ActionID {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pers != nil {
		// Any fresh Token/RandInt draws this run made advanced the
		// runtime's nondeterminism cursor; log the new position *before*
		// the action records below, so on the metadata shard a recovered
		// action always implies the cursor state that produced its draws
		// (a hard crash cannot rewind the stream past values durable
		// state depends on).
		w.pers.logCursors(w.Runtime.RNGCursor(), w.rngDraws.Load())
	}
	httpNode := w.httpNodeFor(rec.Req)
	runAct := &history.Action{
		Kind: history.KindAppRun,
		Time: rec.Time,
	}
	payload := &RunPayload{Rec: rec, FileVersions: make(map[string]int)}
	if repaired != nil {
		payload.Repaired = *repaired
	}
	runAct.Payload = payload
	for _, f := range rec.FilesLoaded {
		payload.FileVersions[f] = w.Runtime.FileVersion(f)
		runAct.Inputs = append(runAct.Inputs, history.Dep{Node: history.FileNode(f), Time: rec.Time})
	}
	runAct.Inputs = append(runAct.Inputs, history.Dep{Node: httpNode, Time: rec.Time})
	runAct.Outputs = append(runAct.Outputs, history.Dep{Node: httpNode, Time: rec.Time})
	if rec.Req.ClientID != "" {
		cookieNode := history.CookieNode(rec.Req.ClientID)
		if len(rec.Req.Cookies) > 0 {
			runAct.Inputs = append(runAct.Inputs, history.Dep{Node: cookieNode, Time: rec.Time})
		}
		if rec.Resp != nil && (len(rec.Resp.SetCookies) > 0 || len(rec.Resp.ClearCookies) > 0) {
			runAct.Outputs = append(runAct.Outputs, history.Dep{Node: cookieNode, Time: rec.Time})
		}
	}
	runID := w.Graph.Append(runAct)
	w.runByHTTP[httpNode] = runID

	for _, q := range rec.Queries {
		qa := &history.Action{
			Kind:    history.KindQuery,
			Time:    q.Time,
			Payload: &QueryPayload{Rec: q, RunAction: runID, Repaired: payload.Repaired, run: payload},
		}
		for _, p := range q.ReadPartitions {
			qa.Inputs = append(qa.Inputs, history.Dep{Node: w.partNode(p), Time: q.Time})
		}
		for _, p := range q.WritePartitions {
			qa.Outputs = append(qa.Outputs, history.Dep{Node: w.partNode(p), Time: q.Time})
		}
		payload.QueryActions = append(payload.QueryActions, w.Graph.Append(qa))
	}
	w.appLogBytes += rec.ApproxLogBytes()
	w.dbLogBytes += rec.DBLogBytes()
	return runID
}

// partNode interns a partition node and indexes it by table.
func (w *Warp) partNode(p ttdb.Partition) history.NodeID {
	node := history.PartitionNode(p.String())
	byTable, ok := w.partsByTable[p.Table]
	if !ok {
		byTable = make(map[history.NodeID]bool)
		w.partsByTable[p.Table] = byTable
	}
	byTable[node] = true
	return node
}

// UploadVisitLog receives a visit log from a client's browser extension
// and stores it in the per-client log store under quota (§5.2). The log
// object is shared with the live browser, which keeps appending events; in
// the real system uploads are periodic, and the in-process sharing models
// "upload before repair needs it".
func (w *Warp) UploadVisitLog(log *browser.VisitLog) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if log.ClientID == "" {
		return
	}
	visitLogsTotal.Inc()
	log.Time = w.Clock.Now()
	w.insertVisitLogLocked(log)
	if w.pers != nil {
		w.pers.logVisit(log)
	}
}

// insertVisitLogLocked stores one visit log in the per-client stores
// under quota. Shared by live uploads and WAL recovery so the quota and
// accounting rules cannot drift apart. Caller holds w.mu.
func (w *Warp) insertVisitLogLocked(log *browser.VisitLog) {
	logs := w.visitLogs[log.ClientID]
	if len(logs) >= w.cfg.ClientLogQuota {
		// Quota: drop the oldest log for this client, so one client cannot
		// cause collection of others' entries (§5.2).
		drop := logs[0]
		logs = logs[1:]
		delete(w.visitByID[log.ClientID], drop.VisitID)
	}
	w.visitLogs[log.ClientID] = append(logs, log)
	byID, ok := w.visitByID[log.ClientID]
	if !ok {
		byID = make(map[int64]*browser.VisitLog)
		w.visitByID[log.ClientID] = byID
	}
	byID[log.VisitID] = log
	w.visitOrder = append(w.visitOrder, log)
	w.browserLogBytes += log.ApproxLogBytes()
}

// NewBrowser creates a client browser wired to this deployment: its
// transport is the WARP server and its extension uploads logs here.
func (w *Warp) NewBrowser() *browser.Browser {
	w.mu.Lock()
	draws := w.rngDraws.Add(1)
	rng := rand.New(rand.NewSource(w.rng.Int63()))
	w.mu.Unlock()
	if w.pers != nil {
		w.pers.logCursors(w.Runtime.RNGCursor(), draws)
	}
	return browser.New(w.HandleRequest, w.UploadVisitLog, rng)
}

// StaleFiles returns the source files whose currently registered version
// count is behind what the recovered checkpoint recorded — evidence that
// the application re-registered older code than the deployment was
// running when it went down (e.g. a retroactive patch not yet
// re-applied). Repair refuses to run while any file is stale, since
// re-executing recorded runs through mismatched handlers would silently
// corrupt the repaired timeline; re-Patch the files (or resume the
// pending patch intent) to clear them.
func (w *Warp) StaleFiles() []string {
	var out []string
	for f, recorded := range w.recoveredFileVersions {
		if w.Runtime.FileVersion(f) < recorded {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// Suspend blocks request processing until Resume: the brief cut-over
// suspension at the end of repair (§4.3). In-flight requests complete
// first.
func (w *Warp) Suspend() { w.suspendMu.Lock() }

// Resume re-enables request processing.
func (w *Warp) Resume() { w.suspendMu.Unlock() }

// Conflicts returns the queued conflicts awaiting user resolution (§5.4).
func (w *Warp) Conflicts() []browser.Conflict {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]browser.Conflict{}, w.conflicts...)
}

// ConflictsFor returns the queued conflicts for one client, the set shown
// on the user's conflict resolution page when they next log in.
func (w *Warp) ConflictsFor(clientID string) []browser.Conflict {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []browser.Conflict
	for _, c := range w.conflicts {
		if c.Client == clientID {
			out = append(out, c)
		}
	}
	return out
}

// PendingCookieInvalidation reports whether a client's cookies are queued
// for deletion (§5.3).
func (w *Warp) PendingCookieInvalidation(clientID string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.cookieInvalid[clientID]
	return ok
}

// ResolveConflictByCancel implements the paper's conflict resolution UI
// (§5.4, §6): the user, shown a queued conflict for one of their page
// visits, chooses to cancel that visit altogether — all of its HTTP
// requests are undone in a new repair, and the conflict is dequeued.
// Canceling one's own conflicted visit is permitted even when it
// propagates conflicts to other users (§5.5's exception).
func (w *Warp) ResolveConflictByCancel(clientID string, visitID int64) (*Report, error) {
	w.mu.Lock()
	found := false
	rest := w.conflicts[:0]
	for _, c := range w.conflicts {
		if c.Client == clientID && c.VisitID == visitID {
			found = true
			continue
		}
		rest = append(rest, c)
	}
	w.conflicts = rest
	w.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("warp: no queued conflict for %s/%d", clientID, visitID)
	}
	// The §5.5 exception: resolving one's own reported conflict may cancel
	// even if that creates conflicts for others, so this runs with
	// administrator-strength undo. The dequeue marker travels with the
	// durable repair intent so a crashed resolution resumes completely.
	return w.undoVisit(clientID, visitID, true, true)
}

// StorageStats reports log storage by layer, the Table 6 accounting.
type StorageStats struct {
	BrowserLogBytes int
	AppLogBytes     int
	DBLogBytes      int
	DBRowBytes      int
	PageVisits      int
}

// Storage returns current storage statistics.
func (w *Warp) Storage() StorageStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return StorageStats{
		BrowserLogBytes: w.browserLogBytes,
		AppLogBytes:     w.appLogBytes,
		DBLogBytes:      w.dbLogBytes,
		DBRowBytes:      w.DB.Stats().ApproxBytes,
		PageVisits:      len(w.visitOrder),
	}
}

// ExecStats returns the database layer's execution-path counters:
// statement-cache and compiled-plan hit rates and index-scan vs
// full-scan counts. A plan hit-rate near zero means statements are
// being rebuilt per call; a high full-scan share means the workload's
// predicates are not riding the indexes.
func (w *Warp) ExecStats() sqldb.ExecStats {
	return w.DB.ExecStats()
}

// Metrics is the deployment-wide observability snapshot: the engine's
// execution counters, every registered obs metric (latency histograms,
// progress gauges, throughput counters across sqldb/ttdb/store/core),
// and — when obs is enabled and a repair has run — the phase trace of
// the current or most recent repair session.
type Metrics struct {
	Exec   sqldb.ExecStats
	Obs    obs.Snapshot
	Repair *obs.TraceSnapshot
}

// Metrics snapshots the deployment's observability state. Safe to call
// at any time, including while a repair is running — the repair trace
// reflects live phase progress.
func (w *Warp) Metrics() Metrics {
	m := Metrics{Exec: w.ExecStats(), Obs: obs.Default.Snapshot()}
	if tr := w.lastRepairTrace.Load(); tr != nil {
		s := tr.Snapshot()
		m.Repair = &s
	}
	return m
}

// GC discards history older than beforeTime from both the database and
// the graph, moving both horizons together (§4.2).
func (w *Warp) GC(beforeTime int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.DB.GC(beforeTime); err != nil {
		return err
	}
	w.Graph.GC(beforeTime)
	return nil
}

// visitsOfClient returns a client's visit logs in upload order.
func (w *Warp) visitsOfClient(clientID string) []*browser.VisitLog {
	return w.visitLogs[clientID]
}

// childVisits returns the visits created from a parent visit, in order.
func (w *Warp) childVisits(clientID string, parentVisit int64) []*browser.VisitLog {
	var out []*browser.VisitLog
	for _, v := range w.visitLogs[clientID] {
		if v.ParentVisit == parentVisit {
			out = append(out, v)
		}
	}
	return out
}
