package wiki

import (
	"fmt"
	"net/url"
	"strings"

	"warp/internal/app"
	"warp/internal/dom"
	"warp/internal/httpd"
	"warp/internal/sqldb"
)

// Common is the library exported by common.php: page layout, response
// decoration (where the clickjacking defense lives), and the sanitizer.
type Common struct {
	Layout   func(title, body string) string
	Decorate func(*httpd.Response) *httpd.Response
	Sanitize func(string) string
}

// commonV1 is the vulnerable common library: Decorate adds no
// anti-framing header (CVE-2011-0003).
func (a *App) commonV1() Common {
	return Common{
		Layout:   layout,
		Decorate: func(r *httpd.Response) *httpd.Response { return r },
		Sanitize: dom.Escape,
	}
}

func layout(title, body string) string {
	return fmt.Sprintf(`<html><head><title>%s</title></head><body>`+
		`<div id="sitehead">GoWiki</div>`+
		`<div id="nav"><a href="/index.php?title=Main">home</a> <a href="/blocklog.php">block log</a> <a href="/login.php">log in</a></div>`+
		`<div id="body">%s</div>`+
		`</body></html>`, dom.Escape(title), body)
}

// common loads the common.php library, recording the dependency.
func (a *App) common(c *app.Ctx) Common {
	lib, err := c.Include("common.php")
	if err != nil {
		panic(err)
	}
	return lib.(Common)
}

// currentUser resolves the session cookie to (user name, admin), or
// ("", false) when not logged in.
func (a *App) currentUser(c *app.Ctx) (string, bool) {
	sid := c.Req.Cookie("sid")
	if sid == "" {
		return "", false
	}
	res, err := c.Query("SELECT user_id FROM sessions WHERE sid = ?", sqldb.Text(sid))
	if err != nil || res.Empty() {
		return "", false
	}
	uid := res.FirstValue()
	res, err = c.Query("SELECT name, is_admin FROM users WHERE user_id = ?", uid)
	if err != nil || res.Empty() {
		return "", false
	}
	return res.Rows[0][0].AsText(), res.Rows[0][1].IsTrue()
}

// indexPHP renders a wiki page. Content is stored sanitized (edit.php) or
// not (injections), and renders verbatim — the sanitize-on-save model.
func (a *App) indexPHP(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	title := c.Req.Param("title")
	if title == "" {
		title = "Main"
	}
	res, err := c.Query("SELECT content, last_editor FROM pages WHERE title = ?", sqldb.Text(title))
	if err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	if res.Empty() {
		body := fmt.Sprintf(`<p>No page titled %s.</p>`, dom.Escape(title))
		return lib.Decorate(httpd.HTML(lib.Layout(title, body)))
	}
	content := res.Rows[0][0].AsText()
	editor := res.Rows[0][1].AsText()
	body := fmt.Sprintf(
		`<h1>%s</h1><div id="content">%s</div>`+
			`<div id="byline">last edited by %s</div>`+
			`<a href="/edit.php?title=%s">edit this page</a>`+
			`<form action="/append.php" method="post" id="quickappend">`+
			`<input type="hidden" name="back" value="%s"/>`+
			`<input type="text" name="title" value=""/>`+
			`<input type="text" name="text" value=""/>`+
			`<input type="submit" name="add" value="Quick append"/>`+
			`</form>`,
		dom.Escape(title), content, dom.Escape(editor), url.QueryEscape(title), dom.EscapeAttr(title))
	return lib.Decorate(httpd.HTML(lib.Layout(title, body)))
}

// appendPHP appends text to a page without reading it (the MediaWiki
// section-append analog): a pure write, so repairing the target page
// re-applies appends without any browser-level cascade.
func (a *App) appendPHP(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	user, _ := a.currentUser(c)
	if user == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Login required", `<p>log in first</p>`)))
	}
	title := c.Req.Param("title")
	text := lib.Sanitize(c.Req.Param("text"))
	if title == "" || text == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Append", "<p>nothing to do</p>")))
	}
	if _, err := c.Query(
		"UPDATE pages SET content = content || ?, last_editor = ? WHERE title = ?",
		sqldb.Text("\n"+text), sqldb.Text(user), sqldb.Text(title)); err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	back := c.Req.Param("back")
	if back == "" {
		back = title
	}
	return lib.Decorate(httpd.Redirect("/index.php?title=" + url.QueryEscape(back)))
}

// editPHP renders the edit form (GET) and saves a page (POST), enforcing
// page protection through the ACL.
func (a *App) editPHP(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	user, admin := a.currentUser(c)
	title := c.Req.Param("title")
	if title == "" {
		return lib.Decorate(httpd.NotFound("no title"))
	}
	if user == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Login required",
			`<p>You must <a href="/login.php">log in</a> to edit.</p>`)))
	}
	res, err := c.Query("SELECT page_id, content, protected FROM pages WHERE title = ?", sqldb.Text(title))
	if err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	exists := !res.Empty()
	content := ""
	protected := false
	if exists {
		content = res.Rows[0][1].AsText()
		protected = res.Rows[0][2].IsTrue()
	}
	if protected && !admin {
		aclRes, err := c.Query(
			"SELECT COUNT(*) FROM acl WHERE page_title = ? AND user_name = ?",
			sqldb.Text(title), sqldb.Text(user))
		if err != nil {
			return lib.Decorate(httpd.ServerError(err.Error()))
		}
		if aclRes.FirstValue().AsInt() == 0 {
			return lib.Decorate(httpd.HTML(lib.Layout("Permission denied",
				fmt.Sprintf(`<p>You do not have permission to edit %s.</p>`, dom.Escape(title)))))
		}
	}
	if c.Req.Method == "GET" {
		body := fmt.Sprintf(
			`<h1>Editing %s</h1>`+
				`<form action="/edit.php" method="post">`+
				`<input type="hidden" name="title" value="%s"/>`+
				`<textarea name="content">%s</textarea>`+
				`<input type="submit" name="save" value="Save"/>`+
				`</form>`,
			dom.Escape(title), dom.EscapeAttr(title), dom.Escape(content))
		return lib.Decorate(httpd.HTML(lib.Layout("Editing "+title, body)))
	}
	// POST: sanitize on save (the application's normal defense).
	newContent := lib.Sanitize(c.Req.Form.Get("content"))
	if exists {
		_, err = c.Query("UPDATE pages SET content = ?, last_editor = ? WHERE title = ?",
			sqldb.Text(newContent), sqldb.Text(user), sqldb.Text(title))
	} else {
		idRes, qerr := c.Query("SELECT COALESCE(MAX(page_id), 0) + 1 FROM pages")
		if qerr != nil {
			return lib.Decorate(httpd.ServerError(qerr.Error()))
		}
		_, err = c.Query(
			"INSERT INTO pages (page_id, title, content, last_editor) VALUES (?, ?, ?, ?)",
			idRes.FirstValue(), sqldb.Text(title), sqldb.Text(newContent), sqldb.Text(user))
	}
	if err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	return lib.Decorate(httpd.Redirect("/index.php?title=" + url.QueryEscape(title)))
}

// loginV1 is the vulnerable login: the POST path accepts credentials from
// anywhere, with no challenge token — login CSRF (CVE-2010-1150).
func (a *App) loginV1(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	if c.Req.Method == "GET" {
		return lib.Decorate(httpd.HTML(lib.Layout("Log in", loginFormHTML(""))))
	}
	return a.doLogin(c, lib, "login.sid")
}

// loginFormHTML renders the login form; extra is injected inside the form
// (the patched version adds the hidden challenge token there).
func loginFormHTML(extra string) string {
	return `<h1>Log in</h1><form action="/login.php" method="post">` +
		`<input type="text" name="user" value=""/>` +
		`<input type="text" name="password" value=""/>` + extra +
		`<input type="submit" name="go" value="Log in"/></form>`
}

// doLogin validates credentials and establishes a session. sidSite is the
// nondeterminism call site used for the session ID; the patched login uses
// a different site (it regenerates session IDs), which is what makes CSRF
// repair cascade through cookies, as in the paper's Table 7.
func (a *App) doLogin(c *app.Ctx, lib Common, sidSite string) *httpd.Response {
	user := c.Req.Form.Get("user")
	pw := c.Req.Form.Get("password")
	res, err := c.Query("SELECT user_id FROM users WHERE name = ? AND password = ?",
		sqldb.Text(user), sqldb.Text(pw))
	if err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	if res.Empty() {
		return lib.Decorate(httpd.HTML(lib.Layout("Log in", loginFormHTML("")+`<p id="err">bad credentials</p>`)))
	}
	sid := c.Token(sidSite)
	if _, err := c.Query("INSERT INTO sessions (sid, user_id) VALUES (?, ?)",
		sqldb.Text(sid), res.FirstValue()); err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	resp := httpd.Redirect("/index.php?title=Main")
	resp.SetCookie("sid", sid)
	return lib.Decorate(resp)
}

// logoutPHP drops the session.
func (a *App) logoutPHP(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	sid := c.Req.Cookie("sid")
	if sid != "" {
		if _, err := c.Query("DELETE FROM sessions WHERE sid = ?", sqldb.Text(sid)); err != nil {
			return lib.Decorate(httpd.ServerError(err.Error()))
		}
	}
	resp := httpd.Redirect("/index.php?title=Main")
	resp.ClearCookie("sid")
	return lib.Decorate(resp)
}

// blockV1 is the vulnerable block tool: the ip parameter is stored in the
// block log without sanitization (CVE-2009-4589) — the stored XSS vector.
func (a *App) blockV1(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	ip := c.Req.Param("ip")
	if ip == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Block", `<p>missing ip</p>`)))
	}
	note := "blocked: " + ip // vulnerable: raw
	if _, err := c.Query("INSERT INTO blocklog (note) VALUES (?)", sqldb.Text(note)); err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	return lib.Decorate(httpd.HTML(lib.Layout("Block", `<p>recorded</p>`)))
}

// blocklogPHP renders the block log verbatim, which is where the stored
// payload reaches victims' browsers.
func (a *App) blocklogPHP(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	res, err := c.Query("SELECT note FROM blocklog")
	if err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	var b strings.Builder
	b.WriteString("<h1>Block log</h1><ul>")
	for _, row := range res.Rows {
		b.WriteString("<li>")
		b.WriteString(row[0].AsText())
		b.WriteString("</li>")
	}
	b.WriteString("</ul>")
	return lib.Decorate(httpd.HTML(lib.Layout("Block log", b.String())))
}

// installerV1 is the vulnerable web installer: it echoes the wgDB*
// parameters without escaping (CVE-2009-0737) — the reflected XSS vector.
func (a *App) installerV1(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	var b strings.Builder
	b.WriteString("<h1>Installer</h1><p>Checking settings:</p><ul>")
	for _, opt := range []string{"wgDBserver", "wgDBname", "wgDBuser"} {
		v := c.Req.Param(opt)
		b.WriteString("<li>" + opt + " = " + v + "</li>") // vulnerable: raw
	}
	b.WriteString("</ul>")
	return lib.Decorate(httpd.HTML(lib.Layout("Installer", b.String())))
}

// maintenanceV1 is the vulnerable maintenance endpoint: thelang is
// concatenated into an UPDATE statement (CVE-2004-2186) — the SQL
// injection vector. The paper's attack supplies
// `en', content = content || '<script>…'` so that every page's content is
// modified.
func (a *App) maintenanceV1(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	thelang := c.Req.Param("thelang")
	if thelang == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Maintenance", "<p>no-op</p>")))
	}
	q := "UPDATE pages SET lang = '" + thelang + "'" // vulnerable: concatenation
	if _, err := c.Query(q); err != nil {
		return lib.Decorate(httpd.HTML(lib.Layout("Maintenance", "<p>error: "+dom.Escape(err.Error())+"</p>")))
	}
	return lib.Decorate(httpd.HTML(lib.Layout("Maintenance", "<p>language updated</p>")))
}

// aclPHP lets administrators protect pages and grant or revoke edit
// rights. The ACL-error scenario (Table 2) is an administrator granting
// the wrong user here and later undoing the visit.
func (a *App) aclPHP(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	user, admin := a.currentUser(c)
	_ = user
	title := c.Req.Param("title")
	if c.Req.Method == "GET" {
		body := fmt.Sprintf(
			`<h1>Protection for %s</h1>`+
				`<form action="/acl.php" method="post">`+
				`<input type="hidden" name="title" value="%s"/>`+
				`<input type="text" name="user" value=""/>`+
				`<input type="hidden" name="op" value="grant"/>`+
				`<input type="submit" name="go" value="Grant"/>`+
				`</form>`,
			dom.Escape(title), dom.EscapeAttr(title))
		return lib.Decorate(httpd.HTML(lib.Layout("Protection", body)))
	}
	if !admin {
		return lib.Decorate(httpd.HTML(lib.Layout("Permission denied", "<p>administrators only</p>")))
	}
	target := c.Req.Form.Get("user")
	op := c.Req.Form.Get("op")
	var err error
	switch op {
	case "grant":
		_, err = c.Query("INSERT INTO acl (page_title, user_name) VALUES (?, ?)",
			sqldb.Text(title), sqldb.Text(target))
	case "revoke":
		_, err = c.Query("DELETE FROM acl WHERE page_title = ? AND user_name = ?",
			sqldb.Text(title), sqldb.Text(target))
	case "protect":
		_, err = c.Query("UPDATE pages SET protected = TRUE WHERE title = ?", sqldb.Text(title))
	default:
		return lib.Decorate(httpd.NotFound("unknown op"))
	}
	if err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	return lib.Decorate(httpd.Redirect("/index.php?title=" + url.QueryEscape(title)))
}
