package ttdb

import (
	"fmt"
	"sort"

	"warp/internal/sqldb"
	"warp/internal/store"
)

// This file implements the time-travel database's side of durability
// (docs/persistence.md): binary codecs for values and query records, a
// sharded snapshot encoder/decoder, and WAL-record replay.
//
// The division of labor with internal/store: ttdb encodes and decodes
// its own state with store's generic codec primitives and emits change
// events through the Observer interface; store only moves opaque bytes.
//
// Snapshot layout: each table is one *header* section (annotation,
// schema, allocator, version-index entries not keyed by the lock
// column) plus ShardCount *row-shard* sections, each holding the
// physical row versions — and the lock-column version-index entries —
// of one hash slice of the table's lock-column keys. Dirty tracking
// (ttdb.go) is kept at the same granularity, so a repaired hot row
// rewrites its shard, not the whole table. Tables without partition
// columns have a single shard.
//
// Replay strategy: every normal-execution mutation is logged as its
// query Record (SQL, parameters, time, generation, write set). Replaying
// the records in logged order through the same execution engine, at
// their original times and generations and reusing their original row
// IDs, rebuilds bit-identical physical state — the versioned tables, the
// per-partition version index, and the row ID allocator.

// EncodeValue appends one SQL value to the encoder.
func EncodeValue(enc *store.Encoder, v sqldb.Value) {
	enc.Byte(byte(v.Kind))
	switch v.Kind {
	case sqldb.KindInt:
		enc.Int(v.Int)
	case sqldb.KindText:
		enc.String(v.Str)
	case sqldb.KindBool:
		enc.Bool(v.B)
	}
}

// DecodeValue reads one SQL value.
func DecodeValue(dec *store.Decoder) sqldb.Value {
	switch sqldb.Kind(dec.Byte()) {
	case sqldb.KindInt:
		return sqldb.Int(dec.Int())
	case sqldb.KindText:
		return sqldb.Text(dec.String())
	case sqldb.KindBool:
		return sqldb.Bool(dec.Bool())
	default:
		return sqldb.Null()
	}
}

func encodeValues(enc *store.Encoder, vals []sqldb.Value) {
	enc.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		EncodeValue(enc, v)
	}
}

func decodeValues(dec *store.Decoder) []sqldb.Value {
	n := dec.Count()
	out := make([]sqldb.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DecodeValue(dec))
	}
	return out
}

func encodePartition(enc *store.Encoder, p Partition) {
	enc.String(p.Table)
	enc.String(p.Column)
	enc.String(p.Key)
}

func decodePartition(dec *store.Decoder) Partition {
	return Partition{Table: dec.String(), Column: dec.String(), Key: dec.String()}
}

func encodePartitions(enc *store.Encoder, ps []Partition) {
	enc.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		encodePartition(enc, p)
	}
}

func decodePartitions(dec *store.Decoder) []Partition {
	n := dec.Count()
	out := make([]Partition, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decodePartition(dec))
	}
	return out
}

func encodeResult(enc *store.Encoder, res *sqldb.Result) {
	if res == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.Uvarint(uint64(len(res.Columns)))
	for _, c := range res.Columns {
		enc.String(c)
	}
	enc.Int(int64(res.Affected))
	enc.Uvarint(uint64(len(res.Rows)))
	for _, row := range res.Rows {
		encodeValues(enc, row)
	}
}

func decodeResult(dec *store.Decoder) *sqldb.Result {
	if !dec.Bool() {
		return nil
	}
	res := &sqldb.Result{}
	n := dec.Count()
	for i := 0; i < n; i++ {
		res.Columns = append(res.Columns, dec.String())
	}
	res.Affected = int(dec.Int())
	n = dec.Count()
	for i := 0; i < n; i++ {
		res.Rows = append(res.Rows, decodeValues(dec))
	}
	return res
}

// EncodeRecord appends a query record to the encoder.
func EncodeRecord(enc *store.Encoder, r *Record) {
	enc.String(r.SQL)
	encodeValues(enc, r.Params)
	enc.Int(r.Time)
	enc.Int(r.Gen)
	enc.String(r.Table)
	enc.Byte(byte(r.Kind))
	encodePartitions(enc, r.ReadPartitions)
	encodePartitions(enc, r.WritePartitions)
	encodeValues(enc, r.WriteRowIDs)
	encodeResult(enc, r.Result)
	enc.String(r.ErrText)
	enc.Bool(r.HasPreImage)
	enc.String(r.PreImage)
}

// DecodeRecord reads a query record.
func DecodeRecord(dec *store.Decoder) *Record {
	r := &Record{
		SQL:    dec.String(),
		Params: decodeValues(dec),
		Time:   dec.Int(),
		Gen:    dec.Int(),
		Table:  dec.String(),
		Kind:   QueryKind(dec.Byte()),
	}
	r.ReadPartitions = decodePartitions(dec)
	r.WritePartitions = decodePartitions(dec)
	r.WriteRowIDs = decodeValues(dec)
	r.Result = decodeResult(dec)
	r.ErrText = dec.String()
	r.HasPreImage = dec.Bool()
	r.PreImage = dec.String()
	return r
}

func encodeSpec(enc *store.Encoder, spec TableSpec) {
	enc.String(spec.RowIDColumn)
	enc.Uvarint(uint64(len(spec.PartitionColumns)))
	for _, c := range spec.PartitionColumns {
		enc.String(c)
	}
}

func decodeSpec(dec *store.Decoder) TableSpec {
	spec := TableSpec{RowIDColumn: dec.String()}
	n := dec.Count()
	for i := 0; i < n; i++ {
		spec.PartitionColumns = append(spec.PartitionColumns, dec.String())
	}
	return spec
}

// DecodeSpec reads a table annotation (the payload of an annotation WAL
// record, written by the core's observer from TableAnnotated events).
func DecodeSpec(dec *store.Decoder) TableSpec { return decodeSpec(dec) }

// EncodeSpec appends a table annotation to the encoder.
func EncodeSpec(enc *store.Encoder, spec TableSpec) { encodeSpec(enc, spec) }

// stateVersion 2 introduced sharded table sections (header + row
// shards); version-1 (PR 3) snapshots are refused rather than misread.
const stateVersion = 2

// EncodeMeta serializes the database's global metadata — the current
// generation, the GC horizon, and pending table annotations — as one
// snapshot section. Table contents are encoded separately (EncodeTableHeader
// and EncodeTableShards), so an incremental checkpoint rewrites only the
// shards that changed.
func (db *DB) EncodeMeta(enc *store.Encoder) {
	db.mu.Lock()
	defer db.mu.Unlock()
	enc.Byte(stateVersion)
	enc.Int(db.currentGen.Load())
	enc.Int(db.gcBefore)

	specNames := make([]string, 0, len(db.specs))
	for name := range db.specs {
		specNames = append(specNames, name)
	}
	sort.Strings(specNames)
	enc.Uvarint(uint64(len(specNames)))
	for _, name := range specNames {
		enc.String(name)
		encodeSpec(enc, db.specs[name])
	}
}

// RestoreMeta rebuilds the global metadata from an EncodeMeta section.
func (db *DB) RestoreMeta(dec *store.Decoder) error {
	if v := dec.Byte(); v != stateVersion {
		if err := dec.Err(); err != nil {
			return err
		}
		return fmt.Errorf("ttdb: unsupported snapshot state version %d", v)
	}
	db.currentGen.Store(dec.Int())
	db.gcBefore = dec.Int()

	nSpecs := dec.Count()
	for i := 0; i < nSpecs; i++ {
		name := dec.String()
		db.specs[name] = decodeSpec(dec)
	}
	return dec.Err()
}

// shardOfPartIdx maps a version-index partition to the row shard its
// entries are stored in, or -1 for the header section (partitions not
// keyed by the lock column cut across row shards).
func (m *tableMeta) shardOfPartIdx(p Partition) int {
	if m.lockCol != "" && p.Column == m.lockCol {
		return m.shardOfKey(p.Key)
	}
	return -1
}

// sortedPartitions returns partIdx keys in a stable order. Caller holds
// the bookkeeping latch.
func (m *tableMeta) sortedPartitions() []Partition {
	parts := make([]Partition, 0, len(m.partIdx))
	for p := range m.partIdx {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].Column != parts[j].Column {
			return parts[i].Column < parts[j].Column
		}
		return parts[i].Key < parts[j].Key
	})
	return parts
}

// encodePartIdxEntries writes the version-index entries of the given
// partitions. Caller holds the bookkeeping latch.
func (m *tableMeta) encodePartIdxEntries(enc *store.Encoder, parts []Partition) {
	enc.Uvarint(uint64(len(parts)))
	for _, p := range parts {
		enc.String(p.Column)
		enc.String(p.Key)
		entries := m.partIdx[p]
		enc.Uvarint(uint64(len(entries)))
		for _, e := range entries {
			EncodeValue(enc, e.rowID)
			enc.Int(e.t)
		}
	}
}

func (m *tableMeta) decodePartIdxEntries(dec *store.Decoder) {
	nParts := dec.Count()
	for i := 0; i < nParts; i++ {
		p := Partition{Table: m.name, Column: dec.String(), Key: dec.String()}
		nEnt := dec.Count()
		entries := make([]partEntry, 0, nEnt)
		for j := 0; j < nEnt; j++ {
			entries = append(entries, partEntry{rowID: DecodeValue(dec), t: dec.Int()})
		}
		m.partIdx[p] = entries
	}
}

// EncodeTableHeader serializes one table's structural state — annotation,
// augmented schema, row-ID allocator, shard count, and the version-index
// entries that are not keyed by the lock column — as a self-contained
// snapshot section. The table's whole scope is held for the duration; the
// caller is responsible for quiescing direct writers.
func (db *DB) EncodeTableHeader(enc *store.Encoder, table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, unlock, err := db.lockScope(table, wholeScope())
	if err != nil {
		return err
	}
	defer unlock()
	return db.encodeTableHeaderLocked(enc, m)
}

func (db *DB) encodeTableHeaderLocked(enc *store.Encoder, m *tableMeta) error {
	enc.String(m.name)
	encodeSpec(enc, m.spec)
	enc.Uvarint(uint64(m.shards))
	m.mu.Lock()
	enc.Int(m.nextRowID)
	m.mu.Unlock()
	enc.Uvarint(uint64(len(m.userCols)))
	for _, c := range m.userCols {
		enc.String(c)
	}

	cols, uniques, err := db.raw.Schema(m.name)
	if err != nil {
		return err
	}
	enc.Uvarint(uint64(len(cols)))
	for _, c := range cols {
		enc.String(c.Name)
		enc.Byte(byte(c.Type))
		enc.Bool(c.NotNull)
		if c.Default != nil {
			enc.Bool(true)
			EncodeValue(enc, c.Default.Value)
		} else {
			enc.Bool(false)
		}
	}
	enc.Uvarint(uint64(len(uniques)))
	for _, u := range uniques {
		enc.String(u.Name)
		enc.Bool(u.Primary)
		enc.Uvarint(uint64(len(u.Columns)))
		for _, c := range u.Columns {
			enc.String(c)
		}
	}
	idxCols := db.raw.IndexedColumns(m.name)
	enc.Uvarint(uint64(len(idxCols)))
	for _, c := range idxCols {
		enc.String(c)
	}

	m.mu.Lock()
	var headerParts []Partition
	for _, p := range m.sortedPartitions() {
		if m.shardOfPartIdx(p) == -1 {
			headerParts = append(headerParts, p)
		}
	}
	m.encodePartIdxEntries(enc, headerParts)
	m.mu.Unlock()
	return nil
}

// EncodeTableShards serializes the given row shards of a table — each
// shard holds the physical row versions whose lock-column key hashes to
// it, plus the lock-column version-index entries of the same slice —
// streaming rows straight from the engine's cursor into the shard
// encoders, so no result set is ever materialized and memory stays
// bounded by the encoders' chunk buffers regardless of table size. sink
// returns the destination encoder for each shard, in the given order.
// For tables without partition columns there is a single shard holding
// every row.
func (db *DB) EncodeTableShards(table string, shards []int, sink func(shard int) *store.Encoder) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, unlock, err := db.lockScope(table, wholeScope())
	if err != nil {
		return err
	}
	defer unlock()
	return db.encodeTableShardsLocked(m, shards, sink)
}

func (db *DB) encodeTableShardsLocked(m *tableMeta, shards []int, sink func(shard int) *store.Encoder) error {
	for _, shard := range shards {
		if shard < 0 || shard >= m.shards {
			return fmt.Errorf("ttdb: table %s has no shard %d", m.name, shard)
		}
	}
	cols := db.physicalColumns(m)
	lockIdx := -1
	for i, c := range cols {
		if c == m.lockCol {
			lockIdx = i
		}
	}
	// Rows stream straight from the engine's cursor into the shard
	// encoders — no materialized result set, so encoding cost is one
	// scan and memory stays bounded by the encoders' chunk buffers
	// regardless of table size. A cheap counting pre-pass supplies each
	// shard's row-count prefix. Each row carries its *engine slot* so
	// restore can merge the shards back into the original row order —
	// recovery must be bit-identical to the never-crashed state,
	// including scan order. Slots, unlike scan ranks, stay valid in
	// sections carried forward across later physical deletes (a repair
	// commit's purge) of rows in other shards. A restore compacts
	// tombstones and renumbers slots, so Open re-marks every restored
	// table dirty and the next checkpoint re-tags all shards
	// consistently (core/persist.go).
	counts := make([]int, m.shards)
	var countCols []string
	if lockIdx >= 0 {
		countCols = []string{m.lockCol}
	} else {
		countCols = []string{} // project nothing: only the row count matters
	}
	err := db.raw.ScanTable(m.name, countCols, func(_ int, vals []sqldb.Value) error {
		s := 0
		if lockIdx >= 0 {
			s = m.shardOfKey(vals[0].Key())
		}
		counts[s]++
		return nil
	})
	if err != nil {
		return err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	partsByShard := make(map[int][]Partition)
	for _, p := range m.sortedPartitions() {
		s := m.shardOfPartIdx(p)
		if s >= 0 {
			partsByShard[s] = append(partsByShard[s], p)
		}
	}

	// Each shard section must be written contiguously (checkpoint files
	// hold one open section at a time), so rows stream through one
	// filtered scan per requested shard. Incremental checkpoints
	// typically rewrite a single shard; full rewrites trade extra scans
	// for never materializing the table.
	for _, shard := range shards {
		enc := sink(shard)
		enc.String(m.name)
		enc.Uvarint(uint64(shard))
		enc.Uvarint(uint64(len(cols)))
		for _, c := range cols {
			enc.String(c)
		}
		enc.Uvarint(uint64(counts[shard]))
		emitted := 0
		err = db.raw.ScanTable(m.name, cols, func(slot int, vals []sqldb.Value) error {
			s := 0
			if lockIdx >= 0 {
				s = m.shardOfKey(vals[lockIdx].Key())
			}
			if s != shard {
				return nil
			}
			emitted++
			enc.Uvarint(uint64(slot))
			encodeValues(enc, vals)
			return nil
		})
		if err != nil {
			return err
		}
		// The count prefix came from a separate pre-pass; a mutation
		// slipping between the scans (a caller that failed to quiesce
		// direct writers) must be a hard error here, not a silently
		// misframed section discovered at recovery.
		if emitted != counts[shard] {
			return fmt.Errorf("ttdb: table %s shard %d changed during encode: %d rows emitted, %d counted", m.name, shard, emitted, counts[shard])
		}
		m.encodePartIdxEntries(enc, partsByShard[shard])
	}
	return nil
}

// RestoreTableHeader rebuilds one table's structure from an
// EncodeTableHeader section: schema, indexes, allocator, annotation.
// The database must not already hold the table; RestoreMeta must run
// first so annotations are in place, and the table's row shards must be
// restored afterwards (RestoreTableShard). It returns the table name.
func (db *DB) RestoreTableHeader(dec *store.Decoder) (string, error) {
	name := dec.String()
	spec := decodeSpec(dec)
	m := &tableMeta{
		locks:     newPartLocks(),
		name:      name,
		spec:      spec,
		rowIDCol:  spec.RowIDColumn,
		partCols:  make(map[string]bool),
		partIdx:   make(map[Partition][]partEntry),
		shards:    int(dec.Uvarint()),
		nextRowID: dec.Int(),
	}
	if m.shards < 1 {
		m.shards = 1
	}
	if m.rowIDCol == "" {
		m.rowIDCol = ColRowID
		m.synthetic = true
	}
	for _, pc := range spec.PartitionColumns {
		m.partCols[pc] = true
	}
	if len(spec.PartitionColumns) > 0 {
		m.lockCol = spec.PartitionColumns[0]
	}
	nUser := dec.Count()
	for i := 0; i < nUser; i++ {
		m.userCols = append(m.userCols, dec.String())
	}

	// Recreate the (already augmented) physical schema directly on the
	// raw engine: the versioning columns and extended uniqueness
	// constraints were applied when the table was first created.
	ct := &sqldb.CreateTable{Table: name}
	nCols := dec.Count()
	for i := 0; i < nCols; i++ {
		col := sqldb.ColumnDef{Name: dec.String(), Type: sqldb.Kind(dec.Byte()), NotNull: dec.Bool()}
		if dec.Bool() {
			col.Default = &sqldb.Literal{Value: DecodeValue(dec)}
		}
		ct.Columns = append(ct.Columns, col)
	}
	nUniq := dec.Count()
	for i := 0; i < nUniq; i++ {
		u := sqldb.UniqueConstraint{Name: dec.String(), Primary: dec.Bool()}
		nc := dec.Count()
		for j := 0; j < nc; j++ {
			u.Columns = append(u.Columns, dec.String())
		}
		ct.Uniques = append(ct.Uniques, u)
	}
	if err := dec.Err(); err != nil {
		return "", err
	}
	if _, err := db.raw.ExecStmt(ct, nil); err != nil {
		return "", err
	}
	nIdx := dec.Count()
	for i := 0; i < nIdx; i++ {
		col := dec.String()
		ci := &sqldb.CreateIndex{Name: "warp_idx_" + name + "_" + col, Table: name, Column: col}
		if _, err := db.raw.ExecStmt(ci, nil); err != nil {
			return "", err
		}
	}

	m.decodePartIdxEntries(dec)
	if err := dec.Err(); err != nil {
		return "", err
	}

	// Arm the shard-restore accounting now: if none of the table's row
	// shards ever arrive, VerifyRestored must fail the open rather than
	// surface a silently empty table.
	m.restore = &tableRestore{}

	db.tablesMu.Lock()
	db.tables[name] = m
	db.tablesMu.Unlock()
	return name, nil
}

// RestoreTableShard loads one row shard written by EncodeTableShards into
// a table previously restored by RestoreTableHeader. Rows are buffered
// until every shard of the table has arrived and then inserted in their
// original physical scan order, so the restored engine state is
// bit-identical to the encoded one.
func (db *DB) RestoreTableShard(dec *store.Decoder) error {
	name := dec.String()
	dec.Uvarint() // shard index, informational
	m, err := db.meta(name)
	if err != nil {
		return fmt.Errorf("ttdb: shard section for unknown table %s (header missing?)", name)
	}
	if m.restore == nil {
		m.restore = &tableRestore{}
	}
	buf := m.restore

	nRowCols := dec.Count()
	rowCols := make([]string, 0, nRowCols)
	for i := 0; i < nRowCols; i++ {
		rowCols = append(rowCols, dec.String())
	}
	if buf.cols == nil {
		buf.cols = rowCols
	}
	nRows := dec.Count()
	for i := 0; i < nRows; i++ {
		pos := dec.Uvarint()
		vals := decodeValues(dec)
		if len(vals) != len(rowCols) {
			return fmt.Errorf("ttdb: snapshot row of %s has %d values for %d columns", name, len(vals), len(rowCols))
		}
		buf.rows = append(buf.rows, posRow{pos: pos, vals: vals})
	}
	m.decodePartIdxEntries(dec)
	if err := dec.Err(); err != nil {
		return err
	}

	buf.restored++
	if buf.restored < m.shards {
		return nil
	}
	m.restore = nil
	sort.Slice(buf.rows, func(i, j int) bool { return buf.rows[i].pos < buf.rows[j].pos })
	const chunk = 256
	ins := &sqldb.Insert{Table: name, Columns: buf.cols}
	for i, row := range buf.rows {
		exprs := make([]sqldb.Expr, len(row.vals))
		for j, v := range row.vals {
			exprs[j] = sqldb.Lit(v)
		}
		ins.Rows = append(ins.Rows, exprs)
		if len(ins.Rows) == chunk || i == len(buf.rows)-1 {
			if _, err := db.raw.ExecStmt(ins, nil); err != nil {
				return err
			}
			ins.Rows = ins.Rows[:0]
		}
	}
	return nil
}

// VerifyRestored checks that every table's row shards all arrived: a
// table still buffering is a checkpoint with missing shard sections,
// which must fail recovery rather than surface as an empty table.
func (db *DB) VerifyRestored() error {
	db.tablesMu.RLock()
	defer db.tablesMu.RUnlock()
	for name, m := range db.tables {
		if m.restore != nil {
			return fmt.Errorf("ttdb: table %s restored %d of %d row shards", name, m.restore.restored, m.shards)
		}
	}
	return nil
}

// EncodeState serializes the database's complete state — metadata plus
// every table's header and shards — as one payload: the full (compaction)
// form of the sectioned codecs above, also used directly by tests. The
// caller is responsible for quiescing concurrent direct writers; the call
// itself takes every table's whole scope, so anything running through the
// normal execution paths serializes with it.
func (db *DB) EncodeState(enc *store.Encoder) error {
	metas := db.lockAll()
	defer db.unlockAll(metas)

	enc.Byte(stateVersion)
	enc.Int(db.currentGen.Load())
	enc.Int(db.gcBefore)

	specNames := make([]string, 0, len(db.specs))
	for name := range db.specs {
		specNames = append(specNames, name)
	}
	sort.Strings(specNames)
	enc.Uvarint(uint64(len(specNames)))
	for _, name := range specNames {
		enc.String(name)
		encodeSpec(enc, db.specs[name])
	}

	enc.Uvarint(uint64(len(metas))) // metas are sorted by name (lockAll)
	for _, m := range metas {
		if err := db.encodeTableHeaderLocked(enc, m); err != nil {
			return err
		}
		all := make([]int, m.shards)
		for s := range all {
			all[s] = s
		}
		if err := db.encodeTableShardsLocked(m, all, func(int) *store.Encoder { return enc }); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState rebuilds the database from a snapshot written by
// EncodeState. The receiver must be freshly opened (no tables).
func (db *DB) RestoreState(dec *store.Decoder) error {
	if v := dec.Byte(); v != stateVersion {
		if err := dec.Err(); err != nil {
			return err
		}
		return fmt.Errorf("ttdb: unsupported snapshot state version %d", v)
	}
	db.currentGen.Store(dec.Int())
	db.gcBefore = dec.Int()

	nSpecs := dec.Count()
	for i := 0; i < nSpecs; i++ {
		name := dec.String()
		db.specs[name] = decodeSpec(dec)
	}

	nTables := dec.Count()
	for i := 0; i < nTables; i++ {
		name, err := db.RestoreTableHeader(dec)
		if err != nil {
			return err
		}
		for s := 0; s < db.ShardCount(name); s++ {
			if err := db.RestoreTableShard(dec); err != nil {
				return err
			}
		}
	}
	return dec.Err()
}

// Replay re-applies one logged query record during recovery: the
// statement re-executes at its original time and generation, reusing its
// originally assigned row IDs, which reproduces the exact physical state
// the original execution created. Records must replay in logged order.
// Parsing goes through the statement cache — recovery replays thousands
// of records over a handful of query forms — and the record's own SQL
// (already canonical) is reused rather than re-rendered.
func (db *DB) Replay(rec *Record) error {
	cs, err := db.stmts.Get(rec.SQL)
	if err != nil {
		return fmt.Errorf("ttdb: replaying %q: %w", rec.SQL, err)
	}
	stmt := cs.Stmt
	m, sc, unlock, err := db.lockFor(stmt, rec.Params)
	if err != nil {
		return fmt.Errorf("ttdb: replaying %q: %w", rec.SQL, err)
	}
	defer unlock()
	db.clock.AdvanceTo(rec.Time)
	if _, _, err := db.execAt(stmt, cs, rec.Params, rec.Time, rec.Gen, rec, m, sc); err != nil {
		return fmt.Errorf("ttdb: replaying %q: %w", rec.SQL, err)
	}
	return nil
}
