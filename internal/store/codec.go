// Package store implements WARP's durable persistence layer: an
// append-only, segmented, CRC-checksummed write-ahead log with group
// commit, plus an atomically-replaced snapshot (checkpoint) file.
//
// The paper's prototype kept the action history graph and the versioned
// database in PostgreSQL (§6) and inherited durability from it; this
// reproduction keeps both layers in memory for speed, so store supplies
// the missing property: every state change is encoded as a typed WAL
// record, snapshots serialize a consistent cut of the whole system, and
// recovery replays WAL-tail-over-snapshot.
//
// The package is deliberately generic: it moves opaque typed byte
// payloads and knows nothing about WARP's domain objects. The domain
// layers (internal/history, internal/ttdb, internal/core) encode their
// own state with the Encoder/Decoder primitives here and feed the store
// through observer interfaces, so they remain fully usable without
// persistence. See docs/persistence.md for the record format and the
// recovery protocol.
package store

import (
	"errors"
	"fmt"
	"sync"
)

// Encoder builds a binary payload from primitive values: varint-encoded
// integers and length-prefixed byte strings. The encoding is
// deterministic: the same sequence of calls yields the same bytes.
//
// A plain encoder (NewEncoder) accumulates everything in memory. A
// streaming encoder (newStreamEncoder) spills its buffer to a sink
// whenever it crosses the spill threshold, so arbitrarily large payloads
// encode in bounded memory; sink errors are sticky and surface through
// spillErr.
type Encoder struct {
	buf   []byte
	spill int // spill threshold; 0 disables streaming
	sink  func([]byte) error
	werr  error
}

// NewEncoder returns an empty in-memory encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// encPool recycles in-memory encoders for the WAL record hot path:
// every observer callback encodes one record, and a fresh buffer per
// record is pure allocation churn since Append copies the payload into
// its frame before returning.
var encPool = sync.Pool{New: func() any { return &Encoder{} }}

// maxPooledEncoderBytes drops outsized buffers instead of pooling them,
// so one huge record cannot pin its buffer forever.
const maxPooledEncoderBytes = 1 << 18

// GetEncoder returns an empty pooled in-memory encoder. Release it with
// PutEncoder once its Bytes have been consumed (the WAL append paths
// copy the payload, so release immediately after Append returns).
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// PutEncoder returns an encoder obtained from GetEncoder to the pool.
// Streaming encoders and oversized buffers are dropped.
func PutEncoder(e *Encoder) {
	if e == nil || e.sink != nil || cap(e.buf) > maxPooledEncoderBytes {
		return
	}
	e.werr = nil
	encPool.Put(e)
}

// newStreamEncoder returns an encoder that hands its buffer to sink
// every time it grows past spill bytes. Bytes must not be used on a
// streaming encoder; call flush then read via the sink instead.
func newStreamEncoder(spill int, sink func([]byte) error) *Encoder {
	return &Encoder{spill: spill, sink: sink}
}

// maybeSpill drains the buffer through the sink once it crosses the
// threshold. No-op for in-memory encoders.
func (e *Encoder) maybeSpill() {
	if e.sink == nil || len(e.buf) < e.spill {
		return
	}
	e.flush()
}

// flush forces any buffered bytes through the sink.
func (e *Encoder) flush() {
	if e.sink == nil || len(e.buf) == 0 {
		return
	}
	if err := e.sink(e.buf); err != nil && e.werr == nil {
		e.werr = err
	}
	e.buf = e.buf[:0]
}

// spillErr returns the first sink failure, if any.
func (e *Encoder) spillErr() error { return e.werr }

// Bytes returns the encoded payload. Only valid on in-memory encoders:
// a streaming encoder's earlier bytes have already left through the sink.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes currently buffered.
func (e *Encoder) Len() int { return len(e.buf) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) {
	e.buf = append(e.buf, b)
	e.maybeSpill()
}

// Bool appends a boolean.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
	e.maybeSpill()
}

// Int appends a signed integer, zigzag-encoded.
func (e *Encoder) Int(v int64) {
	e.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
	e.maybeSpill()
}

// ErrCorrupt is the terminal decoder error: the payload does not parse.
// Recovery treats it exactly like a checksum failure — the record (or
// snapshot) is not applied.
var ErrCorrupt = errors.New("store: corrupt encoding")

// Decoder reads back what an Encoder wrote. It is sticky: after the first
// error every read returns a zero value, and Err reports the failure, so
// decode sequences do not need per-call error checks.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, d.off)
	}
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		if d.err != nil || d.off >= len(d.buf) || shift > 63 {
			d.fail()
			return 0
		}
		b := d.buf[d.off]
		d.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
}

// Int reads a zigzag-encoded signed integer.
func (d *Decoder) Int() int64 {
	v := d.Uvarint()
	return int64(v>>1) ^ -int64(v&1)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Count reads a length-prefixed element count and validates it against
// the bytes actually remaining, so a corrupt count cannot drive a huge
// allocation: every element needs at least one encoded byte.
func (d *Decoder) Count() int {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()) {
		d.fail()
		return 0
	}
	return int(n)
}
