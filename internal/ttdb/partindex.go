package ttdb

import (
	"sort"

	"warp/internal/sqldb"
)

// This file implements the per-partition version index (§4.1 applied to
// repair performance): for every partition, the database remembers which
// rows had a version event (insert, update, delete, rollback) in that
// partition and when. Repair's partition-level rollback — "undo everything
// that touched partition P at or after time T" — becomes an index lookup
// plus per-row rollbacks instead of a scan over every physical row version
// of the table.

// partEntry is one version event in the per-partition index.
type partEntry struct {
	rowID sqldb.Value
	t     int64
}

// indexVersionEvent records that a row had a version event in the given
// partitions at time t. The index is shared by every partition of the
// table, so it is touched under the bookkeeping latch.
func (m *tableMeta) indexVersionEvent(ps []Partition, rowID sqldb.Value, t int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.partIdx == nil {
		m.partIdx = make(map[Partition][]partEntry)
	}
	for _, p := range ps {
		m.partIdx[p] = append(m.partIdx[p], partEntry{rowID: rowID, t: t})
	}
}

// rowsSince returns the distinct row IDs with a version event in p at or
// after since, in a stable order.
func (m *tableMeta) rowsSince(p Partition, since int64) []sqldb.Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool)
	var out []sqldb.Value
	collect := func(entries []partEntry) {
		for _, e := range entries {
			if e.t < since || seen[e.rowID.Key()] {
				continue
			}
			seen[e.rowID.Key()] = true
			out = append(out, e.rowID)
		}
	}
	if p.IsWholeTable() {
		// Whole-table queries union every partition's events.
		keys := make([]Partition, 0, len(m.partIdx))
		for k := range m.partIdx {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Column != b.Column {
				return a.Column < b.Column
			}
			return a.Key < b.Key
		})
		for _, k := range keys {
			collect(m.partIdx[k])
		}
	} else {
		collect(m.partIdx[p])
		// Tables without partition columns index events whole-table.
		collect(m.partIdx[WholeTable(m.name)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// pruneIndexBefore drops index entries older than the GC horizon. Entries
// below the horizon can never satisfy a valid rollback (rollback refuses
// times at or before the horizon).
func (m *tableMeta) pruneIndexBefore(beforeTime int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for p, entries := range m.partIdx {
		keep := entries[:0]
		for _, e := range entries {
			if e.t >= beforeTime {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			delete(m.partIdx, p)
			continue
		}
		m.partIdx[p] = keep
	}
}

// PartitionRowsSince returns the distinct row IDs of rows with a version
// event in partition p at or after time since, via the per-partition
// version index. Events older than the GC horizon may have been pruned.
func (db *DB) PartitionRowsSince(p Partition, since int64) ([]sqldb.Value, error) {
	m, err := db.meta(p.Table)
	if err != nil {
		return nil, err
	}
	// The index latch is sufficient for a read-only probe.
	return m.rowsSince(p, since), nil
}

// partitionScope derives the lock scope for operating on one partition:
// the partition's own key when it is on the lock column, the whole table
// otherwise (other columns cut across the lock column's slices).
func (m *tableMeta) partitionScope(db *DB, p Partition) lockScope {
	if !p.IsWholeTable() && p.Column == m.lockCol {
		return m.effectiveScope(db, keyScope([]string{p.Key}))
	}
	return wholeScope()
}

// RollbackPartition rolls back every row with a version event in partition
// p at or after time t to time t, in the repair generation. It is the
// partition-granularity analog of RollbackRows and returns the partitions
// whose contents changed. Rolling back a row the repair already restored
// is a no-op, so the index's over-approximation is safe.
func (db *DB) RollbackPartition(p Partition, t int64) ([]Partition, error) {
	st, err := db.repairSnapshot()
	if err != nil {
		return nil, err
	}
	m, err := db.meta(p.Table)
	if err != nil {
		return nil, err
	}
	sc := m.partitionScope(db, p)
	// Accumulated across an escalation retry, same as RollbackRows: dirt
	// from rollbacks completed under the narrow scope must survive.
	set := NewPartitionSet()
	for {
		m.locks.lock(sc)
		err := func() error {
			for _, id := range m.rowsSince(p, t) {
				ps, err := db.rollbackRowLocked(m, id, t, st, sc)
				if err != nil {
					return err
				}
				set.AddAll(ps)
			}
			return nil
		}()
		m.locks.unlock(sc)
		if err == errScopeConflict && !sc.whole {
			// A row in p also has versions outside p's lock-column slice
			// (its partition column was rewritten): retry whole-table.
			scopeEscalations.Inc()
			sc = wholeScope()
			continue
		}
		if err != nil {
			return nil, err
		}
		return set.Slice(), nil
	}
}
