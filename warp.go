// Package warp is an intrusion recovery system for database-backed web
// applications: a from-scratch Go reproduction of
//
//	"Intrusion Recovery for Database-backed Web Applications",
//	Chandra, Kim, Shah, Narula, Zeldovich — SOSP 2011.
//
// WARP repairs a compromised web application by rolling back exactly the
// parts of the database the attack influenced and re-executing the
// legitimate actions recorded since, so that the attack's direct and
// indirect effects disappear while users' work survives. Its three core
// ideas, all implemented here:
//
//   - Retroactive patching (RetroPatch): apply a security patch to the
//     past. Every recorded application run that loaded the patched file is
//     re-executed against the fixed code; runs that behave differently are
//     (potential) attacks and their effects are recursively repaired. The
//     administrator never needs to detect or locate the attack.
//
//   - A time-travel database: every table is continuously versioned and
//     partitioned, so repair rolls back individual rows, re-executes
//     queries at their original times, and skips everything untouched —
//     while normal operation continues in a separate repair generation.
//
//   - DOM-level browser replay: the browser extension records user input
//     by DOM element; during repair a server-side browser clone re-opens
//     the repaired pages and re-applies the user's actions, merging text
//     edits three-way, so attacks that ran through users' browsers (XSS,
//     CSRF, clickjacking) are undone without losing the users' work.
//
// Beyond the paper, repair is executed by a dependency-scheduled parallel
// engine (docs/repair.md): work items whose time-travel partitions are
// disjoint re-execute concurrently on Config.RepairWorkers workers
// (default GOMAXPROCS), while conflicting items keep the paper's time
// order. Concurrency is partition-granular end to end — the database
// locks row ranges by partition key rather than whole tables, the
// dependency frontier admits same-table items whose partitions do not
// overlap, and page-visit replays are exclusive only per client — so
// repairs of one hot table scale across workers too. RepairWorkers = 1
// reproduces the paper's serial loop exactly;
// Config.TableGranularLocks restores the coarse pre-partition behavior
// for comparison.
//
// A System wires together the substrates in internal/: the SQL engine
// (sqldb), the time-travel layer (ttdb), the action history graph
// (history), the application runtime (app), the browser simulator
// (browser), and the repair controller (core).
//
// Minimal use:
//
//	sys := warp.New(warp.Config{})
//	sys.DB.Annotate("notes", warp.TableSpec{RowIDColumn: "id"})
//	sys.DB.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
//	sys.Runtime.Register("notes.php", warp.Version{Entry: handler})
//	sys.Runtime.Mount("/", "notes.php")
//	b := sys.NewBrowser()
//	b.Open("/")
//	...
//	report, err := sys.RetroPatch("notes.php", warp.Version{Entry: fixed})
package warp

import (
	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/obs"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// Aliases for the public surface of the subsystems, so applications built
// on WARP import a single package.
type (
	// Config tunes a WARP deployment.
	Config = core.Config
	// Report summarizes a repair.
	Report = core.Report
	// Timing is a repair's wall-time breakdown.
	Timing = core.Timing
	// StorageStats is the per-layer log storage accounting.
	StorageStats = core.StorageStats
	// ExecStats is the database layer's execution-path counters:
	// statement-cache/plan hit rates and index-vs-full scan counts.
	ExecStats = sqldb.ExecStats
	// Metrics is the deployment-wide observability snapshot
	// (System.Metrics): exec counters, every registered latency
	// histogram / counter / gauge, and the live repair phase trace. See
	// docs/observability.md.
	Metrics = core.Metrics
	// TraceSnapshot is a point-in-time copy of a repair's phase trace
	// (Metrics.Repair) — safe to read while the repair is still running.
	TraceSnapshot = obs.TraceSnapshot

	// Version is one version of an application source file.
	Version = app.Version
	// Ctx is the execution context application code runs in.
	Ctx = app.Ctx
	// Script is an application entry point.
	Script = app.Script

	// Browser is a simulated client browser with the WARP extension.
	Browser = browser.Browser
	// Page is an open page in a browser.
	Page = browser.Page
	// VisitLog is the extension's per-page-visit event log.
	VisitLog = browser.VisitLog
	// ReplayConfig selects browser re-execution fidelity.
	ReplayConfig = browser.ReplayConfig
	// Conflict is a queued repair conflict awaiting user resolution.
	Conflict = browser.Conflict

	// TableSpec carries a table's row-ID and partition annotations.
	TableSpec = ttdb.TableSpec

	// DurabilityOptions tunes the persistence layer for deployments
	// created with Open (Config.Durability): group commit, WAL sharding
	// (Shards/ShardOf), and the incremental checkpoint cadence
	// (CompactEvery, ChunkBytes). See docs/persistence.md.
	DurabilityOptions = store.Options
	// CheckpointStats reports what the last checkpoint wrote
	// (System.LastCheckpoint): which sections landed in the new delta
	// file and which were carried forward by manifest reference.
	CheckpointStats = store.CheckpointStats
	// RepairIntent describes a repair that was in flight when a previous
	// instance crashed (System.PendingRepair / ResumeRepair).
	RepairIntent = core.RepairIntent
	// RecoveryStats summarizes what Open recovered from disk.
	RecoveryStats = core.RecoveryStats
	// Health is the deployment's operational snapshot (System.Health):
	// degraded-mode status, the last storage fault, and the background
	// scrubber's progress. Served by warp-server's GET /warp/health.
	Health = core.Health
	// ScrubStats is the background storage scrubber's cumulative
	// progress (Health.Scrub). See docs/persistence.md "Failure model".
	ScrubStats = store.ScrubStats

	// Value is a dynamically typed SQL value.
	Value = sqldb.Value

	// Request is an HTTP request; Response an HTTP response.
	Request = httpd.Request
	// Response is an HTTP response.
	Response = httpd.Response
)

// Value constructors, re-exported for application code.
var (
	// Int returns an INTEGER value.
	Int = sqldb.Int
	// Text returns a TEXT value.
	Text = sqldb.Text
	// Bool returns a BOOLEAN value.
	Bool = sqldb.Bool
	// Null returns the SQL NULL value.
	Null = sqldb.Null
)

// FullReplay is the complete browser re-execution configuration.
var FullReplay = browser.FullReplay

// ErrDegraded is returned (wrapped, with the storage cause) by every
// write path of a deployment that entered degraded read-only mode after
// an unrecoverable storage fault. See docs/persistence.md "Failure
// model".
var ErrDegraded = core.ErrDegraded

// Repair intent kinds (RepairIntent.Kind).
const (
	RepairIntentRetroPatch    = core.IntentRetroPatch
	RepairIntentUndoVisit     = core.IntentUndoVisit
	RepairIntentUndoPartition = core.IntentUndoPartition
)

// System is one WARP-managed web application deployment: the HTTP server
// manager, application runtime, time-travel database, action history
// graph, browser log store, and repair controller of the paper's Figure 1.
//
// All methods of the underlying core deployment are promoted; the most
// important are HandleRequest (serve one request under normal execution),
// NewBrowser (create a wired client), UploadVisitLog (the extension's
// endpoint), RetroPatch / UndoVisit (initiate repair), Conflicts, Storage,
// and GC.
type System struct {
	*core.Warp
}

// New creates an in-memory WARP deployment. State does not survive the
// process; use Open for a durable one.
func New(cfg Config) *System {
	return &System{Warp: core.New(cfg)}
}

// Open creates a WARP deployment backed by a persistence directory
// (docs/persistence.md): every recorded action is written to a
// write-ahead log, checkpoints bound recovery time, and reopening the
// directory recovers the full history graph and time-travel database —
// including a repair that was in flight at crash time (PendingRepair /
// ResumeRepair). Application code is not persisted: Register and Mount
// source files after Open exactly as on a fresh deployment.
func Open(dir string, cfg Config) (*System, error) {
	w, err := core.Open(dir, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Warp: w}, nil
}
