// Command benchgate turns `go test -bench` output into a stable JSON
// report and gates benchmark regressions against a committed baseline.
// It is the tooling behind CI's bench job (.github/workflows/ci.yml):
//
//	go test -run '^$' -bench ... -benchmem ./... | tee bench.txt
//	benchgate -parse bench.txt > BENCH_PR3.json
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_PR3.json -threshold 0.30
//
// The gate fails (exit 1) when any benchmark present in both files got
// more than threshold slower in ns/op — or, when both files carry
// allocs_per_op (runs with -benchmem), more than threshold more
// allocations per op. Benchmarks new in the current run pass by
// definition; benchmarks that disappeared fail the gate, since silently
// losing coverage is how regressions hide. The GOMAXPROCS suffix (-8)
// is stripped so reports compare across runner shapes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured costs.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the JSON document benchgate emits and compares.
type Report struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	parse := flag.String("parse", "", "parse `go test -bench` output from this file and print JSON")
	baseline := flag.String("baseline", "", "baseline JSON report")
	current := flag.String("current", "", "current JSON report to gate against the baseline")
	threshold := flag.Float64("threshold", 0.30, "allowed fractional ns/op regression (0.30 = 30%)")
	flag.Parse()

	switch {
	case *parse != "":
		rep, err := parseBenchOutput(*parse)
		if err != nil {
			fatal(err)
		}
		if len(rep.Benchmarks) == 0 {
			fatal(fmt.Errorf("no benchmark result lines found in %s", *parse))
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case *baseline != "" && *current != "":
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := readReport(*current)
		if err != nil {
			fatal(err)
		}
		if !gate(base, cur, *threshold) {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchgate -parse bench.txt | benchgate -baseline a.json -current b.json [-threshold 0.30]")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// stripProcs removes the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so reports from different runner shapes compare.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchOutput extracts every `BenchmarkX  N  123 ns/op [456 B/op]`
// line. Repeated runs of one benchmark keep the fastest ns/op, the
// usual noise-floor convention.
func parseBenchOutput(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &Report{Benchmarks: make(map[string]Metrics)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := Metrics{}
		ok := false
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				m.NsPerOp = v
				ok = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		name := stripProcs(fields[0])
		if prev, exists := rep.Benchmarks[name]; !exists || m.NsPerOp < prev.NsPerOp {
			rep.Benchmarks[name] = m
		}
	}
	return rep, sc.Err()
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// family is the top-level benchmark function name: everything before the
// first sub-benchmark separator.
func family(name string) string {
	if i := strings.Index(name, "/"); i >= 0 {
		return name[:i]
	}
	return name
}

// missingFamilies returns the baselined benchmark families with no
// member at all in the current run, sorted.
func missingFamilies(base, cur *Report) []string {
	present := make(map[string]bool)
	for name := range cur.Benchmarks {
		present[family(name)] = true
	}
	var missing []string
	seen := make(map[string]bool)
	for name := range base.Benchmarks {
		fam := family(name)
		if !present[fam] && !seen[fam] {
			seen[fam] = true
			missing = append(missing, fam)
		}
	}
	sort.Strings(missing)
	return missing
}

// gate prints a comparison table and reports whether the current run
// stays within threshold of the baseline.
func gate(base, cur *Report, threshold float64) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	pass := true
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("MISSING  %-50s baseline %.0f ns/op, absent from current run\n", name, b.NsPerOp)
			pass = false
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+threshold {
			verdict = "REGRESSED"
			pass = false
		}
		fmt.Printf("%-9s%-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			verdict, name, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		// Allocation regressions gate like time regressions: a benchmark
		// with a baselined allocs/op may not allocate more than threshold
		// above it. Benchmarks the baseline never measured with -benchmem
		// are exempt — but a baselined allocs/op that vanished from the
		// current run fails, same as a missing benchmark: silently losing
		// coverage is how regressions hide.
		if b.AllocsPerOp > 0 && c.AllocsPerOp == 0 {
			fmt.Printf("MISSING  %-50s baseline %.0f allocs/op, current run lacks -benchmem\n", name, b.AllocsPerOp)
			pass = false
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			aratio := c.AllocsPerOp / b.AllocsPerOp
			averdict := "ok"
			if aratio > 1+threshold {
				averdict = "REGRESSED"
				pass = false
			}
			fmt.Printf("%-9s%-50s %12.0f -> %12.0f allocs/op  (%+.1f%%)\n",
				averdict, name, b.AllocsPerOp, c.AllocsPerOp, (aratio-1)*100)
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW      %-50s %12.0f ns/op (no baseline)\n", name, cur.Benchmarks[name].NsPerOp)
		}
	}
	// Family-level coverage: a whole benchmark function vanishing (every
	// sub-benchmark of one top-level name absent) usually means the CI
	// regex dropped it, not that one case was renamed — call that out
	// separately so the fix points at the workflow, not the code.
	for _, fam := range missingFamilies(base, cur) {
		fmt.Printf("MISSING  %-50s entire benchmark family absent from current run (check the CI -bench regex)\n", fam)
		pass = false
	}
	if !pass {
		fmt.Printf("bench gate: regression beyond %.0f%% against baseline\n", threshold*100)
	} else {
		fmt.Printf("bench gate: all %d baselined benchmarks within %.0f%%\n", len(names), threshold*100)
	}
	return pass
}
