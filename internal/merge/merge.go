// Package merge implements three-way text merging, the mechanism WARP's
// re-execution browser extension uses to replay a user's keyboard input
// into a text field whose contents changed during repair (paper §5.3).
//
// The canonical call is Merge(base, repaired, edited): base is the text the
// field originally held, repaired is what the field holds on the repaired
// page, and edited is what the user originally turned base into. The result
// re-applies the user's edit on top of the repaired text. A conflict is
// reported when the repair and the user changed overlapping regions — the
// situation where WARP must queue a conflict for the user (§5.4).
package merge

import "strings"

// Merge performs a line-based three-way merge. It returns the merged text
// and whether the merge was clean. On conflict the returned text contains
// the base text and must not be used; callers should treat the field as
// conflicted.
func Merge(base, a, b string) (string, bool) {
	mergedLines, ok := MergeLines(splitLines(base), splitLines(a), splitLines(b))
	if !ok {
		return base, false
	}
	return strings.Join(mergedLines, "\n"), true
}

// MergeLines is Merge over pre-split lines.
func MergeLines(base, a, b []string) ([]string, bool) {
	hunks := diff3(base, a, b)
	var out []string
	for _, h := range hunks {
		switch h.kind {
		case hunkStable:
			out = append(out, base[h.baseLo:h.baseHi]...)
		case hunkTakeA:
			out = append(out, a[h.aLo:h.aHi]...)
		case hunkTakeB:
			out = append(out, b[h.bLo:h.bHi]...)
		case hunkConflict:
			// Both sides changed the same region differently.
			if equalSlices(a[h.aLo:h.aHi], b[h.bLo:h.bHi]) {
				out = append(out, a[h.aLo:h.aHi]...)
				continue
			}
			return nil, false
		}
	}
	return out, true
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type hunkKind uint8

const (
	hunkStable hunkKind = iota
	hunkTakeA
	hunkTakeB
	hunkConflict
)

type hunk struct {
	kind           hunkKind
	baseLo, baseHi int
	aLo, aHi       int
	bLo, bHi       int
}

// span is one changed region between base and a derivative: base[lo:hi]
// was replaced by derived[dlo:dhi]. Insertions have lo == hi.
type span struct {
	lo, hi   int
	dlo, dhi int
}

// hunksOf extracts the changed regions from an LCS alignment.
func hunksOf(align []int, nDerived int) []span {
	n := len(align)
	var out []span
	i, j := 0, 0
	for {
		for i < n && align[i] == j {
			i++
			j++
		}
		if i >= n && j >= nDerived {
			return out
		}
		lo, dlo := i, j
		for i < n && align[i] < 0 {
			i++
		}
		hi := i
		dhi := nDerived
		if i < n {
			dhi = align[i]
		}
		out = append(out, span{lo: lo, hi: hi, dlo: dlo, dhi: dhi})
		j = dhi
		if i >= n {
			return out
		}
	}
}

// spansConflict reports whether two base ranges interfere. Ranges that
// merely touch at an endpoint do not interfere (a deletion next to an
// insertion merges, as in the paper's append-only attack scenario, §8.3);
// two insertions at the same point do.
func spansConflict(alo, ahi, blo, bhi int) bool {
	if alo == ahi && blo == bhi {
		return alo == blo
	}
	if alo == ahi {
		return blo < alo && alo < bhi
	}
	if blo == bhi {
		return alo < blo && blo < ahi
	}
	return maxInt(alo, blo) < minInt(ahi, bhi)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// diff3 computes the merge hunks: stable base regions interleaved with
// groups of changes. Changes from the two sides that interfere on the
// same base region form a conflict group; one-sided groups take that
// side's text.
func diff3(base, a, b []string) []hunk {
	ha := hunksOf(lcsAlign(base, a), len(a))
	hb := hunksOf(lcsAlign(base, b), len(b))

	var out []hunk
	basePos := 0
	i, j := 0, 0
	emitStable := func(hi int) {
		if basePos < hi {
			out = append(out, hunk{kind: hunkStable, baseLo: basePos, baseHi: hi})
		}
		basePos = hi
	}
	for i < len(ha) || j < len(hb) {
		// Seed the group with whichever hunk starts first. On a tie, an
		// insertion (empty base range) seeds first so it is emitted before
		// the other side's change rather than regressing behind it; two
		// insertions at the same point conflict via absorption either way.
		var glo, ghi int
		var seedA bool
		switch {
		case i >= len(ha):
			seedA = false
		case j >= len(hb):
			seedA = true
		case ha[i].lo != hb[j].lo:
			seedA = ha[i].lo < hb[j].lo
		case ha[i].lo == ha[i].hi:
			seedA = true
		case hb[j].lo == hb[j].hi:
			seedA = false
		default:
			seedA = true // both non-empty at same point: they conflict anyway
		}
		if seedA {
			glo, ghi = ha[i].lo, ha[i].hi
		} else {
			glo, ghi = hb[j].lo, hb[j].hi
		}
		firstA, firstB := i, j
		if seedA {
			i++
		} else {
			j++
		}
		// Absorb every hunk that interferes with the group.
		for {
			grew := false
			if i < len(ha) && spansConflict(glo, ghi, ha[i].lo, ha[i].hi) {
				ghi = maxInt(ghi, ha[i].hi)
				i++
				grew = true
			}
			if j < len(hb) && spansConflict(glo, ghi, hb[j].lo, hb[j].hi) {
				ghi = maxInt(ghi, hb[j].hi)
				j++
				grew = true
			}
			if !grew {
				break
			}
		}
		hasA := i > firstA
		hasB := j > firstB
		aLo, aHi := derivedRange(ha[firstA:i], glo, ghi)
		bLo, bHi := derivedRange(hb[firstB:j], glo, ghi)
		h := hunk{baseLo: glo, baseHi: ghi, aLo: aLo, aHi: aHi, bLo: bLo, bHi: bHi}
		switch {
		case hasA && hasB:
			if equalSlices(a[aLo:aHi], b[bLo:bHi]) {
				h.kind = hunkTakeA
			} else {
				h.kind = hunkConflict
			}
		case hasA:
			h.kind = hunkTakeA
		default:
			h.kind = hunkTakeB
		}
		emitStable(glo)
		out = append(out, h)
		basePos = ghi
	}
	emitStable(len(base))
	return out
}

// derivedRange maps the group's base range onto one derivative using that
// side's hunks within the group. Lines outside the side's hunks map 1:1.
func derivedRange(hunks []span, glo, ghi int) (int, int) {
	if len(hunks) == 0 {
		// The side did not change this region; its text equals base, but
		// the caller needs derived coordinates only when the side changed,
		// so a zero range is fine.
		return 0, 0
	}
	first, last := hunks[0], hunks[len(hunks)-1]
	lo := first.dlo - (first.lo - glo)
	hi := last.dhi + (ghi - last.hi)
	return lo, hi
}

// lcsAlign returns, for each index i of base, the index in derived that
// base[i] aligns to under a longest-common-subsequence alignment, or -1
// when base[i] has no match. The returned mapping is strictly increasing
// over matched entries.
func lcsAlign(base, derived []string) []int {
	n, m := len(base), len(derived)
	align := make([]int, n)
	for i := range align {
		align[i] = -1
	}
	if n == 0 || m == 0 {
		return align
	}
	// Standard O(n·m) LCS table.
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if base[i] == derived[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case base[i] == derived[j]:
			align[i] = j
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return align
}
