package sqldb

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"
)

// Result is the outcome of executing a statement. For SELECT (and for
// writes with RETURNING) Columns and Rows are populated; for writes,
// Affected counts the rows inserted, updated, or deleted.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Affected is the number of rows the statement wrote.
	Affected int

	// arena, when non-nil, owns the storage behind Rows; set only for
	// results of the *Owned entry points and reclaimed by PutResult
	// (resultpool.go).
	arena *resultArena
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return len(r.Rows) }

// Empty reports whether the result has no rows.
func (r *Result) Empty() bool { return len(r.Rows) == 0 }

// FirstValue returns the first column of the first row, or NULL when the
// result is empty.
func (r *Result) FirstValue() Value {
	if len(r.Rows) == 0 || len(r.Rows[0]) == 0 {
		return Null()
	}
	return r.Rows[0][0]
}

// Col returns the values of the named column across all rows. Unknown
// columns yield an empty slice.
func (r *Result) Col(name string) []Value {
	idx := -1
	for i, c := range r.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]Value, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[idx])
	}
	return out
}

// Fingerprint returns a hash covering column names and every row value, in
// order. The repair controller compares fingerprints to decide whether a
// re-executed query produced the same result as the original run (§2.1,
// "equivalence of inputs").
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, c := range r.Columns {
		h.Write([]byte(c))
		h.Write([]byte{1})
	}
	h.Write([]byte{2})
	h.Write([]byte(strconv.Itoa(r.Affected)))
	for _, row := range r.Rows {
		for _, v := range row {
			h.Write([]byte(v.Key()))
			h.Write([]byte{3})
		}
		h.Write([]byte{4})
	}
	return h.Sum64()
}

// Exec parses and executes one SQL statement. Parsed statements and
// their compiled plans are cached per source text in the database's own
// statement cache, so repeated forms pay the parser and planner once.
func (db *DB) Exec(src string, params ...Value) (*Result, error) {
	cs, err := db.stmts.Get(src)
	if err != nil {
		return nil, err
	}
	return db.ExecCached(cs, params)
}

// ExecStmt executes a parsed statement. The statement is not mutated.
func (db *DB) ExecStmt(stmt Statement, params []Value) (*Result, error) {
	if !timedExec() {
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execStmtLocked(stmt, params)
	}
	start := time.Now()
	db.mu.Lock()
	db.lastShape = ShapeOther
	res, err := db.execStmtLocked(stmt, params)
	shape := db.lastShape
	db.mu.Unlock()
	observeExec(start, shape, nil, stmt)
	return res, err
}

func (db *DB) execStmtLocked(stmt Statement, params []Value) (*Result, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return db.execCreateTable(s)
	case *CreateIndex:
		return db.execCreateIndex(s)
	case *AlterTableAdd:
		return db.execAlterAdd(s)
	case *DropTable:
		return db.execDropTable(s)
	case *Insert:
		return db.execInsert(s, params)
	case *Select:
		return db.execSelect(s, params)
	case *Update:
		return db.execUpdate(s, params)
	case *Delete:
		return db.execDelete(s, params)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// ExecCached executes a cached statement, reusing (or building) its
// compiled plan: column ordinals, the indexable-equality decision, and
// the compiled WHERE/SET/projection evaluators survive across
// executions and are invalidated by the DDL epoch. Results are
// identical to ExecStmt on the same statement.
func (db *DB) ExecCached(cs *CachedStmt, params []Value) (*Result, error) {
	if !timedExec() {
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCachedLocked(cs, params)
	}
	start := time.Now()
	db.mu.Lock()
	db.lastShape = ShapeOther
	res, err := db.execCachedLocked(cs, params)
	shape := db.lastShape
	db.mu.Unlock()
	observeExec(start, shape, cs, nil)
	return res, err
}

func (db *DB) execCachedLocked(cs *CachedStmt, params []Value) (*Result, error) {
	switch s := cs.Stmt.(type) {
	case *Select:
		if s.Table == "" {
			return db.execSelectNoTable(s, params)
		}
		p := db.planFor(cs)
		if p.sel == nil {
			return nil, fmt.Errorf("sql: no such table %s", s.Table)
		}
		return db.runSelect(p.sel.table, s, p.sel, params)
	case *Update:
		p := db.planFor(cs)
		if p.upd == nil {
			return nil, fmt.Errorf("sql: no such table %s", s.Table)
		}
		return db.runUpdate(p.upd.table, s, p.upd, params)
	case *Delete:
		p := db.planFor(cs)
		if p.del == nil {
			return nil, fmt.Errorf("sql: no such table %s", s.Table)
		}
		return db.runDelete(p.del.table, s, p.del, params)
	case *Insert:
		p := db.planFor(cs)
		if p.ins == nil {
			return nil, fmt.Errorf("sql: no such table %s", s.Table)
		}
		return db.runInsert(p.ins.table, s, p.ins, params)
	default:
		return db.execStmtLocked(cs.Stmt, params)
	}
}

func (db *DB) execCreateTable(s *CreateTable) (*Result, error) {
	if _, exists := db.tables[s.Table]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sql: table %s already exists", s.Table)
	}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("sql: table %s has no columns", s.Table)
	}
	t := &Table{
		Name:    s.Table,
		indexes: make(map[string]*colIndex),
	}
	seen := make(map[string]bool)
	for _, c := range s.Columns {
		if seen[c.Name] {
			return nil, fmt.Errorf("sql: table %s: duplicate column %s", s.Table, c.Name)
		}
		seen[c.Name] = true
		t.Columns = append(t.Columns, c)
	}
	t.Uniques = append(t.Uniques, s.Uniques...)
	t.rebuildColIdx()
	if err := t.buildUniqueSets(); err != nil {
		return nil, err
	}
	db.tables[s.Table] = t
	db.bumpEpoch()
	return &Result{}, nil
}

func (db *DB) execCreateIndex(s *CreateIndex) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	ci, ok := t.columnPos(s.Column)
	if !ok {
		return nil, fmt.Errorf("sql: table %s: no such column %s", s.Table, s.Column)
	}
	if _, exists := t.indexes[s.Column]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		// An index on the same column is equivalent; treat re-creation as OK.
		return &Result{}, nil
	}
	ix := newColIndex(s.Column)
	t.store.forEachLive(func(slot int, r *row) error {
		ix.add(r.vals[ci], slot)
		return nil
	})
	t.indexes[s.Column] = ix
	db.bumpEpoch()
	return &Result{}, nil
}

func (db *DB) execAlterAdd(s *AlterTableAdd) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	if t.HasColumn(s.Column.Name) {
		return nil, fmt.Errorf("sql: table %s: column %s already exists", s.Table, s.Column.Name)
	}
	def := Null()
	if s.Column.Default != nil {
		def = s.Column.Default.Value
	}
	if s.Column.NotNull && def.IsNull() && t.liveRows > 0 {
		return nil, fmt.Errorf("sql: table %s: cannot add NOT NULL column %s without default", s.Table, s.Column.Name)
	}
	t.Columns = append(t.Columns, s.Column)
	t.rebuildColIdx()
	t.store.forEachLive(func(_ int, r *row) error {
		r.vals = append(r.vals, def)
		return nil
	})
	db.bumpEpoch()
	return &Result{}, nil
}

func (db *DB) execDropTable(s *DropTable) (*Result, error) {
	if _, ok := db.tables[s.Table]; !ok {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	delete(db.tables, s.Table)
	db.bumpEpoch()
	return &Result{}, nil
}

func (db *DB) execInsert(s *Insert, params []Value) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	return db.runInsert(t, s, db.planInsert(t, s), params)
}

func (db *DB) runInsert(t *Table, s *Insert, p *insertPlan, params []Value) (*Result, error) {
	if p.posErr != nil {
		return nil, p.posErr
	}
	db.lastShape = ShapeInsert
	colPos := p.colPos
	res := &Result{Affected: 0}
	if len(s.Returning) > 0 {
		res.Columns = append(res.Columns, s.Returning...)
	}
	// Pass 1: evaluate and validate every row, so a failure leaves the
	// table untouched (statements are atomic).
	newRows := make([][]Value, 0, len(p.rows))
	batchKeys := make(map[string]bool)
	for _, exprRow := range p.rows {
		if len(exprRow) != len(colPos) {
			return nil, fmt.Errorf("sql: table %s: %d values for %d columns", s.Table, len(exprRow), len(colPos))
		}
		vals := make([]Value, len(t.Columns))
		assigned := make([]bool, len(t.Columns))
		for i, e := range exprRow {
			v, err := e(nil, params)
			if err != nil {
				return nil, err
			}
			vals[colPos[i]] = v
			assigned[colPos[i]] = true
		}
		for ci, cd := range t.Columns {
			if !assigned[ci] && cd.Default != nil {
				vals[ci] = cd.Default.Value
			}
		}
		if err := t.checkRow(vals); err != nil {
			return nil, err
		}
		if err := t.checkUniqueInsert(vals); err != nil {
			return nil, err
		}
		for _, us := range t.uniques {
			if key, ok := us.keyFor(vals); ok {
				if batchKeys[key] {
					return nil, &UniqueViolationError{Table: t.Name, Constraint: us.def}
				}
				batchKeys[key] = true
			}
		}
		newRows = append(newRows, vals)
	}
	// Pass 2: apply.
	for _, vals := range newRows {
		slot := t.store.alloc(vals)
		t.liveRows++
		t.indexAdd(slot, vals)
		res.Affected++
		if len(s.Returning) > 0 {
			out, err := t.projectColumns(s.Returning, vals)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, out)
		}
	}
	return res, nil
}

// checkRow validates types and NOT NULL constraints.
func (t *Table) checkRow(vals []Value) error {
	for ci, cd := range t.Columns {
		v := vals[ci]
		if v.IsNull() {
			if cd.NotNull {
				return fmt.Errorf("sql: table %s: column %s is NOT NULL", t.Name, cd.Name)
			}
			continue
		}
		switch cd.Type {
		case KindInt:
			if v.Kind == KindBool {
				vals[ci] = Int(v.AsInt())
			} else if v.Kind != KindInt {
				return fmt.Errorf("sql: table %s: column %s expects INTEGER, got %s", t.Name, cd.Name, v.Kind)
			}
		case KindText:
			if v.Kind != KindText {
				vals[ci] = Text(v.AsText())
			}
		case KindBool:
			if v.Kind == KindInt {
				vals[ci] = Bool(v.Int != 0)
			} else if v.Kind != KindBool {
				return fmt.Errorf("sql: table %s: column %s expects BOOLEAN, got %s", t.Name, cd.Name, v.Kind)
			}
		}
	}
	return nil
}

func (t *Table) checkUniqueInsert(vals []Value) error {
	for _, us := range t.uniques {
		if key, ok := us.keyFor(vals); ok {
			if _, dup := us.m[key]; dup {
				return &UniqueViolationError{Table: t.Name, Constraint: us.def}
			}
		}
	}
	return nil
}

// UniqueViolationError reports an INSERT or UPDATE that would violate a
// unique constraint. WARP's repair watches for changes in whether an INSERT
// succeeds (§6), so this condition is a distinguished type.
type UniqueViolationError struct {
	Table      string
	Constraint UniqueConstraint
}

// Error implements the error interface.
func (e *UniqueViolationError) Error() string {
	return fmt.Sprintf("sql: table %s: duplicate value violates %s", e.Table, e.Constraint.String())
}

// IsUniqueViolation reports whether err is a unique constraint violation.
func IsUniqueViolation(err error) bool {
	_, ok := err.(*UniqueViolationError)
	return ok
}

func (t *Table) indexAdd(slot int, vals []Value) {
	for col, ix := range t.indexes {
		ci := t.colIdx[col]
		ix.add(vals[ci], slot)
	}
	for _, us := range t.uniques {
		if key, ok := us.keyFor(vals); ok {
			us.m[key] = slot
		}
	}
}

func (t *Table) indexRemove(slot int, vals []Value) {
	for col, ix := range t.indexes {
		ci := t.colIdx[col]
		ix.remove(vals[ci], slot)
	}
	for _, us := range t.uniques {
		if key, ok := us.keyFor(vals); ok {
			if cur, exists := us.m[key]; exists && cur == slot {
				delete(us.m, key)
			}
		}
	}
}

func (t *Table) projectColumns(cols []string, vals []Value) ([]Value, error) {
	out := make([]Value, len(cols))
	for i, c := range cols {
		ci, ok := t.columnPos(c)
		if !ok {
			return nil, fmt.Errorf("sql: table %s: no such column %s", t.Name, c)
		}
		out[i] = vals[ci]
	}
	return out, nil
}

// matchSlots returns the slots whose rows satisfy the compiled
// predicate, visiting the index postings the plan selected (or every
// live row). usedIndex reports whether an index narrowed the scan (for
// the DB's scan counters); inOrder reports that the slots come back in
// the requested ORDER BY order, letting the caller skip its sort step.
// When order is nil — or the plan falls back at execution time — slots
// come back sorted ascending: postings are kept sorted, and the fallback
// scans in slot order, so results are identical to a full scan.
func (t *Table) matchSlots(scan *scanPlan, order *orderIdxPlan, pred rowPred, params []Value) (matched []int, usedIndex, inOrder bool, err error) {
	if scan != nil {
		if matched, handled, err := t.indexScan(scan, order, pred, params); handled {
			return matched, true, order != nil, err
		}
	}
	if order != nil {
		if matched, handled, err := t.orderedWalk(order, pred, params); handled {
			return matched, false, true, err
		}
	}
	matched = nil
	err = t.store.forEachLive(func(slot int, r *row) error {
		ok, err := pred(r.vals, params)
		if err != nil {
			return err
		}
		if ok {
			matched = append(matched, slot)
		}
		return nil
	})
	if err != nil {
		return nil, false, false, err
	}
	return matched, false, false, nil
}

// filterSlots appends the slots from one posting list whose rows satisfy
// pred.
func (t *Table) filterSlots(slots []int, pred rowPred, params []Value, dst []int) ([]int, error) {
	for _, slot := range slots {
		r := t.store.rowAt(slot)
		if r.deleted {
			continue
		}
		ok, err := pred(r.vals, params)
		if err != nil {
			return nil, err
		}
		if ok {
			dst = append(dst, slot)
		}
	}
	return dst, nil
}

// indexScan serves one eq/IN/range plan. handled=false means the plan is
// unusable this execution (missing index, unresolvable parameter, or an
// operand that would break probe semantics) and the caller must fall
// back to scanning.
func (t *Table) indexScan(scan *scanPlan, order *orderIdxPlan, pred rowPred, params []Value) (matched []int, handled bool, err error) {
	ix, exists := t.indexes[scan.column]
	if !exists {
		return nil, false, nil
	}
	switch scan.kind {
	case scanEq:
		key, ok := scan.lookupKey(params)
		if !ok {
			return nil, false, nil
		}
		matched, err = t.filterSlots(ix.buckets[key], pred, params, nil)
		return matched, true, err

	case scanIn:
		probes := make([]Value, 0, len(scan.in))
		for _, c := range scan.in {
			v, ok := c.resolve(params)
			if !ok {
				return nil, false, nil
			}
			if c.hasConst {
				probes = append(probes, v) // pre-coerced at plan time
				continue
			}
			if v.IsNull() {
				continue // NULL list element never equals a column value
			}
			cv, ok := coerceToColumn(v, scan.colKind)
			if !ok {
				if scan.colKind == KindInt {
					continue // non-numeric text can never equal an integer
				}
				return nil, false, nil
			}
			probes = append(probes, cv)
		}
		// Probe in key order and drop duplicate keys, so an ordered IN
		// yields each group exactly once; descending order reverses the
		// group walk, not the slot order within a group.
		sort.SliceStable(probes, func(a, b int) bool {
			c, _ := compareValues(probes[a], probes[b])
			return c < 0
		})
		if order != nil && order.desc {
			for i, j := 0, len(probes)-1; i < j; i, j = i+1, j-1 {
				probes[i], probes[j] = probes[j], probes[i]
			}
		}
		var lastKey string
		for i, v := range probes {
			key := v.Key()
			if i > 0 && key == lastKey {
				continue
			}
			lastKey = key
			matched, err = t.filterSlots(ix.buckets[key], pred, params, matched)
			if err != nil {
				return nil, true, err
			}
		}
		if order == nil {
			sort.Ints(matched)
		}
		return matched, true, nil

	case scanRange:
		lo, emptyLo, ok := scan.rangeBoundFor(scan.lo, params)
		if !ok {
			return nil, false, nil
		}
		hi, emptyHi, ok := scan.rangeBoundFor(scan.hi, params)
		if !ok {
			return nil, false, nil
		}
		if emptyLo || emptyHi {
			return nil, true, nil // NULL bound: the conjunct is true of no row
		}
		if order != nil && order.desc {
			var groups [][]int
			ix.ord.ascendRange(lo, hi, func(slots []int) bool {
				groups = append(groups, slots)
				return true
			})
			for i := len(groups) - 1; i >= 0; i-- {
				matched, err = t.filterSlots(groups[i], pred, params, matched)
				if err != nil {
					return nil, true, err
				}
			}
			return matched, true, nil
		}
		ix.ord.ascendRange(lo, hi, func(slots []int) bool {
			matched, err = t.filterSlots(slots, pred, params, matched)
			return err == nil
		})
		if err != nil {
			return nil, true, err
		}
		if order == nil {
			sort.Ints(matched)
		}
		return matched, true, nil
	}
	return nil, false, nil
}

// orderedWalk enumerates every live row in ORDER BY order through the
// sort column's ordered index: NULL keys first ascending and last
// descending, matching the executor's sort rules, and ascending slot
// order within equal keys, matching the stable sort's tie order.
func (t *Table) orderedWalk(order *orderIdxPlan, pred rowPred, params []Value) (matched []int, handled bool, err error) {
	ix, exists := t.indexes[order.column]
	if !exists {
		return nil, false, nil
	}
	if order.desc {
		var groups [][]int
		ix.ord.ascendRange(nil, nil, func(slots []int) bool {
			groups = append(groups, slots)
			return true
		})
		for i := len(groups) - 1; i >= 0; i-- {
			matched, err = t.filterSlots(groups[i], pred, params, matched)
			if err != nil {
				return nil, true, err
			}
		}
		matched, err = t.filterSlots(ix.ord.nullSlots, pred, params, matched)
		return matched, true, err
	}
	matched, err = t.filterSlots(ix.ord.nullSlots, pred, params, nil)
	if err != nil {
		return nil, true, err
	}
	ix.ord.ascendRange(nil, nil, func(slots []int) bool {
		matched, err = t.filterSlots(slots, pred, params, matched)
		return err == nil
	})
	return matched, true, err
}

// coerceToColumn converts a constant to the column's storage type, the
// same conversion checkRow applies on write. It reports false when the
// value cannot be represented (so callers fall back to scanning).
func coerceToColumn(v Value, kind Kind) (Value, bool) {
	if v.IsNull() {
		return v, true
	}
	switch kind {
	case KindInt:
		if v.Kind == KindInt {
			return v, true
		}
		if n, ok := textNumeric(v); ok {
			return Int(n), true
		}
		return v, false
	case KindText:
		// Comparisons against text columns can coerce both ways (numeric
		// text equals the number); only same-kind lookups are exact enough
		// for a hash probe.
		return v, v.Kind == KindText
	case KindBool:
		switch v.Kind {
		case KindBool:
			return v, true
		case KindInt:
			return Bool(v.Int != 0), true
		}
		return v, false
	}
	return v, true
}

func (db *DB) execSelect(s *Select, params []Value) (*Result, error) {
	if s.Table == "" {
		return db.execSelectNoTable(s, params)
	}
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	return db.runSelect(t, s, db.planSelect(t, s), params)
}

func (db *DB) runSelect(t *Table, s *Select, p *selectPlan, params []Value) (*Result, error) {
	matched, usedIndex, inOrder, err := t.matchSlots(p.scan, p.orderIdx, p.where, params)
	if err != nil {
		return nil, err
	}
	db.noteScan(usedIndex)
	db.lastShape = selectShape(p.scan, usedIndex)

	if p.aggregates {
		return t.execAggregates(s, matched, params)
	}

	var res *Result
	if db.ownedExec {
		res = newPooledResult()
	} else {
		res = &Result{}
	}
	res.Columns = append([]string(nil), p.columns...)

	// ORDER BY: evaluate sort keys per row, stable sort by scan order —
	// unless the index walk already delivered the slots in order.
	if len(p.orderBy) > 0 && !inOrder {
		type sortRow struct {
			slot int
			keys []Value
		}
		srs := make([]sortRow, len(matched))
		keyBuf := make([]Value, len(p.orderBy)*len(matched))
		for i, slot := range matched {
			keys := keyBuf[i*len(p.orderBy) : (i+1)*len(p.orderBy) : (i+1)*len(p.orderBy)]
			vals := t.store.rowAt(slot).vals
			for j, ob := range p.orderBy {
				v, err := ob(vals, params)
				if err != nil {
					return nil, err
				}
				keys[j] = v
			}
			srs[i] = sortRow{slot: slot, keys: keys}
		}
		sort.SliceStable(srs, func(a, b int) bool {
			for j, ob := range s.OrderBy {
				va, vb := srs[a].keys[j], srs[b].keys[j]
				// NULLs sort first ascending, last descending.
				if va.IsNull() && vb.IsNull() {
					continue
				}
				if va.IsNull() {
					return !ob.Desc
				}
				if vb.IsNull() {
					return ob.Desc
				}
				c, _ := compareValues(va, vb)
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for i, sr := range srs {
			matched[i] = sr.slot
		}
	}

	// Projection.
	var seen map[uint64]bool
	if s.Distinct {
		seen = make(map[uint64]bool)
	}
	for _, slot := range matched {
		vals := t.store.rowAt(slot).vals
		out := res.appendRow(p.nOut)[:0]
		for _, it := range p.items {
			if it.star {
				out = append(out, vals...)
				continue
			}
			v, err := it.expr(vals, params)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows[len(res.Rows)-1] = out
		if s.Distinct {
			fp := rowFingerprint(out)
			if seen[fp] {
				res.dropLastRow()
				continue
			}
			seen[fp] = true
		}
	}

	return applyLimit(res, s, params)
}

func rowFingerprint(row []Value) uint64 {
	h := fnv.New64a()
	for _, v := range row {
		h.Write([]byte(v.Key()))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func applyLimit(res *Result, s *Select, params []Value) (*Result, error) {
	ctx := &evalCtx{params: params}
	offset := 0
	if s.Offset != nil {
		v, err := evalExpr(s.Offset, ctx)
		if err != nil {
			return nil, err
		}
		offset = int(v.AsInt())
		if offset < 0 {
			offset = 0
		}
	}
	if offset > len(res.Rows) {
		offset = len(res.Rows)
	}
	res.Rows = res.Rows[offset:]
	if s.Limit != nil {
		v, err := evalExpr(s.Limit, ctx)
		if err != nil {
			return nil, err
		}
		limit := int(v.AsInt())
		if limit >= 0 && limit < len(res.Rows) {
			res.Rows = res.Rows[:limit]
		}
	}
	return res, nil
}

func (db *DB) execSelectNoTable(s *Select, params []Value) (*Result, error) {
	res := &Result{}
	ctx := &evalCtx{params: params}
	row := make([]Value, 0, len(s.Items))
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * requires a FROM clause")
		}
		res.Columns = append(res.Columns, itemName(it))
		v, err := evalExpr(it.Expr, ctx)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	res.Rows = append(res.Rows, row)
	return applyLimit(res, s, params)
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ColumnRef); ok {
		return cr.Name
	}
	return it.Expr.String()
}

func hasAggregates(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// exprHasAggregate walks an expression looking for aggregate calls.
func exprHasAggregate(e Expr) bool {
	switch e := e.(type) {
	case *FuncCall:
		if e.IsAggregate() {
			return true
		}
		for _, a := range e.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return exprHasAggregate(e.Left) || exprHasAggregate(e.Right)
	case *UnaryExpr:
		return exprHasAggregate(e.Operand)
	case *InExpr:
		if exprHasAggregate(e.Expr) {
			return true
		}
		for _, item := range e.List {
			if exprHasAggregate(item) {
				return true
			}
		}
	case *IsNullExpr:
		return exprHasAggregate(e.Expr)
	}
	return false
}

// execAggregates evaluates a SELECT whose items contain aggregate calls:
// each aggregate is computed over the matched rows (memoized by its SQL
// form) and the item expressions are then evaluated with aggregates
// substituted, so forms like COALESCE(MAX(id), 0) + 1 work.
func (t *Table) execAggregates(s *Select, matched []int, params []Value) (*Result, error) {
	cache := make(map[string]Value)
	ctx := &evalCtx{
		params: params,
		agg: func(fc *FuncCall) (Value, error) {
			key := fc.String()
			if v, ok := cache[key]; ok {
				return v, nil
			}
			v, err := t.evalAggregate(fc, matched, params)
			if err != nil {
				return Null(), err
			}
			cache[key] = v
			return v, nil
		},
		lookup: func(name string) (Value, bool) {
			// Plain column references outside aggregates would need GROUP
			// BY semantics; reject via "not found".
			return Null(), false
		},
	}
	res := &Result{}
	row := make([]Value, 0, len(s.Items))
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: cannot mix * with aggregates")
		}
		res.Columns = append(res.Columns, itemName(it))
		v, err := evalExpr(it.Expr, ctx)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

func (t *Table) evalAggregate(fc *FuncCall, matched []int, params []Value) (Value, error) {
	if fc.Name == "COUNT" && fc.Star {
		return Int(int64(len(matched))), nil
	}
	if len(fc.Args) != 1 {
		return Null(), errEval("%s takes one argument", fc.Name)
	}
	var (
		count int64
		sum   int64
		min   Value
		max   Value
	)
	for _, slot := range matched {
		ctx := t.rowCtx(slot, params)
		v, err := evalExpr(fc.Args[0], ctx)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			continue
		}
		count++
		sum += v.AsInt()
		if min.IsNull() {
			min, max = v, v
			continue
		}
		if c, ok := compareValues(v, min); ok && c < 0 {
			min = v
		}
		if c, ok := compareValues(v, max); ok && c > 0 {
			max = v
		}
	}
	switch fc.Name {
	case "COUNT":
		return Int(count), nil
	case "SUM":
		if count == 0 {
			return Null(), nil
		}
		return Int(sum), nil
	case "AVG":
		if count == 0 {
			return Null(), nil
		}
		return Int(sum / count), nil
	case "MIN":
		return min, nil
	case "MAX":
		return max, nil
	}
	return Null(), errEval("unknown aggregate %s", fc.Name)
}

func (t *Table) rowCtx(slot int, params []Value) *evalCtx {
	vals := t.store.rowAt(slot).vals
	return &evalCtx{
		params: params,
		lookup: func(name string) (Value, bool) {
			ci, ok := t.colIdx[name]
			if !ok {
				return Null(), false
			}
			return vals[ci], true
		},
	}
}

func (db *DB) execUpdate(s *Update, params []Value) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	return db.runUpdate(t, s, db.planUpdate(t, s), params)
}

func (db *DB) runUpdate(t *Table, s *Update, p *updatePlan, params []Value) (*Result, error) {
	if p.setErr != nil {
		return nil, p.setErr
	}
	setPos := p.setPos

	// Two passes: find matches first so that updates do not affect the scan.
	matched, usedIndex, _, err := t.matchSlots(p.scan, nil, p.where, params)
	if err != nil {
		return nil, err
	}
	db.noteScan(usedIndex)
	db.lastShape = ShapeUpdate

	res := &Result{}
	if len(s.Returning) > 0 {
		res.Columns = append(res.Columns, s.Returning...)
	}
	// Updates apply row by row but the statement is atomic: on failure,
	// already-updated rows are restored.
	type applied struct {
		slot int
		old  []Value
	}
	var done []applied
	undo := func() {
		for i := len(done) - 1; i >= 0; i-- {
			a := done[i]
			r := t.store.rowAt(a.slot)
			t.indexRemove(a.slot, r.vals)
			r.vals = a.old
			t.indexAdd(a.slot, a.old)
		}
	}
	for _, slot := range matched {
		oldVals := t.store.rowAt(slot).vals
		newVals := append([]Value(nil), oldVals...)
		for i, ce := range p.set {
			v, err := ce(oldVals, params)
			if err != nil {
				undo()
				return nil, err
			}
			newVals[setPos[i]] = v
		}
		if err := t.checkRow(newVals); err != nil {
			undo()
			return nil, err
		}
		// Uniqueness: remove self, test, and re-add.
		t.indexRemove(slot, oldVals)
		if err := t.checkUniqueInsert(newVals); err != nil {
			t.indexAdd(slot, oldVals)
			undo()
			return nil, err
		}
		t.store.rowAt(slot).vals = newVals
		t.indexAdd(slot, newVals)
		done = append(done, applied{slot: slot, old: oldVals})
		res.Affected++
		if len(s.Returning) > 0 {
			out, err := t.projectColumns(s.Returning, newVals)
			if err != nil {
				undo()
				return nil, err
			}
			res.Rows = append(res.Rows, out)
		}
	}
	return res, nil
}

func (db *DB) execDelete(s *Delete, params []Value) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", s.Table)
	}
	return db.runDelete(t, s, db.planDelete(t, s), params)
}

func (db *DB) runDelete(t *Table, s *Delete, p *deletePlan, params []Value) (*Result, error) {
	matched, usedIndex, _, err := t.matchSlots(p.scan, nil, p.where, params)
	if err != nil {
		return nil, err
	}
	db.noteScan(usedIndex)
	db.lastShape = ShapeDelete
	res := &Result{}
	if len(s.Returning) > 0 {
		res.Columns = append(res.Columns, s.Returning...)
	}
	for _, slot := range matched {
		vals := t.store.rowAt(slot).vals
		if len(s.Returning) > 0 {
			out, err := t.projectColumns(s.Returning, vals)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, out)
		}
		t.indexRemove(slot, vals)
		t.store.kill(slot)
		t.liveRows--
		res.Affected++
	}
	return res, nil
}
