// Command warp-bench regenerates the experimental tables of the paper's
// evaluation (§8, Tables 3–8) and prints them in the paper's layout.
//
// Usage:
//
//	warp-bench                  # all tables at default scale
//	warp-bench -table 7         # one table
//	warp-bench -users 100       # Table 3/7 workload size (paper: 100)
//	warp-bench -users8 5000     # Table 8 workload size (paper: 5000)
//	warp-bench -scale5 100      # Table 5 workload scale (paper-comparable)
//	warp-bench -repair-workers 1  # serial repair engine for every table
//
// Absolute timings depend on this machine; the shapes (who repairs, who
// conflicts, what fraction re-executes, how repair scales) are the
// reproduction targets. See EXPERIMENTS.md for a recorded run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"warp/internal/bench"
	"warp/internal/obs"
)

// fmtDur renders a histogram duration at display resolution (the
// buckets are power-of-two wide, so sub-permille digits are noise).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	}
	return d.String()
}

// printHistograms renders every populated latency histogram — the
// per-plan-shape exec latencies, lock waits, WAL append/fsync,
// checkpoint sections, request handling, and repair items — as a
// quantile table (docs/observability.md).
func printHistograms(snap obs.Snapshot) {
	fmt.Println("Latency histograms (per phase):")
	fmt.Printf("  %-52s %10s %10s %10s %10s %10s %10s\n",
		"metric", "count", "mean", "p50", "p95", "p99", "max")
	for _, h := range snap.Histograms {
		if h.Hist.Count == 0 {
			continue
		}
		fmt.Printf("  %-52s %10d %10s %10s %10s %10s %10s\n",
			h.Name, h.Hist.Count,
			fmtDur(h.Hist.Mean()), fmtDur(h.Hist.Quantile(0.50)),
			fmtDur(h.Hist.Quantile(0.95)), fmtDur(h.Hist.Quantile(0.99)),
			fmtDur(h.Hist.Max()))
	}
}

func main() {
	table := flag.Int("table", 0, "table to regenerate (3-8); 0 = all")
	users := flag.Int("users", 100, "users for Tables 3 and 7 (paper: 100)")
	users8 := flag.Int("users8", 1000, "users for Table 8 (paper: 5000)")
	scale5 := flag.Int("scale5", 100, "workload scale for Table 5")
	visits6 := flag.Int("visits6", 300, "measured visits per configuration for Table 6 (alias of -table6-visits)")
	table6Visits := flag.Int("table6-visits", 300, "measured visits per configuration for Table 6")
	repairWorkers := flag.Int("repair-workers", 0,
		"parallel repair workers for every repair (0 = GOMAXPROCS, 1 = the paper's serial engine)")
	metrics := flag.Bool("metrics", true,
		"print the per-phase latency histogram table after the runs")
	flag.Parse()
	bench.DefaultRepairWorkers = *repairWorkers
	// Run instrumented so the histogram table below has data; the bench
	// numbers themselves absorb the (few-percent) instrumentation cost,
	// matching how a real deployment runs (warp-server also enables obs).
	obs.SetEnabled(true)
	nVisits6 := *visits6
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "table6-visits" {
			nVisits6 = *table6Visits
		}
	})

	run := func(n int) bool { return *table == 0 || *table == n }
	pct := func(hit, total uint64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(hit) / float64(total)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "warp-bench:", err)
		os.Exit(1)
	}

	if run(3) {
		rows, err := bench.Table3(*users)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable3(rows))
	}
	if run(4) {
		rows, err := bench.Table4()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable4(rows))
	}
	if run(5) {
		rows, err := bench.Table5(*scale5)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable5(rows))
	}
	if run(6) {
		rows, err := bench.Table6(nVisits6)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable6(rows))
		// The normal-operation overhead trend, spelled out per layer so a
		// regression is visible outside CI's bench gate: WARP-vs-plain
		// slowdown plus log bytes per visit by layer (browser / app / db).
		for _, r := range rows {
			overhead := 0.0
			if r.WARPVisitsPerSec > 0 {
				overhead = (r.NoWARPVisitsPerSec/r.WARPVisitsPerSec - 1) * 100
			}
			fmt.Printf("%-9s normal-op overhead %+.1f%%; log B/visit: browser %.0f, app %.0f, db %.0f (total %.0f)\n",
				r.Workload, overhead,
				r.BrowserBytesPerVisit, r.AppBytesPerVisit, r.DBBytesPerVisit,
				r.BrowserBytesPerVisit+r.AppBytesPerVisit+r.DBBytesPerVisit)
			// The database fast-path engagement behind the same window:
			// statement/plan cache hit rates and how many scans rode an
			// index. Near-zero hit rates or a high full-scan share mean the
			// overhead above is paying for avoidable recompilation or
			// materialized scans.
			e := r.Exec
			fmt.Printf("%-9s db cache: stmt %.0f%% (%d/%d), plan %.0f%% (%d/%d); scans: %d index, %d full\n",
				r.Workload,
				pct(e.StmtCacheHits, e.StmtCacheHits+e.StmtCacheMisses), e.StmtCacheHits, e.StmtCacheHits+e.StmtCacheMisses,
				pct(e.PlanHits, e.PlanHits+e.PlanMisses), e.PlanHits, e.PlanHits+e.PlanMisses,
				e.IndexScans, e.FullScans)
		}
		fmt.Println()
		withExt, withoutExt, err := bench.ExtensionOverhead(200)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Page load time: %v with extension, %v without (§8.5 inline)\n\n", withExt, withoutExt)
	}
	if run(7) {
		rows, err := bench.Table7(*users)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable7(
			fmt.Sprintf("Table 7: Repair performance, %d-user workload.", *users), rows))
	}
	if run(8) {
		rows, err := bench.Table8(*users8)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable7(
			fmt.Sprintf("Table 8: Repair performance, %d-user workload (paper: 5,000).", *users8), rows))
	}

	if *metrics {
		printHistograms(obs.Default.Snapshot())
	}
}
