// Package ttdb implements WARP's time-travel database (paper §4).
//
// The time-travel database is a SQL-rewriting layer over the embedded
// engine in internal/sqldb, exactly as the paper's prototype was a
// query-rewriting layer over PostgreSQL (§6). It provides:
//
//   - continuous versioning of every row: each table is augmented with
//     start_time and end_time columns, and updates and deletes create new
//     versions instead of destroying old ones (§4.2);
//   - repair generations: start_gen and end_gen columns let an online
//     repair build the "next" generation of the database while normal
//     operation continues against the "current" one (§4.3);
//   - row IDs: a stable per-row name, either an application column declared
//     by annotation or a synthesized warp_row_id column (§4.1);
//   - partitions: tables are logically split by the values of declared
//     partition columns, and every query's read and write partition sets are
//     extracted so the repair controller can skip unaffected queries (§4.1);
//   - two-phase re-execution of multi-row writes and fine-grained rollback
//     of individual rows to a past time (§4.2).
//
// All timestamps are logical (internal/vclock); Infinity marks live
// versions.
//
// # Concurrency
//
// The database is safe for concurrent use by normal execution and by
// parallel repair workers. Locking is layered:
//
//   - db.mu guards generation/repair/GC state and table annotations;
//   - db.tablesMu guards the table registry;
//   - each tableMeta has its own mutex, held for the full multi-statement
//     span of an operation on that table (an exec, a two-phase
//     re-execution, a rollback), so repair workers on different tables
//     proceed in parallel while operations on one table serialize.
//
// DDL, generation switches (FinishRepair/AbortRepair), and GC take every
// table lock. The acquisition order is db.mu → table locks, and code
// holding a table lock never acquires db.mu. tablesMu is a leaf: it is
// taken only for momentary registry reads/writes and is never held across
// a table-lock (or db.mu) acquisition — which is why createTable and
// DropTable may briefly write-lock it even while lockAll holds every
// table lock.
package ttdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

// Reserved column names added to every table. Applications must not declare
// columns with these names.
const (
	ColRowID     = "warp_row_id"
	ColStartTime = "warp_start_time"
	ColEndTime   = "warp_end_time"
	ColStartGen  = "warp_start_gen"
	ColEndGen    = "warp_end_gen"
)

// Infinity is the "still valid" timestamp/generation marker.
const Infinity = vclock.Infinity

// TableSpec carries the per-table annotations the paper requires from the
// programmer or administrator (§4.1, §8.1): which application column is a
// stable row ID (empty to let WARP synthesize one) and which columns
// partition the table for dependency analysis (empty for none, meaning
// whole-table dependencies).
type TableSpec struct {
	RowIDColumn      string
	PartitionColumns []string
}

// tableMeta is the runtime bookkeeping for one augmented table. mu
// serializes all data operations on the table; repair workers touching
// different tables run in parallel.
type tableMeta struct {
	mu        sync.Mutex
	name      string
	spec      TableSpec
	rowIDCol  string // spec.RowIDColumn or ColRowID
	synthetic bool   // rowIDCol == ColRowID
	userCols  []string
	partCols  map[string]bool
	nextRowID int64

	// partIdx is the per-partition version index: for every partition, the
	// row-version events (row ID, time) that touched it. It turns repair's
	// "find rows touching partition P at or after time T" from a table scan
	// into an index lookup (see partindex.go). Guarded by mu.
	partIdx map[Partition][]partEntry
}

// Observer receives database change events, in per-table commit order.
// It is the seam a persistence layer attaches to (internal/store encodes
// these as WAL records) without reaching into the database's internals;
// the database is fully usable with no observer set.
//
// RecordApplied runs while the mutated table's lock (and, for DDL, the
// database lock) is still held, so the event order an observer sees per
// table is exactly the execution order. Implementations must not call
// back into the DB.
type Observer interface {
	// RecordApplied fires after a normal-execution mutation (INSERT,
	// UPDATE, DELETE, or DDL) commits. Reads are not reported, and
	// repair-generation re-execution is not reported either: a repair is
	// made durable as a whole when it commits (see internal/core).
	RecordApplied(rec *Record)
	// TableAnnotated fires when a table gains row-ID / partition
	// annotations.
	TableAnnotated(table string, spec TableSpec)
	// Collected fires after GC discarded row versions older than
	// beforeTime.
	Collected(beforeTime int64)
}

// DB is a time-travel database.
type DB struct {
	// mu guards specs, inRepair, and gcBefore, and serializes global
	// operations (DDL, generation switches, GC) at their entry.
	mu    sync.Mutex
	raw   *sqldb.DB
	clock *vclock.Clock

	specs map[string]TableSpec

	// tablesMu guards the tables registry map itself; the per-table locks
	// guard the tables' contents.
	tablesMu sync.RWMutex
	tables   map[string]*tableMeta

	// currentGen is atomic so exec paths can read it while holding only a
	// table lock; it changes only under lockAll (FinishRepair).
	currentGen atomic.Int64
	inRepair   bool

	gcBefore int64 // versions strictly older than this have been collected

	// dirtyMu guards dirty, the set of tables mutated since the last
	// checkpoint. It is a leaf lock: taken only for momentary set
	// updates, under any combination of db.mu and table locks. The
	// persistence layer snapshots and clears the set at checkpoint time
	// (TakeDirty) so incremental checkpoints rewrite only changed
	// tables.
	dirtyMu sync.Mutex
	dirty   map[string]bool

	// obs, when set, receives change events. Installed once before use
	// (SetObserver); read under the locks its callbacks fire under.
	obs Observer
}

// Open creates a time-travel database over a fresh storage engine, sharing
// the given logical clock with the rest of the system.
func Open(clock *vclock.Clock) *DB {
	db := &DB{
		raw:    sqldb.Open(),
		clock:  clock,
		specs:  make(map[string]TableSpec),
		tables: make(map[string]*tableMeta),
		dirty:  make(map[string]bool),
	}
	db.currentGen.Store(1)
	return db
}

// markDirty records that a table's physical state changed since the
// last checkpoint. Safe under any lock (dirtyMu is a leaf).
func (db *DB) markDirty(table string) {
	if table == "" {
		return
	}
	db.dirtyMu.Lock()
	db.dirty[table] = true
	db.dirtyMu.Unlock()
}

// markAllDirty flags every registered table, for operations that rewrite
// physical state across the board (generation switches, GC).
func (db *DB) markAllDirty() {
	db.tablesMu.RLock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	db.tablesMu.RUnlock()
	db.dirtyMu.Lock()
	for _, name := range names {
		db.dirty[name] = true
	}
	db.dirtyMu.Unlock()
}

// TakeDirty atomically returns and clears the set of tables mutated
// since the last call, sorted. The caller (the persistence layer) must
// quiesce mutators across the take-encode span — the same rule a
// checkpoint already imposes — or re-mark the tables with MarkDirty if
// the checkpoint fails.
func (db *DB) TakeDirty() []string {
	db.dirtyMu.Lock()
	out := make([]string, 0, len(db.dirty))
	for name := range db.dirty {
		out = append(out, name)
	}
	db.dirty = make(map[string]bool)
	db.dirtyMu.Unlock()
	sort.Strings(out)
	return out
}

// MarkDirty re-flags tables, undoing a TakeDirty whose checkpoint
// failed (also usable by tests to force a section rewrite).
func (db *DB) MarkDirty(tables ...string) {
	db.dirtyMu.Lock()
	for _, t := range tables {
		db.dirty[t] = true
	}
	db.dirtyMu.Unlock()
}

// Raw returns the underlying storage engine. It is exposed for tests and
// storage accounting only; going around the rewriting layer on live tables
// breaks versioning invariants.
func (db *DB) Raw() *sqldb.DB { return db.raw }

// Clock returns the logical clock shared with the rest of the system.
func (db *DB) Clock() *vclock.Clock { return db.clock }

// CurrentGen returns the current repair generation.
func (db *DB) CurrentGen() int64 { return db.currentGen.Load() }

// InRepair reports whether a repair generation is open.
func (db *DB) InRepair() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inRepair
}

// SetObserver installs the database's change observer (nil to remove).
// Install before concurrent use; the observer is not re-notified of
// state that already exists.
func (db *DB) SetObserver(o Observer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs = o
}

// Annotate declares the row ID column and partition columns for a table,
// before the table is created. Annotating after creation is an error,
// except that re-declaring the identical spec is a no-op — so
// application setup code can run unchanged against a recovered
// deployment whose tables already exist.
func (db *DB) Annotate(table string, spec TableSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tablesMu.RLock()
	m, exists := db.tables[table]
	db.tablesMu.RUnlock()
	if exists {
		if specEqual(m.spec, spec) {
			return nil
		}
		return fmt.Errorf("ttdb: table %s already created; annotate before CREATE TABLE", table)
	}
	if prev, ok := db.specs[table]; ok && specEqual(prev, spec) {
		return nil
	}
	db.specs[table] = spec
	if db.obs != nil {
		db.obs.TableAnnotated(table, spec)
	}
	return nil
}

// specEqual compares two table annotations.
func specEqual(a, b TableSpec) bool {
	if a.RowIDColumn != b.RowIDColumn || len(a.PartitionColumns) != len(b.PartitionColumns) {
		return false
	}
	for i, c := range a.PartitionColumns {
		if b.PartitionColumns[i] != c {
			return false
		}
	}
	return true
}

// Tables returns the names of all registered tables, sorted.
func (db *DB) Tables() []string { return db.raw.Tables() }

// meta returns table bookkeeping, or an error for unknown tables.
func (db *DB) meta(table string) (*tableMeta, error) {
	db.tablesMu.RLock()
	m, ok := db.tables[table]
	db.tablesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ttdb: no such table %s", table)
	}
	return m, nil
}

// lockTable returns the meta for a table with its lock held. The caller
// must call m.mu.Unlock.
func (db *DB) lockTable(table string) (*tableMeta, error) {
	m, err := db.meta(table)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	return m, nil
}

// lockAll acquires db.mu plus every table lock in name order, for
// operations that must exclude all concurrent table activity (DDL,
// generation switches, GC). Release with unlockAll.
func (db *DB) lockAll() []*tableMeta {
	db.mu.Lock()
	// Holding db.mu excludes all DDL (the only mutator of db.tables), so
	// one registry snapshot is stable for the rest of the call.
	db.tablesMu.RLock()
	metas := make([]*tableMeta, 0, len(db.tables))
	for _, m := range db.tables {
		metas = append(metas, m)
	}
	db.tablesMu.RUnlock()
	sort.Slice(metas, func(i, j int) bool { return metas[i].name < metas[j].name })
	for _, m := range metas {
		m.mu.Lock()
	}
	return metas
}

// unlockAll releases the locks acquired by lockAll.
func (db *DB) unlockAll(metas []*tableMeta) {
	for i := len(metas) - 1; i >= 0; i-- {
		metas[i].mu.Unlock()
	}
	db.mu.Unlock()
}

// createTable intercepts CREATE TABLE: it augments the schema with WARP's
// bookkeeping columns, extends uniqueness constraints with end_time and
// end_gen so multiple versions of a row can coexist (§6), and creates
// hash indexes on the row ID column and every partition column. Called
// with lockAll held.
func (db *DB) createTable(ct *sqldb.CreateTable) error {
	db.tablesMu.RLock()
	_, exists := db.tables[ct.Table]
	db.tablesMu.RUnlock()
	if exists {
		if ct.IfNotExists {
			return nil
		}
		return fmt.Errorf("ttdb: table %s already exists", ct.Table)
	}
	spec := db.specs[ct.Table]
	m := &tableMeta{
		name:      ct.Table,
		spec:      spec,
		rowIDCol:  spec.RowIDColumn,
		partCols:  make(map[string]bool),
		partIdx:   make(map[Partition][]partEntry),
		nextRowID: 1,
	}
	aug := ct.Clone().(*sqldb.CreateTable)
	cols := make(map[string]bool)
	for _, c := range aug.Columns {
		cols[c.Name] = true
		m.userCols = append(m.userCols, c.Name)
	}
	for _, reserved := range []string{ColRowID, ColStartTime, ColEndTime, ColStartGen, ColEndGen} {
		if cols[reserved] {
			return fmt.Errorf("ttdb: table %s declares reserved column %s", ct.Table, reserved)
		}
	}
	if m.rowIDCol == "" {
		m.rowIDCol = ColRowID
		m.synthetic = true
		aug.Columns = append(aug.Columns, sqldb.ColumnDef{Name: ColRowID, Type: sqldb.KindInt})
	} else if !cols[m.rowIDCol] {
		return fmt.Errorf("ttdb: table %s: row ID column %s does not exist", ct.Table, m.rowIDCol)
	}
	for _, pc := range spec.PartitionColumns {
		if !cols[pc] {
			return fmt.Errorf("ttdb: table %s: partition column %s does not exist", ct.Table, pc)
		}
		m.partCols[pc] = true
	}
	aug.Columns = append(aug.Columns,
		sqldb.ColumnDef{Name: ColStartTime, Type: sqldb.KindInt, NotNull: true},
		sqldb.ColumnDef{Name: ColEndTime, Type: sqldb.KindInt, NotNull: true},
		sqldb.ColumnDef{Name: ColStartGen, Type: sqldb.KindInt, NotNull: true},
		sqldb.ColumnDef{Name: ColEndGen, Type: sqldb.KindInt, NotNull: true},
	)
	// Multiple versions of one application row must coexist: extend every
	// uniqueness constraint with the version end markers (§6).
	for i := range aug.Uniques {
		aug.Uniques[i].Columns = append(aug.Uniques[i].Columns, ColEndTime, ColEndGen)
		aug.Uniques[i].Primary = false
	}
	if _, err := db.raw.ExecStmt(aug, nil); err != nil {
		return err
	}
	// Indexes keep rollback and row-targeted rewrites fast.
	indexCols := map[string]bool{m.rowIDCol: true}
	for pc := range m.partCols {
		indexCols[pc] = true
	}
	for col := range indexCols {
		ci := &sqldb.CreateIndex{Name: "warp_idx_" + ct.Table + "_" + col, Table: ct.Table, Column: col}
		if _, err := db.raw.ExecStmt(ci, nil); err != nil {
			return err
		}
	}
	db.tablesMu.Lock()
	db.tables[ct.Table] = m
	db.tablesMu.Unlock()
	return nil
}

// liveWhere returns the predicate selecting versions visible at time t in
// generation g: start_time <= t < end_time AND start_gen <= g <= end_gen.
func liveWhere(t, g int64) sqldb.Expr {
	return sqldb.And(
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartTime), Right: sqldb.Lit(sqldb.Int(t))},
		&sqldb.BinaryExpr{Op: sqldb.OpGt, Left: sqldb.Col(ColEndTime), Right: sqldb.Lit(sqldb.Int(t))},
		&sqldb.BinaryExpr{Op: sqldb.OpLe, Left: sqldb.Col(ColStartGen), Right: sqldb.Lit(sqldb.Int(g))},
		&sqldb.BinaryExpr{Op: sqldb.OpGe, Left: sqldb.Col(ColEndGen), Right: sqldb.Lit(sqldb.Int(g))},
	)
}

// metaColumns lists WARP's bookkeeping columns in a stable order.
func (m *tableMeta) metaColumns() []string {
	cols := []string{ColStartTime, ColEndTime, ColStartGen, ColEndGen}
	if m.synthetic {
		cols = append([]string{ColRowID}, cols...)
	}
	return cols
}

// StorageStats summarizes physical storage, for the paper's Table 6
// accounting.
type StorageStats struct {
	Tables       int
	PhysicalRows int
	ApproxBytes  int
}

// Stats returns current storage statistics.
func (db *DB) Stats() StorageStats {
	db.tablesMu.RLock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	db.tablesMu.RUnlock()
	st := StorageStats{}
	for _, name := range names {
		st.Tables++
		st.PhysicalRows += db.raw.RowCount(name)
		st.ApproxBytes += db.raw.ApproxTableBytes(name)
	}
	return st
}
