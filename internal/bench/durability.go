package bench

import (
	"fmt"
	"time"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/store"
	"warp/internal/ttdb"
	"warp/internal/workload"
)

// This file measures what durability costs (docs/persistence.md): the
// same request path with the WAL off (in-memory deployment), with the
// default windowed group commit, and with an fsync-awaited append.

// DurableDeployment builds the notes application on an in-memory (dir
// empty) or persistent deployment, ready to serve write requests.
func DurableDeployment(dir string, opts store.Options) (*core.Warp, error) {
	cfg := core.Config{Seed: 99, Durability: opts}
	var w *core.Warp
	var err error
	if dir == "" {
		w = core.New(cfg)
	} else {
		if w, err = core.Open(dir, cfg); err != nil {
			return nil, err
		}
	}
	if err := w.DB.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		return nil, err
	}
	if _, _, err := w.DB.Exec("CREATE TABLE IF NOT EXISTS notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		return nil, err
	}
	if err := w.Runtime.Register("notes.php", app.Version{Entry: notesHandler(0, false)}); err != nil {
		return nil, err
	}
	w.Runtime.Mount("/", "notes.php")
	return w, nil
}

// ServeWrites drives n logged write requests (one INSERT plus one
// SELECT each, the §8.5 editing-path shape) and returns the total wall
// time. ids must not collide across calls on one deployment.
func ServeWrites(w *core.Warp, n, idBase int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		id := idBase + i
		resp := w.HandleRequest(httpd.NewRequest("GET",
			fmt.Sprintf("/?owner=u%d&id=%d&body=note-%d", id%8, id, id)))
		if resp.Status != 200 {
			return 0, fmt.Errorf("bench: write request %d failed: %d", id, resp.Status)
		}
	}
	return time.Since(start), nil
}

// DurableWorkloadOverhead runs the paper's wiki workload generator
// (§8.2: all users log in, read, and edit) twice — in memory and against
// a persistent store in dir — and returns both original-execution times.
// The ratio is the WAL's end-to-end overhead on the paper's workload.
func DurableWorkloadOverhead(users int, dir string, opts store.Options) (memory, durable time.Duration, err error) {
	mem, err := workload.Run(workload.Config{Users: users, Seed: 78})
	if err != nil {
		return 0, 0, err
	}
	dur, err := workload.Run(workload.Config{Users: users, Seed: 78, DataDir: dir, Durability: opts})
	if err != nil {
		return 0, 0, err
	}
	defer dur.Env.W.Close()
	return mem.OriginalExecTime, dur.OriginalExecTime, nil
}
