// Quickstart: the smallest end-to-end WARP use, against the public API
// only. It builds a one-file guestbook with an XSS bug, records normal
// operation (including an attack), then retroactively patches the bug —
// the attack's effects disappear, the legitimate entry survives.
package main

import (
	"fmt"
	"strings"

	"warp"
)

func main() {
	sys := warp.New(warp.Config{Seed: 1})

	// 1. Schema, with WARP annotations: entries are identified by id and
	// partitioned by author, so repair touches only affected rows.
	must(sys.DB.Annotate("entries", warp.TableSpec{
		RowIDColumn:      "id",
		PartitionColumns: []string{"author"},
	}))
	_, _, err := sys.DB.Exec(`CREATE TABLE entries (id INTEGER PRIMARY KEY, author TEXT, msg TEXT)`)
	must(err)

	// 2. Application code: a vulnerable guestbook page. Messages are
	// stored raw (the bug) and rendered into the page.
	vulnerable := func(c *warp.Ctx) *warp.Response {
		if msg := c.Req.Param("msg"); msg != "" {
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM entries").FirstValue()
			c.MustQuery("INSERT INTO entries (id, author, msg) VALUES (?, ?, ?)",
				id, warp.Text(c.Req.Param("author")), warp.Text(msg)) // BUG: unsanitized
		}
		res := c.MustQuery("SELECT author, msg FROM entries ORDER BY id")
		var b strings.Builder
		b.WriteString("<html><body><h1>Guestbook</h1><ul>")
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "<li>%s: %s</li>", row[0].AsText(), row[1].AsText())
		}
		b.WriteString("</ul></body></html>")
		resp := &warp.Response{Status: 200, Body: b.String(),
			Headers: map[string]string{"Content-Type": "text/html"}, SetCookies: map[string]string{}}
		return resp
	}
	must(sys.Runtime.Register("guestbook.php", warp.Version{Entry: vulnerable, Note: "vulnerable: stored XSS"}))
	sys.Runtime.Mount("/", "guestbook.php")

	// 3. Normal operation through WARP-logging browsers.
	alice := sys.NewBrowser()
	mallory := sys.NewBrowser()
	alice.Open("/?author=alice&msg=hello+world")
	mallory.Open("/?author=mallory&msg=" + "%3Cscript%3Ewarpjs%3A%20get%20%2Fsteal%3C%2Fscript%3E")
	victim := sys.NewBrowser()
	victim.Open("/") // the victim's browser would run the injected script

	before, _, _ := sys.DB.Exec("SELECT COUNT(*) FROM entries")
	fmt.Printf("before repair: %d entries, script stored: %v\n",
		before.FirstValue().AsInt(), contains(sys, "<script>"))

	// 4. The developers publish a patch: sanitize on save. Retroactively
	// apply it — WARP re-executes every run of guestbook.php against the
	// fixed code and repairs everything the attack influenced.
	fixed := func(c *warp.Ctx) *warp.Response {
		if msg := c.Req.Param("msg"); msg != "" {
			clean := strings.NewReplacer("<", "&lt;", ">", "&gt;").Replace(msg)
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM entries").FirstValue()
			c.MustQuery("INSERT INTO entries (id, author, msg) VALUES (?, ?, ?)",
				id, warp.Text(c.Req.Param("author")), warp.Text(clean))
		}
		res := c.MustQuery("SELECT author, msg FROM entries ORDER BY id")
		var b strings.Builder
		b.WriteString("<html><body><h1>Guestbook</h1><ul>")
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "<li>%s: %s</li>", row[0].AsText(), row[1].AsText())
		}
		b.WriteString("</ul></body></html>")
		return &warp.Response{Status: 200, Body: b.String(),
			Headers: map[string]string{"Content-Type": "text/html"}, SetCookies: map[string]string{}}
	}
	report, err := sys.RetroPatch("guestbook.php", warp.Version{Entry: fixed, Note: "sanitize on save"})
	must(err)

	after, _, _ := sys.DB.Exec("SELECT COUNT(*) FROM entries")
	fmt.Printf("after repair:  %d entries, script stored: %v\n",
		after.FirstValue().AsInt(), contains(sys, "<script>"))
	fmt.Println("repair report:", report.String())
}

func contains(sys *warp.System, needle string) bool {
	res, _, err := sys.DB.Exec("SELECT msg FROM entries")
	if err != nil {
		return false
	}
	for _, row := range res.Rows {
		if strings.Contains(row[0].AsText(), needle) {
			return true
		}
	}
	return false
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
