// Benchmarks regenerating the paper's evaluation (§8): one benchmark per
// table plus the inline §8.5 measurements. Each benchmark runs the full
// experiment (workload generation + repair) per iteration and reports the
// table's key quantities as custom metrics, so `go test -bench . -benchmem`
// regenerates every result. cmd/warp-bench prints the same experiments as
// paper-style tables; EXPERIMENTS.md records a reference run.
//
// Workload sizes default to laptop-friendly scales; the paper-scale runs
// (100 and 5,000 users) are reproduced with
// `go run ./cmd/warp-bench -users 100 -users8 5000`.
package warp_test

import (
	"fmt"
	"testing"
	"time"

	"warp/internal/bench"
	"warp/internal/history"
	"warp/internal/obs"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
	"warp/internal/vclock"
	"warp/internal/workload"
)

// BenchmarkTable3Scenarios repairs all six §8.2 attack scenarios and
// reports total users-with-conflicts (paper: 0,0,0,3,0,1 → 4).
func BenchmarkTable3Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(12)
		if err != nil {
			b.Fatal(err)
		}
		conflicts := 0
		for _, r := range rows {
			if !r.Repaired {
				b.Fatalf("%s not repaired", r.Scenario)
			}
			conflicts += r.UsersConflict
		}
		b.ReportMetric(float64(conflicts), "users-with-conflicts")
	}
}

// BenchmarkTable4BrowserReplay measures UI-repair effectiveness across
// the three replay configurations (paper: conflicts 8/8/8, 0/8/8, 0/0/8
// by column).
func BenchmarkTable4BrowserReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		noExt, noMerge, full := 0, 0, 0
		for _, r := range rows {
			noExt += r.NoExtension
			noMerge += r.NoTextMerge
			full += r.FullWARP
		}
		b.ReportMetric(float64(noExt), "conflicts-noext")
		b.ReportMetric(float64(noMerge), "conflicts-nomerge")
		b.ReportMetric(float64(full), "conflicts-full")
	}
}

// BenchmarkTable5TaintComparison runs the four corruption-bug comparisons
// (paper: baseline 82–119 FPs, WARP 0).
func BenchmarkTable5TaintComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5(40)
		if err != nil {
			b.Fatal(err)
		}
		baseFP, warpFP := 0, 0
		for _, r := range rows {
			for _, p := range r.Comparison.Baseline {
				if p.Policy.String() == "flow" {
					baseFP += p.FalsePositives
				}
			}
			warpFP += r.Comparison.WARPFalsePositives
		}
		b.ReportMetric(float64(baseFP), "baseline-FP")
		b.ReportMetric(float64(warpFP), "warp-FP")
	}
}

// BenchmarkTable6Overhead measures normal-operation throughput with and
// without WARP and during concurrent repair (paper: 24–27% overhead,
// further 24–30% during repair).
func BenchmarkTable6Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table6(150)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WARPVisitsPerSec, "read-visits/s")
		b.ReportMetric(rows[1].WARPVisitsPerSec, "edit-visits/s")
		b.ReportMetric(rows[0].NoWARPVisitsPerSec, "read-nowarp-visits/s")
		b.ReportMetric(rows[1].DuringRepairPerSec, "edit-during-repair/s")
		b.ReportMetric(rows[1].BrowserBytesPerVisit+rows[1].AppBytesPerVisit+rows[1].DBBytesPerVisit, "edit-log-B/visit")
	}
}

// normalExecDB builds the time-travel database BenchmarkNormalExec and
// the allocation gate share: an annotated, partitioned table seeded
// with a few hundred rows.
func normalExecDB(nRows int) *ttdb.DB {
	db := ttdb.Open(&vclock.Clock{})
	if err := db.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		panic(err)
	}
	if _, _, err := db.Exec("CREATE TABLE posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		panic(err)
	}
	for i := 0; i < nRows; i++ {
		_, _, err := db.Exec("INSERT INTO posts (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("u%d", i%16)), sqldb.Text("seed body"))
		if err != nil {
			panic(err)
		}
	}
	return db
}

// BenchmarkNormalExec measures the normal-operation query fast path in
// isolation: repeated statement forms through the time-travel layer's
// statement cache — parse once, plan once, no per-execution
// re-stringify. Run with -benchmem; the committed baseline gates both
// ns/op and allocs/op (cmd/benchgate).
func BenchmarkNormalExec(b *testing.B) {
	const rows = 256
	b.Run("read-indexed", func(b *testing.B) {
		db := normalExecDB(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec("SELECT body FROM posts WHERE id = ?", sqldb.Int(int64(i%rows))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-partition", func(b *testing.B) {
		db := normalExecDB(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec("SELECT id FROM posts WHERE owner = ?", sqldb.Text(fmt.Sprintf("u%d", i%16))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update", func(b *testing.B) {
		db := normalExecDB(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec("UPDATE posts SET body = ? WHERE id = ?",
				sqldb.Text("new body"), sqldb.Int(int64(i%rows))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert", func(b *testing.B) {
		db := normalExecDB(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, err := db.Exec("INSERT INTO posts (id, owner, body) VALUES (?, ?, ?)",
				sqldb.Int(int64(rows+i)), sqldb.Text("u0"), sqldb.Text("inserted"))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestNormalExecAllocBudget is the in-tree allocation gate for the
// select fast path: a cached indexed read must stay a small-constant
// allocation operation (no per-execution parse, clone, stringify, or
// per-row evaluation contexts). The bound is deliberately loose — it
// catches order-of-magnitude regressions, while CI's benchgate compares
// exact allocs/op against the committed baseline.
func TestNormalExecAllocBudget(t *testing.T) {
	measure := func(t *testing.T, label string) {
		db := normalExecDB(256)
		// Warm the statement cache and the compiled plan.
		if _, _, err := db.Exec("SELECT body FROM posts WHERE id = ?", sqldb.Int(1)); err != nil {
			t.Fatal(err)
		}
		i := int64(0)
		avg := testing.AllocsPerRun(200, func() {
			i++
			if _, _, err := db.Exec("SELECT body FROM posts WHERE id = ?", sqldb.Int(i%256)); err != nil {
				t.Fatal(err)
			}
		})
		const budget = 40
		if avg > budget {
			t.Fatalf("%s: cached indexed read costs %.1f allocs/op, budget %d", label, avg, budget)
		}
		t.Logf("%s: cached indexed read: %.1f allocs/op (budget %d)", label, avg, budget)

		// The write fast path: a cached indexed UPDATE reuses its
		// parameterized augmentation (no clone or re-derived WHERE) and its
		// phase-1 capture read draws row storage from the result pool, so it
		// too must stay a small-constant allocation operation.
		if _, _, err := db.Exec("UPDATE posts SET body = ? WHERE id = ?",
			sqldb.Text("w"), sqldb.Int(1)); err != nil {
			t.Fatal(err)
		}
		i = 0
		avg = testing.AllocsPerRun(200, func() {
			i++
			if _, _, err := db.Exec("UPDATE posts SET body = ? WHERE id = ?",
				sqldb.Text("w"), sqldb.Int(i%256)); err != nil {
				t.Fatal(err)
			}
		})
		const updateBudget = 160
		if avg > updateBudget {
			t.Fatalf("%s: cached indexed update costs %.1f allocs/op, budget %d", label, avg, updateBudget)
		}
		t.Logf("%s: cached indexed update: %.1f allocs/op (budget %d)", label, avg, updateBudget)
	}
	measure(t, "plain")
	// The instrumented fast path (docs/observability.md) must fit the
	// SAME budgets: histogram observation is three atomic adds and shape
	// classification is a field store, so enabling obs adds clock reads
	// but zero allocations.
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	measure(t, "instrumented")
}

// BenchmarkInstrumentedExec is BenchmarkNormalExec's read and write
// fast paths with observability enabled (docs/observability.md): the
// per-plan-shape latency histograms record every execution. The gate is
// overhead — the instrumented ns/op must stay within a few percent of
// the plain benchmark (two clock reads plus three atomic adds per exec)
// with identical allocs/op; benchgate holds both against the baseline.
func BenchmarkInstrumentedExec(b *testing.B) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	const rows = 256
	b.Run("read-indexed", func(b *testing.B) {
		db := normalExecDB(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec("SELECT body FROM posts WHERE id = ?", sqldb.Int(int64(i%rows))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update", func(b *testing.B) {
		db := normalExecDB(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec("UPDATE posts SET body = ? WHERE id = ?",
				sqldb.Text("new body"), sqldb.Int(int64(i%rows))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// rangeScanDB builds the plain SQL engine BenchmarkRangeScan and
// BenchmarkOrderByIndexed share: one table, nRows rows with a dense
// integer key, and an ordered index on that key.
func rangeScanDB(nRows int) *sqldb.DB {
	db := sqldb.Open()
	for _, q := range []string{
		"CREATE TABLE events (k INTEGER, note TEXT)",
		"CREATE INDEX idx_events_k ON events (k)",
	} {
		if _, err := db.Exec(q); err != nil {
			panic(err)
		}
	}
	for i := 0; i < nRows; i++ {
		_, err := db.Exec("INSERT INTO events (k, note) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("note %d", i)))
		if err != nil {
			panic(err)
		}
	}
	return db
}

// benchRangeQuery runs query (expecting exactly two range parameters) over
// a moving 100-row window of a 10k-row table and checks the result size,
// so both the indexed and the forced-full-scan variants do identical
// logical work.
func benchRangeQuery(b *testing.B, query string) {
	const nRows, window = 10000, 100
	db := rangeScanDB(nRows)
	// Warm the statement cache and the compiled plan.
	if _, err := db.Exec(query, sqldb.Int(0), sqldb.Int(window)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64((i * 97) % (nRows - window))
		res, err := db.Exec(query, sqldb.Int(lo), sqldb.Int(lo+window))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != window {
			b.Fatalf("got %d rows, want %d", len(res.Rows), window)
		}
	}
}

// BenchmarkRangeScan measures a bounded range predicate on a 10k-row
// table: the ordered-index walk against the same predicate phrased so the
// planner cannot use the index (`k + 0` is not a bare column). The gap is
// the storage engine's range-scan win; benchgate holds both sides.
func BenchmarkRangeScan(b *testing.B) {
	b.Run("indexed", func(b *testing.B) {
		benchRangeQuery(b, "SELECT note FROM events WHERE k >= ? AND k < ?")
	})
	b.Run("fullscan", func(b *testing.B) {
		benchRangeQuery(b, "SELECT note FROM events WHERE k + 0 >= ? AND k + 0 < ?")
	})
}

// BenchmarkOrderByIndexed measures ORDER BY on an indexed column: the
// index-order path (no sort step — see TestExplainOrderByIndexedNoSort)
// against the
// same query phrased to force a full scan plus an explicit sort.
func BenchmarkOrderByIndexed(b *testing.B) {
	b.Run("indexed", func(b *testing.B) {
		benchRangeQuery(b, "SELECT note FROM events WHERE k >= ? AND k < ? ORDER BY k")
	})
	b.Run("sorted", func(b *testing.B) {
		benchRangeQuery(b, "SELECT note FROM events WHERE k + 0 >= ? AND k + 0 < ? ORDER BY k + 0")
	})
}

// BenchmarkTable7RepairPerformance runs the seven Table 7 rows and reports
// the re-execution fractions (paper: ~1% for isolated attacks, ~100% for
// CSRF/clickjacking).
func BenchmarkTable7RepairPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table7(25)
		if err != nil {
			b.Fatal(err)
		}
		isolated := float64(rows[0].VisitsReplayed) / float64(rows[0].VisitsTotal)
		full := float64(rows[6].VisitsReplayed) / float64(rows[6].VisitsTotal)
		b.ReportMetric(isolated*100, "isolated-visits-%")
		b.ReportMetric(full*100, "clickjacking-visits-%")
		b.ReportMetric(float64(rows[4].QueriesReexecuted), "victims-at-start-queries")
	}
}

// BenchmarkTable8Scaling runs the isolated scenarios at a larger scale and
// reports how repair work stays attack-proportional (paper: same actions
// re-executed at 50× the workload).
func BenchmarkTable8Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table8(100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].VisitsReplayed), "xss-visits-replayed")
		b.ReportMetric(float64(rows[0].VisitsTotal), "visits-total")
		b.ReportMetric(rows[0].Repair.Total.Seconds()*1000, "xss-repair-ms")
	}
}

// BenchmarkParallelRepair measures repair wall time on a partition-
// disjoint workload at 1, 2, and 4 scheduler workers. Runs on disjoint
// partitions repair concurrently, so repair-ms should drop as workers
// increase (the acceptance bar is ≥1.5× at 4 workers); the re-execution
// counts are identical at every worker count.
func BenchmarkParallelRepair(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.ParallelRepair(8, 2, workers, 300*time.Microsecond)
				if err != nil {
					b.Fatal(err)
				}
				total += res.RepairTime
				if res.Report.AppRunsReexecuted != 16 {
					b.Fatalf("runs re-executed = %d, want 16", res.Report.AppRunsReexecuted)
				}
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "repair-ms")
		})
	}
}

// BenchmarkPartitionRepair measures the partition-granular repair
// pipeline on a single-hot-table workload (16 clients, one shared
// `posts` table, per-client visit-replay chains) at 1, 2, 4, and 8
// workers, plus the table-granular (globally exclusive replay,
// whole-table DB locks) baseline at 4 workers. The acceptance bar —
// enforced by TestPartitionRepairSpeedup — is ≥2x over that baseline at
// 4 workers; the re-execution accounting and final table contents are
// identical in every configuration.
func BenchmarkPartitionRepair(b *testing.B) {
	const (
		clients = 16
		pages   = 2
		latency = 1500 * time.Microsecond
	)
	run := func(b *testing.B, workers int, tableGranular bool) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			res, err := bench.PartitionRepair(clients, pages, workers, latency, tableGranular)
			if err != nil {
				b.Fatal(err)
			}
			total += res.RepairTime
			if want := clients * (pages + 1); res.Report.PageVisitsReplayed != want {
				b.Fatalf("visits replayed = %d, want %d", res.Report.PageVisitsReplayed, want)
			}
		}
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "repair-ms")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) { run(b, workers, false) })
	}
	// No trailing "-N" in the name: benchgate strips a numeric suffix to
	// drop the GOMAXPROCS decoration, which would also eat a "-4" here.
	b.Run("table-locked", func(b *testing.B) { run(b, 4, true) })
}

// BenchmarkOnlineRepair is the headline number for online repair
// (docs/repair.md "Online repair"): one client keeps issuing paced
// requests against its own partition while a repair drains, and the
// benchmark reports that client's p99 and worst stall mid-repair next
// to its idle p99. The "online" run coexists with the repair
// (admission gate + SLO throttle, suspension only for the final commit
// window); the "stop-the-world" run restores Config.ExclusiveRepair,
// so its max-stall-ms approaches repair-ms — the suspension online
// repair removes. TestOnlineRepairMatchesExclusive holds the two
// configurations to identical final database contents.
func BenchmarkOnlineRepair(b *testing.B) {
	const (
		clients = 16
		pages   = 3
		workers = 4
		latency = 1500 * time.Microsecond
		slo     = 10 * time.Millisecond
	)
	run := func(b *testing.B, exclusive bool) {
		var liveP99, idleP99, stall, repair, reqs float64
		for i := 0; i < b.N; i++ {
			res, err := bench.OnlineRepair(clients, pages, workers, latency, exclusive, slo)
			if err != nil {
				b.Fatal(err)
			}
			if want := clients * (pages + 1); res.Report.PageVisitsReplayed != want {
				b.Fatalf("visits replayed = %d, want %d", res.Report.PageVisitsReplayed, want)
			}
			liveP99 += float64(res.LiveP99.Microseconds()) / 1000
			idleP99 += float64(res.IdleP99.Microseconds()) / 1000
			stall += float64(res.MaxStall.Microseconds()) / 1000
			repair += float64(res.RepairTime.Microseconds()) / 1000
			reqs += float64(res.LiveRequests)
		}
		n := float64(b.N)
		b.ReportMetric(liveP99/n, "live-p99-ms")
		b.ReportMetric(idleP99/n, "idle-p99-ms")
		b.ReportMetric(stall/n, "max-stall-ms")
		b.ReportMetric(repair/n, "repair-ms")
		b.ReportMetric(reqs/n, "live-reqs")
	}
	b.Run("online", func(b *testing.B) { run(b, false) })
	b.Run("stop-the-world", func(b *testing.B) { run(b, true) })
}

// BenchmarkExtensionOverhead measures browser page-load cost with and
// without the WARP extension (§8.5 inline: negligible).
func BenchmarkExtensionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withExt, withoutExt, err := bench.ExtensionOverhead(100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(withExt.Microseconds()), "with-ext-us")
		b.ReportMetric(float64(withoutExt.Microseconds()), "without-ext-us")
	}
}

// BenchmarkIndexing measures action-history-graph logging cost per page
// visit (§8.5 inline: the paper's log indexing step).
func BenchmarkIndexing(b *testing.B) {
	res, err := workload.Run(workload.Config{Users: 8, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	g := res.Env.W.Graph
	visits := res.PageVisits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Probe the per-node indexes the way repair's incremental loading
		// does.
		for _, act := range g.ByKind(history.KindAppRun) {
			for _, dep := range act.Inputs {
				g.Readers(dep.Node, act.Time)
				break
			}
		}
	}
	b.ReportMetric(float64(visits), "visits-indexed")
}
