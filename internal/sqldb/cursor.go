package sqldb

import "fmt"

// ScanTable streams a table's live rows to fn in slot (scan) order,
// without materializing a result set: checkpoint encoding of large
// tables runs in bounded memory regardless of table size.
//
// cols selects and orders the projected columns; nil streams full rows
// in declaration order. fn receives the row's stable engine slot —
// inserts append fresh slots and deletes leave tombstones, so a slot is
// a durable total order over a table's rows that later deletes
// elsewhere cannot shift; WARP's checkpoint sharding tags rows with it
// so sections carried forward across purges still merge in order — and
// the projected values in a buffer that is reused across calls; callers
// must copy anything they retain. A non-nil error from fn aborts the
// scan and is returned.
//
// The scan holds the database lock for its full duration, so fn
// observes a consistent snapshot and must not call back into the
// database.
func (db *DB) ScanTable(table string, cols []string, fn func(slot int, vals []Value) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("sql: no such table %s", table)
	}
	if cols == nil {
		return t.store.forEachLive(func(slot int, r *row) error {
			return fn(slot, r.vals)
		})
	}
	ords := make([]int, len(cols))
	for i, c := range cols {
		ci, ok := t.columnPos(c)
		if !ok {
			return fmt.Errorf("sql: table %s: no such column %s", table, c)
		}
		ords[i] = ci
	}
	buf := make([]Value, len(cols))
	return t.store.forEachLive(func(slot int, r *row) error {
		for i, ci := range ords {
			buf[i] = r.vals[ci]
		}
		return fn(slot, buf)
	})
}
