package sqldb

import "sort"

// Ordered index component (the tentpole of the storage-engine
// modernization). Every column index is dual-structure: the hash buckets
// in colIndex answer equality probes in O(1), and the skip list here
// keeps the same postings in compareValues order so range predicates
// (<, <=, >, >=, BETWEEN) and ORDER BY on the column are served by an
// ordered walk — no full scan, no sort step.
//
// A skip list rather than a B-tree because deletes are frequent (every
// UPDATE in the time-travel layer closes a version, and repair demotes
// and purges rows) and skip-list deletion is a local unlink with no
// rebalancing. The list stores one node per distinct key with a posting
// list of row slots kept sorted ascending, mirroring the hash buckets:
// equal-key rows therefore come back in slot (insertion) order, which is
// exactly the tie order the stable sort it replaces would produce.
//
// NULL never participates in an ordered comparison (compareValues is
// undefined on it), so NULL rows live in a separate sorted slot list:
// range scans skip them — a range predicate is never true of NULL — and
// ORDER BY walks emit them first ascending and last descending, matching
// the executor's NULL placement rules.

// ordLevels bounds the skip-list height; 2^24 distinct keys is far past
// anything the engine holds in memory.
const ordLevels = 24

type ordNode struct {
	key   Value
	slots []int // row slots holding key, sorted ascending
	next  []*ordNode
}

// ordIndex is the ordered half of a column index.
type ordIndex struct {
	head      *ordNode // sentinel; head.next[0] is the smallest key
	level     int      // highest level currently in use
	rng       uint64   // xorshift64 state for level draws
	nullSlots []int    // slots whose key is NULL, sorted ascending
}

func newOrdIndex() *ordIndex {
	return &ordIndex{
		head:  &ordNode{next: make([]*ordNode, ordLevels)},
		level: 1,
		rng:   0x9e3779b97f4a7c15, // fixed seed: structure is internal, keep rebuilds deterministic
	}
}

// randLevel draws a geometric level in [1, ordLevels] with p = 1/4.
func (ix *ordIndex) randLevel() int {
	x := ix.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ix.rng = x
	lvl := 1
	for x&3 == 0 && lvl < ordLevels {
		lvl++
		x >>= 2
	}
	return lvl
}

// seek returns the rightmost node strictly before key at every level.
// Keys compare via compareValues; the caller guarantees key is non-NULL,
// and every stored key is non-NULL, so the comparison is total.
func (ix *ordIndex) seek(key Value, trail *[ordLevels]*ordNode) *ordNode {
	n := ix.head
	for lvl := ix.level - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil {
			if c, _ := compareValues(n.next[lvl].key, key); c < 0 {
				n = n.next[lvl]
				continue
			}
			break
		}
		trail[lvl] = n
	}
	return n.next[0] // first node with key >= target, or nil
}

func (ix *ordIndex) add(v Value, slot int) {
	if v.IsNull() {
		ix.nullSlots = insertSlot(ix.nullSlots, slot)
		return
	}
	var trail [ordLevels]*ordNode
	n := ix.seek(v, &trail)
	if n != nil {
		if c, _ := compareValues(n.key, v); c == 0 {
			n.slots = insertSlot(n.slots, slot)
			return
		}
	}
	lvl := ix.randLevel()
	for ix.level < lvl {
		trail[ix.level] = ix.head
		ix.level++
	}
	nn := &ordNode{key: v, slots: []int{slot}, next: make([]*ordNode, lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = trail[i].next[i]
		trail[i].next[i] = nn
	}
}

func (ix *ordIndex) remove(v Value, slot int) {
	if v.IsNull() {
		ix.nullSlots = deleteSlot(ix.nullSlots, slot)
		return
	}
	var trail [ordLevels]*ordNode
	n := ix.seek(v, &trail)
	if n == nil {
		return
	}
	if c, _ := compareValues(n.key, v); c != 0 {
		return
	}
	n.slots = deleteSlot(n.slots, slot)
	if len(n.slots) > 0 {
		return
	}
	// Unlink the emptied node at every level it occupies.
	for i := 0; i < len(n.next); i++ {
		if trail[i].next[i] == n {
			trail[i].next[i] = n.next[i]
		}
	}
	for ix.level > 1 && ix.head.next[ix.level-1] == nil {
		ix.level--
	}
}

// rangeBoundVal is one side of an ordered scan; nil means unbounded.
type rangeBoundVal struct {
	v    Value
	incl bool
}

// ascendRange walks posting lists for keys within [lo, hi] in ascending
// key order. fn returning false stops the walk. NULL slots are never
// visited: a range predicate is not true of NULL.
func (ix *ordIndex) ascendRange(lo, hi *rangeBoundVal, fn func(slots []int) bool) {
	var n *ordNode
	if lo == nil {
		n = ix.head.next[0]
	} else {
		var trail [ordLevels]*ordNode
		n = ix.seek(lo.v, &trail)
		if n != nil && !lo.incl {
			if c, _ := compareValues(n.key, lo.v); c == 0 {
				n = n.next[0]
			}
		}
	}
	for ; n != nil; n = n.next[0] {
		if hi != nil {
			c, _ := compareValues(n.key, hi.v)
			if c > 0 || (c == 0 && !hi.incl) {
				return
			}
		}
		if !fn(n.slots) {
			return
		}
	}
}

// insertSlot inserts slot into a sorted posting list (no-op when
// present), the same discipline the hash buckets use.
func insertSlot(b []int, slot int) []int {
	i := sort.SearchInts(b, slot)
	if i < len(b) && b[i] == slot {
		return b
	}
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = slot
	return b
}

// deleteSlot removes slot from a sorted posting list if present.
func deleteSlot(b []int, slot int) []int {
	i := sort.SearchInts(b, slot)
	if i < len(b) && b[i] == slot {
		b = append(b[:i], b[i+1:]...)
	}
	return b
}
