package ttdb

import (
	"fmt"
	"math/rand"
	"testing"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

// oracleRow is the reference model of one application row.
type oracleRow struct {
	id  int64
	grp int64
	val int64
}

// TestPropertyOracleEquivalence runs a random workload through the
// time-travel database and through a plain in-memory model, checking that
// the application-visible state always matches. This validates that the
// versioning rewrites are invisible to applications.
func TestPropertyOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		db := Open(&vclock.Clock{})
		if err := db.Annotate("t", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"grp"}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)"); err != nil {
			t.Fatal(err)
		}
		oracle := make(map[int64]*oracleRow)
		nextID := int64(1)

		for step := 0; step < 80; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				id, grp, val := nextID, int64(rng.Intn(4)), int64(rng.Intn(100))
				nextID++
				_, _, err := db.Exec("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
					sqldb.Int(id), sqldb.Int(grp), sqldb.Int(val))
				if err != nil {
					t.Fatal(err)
				}
				oracle[id] = &oracleRow{id: id, grp: grp, val: val}
			case 4, 5, 6: // update by group
				grp := int64(rng.Intn(4))
				res, _, err := db.Exec("UPDATE t SET val = val + 1 WHERE grp = ?", sqldb.Int(grp))
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for _, r := range oracle {
					if r.grp == grp {
						r.val++
						n++
					}
				}
				if res.Affected != n {
					t.Fatalf("update affected %d, oracle %d", res.Affected, n)
				}
			case 7: // move a row to another group
				grp, newGrp := int64(rng.Intn(4)), int64(rng.Intn(4))
				res, _, err := db.Exec("UPDATE t SET grp = ? WHERE grp = ? AND val % 2 = 0",
					sqldb.Int(newGrp), sqldb.Int(grp))
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for _, r := range oracle {
					if r.grp == grp && r.val%2 == 0 {
						r.grp = newGrp
						n++
					}
				}
				if res.Affected != n {
					t.Fatalf("move affected %d, oracle %d", res.Affected, n)
				}
			case 8, 9: // delete
				grp := int64(rng.Intn(4))
				res, _, err := db.Exec("DELETE FROM t WHERE grp = ? AND val % 3 = 0", sqldb.Int(grp))
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for id, r := range oracle {
					if r.grp == grp && r.val%3 == 0 {
						delete(oracle, id)
						n++
					}
				}
				if res.Affected != n {
					t.Fatalf("delete affected %d, oracle %d", res.Affected, n)
				}
			}
			compareOracle(t, db, oracle)
		}
	}
}

func compareOracle(t *testing.T, db *DB, oracle map[int64]*oracleRow) {
	t.Helper()
	res, _, err := db.Exec("SELECT id, grp, val FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(oracle) {
		t.Fatalf("visible rows = %d, oracle = %d", len(res.Rows), len(oracle))
	}
	for _, row := range res.Rows {
		o, ok := oracle[row[0].AsInt()]
		if !ok {
			t.Fatalf("row %d visible but not in oracle", row[0].AsInt())
		}
		if o.grp != row[1].AsInt() || o.val != row[2].AsInt() {
			t.Fatalf("row %d = (%d,%d), oracle (%d,%d)",
				o.id, row[1].AsInt(), row[2].AsInt(), o.grp, o.val)
		}
	}
}

// TestPropertySingleLiveVersion checks the core versioning invariant: at
// every (time, generation) pair, each row ID has at most one visible
// version.
func TestPropertySingleLiveVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := Open(&vclock.Clock{})
	if err := db.Annotate("t", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"grp"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if _, _, err := db.Exec("INSERT INTO t (id, grp, val) VALUES (?, ?, 0)", sqldb.Int(i), sqldb.Int(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 100; step++ {
		id := int64(1 + rng.Intn(10))
		switch rng.Intn(3) {
		case 0:
			if _, _, err := db.Exec("UPDATE t SET val = val + 1 WHERE id = ?", sqldb.Int(id)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, _, err := db.Exec("DELETE FROM t WHERE id = ?", sqldb.Int(id)); err != nil {
				t.Fatal(err)
			}
		case 2:
			_, _, err := db.Exec("INSERT INTO t (id, grp, val) VALUES (?, ?, 0)", sqldb.Int(id), sqldb.Int(id%3))
			if err != nil && !sqldb.IsUniqueViolation(err) {
				t.Fatal(err)
			}
		}
	}
	assertSingleLiveVersions(t, db, "t", db.CurrentGen())
}

// assertSingleLiveVersions scans raw storage and verifies that for every
// sampled time, each row ID has at most one visible version.
func assertSingleLiveVersions(t *testing.T, db *DB, table string, gen int64) {
	t.Helper()
	now := db.Clock().Now()
	for sample := int64(1); sample <= now; sample += 7 {
		res, err := db.Raw().Exec(fmt.Sprintf(
			"SELECT id FROM %s WHERE warp_start_time <= %d AND warp_end_time > %d AND warp_start_gen <= %d AND warp_end_gen >= %d",
			table, sample, sample, gen, gen))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int64]bool{}
		for _, row := range res.Rows {
			id := row[0].AsInt()
			if seen[id] {
				t.Fatalf("row %d has two visible versions at time %d gen %d", id, sample, gen)
			}
			seen[id] = true
		}
	}
}

// TestPropertyRollbackRestoresSnapshot: for a random single-row history,
// rolling the row back to any past time inside a repair generation
// reproduces exactly the state that was visible at that time.
func TestPropertyRollbackRestoresSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 25; iter++ {
		db := Open(&vclock.Clock{})
		if err := db.Annotate("t", TableSpec{RowIDColumn: "id"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, val INTEGER)"); err != nil {
			t.Fatal(err)
		}
		// Random history for row 1: insert/update/delete.
		type snap struct {
			time  int64
			alive bool
			val   int64
		}
		var history []snap
		alive := false
		var val int64
		for step := 0; step < 20; step++ {
			switch rng.Intn(3) {
			case 0:
				if !alive {
					_, rec, err := db.Exec("INSERT INTO t (id, val) VALUES (1, ?)", sqldb.Int(int64(step)))
					if err != nil {
						t.Fatal(err)
					}
					alive, val = true, int64(step)
					history = append(history, snap{rec.Time, alive, val})
					continue
				}
				fallthrough
			case 1:
				if alive {
					_, rec, err := db.Exec("UPDATE t SET val = ? WHERE id = 1", sqldb.Int(int64(100+step)))
					if err != nil {
						t.Fatal(err)
					}
					val = int64(100 + step)
					history = append(history, snap{rec.Time, alive, val})
				}
			case 2:
				if alive {
					_, rec, err := db.Exec("DELETE FROM t WHERE id = 1")
					if err != nil {
						t.Fatal(err)
					}
					alive = false
					history = append(history, snap{rec.Time, alive, val})
				}
			}
		}
		if len(history) < 2 {
			continue
		}
		// Pick a point in history and roll back to just after it.
		k := rng.Intn(len(history) - 1)
		target := history[k]
		if _, err := db.BeginRepair(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.RollbackRow("t", sqldb.Int(1), target.time+1); err != nil {
			t.Fatal(err)
		}
		res, _, err := db.ReExec("SELECT val FROM t WHERE id = 1", nil, db.Clock().Now(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if target.alive {
			if res.NumRows() != 1 || res.FirstValue().AsInt() != target.val {
				t.Fatalf("iter %d: rollback to t=%d: got %v, want val=%d", iter, target.time, res.Rows, target.val)
			}
		} else if res.NumRows() != 0 {
			t.Fatalf("iter %d: rollback to t=%d: row should be dead, got %v", iter, target.time, res.Rows)
		}
		// The current generation still sees the final state.
		cur, _, err := db.Exec("SELECT val FROM t WHERE id = 1")
		if err != nil {
			t.Fatal(err)
		}
		if alive != (cur.NumRows() == 1) {
			t.Fatalf("iter %d: current generation disturbed by rollback", iter)
		}
		if err := db.AbortRepair(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPropertyTimeTravelConsistency: reading at historical times always
// reproduces the state that was current then, for a random workload.
func TestPropertyTimeTravelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	db := Open(&vclock.Clock{})
	if err := db.Annotate("t", TableSpec{RowIDColumn: "id"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, val INTEGER)"); err != nil {
		t.Fatal(err)
	}
	// Record (time → expected full state) as the workload runs.
	type state map[int64]int64
	snapshots := make(map[int64]state)
	cur := state{}
	record := func(tm int64) {
		c := state{}
		for k, v := range cur {
			c[k] = v
		}
		snapshots[tm] = c
	}
	for step := 0; step < 60; step++ {
		id := int64(1 + rng.Intn(6))
		switch rng.Intn(3) {
		case 0:
			_, rec, err := db.Exec("INSERT INTO t (id, val) VALUES (?, ?)", sqldb.Int(id), sqldb.Int(int64(step)))
			if err == nil {
				cur[id] = int64(step)
				record(rec.Time)
			} else if !sqldb.IsUniqueViolation(err) {
				t.Fatal(err)
			}
		case 1:
			_, rec, err := db.Exec("UPDATE t SET val = ? WHERE id = ?", sqldb.Int(int64(1000+step)), sqldb.Int(id))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := cur[id]; ok {
				cur[id] = int64(1000 + step)
			}
			record(rec.Time)
		case 2:
			_, rec, err := db.Exec("DELETE FROM t WHERE id = ?", sqldb.Int(id))
			if err != nil {
				t.Fatal(err)
			}
			delete(cur, id)
			record(rec.Time)
		}
	}
	// Replay all reads at historical times inside a repair generation.
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	for tm, want := range snapshots {
		res, _, err := db.ReExec("SELECT id, val FROM t ORDER BY id", nil, tm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("time %d: %d rows visible, want %d", tm, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			if want[row[0].AsInt()] != row[1].AsInt() {
				t.Fatalf("time %d: row %d = %d, want %d", tm, row[0].AsInt(), row[1].AsInt(), want[row[0].AsInt()])
			}
		}
	}
	if err := db.AbortRepair(); err != nil {
		t.Fatal(err)
	}
}
