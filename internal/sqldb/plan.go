package sqldb

import "fmt"

// Compiled statement plans (the normal-operation fast path).
//
// The interpreter in eval.go walks the AST once per row, resolving every
// column reference through the table's name→ordinal map and allocating a
// fresh evaluation context per row. That is fine for one-off statements
// but dominates the cost of scans: WARP rewrites every application query
// into an augmented statement whose WHERE clause carries four extra
// version conjuncts, all re-interpreted per row.
//
// This file compiles an expression once per plan into a tree of
// closures with column ordinals resolved up front: the per-row path
// performs no allocation, no map lookups, and no AST dispatch. Plans are
// built either per statement execution (for the rewritten statements the
// time-travel layer constructs fresh each call) or once per cached
// statement (stmtcache.go), in which case they are invalidated by the
// database's DDL epoch: any CREATE/ALTER/DROP/CREATE INDEX or constraint
// change bumps the epoch and forces recompilation, so a stale plan can
// never read renumbered ordinals or a dropped index.
//
// Compilation is deliberately lazy about errors: an unknown column or an
// out-of-range parameter compiles into a closure that fails when (and
// only when) a row is actually evaluated, preserving the interpreter's
// behavior on empty scans.

// compiledExpr evaluates a compiled expression against one row of table
// values (nil for row-less contexts) and the statement parameters.
type compiledExpr func(row []Value, params []Value) (Value, error)

// rowPred is a compiled WHERE predicate: true means the row matches.
type rowPred func(row []Value, params []Value) (bool, error)

// compilePred compiles a WHERE clause into a row predicate. A nil clause
// matches every row.
func compilePred(t *Table, where Expr) rowPred {
	if where == nil {
		return func([]Value, []Value) (bool, error) { return true, nil }
	}
	ce := compileExpr(t, where)
	return func(row, params []Value) (bool, error) {
		v, err := ce(row, params)
		if err != nil {
			return false, err
		}
		return v.IsTrue(), nil
	}
}

// compileExpr compiles e against t's schema (t may be nil for row-less
// contexts such as LIMIT expressions).
func compileExpr(t *Table, e Expr) compiledExpr {
	switch e := e.(type) {
	case *Literal:
		v := e.Value
		return func([]Value, []Value) (Value, error) { return v, nil }
	case *Param:
		idx := e.Index
		return func(_ []Value, params []Value) (Value, error) {
			if idx < 0 || idx >= len(params) {
				return Null(), errEval("parameter %d out of range (%d supplied)", idx+1, len(params))
			}
			return params[idx], nil
		}
	case *ColumnRef:
		name := e.Name
		if t == nil {
			return func([]Value, []Value) (Value, error) {
				return Null(), errEval("column %s referenced outside row context", name)
			}
		}
		ci, ok := t.colIdx[name]
		if !ok {
			return func([]Value, []Value) (Value, error) {
				return Null(), errEval("no such column %s", name)
			}
		}
		return func(row []Value, _ []Value) (Value, error) {
			if row == nil {
				return Null(), errEval("column %s referenced outside row context", name)
			}
			return row[ci], nil
		}
	case *UnaryExpr:
		op := compileExpr(t, e.Operand)
		switch e.Op {
		case OpNot:
			return func(row, params []Value) (Value, error) {
				v, err := op(row, params)
				if err != nil || v.IsNull() {
					return Null(), err
				}
				return Bool(!v.IsTrue()), nil
			}
		case OpNeg:
			return func(row, params []Value) (Value, error) {
				v, err := op(row, params)
				if err != nil || v.IsNull() {
					return Null(), err
				}
				return Int(-v.AsInt()), nil
			}
		}
		return compileError("unknown unary operator")
	case *BinaryExpr:
		l, r := compileExpr(t, e.Left), compileExpr(t, e.Right)
		switch e.Op {
		case OpAnd:
			return func(row, params []Value) (Value, error) {
				lv, err := l(row, params)
				if err != nil {
					return Null(), err
				}
				if !lv.IsNull() && !lv.IsTrue() {
					return Bool(false), nil
				}
				rv, err := r(row, params)
				if err != nil {
					return Null(), err
				}
				if !rv.IsNull() && !rv.IsTrue() {
					return Bool(false), nil
				}
				if lv.IsNull() || rv.IsNull() {
					return Null(), nil
				}
				return Bool(true), nil
			}
		case OpOr:
			return func(row, params []Value) (Value, error) {
				lv, err := l(row, params)
				if err != nil {
					return Null(), err
				}
				if lv.IsTrue() {
					return Bool(true), nil
				}
				rv, err := r(row, params)
				if err != nil {
					return Null(), err
				}
				if rv.IsTrue() {
					return Bool(true), nil
				}
				if lv.IsNull() || rv.IsNull() {
					return Null(), nil
				}
				return Bool(false), nil
			}
		}
		op := e.Op
		return func(row, params []Value) (Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return Null(), err
			}
			rv, err := r(row, params)
			if err != nil {
				return Null(), err
			}
			return applyBinary(op, lv, rv)
		}
	case *InExpr:
		item := compileExpr(t, e.Expr)
		list := make([]compiledExpr, len(e.List))
		for i, le := range e.List {
			list[i] = compileExpr(t, le)
		}
		not := e.Not
		return func(row, params []Value) (Value, error) {
			v, err := item(row, params)
			if err != nil {
				return Null(), err
			}
			if v.IsNull() {
				return Null(), nil
			}
			sawNull := false
			for _, le := range list {
				iv, err := le(row, params)
				if err != nil {
					return Null(), err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if c, ok := compareValues(v, iv); ok && c == 0 {
					return Bool(!not), nil
				}
			}
			if sawNull {
				return Null(), nil
			}
			return Bool(not), nil
		}
	case *IsNullExpr:
		item := compileExpr(t, e.Expr)
		not := e.Not
		return func(row, params []Value) (Value, error) {
			v, err := item(row, params)
			if err != nil {
				return Null(), err
			}
			return Bool(v.IsNull() != not), nil
		}
	case *FuncCall:
		if e.IsAggregate() {
			// Aggregate selects take the interpreter path (execAggregates);
			// a compiled row expression must never see one.
			name := e.Name
			return func([]Value, []Value) (Value, error) {
				return Null(), errEval("aggregate %s not allowed here", name)
			}
		}
		args := make([]compiledExpr, len(e.Args))
		for i, a := range e.Args {
			args[i] = compileExpr(t, a)
		}
		name := e.Name
		buf := make([]Value, len(args))
		return func(row, params []Value) (Value, error) {
			for i, a := range args {
				v, err := a(row, params)
				if err != nil {
					return Null(), err
				}
				buf[i] = v
			}
			return scalarFunc(name, buf)
		}
	default:
		return compileError("unsupported expression %T", e)
	}
}

func compileError(format string, args ...any) compiledExpr {
	err := errEval(format, args...)
	return func([]Value, []Value) (Value, error) { return Null(), err }
}

// scanKind enumerates how a plan narrows the row scan through an index.
type scanKind uint8

const (
	scanEq    scanKind = iota // one hash-bucket probe (col = const)
	scanIn                    // bounded set of bucket probes (col IN (consts))
	scanRange                 // ordered skip-list walk (<, <=, >, >=, BETWEEN)
)

// constOrParam is a scan operand fixed at plan time or read from the
// parameter vector at execution time.
type constOrParam struct {
	hasConst bool
	constVal Value // pre-coerced when hasConst
	paramIdx int
}

// resolve returns the operand's value for one execution. It reports
// false when a parameter is missing, which sends the scan to the full
// fallback path.
func (c constOrParam) resolve(params []Value) (Value, bool) {
	if c.hasConst {
		return c.constVal, true
	}
	if c.paramIdx < 0 || c.paramIdx >= len(params) {
		return Value{}, false
	}
	return params[c.paramIdx], true
}

// scanBound is one side of a range scan.
type scanBound struct {
	val  constOrParam
	incl bool
}

// scanPlan is a pre-compiled index-access decision: the scan can be
// narrowed to one hash bucket (`col = const`), a bounded set of buckets
// (`col IN (c1, …)`), or an ordered key range (`col > c`, `BETWEEN`, …)
// when the WHERE clause contains a usable top-level AND-conjunct over an
// indexed column. Constants are checked against the column's declared
// type (coerceToColumn / range monotonicity rules) so index probes agree
// with the scan-time comparison semantics; anything uncertain falls back
// to a full scan at execution, where the compiled predicate — which
// always re-checks the entire WHERE clause — keeps results identical.
type scanPlan struct {
	kind    scanKind
	column  string
	colKind Kind // declared column type, for coercion
	eq      constOrParam
	in      []constOrParam
	lo, hi  *scanBound // either may be nil (half-open range)
}

// orderIdxPlan records that ORDER BY is served by walking the column's
// ordered index instead of sorting: set only when the single ORDER BY
// key is an indexed bare column the chosen scan is compatible with.
type orderIdxPlan struct {
	column string
	desc   bool
}

// lookupKey resolves the bucket key of an equality probe, reporting
// false when the scan must fall back to all live rows.
func (p *scanPlan) lookupKey(params []Value) (string, bool) {
	v, ok := p.eq.resolve(params)
	if !ok {
		return "", false
	}
	if p.eq.hasConst {
		return v.Key(), true
	}
	cv, ok := coerceToColumn(v, p.colKind)
	if !ok {
		return "", false
	}
	return cv.Key(), true
}

// planScan finds the first usable index-access conjunct in left-to-right
// AND order, preferring an equality probe over a bounded IN over a key
// range, splitting the decision (compile time) from operand resolution
// (execution time) so cached plans skip the AST walk on every execution.
func (t *Table) planScan(where Expr) *scanPlan {
	var conjuncts []Expr
	collectConjuncts(where, &conjuncts)
	if p := t.planEqConjunct(conjuncts); p != nil {
		return p
	}
	if p := t.planInConjunct(conjuncts); p != nil {
		return p
	}
	return t.planRangeConjuncts(conjuncts)
}

// collectConjuncts flattens top-level ANDs in left-to-right order.
func collectConjuncts(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == OpAnd {
		collectConjuncts(be.Left, out)
		collectConjuncts(be.Right, out)
		return
	}
	if e != nil {
		*out = append(*out, e)
	}
}

func (t *Table) planEqConjunct(conjuncts []Expr) *scanPlan {
	for _, e := range conjuncts {
		be, ok := e.(*BinaryExpr)
		if !ok || be.Op != OpEq {
			continue
		}
		col, ve, ok := constCmpExpr(be)
		if !ok {
			continue
		}
		kind, ok := t.indexedColKind(col)
		if !ok {
			continue
		}
		p := &scanPlan{kind: scanEq, column: col, colKind: kind}
		if !p.eq.bind(ve, kind) {
			continue // uncoercible literal: this conjunct can only scan
		}
		return p
	}
	return nil
}

func (t *Table) planInConjunct(conjuncts []Expr) *scanPlan {
	for _, e := range conjuncts {
		in, ok := e.(*InExpr)
		if ok && !in.Not {
			if p := t.planIn(in); p != nil {
				return p
			}
		}
	}
	return nil
}

func (t *Table) planIn(in *InExpr) *scanPlan {
	col, ok := in.Expr.(*ColumnRef)
	if !ok {
		return nil
	}
	kind, haveIdx := t.indexedColKind(col.Name)
	if !haveIdx {
		return nil
	}
	p := &scanPlan{kind: scanIn, column: col.Name, colKind: kind}
	for _, le := range in.List {
		var c constOrParam
		switch v := le.(type) {
		case *Literal:
			if v.Value.IsNull() {
				continue // NULL list element never equals a column value
			}
			cv, ok := coerceToColumn(v.Value, kind)
			if !ok {
				if kind == KindInt {
					continue // non-numeric text can never equal an integer
				}
				return nil // probing would lose matches; scan instead
			}
			c = constOrParam{hasConst: true, constVal: cv}
		case *Param:
			c = constOrParam{paramIdx: v.Index}
		default:
			return nil
		}
		p.in = append(p.in, c)
	}
	return p
}

func (t *Table) planRangeConjuncts(conjuncts []Expr) *scanPlan {
	var p *scanPlan
	for _, e := range conjuncts {
		be, ok := e.(*BinaryExpr)
		if !ok {
			continue
		}
		var lower, incl bool
		switch be.Op {
		case OpLt:
			lower, incl = false, false
		case OpLe:
			lower, incl = false, true
		case OpGt:
			lower, incl = true, false
		case OpGe:
			lower, incl = true, true
		default:
			continue
		}
		col, ve, ok := constCmpExpr(be)
		if !ok {
			continue
		}
		if _, isCol := be.Right.(*ColumnRef); isCol {
			// Reversed operand order (`const < col`) flips the bound side.
			lower = !lower
		}
		kind, haveIdx := t.indexedColKind(col)
		if !haveIdx {
			continue
		}
		if p == nil {
			p = &scanPlan{kind: scanRange, column: col, colKind: kind}
		} else if p.column != col {
			continue // first range column wins; pred re-checks the rest
		}
		var c constOrParam
		if !c.bindRange(ve, kind) {
			continue
		}
		b := &scanBound{val: c, incl: incl}
		if lower && p.lo == nil {
			p.lo = b
		} else if !lower && p.hi == nil {
			p.hi = b
		}
	}
	if p == nil || (p.lo == nil && p.hi == nil) {
		return nil
	}
	return p
}

// bind fixes an equality/IN operand, pre-coercing literals to the
// column type. False means the operand can never probe the index.
func (c *constOrParam) bind(e Expr, kind Kind) bool {
	switch v := e.(type) {
	case *Literal:
		cv, ok := coerceToColumn(v.Value, kind)
		if !ok {
			return false
		}
		c.hasConst = true
		c.constVal = cv
	case *Param:
		c.paramIdx = v.Index
	default:
		return false
	}
	return true
}

// bindRange fixes a range bound. Unlike equality probes, a range walk
// needs the bound's comparison against the stored keys to be monotone in
// key order, not merely exact: for INTEGER and BOOLEAN columns any
// non-text bound (and numeric text) compares numerically, which is
// monotone, so the raw value is kept; for TEXT columns only a TEXT bound
// preserves lexicographic order (numeric strings compare numerically
// against other kinds, which interleaves them).
func (c *constOrParam) bindRange(e Expr, kind Kind) bool {
	switch v := e.(type) {
	case *Literal:
		if kind == KindText && !v.Value.IsNull() && v.Value.Kind != KindText {
			return false
		}
		c.hasConst = true
		c.constVal = v.Value
	case *Param:
		c.paramIdx = v.Index
	default:
		return false
	}
	return true
}

// rangeBoundFor resolves one side of a range scan for execution.
// ok=false aborts to a full scan; empty=true means the bound is NULL and
// the conjunct cannot be true of any row.
func (p *scanPlan) rangeBoundFor(b *scanBound, params []Value) (rb *rangeBoundVal, empty, ok bool) {
	if b == nil {
		return nil, false, true
	}
	v, have := b.val.resolve(params)
	if !have {
		return nil, false, false
	}
	if v.IsNull() {
		return nil, true, true
	}
	if !b.val.hasConst && p.colKind == KindText && v.Kind != KindText {
		return nil, false, false // see bindRange: would break monotonicity
	}
	return &rangeBoundVal{v: v, incl: b.incl}, false, true
}

// indexedColKind returns the declared type of col if it is indexed.
func (t *Table) indexedColKind(col string) (Kind, bool) {
	if _, indexed := t.indexes[col]; !indexed {
		return KindNull, false
	}
	ci, ok := t.columnPos(col)
	if !ok {
		return KindNull, false
	}
	return t.Columns[ci].Type, true
}

// constCmpExpr decomposes `col <op> const` (either operand order) where
// const is a literal or parameter, returning the constant's expression.
func constCmpExpr(e *BinaryExpr) (string, Expr, bool) {
	if col, ok := e.Left.(*ColumnRef); ok {
		if isConstExpr(e.Right) {
			return col.Name, e.Right, true
		}
	}
	if col, ok := e.Right.(*ColumnRef); ok {
		if isConstExpr(e.Left) {
			return col.Name, e.Left, true
		}
	}
	return "", nil, false
}

func isConstExpr(e Expr) bool {
	switch e.(type) {
	case *Literal, *Param:
		return true
	}
	return false
}

//
// Per-statement plans
//

// selectPlan is the compiled form of a SELECT over one table.
type selectPlan struct {
	table      *Table
	aggregates bool // fall back to the interpreter's aggregate path
	where      rowPred
	scan       *scanPlan
	orderIdx   *orderIdxPlan // ORDER BY served by index walk; no sort step
	columns    []string      // result header
	items      []planItem
	orderBy    []compiledExpr
	nOut       int // number of result columns
}

// planItem is one compiled SELECT-list entry; star items splice the full
// row.
type planItem struct {
	star bool
	expr compiledExpr
}

func (db *DB) planSelect(t *Table, s *Select) *selectPlan {
	p := &selectPlan{table: t, aggregates: hasAggregates(s.Items)}
	if s.Where != nil {
		p.scan = t.planScan(s.Where)
	}
	p.where = compilePred(t, s.Where)
	if p.aggregates {
		return p
	}
	p.orderIdx = t.planOrderIdx(s.OrderBy, p.scan)
	for _, it := range s.Items {
		if it.Star {
			p.columns = append(p.columns, t.ColumnNames()...)
			p.items = append(p.items, planItem{star: true})
			p.nOut += len(t.Columns)
			continue
		}
		p.columns = append(p.columns, itemName(it))
		p.items = append(p.items, planItem{expr: compileExpr(t, it.Expr)})
		p.nOut++
	}
	for _, ob := range s.OrderBy {
		p.orderBy = append(p.orderBy, compileExpr(t, ob.Expr))
	}
	return p
}

// planOrderIdx decides whether ORDER BY can ride the index walk instead
// of sorting: the single sort key must be a bare indexed column, and the
// chosen scan must already enumerate in that column's order — a full
// scan (upgraded to a full index walk), or an eq/IN/range scan on the
// same column. Equal keys come back in ascending slot order from the
// posting lists, exactly the tie order the stable sort produces, so
// results are bit-identical to the sorting path.
func (t *Table) planOrderIdx(orderBy []OrderBy, scan *scanPlan) *orderIdxPlan {
	if len(orderBy) != 1 {
		return nil
	}
	col, ok := orderBy[0].Expr.(*ColumnRef)
	if !ok {
		return nil
	}
	if _, indexed := t.indexes[col.Name]; !indexed {
		return nil
	}
	if scan != nil && scan.column != col.Name {
		return nil // scan narrows on another column; sort the survivors
	}
	return &orderIdxPlan{column: col.Name, desc: orderBy[0].Desc}
}

// updatePlan is the compiled form of an UPDATE.
type updatePlan struct {
	table  *Table
	where  rowPred
	scan   *scanPlan
	setPos []int
	setErr error // unknown SET column (surfaced before any row work)
	set    []compiledExpr
}

func (db *DB) planUpdate(t *Table, s *Update) *updatePlan {
	p := &updatePlan{table: t, setPos: make([]int, len(s.Set)), set: make([]compiledExpr, len(s.Set))}
	for i, a := range s.Set {
		ci, ok := t.columnPos(a.Column)
		if !ok {
			p.setErr = fmt.Errorf("sql: table %s: no such column %s", s.Table, a.Column)
			return p
		}
		p.setPos[i] = ci
		p.set[i] = compileExpr(t, a.Expr)
	}
	if s.Where != nil {
		p.scan = t.planScan(s.Where)
	}
	p.where = compilePred(t, s.Where)
	return p
}

// deletePlan is the compiled form of a DELETE.
type deletePlan struct {
	table *Table
	where rowPred
	scan  *scanPlan
}

func (db *DB) planDelete(t *Table, s *Delete) *deletePlan {
	p := &deletePlan{table: t}
	if s.Where != nil {
		p.scan = t.planScan(s.Where)
	}
	p.where = compilePred(t, s.Where)
	return p
}

// insertPlan is the compiled form of an INSERT: column ordinals resolved
// and row expressions compiled (they reference no columns, only literals
// and parameters).
type insertPlan struct {
	table  *Table
	colPos []int
	posErr error
	rows   [][]compiledExpr
}

func (db *DB) planInsert(t *Table, s *Insert) *insertPlan {
	p := &insertPlan{table: t}
	cols := s.Columns
	if len(cols) == 0 {
		cols = t.ColumnNames()
	}
	p.colPos = make([]int, len(cols))
	for i, c := range cols {
		ci, ok := t.columnPos(c)
		if !ok {
			p.posErr = fmt.Errorf("sql: table %s: no such column %s", s.Table, c)
			return p
		}
		p.colPos[i] = ci
	}
	p.rows = make([][]compiledExpr, len(s.Rows))
	for i, exprRow := range s.Rows {
		ce := make([]compiledExpr, len(exprRow))
		for j, e := range exprRow {
			ce[j] = compileExpr(nil, e)
		}
		p.rows[i] = ce
	}
	return p
}

// CountParams returns the number of positional parameters a statement
// expects: one past the highest ?-index it references, or 0 for none.
// Rewriting layers use it to append their own parameters after the
// application's without colliding.
func CountParams(stmt Statement) int {
	max := -1
	note := func(e Expr) {
		if n := exprMaxParam(e); n > max {
			max = n
		}
	}
	switch s := stmt.(type) {
	case *Select:
		for _, it := range s.Items {
			note(it.Expr)
		}
		note(s.Where)
		for _, ob := range s.OrderBy {
			note(ob.Expr)
		}
		note(s.Limit)
		note(s.Offset)
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				note(e)
			}
		}
	case *Update:
		for _, a := range s.Set {
			note(a.Expr)
		}
		note(s.Where)
	case *Delete:
		note(s.Where)
	}
	return max + 1
}

// exprMaxParam returns the highest parameter index in e, or -1.
func exprMaxParam(e Expr) int {
	max := -1
	up := func(n int) {
		if n > max {
			max = n
		}
	}
	switch e := e.(type) {
	case nil:
		return -1
	case *Param:
		return e.Index
	case *UnaryExpr:
		up(exprMaxParam(e.Operand))
	case *BinaryExpr:
		up(exprMaxParam(e.Left))
		up(exprMaxParam(e.Right))
	case *InExpr:
		up(exprMaxParam(e.Expr))
		for _, item := range e.List {
			up(exprMaxParam(item))
		}
	case *IsNullExpr:
		up(exprMaxParam(e.Expr))
	case *FuncCall:
		for _, a := range e.Args {
			up(exprMaxParam(a))
		}
	}
	return max
}

// stmtPlan binds a statement's compiled plan to the engine state it was
// compiled against. It is valid only while the same *DB is at the same
// DDL epoch; any schema or index change recompiles.
type stmtPlan struct {
	db    *DB
	epoch uint64
	sel   *selectPlan
	upd   *updatePlan
	del   *deletePlan
	ins   *insertPlan
}

// planFor returns a valid cached plan for cs against db (which must hold
// db.mu), compiling and caching one on miss or staleness.
func (db *DB) planFor(cs *CachedStmt) *stmtPlan {
	if p := cs.plan.Load(); p != nil && p.db == db && p.epoch == db.epoch {
		db.counters.planHits++
		return p
	}
	db.counters.planMisses++
	p := &stmtPlan{db: db, epoch: db.epoch}
	switch s := cs.Stmt.(type) {
	case *Select:
		if s.Table != "" {
			if t, ok := db.tables[s.Table]; ok {
				p.sel = db.planSelect(t, s)
			}
		}
	case *Update:
		if t, ok := db.tables[s.Table]; ok {
			p.upd = db.planUpdate(t, s)
		}
	case *Delete:
		if t, ok := db.tables[s.Table]; ok {
			p.del = db.planDelete(t, s)
		}
	case *Insert:
		if t, ok := db.tables[s.Table]; ok {
			p.ins = db.planInsert(t, s)
		}
	}
	cs.plan.Store(p)
	return p
}
