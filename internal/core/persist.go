// Durable persistence for a WARP deployment (docs/persistence.md).
//
// Open creates a deployment backed by internal/store: every normal-
// execution state change — history action appends, time-travel database
// mutations, visit-log uploads, GC — is encoded as a typed WAL record by
// the observer hooks below, and Checkpoint serializes a consistent cut
// of the whole system. Recovery replays WAL-tail-over-snapshot.
//
// Repair is durable at a coarser grain, matching its semantics: a
// logged intent record brackets the repair, the repair's own mutations
// are not individually logged (they happen in the forked repair
// generation), and the commit is made durable by a checkpoint written
// under the same §4.3 suspension that makes the generation switch
// atomic. A crash mid-repair therefore recovers the exact pre-repair
// state plus a pending intent, and ResumeRepair re-runs the repair to
// the same outcome — the WAL analog of the paper's "repair is just a
// (re)computation over durable logs".
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// WAL record types.
const (
	recHistoryAction byte = 1 // one appended history action
	recTTDBRecord    byte = 2 // one committed database mutation
	recTTDBAnnotate  byte = 3 // a table annotation
	recTTDBGC        byte = 4 // database GC horizon move
	recGraphGC       byte = 5 // graph GC horizon move
	recVisitLog      byte = 6 // visit-log upload or refresh (upsert)
	recRepairIntent  byte = 7 // a repair began
	recRepairEnd     byte = 8 // a repair aborted (commits checkpoint instead)
	recRNGCursors    byte = 9 // nondeterminism cursor advance (runtime, browser seeds)
)

// IntentKind classifies repair intents.
type IntentKind byte

// Repair intent kinds.
const (
	IntentRetroPatch    IntentKind = 1
	IntentUndoVisit     IntentKind = 2
	IntentUndoPartition IntentKind = 3
)

// String names the intent kind (repair trace and log labels).
func (k IntentKind) String() string {
	switch k {
	case IntentRetroPatch:
		return "retro_patch"
	case IntentUndoVisit:
		return "undo_visit"
	case IntentUndoPartition:
		return "undo_partition"
	}
	return "unknown"
}

// RepairIntent is the durable description of a repair request, logged
// when the repair begins. If the process dies mid-repair, Open surfaces
// the intent through PendingRepair and ResumeRepair re-runs it against
// the recovered (pre-repair) state. Retroactive patches carry code — a
// Go function this reproduction cannot serialize, just as the paper's
// prototype kept patched PHP source on the filesystem outside the
// database — so resuming a patch intent requires re-supplying the
// patched version.
type RepairIntent struct {
	Kind IntentKind

	// RetroPatch fields.
	File  string
	Note  string
	Since int64

	// UndoVisit fields. Dequeue marks an undo that resolved a queued
	// conflict (ResolveConflictByCancel): resuming re-removes it.
	Client  string
	Visit   int64
	Admin   bool
	Dequeue bool

	// UndoPartition fields: the partition's String form and the time.
	Partition string
	From      int64
}

// RecoveryStats summarizes what Open recovered from disk.
type RecoveryStats struct {
	// FromSnapshot is true when a checkpoint (manifest + sections) was
	// loaded.
	FromSnapshot bool
	// WALRecords is the number of WAL-tail records replayed, summed over
	// all shards.
	WALRecords int
	// TailCorrupt is true when at least one WAL shard ended in a torn or
	// corrupt frame; the state recovered is the consistent per-shard
	// prefix before it.
	TailCorrupt bool
	// SnapshotFallback is true when the newest checkpoint failed its
	// checksum and an older one was used.
	SnapshotFallback bool
}

// Checkpoint section names (docs/persistence.md). core/meta and
// ttdb/meta are small and rewritten every checkpoint; history, visits,
// each ttdb table header, and each table row shard are rewritten only
// when dirty and carried forward by manifest reference otherwise. A
// table is one header section (schema, allocator) plus
// ttdb.ShardCount(table) row-shard sections, so a repaired hot row
// rewrites a sub-table section rather than the whole table.
const (
	secCoreMeta    = "core/meta"
	secHistory     = "history"
	secTTDBMeta    = "ttdb/meta"
	secVisits      = "core/visits"
	secTablePrefix = "ttdb/table/"
	secShardInfix  = "/rows/"
)

// tableShardSection names one row shard's checkpoint section.
func tableShardSection(table string, shard int) string {
	return secTablePrefix + table + secShardInfix + strconv.Itoa(shard)
}

// persister connects a deployment to its store: it implements both
// layers' observer interfaces, encoding change events as WAL records.
type persister struct {
	w  *Warp
	st *store.Store

	mu sync.Mutex
	// loggedVisits maps visit keys to 1 + (events + requests) at the
	// last time the log was written, so syncVisitLogs re-logs only
	// visits that grew since upload.
	loggedVisits map[string]int
	// failErr latches the first WAL append failure from an observer
	// callback. Observers cannot propagate errors through the layers
	// that invoke them, but an I/O failure must not stay silent — the
	// latched error surfaces on FlushLogs, Checkpoint, and Close.
	failErr error
	// histMuts is the graph's mutation count at the last checkpoint
	// (-1 forces a rewrite); visitsDirty marks visit-log changes since
	// the last checkpoint. Together with ttdb's dirty-table set these
	// decide which sections an incremental checkpoint rewrites.
	histMuts    int64
	visitsDirty bool
	// lastCursors tracks, per WAL table group, the nondeterminism
	// cursor positions already logged *to that group's shard*, so
	// logCursorsGroup appends only on advance. Per-shard marks matter:
	// recovery keeps an independent prefix per shard, so each shard's
	// record stream must be self-consistently preceded by its own cursor
	// records.
	lastCursors map[string]cursorMark

	stopOnce sync.Once
	ckptStop chan struct{}
	ckptDone chan struct{}
}

// append writes one WAL record to the metadata shard, latching the
// first failure.
func (p *persister) append(typ byte, payload []byte) {
	p.appendGroup("", typ, payload)
}

// appendGroup writes one WAL record to the shard its table group routes
// to, latching the first failure.
func (p *persister) appendGroup(group string, typ byte, payload []byte) {
	if err := p.st.AppendGroup(group, typ, payload); err != nil {
		p.latchErr(err)
	}
}

// latchErr records the first observer-side WAL append failure.
func (p *persister) latchErr(err error) {
	p.mu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.mu.Unlock()
}

// markRepairDirty force-marks the sections a repair rewrites in place —
// the history graph (superseded flags, extended dependencies) and the
// visit logs (replayed child visits, merged edits). Called before the
// repair commit checkpoint; the database's shards mark themselves at
// partition granularity through the repair operations' lock scopes, so
// the commit rewrites sub-table sections proportional to the damage.
func (p *persister) markRepairDirty() {
	p.mu.Lock()
	p.histMuts = -1
	p.visitsDirty = true
	p.mu.Unlock()
}

// lastErr returns the first latched WAL append failure, if any.
func (p *persister) lastErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failErr
}

// clearErrIf unlatches a failure after a successful checkpoint: the
// snapshot captured the full in-memory state, so records the failed
// appends lost are durable again. Only the error observed before the
// checkpoint is cleared — a failure raced in during the build stays.
func (p *persister) clearErrIf(err error) {
	p.mu.Lock()
	if p.failErr == err {
		p.failErr = nil
	}
	p.mu.Unlock()
}

// ActionAppended implements history.Observer: normal-execution actions
// are WAL-logged at append time. Repair-produced actions (patched runs,
// their queries, patch markers) are not — a repair becomes durable
// atomically via the commit checkpoint.
func (p *persister) ActionAppended(a *history.Action) {
	switch pl := a.Payload.(type) {
	case *RunPayload:
		if pl.Repaired {
			return
		}
	case *QueryPayload:
		if pl.Repaired {
			return
		}
	default:
		if a.Kind == history.KindPatch {
			return
		}
	}
	enc := store.GetEncoder()
	encodeAction(enc, a, nil)
	p.append(recHistoryAction, enc.Bytes())
	store.PutEncoder(enc)
}

// GraphCollected implements history.Observer.
func (p *persister) GraphCollected(beforeTime int64) {
	enc := store.GetEncoder()
	enc.Int(beforeTime)
	p.append(recGraphGC, enc.Bytes())
	store.PutEncoder(enc)
}

// RecordApplied implements ttdb.Observer. Database records are routed
// by table group, so tables mapped to different WAL shards log — and
// fsync — in parallel; per-table order is preserved by the shard's file
// order and cross-table order by the global LSN.
func (p *persister) RecordApplied(rec *ttdb.Record) {
	p.logCursorsGroup(rec.Table, p.w.Runtime.RNGCursor(), p.w.rngDraws.Load())
	enc := store.GetEncoder()
	ttdb.EncodeRecord(enc, rec)
	p.appendGroup(rec.Table, recTTDBRecord, enc.Bytes())
	store.PutEncoder(enc)
}

// TableAnnotated implements ttdb.Observer.
func (p *persister) TableAnnotated(table string, spec ttdb.TableSpec) {
	enc := store.GetEncoder()
	enc.String(table)
	ttdb.EncodeSpec(enc, spec)
	p.append(recTTDBAnnotate, enc.Bytes())
	store.PutEncoder(enc)
}

// Collected implements ttdb.Observer.
func (p *persister) Collected(beforeTime int64) {
	enc := store.GetEncoder()
	enc.Int(beforeTime)
	p.append(recTTDBGC, enc.Bytes())
	store.PutEncoder(enc)
}

func visitKey(clientID string, visitID int64) string {
	return clientID + "/" + strconv.FormatInt(visitID, 10)
}

// logVisit writes (or refreshes) one visit log record. The caller holds
// w.mu, which orders visit records against each other.
func (p *persister) logVisit(v *browser.VisitLog) {
	key := visitKey(v.ClientID, v.VisitID)
	v.Lock()
	size := 1 + len(v.Events) + len(v.Requests)
	v.Unlock()
	p.mu.Lock()
	if p.loggedVisits[key] == size {
		p.mu.Unlock()
		return
	}
	p.loggedVisits[key] = size
	p.visitsDirty = true
	p.mu.Unlock()
	enc := store.GetEncoder()
	encodeVisitLog(enc, v)
	p.append(recVisitLog, enc.Bytes())
	store.PutEncoder(enc)
}

// syncVisitLogs re-logs every visit log that gained events or requests
// since it was last written. In the in-process model the live browser
// keeps appending to the shared log object after upload; repair relies
// on those events, so they are re-persisted before each repair intent
// (the durable analog of the extension's periodic re-upload, §5.2) and
// on FlushLogs.
func (p *persister) syncVisitLogs() {
	p.w.mu.Lock()
	for _, v := range p.w.visitOrder {
		p.logVisit(v)
	}
	p.w.mu.Unlock()
}

// logIntent makes a repair intent durable before any repair work runs.
// Failure is returned (not swallowed): a repair that proceeds without a
// durable intent could be lost without trace by a crash, which is the
// exact guarantee the intent exists to provide.
func (p *persister) logIntent(it *RepairIntent) error {
	enc := store.NewEncoder()
	encodeIntent(enc, it)
	if err := p.st.Append(recRepairIntent, enc.Bytes()); err != nil {
		return err
	}
	return p.st.Sync() // a repair must not outrun its durable intent
}

func (p *persister) logRepairEnd() {
	p.append(recRepairEnd, nil)
}

// cursorMark is a shard's last-logged nondeterminism cursor positions.
type cursorMark struct{ rt, br int64 }

// logCursors WAL-logs an advance of the nondeterminism cursors — the
// runtime's seeded token stream and the deployment's browser-seed
// stream — on the metadata shard. Checkpoints already persist the
// cursors (encodeCoreMeta), but a hard crash between checkpoints would
// otherwise replay the streams' unsynced tail: the first post-crash
// login would re-issue a recovered session's sid. Records are tiny,
// emitted only on advance, and replay idempotently (recovery only ever
// fast-forwards).
func (p *persister) logCursors(runtimeCursor, browserDraws int64) {
	p.logCursorsGroup("", runtimeCursor, browserDraws)
}

// logCursorsGroup logs a cursor advance to one table group's shard,
// *before* the mutation record that rides behind it (RecordApplied).
// Within one shard recovery keeps a prefix, so ordering the cursor
// ahead of the record guarantees any recovered mutation implies the
// cursor state that existed when it committed — a crash can lose a
// login's session row together with its cursor advance, but never keep
// the row while rewinding the stream that issued its sid.
func (p *persister) logCursorsGroup(group string, runtimeCursor, browserDraws int64) {
	p.mu.Lock()
	want := p.lastCursors[group]
	if runtimeCursor <= want.rt && browserDraws <= want.br {
		p.mu.Unlock()
		return
	}
	if runtimeCursor > want.rt {
		want.rt = runtimeCursor
	}
	if browserDraws > want.br {
		want.br = browserDraws
	}
	p.mu.Unlock()
	enc := store.GetEncoder()
	enc.Int(want.rt)
	enc.Int(want.br)
	err := p.st.AppendGroup(group, recRNGCursors, enc.Bytes())
	store.PutEncoder(enc)
	if err != nil {
		// The mark is advanced only on a successful append: a transient
		// failure here must not let a later mutation record reach the
		// shard without its preceding cursor record — the next record on
		// this group retries the cursor first. Concurrent callers may
		// duplicate a record; replay is monotonic, so duplicates are
		// harmless.
		p.latchErr(err)
		return
	}
	p.mu.Lock()
	last := p.lastCursors[group]
	if want.rt > last.rt {
		last.rt = want.rt
	}
	if want.br > last.br {
		last.br = want.br
	}
	p.lastCursors[group] = last
	p.mu.Unlock()
}

func (p *persister) checkpointLoop() {
	defer close(p.ckptDone)
	for {
		select {
		case <-p.ckptStop:
			return
		case <-p.st.NeedSnapshot():
			_ = p.w.Checkpoint()
		case <-p.st.FaultSignal():
			p.fence()
		}
	}
}

// fence responds to a storage fault (store.FaultSignal): it attempts
// one checkpoint, which — if the fault was transient (a poisoned
// segment the shard already rotated past, a scrubbed-out corrupt file)
// — re-secures the entire in-memory state under a fresh recovery root
// and absolves the fault. If the checkpoint itself fails, the storage
// can no longer accept writes and the deployment degrades to read-only
// mode (degraded.go) instead of acknowledging writes it may lose.
func (p *persister) fence() {
	if p.w.Degraded() {
		return
	}
	err := p.w.Checkpoint()
	if err != nil {
		// One retry: the first attempt may itself have consumed a
		// transient fault (a poisoned fsync mid-checkpoint). A second
		// failure means the storage really cannot take a checkpoint.
		err = p.w.Checkpoint()
	}
	if err != nil {
		cause := p.st.LastFault()
		if cause == nil {
			cause = err
		}
		p.w.enterDegraded(cause)
	}
}

func (p *persister) stop() {
	p.stopOnce.Do(func() {
		close(p.ckptStop)
		<-p.ckptDone
	})
}

// Open creates a WARP deployment backed by the persistence directory
// dir, recovering any state a previous instance left there: the newest
// snapshot is restored, the WAL tail after it is replayed, and derived
// indexes are rebuilt. Application code (source files, routes,
// annotations) is not persisted — like the paper's PHP source tree it
// lives outside the database — so the application must Register and
// Mount its files after Open exactly as it does on a fresh deployment;
// setup DDL replays idempotently (CREATE TABLE IF NOT EXISTS, identical
// re-annotation).
//
// If a repair was in flight at crash time, PendingRepair reports its
// intent; call ResumeRepair after re-registering application code.
func Open(dir string, cfg Config) (*Warp, error) {
	st, rec, err := store.Open(dir, cfg.Durability)
	if err != nil {
		return nil, err
	}
	w := New(cfg)
	fail := func(err error) (*Warp, error) {
		_ = st.Close()
		return nil, err
	}
	if rec.Manifest {
		if err := w.restoreSections(rec); err != nil {
			return fail(fmt.Errorf("warp: restoring checkpoint: %w", err))
		}
		// Restoring compacts tombstones, so the engine's row slots — the
		// positions row-shard sections are tagged with — are renumbered.
		// Mark every restored table dirty: the first checkpoint of this
		// instance rewrites all of its shards with the new numbering, so
		// carried-forward sections never mix position spaces.
		w.DB.MarkTableDirty(w.DB.Tables()...)
	}
	walHist, walVisits := false, false
	for i, r := range rec.Records {
		switch r.Type {
		case recHistoryAction, recGraphGC:
			walHist = true
		case recVisitLog:
			walVisits = true
		}
		if err := w.applyWAL(r); err != nil {
			return fail(fmt.Errorf("warp: replaying WAL record %d: %w", i, err))
		}
	}
	w.rebuildDerived()
	w.recovery = RecoveryStats{
		FromSnapshot:     rec.Manifest,
		WALRecords:       len(rec.Records),
		TailCorrupt:      rec.TailCorrupt,
		SnapshotFallback: rec.SnapshotFallback,
	}

	p := &persister{
		w: w, st: st,
		loggedVisits: make(map[string]int),
		lastCursors:  make(map[string]cursorMark),
		ckptStop:     make(chan struct{}),
		ckptDone:     make(chan struct{}),
	}
	// Seed the dirty state: sections restored from the checkpoint are
	// clean (the manifest still references them); anything the WAL tail
	// touched is stale and must be rewritten by the next checkpoint.
	// Replayed database records marked their own tables dirty on the way
	// through DB.Replay.
	p.histMuts = w.Graph.MutationCount()
	if walHist {
		p.histMuts = -1
	}
	p.visitsDirty = walVisits
	w.mu.Lock()
	for _, v := range w.visitOrder {
		p.loggedVisits[visitKey(v.ClientID, v.VisitID)] = 1 + len(v.Events) + len(v.Requests)
	}
	w.mu.Unlock()
	p.lastCursors[""] = cursorMark{rt: w.Runtime.RNGCursor(), br: w.rngDraws.Load()}
	w.pers = p
	w.Graph.SetObserver(p)
	w.DB.SetObserver(p)
	go p.checkpointLoop()
	if w.recovery.TailCorrupt {
		// The WAL holds a torn or unreachable region; appending beyond
		// it would strand acknowledged records where the next recovery
		// cannot reach them. Checkpoint immediately: the recovered state
		// becomes the new base, the manifest's boundaries move past the
		// damage, and the damaged segments are pruned. A store that can
		// neither replay its log nor write a checkpoint is refused.
		if err := w.Checkpoint(); err != nil {
			w.pers.stop()
			return fail(fmt.Errorf("warp: fencing corrupt WAL tail: %w", err))
		}
	}
	return w, nil
}

// restoreSections rebuilds the deployment from a checkpoint's sections,
// in dependency order: core metadata (clock first), the history graph,
// the database's metadata, then every table, then the visit logs. A
// section that the manifest names but cannot be read — or one of the
// always-present sections missing entirely — fails the whole Open:
// loading a partial deployment would silently drop recorded actions.
func (w *Warp) restoreSections(rec *store.Recovery) error {
	read := func(name string) (*store.Decoder, error) {
		dec, err := rec.ReadSection(name)
		if err != nil {
			return nil, fmt.Errorf("section %s: %w", name, err)
		}
		return dec, nil
	}
	dec, err := read(secCoreMeta)
	if err != nil {
		return err
	}
	if err := w.restoreCoreMeta(dec); err != nil {
		return fmt.Errorf("section %s: %w", secCoreMeta, err)
	}
	dec, err = read(secHistory)
	if err != nil {
		return err
	}
	if err := w.restoreHistory(dec); err != nil {
		return fmt.Errorf("section %s: %w", secHistory, err)
	}
	dec, err = read(secTTDBMeta)
	if err != nil {
		return err
	}
	if err := w.DB.RestoreMeta(dec); err != nil {
		return fmt.Errorf("section %s: %w", secTTDBMeta, err)
	}
	// Tables restore in two passes: every header (schema + allocator)
	// first, then every row shard, since a shard can only load into a
	// table whose header has been restored.
	for _, name := range rec.SectionNames() {
		if !strings.HasPrefix(name, secTablePrefix) || strings.Contains(name, secShardInfix) {
			continue
		}
		dec, err = read(name)
		if err != nil {
			return err
		}
		if _, err := w.DB.RestoreTableHeader(dec); err != nil {
			return fmt.Errorf("section %s: %w", name, err)
		}
	}
	for _, name := range rec.SectionNames() {
		if !strings.HasPrefix(name, secTablePrefix) || !strings.Contains(name, secShardInfix) {
			continue
		}
		dec, err = read(name)
		if err != nil {
			return err
		}
		if err := w.DB.RestoreTableShard(dec); err != nil {
			return fmt.Errorf("section %s: %w", name, err)
		}
	}
	if err := w.DB.VerifyRestored(); err != nil {
		return err
	}
	dec, err = read(secVisits)
	if err != nil {
		return err
	}
	if err := w.restoreVisits(dec); err != nil {
		return fmt.Errorf("section %s: %w", secVisits, err)
	}
	return nil
}

// Recovery returns what Open recovered; the zero value for in-memory
// deployments and fresh directories.
func (w *Warp) Recovery() RecoveryStats { return w.recovery }

// Recovered reports whether Open restored any prior state.
func (w *Warp) Recovered() bool {
	return w.recovery.FromSnapshot || w.recovery.WALRecords > 0
}

// PendingRepair returns the intent of a repair that was in flight when a
// previous instance crashed, or nil.
func (w *Warp) PendingRepair() *RepairIntent {
	if w.pendingIntent == nil {
		return nil
	}
	it := *w.pendingIntent
	return &it
}

// ResumeRepair re-runs the pending crashed repair against the recovered
// state. Undo intents are self-contained; a retroactive patch intent
// needs the patched code re-supplied (patch), since code is not
// persisted. The repair runs through the normal entry points, so it
// re-logs its own intent and commits (or aborts) durably.
func (w *Warp) ResumeRepair(patch *app.Version) (*Report, error) {
	it := w.pendingIntent
	if it == nil {
		return nil, fmt.Errorf("warp: no pending repair to resume")
	}
	w.pendingIntent = nil
	switch it.Kind {
	case IntentRetroPatch:
		if patch == nil {
			return nil, fmt.Errorf("warp: resuming the retroactive patch of %s requires the patched code", it.File)
		}
		return w.RetroPatchSince(it.File, *patch, it.Since)
	case IntentUndoVisit:
		if it.Dequeue {
			w.mu.Lock()
			rest := w.conflicts[:0]
			for _, c := range w.conflicts {
				if c.Client == it.Client && c.VisitID == it.Visit {
					continue
				}
				rest = append(rest, c)
			}
			w.conflicts = rest
			w.mu.Unlock()
		}
		return w.undoVisit(it.Client, it.Visit, it.Admin, it.Dequeue)
	case IntentUndoPartition:
		p, ok := ttdb.ParsePartition(it.Partition)
		if !ok {
			return nil, fmt.Errorf("warp: pending repair names invalid partition %q", it.Partition)
		}
		return w.UndoPartition(p, it.From)
	default:
		return nil, fmt.Errorf("warp: unknown pending repair kind %d", it.Kind)
	}
}

// Checkpoint writes an incremental checkpoint of the deployment and
// truncates the WAL: sections whose state changed since the last
// checkpoint (tracked per ttdb table, plus the history graph and the
// visit-log store) are rewritten into a new delta file, unchanged
// sections are carried forward by manifest reference, and every
// Durability.CompactEvery-th checkpoint rewrites everything so the
// delta chain stays short. Checkpoint cost is therefore proportional to
// the write set since the last checkpoint, not to database size.
// Request processing is suspended for the duration (the same brief §4.3
// suspension repair uses) and repair is excluded; uploads may
// interleave (their records are idempotent upserts). No-op for
// in-memory deployments.
func (w *Warp) Checkpoint() error {
	if w.pers == nil {
		return nil
	}
	if err := w.degradedErr(); err != nil {
		return err
	}
	w.repairMu.Lock()
	defer w.repairMu.Unlock()
	w.Suspend()
	defer w.Resume()
	return w.checkpointQuiesced()
}

// checkpointQuiesced writes the checkpoint; the caller holds repairMu
// and the suspension lock. A successful checkpoint re-establishes
// durability of everything in memory, so it unlatches an earlier
// observer append failure.
func (w *Warp) checkpointQuiesced() error {
	p := w.pers
	// Visit logs grow in place after upload (the live browser keeps the
	// shared object); observe that growth now so a grown-but-unlogged
	// visit marks the visits section dirty before the cut below.
	p.syncVisitLogs()
	before := p.lastErr()

	// Claim the dirty state up front. Mutators are quiesced, so nothing
	// is lost between the claim and the encode; if the checkpoint fails
	// the claims are restored for the next attempt.
	histMuts := w.Graph.MutationCount()
	p.mu.Lock()
	histDirty := p.histMuts != histMuts
	visitsDirty := p.visitsDirty
	p.visitsDirty = false
	p.mu.Unlock()
	dirtySet := w.DB.TakeDirty()

	err := p.st.WriteCheckpoint(func(cw *store.CheckpointWriter) error {
		// The small always-fresh sections: clock, request counters,
		// conflict queue, cookie invalidations, storage accounting, and
		// the database's generation/GC/annotation metadata.
		w.encodeCoreMeta(cw.Section(secCoreMeta))
		w.DB.EncodeMeta(cw.Section(secTTDBMeta))

		if histDirty || !cw.Keep(secHistory) {
			w.encodeHistory(cw.Section(secHistory))
		}
		for _, table := range w.DB.Tables() {
			ds, dirty := dirtySet[table]
			header := secTablePrefix + table
			// The header carries the row-ID allocator and the version
			// index's cross-shard entries, any of which may have moved
			// with the dirty shards; rewrite it whenever the table was
			// touched at all.
			if dirty || !cw.Keep(header) {
				if err := w.DB.EncodeTableHeader(cw.Section(header), table); err != nil {
					return err
				}
			}
			shards := w.DB.ShardCount(table)
			dirtyShard := make(map[int]bool, shards)
			if ds.Whole {
				for k := 0; k < shards; k++ {
					dirtyShard[k] = true
				}
			} else {
				for _, k := range ds.Shards {
					dirtyShard[k] = true
				}
			}
			var need []int
			for k := 0; k < shards; k++ {
				name := tableShardSection(table, k)
				if !dirtyShard[k] && cw.Keep(name) {
					continue
				}
				need = append(need, k)
			}
			if len(need) > 0 {
				// Rows stream from the engine cursor straight into the
				// section encoders: one cheap counting pass plus one
				// filtered scan per rewritten shard, never a materialized
				// result set (internal/ttdb EncodeTableShards).
				err := w.DB.EncodeTableShards(table, need, func(k int) *store.Encoder {
					return cw.Section(tableShardSection(table, k))
				})
				if err != nil {
					return err
				}
			}
		}
		if visitsDirty || !cw.Keep(secVisits) {
			w.encodeVisits(cw.Section(secVisits))
		}
		return nil
	})
	if err != nil {
		w.DB.MarkDirty(dirtySet)
		p.mu.Lock()
		p.visitsDirty = p.visitsDirty || visitsDirty
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	p.histMuts = histMuts
	p.mu.Unlock()
	if before != nil {
		p.clearErrIf(before)
	}
	return nil
}

// LastCheckpoint reports what the most recent checkpoint wrote — which
// sections went into the delta file and which were carried forward —
// for tests and operational visibility. Zero value for in-memory
// deployments.
func (w *Warp) LastCheckpoint() store.CheckpointStats {
	if w.pers == nil {
		return store.CheckpointStats{}
	}
	return w.pers.st.LastCheckpoint()
}

// FlushLogs makes everything recorded so far durable: visit logs that
// grew since upload are re-persisted and the WAL is fsynced. It also
// surfaces any WAL write failure an observer callback latched (those
// run inside the layers' critical sections and cannot propagate errors
// themselves).
func (w *Warp) FlushLogs() error {
	if w.pers == nil {
		return nil
	}
	if err := w.degradedErr(); err != nil {
		return err
	}
	w.pers.syncVisitLogs()
	if err := w.pers.st.Sync(); err != nil {
		return err
	}
	return w.pers.lastErr()
}

// Close checkpoints and releases the store. In-memory deployments and
// crashed stores close as no-ops. A WAL write failure latched by an
// observer callback that the final checkpoint could not absolve is
// returned here. A degraded deployment closes without the final
// checkpoint (the storage already refused one) and returns ErrDegraded
// with the original cause.
func (w *Warp) Close() error {
	if w.pers == nil {
		return nil
	}
	w.pers.stop()
	if w.pers.st.Dead() {
		return w.pers.st.Close()
	}
	if err := w.degradedErr(); err != nil {
		_ = w.pers.st.Close()
		return err
	}
	err := w.Checkpoint()
	if err != nil && !errors.Is(err, ErrDegraded) {
		// The attempt may have consumed a transient fault; retry once
		// before giving up (the same policy as the fault fence).
		err = w.Checkpoint()
	}
	if err != nil {
		_ = w.pers.st.Close()
		return err
	}
	if err := w.pers.st.Close(); err != nil {
		return err
	}
	return w.pers.lastErr()
}

// Crash simulates a process crash for fault-injection tests: user-space
// buffers are dropped and the store refuses further writes. The
// deployment keeps running in memory; reopen the directory with Open to
// observe what a real crash would have recovered.
func (w *Warp) Crash() {
	if w.pers == nil {
		return
	}
	w.pers.stop()
	w.pers.st.Crash()
}

//
// Checkpoint section encoding and recovery
//

// coreSnapVersion 3 added the runtime nondeterminism cursors (so a
// restart resumes the seeded token/browser-ID streams instead of
// replaying them — the post-restart login bug) and the file-version map
// (so a restart detects stale code registration). Version 4 extended
// the embedded query-record encoding with the UPDATE pre-image fields
// online repair merges against.
const coreSnapVersion = 4

// encodeCoreMeta serializes the deployment's small always-fresh state:
// the logical clock, the server-side request counter, the cookie
// invalidation queue, the conflict queue, storage accounting, the
// nondeterminism cursors, and the registered file versions.
func (w *Warp) encodeCoreMeta(enc *store.Encoder) {
	enc.Uvarint(coreSnapVersion)
	enc.Int(w.Clock.Now())

	w.mu.Lock()
	defer w.mu.Unlock()
	enc.Int(w.srvReqSeq)

	cookieClients := make([]string, 0, len(w.cookieInvalid))
	for c := range w.cookieInvalid {
		cookieClients = append(cookieClients, c)
	}
	sort.Strings(cookieClients)
	enc.Uvarint(uint64(len(cookieClients)))
	for _, c := range cookieClients {
		enc.String(c)
		names := w.cookieInvalid[c]
		enc.Uvarint(uint64(len(names)))
		for _, n := range names {
			enc.String(n)
		}
	}

	enc.Uvarint(uint64(len(w.conflicts)))
	for _, c := range w.conflicts {
		encodeConflict(enc, c)
	}

	enc.Int(int64(w.browserLogBytes))
	enc.Int(int64(w.appLogBytes))
	enc.Int(int64(w.dbLogBytes))

	// A pending repair intent (recovered from a crashed instance but not
	// yet resumed) must survive the checkpoint that prunes its WAL
	// record — otherwise a checkpoint-then-crash sequence would silently
	// forget the half-done repair.
	if w.pendingIntent != nil {
		enc.Bool(true)
		encodeIntent(enc, w.pendingIntent)
	} else {
		enc.Bool(false)
	}

	// Nondeterminism cursors: where the runtime's seeded token stream and
	// the deployment's browser-seed stream stand, so a recovered instance
	// resumes them rather than re-issuing values live sessions already
	// hold (login → restart → login).
	enc.Int(w.Runtime.RNGCursor())
	enc.Int(w.rngDraws.Load())

	// Registered file versions, for stale-code detection after recovery
	// (the code itself lives outside the database, like the paper's PHP
	// source tree).
	files := w.Runtime.Files()
	sort.Strings(files)
	enc.Uvarint(uint64(len(files)))
	for _, f := range files {
		enc.String(f)
		enc.Int(int64(w.Runtime.FileVersion(f)))
	}
}

func (w *Warp) restoreCoreMeta(dec *store.Decoder) error {
	if v := dec.Uvarint(); v != coreSnapVersion {
		if err := dec.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	w.Clock.AdvanceTo(dec.Int())

	w.mu.Lock()
	defer w.mu.Unlock()
	w.srvReqSeq = dec.Int()

	nCookie := dec.Count()
	for i := 0; i < nCookie; i++ {
		c := dec.String()
		n := dec.Count()
		names := make([]string, 0, n)
		for j := 0; j < n; j++ {
			names = append(names, dec.String())
		}
		w.cookieInvalid[c] = names
	}

	nConf := dec.Count()
	for i := 0; i < nConf; i++ {
		w.conflicts = append(w.conflicts, decodeConflict(dec))
	}

	w.browserLogBytes = int(dec.Int())
	w.appLogBytes = int(dec.Int())
	w.dbLogBytes = int(dec.Int())
	if dec.Bool() {
		it := decodeIntent(dec)
		w.pendingIntent = &it
	}

	// Resume the nondeterminism streams at their recorded cursors.
	w.Runtime.AdvanceRNGCursor(dec.Int())
	browserDraws := dec.Int()
	for w.rngDraws.Load() < browserDraws {
		w.rng.Int63()
		w.rngDraws.Add(1)
	}

	nFiles := dec.Count()
	w.recoveredFileVersions = make(map[string]int, nFiles)
	for i := 0; i < nFiles; i++ {
		f := dec.String()
		w.recoveredFileVersions[f] = int(dec.Int())
	}
	return dec.Err()
}

// encodeHistory serializes the action history graph with payloads.
func (w *Warp) encodeHistory(enc *store.Encoder) {
	actions := w.Graph.All()
	enc.Uvarint(uint64(len(actions)))
	for _, a := range actions {
		encodeAction(enc, a, w.Graph)
	}
}

func (w *Warp) restoreHistory(dec *store.Decoder) error {
	nActions := dec.Count()
	for i := 0; i < nActions; i++ {
		a, _, err := decodeAction(dec, w.Graph)
		if err != nil {
			return err
		}
		if err := w.Graph.RestoreAction(a); err != nil {
			return err
		}
	}
	return dec.Err()
}

// encodeVisits serializes the browser log store: every visit log in
// upload order plus the per-client index (by position, preserving the
// pointer sharing between the order list and the per-client lists).
func (w *Warp) encodeVisits(enc *store.Encoder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	enc.Uvarint(uint64(len(w.visitOrder)))
	pos := make(map[*browser.VisitLog]int, len(w.visitOrder))
	for i, v := range w.visitOrder {
		pos[v] = i
		encodeVisitLog(enc, v)
	}
	clients := make([]string, 0, len(w.visitLogs))
	for c := range w.visitLogs {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	enc.Uvarint(uint64(len(clients)))
	for _, c := range clients {
		enc.String(c)
		logs := w.visitLogs[c]
		enc.Uvarint(uint64(len(logs)))
		for _, v := range logs {
			enc.Uvarint(uint64(pos[v]))
		}
	}
}

func (w *Warp) restoreVisits(dec *store.Decoder) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	nVisits := dec.Count()
	order := make([]*browser.VisitLog, 0, nVisits)
	for i := 0; i < nVisits; i++ {
		order = append(order, decodeVisitLog(dec))
	}
	w.visitOrder = order
	nClients := dec.Count()
	for i := 0; i < nClients; i++ {
		c := dec.String()
		n := dec.Count()
		logs := make([]*browser.VisitLog, 0, n)
		byID := make(map[int64]*browser.VisitLog, n)
		for j := 0; j < n; j++ {
			idx := int(dec.Uvarint())
			if dec.Err() != nil || idx >= len(order) {
				return fmt.Errorf("core: snapshot visit index out of range")
			}
			logs = append(logs, order[idx])
			byID[order[idx].VisitID] = order[idx]
		}
		w.visitLogs[c] = logs
		w.visitByID[c] = byID
	}
	return dec.Err()
}

// applyWAL replays one WAL-tail record during recovery.
func (w *Warp) applyWAL(r store.Record) error {
	dec := store.NewDecoder(r.Payload)
	switch r.Type {
	case recHistoryAction:
		a, qp, err := decodeAction(dec, w.Graph)
		if err != nil {
			return err
		}
		if err := w.Graph.RestoreAction(a); err != nil {
			return err
		}
		switch pl := a.Payload.(type) {
		case *RunPayload:
			w.mu.Lock()
			w.appLogBytes += pl.Rec.ApproxLogBytes()
			w.dbLogBytes += pl.Rec.DBLogBytes()
			w.mu.Unlock()
		case *QueryPayload:
			// Link the query action back into the owning run, restoring
			// the QueryActions list the crash interrupted.
			if qp != nil && qp.run != nil {
				qp.run.QueryActions = append(qp.run.QueryActions, a.ID)
			}
		}
		return nil
	case recTTDBRecord:
		rec := ttdb.DecodeRecord(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		return w.DB.Replay(rec)
	case recTTDBAnnotate:
		table := dec.String()
		spec := ttdb.DecodeSpec(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		return w.DB.Annotate(table, spec)
	case recTTDBGC:
		t := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		return w.DB.GC(t)
	case recGraphGC:
		t := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		w.Graph.GC(t)
		return nil
	case recVisitLog:
		v := decodeVisitLog(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		w.restoreVisitLog(v)
		return nil
	case recRepairIntent:
		it := decodeIntent(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		w.pendingIntent = &it
		return nil
	case recRepairEnd:
		w.pendingIntent = nil
		return nil
	case recRNGCursors:
		rtCur := dec.Int()
		brCur := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		w.Runtime.AdvanceRNGCursor(rtCur)
		w.mu.Lock()
		for w.rngDraws.Load() < brCur {
			w.rng.Int63()
			w.rngDraws.Add(1)
		}
		w.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("core: unknown WAL record type %d", r.Type)
	}
}

// restoreVisitLog upserts a replayed visit log: refreshed uploads of the
// same visit replace the earlier state in place (pointer identity is
// preserved for the per-client stores), new visits insert through the
// same quota rule as UploadVisitLog.
func (w *Warp) restoreVisitLog(v *browser.VisitLog) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if v.ClientID == "" {
		return
	}
	if existing := w.visitByID[v.ClientID][v.VisitID]; existing != nil {
		w.browserLogBytes += v.ApproxLogBytes() - existing.ApproxLogBytes()
		existing.ReplaceWith(v)
		return
	}
	w.insertVisitLogLocked(v)
}

// rebuildDerived reconstructs the in-memory indexes that are derivable
// from the recovered graph and logs — the HTTP-exchange-to-run map, the
// per-table partition node index, the server-side request counter, the
// run-ID floor — and advances the clock past every recovered timestamp.
func (w *Warp) rebuildDerived() {
	maxTime := w.Clock.Now()
	var maxRunID int64
	w.mu.Lock()
	for _, a := range w.Graph.All() {
		if a.Time > maxTime {
			maxTime = a.Time
		}
		for _, deps := range [][]history.Dep{a.Inputs, a.Outputs} {
			for _, d := range deps {
				if name, ok := d.Node.PartitionName(); ok {
					if p, ok := ttdb.ParsePartition(name); ok {
						byTable := w.partsByTable[p.Table]
						if byTable == nil {
							byTable = make(map[history.NodeID]bool)
							w.partsByTable[p.Table] = byTable
						}
						byTable[d.Node] = true
					}
				}
			}
		}
		rp, ok := a.Payload.(*RunPayload)
		if !ok {
			continue
		}
		for _, d := range a.Outputs {
			node := string(d.Node)
			if !strings.HasPrefix(node, "http:") {
				continue
			}
			w.runByHTTP[d.Node] = a.ID
			var n int64
			if _, err := fmt.Sscanf(node, "http:srv/0/%d", &n); err == nil && n > w.srvReqSeq {
				w.srvReqSeq = n
			}
		}
		if rp.Rec != nil {
			if rp.Rec.RunID > maxRunID {
				maxRunID = rp.Rec.RunID
			}
			for _, q := range rp.Rec.Queries {
				if q.Time > maxTime {
					maxTime = q.Time
				}
			}
		}
	}
	for _, v := range w.visitOrder {
		if v.Time > maxTime {
			maxTime = v.Time
		}
	}
	w.mu.Unlock()
	w.Clock.AdvanceTo(maxTime)
	w.Runtime.SetRunSeqFloor(maxRunID)
}
