package dom

import (
	"strings"
)

// Parse parses HTML text into a document tree. The parser is forgiving in
// the ways WARP needs: unknown tags are kept, mismatched close tags close
// up to the nearest matching ancestor (or are dropped), and unclosed
// elements close at end of input. Script, style, textarea, and title
// contents are treated as raw text.
func Parse(src string) *Node {
	p := &htmlParser{src: src}
	doc := NewDocument()
	p.parseInto(doc)
	return doc
}

type htmlParser struct {
	src string
	pos int
}

func (p *htmlParser) parseInto(root *Node) {
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }
	for p.pos < len(p.src) {
		lt := strings.IndexByte(p.src[p.pos:], '<')
		if lt < 0 {
			appendText(top(), p.src[p.pos:])
			return
		}
		if lt > 0 {
			appendText(top(), p.src[p.pos:p.pos+lt])
			p.pos += lt
		}
		// p.src[p.pos] == '<'
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				return // unterminated comment swallows the rest
			}
			p.pos += 4 + end + 3
		case strings.HasPrefix(p.src[p.pos:], "<!"):
			// DOCTYPE or other declaration: skip to '>'.
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return
			}
			p.pos += end + 1
		case strings.HasPrefix(p.src[p.pos:], "</"):
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return
			}
			name := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
			p.pos += end + 1
			// Close up to the matching ancestor, if any.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == name {
					stack = stack[:i]
					break
				}
			}
		default:
			node, selfClose, ok := p.parseOpenTag()
			if !ok {
				// Literal '<' that does not open a tag.
				appendText(top(), "<")
				p.pos++
				continue
			}
			top().AppendChild(node)
			if selfClose || voidElements[node.Tag] {
				continue
			}
			if rawTextElements[node.Tag] {
				p.parseRawText(node)
				continue
			}
			stack = append(stack, node)
		}
	}
}

// parseOpenTag parses "<tag attr=... >" starting at p.pos (which points at
// '<'). It reports whether a valid tag was found; on success p.pos is
// advanced past '>'.
func (p *htmlParser) parseOpenTag() (*Node, bool, bool) {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isTagNameByte(p.src[i]) {
		i++
	}
	if i == start {
		return nil, false, false
	}
	name := strings.ToLower(p.src[start:i])
	node := NewElement(name)
	// Attributes.
	for {
		for i < len(p.src) && isSpaceByte(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			return nil, false, false
		}
		if p.src[i] == '>' {
			p.pos = i + 1
			return node, false, true
		}
		if strings.HasPrefix(p.src[i:], "/>") {
			p.pos = i + 2
			return node, true, true
		}
		// Attribute name.
		aStart := i
		for i < len(p.src) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' && !isSpaceByte(p.src[i]) {
			i++
		}
		if i == aStart {
			// Stray character; skip it defensively.
			i++
			continue
		}
		key := strings.ToLower(p.src[aStart:i])
		val := ""
		if i < len(p.src) && p.src[i] == '=' {
			i++
			if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
				q := p.src[i]
				i++
				vStart := i
				for i < len(p.src) && p.src[i] != q {
					i++
				}
				val = Unescape(p.src[vStart:i])
				if i < len(p.src) {
					i++ // closing quote
				}
			} else {
				vStart := i
				for i < len(p.src) && !isSpaceByte(p.src[i]) && p.src[i] != '>' {
					i++
				}
				val = Unescape(p.src[vStart:i])
			}
		}
		node.Attrs = append(node.Attrs, Attr{Key: key, Val: val})
	}
}

// parseRawText consumes raw character data until the element's close tag.
func (p *htmlParser) parseRawText(node *Node) {
	closeTag := "</" + node.Tag
	rest := p.src[p.pos:]
	idx := strings.Index(strings.ToLower(rest), closeTag)
	if idx < 0 {
		if rest != "" {
			node.AppendChild(NewText(rawUnescape(node.Tag, rest)))
		}
		p.pos = len(p.src)
		return
	}
	if idx > 0 {
		node.AppendChild(NewText(rawUnescape(node.Tag, rest[:idx])))
	}
	gt := strings.IndexByte(rest[idx:], '>')
	if gt < 0 {
		p.pos = len(p.src)
		return
	}
	p.pos += idx + gt + 1
}

// rawUnescape unescapes entities for raw elements that are still
// HTML-escaped on render (textarea, title); script and style bodies are
// verbatim.
func rawUnescape(tag, s string) string {
	if tag == "textarea" || tag == "title" {
		return Unescape(s)
	}
	return s
}

func appendText(parent *Node, text string) {
	if text == "" {
		return
	}
	parent.AppendChild(NewText(Unescape(text)))
}

func isTagNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
