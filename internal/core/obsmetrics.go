package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"warp/internal/obs"
)

// Deployment-level instrumentation (docs/observability.md): request
// latency on the normal-operation path, live repair progress for the
// scheduler, and the slow-repair-action hook paired with sqldb's
// slow-query hook. Counters and gauges are unconditional; clock reads
// are gated on obs.Enabled() or an armed slow threshold.
var (
	// requestHist observes HandleRequest wall time — route, run,
	// history-graph record; requestsTotal counts every request served.
	requestHist   = obs.NewHistogram("warp_core_request_seconds")
	requestsTotal = obs.NewCounter("warp_core_requests_total")
	// visitLogsTotal counts browser visit-log uploads accepted.
	visitLogsTotal = obs.NewCounter("warp_core_visit_logs_total")

	// repairsTotal counts repair sessions started; repairActive is 1
	// while one runs.
	repairsTotal = obs.NewCounter("warp_core_repairs_total")
	repairActive = obs.NewGauge("warp_core_repair_active")
	// actionsReplayed / actionsRemaining are the live progress gauges of
	// the repair scheduler: items processed so far and items still
	// queued (pending + blocked), reset at each session start.
	actionsReplayed  = obs.NewGauge("warp_core_repair_actions_replayed")
	actionsRemaining = obs.NewGauge("warp_core_repair_actions_remaining")
	// repairItemHist observes per-work-item processing time (query
	// check, run re-execution, or visit replay).
	repairItemHist = obs.NewHistogram("warp_core_repair_item_seconds")

	// Online-repair seam metrics (admission.go, replay.go, throttle.go).
	// liveWritesQueued counts live writes that hit the admission gate
	// with a footprint conflicting an in-flight repair item;
	// liveWritesWaiting is how many are waiting right now.
	liveWritesQueued  = obs.NewCounter("warp_core_live_writes_queued_total")
	liveWritesWaiting = obs.NewGauge("warp_core_live_writes_waiting")
	// liveWritesMerged counts live writes the replay loop reconciled with
	// a concurrent repair by three-way merge; mergeConflicts counts
	// merges that fell back to last-writer-wins.
	liveWritesMerged = obs.NewCounter("warp_core_live_writes_merged_total")
	mergeConflicts   = obs.NewCounter("warp_core_live_merge_conflicts_total")
	// throttleLevel is the repair-worker concurrency cap the SLO governor
	// currently imposes; equal to RepairWorkers when unthrottled, 0 when
	// no governor runs.
	throttleLevel = obs.NewGauge("warp_core_repair_throttle_workers")
)

// SlowRepairFunc receives one over-threshold repair work item: a short
// description and its processing duration.
type SlowRepairFunc func(item string, d time.Duration)

var (
	slowRepairNs atomic.Int64
	slowRepairFn atomic.Pointer[SlowRepairFunc]
)

// SetSlowRepairLog arms slow repair-action logging: every work item
// slower than threshold is reported to fn. A zero threshold (or nil fn)
// disarms it.
func SetSlowRepairLog(threshold time.Duration, fn SlowRepairFunc) {
	if threshold <= 0 || fn == nil {
		slowRepairNs.Store(0)
		slowRepairFn.Store(nil)
		return
	}
	slowRepairFn.Store(&fn)
	slowRepairNs.Store(int64(threshold))
}

// describe renders a work item for the slow-repair log. Only called on
// the slow path, so the allocation is off the repair fast path.
func (it *workItem) describe() string {
	switch it.kind {
	case workQueryCheck:
		return fmt.Sprintf("query action %d (t=%d)", it.action, it.time)
	case workRunExec:
		return fmt.Sprintf("run action %d (t=%d)", it.action, it.time)
	case workVisitReplay:
		return fmt.Sprintf("visit replay %s/%d (t=%d)", it.client, it.visit, it.time)
	}
	return fmt.Sprintf("work item kind=%d (t=%d)", it.kind, it.time)
}

// processTimed wraps session.process with the per-item progress and
// latency instrumentation shared by the serial and parallel drains.
func (rs *session) processTimed(it *workItem) error {
	if !obs.Enabled() && slowRepairNs.Load() <= 0 {
		err := rs.process(it)
		actionsReplayed.Add(1)
		return err
	}
	start := time.Now()
	err := rs.process(it)
	d := time.Since(start)
	repairItemHist.Observe(d)
	actionsReplayed.Add(1)
	if ns := slowRepairNs.Load(); ns > 0 && int64(d) >= ns {
		if fp := slowRepairFn.Load(); fp != nil {
			(*fp)(it.describe(), d)
		}
	}
	return err
}
