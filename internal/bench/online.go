package bench

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/obs"
	"warp/internal/ttdb"
)

// OnlineRepair measures live-request latency *during* a repair — the
// headline number of online repair (docs/repair.md): with
// exclusive=false the deployment keeps serving while the repair drains
// (partition-scoped coexistence, admission gate, SLO throttle when
// slo > 0), suspending only for the final generation-switch commit
// window; with exclusive=true the paper's stop-the-world behavior is
// restored and every mid-repair request stalls for the whole repair.
//
// The workload is PartitionRepair's: a hot `posts` table partitioned by
// owner, a retroactive patch of the login page cascading into a
// per-client chain of page-visit replays. While the repair runs, one
// live client keeps issuing steadily paced read+write requests against
// its own partition (disjoint from every repaired one); the result
// reports that client's p99 and worst-case latency mid-repair next to
// the same deployment's idle p99.
func OnlineRepair(clients, pages, workers int, appLatency time.Duration, exclusive bool, slo time.Duration) (*OnlineRepairResult, error) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(wasEnabled)

	w := core.New(core.Config{
		Seed: 99, RepairWorkers: workers,
		ExclusiveRepair: exclusive, RepairSLO: slo,
	})
	if err := w.DB.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		return nil, err
	}
	if _, _, err := w.DB.Exec("CREATE TABLE posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		return nil, err
	}
	if err := w.Runtime.Register("login.php", app.Version{Entry: loginHandler(false)}); err != nil {
		return nil, err
	}
	if err := w.Runtime.Register("page.php", app.Version{Entry: postsHandler(appLatency)}); err != nil {
		return nil, err
	}
	w.Runtime.Mount("/login", "login.php")
	w.Runtime.Mount("/page", "page.php")

	id := 0
	for c := 0; c < clients; c++ {
		b := w.NewBrowser()
		if p := b.Open("/login"); p.DOM == nil {
			return nil, fmt.Errorf("bench: login failed for client %d", c)
		}
		for n := 0; n < pages; n++ {
			id++
			p := b.Open(fmt.Sprintf("/page?owner=%s&id=%d&body=<i>p%d</i>", b.ClientID, id, n))
			if p.DOM == nil {
				return nil, fmt.Errorf("bench: page visit failed for client %d", c)
			}
		}
	}

	// The live client: extensionless steady traffic against its own
	// partition, issued directly through the server manager.
	var liveID atomic.Int64
	liveID.Store(1_000_000)
	fire := func() (time.Duration, error) {
		n := liveID.Add(1)
		req := httpd.NewRequest("GET", fmt.Sprintf("/page?owner=live&id=%d&body=live%d", n, n))
		start := time.Now()
		resp := w.HandleRequest(req)
		d := time.Since(start)
		if resp.Status != 200 {
			return d, fmt.Errorf("bench: live request failed with status %d", resp.Status)
		}
		return d, nil
	}

	// Idle baseline: the same request stream with no repair running.
	idle := make([]time.Duration, 0, 200)
	for i := 0; i < 200; i++ {
		d, err := fire()
		if err != nil {
			return nil, err
		}
		idle = append(idle, d)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	var live []time.Duration
	var liveErr error
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d, err := fire()
			live = append(live, d)
			if err != nil {
				liveErr = err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	start := time.Now()
	rep, err := w.RetroPatch("login.php", app.Version{Entry: loginHandler(true), Note: "session hardening"})
	repairTime := time.Since(start)
	close(stop)
	<-done
	if err != nil {
		return nil, err
	}
	if liveErr != nil {
		return nil, liveErr
	}

	out := &OnlineRepairResult{
		Workers:      workers,
		Exclusive:    exclusive,
		RepairTime:   repairTime,
		IdleP99:      quantileDuration(idle, 0.99),
		LiveP99:      quantileDuration(live, 0.99),
		MaxStall:     maxDuration(live),
		LiveRequests: len(live),
		Report:       rep,
	}
	res, _, err := w.DB.Exec("SELECT owner, body FROM posts ORDER BY id")
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		out.Rows = append(out.Rows, r[0].AsText()+"|"+r[1].AsText())
	}
	return out, nil
}

// OnlineRepairResult is one measurement of live traffic riding through a
// repair, with the hot table's final contents for equivalence checks.
type OnlineRepairResult struct {
	Workers    int
	Exclusive  bool
	RepairTime time.Duration
	// IdleP99 / LiveP99 are the live client's request p99 before and
	// during the repair; MaxStall is its single worst mid-repair
	// latency (under exclusive repair this approaches RepairTime — the
	// suspension-length stall online repair removes).
	IdleP99      time.Duration
	LiveP99      time.Duration
	MaxStall     time.Duration
	LiveRequests int
	Report       *core.Report
	Rows         []string
}

func quantileDuration(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration{}, ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func maxDuration(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}
