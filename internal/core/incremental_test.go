package core

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// The incremental-checkpoint suite: dirty-table tracking must make
// checkpoint cost proportional to the write set, and the layered
// recovery — manifest + base + deltas + sharded WAL tails — must stay
// bit-identical to a never-crashed oracle.

// openMultiTable builds a durable deployment with n annotated tables of
// rowsEach rows, checkpointed once as the base.
func openMultiTable(t *testing.T, dir string, n, rowsEach int, dur store.Options) *Warp {
	t.Helper()
	w, err := Open(dir, Config{Seed: 7, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		table := fmt.Sprintf("t%d", i)
		if err := w.DB.Annotate(table, ttdb.TableSpec{RowIDColumn: "id"}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.DB.Exec(fmt.Sprintf(
			"CREATE TABLE IF NOT EXISTS %s (id INTEGER PRIMARY KEY, body TEXT)", table)); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rowsEach; r++ {
			if _, _, err := w.DB.Exec(fmt.Sprintf("INSERT INTO %s (id, body) VALUES (?, ?)", table),
				sqldb.Int(int64(r+1)), sqldb.Text(fmt.Sprintf("row-%d", r))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w
}

// writtenTables returns the distinct tables whose header or row-shard
// sections the checkpoint rewrote.
func writtenTables(st store.CheckpointStats) []string {
	seen := make(map[string]bool)
	var out []string
	for _, name := range st.Written {
		if !strings.HasPrefix(name, secTablePrefix) {
			continue
		}
		table := strings.TrimPrefix(name, secTablePrefix)
		if i := strings.Index(table, secShardInfix); i >= 0 {
			table = table[:i]
		}
		if !seen[table] {
			seen[table] = true
			out = append(out, table)
		}
	}
	sort.Strings(out)
	return out
}

// writtenSections returns the checkpoint's rewritten section names.
func writtenSections(st store.CheckpointStats) map[string]bool {
	out := make(map[string]bool, len(st.Written))
	for _, name := range st.Written {
		out[name] = true
	}
	return out
}

// TestIncrementalCheckpointWritesOnlyDirtyTables is the acceptance
// property of the tentpole: after touching k of n tables, the next
// checkpoint's delta file contains exactly the k dirty table sections,
// every other table rides along by manifest reference, and recovery of
// the layered state is bit-identical.
func TestIncrementalCheckpointWritesOnlyDirtyTables(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{SyncEveryAppend: true, Shards: 3, CompactEvery: 100}
	w := openMultiTable(t, dir, 6, 20, dur)

	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := w.LastCheckpoint()
	if !base.Full {
		t.Fatalf("first checkpoint must be full: %+v", base)
	}
	if got := writtenTables(base); len(got) != 6 {
		t.Fatalf("base checkpoint wrote table sections %v, want all 6", got)
	}

	// Touch 2 of the 6 tables.
	for _, table := range []string{"t1", "t4"} {
		if _, _, err := w.DB.Exec(fmt.Sprintf("UPDATE %s SET body = 'touched' WHERE id = 1", table)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := w.LastCheckpoint()
	if st.Full {
		t.Fatal("second checkpoint should be incremental")
	}
	if got := fmt.Sprint(writtenTables(st)); got != "[t1 t4]" {
		t.Fatalf("incremental checkpoint rewrote tables %s, want exactly the 2 dirty ones", got)
	}
	for _, name := range st.Kept {
		if strings.HasPrefix(name, secTablePrefix+"t1") || strings.HasPrefix(name, secTablePrefix+"t4") {
			t.Fatalf("dirty section %s was carried forward instead of rewritten", name)
		}
	}

	// A checkpoint with nothing dirty keeps every table.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := writtenTables(w.LastCheckpoint()); len(got) != 0 {
		t.Fatalf("clean checkpoint rewrote tables %v", got)
	}

	// The layered state (base file + delta + empty tails) recovers
	// bit-identically.
	want := dumpWarp(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Config{Seed: 7, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Crash()
	if !w2.Recovery().FromSnapshot {
		t.Fatal("reopen did not load the checkpoint")
	}
	if got := dumpWarp(t, w2); got != want {
		t.Fatalf("layered recovery differs\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCheckpointCostTracksDirtySet complements the benchmark: with one
// table touched, the delta file must stay far smaller than a full
// checkpoint of the same database.
func TestCheckpointCostTracksDirtySet(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{Shards: 2, CompactEvery: 100}
	w := openMultiTable(t, dir, 8, 200, dur)
	defer w.Crash()

	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	full := w.LastCheckpoint()

	if _, _, err := w.DB.Exec("UPDATE t0 SET body = 'hot' WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	inc := w.LastCheckpoint()
	if inc.Full {
		t.Fatal("expected an incremental checkpoint")
	}
	if inc.Bytes*4 > full.Bytes {
		t.Fatalf("incremental delta is %d bytes vs %d full — not proportional to the dirty set",
			inc.Bytes, full.Bytes)
	}
}

// TestCrashWithIncrementalCheckpointsRecoversExact is TestCrashMidWorkload
// over the full layering: checkpoints interleave with workload steps, so
// every crash point recovers through manifest + base + deltas + sharded
// WAL tails, and must still match the never-crashed oracle bit for bit —
// including the subsequent repair.
func TestCrashWithIncrementalCheckpointsRecoversExact(t *testing.T) {
	base := t.TempDir()
	live := filepath.Join(base, "live")
	dur := store.Options{SyncEveryAppend: true, Shards: 3, CompactEvery: 2}
	w := buildWarpDur(t, live, 1, dur)
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	steps := workloadSteps(browsers)
	for i, step := range steps {
		step()
		if i%2 == 1 {
			// Checkpoint between steps: later crash points recover
			// layered state, and CompactEvery=2 makes some of these
			// checkpoints incremental and some full compactions.
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.FlushLogs(); err != nil {
			t.Fatal(err)
		}
		copyDir(t, live, filepath.Join(base, fmt.Sprintf("at-%d", i+1)))
	}
	w.Crash()

	patch := app.Version{Entry: guestbookHandler(true), Note: "sanitize"}
	for k := 1; k <= len(steps); k++ {
		oracle := buildWarp(t, "", 1)
		ob := []*browser.Browser{oracle.NewBrowser(), oracle.NewBrowser(), oracle.NewBrowser()}
		for _, step := range workloadSteps(ob)[:k] {
			step()
		}

		recovered := buildWarpDur(t, filepath.Join(base, fmt.Sprintf("at-%d", k)), 1, dur)
		if k >= 2 && !recovered.Recovery().FromSnapshot {
			t.Fatalf("crash at step %d did not recover through a checkpoint", k)
		}
		assertSameState(t, fmt.Sprintf("layered crash at step %d", k), recovered, oracle)

		if _, err := recovered.RetroPatch("guestbook.php", patch); err != nil {
			t.Fatalf("repair after layered crash at step %d: %v", k, err)
		}
		if _, err := oracle.RetroPatch("guestbook.php", patch); err != nil {
			t.Fatal(err)
		}
		assertSameState(t, fmt.Sprintf("repair after layered crash at step %d", k), recovered, oracle)
		recovered.Crash()
	}
}

// TestCorruptTailFencedByCheckpoint: when recovery stops at a corrupt
// WAL region (here, a damaged early segment making later segments
// unreachable), Open fences the recovered prefix with an immediate
// checkpoint, so records acknowledged after recovery survive the next
// crash instead of being stranded behind the damage.
func TestCorruptTailFencedByCheckpoint(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{SyncEveryAppend: true, SegmentBytes: 512} // force several segments
	w := buildWarpDur(t, dir, 1, dur)
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	for _, step := range workloadSteps(browsers) {
		step()
	}
	w.Crash()

	// Damage the first segment of shard 0 near its end: most of it
	// replays, everything after it is unreachable.
	var segs []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-00-") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	if len(segs) < 3 {
		t.Fatalf("workload produced %d shard-0 segments; need several", len(segs))
	}
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := buildWarpDur(t, dir, 1, dur)
	if !w2.Recovery().TailCorrupt {
		t.Fatal("damaged segment not reported")
	}
	// The fence checkpoint must have run and pruned the damaged chain.
	if w2.LastCheckpoint().Seq == 0 {
		t.Fatal("no fence checkpoint after corrupt recovery")
	}
	// New acknowledged work on the fenced deployment... (extensionless
	// request path: a fresh browser on a recovered same-seed deployment
	// would collide with recovered client IDs — the seeded-RNG restart
	// issue tracked in ROADMAP — which is not what this test is about)
	if resp := w2.HandleRequest(httpd.NewRequest("GET", "/?author=carol&msg=post-fence")); resp.Status != 200 {
		t.Fatalf("post-fence request failed: %d", resp.Status)
	}
	if err := w2.FlushLogs(); err != nil {
		t.Fatal(err)
	}
	want := dumpWarp(t, w2)
	w2.Crash()

	// ...survives the next crash bit for bit.
	w3 := buildWarpDur(t, dir, 1, dur)
	defer w3.Crash()
	if got := dumpWarp(t, w3); got != want {
		t.Fatalf("post-fence records lost\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPendingIntentSurvivesCheckpoint: a recovered-but-unresumed repair
// intent must ride the checkpoint (which prunes its WAL record) so a
// checkpoint-then-crash sequence does not forget the half-done repair.
func TestPendingIntentSurvivesCheckpoint(t *testing.T) {
	patch := app.Version{Entry: guestbookHandler(true), Note: "sanitize"}
	control := buildWarp(t, "", 1)
	cb := []*browser.Browser{control.NewBrowser(), control.NewBrowser(), control.NewBrowser()}
	for _, step := range workloadSteps(cb) {
		step()
	}
	if _, err := control.RetroPatch("guestbook.php", patch); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{Seed: 1, RepairWorkers: 1, Durability: testDurability()}
	var traced atomic.Int64
	var w *Warp
	cfg.Trace = func(string, ...any) {
		if traced.Add(1) == 4 {
			w.Crash()
		}
	}
	var err error
	w, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	installGuestbook(t, w, false)
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	for _, step := range workloadSteps(browsers) {
		step()
	}
	if _, err := w.RetroPatch("guestbook.php", patch); err != nil {
		t.Fatal(err)
	}

	// Recover the pending intent, checkpoint (retiring the intent's WAL
	// record), then crash before resuming.
	mid := buildWarp(t, dir, 1)
	if mid.PendingRepair() == nil {
		t.Fatal("no pending intent recovered")
	}
	if err := mid.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mid.Crash()

	recovered := buildWarp(t, dir, 1)
	defer recovered.Crash()
	it := recovered.PendingRepair()
	if it == nil {
		t.Fatal("pending intent lost across checkpoint + crash")
	}
	if it.Kind != IntentRetroPatch || it.File != "guestbook.php" {
		t.Fatalf("unexpected intent %+v", it)
	}
	if _, err := recovered.ResumeRepair(&patch); err != nil {
		t.Fatalf("ResumeRepair: %v", err)
	}
	assertSameState(t, "resume after checkpointed intent", recovered, control)
}

// TestShardCountChangeAcrossRestartAtDeploymentLevel: a deployment
// written with 3 WAL shards must recover when reopened with 1 (and vice
// versa) — routing is a performance decision, never a correctness one.
func TestShardCountChangeAcrossRestartAtDeploymentLevel(t *testing.T) {
	dir := t.TempDir()
	w := buildWarpDur(t, dir, 1, store.Options{SyncEveryAppend: true, Shards: 3})
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	for _, step := range workloadSteps(browsers) {
		step()
	}
	if err := w.FlushLogs(); err != nil {
		t.Fatal(err)
	}
	want := dumpWarp(t, w)
	w.Crash() // WAL-only recovery, merged across 3 shards

	w2 := buildWarpDur(t, dir, 1, store.Options{SyncEveryAppend: true, Shards: 1})
	if got := dumpWarp(t, w2); got != want {
		t.Fatalf("shard-count change broke recovery\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3 := buildWarpDur(t, dir, 1, store.Options{SyncEveryAppend: true, Shards: 4})
	defer w3.Crash()
	if got := dumpWarp(t, w3); got != want {
		t.Fatalf("re-sharding broke recovery\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPartitionGranularDirtyTracking is the dirty-tracking half of the
// partition-concurrency tentpole: on a partitioned table, touching one
// partition's row must rewrite that partition's row-shard section (plus
// the small table header), not the whole table, and the layered state
// must still recover bit-identically.
func TestPartitionGranularDirtyTracking(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{SyncEveryAppend: true, Shards: 2, CompactEvery: 100}
	w, err := Open(dir, Config{Seed: 9, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DB.Annotate("posts", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE IF NOT EXISTS posts (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, _, err := w.DB.Exec("INSERT INTO posts (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(int64(i+1)), sqldb.Text(fmt.Sprintf("u%d", i%16)), sqldb.Text("hello")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	shards := w.DB.ShardCount("posts")
	if shards < 2 {
		t.Fatalf("partitioned table has %d shards, want several", shards)
	}

	// Touch exactly one partition.
	if _, _, err := w.DB.Exec("UPDATE posts SET body = 'hot' WHERE owner = 'u3'"); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := w.LastCheckpoint()
	written := writtenSections(st)
	if !written[secTablePrefix+"posts"] {
		t.Fatalf("table header not rewritten; written=%v", st.Written)
	}
	var shardsWritten int
	for k := 0; k < shards; k++ {
		if written[tableShardSection("posts", k)] {
			shardsWritten++
		}
	}
	if shardsWritten != 1 {
		t.Fatalf("hot-partition update rewrote %d of %d row shards, want exactly 1 (written=%v)",
			shardsWritten, shards, st.Written)
	}

	// Bit-identical recovery through header + mixed kept/rewritten shards.
	want := dumpWarp(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Config{Seed: 9, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Crash()
	if got := dumpWarp(t, w2); got != want {
		t.Fatalf("sharded recovery differs\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRepairCommitMarksSubTableSections: a repair that touches one hot
// partition must commit through a checkpoint that rewrites a strict
// subset of the hot table's row shards — the "repair cost scales with
// the damage" property applied to checkpoint bytes.
func TestRepairCommitMarksSubTableSections(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{SyncEveryAppend: true, CompactEvery: 100}
	w, err := Open(dir, Config{Seed: 11, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Crash()
	if err := w.DB.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE IF NOT EXISTS notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	handler := func(c *app.Ctx) *httpd.Response {
		id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM notes").FirstValue()
		c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
			id, sqldb.Text(c.Req.Param("owner")), sqldb.Text(c.Req.Param("body")))
		return httpd.HTML("ok")
	}
	if err := w.Runtime.Register("notes.php", app.Version{Entry: handler}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "notes.php")
	for i := 0; i < 24; i++ {
		resp := w.HandleRequest(httpd.NewRequest("GET",
			fmt.Sprintf("/?owner=u%d&body=b%d", i%8, i)))
		if resp.Status != 200 {
			t.Fatalf("seed failed: %d", resp.Status)
		}
	}
	preAttack := w.Clock.Now()
	if resp := w.HandleRequest(httpd.NewRequest("GET", "/?owner=u3&body=INJECTED")); resp.Status != 200 {
		t.Fatalf("attack seed failed: %d", resp.Status)
	}
	// Clear dirt so the repair's commit checkpoint reflects only repair.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	hot := ttdb.Partition{Table: "notes", Column: "owner", Key: sqldb.Text("u3").Key()}
	if _, err := w.UndoPartition(hot, preAttack+1); err != nil {
		t.Fatal(err)
	}
	st := w.LastCheckpoint()
	written := writtenSections(st)
	shards := w.DB.ShardCount("notes")
	var shardsWritten int
	for k := 0; k < shards; k++ {
		if written[tableShardSection("notes", k)] {
			shardsWritten++
		}
	}
	if shardsWritten == 0 || shardsWritten >= shards {
		t.Fatalf("partition repair rewrote %d of %d row shards, want a strict non-empty subset (written=%v)",
			shardsWritten, shards, st.Written)
	}
}

// TestRepairPurgeKeepsShardOrderAcrossRestart is the regression test for
// slot-based shard positions: a repair commit physically purges rows
// mid-table while rewriting only the repaired partition's shard, so the
// kept shards' row positions must remain valid. With scan-rank positions
// they go stale and the restored table's row order permutes.
func TestRepairPurgeKeepsShardOrderAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{SyncEveryAppend: true, CompactEvery: 100}
	w, err := Open(dir, Config{Seed: 13, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DB.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE IF NOT EXISTS notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	// Ids come from the request (no whole-table MAX read), so each run
	// touches only its owner's partition and the undo stays contained.
	handler := func(c *app.Ctx) *httpd.Response {
		c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(atoiTest(c.Req.Param("id"))), sqldb.Text(c.Req.Param("owner")), sqldb.Text(c.Req.Param("body")))
		return httpd.HTML("ok")
	}
	if err := w.Runtime.Register("notes.php", app.Version{Entry: handler}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "notes.php")
	nextID := 0
	seed := func(owner, body string) {
		t.Helper()
		nextID++
		if resp := w.HandleRequest(httpd.NewRequest("GET",
			fmt.Sprintf("/?owner=%s&body=%s&id=%d", owner, body, nextID))); resp.Status != 200 {
			t.Fatalf("seed failed: %d", resp.Status)
		}
	}
	for i := 0; i < 24; i++ {
		seed(fmt.Sprintf("u%d", i%8), fmt.Sprintf("pre-%d", i))
	}
	preAttack := w.Clock.Now()
	seed("u3", "INJECTED")
	// Post-attack traffic lands rows *after* the attack row both in the
	// shard the repair will rewrite (owners hash-colliding with u3) and
	// in shards the checkpoint will keep, so stale positions in kept
	// sections would permute the merge.
	shards := w.DB.ShardCount("notes")
	shardOf := func(owner string) int {
		h := fnv.New32a()
		h.Write([]byte(sqldb.Text(owner).Key()))
		return int(h.Sum32() % uint32(shards))
	}
	hotShard := shardOf("u3")
	colliding, others := 0, 0
	for i := 0; colliding < 4 || others < 8; i++ {
		owner := fmt.Sprintf("w%d", i)
		if shardOf(owner) == hotShard {
			if colliding >= 4 {
				continue
			}
			colliding++
		} else {
			if others >= 8 {
				continue
			}
			others++
		}
		seed(owner, fmt.Sprintf("post-%d", i))
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	hot := ttdb.Partition{Table: "notes", Column: "owner", Key: sqldb.Text("u3").Key()}
	if _, err := w.UndoPartition(hot, preAttack+1); err != nil {
		t.Fatal(err)
	}
	// The commit checkpoint must still be sub-table...
	st := w.LastCheckpoint()
	written := writtenSections(st)
	var shardsWritten int
	for k := 0; k < shards; k++ {
		if written[tableShardSection("notes", k)] {
			shardsWritten++
		}
	}
	if shardsWritten == 0 || shardsWritten >= shards {
		t.Fatalf("partition repair rewrote %d of %d shards, want a strict non-empty subset", shardsWritten, shards)
	}

	// ...and the restored state — mixed kept and rewritten shards across
	// the purge — must match the live instance bit for bit.
	want := dumpWarp(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Config{Seed: 13, RepairWorkers: 1, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Crash()
	if got := dumpWarp(t, w2); got != want {
		t.Fatalf("post-repair restart permuted table state\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func atoiTest(s string) int64 {
	var n int64
	fmt.Sscanf(s, "%d", &n)
	return n
}
