package obs

import (
	"sync"
	"time"
)

// maxTraceSpans caps the per-trace span list so a long repair cannot
// grow the recorder without bound; once full, spans still aggregate
// into per-phase totals but the detailed list stops growing and
// Dropped counts the overflow.
const maxTraceSpans = 2048

// Trace records the phases of one multi-phase operation (a repair
// session): named spans with start/duration, per-phase aggregates, and
// a bounded detail list. Begin/End are cheap (one mutex; no allocation
// once the phase exists) but are meant for phase granularity, not
// per-row work — per-item latency belongs in a Histogram.
type Trace struct {
	name  string
	start time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	phases  map[string]*phaseAgg
	order   []string
	open    int
	dropped uint64
	done    bool
	end     time.Time
}

type phaseAgg struct {
	count uint64
	total time.Duration
	max   time.Duration
}

// NewTrace starts a trace for the named operation.
func NewTrace(name string) *Trace {
	return &Trace{
		name:   name,
		start:  time.Now(),
		phases: make(map[string]*phaseAgg),
	}
}

// Span is an open span handle; call End exactly once.
type Span struct {
	t     *Trace
	phase string
	start time.Time
}

// Begin opens a span for the named phase. Safe on a nil trace (returns
// an inert span), so instrumented code can run with tracing off.
func (t *Trace) Begin(phase string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	t.open++
	t.mu.Unlock()
	return Span{t: t, phase: phase, start: time.Now()}
}

// End closes the span, folding its duration into the phase aggregate
// and, space permitting, the detail list.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	t.open--
	agg := t.phases[s.phase]
	if agg == nil {
		agg = &phaseAgg{}
		t.phases[s.phase] = agg
		t.order = append(t.order, s.phase)
	}
	agg.count++
	agg.total += d
	if d > agg.max {
		agg.max = d
	}
	if len(t.spans) < maxTraceSpans {
		t.spans = append(t.spans, SpanRecord{
			Phase: s.phase,
			Start: s.start.Sub(t.start),
			Dur:   d,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Finish marks the trace complete; later Snapshot calls report a fixed
// total duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// SpanRecord is one completed span: phase name, offset from the trace
// start, and duration.
type SpanRecord struct {
	Phase string
	Start time.Duration
	Dur   time.Duration
}

// PhaseStat aggregates every span of one phase.
type PhaseStat struct {
	Phase string
	Count uint64
	Total time.Duration
	Max   time.Duration
}

// TraceSnapshot is a point-in-time copy of a trace: phase aggregates in
// first-seen order plus the bounded span list.
type TraceSnapshot struct {
	Name    string
	Started time.Time
	Total   time.Duration // elapsed so far, or final once finished
	Done    bool
	Open    int // spans begun but not yet ended
	Dropped uint64
	Phases  []PhaseStat
	Spans   []SpanRecord
}

// Snapshot copies the trace's current state; safe while spans are still
// being recorded, and on a nil trace (returns a zero snapshot).
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		Name:    t.name,
		Started: t.start,
		Done:    t.done,
		Open:    t.open,
		Dropped: t.dropped,
		Phases:  make([]PhaseStat, 0, len(t.order)),
		Spans:   append([]SpanRecord(nil), t.spans...),
	}
	if t.done {
		s.Total = t.end.Sub(t.start)
	} else {
		s.Total = time.Since(t.start)
	}
	for _, phase := range t.order {
		agg := t.phases[phase]
		s.Phases = append(s.Phases, PhaseStat{Phase: phase, Count: agg.count, Total: agg.total, Max: agg.max})
	}
	return s
}

// Phase returns the named phase's aggregate from the snapshot (zero
// when absent).
func (s TraceSnapshot) Phase(name string) PhaseStat {
	for _, p := range s.Phases {
		if p.Phase == name {
			return p
		}
	}
	return PhaseStat{Phase: name}
}
