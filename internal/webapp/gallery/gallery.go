// Package gallery implements GoGallery, the Gallery2 stand-in used for
// the comparison with Akkuş & Goel's data-recovery system (paper §8.4,
// Table 5). It is a small photo gallery: albums, photos with derivative
// thumbnails, and per-photo view permissions, with two data-corruption
// bugs modeled on the Gallery2 bugs evaluated there:
//
//   - removing perms: moving a photo between albums erroneously deletes
//     the photo's permission entries (movephoto.php);
//   - resizing images: regenerating thumbnails corrupts the derivative
//     (resize.php writes garbage instead of the scaled image).
//
// "Images" are strings; Thumb derives from the image data by a pure
// function, so corruption is observable and repair is checkable.
package gallery

import (
	"fmt"
	"strings"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// App is an installed GoGallery.
type App struct {
	W *core.Warp
}

// Thumb is the correct derivative function: what resize.php should store.
func Thumb(data string) string {
	if len(data) > 8 {
		data = data[:8]
	}
	return "thumb(" + data + ")"
}

// Install creates the schema and registers the source files.
func Install(w *core.Warp) (*App, error) {
	a := &App{W: w}
	specs := map[string]ttdb.TableSpec{
		"albums": {RowIDColumn: "album_id", PartitionColumns: []string{"album_id"}},
		"photos": {RowIDColumn: "photo_id", PartitionColumns: []string{"photo_id", "album_id"}},
		"perms":  {PartitionColumns: []string{"item_id", "user_name"}},
	}
	for t, s := range specs {
		if err := w.DB.Annotate(t, s); err != nil {
			return nil, err
		}
	}
	ddl := []string{
		`CREATE TABLE albums (album_id INTEGER PRIMARY KEY, name TEXT NOT NULL)`,
		`CREATE TABLE photos (photo_id INTEGER PRIMARY KEY, album_id INTEGER NOT NULL, name TEXT, data TEXT, thumb TEXT)`,
		`CREATE TABLE perms (item_id INTEGER NOT NULL, user_name TEXT NOT NULL, UNIQUE (item_id, user_name))`,
	}
	for _, q := range ddl {
		if _, _, err := w.DB.Exec(q); err != nil {
			return nil, err
		}
	}
	files := map[string]app.Version{
		"photo.php":     {Entry: a.photoPHP, Note: "photo viewer (permission checked)"},
		"grant.php":     {Entry: a.grantPHP, Note: "grant a user view permission"},
		"movephoto.php": {Entry: a.movephotoBuggy, Note: "move photo between albums (BUG: wipes perms)"},
		"resize.php":    {Entry: a.resizeBuggy, Note: "regenerate thumbnail (BUG: corrupts it)"},
	}
	for n, v := range files {
		if err := w.Runtime.Register(n, v); err != nil {
			return nil, err
		}
	}
	for _, p := range []string{"/photo.php", "/grant.php", "/movephoto.php", "/resize.php"} {
		w.Runtime.Mount(p, strings.TrimPrefix(p, "/"))
	}
	return a, nil
}

// CreateAlbum seeds an album.
func (a *App) CreateAlbum(id int64, name string) error {
	_, _, err := a.W.DB.Exec("INSERT INTO albums (album_id, name) VALUES (?, ?)",
		sqldb.Int(id), sqldb.Text(name))
	return err
}

// CreatePhoto seeds a photo with a correct thumbnail.
func (a *App) CreatePhoto(id, album int64, name, data string) error {
	_, _, err := a.W.DB.Exec("INSERT INTO photos (photo_id, album_id, name, data, thumb) VALUES (?, ?, ?, ?, ?)",
		sqldb.Int(id), sqldb.Int(album), sqldb.Text(name), sqldb.Text(data), sqldb.Text(Thumb(data)))
	return err
}

// PermCount returns the number of permission entries on a photo.
func (a *App) PermCount(photo int64) int {
	res, _, err := a.W.DB.Exec("SELECT COUNT(*) FROM perms WHERE item_id = ?", sqldb.Int(photo))
	if err != nil {
		return -1
	}
	return int(res.FirstValue().AsInt())
}

// ThumbOf returns a photo's stored thumbnail.
func (a *App) ThumbOf(photo int64) string {
	res, _, err := a.W.DB.Exec("SELECT thumb FROM photos WHERE photo_id = ?", sqldb.Int(photo))
	if err != nil {
		return ""
	}
	return res.FirstValue().AsText()
}

// AlbumOf returns a photo's album.
func (a *App) AlbumOf(photo int64) int64 {
	res, _, err := a.W.DB.Exec("SELECT album_id FROM photos WHERE photo_id = ?", sqldb.Int(photo))
	if err != nil {
		return -1
	}
	return res.FirstValue().AsInt()
}

func (a *App) photoPHP(c *app.Ctx) *httpd.Response {
	id, u := c.Req.Param("id"), c.Req.Param("u")
	perm, err := c.Query("SELECT COUNT(*) FROM perms WHERE item_id = ? AND user_name = ?",
		sqldb.Int(atoi(id)), sqldb.Text(u))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	if perm.FirstValue().AsInt() == 0 {
		resp := httpd.HTML("<html><body>not allowed</body></html>")
		resp.Status = 403
		return resp
	}
	res, err := c.Query("SELECT name, thumb FROM photos WHERE photo_id = ?", sqldb.Int(atoi(id)))
	if err != nil || res.Empty() {
		return httpd.NotFound("no such photo")
	}
	return httpd.HTML(fmt.Sprintf(`<html><body><h1>%s</h1><img src="data:%s"/></body></html>`,
		res.Rows[0][0].AsText(), res.Rows[0][1].AsText()))
}

func (a *App) grantPHP(c *app.Ctx) *httpd.Response {
	id, u := c.Req.Param("id"), c.Req.Param("user")
	if id == "" || u == "" {
		return httpd.NotFound("missing fields")
	}
	// Existence check: the read through which coarse taint policies
	// over-approximate (§8.4).
	res, err := c.Query("SELECT album_id FROM photos WHERE photo_id = ?", sqldb.Int(atoi(id)))
	if err != nil {
		return httpd.ServerError(err.Error())
	}
	if res.Empty() {
		return httpd.NotFound("no such photo")
	}
	if _, err := c.Query("INSERT INTO perms (item_id, user_name) VALUES (?, ?)",
		sqldb.Int(atoi(id)), sqldb.Text(u)); err != nil {
		if sqldb.IsUniqueViolation(err) {
			return httpd.HTML("<html><body>already granted</body></html>")
		}
		return httpd.ServerError(err.Error())
	}
	return httpd.HTML("<html><body>granted</body></html>")
}

// movephotoBuggy moves a photo to another album. The bug: the photo's
// permission entries are deleted by the move.
func (a *App) movephotoBuggy(c *app.Ctx) *httpd.Response {
	id, album := c.Req.Param("id"), c.Req.Param("album")
	if id == "" || album == "" {
		return httpd.NotFound("missing fields")
	}
	if _, err := c.Query("UPDATE photos SET album_id = ? WHERE photo_id = ?",
		sqldb.Int(atoi(album)), sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	// BUG: permissions do not survive the move.
	if _, err := c.Query("DELETE FROM perms WHERE item_id = ?", sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	return httpd.HTML("<html><body>moved</body></html>")
}

// MovephotoFixed is the patched movephoto.php.
func (a *App) MovephotoFixed() app.Version {
	return app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		id, album := c.Req.Param("id"), c.Req.Param("album")
		if id == "" || album == "" {
			return httpd.NotFound("missing fields")
		}
		if _, err := c.Query("UPDATE photos SET album_id = ? WHERE photo_id = ?",
			sqldb.Int(atoi(album)), sqldb.Int(atoi(id))); err != nil {
			return httpd.ServerError(err.Error())
		}
		return httpd.HTML("<html><body>moved</body></html>")
	}, Note: "fix: keep permissions across moves"}
}

// resizeBuggy regenerates a photo's thumbnail. The bug: the derivative is
// written corrupted.
func (a *App) resizeBuggy(c *app.Ctx) *httpd.Response {
	id := c.Req.Param("id")
	if id == "" {
		return httpd.NotFound("missing id")
	}
	// BUG: the "scaler" writes garbage instead of a derivative of data.
	if _, err := c.Query("UPDATE photos SET thumb = ? WHERE photo_id = ?",
		sqldb.Text("corrupt(#garbage#)"), sqldb.Int(atoi(id))); err != nil {
		return httpd.ServerError(err.Error())
	}
	return httpd.HTML("<html><body>resized</body></html>")
}

// ResizeFixed is the patched resize.php: the thumbnail is correctly
// derived from the image data.
func (a *App) ResizeFixed() app.Version {
	return app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		id := c.Req.Param("id")
		if id == "" {
			return httpd.NotFound("missing id")
		}
		res, err := c.Query("SELECT data FROM photos WHERE photo_id = ?", sqldb.Int(atoi(id)))
		if err != nil || res.Empty() {
			return httpd.NotFound("no such photo")
		}
		if _, err := c.Query("UPDATE photos SET thumb = ? WHERE photo_id = ?",
			sqldb.Text(Thumb(res.FirstValue().AsText())), sqldb.Int(atoi(id))); err != nil {
			return httpd.ServerError(err.Error())
		}
		return httpd.HTML("<html><body>resized</body></html>")
	}, Note: "fix: derive the thumbnail from the image data"}
}

func atoi(s string) int64 {
	var n int64
	fmt.Sscanf(s, "%d", &n)
	return n
}
