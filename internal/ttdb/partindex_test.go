package ttdb

import (
	"testing"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

func piExec(t *testing.T, db *DB, sql string, params ...sqldb.Value) *Record {
	t.Helper()
	_, rec, err := db.Exec(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return rec
}

func openPartDB(t *testing.T) *DB {
	t.Helper()
	db := Open(&vclock.Clock{})
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	piExec(t, db, "CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)")
	return db
}

func TestParsePartition(t *testing.T) {
	cases := []struct {
		in   string
		want Partition
		ok   bool
	}{
		{"notes/*", WholeTable("notes"), true},
		{"notes/owner=s:alice", Partition{Table: "notes", Column: "owner", Key: "s:alice"}, true},
		{"notes/owner=s:a=b/c", Partition{Table: "notes", Column: "owner", Key: "s:a=b/c"}, true},
		{"nosep", Partition{}, false},
		{"/owner=s:x", Partition{}, false},
		{"notes/owner", Partition{}, false},
	}
	for _, c := range cases {
		got, ok := ParsePartition(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParsePartition(%q) = %+v, %v; want %+v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	// Round trip through String.
	for _, p := range []Partition{WholeTable("t"), {Table: "t", Column: "c", Key: "s:k"}} {
		got, ok := ParsePartition(p.String())
		if !ok || got != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), got, ok)
		}
	}
}

func TestPartitionSetOverlaps(t *testing.T) {
	mk := func(ps ...Partition) *PartitionSet {
		s := NewPartitionSet()
		s.AddAll(ps)
		return s
	}
	alice := Partition{Table: "notes", Column: "owner", Key: "s:alice"}
	bob := Partition{Table: "notes", Column: "owner", Key: "s:bob"}
	other := Partition{Table: "pages", Column: "title", Key: "s:Main"}

	if !mk(alice).Overlaps(mk(alice)) {
		t.Error("same partition must overlap")
	}
	if mk(alice).Overlaps(mk(bob)) {
		t.Error("disjoint keys must not overlap")
	}
	if mk(alice).Overlaps(mk(other)) {
		t.Error("different tables must not overlap")
	}
	if !mk(WholeTable("notes")).Overlaps(mk(bob)) || !mk(bob).Overlaps(mk(WholeTable("notes"))) {
		t.Error("whole table must overlap keyed partitions of the table")
	}
	if mk(WholeTable("notes")).Overlaps(mk(other)) {
		t.Error("whole table must not overlap other tables")
	}
	if mk(alice).Overlaps(nil) || mk(alice).Overlaps(NewPartitionSet()) {
		t.Error("empty/nil set never overlaps")
	}
}

func TestPartitionRowsSince(t *testing.T) {
	db := openPartDB(t)
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (1, 'alice', 'a1')")
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (2, 'bob', 'b1')")
	rec := piExec(t, db, "UPDATE notes SET body = 'a2' WHERE owner = 'alice'")

	alice := Partition{Table: "notes", Column: "owner", Key: sqldb.Text("alice").Key()}
	bob := Partition{Table: "notes", Column: "owner", Key: sqldb.Text("bob").Key()}

	rows, err := db.PartitionRowsSince(alice, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].AsInt() != 1 {
		t.Fatalf("alice rows = %v, want [1]", rows)
	}
	rows, _ = db.PartitionRowsSince(bob, 0)
	if len(rows) != 1 || rows[0].AsInt() != 2 {
		t.Fatalf("bob rows = %v, want [2]", rows)
	}
	// Time filtering: nothing in alice's partition after the update.
	rows, _ = db.PartitionRowsSince(alice, rec.Time+1)
	if len(rows) != 0 {
		t.Fatalf("rows after last event = %v, want none", rows)
	}
	// Whole-table query unions both partitions.
	rows, _ = db.PartitionRowsSince(WholeTable("notes"), 0)
	if len(rows) != 2 {
		t.Fatalf("whole-table rows = %v, want 2", rows)
	}
	if _, err := db.PartitionRowsSince(WholeTable("missing"), 0); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestRollbackPartition(t *testing.T) {
	db := openPartDB(t)
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (1, 'alice', 'clean')")
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (2, 'bob', 'bob-clean')")
	preAttack := db.Clock().Now()
	// The "attack": corrupt alice's note and add a second one.
	piExec(t, db, "UPDATE notes SET body = 'PWNED' WHERE id = 1")
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (3, 'alice', 'spam')")

	if _, err := db.RollbackPartition(WholeTable("notes"), preAttack+1); err == nil {
		t.Fatal("RollbackPartition outside repair must fail")
	}

	gen, err := db.BeginRepair()
	if err != nil {
		t.Fatal(err)
	}
	alice := Partition{Table: "notes", Column: "owner", Key: sqldb.Text("alice").Key()}
	changed, err := db.RollbackPartition(alice, preAttack+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("rollback should report changed partitions")
	}
	// In the repair generation alice's note is clean again and the spam
	// row is gone; bob is untouched.
	res, _, err := db.ReExec("SELECT id, body FROM notes WHERE owner = 'alice'", nil, db.Clock().Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "clean" {
		t.Fatalf("repair-gen alice rows = %v, want one clean row", res.Rows)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	if db.CurrentGen() != gen {
		t.Fatalf("gen = %d, want %d", db.CurrentGen(), gen)
	}
	res, _, err = db.Exec("SELECT body FROM notes WHERE owner = 'bob'")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str != "bob-clean" {
		t.Fatalf("bob rows after repair = %v (%v)", res, err)
	}
}

func TestPartitionIndexPrunedByGC(t *testing.T) {
	db := openPartDB(t)
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (1, 'alice', 'a1')")
	horizon := db.Clock().Now() + 1
	piExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (2, 'alice', 'a2')")
	if err := db.GC(horizon); err != nil {
		t.Fatal(err)
	}
	alice := Partition{Table: "notes", Column: "owner", Key: sqldb.Text("alice").Key()}
	rows, err := db.PartitionRowsSince(alice, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].AsInt() != 2 {
		t.Fatalf("post-GC rows = %v, want [2]", rows)
	}
}
