// Package attacks drives the six attack scenarios of the paper's §8.2
// (Table 2/Table 3) against a GoWiki deployment, together with the
// multi-user workload around them.
//
// Each scenario has three parts: Setup (the attacker's preparation),
// Trigger (what happens when a victim is exposed), and Repair (how the
// administrator initiates recovery — retroactive patching for the five
// software vulnerabilities, visit undo for the ACL mistake). The workload
// driver (internal/workload) composes these with the login/read/edit
// background activity of §8.2.
package attacks

import (
	"fmt"
	"net/url"
	"strings"

	"warp/internal/browser"
	"warp/internal/core"
	"warp/internal/webapp/wiki"
)

// User is one simulated wiki user with their browser.
type User struct {
	Name string
	B    *browser.Browser
}

// Env is the environment a scenario runs in.
type Env struct {
	W   *core.Warp
	App *wiki.App

	Admin    *User
	Attacker *User
	Victims  []*User
	Others   []*User

	// TargetPage is the shared page attacks corrupt ("TeamPage").
	TargetPage string

	// UndoClient/UndoVisit identify the page visit to cancel for
	// admin-initiated repair scenarios.
	UndoClient string
	UndoVisit  int64
}

// AllUsers returns every user in a stable order.
func (e *Env) AllUsers() []*User {
	out := []*User{e.Admin, e.Attacker}
	out = append(out, e.Victims...)
	out = append(out, e.Others...)
	return out
}

// Scenario is one §8.2 attack scenario.
type Scenario struct {
	Name          string // Table 2/3 row name
	InitialRepair string // "Retroactive patching" or "Admin-initiated"

	// Setup runs the attacker's preparation (after everyone logged in).
	Setup func(e *Env) error
	// Trigger exposes one victim to the attack.
	Trigger func(e *Env, victim *User) error
	// Repair initiates recovery.
	Repair func(e *Env) (*core.Report, error)
}

// q URL-encodes a query component.
func q(s string) string { return url.QueryEscape(s) }

// appendPayload is the XSS payload used by the reflected and stored XSS
// scenarios: executed in the victim's browser, it appends attacker text to
// the shared target page using the victim's session (§1's example attack).
func appendPayload(target string) string {
	return `<script>warpjs: post /append.php title=` + target + `&text=PWNED-by-attacker</script>`
}

// retroPatchRepair returns a Repair function applying the Table 2 patch
// for a vulnerability kind.
func retroPatchRepair(kind string) func(e *Env) (*core.Report, error) {
	return func(e *Env) (*core.Report, error) {
		v, ok := e.App.VulnerabilityByKind(kind)
		if !ok {
			return nil, fmt.Errorf("attacks: unknown vulnerability %q", kind)
		}
		return e.W.RetroPatch(v.File, v.Patch)
	}
}

// Scenarios returns the six §8.2 scenarios.
func Scenarios() []*Scenario {
	return []*Scenario{
		ReflectedXSS(),
		StoredXSS(),
		CSRF(),
		Clickjacking(),
		SQLInjection(),
		ACLError(),
	}
}

// ByName finds a scenario.
func ByName(name string) (*Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// ReflectedXSS: the attacker lures victims to a page that frames the
// vulnerable installer URL; the reflected payload runs with the victim's
// session.
func ReflectedXSS() *Scenario {
	return &Scenario{
		Name:          "Reflected XSS",
		InitialRepair: "Retroactive patching",
		Setup:         func(e *Env) error { return nil },
		Trigger: func(e *Env, victim *User) error {
			reflURL := "/config/index.php?wgDBname=" + q(appendPayload(e.TargetPage))
			html := `<html><body>win a prize!<iframe src="` + reflURL + `"></iframe></body></html>`
			victim.B.OpenAttackerPage("http://evil.example/prize", html)
			return nil
		},
		Repair: retroPatchRepair("Reflected XSS"),
	}
}

// StoredXSS: the attacker stores the payload through the vulnerable block
// tool; victims view the block log.
func StoredXSS() *Scenario {
	return &Scenario{
		Name:          "Stored XSS",
		InitialRepair: "Retroactive patching",
		Setup: func(e *Env) error {
			e.Attacker.B.Open("/block.php?ip=" + q(appendPayload(e.TargetPage)))
			return nil
		},
		Trigger: func(e *Env, victim *User) error {
			victim.B.Open("/blocklog.php")
			return nil
		},
		Repair: retroPatchRepair("Stored XSS"),
	}
}

// CSRF: the attacker's page silently logs the victim in under the
// attacker's account; the victim's subsequent edits are misattributed.
func CSRF() *Scenario {
	return &Scenario{
		Name:          "CSRF",
		InitialRepair: "Retroactive patching",
		Setup:         func(e *Env) error { return nil },
		Trigger: func(e *Env, victim *User) error {
			html := `<html><body>cute kittens<script>warpjs: post /login.php user=` +
				e.Attacker.Name + `&password=pw-` + e.Attacker.Name + `</script></body></html>`
			victim.B.OpenAttackerPage("http://evil.example/kittens", html)
			return nil
		},
		Repair: retroPatchRepair("CSRF"),
	}
}

// Clickjacking: the attacker's page frames the wiki edit form invisibly;
// the victim interacts with it believing it is the attacker's game.
func Clickjacking() *Scenario {
	return &Scenario{
		Name:          "Clickjacking",
		InitialRepair: "Retroactive patching",
		Setup:         func(e *Env) error { return nil },
		Trigger: func(e *Env, victim *User) error {
			html := `<html><body>click the bouncing cow!<iframe src="/edit.php?title=` +
				q(e.TargetPage) + `"></iframe></body></html>`
			p := victim.B.OpenAttackerPage("http://evil.example/cow", html)
			if len(p.Frames()) == 0 {
				return fmt.Errorf("attacks: clickjacking frame did not load")
			}
			frame := p.Frames()[0]
			if frame.Blocked {
				return fmt.Errorf("attacks: frame blocked before patch")
			}
			if err := frame.TypeInto("content", "mooo from "+victim.Name); err != nil {
				return err
			}
			_, err := frame.Submit(0)
			return err
		},
		Repair: retroPatchRepair("Clickjacking"),
	}
}

// SQLInjection: the attacker's page makes victims' browsers hit the
// vulnerable maintenance endpoint; the injected UPDATE appends attack text
// to every page (§8.5's scaling note).
func SQLInjection() *Scenario {
	injection := "en', content = content || '" + "\nSQLI-ATTACK"
	return &Scenario{
		Name:          "SQL injection",
		InitialRepair: "Retroactive patching",
		Setup:         func(e *Env) error { return nil },
		Trigger: func(e *Env, victim *User) error {
			html := `<html><body>free stuff<script>warpjs: get /maintenance.php?thelang=` +
				q(injection) + `</script></body></html>`
			victim.B.OpenAttackerPage("http://evil.example/free", html)
			return nil
		},
		Repair: retroPatchRepair("SQL injection"),
	}
}

// ACLError: the administrator grants the wrong user access to a protected
// page; the user exploits it; the administrator undoes the granting visit.
func ACLError() *Scenario {
	return &Scenario{
		Name:          "ACL error",
		InitialRepair: "Admin-initiated",
		Setup: func(e *Env) error {
			// The admin grants the attacker (here: the unprivileged user)
			// access to the protected page, by mistake.
			form := e.Admin.B.Open("/acl.php?title=Restricted")
			if err := form.TypeInto("user", e.Attacker.Name); err != nil {
				return err
			}
			post, err := form.Submit(0)
			if err != nil {
				return err
			}
			e.UndoClient = e.Admin.B.ClientID
			e.UndoVisit = post.Log.VisitID
			return nil
		},
		Trigger: func(e *Env, victim *User) error {
			// The "victim" role is unused; the unprivileged user exploits
			// the mistaken grant instead.
			return nil
		},
		Repair: func(e *Env) (*core.Report, error) {
			return e.W.UndoVisit(e.UndoClient, e.UndoVisit, true)
		},
	}
}

// ExploitACL makes the unprivileged user use the mistaken grant (called by
// the workload after Setup).
func ExploitACL(e *Env) error {
	p := e.Attacker.B.Open("/edit.php?title=Restricted")
	if p.DOM == nil || !strings.Contains(p.DOM.Render(), "textarea") {
		return fmt.Errorf("attacks: exploit did not reach the edit form")
	}
	if err := p.TypeInto("content", "I should not be able to write this"); err != nil {
		return err
	}
	_, err := p.Submit(0)
	return err
}
