// Package dom provides the HTML document model used by WARP's browser
// simulator: an HTML parser for the markup the web applications emit, a
// mutable DOM tree, and the XPath subset WARP's browser extension uses to
// name event targets during DOM-level record and replay (paper §5.2).
package dom

import (
	"sort"
	"strings"
)

// NodeType distinguishes element and text nodes.
type NodeType uint8

// Node types.
const (
	ElementNode NodeType = iota
	TextNode
)

// Attr is one HTML attribute. Order is preserved.
type Attr struct {
	Key string
	Val string
}

// Node is one DOM node. The zero value is not useful; use NewElement,
// NewText, or Parse.
type Node struct {
	Type     NodeType
	Tag      string // lower-case element name; "#document" for the root
	Text     string // text nodes only
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// NewElement returns a detached element node.
func NewElement(tag string, attrs ...Attr) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag), Attrs: attrs}
}

// NewText returns a detached text node.
func NewText(text string) *Node {
	return &Node{Type: TextNode, Text: text}
}

// NewDocument returns an empty document root.
func NewDocument() *Node {
	return &Node{Type: ElementNode, Tag: "#document"}
}

// Attr returns the value of an attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or a default.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(key, val string) {
	for i, a := range n.Attrs {
		if a.Key == key {
			n.Attrs[i].Val = val
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Key: key, Val: val})
}

// AppendChild attaches child as the last child of n.
func (n *Node) AppendChild(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// Remove detaches n from its parent. Detaching a parentless node is a
// no-op.
func (n *Node) Remove() {
	p := n.Parent
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
}

// SetText replaces n's children with a single text node. For form controls
// like textarea this is the field value.
func (n *Node) SetText(text string) {
	for _, c := range n.Children {
		c.Parent = nil
	}
	n.Children = nil
	n.AppendChild(NewText(text))
}

// InnerText concatenates all descendant text.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.innerText(&b)
	return b.String()
}

func (n *Node) innerText(b *strings.Builder) {
	if n.Type == TextNode {
		b.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		c.innerText(b)
	}
}

// Walk visits n and every descendant in document order. Returning false
// from visit stops the walk.
func (n *Node) Walk(visit func(*Node) bool) bool {
	if !visit(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(visit) {
			return false
		}
	}
	return true
}

// ElementsByTag returns all descendant elements with the given tag, in
// document order.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// ByID returns the first descendant element whose id attribute matches, or
// nil.
func (n *Node) ByID(id string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode {
			if v, ok := c.Attr("id"); ok && v == id {
				found = c
				return false
			}
		}
		return true
	})
	return found
}

// ByName returns the first descendant element whose name attribute
// matches, or nil.
func (n *Node) ByName(name string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode {
			if v, ok := c.Attr("name"); ok && v == name {
				found = c
				return false
			}
		}
		return true
	})
	return found
}

// FormValues collects the submittable fields of a form element: input
// (name/value), textarea (name/inner text), and select (name/option with
// selected attribute, falling back to the first option). Keys are returned
// sorted for determinism.
func (n *Node) FormValues() map[string]string {
	out := make(map[string]string)
	n.Walk(func(c *Node) bool {
		if c.Type != ElementNode {
			return true
		}
		name, ok := c.Attr("name")
		if !ok || name == "" {
			return true
		}
		switch c.Tag {
		case "input":
			typ := strings.ToLower(c.AttrOr("type", "text"))
			if typ == "checkbox" || typ == "radio" {
				if _, checked := c.Attr("checked"); !checked {
					return true
				}
			}
			if typ == "submit" || typ == "button" {
				return true
			}
			out[name] = c.AttrOr("value", "")
		case "textarea":
			out[name] = c.InnerText()
		case "select":
			opts := c.ElementsByTag("option")
			val := ""
			for i, o := range opts {
				if _, sel := o.Attr("selected"); sel || i == 0 {
					val = o.AttrOr("value", o.InnerText())
					if sel {
						break
					}
				}
			}
			out[name] = val
		}
		return true
	})
	return out
}

// SortedKeys returns the sorted keys of a string map (determinism helper
// for callers serializing form values).
func SortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// detached.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Text: n.Text}
	c.Attrs = append([]Attr{}, n.Attrs...)
	for _, child := range n.Children {
		cc := child.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// voidElements have no closing tag.
var voidElements = map[string]bool{
	"br": true, "hr": true, "img": true, "input": true, "meta": true,
	"link": true, "base": true, "area": true, "col": true, "embed": true,
	"source": true, "track": true, "wbr": true,
}

// rawTextElements hold raw (unparsed) character data.
var rawTextElements = map[string]bool{"script": true, "style": true, "textarea": true, "title": true}

// Render serializes the subtree to HTML.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch {
	case n.Type == TextNode:
		if n.Parent != nil && rawTextElements[n.Parent.Tag] && n.Parent.Tag != "textarea" && n.Parent.Tag != "title" {
			b.WriteString(n.Text) // script/style render raw
		} else {
			b.WriteString(Escape(n.Text))
		}
	case n.Tag == "#document":
		for _, c := range n.Children {
			c.render(b)
		}
	default:
		b.WriteString("<")
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteString(" ")
			b.WriteString(a.Key)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Val))
			b.WriteString(`"`)
		}
		if voidElements[n.Tag] {
			b.WriteString("/>")
			return
		}
		b.WriteString(">")
		for _, c := range n.Children {
			c.render(b)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteString(">")
	}
}

// Escape HTML-escapes text content. It is also the htmlspecialchars
// equivalent the patched applications use to sanitize output (paper
// Table 2 fixes).
func Escape(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	return escapeReplacer.Replace(s)
}

// EscapeAttr escapes text for use inside a double-quoted attribute.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"") {
		return s
	}
	return escapeAttrReplacer.Replace(s)
}

// Unescape reverses Escape/EscapeAttr for the entities the parser knows.
func Unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return unescapeReplacer.Replace(s)
}

// The replacers are package-level: a strings.Replacer builds its
// matching machine once and is safe for concurrent use, and Escape runs
// for every text node of every rendered page.
var (
	escapeReplacer     = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	escapeAttrReplacer = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	unescapeReplacer   = strings.NewReplacer("&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'", "&amp;", "&")
)
