package sqldb

import (
	"sync"
	"sync/atomic"
)

// DefaultStmtCacheSize bounds a statement cache that was created with a
// non-positive size.
const DefaultStmtCacheSize = 1024

// CachedStmt is one prepared statement: the parsed AST, its canonical
// SQL rendering (computed once — query records reuse it instead of
// re-stringifying the AST per execution), and the compiled plan of the
// engine that last executed it. The statement is shared and must not be
// mutated; every execution path clones before rewriting.
type CachedStmt struct {
	src       string
	Stmt      Statement
	canonical string
	plan      atomic.Pointer[stmtPlan]
	aux       atomic.Pointer[any]

	prev, next *CachedStmt // LRU list, most recent at head
}

// NewCachedStmt wraps an already-parsed statement in a standalone
// handle (not registered in any cache), so rewriting layers can reuse
// the plan-cache machinery for statements they construct themselves.
func NewCachedStmt(stmt Statement) *CachedStmt {
	return &CachedStmt{Stmt: stmt, canonical: stmt.String()}
}

// Aux returns the handle's auxiliary attachment, or nil. The slot lets
// a layer above the engine (the time-travel rewriter) cache derived
// state — e.g. its augmented statement — alongside the parsed handle.
func (cs *CachedStmt) Aux() any {
	p := cs.aux.Load()
	if p == nil {
		return nil
	}
	return *p
}

// SetAux replaces the handle's auxiliary attachment.
func (cs *CachedStmt) SetAux(v any) { cs.aux.Store(&v) }

// Source returns the SQL text the statement was parsed from.
func (cs *CachedStmt) Source() string { return cs.src }

// Canonical returns the statement's canonical SQL rendering, equal to
// Stmt.String() but computed once for the life of the cache entry.
func (cs *CachedStmt) Canonical() string { return cs.canonical }

// StmtCache is a bounded, concurrency-safe LRU cache of prepared
// statements keyed by SQL source text. One cache is shared by every
// layer of a deployment that round-trips SQL text — normal execution,
// WAL replay, and repair re-execution — so each distinct query form is
// parsed (and its canonical string built) once.
type StmtCache struct {
	mu         sync.Mutex
	max        int
	m          map[string]*CachedStmt
	head, tail *CachedStmt
	hits       uint64
	misses     uint64
}

// NewStmtCache returns an empty cache bounded to max entries
// (DefaultStmtCacheSize when max <= 0).
func NewStmtCache(max int) *StmtCache {
	if max <= 0 {
		max = DefaultStmtCacheSize
	}
	return &StmtCache{max: max, m: make(map[string]*CachedStmt, 64)}
}

// Get returns the cached statement for src, parsing and inserting it on
// miss. Parse errors are returned and not cached.
func (c *StmtCache) Get(src string) (*CachedStmt, error) {
	c.mu.Lock()
	if cs, ok := c.m[src]; ok {
		c.hits++
		c.moveToFront(cs)
		c.mu.Unlock()
		return cs, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: misses are the slow path and must not
	// serialize behind each other. A racing duplicate insert is resolved
	// below by keeping the first entry.
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	cs := &CachedStmt{src: src, Stmt: stmt, canonical: stmt.String()}

	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.m[src]; ok {
		c.moveToFront(prior)
		return prior, nil
	}
	c.m[src] = cs
	c.pushFront(cs)
	for len(c.m) > c.max {
		c.evictTail()
	}
	return cs, nil
}

// Len returns the number of cached statements.
func (c *StmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cache's cumulative hit and miss counts.
func (c *StmtCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// pushFront links cs as the most recently used entry. Caller holds mu.
func (c *StmtCache) pushFront(cs *CachedStmt) {
	cs.prev = nil
	cs.next = c.head
	if c.head != nil {
		c.head.prev = cs
	}
	c.head = cs
	if c.tail == nil {
		c.tail = cs
	}
}

// moveToFront refreshes cs's recency. Caller holds mu.
func (c *StmtCache) moveToFront(cs *CachedStmt) {
	if c.head == cs {
		return
	}
	// Unlink.
	if cs.prev != nil {
		cs.prev.next = cs.next
	}
	if cs.next != nil {
		cs.next.prev = cs.prev
	}
	if c.tail == cs {
		c.tail = cs.prev
	}
	c.pushFront(cs)
}

// evictTail drops the least recently used entry. Caller holds mu.
func (c *StmtCache) evictTail() {
	lru := c.tail
	if lru == nil {
		return
	}
	delete(c.m, lru.src)
	c.tail = lru.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
	lru.prev, lru.next = nil, nil
}
