package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// WAL frame layout: a fixed header followed by the payload.
//
//	[4 bytes] payload length (little-endian uint32)
//	[4 bytes] CRC-32C of the payload
//	[n bytes] payload; payload[0] is the record type
//
// A record is valid only if the full frame is present and the checksum
// matches. Readers stop at the first invalid frame: everything before it
// is a durable prefix, everything at and after it is discarded (the
// classic torn-tail rule). Frames never span segments.
const (
	frameHeaderLen = 8
	// maxFramePayload bounds a single record; larger lengths are treated
	// as corruption rather than attempted allocations.
	maxFramePayload = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame writes one frame to w and returns the on-disk size.
func appendFrame(w *bufio.Writer, payload []byte) (int64, error) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(frameHeaderLen + len(payload)), nil
}

// readSegment parses every valid frame of one segment file in order.
// clean is false when the segment ends in a torn or corrupt tail; the
// frames consumed before that point are still valid, and validLen is
// the byte length of that valid prefix (recovery truncates a torn
// last-of-chain segment to it, so the chain stays appendable). When fn
// returns an error, validLen covers the frames before the rejected one.
func readSegment(path string, fn func(payload []byte) error) (validLen int64, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return int64(off), false, nil // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 1 || n > maxFramePayload || n > len(data)-off-frameHeaderLen {
			return int64(off), false, nil // torn or corrupt length
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off), false, nil // checksum failure
		}
		if err := fn(payload); err != nil {
			return int64(off), true, err
		}
		off += frameHeaderLen + n
	}
	return int64(off), true, nil
}

// walWriter owns one open segment file. Frames accumulate in an
// explicit user-space buffer that supports *prefix* flushing: flushTo
// hands the OS only bytes up to a given extent, which is what lets the
// store bound exactly which records an fsync can make durable (the
// cross-shard causality barrier — see Store.syncAll).
type walWriter struct {
	path    string
	f       *os.File
	buf     []byte
	size    int64 // bytes appended to this segment (flushed + buffered)
	flushed int64 // bytes handed to the OS
}

func openSegment(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating WAL segment: %w", err)
	}
	return &walWriter{path: path, f: f}, nil
}

// append buffers one frame; it does not flush or sync.
func (w *walWriter) append(payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.size += int64(frameHeaderLen + len(payload))
	return nil
}

// flushTo pushes buffered frames to the OS up to byte extent limit
// (segment coordinates); bytes past it stay in user space, invisible to
// any fsync.
func (w *walWriter) flushTo(limit int64) error {
	if limit > w.size {
		limit = w.size
	}
	n := limit - w.flushed
	if n <= 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf[:n]); err != nil {
		return err
	}
	w.buf = w.buf[:copy(w.buf, w.buf[n:])]
	w.flushed = limit
	return nil
}

// flush pushes every buffered frame to the OS.
func (w *walWriter) flush() error { return w.flushTo(w.size) }

// sync flushes and fsyncs the segment.
func (w *walWriter) sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close finalizes the segment: flush, fsync, close.
func (w *walWriter) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// abandon closes the file descriptor without flushing user-space
// buffers: the crash simulation. Buffered frames are lost exactly as
// they would be in a real crash.
func (w *walWriter) abandon() { _ = w.f.Close() }
