package store

import (
	"os"
	"time"

	"warp/internal/obs"
)

// Durability-path instrumentation (docs/observability.md). The byte and
// operation counters are unconditional atomic adds on paths that are
// already syscall-bound; the latency histograms read the clock only
// when obs is enabled.
var (
	// walAppendHist observes AppendGroup latency as the caller sees it —
	// frame encode, shard append, and (under SyncEveryAppend) the
	// group-commit wait.
	walAppendHist = obs.NewHistogram("warp_store_wal_append_seconds")
	// walFsyncHist observes each physical WAL fsync (group-commit leader
	// syncs and prefix-flush syncs alike).
	walFsyncHist = obs.NewHistogram("warp_store_wal_fsync_seconds")
	// walAppends / walAppendBytes count appended records and their
	// framed bytes.
	walAppends     = obs.NewCounter("warp_store_wal_appends_total")
	walAppendBytes = obs.NewCounter("warp_store_wal_append_bytes_total")
	// walFsyncs counts physical WAL fsyncs.
	walFsyncs = obs.NewCounter("warp_store_wal_fsyncs_total")
	// ckptHist observes whole-checkpoint duration (rotation, build,
	// manifest install, prune); ckptSectionHist observes each section the
	// builder streams (encode + chunk spill).
	ckptHist        = obs.NewHistogram("warp_store_checkpoint_seconds")
	ckptSectionHist = obs.NewHistogram("warp_store_checkpoint_section_seconds")
	// ckptTotal / ckptBytes count completed checkpoints and their delta
	// bytes.
	ckptTotal = obs.NewCounter("warp_store_checkpoints_total")
	ckptBytes = obs.NewCounter("warp_store_checkpoint_bytes_total")
)

// timedSync is the shared physical-fsync wrapper for the WAL shard sync
// paths.
func timedSync(f *os.File) error {
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	err := f.Sync()
	walFsyncs.Inc()
	if !start.IsZero() {
		walFsyncHist.Observe(time.Since(start))
	}
	return err
}
