package sqldb

import (
	"fmt"
	"strings"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow one trailing semicolon.
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input starting with %q", p.peek().text)
	}
	return stmt, nil
}

// MustParse parses src and panics on error. It is intended for statically
// known statements in application schemas and tests.
func MustParse(src string) Statement {
	stmt, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return stmt
}

type parser struct {
	toks      []token
	i         int
	src       string
	numParams int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errorf("expected %s, got %q", kw, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, got %q", op, p.peek().text)
	}
	return nil
}

// parseIdent accepts an identifier; non-reserved usage of keywords as
// identifiers is not supported.
func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "ALTER":
		return p.parseAlter()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, p.errorf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseSelect() (Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	s.Distinct = p.acceptKeyword("DISTINCT")
	for {
		if p.acceptOp("*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.peek().kind == tokIdent {
				item.Alias = p.advance().text
			}
			s.Items = append(s.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		s.Table = name
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			o := OrderBy{Expr: e}
			if p.acceptKeyword("DESC") {
				o.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, o)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &Insert{Table: name}
	if p.acceptOp("(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	ret, err := p.parseReturning()
	if err != nil {
		return nil, err
	}
	s.Returning = ret
	return s, nil
}

func (p *parser) parseReturning() ([]string, error) {
	if !p.acceptKeyword("RETURNING") {
		return nil, nil
	}
	var cols []string
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if !p.acceptOp(",") {
			return cols, nil
		}
	}
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &Update{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, Assignment{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	ret, err := p.parseReturning()
	if err != nil {
		return nil, err
	}
	s.Returning = ret
	return s, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &Delete{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	ret, err := p.parseReturning()
	if err != nil {
		return nil, err
	}
	s.Returning = ret
	return s, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("UNIQUE"):
		// CREATE UNIQUE INDEX is accepted and treated as a plain index;
		// uniqueness is declared in CREATE TABLE.
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseIfNotExists() (bool, error) {
	if !p.acceptKeyword("IF") {
		return false, nil
	}
	if !p.acceptKeyword("NOT") {
		return false, p.errorf("expected NOT EXISTS after IF")
	}
	if err := p.expectKeyword("EXISTS"); err != nil {
		return false, err
	}
	return true, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &CreateTable{Table: name, IfNotExists: ine}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokKeyword && (t.text == "PRIMARY" || t.text == "UNIQUE" || t.text == "CONSTRAINT"):
			u, err := p.parseTableConstraint()
			if err != nil {
				return nil, err
			}
			s.Uniques = append(s.Uniques, u)
		default:
			col, pk, uniq, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			if pk {
				s.Uniques = append(s.Uniques, UniqueConstraint{Columns: []string{col.Name}, Primary: true})
			}
			if uniq {
				s.Uniques = append(s.Uniques, UniqueConstraint{Columns: []string{col.Name}})
			}
			s.Columns = append(s.Columns, col)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseTableConstraint() (UniqueConstraint, error) {
	var u UniqueConstraint
	if p.acceptKeyword("CONSTRAINT") {
		name, err := p.parseIdent()
		if err != nil {
			return u, err
		}
		u.Name = name
	}
	switch {
	case p.acceptKeyword("PRIMARY"):
		if err := p.expectKeyword("KEY"); err != nil {
			return u, err
		}
		u.Primary = true
	case p.acceptKeyword("UNIQUE"):
	default:
		return u, p.errorf("expected PRIMARY KEY or UNIQUE constraint")
	}
	if err := p.expectOp("("); err != nil {
		return u, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return u, err
		}
		u.Columns = append(u.Columns, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return u, err
	}
	return u, nil
}

func (p *parser) parseColumnDef() (col ColumnDef, pk, uniq bool, err error) {
	name, err := p.parseIdent()
	if err != nil {
		return col, false, false, err
	}
	col.Name = name
	t := p.peek()
	if t.kind != tokKeyword {
		return col, false, false, p.errorf("expected column type, got %q", t.text)
	}
	switch t.text {
	case "INTEGER", "INT":
		col.Type = KindInt
		p.advance()
	case "TEXT":
		col.Type = KindText
		p.advance()
	case "VARCHAR":
		col.Type = KindText
		p.advance()
		// Optional length: VARCHAR(255). The length is parsed and ignored.
		if p.acceptOp("(") {
			if p.peek().kind != tokInt {
				return col, false, false, p.errorf("expected length in VARCHAR(n)")
			}
			p.advance()
			if err := p.expectOp(")"); err != nil {
				return col, false, false, err
			}
		}
	case "BOOLEAN", "BOOL":
		col.Type = KindBool
		p.advance()
	default:
		return col, false, false, p.errorf("unsupported column type %q", t.text)
	}
	for {
		switch {
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return col, false, false, err
			}
			col.NotNull = true
		case p.acceptKeyword("DEFAULT"):
			e, err := p.parsePrimary()
			if err != nil {
				return col, false, false, err
			}
			lit, ok := e.(*Literal)
			if !ok {
				return col, false, false, p.errorf("DEFAULT value must be a literal")
			}
			col.Default = lit
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return col, false, false, err
			}
			pk = true
		case p.acceptKeyword("UNIQUE"):
			uniq = true
		default:
			return col, pk, uniq, nil
		}
	}
}

func (p *parser) parseCreateIndex() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	col, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Column: col, IfNotExists: ine}, nil
}

func (p *parser) parseAlter() (Statement, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ADD"); err != nil {
		return nil, err
	}
	p.acceptKeyword("COLUMN")
	col, _, _, err := p.parseColumnDef()
	if err != nil {
		return nil, err
	}
	return &AlterTableAdd{Table: name, Column: col}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ie := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ie = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Table: name, IfExists: ie}, nil
}

//
// Expression parsing (precedence climbing).
//
// Precedence (low to high): OR, AND, NOT, comparison/IN/LIKE/IS,
// additive (+ - ||), multiplicative (* / %), unary minus, primary.
//

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, Operand: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.kind == tokOp && t.text == "=":
			op = OpEq
		case t.kind == tokOp && t.text == "!=":
			op = OpNe
		case t.kind == tokOp && t.text == "<":
			op = OpLt
		case t.kind == tokOp && t.text == "<=":
			op = OpLe
		case t.kind == tokOp && t.text == ">":
			op = OpGt
		case t.kind == tokOp && t.text == ">=":
			op = OpGe
		case t.kind == tokKeyword && t.text == "LIKE":
			op = OpLike
		case t.kind == tokKeyword && t.text == "IS":
			p.advance()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Expr: left, Not: not}
			continue
		case t.kind == tokKeyword && t.text == "IN":
			p.advance()
			in, err := p.parseInList(left, false)
			if err != nil {
				return nil, err
			}
			left = in
			continue
		case t.kind == tokKeyword && t.text == "BETWEEN":
			p.advance()
			rng, err := p.parseBetween(left)
			if err != nil {
				return nil, err
			}
			left = rng
			continue
		case t.kind == tokKeyword && t.text == "NOT":
			// Lookahead for NOT IN / NOT LIKE.
			if p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword {
				switch p.toks[p.i+1].text {
				case "IN":
					p.advance()
					p.advance()
					in, err := p.parseInList(left, true)
					if err != nil {
						return nil, err
					}
					left = in
					continue
				case "LIKE":
					p.advance()
					p.advance()
					right, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					left = &UnaryExpr{Op: OpNot, Operand: &BinaryExpr{Op: OpLike, Left: left, Right: right}}
					continue
				case "BETWEEN":
					p.advance()
					p.advance()
					rng, err := p.parseBetween(left)
					if err != nil {
						return nil, err
					}
					left = &UnaryExpr{Op: OpNot, Operand: rng}
					continue
				}
			}
			return left, nil
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

// parseBetween desugars `expr BETWEEN lo AND hi` into
// `(expr >= lo AND expr <= hi)` — the planner then serves it as an
// ordered index range like any other pair of bound conjuncts. The bounds
// parse at additive precedence so the separating AND is not consumed as
// a conjunction.
func (p *parser) parseBetween(left Expr) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{
		Op:    OpAnd,
		Left:  &BinaryExpr{Op: OpGe, Left: left, Right: lo},
		Right: &BinaryExpr{Op: OpLe, Left: left.CloneExpr(), Right: hi},
	}, nil
}

func (p *parser) parseInList(left Expr, not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &InExpr{Expr: left, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.kind == tokOp && t.text == "+":
			op = OpAdd
		case t.kind == tokOp && t.text == "-":
			op = OpSub
		case t.kind == tokOp && t.text == "||":
			op = OpConcat
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.kind == tokOp && t.text == "*":
			op = OpMul
		case t.kind == tokOp && t.text == "/":
			op = OpDiv
		case t.kind == tokOp && t.text == "%":
			op = OpMod
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, Operand: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		return Lit(Int(t.val)), nil
	case tokString:
		p.advance()
		return Lit(Text(t.str)), nil
	case tokParam:
		p.advance()
		e := &Param{Index: p.numParams}
		p.numParams++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return Lit(Null()), nil
		case "TRUE":
			p.advance()
			return Lit(Bool(true)), nil
		case "FALSE":
			p.advance()
			return Lit(Bool(false)), nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.advance()
		// Function call?
		if p.acceptOp("(") {
			fc := &FuncCall{Name: strings.ToUpper(t.text)}
			if p.acceptOp("*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptOp(")") {
				return fc, nil
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}
