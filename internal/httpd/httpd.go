// Package httpd provides the HTTP request/response model shared by WARP's
// browser simulator, HTTP server manager, and application runtime.
//
// WARP's components exchange requests in-process for determinism and
// speed — the paper's Apache + mod_php pipeline becomes direct calls — but
// the same types adapt to net/http so the wiki can be served to a real
// browser (cmd/warp-server).
//
// The WARP browser extension's ⟨client ID, visit ID, request ID⟩ headers
// (paper §5.1) are first-class fields here, as are cookies, which WARP
// tracks as a dependency channel between page visits.
package httpd

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strings"
)

// WARP extension header names, as sent by the browser extension (§5.1).
const (
	HeaderClientID  = "X-Warp-Client-Id"
	HeaderVisitID   = "X-Warp-Visit-Id"
	HeaderRequestID = "X-Warp-Request-Id"
)

// Request is one HTTP request as seen by the server.
type Request struct {
	Method  string // GET or POST
	Path    string // e.g. "/index.php"
	Query   url.Values
	Form    url.Values // POST form fields
	Cookies map[string]string
	Headers map[string]string

	// WARP browser extension identifiers (§5.1). ClientID is empty for
	// clients without the extension.
	ClientID  string
	VisitID   int64
	RequestID int64
}

// NewRequest builds a GET request for a raw URL ("/path?k=v").
func NewRequest(method, rawURL string) *Request {
	path, q := SplitURL(rawURL)
	return &Request{
		Method:  method,
		Path:    path,
		Query:   q,
		Form:    url.Values{},
		Cookies: map[string]string{},
		Headers: map[string]string{},
	}
}

// SplitURL splits "/path?query" into path and parsed query values.
func SplitURL(raw string) (string, url.Values) {
	path := raw
	q := url.Values{}
	if i := strings.IndexByte(raw, '?'); i >= 0 {
		path = raw[:i]
		if vals, err := url.ParseQuery(raw[i+1:]); err == nil {
			q = vals
		}
	}
	return path, q
}

// URLString reassembles the request target.
func (r *Request) URLString() string {
	if len(r.Query) == 0 {
		return r.Path
	}
	return r.Path + "?" + r.Query.Encode()
}

// Param returns a parameter by name, checking the query string first and
// then the form body, like PHP's $_REQUEST.
func (r *Request) Param(name string) string {
	if v := r.Query.Get(name); v != "" {
		return v
	}
	return r.Form.Get(name)
}

// Cookie returns a cookie value, or "".
func (r *Request) Cookie(name string) string { return r.Cookies[name] }

// Clone returns a deep copy of the request.
func (r *Request) Clone() *Request {
	c := &Request{
		Method:    r.Method,
		Path:      r.Path,
		Query:     url.Values{},
		Form:      url.Values{},
		Cookies:   map[string]string{},
		Headers:   map[string]string{},
		ClientID:  r.ClientID,
		VisitID:   r.VisitID,
		RequestID: r.RequestID,
	}
	for k, vs := range r.Query {
		c.Query[k] = append([]string{}, vs...)
	}
	for k, vs := range r.Form {
		c.Form[k] = append([]string{}, vs...)
	}
	for k, v := range r.Cookies {
		c.Cookies[k] = v
	}
	for k, v := range r.Headers {
		c.Headers[k] = v
	}
	return c
}

// Fingerprint hashes the parts of the request the server's behavior
// depends on. The repair controller compares fingerprints to decide
// whether a replayed browser issued the same request as the original
// execution (§5.3).
func (r *Request) Fingerprint() uint64 {
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	write(r.Method)
	write(r.Path)
	write(r.Query.Encode())
	write(r.Form.Encode())
	keys := make([]string, 0, len(r.Cookies))
	for k := range r.Cookies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		write(k)
		write(r.Cookies[k])
	}
	return h.Sum64()
}

// ApproxBytes estimates the logged size of the request (Table 6
// accounting).
func (r *Request) ApproxBytes() int {
	n := len(r.Method) + len(r.Path) + len(r.Query.Encode()) + len(r.Form.Encode()) + len(r.ClientID) + 16
	for k, v := range r.Cookies {
		n += len(k) + len(v)
	}
	for k, v := range r.Headers {
		n += len(k) + len(v)
	}
	return n
}

// Response is one HTTP response.
type Response struct {
	Status  int
	Body    string
	Headers map[string]string
	// SetCookies are cookies to set; ClearCookies are cookie names to
	// delete. WARP watches these to track the cookie dependency channel
	// (§5.3).
	SetCookies   map[string]string
	ClearCookies []string
}

// NewResponse returns an empty 200 response.
func NewResponse() *Response {
	return &Response{Status: 200, Headers: map[string]string{}, SetCookies: map[string]string{}}
}

// HTML builds a 200 text/html response.
func HTML(body string) *Response {
	r := NewResponse()
	r.Headers["Content-Type"] = "text/html"
	r.Body = body
	return r
}

// Redirect builds a 303 redirect.
func Redirect(location string) *Response {
	r := NewResponse()
	r.Status = 303
	r.Headers["Location"] = location
	return r
}

// NotFound builds a 404 response.
func NotFound(msg string) *Response {
	r := NewResponse()
	r.Status = 404
	r.Body = msg
	return r
}

// ServerError builds a 500 response.
func ServerError(msg string) *Response {
	r := NewResponse()
	r.Status = 500
	r.Body = msg
	return r
}

// SetCookie records a Set-Cookie on the response.
func (r *Response) SetCookie(name, value string) {
	r.SetCookies[name] = value
}

// ClearCookie records a cookie deletion on the response.
func (r *Response) ClearCookie(name string) {
	r.ClearCookies = append(r.ClearCookies, name)
}

// Fingerprint hashes the response's observable content: status, body,
// headers, and cookie changes. Used for the "did the HTTP response change"
// test that drives browser re-execution (§5).
func (r *Response) Fingerprint() uint64 {
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	write(fmt.Sprintf("%d", r.Status))
	write(r.Body)
	hk := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		write(k)
		write(r.Headers[k])
	}
	ck := make([]string, 0, len(r.SetCookies))
	for k := range r.SetCookies {
		ck = append(ck, k)
	}
	sort.Strings(ck)
	for _, k := range ck {
		write(k)
		write(r.SetCookies[k])
	}
	cc := append([]string{}, r.ClearCookies...)
	sort.Strings(cc)
	for _, k := range cc {
		write("clear:" + k)
	}
	return h.Sum64()
}

// ApproxBytes estimates the logged size of the response.
func (r *Response) ApproxBytes() int {
	n := len(r.Body) + 8
	for k, v := range r.Headers {
		n += len(k) + len(v)
	}
	for k, v := range r.SetCookies {
		n += len(k) + len(v)
	}
	for _, k := range r.ClearCookies {
		n += len(k)
	}
	return n
}

// Clone returns a deep copy of the response.
func (r *Response) Clone() *Response {
	c := &Response{Status: r.Status, Body: r.Body, Headers: map[string]string{}, SetCookies: map[string]string{}}
	for k, v := range r.Headers {
		c.Headers[k] = v
	}
	for k, v := range r.SetCookies {
		c.SetCookies[k] = v
	}
	c.ClearCookies = append(c.ClearCookies, r.ClearCookies...)
	return c
}
