package sqldb

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	// Parse, print, and re-parse; the second print must be identical
	// (parse∘print is a fixed point).
	cases := []string{
		"SELECT * FROM pages",
		"SELECT page_id, title FROM pages WHERE title = 'Main'",
		"SELECT DISTINCT user_id FROM acl WHERE page_id = 7 AND can_edit = TRUE",
		"SELECT * FROM pages WHERE a = 1 OR b = 2 AND c = 3",
		"SELECT * FROM pages WHERE NOT (deleted = TRUE)",
		"SELECT * FROM pages WHERE title LIKE 'Main%'",
		"SELECT * FROM pages WHERE title NOT LIKE '%x%'",
		"SELECT * FROM pages WHERE page_id IN (1, 2, 3)",
		"SELECT * FROM pages WHERE page_id NOT IN (1, 2)",
		"SELECT * FROM pages WHERE editor IS NULL",
		"SELECT * FROM pages WHERE editor IS NOT NULL",
		"SELECT * FROM pages ORDER BY title DESC, page_id LIMIT 10 OFFSET 5",
		"SELECT COUNT(*) FROM pages",
		"SELECT MAX(page_id) FROM pages WHERE ns = 0",
		"SELECT title AS t FROM pages",
		"SELECT LOWER(title) FROM pages",
		"SELECT old_text || 'suffix' FROM pagecontent",
		"SELECT 1 + 2 * 3 - 4 / 2 % 3",
		"INSERT INTO users (name, pw) VALUES ('alice', 'secret')",
		"INSERT INTO users (name) VALUES ('a'), ('b'), ('c')",
		"INSERT INTO t (a) VALUES (?) RETURNING a, b",
		"UPDATE pages SET content = 'x', editor = 4 WHERE page_id = 9",
		"UPDATE pages SET n = n + 1 RETURNING n",
		"DELETE FROM sessions WHERE sid = 'deadbeef'",
		"DELETE FROM t RETURNING a",
		"CREATE TABLE users (user_id INTEGER PRIMARY KEY, name TEXT NOT NULL, admin BOOLEAN DEFAULT FALSE)",
		"CREATE TABLE t (a INTEGER, b TEXT, UNIQUE (a, b))",
		"CREATE TABLE IF NOT EXISTS t (a INTEGER)",
		"CREATE INDEX idx_title ON pages (title)",
		"CREATE INDEX IF NOT EXISTS idx_t ON pages (title)",
		"ALTER TABLE pages ADD COLUMN row_id INTEGER",
		"DROP TABLE old_stuff",
		"DROP TABLE IF EXISTS old_stuff",
		"SELECT * FROM t WHERE a = ? AND b = ?",
	}
	for _, src := range cases {
		stmt1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := stmt1.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-Parse(%q) from %q: %v", printed, src, err)
			continue
		}
		if got := stmt2.String(); got != printed {
			t.Errorf("print fixed point failed:\n first: %s\nsecond: %s", printed, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FORM t",
		"INSERT INTO t VALUES",
		"INSERT INTO t (a VALUES (1)",
		"UPDATE t WHERE a = 1",
		"DELETE t WHERE a = 1",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a FLOAT)",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a @ 1",
		"SELECT * FROM t; SELECT * FROM u",
		"ALTER TABLE t DROP COLUMN a",
		"SELECT * FROM t WHERE a IS 1",
		"CREATE TABLE t (a INTEGER DEFAULT b)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Fatalf("trailing semicolon should parse: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	stmt, err := Parse("SELECT 1 -- the loneliest number\n + 2")
	if err != nil {
		t.Fatalf("comment parse: %v", err)
	}
	if !strings.Contains(stmt.String(), "+") {
		t.Fatalf("comment swallowed expression: %s", stmt.String())
	}
}

func TestParamNumbering(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = ? AND b = ? AND c = ?")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	var idxs []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *BinaryExpr:
			walk(e.Left)
			walk(e.Right)
		case *Param:
			idxs = append(idxs, e.Index)
		}
	}
	walk(sel.Where)
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 1 || idxs[2] != 2 {
		t.Fatalf("param indexes = %v, want [0 1 2]", idxs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	stmt := MustParse("SELECT a FROM t WHERE a = 1 ORDER BY a LIMIT 5").(*Select)
	clone := stmt.Clone().(*Select)
	clone.Where.(*BinaryExpr).Op = OpNe
	clone.Items[0].Alias = "zzz"
	if stmt.Where.(*BinaryExpr).Op != OpEq {
		t.Fatal("Clone shares WHERE expression")
	}
	if stmt.Items[0].Alias == "zzz" {
		t.Fatal("Clone shares select items")
	}
}

func TestInsertCloneIsDeep(t *testing.T) {
	stmt := MustParse("INSERT INTO t (a) VALUES (1) RETURNING a").(*Insert)
	clone := stmt.Clone().(*Insert)
	clone.Rows[0][0] = Lit(Int(99))
	clone.Returning[0] = "b"
	if stmt.Rows[0][0].(*Literal).Value.Int != 1 {
		t.Fatal("Clone shares VALUES expressions")
	}
	if stmt.Returning[0] != "a" {
		t.Fatal("Clone shares RETURNING list")
	}
}

func TestVarcharAndInlineConstraints(t *testing.T) {
	stmt, err := Parse("CREATE TABLE u (id INT PRIMARY KEY, email VARCHAR(255) UNIQUE NOT NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if len(ct.Columns) != 2 {
		t.Fatalf("columns = %d, want 2", len(ct.Columns))
	}
	if ct.Columns[1].Type != KindText {
		t.Fatalf("VARCHAR should map to TEXT, got %v", ct.Columns[1].Type)
	}
	if len(ct.Uniques) != 2 {
		t.Fatalf("uniques = %d, want 2 (pk + unique)", len(ct.Uniques))
	}
	if !ct.Uniques[0].Primary || ct.Uniques[1].Primary {
		t.Fatalf("constraint kinds wrong: %+v", ct.Uniques)
	}
	if !ct.Columns[1].NotNull {
		t.Fatal("NOT NULL after UNIQUE not parsed")
	}
}
