package bench

import (
	"fmt"
	"testing"

	"warp/internal/core"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// BenchmarkCheckpoint measures the incremental checkpointer's central
// promise: checkpoint time scales with the dirty set, not database
// size. The database holds a fixed 8 tables x 500 rows; each iteration
// touches k tables and checkpoints. Compare the ns/op lines — dirty-1
// must sit far below dirty-8, and dirty-8 approximates the old
// full-snapshot cost.
func BenchmarkCheckpoint(b *testing.B) {
	const tables, rows = 8, 2000
	setup := func(b *testing.B) *core.Warp {
		b.Helper()
		w, err := core.Open(b.TempDir(), core.Config{Seed: 3, Durability: store.Options{
			Shards:       2,
			CompactEvery: 1 << 30, // measure pure incremental cost
		}})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < tables; i++ {
			table := fmt.Sprintf("t%d", i)
			if err := w.DB.Annotate(table, ttdb.TableSpec{RowIDColumn: "id"}); err != nil {
				b.Fatal(err)
			}
			if _, _, err := w.DB.Exec(fmt.Sprintf(
				"CREATE TABLE %s (id INTEGER PRIMARY KEY, body TEXT)", table)); err != nil {
				b.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				if _, _, err := w.DB.Exec(fmt.Sprintf("INSERT INTO %s (id, body) VALUES (?, ?)", table),
					sqldb.Int(int64(r+1)), sqldb.Text("benchmark row payload")); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := w.Checkpoint(); err != nil { // base
			b.Fatal(err)
		}
		return w
	}
	run := func(k int) func(*testing.B) {
		return func(b *testing.B) {
			w := setup(b)
			defer w.Crash() // skip the exit checkpoint; timing only
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < k; j++ {
					if _, _, err := w.DB.Exec(fmt.Sprintf("UPDATE t%d SET body = 'touched-%d' WHERE id = 1", j, i)); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := w.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("dirty-1of8", run(1))
	b.Run("dirty-4of8", run(4))
	b.Run("dirty-8of8", run(8))
}

// TestIncrementalCheckpointSpeedup asserts the scaling property the
// benchmark reports: checkpointing 1 dirty table of 8 must be
// measurably cheaper than checkpointing all 8. Skipped under -short;
// the bound is deliberately loose (2x) so CI noise cannot flake it —
// the real ratio tracks the dirty fraction (~8x here).
func TestIncrementalCheckpointSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint measurement in -short mode")
	}
	const tables, rows, rounds = 8, 300, 6
	build := func() *core.Warp {
		w, err := core.Open(t.TempDir(), core.Config{Seed: 3, Durability: store.Options{CompactEvery: 1 << 30}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tables; i++ {
			table := fmt.Sprintf("t%d", i)
			if err := w.DB.Annotate(table, ttdb.TableSpec{RowIDColumn: "id"}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := w.DB.Exec(fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY, body TEXT)", table)); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				if _, _, err := w.DB.Exec(fmt.Sprintf("INSERT INTO %s (id, body) VALUES (?, ?)", table),
					sqldb.Int(int64(r+1)), sqldb.Text("scaling row payload")); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	measure := func(k int) (bytes int64) {
		w := build()
		defer w.Crash()
		for i := 0; i < rounds; i++ {
			for j := 0; j < k; j++ {
				if _, _, err := w.DB.Exec(fmt.Sprintf("UPDATE t%d SET body = 'touch-%d' WHERE id = 1", j, i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			bytes += w.LastCheckpoint().Bytes
		}
		return bytes
	}
	one := measure(1)
	all := measure(tables)
	t.Logf("delta bytes over %d checkpoints: dirty-1=%d dirty-%d=%d (ratio %.1fx)",
		rounds, one, tables, all, float64(all)/float64(one))
	if one*2 > all {
		t.Fatalf("checkpoint cost does not track the dirty set: 1-dirty wrote %d bytes vs %d for all-dirty", one, all)
	}
}
