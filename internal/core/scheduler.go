// The repair scheduler: a dependency-scheduled, worker-pool executor for
// repair work items.
//
// The paper's repair loop pops one item at a time from a time-ordered
// heap. But the action history graph already encodes which actions are
// independent: two actions whose partition dependency sets are disjoint
// cannot observe each other's effects, because re-execution happens at the
// actions' original logical times against the time-travel database. The
// scheduler exploits this: it maintains the same time-ordered heap, but
// dispatches every item whose dependency footprint does not conflict with
// an earlier unfinished item to a pool of N workers. Conflicting items
// retain the paper's strict time order.
//
// Page-visit replays are exclusive *per client*: a replay threads one
// client's cookie jar and navigation state through its runs, so two
// visits of the same client serialize, while independent clients'
// visits replay in parallel. A visit's footprint claims the client's
// cookie node, the visit's subtree of exchange nodes (a replay may
// cancel or re-serve any of them), and the partition edges of the runs
// behind those exchanges — so visit replays also order correctly
// against individual query checks and run re-executions touching the
// same state. Config.TableGranularLocks restores the old globally
// exclusive behavior.
//
// Footprints are derived from the history graph's dependency edges
// (Graph.PartitionDepsOf), not recomputed from query records, so a work
// item's conflict set is exactly the partition overlap the graph already
// indexed. With one worker the scheduler runs the identical serial heap
// walk the paper describes.
package core

import (
	"container/heap"
	"fmt"
	"net/url"
	"sync"

	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/ttdb"
)

// workKind classifies repair work items.
type workKind uint8

const (
	workQueryCheck  workKind = iota // re-execute / re-check one query
	workRunExec                     // re-execute one application run
	workVisitReplay                 // replay one browser page visit
)

// workItem is one queued unit of repair work, ordered by original time.
type workItem struct {
	kind workKind
	time int64
	seq  int64

	action history.ActionID // query / run items
	// runAction is the run the item belongs to: the owning run for query
	// items, the action itself for run items. A query check never runs
	// concurrently with its owning run's re-execution.
	runAction history.ActionID

	client string // visit items
	visit  int64
	// navOverride carries a replayed parent's re-derived navigation
	// request for the child visit's main request (it may differ from the
	// recorded one, e.g. after a text merge).
	navMethod string
	navURL    string
	navForm   url.Values
	hasNav    bool

	// fp caches the item's footprint across dispatch scans. A cached
	// footprint can under-claim partitions an in-flight write discovers
	// later (AddDeps), but that is safe: the discovering write also marks
	// those partitions dirty, and dirt propagation re-enqueues any reader
	// that ran too early — the same fixpoint the serial engine relies on.
	fp *footprint
}

type workQueue []*workItem

func (q workQueue) Len() int { return len(q) }
func (q workQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q workQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *workQueue) Push(x any)   { *q = append(*q, x.(*workItem)) }
func (q *workQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// footprint is the dependency set a work item claims while in flight.
type footprint struct {
	reads  *ttdb.PartitionSet
	writes *ttdb.PartitionSet
	// nodeReads/nodeWrites carry the non-partition dependency nodes
	// (cookies, HTTP exchanges), so e.g. two runs updating one client's
	// cookies keep their time order.
	nodeReads  map[history.NodeID]bool
	nodeWrites map[history.NodeID]bool
	run        history.ActionID
	// client is set on visit-replay items: replays of one client's
	// visits serialize among themselves (they thread the client's cookie
	// jar and navigation state), independent clients replay in parallel.
	client    string
	exclusive bool
}

// conflicts reports whether two footprints must not be in flight together.
func (a *footprint) conflicts(b *footprint) bool {
	if a.exclusive || b.exclusive {
		return true
	}
	if a.run != 0 && a.run == b.run {
		return true
	}
	if a.client != "" && a.client == b.client {
		return true
	}
	if a.writes.Overlaps(b.reads) || a.writes.Overlaps(b.writes) || b.writes.Overlaps(a.reads) {
		return true
	}
	if nodesIntersect(a.nodeWrites, b.nodeReads) || nodesIntersect(a.nodeWrites, b.nodeWrites) ||
		nodesIntersect(b.nodeWrites, a.nodeReads) {
		return true
	}
	return false
}

func nodesIntersect(a, b map[history.NodeID]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for n := range a {
		if b[n] {
			return true
		}
	}
	return false
}

// lookahead bounds how many blocked items a dispatch scan considers
// before waiting for a completion. This is a deliberate trade: on a
// heavily skewed workload (one hot partition blocking >lookahead earlier
// items) a dispatchable item beyond the window waits for the next
// completion-triggered rescan even though workers are idle, in exchange
// for bounding each scan's cost under the scheduler lock. The busy==0
// first-pop case always dispatches, so the cap can never stall the
// scheduler outright.
const lookahead = 64

// scheduler owns the repair work queue and the worker pool.
type scheduler struct {
	rs      *session
	workers int
	maxIter int

	mu          sync.Mutex
	cond        *sync.Cond
	pending     workQueue
	pendingKeys map[itemKey]bool
	blocked     []*workItem
	inflight    map[*workItem]*footprint
	busy        int
	iterations  int
	err         error
	// limit is the SLO governor's concurrency cap (throttle.go):
	// 0 means unthrottled. Already-dispatched items finish; the
	// coordinator just stops dispatching above the cap.
	limit int
}

func newScheduler(rs *session, workers, maxIter int) *scheduler {
	s := &scheduler{
		rs:          rs,
		workers:     workers,
		maxIter:     maxIter,
		pendingKeys: make(map[itemKey]bool),
		inflight:    make(map[*workItem]*footprint),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// itemKey is a work item's deduplication identity. A comparable struct
// (not a formatted string) because dirt propagation probes and inserts
// keys millions of times during a large repair.
type itemKey struct {
	kind   workKind
	action history.ActionID
	client string
	visit  int64
}

func keyOf(it *workItem) itemKey {
	if it.kind == workVisitReplay {
		return itemKey{kind: workVisitReplay, client: it.client, visit: it.visit}
	}
	return itemKey{kind: it.kind, action: it.action}
}

func runKeyOf(run history.ActionID) itemKey {
	return itemKey{kind: workRunExec, action: run}
}

// push enqueues a work item, deduplicating against identical pending items
// (navigation-carrying replacements always enter).
func (s *scheduler) push(it *workItem) {
	key := keyOf(it)
	s.mu.Lock()
	if s.pendingKeys[key] && !it.hasNav {
		s.mu.Unlock()
		return
	}
	s.pendingKeys[key] = true
	s.mu.Unlock()
	it.seq = s.rs.nextSeq()
	s.mu.Lock()
	heap.Push(&s.pending, it)
	s.mu.Unlock()
	actionsRemaining.Add(1)
	s.cond.Broadcast()
}

// isPending reports whether an item with the given key is queued (or
// blocked awaiting dispatch).
func (s *scheduler) isPending(key itemKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingKeys[key]
}

// pendingLen returns the number of queued items.
func (s *scheduler) pendingLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending) + len(s.blocked)
}

// drain processes the queue to exhaustion: serially with one worker
// (reproducing the paper's heap walk exactly), otherwise with the
// dependency-scheduled worker pool.
func (s *scheduler) drain() error {
	if s.workers <= 1 {
		return s.drainSerial()
	}
	return s.drainParallel()
}

// drainSerial is the paper's single-threaded repair loop.
func (s *scheduler) drainSerial() error {
	for {
		s.mu.Lock()
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return nil
		}
		s.iterations++
		if s.iterations > s.maxIter {
			s.mu.Unlock()
			return fmt.Errorf("warp: repair did not converge after %d steps", s.iterations)
		}
		it := heap.Pop(&s.pending).(*workItem)
		key := keyOf(it)
		delete(s.pendingKeys, key)
		s.mu.Unlock()
		actionsRemaining.Add(-1)
		s.rs.tracef("pop t=%d kind=%d key=%+v nav=%v", it.time, it.kind, key, it.hasNav)
		if err := s.rs.processTimed(it); err != nil {
			return err
		}
	}
}

// drainParallel runs the dependency-scheduled worker pool: the coordinator
// scans the frontier of the time-ordered queue and hands every
// non-conflicting item to an idle worker; completions and pushes wake it
// to rescan.
func (s *scheduler) drainParallel() error {
	work := make(chan *workItem, s.workers)
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				s.mu.Lock()
				stopped := s.err != nil
				s.mu.Unlock()
				var err error
				if !stopped {
					err = s.rs.processTimed(it)
				}
				s.complete(it, err)
			}
		}()
	}

	s.mu.Lock()
	for {
		if s.err != nil {
			break
		}
		if len(s.pending) == 0 && len(s.blocked) == 0 && s.busy == 0 {
			break
		}
		if s.busy >= s.effectiveWorkers() {
			s.cond.Wait()
			continue
		}
		it, fp := s.nextDispatchable()
		if it == nil {
			if s.busy == 0 && len(s.pending)+len(s.blocked) > 0 {
				// Cannot happen: with nothing in flight the earliest item
				// never conflicts. Guard against a livelock regardless.
				s.err = fmt.Errorf("warp: repair scheduler stalled with %d queued items", len(s.pending)+len(s.blocked))
				break
			}
			s.cond.Wait()
			continue
		}
		s.iterations++
		if s.iterations > s.maxIter {
			s.err = fmt.Errorf("warp: repair did not converge after %d steps", s.iterations)
			break
		}
		key := keyOf(it)
		delete(s.pendingKeys, key)
		s.inflight[it] = fp
		s.busy++
		actionsRemaining.Add(-1)
		s.rs.tracef("pop t=%d kind=%d key=%+v nav=%v", it.time, it.kind, key, it.hasNav)
		work <- it // buffered to s.workers; busy < workers, so never blocks
	}
	err := s.err
	s.mu.Unlock()

	close(work)
	wg.Wait()

	s.mu.Lock()
	if err == nil {
		err = s.err
	}
	// A failed drain leaves blocked items around; fold them back so the
	// queue is consistent for inspection.
	for _, it := range s.blocked {
		heap.Push(&s.pending, it)
	}
	s.blocked = s.blocked[:0]
	s.mu.Unlock()
	return err
}

// effectiveWorkers is the dispatch ceiling under the current throttle.
// Called with s.mu held.
func (s *scheduler) effectiveWorkers() int {
	if s.limit > 0 && s.limit < s.workers {
		return s.limit
	}
	return s.workers
}

// setWorkerLimit installs the governor's concurrency cap (0 lifts it)
// and wakes the coordinator so a raised cap dispatches immediately.
func (s *scheduler) setWorkerLimit(n int) {
	s.mu.Lock()
	s.limit = n
	s.mu.Unlock()
	s.cond.Broadcast()
}

// complete retires an in-flight item and wakes the coordinator.
func (s *scheduler) complete(it *workItem, err error) {
	s.mu.Lock()
	delete(s.inflight, it)
	s.busy--
	if err != nil && s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// nextDispatchable scans the queue in time order for the first item whose
// footprint conflicts with neither an in-flight item nor an earlier
// blocked item. Called with s.mu held; blocked items are re-merged into
// the heap first so the scan order is globally time-sorted.
func (s *scheduler) nextDispatchable() (*workItem, *footprint) {
	for _, it := range s.blocked {
		heap.Push(&s.pending, it)
	}
	s.blocked = s.blocked[:0]

	var ahead []*footprint
	for len(s.pending) > 0 && len(s.blocked) < lookahead {
		it := heap.Pop(&s.pending).(*workItem)
		if it.fp == nil {
			it.fp = s.footprintFor(it)
		}
		fp := it.fp
		ok := true
		for _, in := range s.inflight {
			if fp.conflicts(in) {
				ok = false
				break
			}
		}
		if ok {
			for _, bf := range ahead {
				if fp.conflicts(bf) {
					ok = false
					break
				}
			}
		}
		if ok {
			return it, fp
		}
		s.blocked = append(s.blocked, it)
		ahead = append(ahead, fp)
	}
	return nil, nil
}

// footprintFor derives an item's dependency footprint from the history
// graph's dependency edges.
func (s *scheduler) footprintFor(it *workItem) *footprint {
	if it.kind == workVisitReplay {
		return s.visitFootprint(it)
	}
	fp := newFootprint()
	fp.run = it.runAction
	s.addActionDeps(fp, it.action)
	if it.kind == workRunExec {
		s.addRunQueryDeps(fp, it.action)
	}
	return fp
}

func newFootprint() *footprint {
	return &footprint{
		reads:      ttdb.NewPartitionSet(),
		writes:     ttdb.NewPartitionSet(),
		nodeReads:  make(map[history.NodeID]bool),
		nodeWrites: make(map[history.NodeID]bool),
	}
}

// visitFootprint claims what one page-visit replay can touch: the
// client's cookie jar, the visit's subtree of exchanges (replays cancel
// unmatched children recursively and re-serve any exchange), and the
// dependency edges of the runs behind those exchanges. Effects outside
// this set — a patched page navigating somewhere new, a fresh run
// writing an unclaimed partition — are caught by dirt propagation's
// fixpoint, the same under-claim safety the cached footprints rely on.
// With TableGranularLocks the old globally exclusive behavior is kept.
func (s *scheduler) visitFootprint(it *workItem) *footprint {
	if s.rs.w.cfg.TableGranularLocks {
		return &footprint{exclusive: true}
	}
	fp := newFootprint()
	fp.client = it.client
	fp.nodeWrites[history.CookieNode(it.client)] = true

	w := s.rs.w
	var runIDs []history.ActionID
	w.mu.Lock()
	var walk func(visit int64)
	walk = func(visit int64) {
		fp.nodeWrites[history.VisitNode(it.client, visit)] = true
		if vlog := w.visitByID[it.client][visit]; vlog != nil {
			for _, tr := range vlog.Requests {
				node := history.HTTPNode(it.client, visit, tr.RequestID)
				fp.nodeWrites[node] = true
				if id, ok := w.runByHTTP[node]; ok {
					runIDs = append(runIDs, id)
				}
			}
		}
		for _, c := range w.childVisits(it.client, visit) {
			walk(c.VisitID)
		}
	}
	walk(it.visit)
	w.mu.Unlock()

	for _, id := range runIDs {
		s.addActionDeps(fp, id)
		s.addRunQueryDeps(fp, id)
	}
	return fp
}

// addRunQueryDeps folds the dependency edges of a run's recorded queries
// into a footprint.
func (s *scheduler) addRunQueryDeps(fp *footprint, run history.ActionID) {
	act := s.rs.w.Graph.Get(run)
	if act == nil {
		return
	}
	payload, ok := act.Payload.(*RunPayload)
	if !ok {
		return
	}
	s.rs.w.mu.Lock()
	qids := append([]history.ActionID{}, payload.QueryActions...)
	s.rs.w.mu.Unlock()
	for _, qid := range qids {
		s.addActionDeps(fp, qid)
	}
}

// addActionDeps folds one action's graph dependency edges into a
// footprint, using the graph's pre-split partition-edge view.
func (s *scheduler) addActionDeps(fp *footprint, id history.ActionID) {
	pd := s.rs.w.Graph.PartitionDepsOf(id)
	for _, name := range pd.PartReads {
		if p, ok := ttdb.ParsePartition(name); ok {
			fp.reads.Add(p)
		}
	}
	for _, name := range pd.PartWrites {
		if p, ok := ttdb.ParsePartition(name); ok {
			fp.writes.Add(p)
		}
	}
	for _, n := range pd.NodeReads {
		fp.nodeReads[n] = true
	}
	for _, n := range pd.NodeWrites {
		fp.nodeWrites[n] = true
	}
}

//
// Session-side queueing helpers
//

func (rs *session) enqueueQuery(a *history.Action) {
	if p, ok := a.Payload.(*QueryPayload); ok && !p.Superseded.Load() {
		// Dirt propagation re-offers the same query for every partition it
		// reads, every time those partitions gain dirt; probe the pending
		// set before allocating the work item (push re-checks under lock,
		// so a racing duplicate still deduplicates — it just pays the
		// allocation).
		if rs.sched.isPending(itemKey{kind: workQueryCheck, action: a.ID}) {
			return
		}
		rs.sched.push(&workItem{kind: workQueryCheck, time: a.Time, action: a.ID, runAction: p.RunAction})
	}
}

func (rs *session) enqueueRun(a *history.Action) {
	if p, ok := a.Payload.(*RunPayload); ok && !p.Superseded.Load() {
		if rs.sched.isPending(itemKey{kind: workRunExec, action: a.ID}) {
			return
		}
		rs.sched.push(&workItem{kind: workRunExec, time: a.Time, action: a.ID, runAction: a.ID})
	}
}

func (rs *session) enqueueVisit(log *browser.VisitLog) {
	key := fmt.Sprintf("v:%s/%d", log.ClientID, log.VisitID)
	rs.mu.Lock()
	active := rs.activeVisit[key]
	rs.mu.Unlock()
	if active {
		return
	}
	rs.sched.push(&workItem{kind: workVisitReplay, time: log.Time, client: log.ClientID, visit: log.VisitID})
}

// process dispatches one work item to its re-execution handler.
func (rs *session) process(it *workItem) error {
	switch it.kind {
	case workQueryCheck:
		return rs.processQuery(it)
	case workRunExec:
		return rs.processRun(it)
	case workVisitReplay:
		return rs.processVisit(it)
	}
	return nil
}
