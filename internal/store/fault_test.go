package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"warp/internal/store/faultfs"
)

// faultOpts is the standard configuration of the fault tests: every
// append waits for its fsync (so injected sync failures surface on the
// append path deterministically) and retries back off fast.
func faultOpts(ffs *faultfs.FS) Options {
	return Options{
		SyncEveryAppend: true,
		FS:              ffs,
		RetryAttempts:   3,
		RetryBackoff:    time.Microsecond,
	}
}

func TestTransientWriteFailureRetried(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	s, _ := mustOpen(t, dir, faultOpts(ffs))

	// Fail exactly one WAL write; the retry policy must absorb it.
	var failed bool
	ffs.AddRule(func(op faultfs.Op) error {
		if !failed && op.Kind == faultfs.OpWrite && strings.Contains(op.Path, "wal-") {
			failed = true
			return fmt.Errorf("%w: transient EIO", faultfs.ErrInjected)
		}
		return nil
	})
	if err := s.Append(1, []byte("survives-transient")); err != nil {
		t.Fatalf("Append through transient write failure: %v", err)
	}
	if !failed {
		t.Fatal("injection rule never fired")
	}
	// A retried transient failure is not a fault: the record was acked.
	if err := s.LastFault(); err != nil {
		t.Fatalf("transient retried failure latched a fault: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	assertRecords(t, rec.Records, []Record{{Type: 1, Payload: []byte("survives-transient")}}, false)
}

func TestFsyncFailurePoisonsSegmentAndRotates(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	s, _ := mustOpen(t, dir, faultOpts(ffs))

	before := s.shards[0].activeSegment()

	// Fail exactly one WAL fsync. The waiting appender must get an
	// error (its record's durability is unknown — fsyncgate), the
	// segment must be sealed, and the shard must rotate to a fresh one.
	var failed bool
	ffs.AddRule(func(op faultfs.Op) error {
		if !failed && op.Kind == faultfs.OpSync && strings.Contains(op.Path, "wal-") {
			failed = true
			return fmt.Errorf("%w: fsync EIO", faultfs.ErrInjected)
		}
		return nil
	})
	err := s.Append(1, []byte("ack-unknown"))
	if err == nil {
		t.Fatal("append whose fsync failed was acked")
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append error does not carry the injected cause: %v", err)
	}
	if s.LastFault() == nil {
		t.Fatal("fsync poisoning did not report a fault")
	}
	after := s.shards[0].activeSegment()
	if after == before {
		t.Fatalf("shard did not rotate off the poisoned segment %s", before)
	}

	// The store is still writable: later appends land on the fresh
	// segment and sync normally.
	if err := s.Append(1, []byte("post-poison")); err != nil {
		t.Fatalf("append after poison rotation: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recovery replays the poisoned segment as far as its frames are
	// intact (here the write itself succeeded, only the fsync "failed",
	// so both records survive — the error above was the honest "I don't
	// know" answer, not a loss).
	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	assertRecords(t, rec.Records, []Record{
		{Type: 1, Payload: []byte("ack-unknown")},
		{Type: 1, Payload: []byte("post-poison")},
	}, false)
}

// TestENOSPCCheckpointKeepsPriorRoot is the satellite acceptance test:
// a checkpoint that dies of ENOSPC mid-write must leave the previous
// manifest + delta chain as the recovery root, reference no partial
// ckpt-*.sec file, and leave no .tmp debris behind.
func TestENOSPCCheckpointKeepsPriorRoot(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	s, _ := mustOpen(t, dir, faultOpts(ffs))

	checkpointOne(t, s, "a", "payload-1")
	if err := s.Append(1, []byte("tail-after-ckpt")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	ffs.FailKind(faultfs.OpWrite, "ckpt-", faultfs.ErrNoSpace)
	err := s.WriteCheckpoint(func(cw *CheckpointWriter) error {
		cw.Section("a").String("payload-2")
		return nil
	})
	if err == nil {
		t.Fatal("checkpoint on a full disk succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint error does not carry ENOSPC: %v", err)
	}
	if s.LastFault() == nil {
		t.Fatal("failed checkpoint did not report a fault")
	}
	select {
	case <-s.FaultSignal():
	default:
		t.Fatal("failed checkpoint did not signal the fault channel")
	}
	ffs.Clear()

	// The store remains usable, and a later checkpoint succeeds.
	if err := s.Append(1, []byte("post-enospc")); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
	checkpointOne(t, s, "a", "payload-3")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("aborted checkpoint left %s behind", e.Name())
		}
	}

	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if !rec.Manifest {
		t.Fatal("no manifest recovered")
	}
	if got := readSectionString(t, rec, "a"); got != "payload-3" {
		t.Fatalf("section a = %q, want payload-3", got)
	}
}

// TestENOSPCCheckpointPriorRootRecovers is the same scenario without
// the rescue checkpoint: reopening right after the failed checkpoint
// must recover from the prior manifest plus the WAL tail.
func TestENOSPCCheckpointPriorRootRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	s, _ := mustOpen(t, dir, faultOpts(ffs))

	checkpointOne(t, s, "a", "payload-1")
	if err := s.Append(1, []byte("tail-after-ckpt")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.FailKind(faultfs.OpWrite, "ckpt-", faultfs.ErrNoSpace)
	if err := s.WriteCheckpoint(func(cw *CheckpointWriter) error {
		cw.Section("a").String("payload-2")
		return nil
	}); err == nil {
		t.Fatal("checkpoint on a full disk succeeded")
	}
	ffs.Clear()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if got := readSectionString(t, rec, "a"); got != "payload-1" {
		t.Fatalf("section a = %q, want the pre-failure payload-1", got)
	}
	assertRecords(t, rec.Records, []Record{{Type: 1, Payload: []byte("tail-after-ckpt")}}, false)
}

func TestOrphanedTmpCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, name := range []string{"ckpt-00000099.sec.tmp", "manifest-00000099.mf.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, _ := mustOpen(t, dir, testOpts())
	defer s2.Close()
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("Open left orphaned temp file %s", e.Name())
		}
	}
}

// TestSegmentCreateSyncsDirectory asserts the satellite directory-sync
// rule: creating a WAL segment is followed by an fsync of the store
// directory, so the file's name survives a crash along with its data.
func TestSegmentCreateSyncsDirectory(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	var opened, synced bool
	ffs.AddRule(func(op faultfs.Op) error {
		switch {
		case op.Kind == faultfs.OpOpen && strings.Contains(op.Path, "wal-"):
			opened = true
		case op.Kind == faultfs.OpSyncDir && opened:
			synced = true
		}
		return nil
	})
	s, _ := mustOpen(t, dir, faultOpts(ffs))
	defer s.Close()
	if !opened || !synced {
		t.Fatalf("segment create not followed by directory sync (opened=%v synced=%v)", opened, synced)
	}
}

func TestScrubDetectsCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 256 // rotate quickly so sealed segments exist
	s, _ := mustOpen(t, dir, opts)

	payload := make([]byte, 64)
	for i := 0; i < 32; i++ {
		if err := s.Append(1, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.ScrubNow(); err != nil {
		t.Fatalf("scrub of intact store found corruption: %v", err)
	}

	// Bit-rot the first (sealed) segment in place.
	victim := segName(dir, 0, 1)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.ScrubNow(); err == nil {
		t.Fatal("scrub missed the corrupted sealed segment")
	}
	st := s.ScrubStats()
	if st.Corrupt == 0 || len(st.Quarantined) != 1 {
		t.Fatalf("scrub stats %+v, want 1 corrupt quarantined file", st)
	}
	if s.LastFault() == nil {
		t.Fatal("scrub corruption did not report a fault")
	}

	// The fault fence's checkpoint re-secures everything from memory; at
	// that point prune retires the quarantined segment by renaming it.
	checkpointOne(t, s, "a", "rescued")
	if _, err := os.Stat(victim + ".quarantine"); err != nil {
		t.Fatalf("quarantined segment not renamed: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still in place: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recovery ignores the .quarantine file and roots at the checkpoint.
	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if got := readSectionString(t, rec, "a"); got != "rescued" {
		t.Fatalf("section a = %q, want rescued", got)
	}
}

func TestScrubCorruptCheckpointForcesFullCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())

	writeSections(t, s, map[string]string{"a": "a1", "b": "b1"}, map[string]bool{"a": true, "b": true})
	// An incremental checkpoint that keeps "b": its bytes still live in
	// the first delta file.
	writeSections(t, s, map[string]string{"a": "a2", "b": "b1"}, map[string]bool{"a": true})

	victim := ckptPath(dir, 1)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.ScrubNow(); err == nil {
		t.Fatal("scrub missed the corrupted live checkpoint file")
	}

	// The next checkpoint must be full — Keep("b") refused — so the new
	// manifest stops referencing the corrupt file and prune quarantines
	// it.
	st := writeSections(t, s, map[string]string{"a": "a3", "b": "b1"}, map[string]bool{"a": true})
	if !st.Full {
		t.Fatalf("checkpoint after scrub corruption was not full: %+v", st)
	}
	if _, err := os.Stat(victim + ".quarantine"); err != nil {
		t.Fatalf("quarantined checkpoint file not renamed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if got := readSectionString(t, rec, "b"); got != "b1" {
		t.Fatalf("section b = %q, want b1", got)
	}
}

// TestStoreFaultSweepAckedNeverLost sweeps a persistent fault across
// every I/O operation index of a fixed append workload: whatever the
// injection point, every append the store acked must be recovered on a
// clean reopen. This is the store half of the two-outcome invariant —
// acked data is never lost, whether the run degraded or not.
func TestStoreFaultSweepAckedNeverLost(t *testing.T) {
	const appends = 12
	record := func(i int) []byte { return []byte(fmt.Sprintf("r%02d", i)) }

	// Counting pass: how many I/O ops does the workload issue?
	probe := faultfs.New(nil)
	func() {
		dir := t.TempDir()
		s, _ := mustOpen(t, dir, faultOpts(probe))
		for i := 0; i < appends; i++ {
			_ = s.Append(1, record(i))
		}
		_ = s.Close()
	}()
	total := probe.OpCount()
	if total < 10 {
		t.Fatalf("probe counted only %d ops", total)
	}

	step := int64(1)
	if testing.Short() {
		step = 7
	}
	for k := int64(1); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("op%03d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(nil)
			ffs.FailFrom(k, fmt.Errorf("%w: dying disk", faultfs.ErrInjected))
			s, _, err := Open(dir, faultOpts(ffs))
			if err != nil {
				return // faulted during Open: a clean refusal, nothing acked
			}
			var acked [][]byte
			for i := 0; i < appends; i++ {
				if s.Append(1, record(i)) == nil {
					acked = append(acked, record(i))
				}
			}
			_ = s.Close() // may fail; the store did its best

			s2, rec, err := Open(dir, testOpts())
			if err != nil {
				t.Fatalf("clean reopen failed: %v", err)
			}
			defer s2.Close()
			// Every acked record must appear, in order, possibly
			// interleaved with unacked ones that reached disk anyway.
			j := 0
			for _, r := range rec.Records {
				if j < len(acked) && string(r.Payload) == string(acked[j]) {
					j++
				}
			}
			if j != len(acked) {
				t.Fatalf("fault at op %d: acked record %q lost (%d/%d recovered)",
					k, acked[j], j, len(acked))
			}
		})
	}
}
