package sqldb

import (
	"sync/atomic"
	"time"

	"warp/internal/obs"
)

// Exec latency instrumentation. The engine classifies every execution
// by plan shape — statement type plus, for SELECTs, the access path the
// scan actually took — and records its latency into one fixed-bucket
// histogram per shape. The shape is recorded as a plain field store in
// the run* executors (always on, sub-nanosecond); the clock reads and
// histogram writes happen only at the four exported entry points and
// only when obs.Enabled() or a slow-query threshold arms them, so the
// uninstrumented fast path pays a single atomic load per exec.

// ExecShape classifies one statement execution for latency accounting.
type ExecShape uint8

const (
	// ShapeOther covers DDL, no-table SELECTs, and statements that fail
	// before reaching an executor.
	ShapeOther ExecShape = iota
	// ShapeSelectEq is a SELECT served by a single hash-index probe.
	ShapeSelectEq
	// ShapeSelectIn is a SELECT served by a bounded set of index probes.
	ShapeSelectIn
	// ShapeSelectRange is a SELECT served by an ordered index walk.
	ShapeSelectRange
	// ShapeSelectFull is a SELECT that visited every live row.
	ShapeSelectFull
	// ShapeInsert, ShapeUpdate, ShapeDelete are the write statements.
	ShapeInsert
	ShapeUpdate
	ShapeDelete

	numExecShapes
)

// String returns the shape's metric label.
func (s ExecShape) String() string {
	switch s {
	case ShapeSelectEq:
		return "select_eq"
	case ShapeSelectIn:
		return "select_in"
	case ShapeSelectRange:
		return "select_range"
	case ShapeSelectFull:
		return "select_full"
	case ShapeInsert:
		return "insert"
	case ShapeUpdate:
		return "update"
	case ShapeDelete:
		return "delete"
	default:
		return "other"
	}
}

// execHists holds one registered histogram per shape, indexed by the
// shape value so the hot path observes without a map lookup or
// allocation.
var execHists = func() [numExecShapes]*obs.Histogram {
	var a [numExecShapes]*obs.Histogram
	for s := ExecShape(0); s < numExecShapes; s++ {
		a[s] = obs.NewHistogram(`warp_sqldb_exec_seconds{shape="` + s.String() + `"}`)
	}
	return a
}()

// selectShape maps a SELECT's executed access path to its shape.
func selectShape(sp *scanPlan, usedIndex bool) ExecShape {
	if !usedIndex || sp == nil {
		return ShapeSelectFull
	}
	switch sp.kind {
	case scanEq:
		return ShapeSelectEq
	case scanIn:
		return ShapeSelectIn
	case scanRange:
		return ShapeSelectRange
	}
	return ShapeSelectFull
}

// SlowQueryFunc receives one over-threshold statement: its canonical
// SQL, executed plan shape, and wall-clock duration (inclusive of the
// engine-mutex wait).
type SlowQueryFunc func(stmt string, shape ExecShape, d time.Duration)

var (
	slowQueryNs atomic.Int64
	slowQueryFn atomic.Pointer[SlowQueryFunc]
)

// SetSlowQueryLog arms slow-statement logging engine-wide: every
// execution slower than threshold is reported to fn. A zero threshold
// (or nil fn) disarms it.
func SetSlowQueryLog(threshold time.Duration, fn SlowQueryFunc) {
	if threshold <= 0 || fn == nil {
		slowQueryNs.Store(0)
		slowQueryFn.Store(nil)
		return
	}
	slowQueryFn.Store(&fn)
	slowQueryNs.Store(int64(threshold))
}

// timedExec reports whether the entry points should read the clock.
func timedExec() bool {
	return obs.Enabled() || slowQueryNs.Load() > 0
}

// observeExec records one timed execution: histogram by shape, plus the
// slow-query hook. The statement text is only materialized on the slow
// path (stmt.String() allocates; cs.canonical does not).
func observeExec(start time.Time, shape ExecShape, cs *CachedStmt, stmt Statement) {
	d := time.Since(start)
	execHists[shape].Observe(d)
	ns := slowQueryNs.Load()
	if ns <= 0 || int64(d) < ns {
		return
	}
	fp := slowQueryFn.Load()
	if fp == nil {
		return
	}
	text := ""
	switch {
	case cs != nil:
		text = cs.canonical
	case stmt != nil:
		text = stmt.String()
	}
	(*fp)(text, shape, d)
}
