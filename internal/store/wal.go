package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"warp/internal/store/storefs"
)

// WAL frame layout: a fixed header followed by the payload.
//
//	[4 bytes] payload length (little-endian uint32)
//	[4 bytes] CRC-32C of the payload
//	[n bytes] payload; payload[0] is the record type
//
// A record is valid only if the full frame is present and the checksum
// matches. Readers stop at the first invalid frame: everything before it
// is a durable prefix, everything at and after it is discarded (the
// classic torn-tail rule). Frames never span segments.
const (
	frameHeaderLen = 8
	// maxFramePayload bounds a single record; larger lengths are treated
	// as corruption rather than attempted allocations.
	maxFramePayload = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame writes one frame to w and returns the on-disk size.
func appendFrame(w *bufio.Writer, payload []byte) (int64, error) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(frameHeaderLen + len(payload)), nil
}

// readSegment parses every valid frame of one segment file in order.
// clean is false when the segment ends in a torn or corrupt tail; the
// frames consumed before that point are still valid, and validLen is
// the byte length of that valid prefix (recovery truncates a torn
// last-of-chain segment to it, so the chain stays appendable). When fn
// returns an error, validLen covers the frames before the rejected one.
func readSegment(fs storefs.FS, path string, fn func(payload []byte) error) (validLen int64, clean bool, err error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return int64(off), false, nil // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 1 || n > maxFramePayload || n > len(data)-off-frameHeaderLen {
			return int64(off), false, nil // torn or corrupt length
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off), false, nil // checksum failure
		}
		if err := fn(payload); err != nil {
			return int64(off), true, err
		}
		off += frameHeaderLen + n
	}
	return int64(off), true, nil
}

// retryPolicy is the transient-I/O retry schedule (Options.RetryAttempts
// / RetryBackoff): attempts tries total, with capped exponential backoff
// between them. Only writes and file creation retry — an fsync failure
// is never retried (see the fsync-poisoning rule in shard.go), and
// checkpoint-file errors abort the checkpoint instead, because the
// fault-fence checkpoint is their retry.
type retryPolicy struct {
	attempts int
	backoff  time.Duration
}

// maxRetryBackoff caps the exponential backoff between retries.
const maxRetryBackoff = 50 * time.Millisecond

// do runs op under the policy.
func (r retryPolicy) do(op func() error) error {
	backoff := r.backoff
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || attempt >= r.attempts {
			return err
		}
		ioRetries.Inc()
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
}

// walWriter owns one open segment file. Frames accumulate in an
// explicit user-space buffer that supports *prefix* flushing: flushTo
// hands the OS only bytes up to a given extent, which is what lets the
// store bound exactly which records an fsync can make durable (the
// cross-shard causality barrier — see Store.syncAll).
type walWriter struct {
	path    string
	f       storefs.File
	retry   retryPolicy
	buf     []byte
	size    int64 // bytes appended to this segment (flushed + buffered)
	flushed int64 // bytes handed to the OS
}

// openSegment creates a fresh segment file and makes its directory
// entry durable: without the parent-directory fsync, a crash after
// records were fsynced *into* the file could still lose the file
// itself, exactly the hole the manifest/section rename paths already
// close with syncDir. Creation retries under the policy (a transient
// failure here would otherwise kill an append or rotation).
func openSegment(fs storefs.FS, path string, retry retryPolicy) (*walWriter, error) {
	var f storefs.File
	err := retry.do(func() error {
		var err error
		f, err = fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		return err
	})
	if err != nil {
		ioErrOpen.Inc()
		return nil, fmt.Errorf("store: creating WAL segment: %w", err)
	}
	// The directory fsync retries too: unlike a data fsync, nothing has
	// been appended (let alone acked) into the just-created empty file,
	// so there are no maybe-dropped dirty pages for a retry to lie
	// about — the fsync-poisoning rule starts with the first record.
	if err := retry.do(func() error { return fs.SyncDir(filepath.Dir(path)) }); err != nil {
		ioErrSyncDir.Inc()
		f.Close()
		return nil, fmt.Errorf("store: syncing WAL directory after segment create: %w", err)
	}
	return &walWriter{path: path, f: f, retry: retry}, nil
}

// append buffers one frame; it does not flush or sync.
func (w *walWriter) append(payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.size += int64(frameHeaderLen + len(payload))
	return nil
}

// flushTo pushes buffered frames to the OS up to byte extent limit
// (segment coordinates); bytes past it stay in user space, invisible to
// any fsync. Transient write errors retry with backoff; a short write
// advances the flushed extent by exactly the bytes the OS accepted
// before retrying the remainder, so a retry can never write a byte
// twice.
func (w *walWriter) flushTo(limit int64) error {
	if limit > w.size {
		limit = w.size
	}
	attempt := 1
	backoff := w.retry.backoff
	for w.flushed < limit {
		n := limit - w.flushed
		k, err := w.f.Write(w.buf[:n])
		if k > 0 {
			w.buf = w.buf[:copy(w.buf, w.buf[k:])]
			w.flushed += int64(k)
			if err == nil {
				continue
			}
			attempt = 1 // progress resets the clock
			backoff = w.retry.backoff
		}
		if err != nil {
			if attempt >= w.retry.attempts {
				ioErrWrite.Inc()
				return err
			}
			attempt++
			ioRetries.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
		}
	}
	return nil
}

// flush pushes every buffered frame to the OS.
func (w *walWriter) flush() error { return w.flushTo(w.size) }

// sync flushes and fsyncs the segment. The fsync itself is never
// retried: after a failed fsync the kernel may have dropped the dirty
// pages, so a later "successful" fsync proves nothing about them
// (the fsyncgate rule). Callers treat the failure as poisonous.
func (w *walWriter) sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	return timedSync(w.f)
}

// close finalizes the segment: flush, fsync, close.
func (w *walWriter) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// closeFd closes the file without a final flush or fsync, for callers
// that know every appended byte is already durable (shard close when
// synced == appended): skipping the redundant fsync means a clean close
// cannot be failed by a disk that died after the last real sync.
func (w *walWriter) closeFd() error { return w.f.Close() }

// abandon closes the file descriptor without flushing user-space
// buffers: the crash simulation, and the sealing step of fsync
// poisoning. Buffered frames are lost exactly as they would be in a
// real crash.
func (w *walWriter) abandon() { _ = w.f.Close() }
