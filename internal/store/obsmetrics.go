package store

import (
	"time"

	"warp/internal/obs"
	"warp/internal/store/storefs"
)

// Durability-path instrumentation (docs/observability.md). The byte and
// operation counters are unconditional atomic adds on paths that are
// already syscall-bound; the latency histograms read the clock only
// when obs is enabled.
var (
	// walAppendHist observes AppendGroup latency as the caller sees it —
	// frame encode, shard append, and (under SyncEveryAppend) the
	// group-commit wait.
	walAppendHist = obs.NewHistogram("warp_store_wal_append_seconds")
	// walFsyncHist observes each physical WAL fsync (group-commit leader
	// syncs and prefix-flush syncs alike).
	walFsyncHist = obs.NewHistogram("warp_store_wal_fsync_seconds")
	// walAppends / walAppendBytes count appended records and their
	// framed bytes.
	walAppends     = obs.NewCounter("warp_store_wal_appends_total")
	walAppendBytes = obs.NewCounter("warp_store_wal_append_bytes_total")
	// walFsyncs counts physical WAL fsyncs.
	walFsyncs = obs.NewCounter("warp_store_wal_fsyncs_total")
	// ckptHist observes whole-checkpoint duration (rotation, build,
	// manifest install, prune); ckptSectionHist observes each section the
	// builder streams (encode + chunk spill).
	ckptHist        = obs.NewHistogram("warp_store_checkpoint_seconds")
	ckptSectionHist = obs.NewHistogram("warp_store_checkpoint_section_seconds")
	// ckptTotal / ckptBytes count completed checkpoints and their delta
	// bytes.
	ckptTotal = obs.NewCounter("warp_store_checkpoints_total")
	ckptBytes = obs.NewCounter("warp_store_checkpoint_bytes_total")
)

// Failure-path instrumentation (docs/persistence.md "Failure model"):
// exhausted-retry errors by operation, retries, fsync poisonings, and
// the scrubber's progress.
var (
	// ioErr* count I/O errors that survived the retry policy (or are
	// never retried, like fsync), by operation.
	ioErrWrite   = obs.NewCounter(`warp_store_io_errors_total{op="write"}`)
	ioErrSync    = obs.NewCounter(`warp_store_io_errors_total{op="sync"}`)
	ioErrSyncDir = obs.NewCounter(`warp_store_io_errors_total{op="syncdir"}`)
	ioErrOpen    = obs.NewCounter(`warp_store_io_errors_total{op="open"}`)
	ioErrCkpt    = obs.NewCounter(`warp_store_io_errors_total{op="checkpoint"}`)
	// ioRetries counts transient I/O failures absorbed by a retry.
	ioRetries = obs.NewCounter("warp_store_io_retries_total")
	// fsyncPoisoned counts segments sealed by the fsync-poisoning rule.
	fsyncPoisoned = obs.NewCounter("warp_store_fsync_poisoned_total")
	// scrub progress: completed passes, files and bytes verified, files
	// found corrupt, and the current quarantine population.
	scrubPasses      = obs.NewCounter("warp_store_scrub_passes_total")
	scrubFiles       = obs.NewCounter("warp_store_scrub_files_total")
	scrubBytes       = obs.NewCounter("warp_store_scrub_bytes_total")
	scrubCorrupt     = obs.NewCounter("warp_store_scrub_corrupt_total")
	quarantinedGauge = obs.NewGauge("warp_store_quarantined_files")
	faultsReported   = obs.NewCounter("warp_store_faults_total")
)

// timedSync is the shared physical-fsync wrapper for the WAL shard sync
// paths. A failed fsync counts as an io error here (it is never
// retried — the caller poisons the segment instead).
func timedSync(f storefs.File) error {
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	err := f.Sync()
	walFsyncs.Inc()
	if !start.IsZero() {
		walFsyncHist.Observe(time.Since(start))
	}
	if err != nil {
		ioErrSync.Inc()
	}
	return err
}
