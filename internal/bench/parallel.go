package bench

import (
	"fmt"
	"strings"
	"time"

	"warp/internal/app"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// ParallelRepairResult is one measurement of the repair scheduler's
// scaling behavior.
type ParallelRepairResult struct {
	Workers    int
	RepairTime time.Duration
	Report     *core.Report
}

// ParallelRepair builds a partition-disjoint notes workload — users
// independent owners, each with notesPerUser recorded runs in their own
// partition — retro-patches the application, and measures the repair wall
// time with the given worker count. appLatency is the simulated per-run
// application cost (the PHP render / app-server round trip of the paper's
// stack); it is what parallel repair overlaps across workers.
//
// Every run re-executes under the patch, runs touch only their owner's
// partition, and the final table state is identical at every worker
// count; only the wall time changes.
func ParallelRepair(users, notesPerUser, workers int, appLatency time.Duration) (*ParallelRepairResult, error) {
	w := core.New(core.Config{Seed: 321, RepairWorkers: workers})
	if err := w.DB.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		return nil, err
	}
	if _, _, err := w.DB.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		return nil, err
	}
	handler := notesHandler(appLatency, false)
	if err := w.Runtime.Register("notes.php", app.Version{Entry: handler}); err != nil {
		return nil, err
	}
	w.Runtime.Mount("/", "notes.php")

	id := 0
	for u := 0; u < users; u++ {
		for n := 0; n < notesPerUser; n++ {
			id++
			resp := w.HandleRequest(httpd.NewRequest("GET",
				fmt.Sprintf("/?owner=u%d&id=%d&body=<i>n%d</i>", u, id, n)))
			if resp.Status != 200 {
				return nil, fmt.Errorf("bench: seed request failed: %d", resp.Status)
			}
		}
	}

	start := time.Now()
	rep, err := w.RetroPatch("notes.php", app.Version{Entry: notesHandler(appLatency, true), Note: "sanitize"})
	if err != nil {
		return nil, err
	}
	return &ParallelRepairResult{Workers: workers, RepairTime: time.Since(start), Report: rep}, nil
}

// notesHandler builds the bench application: insert one note into the
// owner's partition, render the owner's notes. sanitize selects the
// patched version, which HTML-escapes bodies (so every response changes
// and every recorded run re-executes under RetroPatch).
func notesHandler(appLatency time.Duration, sanitize bool) app.Script {
	return func(c *app.Ctx) *httpd.Response {
		if body := c.Req.Param("body"); body != "" {
			if sanitize {
				body = strings.ReplaceAll(strings.ReplaceAll(body, "<", "&lt;"), ">", "&gt;")
			}
			c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
				sqldb.Int(atoi(c.Req.Param("id"))), sqldb.Text(c.Req.Param("owner")), sqldb.Text(body))
		}
		res := c.MustQuery("SELECT body FROM notes WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		// The simulated application work (template rendering, helper I/O):
		// the part of a run the scheduler overlaps across workers.
		if appLatency > 0 {
			time.Sleep(appLatency)
		}
		var b strings.Builder
		b.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			b.WriteString("<li>" + row[0].AsText() + "</li>")
		}
		b.WriteString("</ul></body></html>")
		return httpd.HTML(b.String())
	}
}

func atoi(s string) int64 {
	var n int64
	fmt.Sscanf(s, "%d", &n)
	return n
}
