package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"warp/internal/store/storefs"
)

// Checkpoint (delta) file format. A checkpoint file holds one or more
// named sections, each a self-describing unit of snapshot state (one
// ttdb table, the history graph, the core's metadata, ...). Sections are
// written streaming: the encoder spills fixed-size chunks, so memory
// stays bounded by the chunk size regardless of how large a section —
// or the database — grows.
//
//	file   := magic "WARPSEC1" frame*
//	frame  := [u32 len][u32 CRC-32C][payload]          (the WAL frame codec)
//	payload:
//	  [0x01][name bytes]                               section begin
//	  [0x02][chunk bytes]                              section data chunk
//	  [0x03][u32 section-CRC][uvarint section-len]     section end
//	  [0x04][uvarint section-count]                    file trailer
//
// Every chunk is CRC'd by the frame layer; the section-end frame carries
// a second CRC-32C over the section's reassembled payload, so chunk
// loss, reordering, or truncation inside a section is detected even if
// each surviving frame validates. Unlike WAL segments there is no
// torn-tail tolerance: checkpoint files are written to a temp file,
// fsynced, and renamed, so anything short of a complete file with a
// matching trailer is corruption and reported as such.
const (
	secFrameBegin   byte = 0x01
	secFrameChunk   byte = 0x02
	secFrameEnd     byte = 0x03
	secFrameTrailer byte = 0x04

	// maxSectionName bounds section names so a corrupt begin frame
	// cannot masquerade as a giant name.
	maxSectionName = 4096
)

var sectionMagic = [8]byte{'W', 'A', 'R', 'P', 'S', 'E', 'C', '1'}

func ckptPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%08d.sec", seq))
}

// sectionFileWriter streams sections into one checkpoint file.
type sectionFileWriter struct {
	fs   storefs.FS
	path string // final path (written as path+".tmp" until finish)
	f    storefs.File
	bw   *bufio.Writer
	off  int64 // bytes written so far

	// open section state
	inSection bool
	crc       uint32
	n         uint64

	count int
}

func newSectionFileWriter(fs storefs.FS, path string) (*sectionFileWriter, error) {
	f, err := fs.OpenFile(path+".tmp", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &sectionFileWriter{fs: fs, path: path, f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	if _, err := w.bw.Write(sectionMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	w.off = int64(len(sectionMagic))
	return w, nil
}

func (w *sectionFileWriter) frame(payload []byte) error {
	n, err := appendFrame(w.bw, payload)
	w.off += n
	return err
}

// begin opens a new section, closing any open one first.
func (w *sectionFileWriter) begin(name string) error {
	if err := w.endSection(); err != nil {
		return err
	}
	w.inSection = true
	w.crc = 0
	w.n = 0
	return w.frame(append([]byte{secFrameBegin}, name...))
}

// chunk appends one data chunk to the open section.
func (w *sectionFileWriter) chunk(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	w.crc = crc32.Update(w.crc, crcTable, data)
	w.n += uint64(len(data))
	return w.frame(append([]byte{secFrameChunk}, data...))
}

// endSection closes the open section with its CRC/length frame.
func (w *sectionFileWriter) endSection() error {
	if !w.inSection {
		return nil
	}
	w.inSection = false
	w.count++
	var buf [16]byte
	buf[0] = secFrameEnd
	binary.LittleEndian.PutUint32(buf[1:5], w.crc)
	n := binary.PutUvarint(buf[5:], w.n)
	return w.frame(buf[:5+n])
}

// finish writes the trailer, fsyncs, and atomically installs the file.
func (w *sectionFileWriter) finish() error {
	if err := w.endSection(); err != nil {
		w.abort()
		return err
	}
	var buf [12]byte
	buf[0] = secFrameTrailer
	n := binary.PutUvarint(buf[1:], uint64(w.count))
	if err := w.frame(buf[:1+n]); err != nil {
		w.abort()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		w.fs.Remove(w.path + ".tmp")
		return err
	}
	if err := w.fs.Rename(w.path+".tmp", w.path); err != nil {
		w.fs.Remove(w.path + ".tmp")
		return err
	}
	return w.fs.SyncDir(filepath.Dir(w.path))
}

// abort discards the temp file. A failed Remove is tolerable: Open
// deletes orphaned .tmp files, and nothing ever references one.
func (w *sectionFileWriter) abort() {
	w.f.Close()
	_ = w.fs.Remove(w.path + ".tmp")
}

// sectionEvents receives a checkpoint file's contents in order. Chunk
// data is only valid for the duration of the callback. begin receives
// the absolute file offset of the section's begin frame, usable with
// walkSectionFile's from parameter for direct seeks later.
type sectionEvents struct {
	begin func(name string, offset int64) error
	chunk func(data []byte) error
	// end fires after the section's reassembled payload validated
	// against its recorded CRC and length.
	end func(name string, size uint64) error
}

// errStopWalk aborts a walk early without reporting corruption.
var errStopWalk = errors.New("store: stop walk")

// walkSectionFile streams one checkpoint file through the callbacks,
// validating frame CRCs, per-section CRCs and lengths, and the trailer
// count. Any structural defect is ErrCorrupt: checkpoint files are
// installed atomically, so unlike WAL segments a short or damaged file
// is never a legitimate torn tail.
func walkSectionFile(fs storefs.FS, path string, from int64, ev sectionEvents) error {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	remaining := info.Size()
	base := filepath.Base(path)
	corrupt := func(what string) error {
		return fmt.Errorf("%w: checkpoint %s: %s", ErrCorrupt, base, what)
	}

	if from > 0 {
		if from > remaining {
			return corrupt("section offset beyond end of file")
		}
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return err
		}
		remaining -= from
	} else {
		var magic [8]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || magic != sectionMagic {
			return corrupt("bad magic")
		}
		remaining -= int64(len(magic))
	}

	br := bufio.NewReaderSize(f, 1<<16)
	pos := info.Size() - remaining // absolute offset of the next frame
	var (
		inSection bool
		name      string
		crc       uint32
		size      uint64
		count     int
		sawEnd    bool // trailer seen (only when walking from the start)
		hdr       [frameHeaderLen]byte
		buf       []byte
	)
	for remaining > 0 {
		frameOff := pos
		if remaining < frameHeaderLen {
			return corrupt("torn frame header")
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return corrupt("torn frame header")
		}
		remaining -= frameHeaderLen
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 1 || n > maxFramePayload || n > remaining {
			return corrupt("bad frame length")
		}
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		payload := buf[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return corrupt("torn frame")
		}
		remaining -= n
		pos += frameHeaderLen + n
		if crc32.Checksum(payload, crcTable) != sum {
			return corrupt("frame checksum failure")
		}
		switch payload[0] {
		case secFrameBegin:
			if inSection {
				return corrupt("section begin inside open section")
			}
			if len(payload)-1 > maxSectionName {
				return corrupt("oversized section name")
			}
			inSection = true
			name = string(payload[1:])
			crc, size = 0, 0
			if ev.begin != nil {
				if err := ev.begin(name, frameOff); err != nil {
					if err == errStopWalk {
						return nil
					}
					return err
				}
			}
		case secFrameChunk:
			if !inSection {
				return corrupt("chunk outside section")
			}
			data := payload[1:]
			crc = crc32.Update(crc, crcTable, data)
			size += uint64(len(data))
			if ev.chunk != nil {
				if err := ev.chunk(data); err != nil {
					return err
				}
			}
		case secFrameEnd:
			if !inSection || len(payload) < 6 {
				return corrupt("malformed section end")
			}
			wantCRC := binary.LittleEndian.Uint32(payload[1:5])
			wantN, k := binary.Uvarint(payload[5:])
			if k <= 0 {
				return corrupt("malformed section end")
			}
			if crc != wantCRC || size != wantN {
				return corrupt(fmt.Sprintf("section %s payload mismatch", name))
			}
			inSection = false
			count++
			if ev.end != nil {
				if err := ev.end(name, size); err != nil {
					if err == errStopWalk {
						return nil
					}
					return err
				}
			}
		case secFrameTrailer:
			if inSection {
				return corrupt("trailer inside open section")
			}
			want, k := binary.Uvarint(payload[1:])
			if k <= 0 || (from == 0 && uint64(count) != want) {
				return corrupt("trailer count mismatch")
			}
			sawEnd = true
			if remaining != 0 {
				return corrupt("data after trailer")
			}
		default:
			return corrupt("unknown frame kind")
		}
	}
	if inSection || (from == 0 && !sawEnd) {
		return corrupt("missing trailer")
	}
	return nil
}

// readSectionPayload reads and validates one section's payload starting
// at the given begin-frame offset.
func readSectionPayload(fs storefs.FS, path string, offset int64) ([]byte, error) {
	var out []byte
	started := false
	err := walkSectionFile(fs, path, offset, sectionEvents{
		begin: func(string, int64) error {
			if started {
				return errStopWalk
			}
			started = true
			return nil
		},
		chunk: func(data []byte) error {
			out = append(out, data...)
			return nil
		},
		end: func(string, uint64) error { return errStopWalk },
	})
	if err != nil {
		return nil, err
	}
	if !started {
		return nil, fmt.Errorf("%w: checkpoint %s: empty section read", ErrCorrupt, filepath.Base(path))
	}
	return out, nil
}

// validateSectionFile walks a whole checkpoint file, checking every
// frame and section checksum in bounded memory, and returns each
// section's begin-frame offset for later direct reads.
func validateSectionFile(fs storefs.FS, path string) (map[string]int64, error) {
	offsets := make(map[string]int64)
	err := walkSectionFile(fs, path, 0, sectionEvents{
		begin: func(name string, off int64) error {
			offsets[name] = off
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return offsets, nil
}
