package ttdb

import (
	"fmt"
	"sync"
	"testing"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

// agreeIndexScan compares an indexed equality lookup with a scan-only
// rewrite of the same predicate on the raw engine: the page_id index
// must agree with the table after every maintenance event.
func agreeIndexScan(t *testing.T, db *DB, v int64, want ...string) {
	t.Helper()
	idx, _ := mustExec(t, db, "SELECT content FROM pages WHERE page_id = ?", sqldb.Int(v))
	scan, _ := mustExec(t, db, "SELECT content FROM pages WHERE NOT (page_id != ?)", sqldb.Int(v))
	render := func(r *sqldb.Result) []string {
		var out []string
		for _, row := range r.Rows {
			out = append(out, row[0].AsText())
		}
		return out
	}
	gi, gs := render(idx), render(scan)
	if fmt.Sprint(gi) != fmt.Sprint(gs) {
		t.Fatalf("index sees %v, scan sees %v", gi, gs)
	}
	if fmt.Sprint(gi) != fmt.Sprint(want) {
		t.Fatalf("page %d: got %v, want %v", v, gi, want)
	}
}

// TestIndexAgreesAfterRollbackReinsert: repair rollback demotes and
// deletes physical versions and revival re-inserts copies into fresh
// engine slots; the row-ID hash index must track every step, including
// the generation-switch purge that removes mid-table slots.
func TestIndexAgreesAfterRollbackReinsert(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recV1 := mustExec(t, db, "UPDATE pages SET content = 'v1' WHERE page_id = 1")
	mustExec(t, db, "UPDATE pages SET content = 'v2' WHERE page_id = 1")
	mustExec(t, db, "DELETE FROM pages WHERE page_id = 2")

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	// Roll page 1 back to just after v1: versions from v2 on vanish from
	// the next generation and the v1 version revives via demote +
	// insertCopy (a fresh slot).
	if _, err := db.RollbackRow("pages", sqldb.Int(1), recV1.Time+1); err != nil {
		t.Fatal(err)
	}
	// Re-execute an insert during repair so the purge later removes its
	// rolled-back sibling versions from the middle of the table.
	if _, _, err := db.ReExec("INSERT INTO pages (page_id, title, editor, content) VALUES (4, 'New', 12, 'fresh')", nil, db.Clock().Now(), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}

	agreeIndexScan(t, db, 1, "v1")
	agreeIndexScan(t, db, 2)
	agreeIndexScan(t, db, 3, "docs")
	agreeIndexScan(t, db, 4, "fresh")

	// Post-repair writes keep the index in step with reused row IDs.
	mustExec(t, db, "INSERT INTO pages (page_id, title, editor, content) VALUES (2, 'Sandbox', 11, 'again')")
	agreeIndexScan(t, db, 2, "again")
	mustExec(t, db, "UPDATE pages SET content = 'v3' WHERE page_id = 1")
	agreeIndexScan(t, db, 1, "v3")
}

// TestCachedExecAcrossGenerationSwitch: the statement cache must stay
// semantically invisible across BeginRepair / FinishRepair / AbortRepair
// — the same cached handles keep answering with the right generation's
// rows, and the canonical SQL recorded is byte-identical to the
// uncached rendering.
func TestCachedExecAcrossGenerationSwitch(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	sel := "SELECT content FROM pages WHERE page_id = 1"

	res, rec := mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "welcome" {
		t.Fatalf("content = %q", got)
	}
	stmt, err := sqldb.Parse(sel)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SQL != stmt.String() {
		t.Fatalf("cached canonical %q != direct rendering %q", rec.SQL, stmt.String())
	}

	// Repair rewrites page 1 in the next generation; the cached handle
	// must keep reading the *current* generation until the switch.
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReExec("UPDATE pages SET content = 'repaired' WHERE page_id = 1", nil, db.Clock().Now(), nil); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "welcome" {
		t.Fatalf("pre-switch cached read sees %q, want welcome", got)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "repaired" {
		t.Fatalf("post-switch cached read sees %q, want repaired", got)
	}

	// And across an aborted repair the cached handle must not leak the
	// discarded generation.
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReExec("UPDATE pages SET content = 'discarded' WHERE page_id = 1", nil, db.Clock().Now(), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.AbortRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, sel)
	if got := res.FirstValue().AsText(); got != "repaired" {
		t.Fatalf("post-abort cached read sees %q, want repaired", got)
	}
}

// TestCachedExecRaceWithDDLAndGC mixes cached reads and writes with
// concurrent DDL (CREATE INDEX / ALTER TABLE) and GC on the time-travel
// layer; under -race this guards the augmentation cache's epoch
// protocol end to end.
func TestCachedExecRaceWithDDLAndGC(t *testing.T) {
	db := Open(&vclock.Clock{})
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)")
	for i := 0; i < 8; i++ {
		mustExec(t, db, "INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("u%d", i%4)), sqldb.Text("b"))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := sqldb.Text(fmt.Sprintf("u%d", g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := db.Exec("SELECT body FROM notes WHERE owner = ?", owner); err != nil {
					t.Errorf("cached select: %v", err)
					return
				}
				if _, _, err := db.Exec("UPDATE notes SET body = ? WHERE owner = ?",
					sqldb.Text(fmt.Sprintf("b%d", i)), owner); err != nil {
					t.Errorf("cached update: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		mustExec(t, db, "CREATE INDEX IF NOT EXISTS idx_notes_body ON notes (body)")
		mustExec(t, db, fmt.Sprintf("ALTER TABLE notes ADD COLUMN extra%d INTEGER", i))
		if err := db.GC(db.Clock().Now() - 100); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
