package sqldb

import (
	"fmt"
	"strings"
)

// EXPLAIN-style plan introspection. The engine has no EXPLAIN statement;
// instead Explain renders the access-path decisions of a statement's
// compiled plan — which scan strategy serves the WHERE clause and
// whether ORDER BY is served by an index walk or a sort step — in a
// stable one-line form that tests and operators can assert on, e.g.
//
//	select(posts) scan=index-range(owner) order=index(owner)
//	select(posts) scan=full order=sort
//	update(posts) scan=index-eq(id)
//
// The description reflects the same plan execution would use: it is
// compiled through planFor against the current DDL epoch.

// Explain describes the access plan of one SQL statement.
func (db *DB) Explain(src string) (string, error) {
	cs, err := db.stmts.Get(src)
	if err != nil {
		return "", err
	}
	return db.ExplainCached(cs)
}

// ExplainCached describes the access plan of a cached statement handle,
// compiling (or reusing) it exactly as ExecCached would.
func (db *DB) ExplainCached(cs *CachedStmt) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := cs.Stmt.(type) {
	case *Select:
		if s.Table == "" {
			return "select() scan=none", nil
		}
		p := db.planFor(cs)
		if p.sel == nil {
			return "", fmt.Errorf("sql: no such table %s", s.Table)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "select(%s) scan=%s", s.Table, describeScan(p.sel.scan))
		if p.sel.aggregates {
			b.WriteString(" aggregate")
		} else if len(p.sel.orderBy) > 0 {
			if p.sel.orderIdx != nil {
				dir := ""
				if p.sel.orderIdx.desc {
					dir = "-desc"
				}
				fmt.Fprintf(&b, " order=index%s(%s)", dir, p.sel.orderIdx.column)
			} else {
				b.WriteString(" order=sort")
			}
		}
		return b.String(), nil
	case *Update:
		p := db.planFor(cs)
		if p.upd == nil {
			return "", fmt.Errorf("sql: no such table %s", s.Table)
		}
		return fmt.Sprintf("update(%s) scan=%s", s.Table, describeScan(p.upd.scan)), nil
	case *Delete:
		p := db.planFor(cs)
		if p.del == nil {
			return "", fmt.Errorf("sql: no such table %s", s.Table)
		}
		return fmt.Sprintf("delete(%s) scan=%s", s.Table, describeScan(p.del.scan)), nil
	case *Insert:
		return fmt.Sprintf("insert(%s)", s.Table), nil
	default:
		return fmt.Sprintf("%T", cs.Stmt), nil
	}
}

func describeScan(p *scanPlan) string {
	if p == nil {
		return "full"
	}
	switch p.kind {
	case scanEq:
		return fmt.Sprintf("index-eq(%s)", p.column)
	case scanIn:
		return fmt.Sprintf("index-in(%s)", p.column)
	case scanRange:
		lo, hi := "-inf", "+inf"
		if p.lo != nil {
			lo = "lo"
		}
		if p.hi != nil {
			hi = "hi"
		}
		return fmt.Sprintf("index-range(%s %s..%s)", p.column, lo, hi)
	}
	return "full"
}
