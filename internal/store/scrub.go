package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Background scrubbing (docs/persistence.md "Failure model"). Disk
// corruption that arrives *after* a successful write — bit rot, a bad
// sector, a firmware lie — would otherwise sit undetected until the
// next recovery needs the file, which is the worst possible moment to
// learn about it. The scrubber re-verifies the CRCs of cold data on a
// period: every sealed WAL segment (rotation fsyncs a segment before
// the next one opens, so anything torn or checksum-broken in a sealed
// segment is real corruption, not an in-flight tail) and every
// checkpoint file the current manifest references.
//
// A corrupt file is quarantined: recorded so the next prune renames it
// to <name>.quarantine instead of deleting it, surfaced in metrics and
// ScrubStats, and reported as a storage fault. The fault fence
// (internal/core) responds with a checkpoint — forced full when a live
// checkpoint file is corrupt, so the fresh manifest stops referencing
// the bad file — which re-secures the affected state from memory and
// lets prune retire the quarantined file from the recovery root.

// ScrubStats is the scrubber's cumulative progress (Store.ScrubStats,
// surfaced by the deployment health endpoint).
type ScrubStats struct {
	// Passes counts completed scrub passes.
	Passes int64
	// Files and Bytes count files and bytes CRC-verified across all
	// passes.
	Files int64
	Bytes int64
	// Corrupt counts files found corrupt.
	Corrupt int64
	// Quarantined lists the files currently quarantined (corrupt, not
	// yet retired by a checkpoint's prune, or already renamed to
	// .quarantine).
	Quarantined []string
	// LastPass is when the most recent pass finished (zero before the
	// first).
	LastPass time.Time
}

// ScrubStats returns the scrubber's cumulative progress.
func (s *Store) ScrubStats() ScrubStats {
	s.scrubMu.Lock()
	st := s.scrubStat
	s.scrubMu.Unlock()
	s.faultMu.Lock()
	st.Quarantined = make([]string, 0, len(s.quarantined))
	for name := range s.quarantined {
		st.Quarantined = append(st.Quarantined, name)
	}
	s.faultMu.Unlock()
	return st
}

// scrubber is the background loop started by Options.ScrubInterval.
func (s *Store) scrubber() {
	defer close(s.scrubDone)
	tick := time.NewTicker(s.opts.ScrubInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-tick.C:
			_ = s.ScrubNow()
		}
	}
}

// ScrubNow runs one synchronous scrub pass and returns the first
// corruption found (nil when the pass was clean). Concurrent with
// normal operation: it reads only sealed segments and installed
// checkpoint files, and tolerates files pruned mid-pass.
func (s *Store) ScrubNow() error {
	s.stateMu.Lock()
	dead := s.dead || s.closed
	s.stateMu.Unlock()
	if dead {
		return ErrCrashed
	}

	// Snapshot the moving parts first. Segments with seq >= the shard's
	// active seq may still be receiving appends (or be mid-rotation) —
	// only strictly older ones are guaranteed sealed and stable.
	activeSeq := make(map[int]int64, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.Lock()
		activeSeq[sh.id] = sh.seq
		sh.mu.Unlock()
	}
	s.ckptMu.Lock()
	var ckptRefs map[int64]bool
	if s.manifest != nil {
		ckptRefs = s.manifest.fileRefs()
	}
	s.ckptMu.Unlock()

	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}

	var firstCorrupt error
	var files, bytes, corrupt int64
	flag := func(name string, err error) {
		corrupt++
		if firstCorrupt == nil {
			firstCorrupt = err
		}
		scrubCorrupt.Inc()
		s.faultMu.Lock()
		s.quarantined[name] = true
		n := len(s.quarantined)
		s.faultMu.Unlock()
		quarantinedGauge.Set(int64(n))
	}

	for _, e := range entries {
		var seq int64
		var id int
		name := e.Name()
		if s.isSealedTorn(name) || s.isQuarantined(name) {
			continue
		}
		switch {
		case parseSegName(name, &id, &seq):
			if as, ok := activeSeq[id]; ok && seq >= as {
				continue // active or mid-rotation
			}
			n, clean, err := readSegment(s.fs, filepath.Join(s.dir, name), func([]byte) error { return nil })
			if errors.Is(err, os.ErrNotExist) {
				continue // pruned mid-pass
			}
			files++
			bytes += n
			if err != nil || !clean {
				if err == nil {
					err = fmt.Errorf("%w: WAL segment %s: invalid frame at offset %d", ErrCorrupt, name, n)
				}
				flag(name, err)
			}
		case parseSeqName(name, "ckpt-", ".sec", &seq):
			if ckptRefs == nil || !ckptRefs[seq] {
				continue // unreferenced: prune's problem, not recovery's
			}
			if _, err := validateSectionFile(s.fs, filepath.Join(s.dir, name)); err != nil {
				if errors.Is(err, os.ErrNotExist) {
					continue
				}
				flag(name, err)
				// The corrupt file is part of the live checkpoint: force
				// the next checkpoint full so its manifest re-writes every
				// section and stops referencing this file.
				s.ckptMu.Lock()
				s.sinceFull = s.opts.CompactEvery
				s.ckptMu.Unlock()
			} else {
				files++
				if f, err := s.fs.OpenFile(filepath.Join(s.dir, name), os.O_RDONLY, 0); err == nil {
					if info, err := f.Stat(); err == nil {
						bytes += info.Size()
					}
					f.Close()
				}
			}
		}
	}

	s.scrubMu.Lock()
	s.scrubStat.Passes++
	s.scrubStat.Files += files
	s.scrubStat.Bytes += bytes
	s.scrubStat.Corrupt += corrupt
	s.scrubStat.LastPass = time.Now()
	s.scrubMu.Unlock()
	scrubPasses.Inc()
	scrubFiles.Add(uint64(files))
	scrubBytes.Add(uint64(bytes))

	if firstCorrupt != nil {
		s.reportFault(fmt.Errorf("store: scrub: %w", firstCorrupt))
	}
	return firstCorrupt
}

func (s *Store) isQuarantined(name string) bool {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.quarantined[name]
}
