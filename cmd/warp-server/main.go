// Command warp-server runs GoWiki under WARP on a real net/http server,
// so the system can be driven from an actual browser. Administrative
// endpoints expose repair:
//
//	GET  /warp/status                  — log storage and conflict queue
//	POST /warp/patch?kind=Stored+XSS   — retroactively apply a Table 2 patch
//	POST /warp/undo?client=C&visit=N   — undo a past page visit
//
// Real browsers have no WARP extension, so requests are logged with
// server-side identifiers (§7) and browser-level replay degrades to
// conflict reporting, exactly as §2.3 describes for extensionless clients.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"warp"
	"warp/internal/httpd"
	"warp/internal/webapp/wiki"
)

func main() {
	addr := flag.String("addr", ":8480", "listen address")
	flag.Parse()

	sys := warp.New(warp.Config{Seed: 2026})
	app, err := wiki.Install(sys.Warp)
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []struct {
		name  string
		admin bool
	}{{"admin", true}, {"alice", false}, {"bob", false}} {
		if err := app.CreateUser(u.name, "pw-"+u.name, u.admin); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range []string{"Main", "Sandbox", "TeamPage"} {
		if err := app.CreatePage(p, "welcome to "+p, false); err != nil {
			log.Fatal(err)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", &httpd.Adapter{Handler: sys.HandleRequest})
	mux.HandleFunc("/warp/status", func(w http.ResponseWriter, r *http.Request) {
		st := sys.Storage()
		fmt.Fprintf(w, "page visits logged: %d\nbrowser log: %d B\napp log: %d B\ndb log: %d B\nconflicts queued: %d\n",
			st.PageVisits, st.BrowserLogBytes, st.AppLogBytes, st.DBLogBytes, len(sys.Conflicts()))
	})
	mux.HandleFunc("/warp/patch", func(w http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("kind")
		v, ok := app.VulnerabilityByKind(kind)
		if !ok || v.File == "" {
			http.Error(w, "unknown vulnerability kind", http.StatusBadRequest)
			return
		}
		rep, err := sys.RetroPatch(v.File, v.Patch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "retroactive patch applied:", rep.String())
	})
	mux.HandleFunc("/warp/undo", func(w http.ResponseWriter, r *http.Request) {
		client := r.URL.Query().Get("client")
		visit, _ := strconv.ParseInt(r.URL.Query().Get("visit"), 10, 64)
		rep, err := sys.UndoVisit(client, visit, true)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "visit undone:", rep.String())
	})

	log.Printf("GoWiki under WARP listening on %s (users: admin, alice, bob; passwords pw-<name>)", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
