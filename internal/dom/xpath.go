package dom

import (
	"fmt"
	"strconv"
	"strings"
)

// PathOf returns the XPath of an element, in the positional form WARP's
// browser extension records for event targets (§5.2):
// /html[1]/body[1]/form[1]/textarea[1]. Indexes are 1-based positions among
// same-tag element siblings. Returns "" for text nodes and detached roots.
func PathOf(n *Node) string {
	if n == nil || n.Type != ElementNode || n.Tag == "#document" {
		return ""
	}
	var segs []string
	for cur := n; cur != nil && cur.Tag != "#document"; cur = cur.Parent {
		if cur.Type != ElementNode {
			return ""
		}
		idx := 1
		if cur.Parent != nil {
			for _, sib := range cur.Parent.Children {
				if sib == cur {
					break
				}
				if sib.Type == ElementNode && sib.Tag == cur.Tag {
					idx++
				}
			}
		}
		segs = append(segs, fmt.Sprintf("%s[%d]", cur.Tag, idx))
	}
	// Reverse.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return "/" + strings.Join(segs, "/")
}

// Resolve finds the element named by an XPath produced by PathOf, or nil
// when the path does not resolve in this document. Resolution tolerance is
// what makes DOM-level replay robust to small page changes (§5): the target
// is found as long as its tag-indexed path is unchanged, even if text and
// unrelated subtrees differ.
func Resolve(doc *Node, path string) *Node {
	if path == "" || path[0] != '/' {
		return nil
	}
	cur := doc
	for _, seg := range strings.Split(path[1:], "/") {
		tag, idx, ok := parseSegment(seg)
		if !ok {
			return nil
		}
		var next *Node
		count := 0
		for _, c := range cur.Children {
			if c.Type == ElementNode && c.Tag == tag {
				count++
				if count == idx {
					next = c
					break
				}
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

func parseSegment(seg string) (string, int, bool) {
	open := strings.IndexByte(seg, '[')
	if open < 0 {
		return strings.ToLower(seg), 1, seg != ""
	}
	if !strings.HasSuffix(seg, "]") {
		return "", 0, false
	}
	idx, err := strconv.Atoi(seg[open+1 : len(seg)-1])
	if err != nil || idx < 1 {
		return "", 0, false
	}
	return strings.ToLower(seg[:open]), idx, true
}
