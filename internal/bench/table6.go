package bench

import (
	"fmt"
	"math/rand"
	"time"

	"warp/internal/app"
	"warp/internal/attacks"
	"warp/internal/browser"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
	"warp/internal/webapp/wiki"
	"warp/internal/workload"
)

// Table6Row is one row of Table 6: page visits per second for a workload
// in three server configurations, plus per-visit log storage by layer.
type Table6Row struct {
	Workload string

	NoWARPVisitsPerSec float64
	WARPVisitsPerSec   float64
	DuringRepairPerSec float64

	BrowserBytesPerVisit float64
	AppBytesPerVisit     float64
	DBBytesPerVisit      float64

	// Exec is the database layer's execution-path counters over the WARP
	// configuration's measurement window: statement-cache/plan hit rates
	// and index-vs-full scan counts.
	Exec sqldb.ExecStats
}

// Table6 measures WARP's normal-operation overhead (§8.5): reading and
// editing workloads against the plain application stack ("No WARP"), the
// same stack under WARP logging, and under WARP while a repair runs
// concurrently. visitsPerConfig controls measurement length.
func Table6(visitsPerConfig int) ([]Table6Row, error) {
	rows := []Table6Row{{Workload: "Reading"}, {Workload: "Editing"}}

	// --- No WARP baseline: same application code, plain SQL engine, no
	// logging, no versioning, no extension.
	plainRead, plainEdit, err := baselineThroughput(visitsPerConfig)
	if err != nil {
		return nil, err
	}
	rows[0].NoWARPVisitsPerSec = plainRead
	rows[1].NoWARPVisitsPerSec = plainEdit

	// --- WARP: full logging pipeline.
	for i, editing := range []bool{false, true} {
		vps, stor, visits, exec, err := warpThroughput(visitsPerConfig, editing, false)
		if err != nil {
			return nil, err
		}
		rows[i].WARPVisitsPerSec = vps
		rows[i].Exec = exec
		if visits > 0 {
			rows[i].BrowserBytesPerVisit = float64(stor.BrowserLogBytes) / float64(visits)
			rows[i].AppBytesPerVisit = float64(stor.AppLogBytes) / float64(visits)
			rows[i].DBBytesPerVisit = float64(stor.DBLogBytes+stor.DBRowBytes) / float64(visits)
		}
	}

	// --- WARP during concurrent repair (§4.3).
	for i, editing := range []bool{false, true} {
		vps, _, _, _, err := warpThroughput(visitsPerConfig, editing, true)
		if err != nil {
			return nil, err
		}
		rows[i].DuringRepairPerSec = vps
	}
	return rows, nil
}

// baselineThroughput measures the application without WARP: handlers run
// against a plain engine and nothing is recorded.
func baselineThroughput(visits int) (readVPS, editVPS float64, err error) {
	// The runtime is only used as a script host; queries bypass ttdb.
	w := core.New(core.Config{Seed: 77})
	app, err := wiki.Install(w)
	if err != nil {
		return 0, 0, err
	}
	_ = app
	plain := sqldb.Open()
	for _, ddl := range wiki.Schema() {
		if _, err := plain.Exec(ddl); err != nil {
			return 0, 0, err
		}
	}
	if _, err := plain.Exec("INSERT INTO users (user_id, name, password, is_admin) VALUES (1, 'alice', 'pw-alice', FALSE)"); err != nil {
		return 0, 0, err
	}
	if _, err := plain.Exec("INSERT INTO pages (page_id, title, content) VALUES (1, 'Main', 'welcome')"); err != nil {
		return 0, 0, err
	}
	if _, err := plain.Exec("INSERT INTO sessions (sid, user_id) VALUES ('plain-sid', 1)"); err != nil {
		return 0, 0, err
	}
	qf := func(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error) {
		res, err := plain.Exec(sql, params...)
		return res, nil, err
	}
	serve := plainTransport(w, qf)
	b := browser.New(serve, nil, rand.New(rand.NewSource(9)))
	b.HasExtension = false
	b.SetCookie("sid", "plain-sid")

	readVPS = measure(visits, func(i int) {
		b.Open("/index.php?title=Main")
	})
	editVPS = measure(visits, func(i int) {
		p := b.Open("/edit.php?title=Main")
		p.TypeInto("content", fmt.Sprintf("content v%d", i))
		p.Submit(0)
	})
	return readVPS, editVPS, nil
}

// warpThroughput measures the full WARP pipeline, optionally with a large
// repair running concurrently.
func warpThroughput(visits int, editing, duringRepair bool) (float64, core.StorageStats, int, sqldb.ExecStats, error) {
	var res *workload.Result
	var err error
	if duringRepair {
		// Build a workload whose repair re-executes nearly everything, and
		// measure while that repair runs.
		sc, _ := attacks.ByName("Clickjacking")
		res, err = workload.Run(workload.Config{Users: 30, Victims: 3, Seed: 78, Scenario: sc, RepairWorkers: DefaultRepairWorkers})
	} else {
		res, err = workload.Run(workload.Config{Users: 6, Seed: 78})
	}
	if err != nil {
		return 0, core.StorageStats{}, 0, sqldb.ExecStats{}, err
	}
	w := res.Env.W
	b := w.NewBrowser()
	u := res.Env.Others[0]
	login(u.Name, b)

	storBefore := w.Storage()
	execBefore := w.ExecStats()
	repairDone := make(chan error, 1)
	if duringRepair {
		sc, _ := attacks.ByName("Clickjacking")
		go func() {
			_, err := sc.Repair(res.Env)
			repairDone <- err
		}()
		// Give repair a moment to get going.
		time.Sleep(2 * time.Millisecond)
	}
	vps := measure(visits, func(i int) {
		if editing {
			p := b.Open("/edit.php?title=Page-" + u.Name)
			if p.DOM != nil && p.DOM.ByName("content") != nil {
				p.TypeInto("content", fmt.Sprintf("bench content %d", i))
				p.Submit(0)
			}
		} else {
			b.Open("/index.php?title=Page-" + u.Name)
		}
	})
	if duringRepair {
		if err := <-repairDone; err != nil {
			return 0, core.StorageStats{}, 0, sqldb.ExecStats{}, err
		}
	}
	storAfter := w.Storage()
	stor := core.StorageStats{
		BrowserLogBytes: storAfter.BrowserLogBytes - storBefore.BrowserLogBytes,
		AppLogBytes:     storAfter.AppLogBytes - storBefore.AppLogBytes,
		DBLogBytes:      storAfter.DBLogBytes - storBefore.DBLogBytes,
		DBRowBytes:      storAfter.DBRowBytes - storBefore.DBRowBytes,
	}
	exec := w.ExecStats().Sub(execBefore)
	return vps, stor, storAfter.PageVisits - storBefore.PageVisits, exec, nil
}

// login drives the login flow on a fresh browser.
func login(name string, b *browser.Browser) {
	p := b.Open("/login.php")
	p.TypeInto("user", name)
	p.TypeInto("password", "pw-"+name)
	p.Submit(0)
}

// measure runs fn n times and returns iterations per second.
func measure(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// ExtensionOverhead measures page-open latency with and without the WARP
// browser extension (the §8.5 load-time comparison).
func ExtensionOverhead(visits int) (withExt, withoutExt time.Duration, err error) {
	res, err := workload.Run(workload.Config{Users: 6, Seed: 79})
	if err != nil {
		return 0, 0, err
	}
	w := res.Env.W
	for _, hasExt := range []bool{true, false} {
		b := w.NewBrowser()
		b.HasExtension = hasExt
		// Warm up before timing so the first configuration does not pay
		// one-time cache costs.
		for i := 0; i < visits/4; i++ {
			b.Open("/index.php?title=Main")
		}
		start := time.Now()
		for i := 0; i < visits; i++ {
			b.Open("/index.php?title=Main")
		}
		d := time.Since(start) / time.Duration(visits)
		if hasExt {
			withExt = d
		} else {
			withoutExt = d
		}
	}
	return withExt, withoutExt, nil
}

// plainTransport builds a transport that routes through the runtime with
// a caller-supplied query function and performs no recording.
func plainTransport(w *core.Warp, qf app.QueryFunc) browser.Transport {
	return func(req *httpd.Request) *httpd.Response {
		file, ok := w.Runtime.RouteOf(req.Path)
		if !ok {
			return httpd.NotFound("no route")
		}
		rec, err := w.Runtime.Run(file, req, qf, nil)
		if err != nil {
			return httpd.ServerError(err.Error())
		}
		return rec.Resp
	}
}
