package core

import (
	"strings"
	"testing"

	"warp/internal/app"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// The restart suite: a recovered deployment must resume its seeded
// nondeterminism streams (instead of replaying them from the seed) and
// must detect stale code registration (instead of silently replaying
// with mismatched handlers).

// loginApp installs a minimal session-issuing application: every /login
// draws a fresh session ID token and inserts it into a uniquely keyed
// sessions table — the shape of the post-restart login bug.
func loginApp(t *testing.T, w *Warp) {
	t.Helper()
	if err := w.DB.Annotate("sessions", ttdb.TableSpec{RowIDColumn: "sid"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE IF NOT EXISTS sessions (sid TEXT PRIMARY KEY, user_id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	login := func(c *app.Ctx) *httpd.Response {
		sid := c.Token("login.sid")
		if _, err := c.Query("INSERT INTO sessions (sid, user_id) VALUES (?, ?)",
			sqldb.Text(sid), sqldb.Int(1)); err != nil {
			return httpd.ServerError("sid collision: " + err.Error())
		}
		resp := httpd.HTML("welcome")
		resp.SetCookie("sid", sid)
		return resp
	}
	if err := w.Runtime.Register("login.php", app.Version{Entry: login}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/login", "login.php")
}

// TestLoginSurvivesRestart reproduces ROADMAP's post-restart login bug:
// login → restart → login. Without the persisted RNG cursor the
// restarted runtime replays the seeded token stream from the start,
// regenerates the recovered session's sid, and fails its uniqueness
// check.
func TestLoginSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 42, RepairWorkers: 1, Durability: store.Options{SyncEveryAppend: true}}
	w, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loginApp(t, w)
	resp := w.HandleRequest(httpd.NewRequest("POST", "/login"))
	if resp.Status != 200 {
		t.Fatalf("first login failed: %d %s", resp.Status, resp.Body)
	}
	firstSid := resp.SetCookies["sid"]
	if firstSid == "" {
		t.Fatal("no sid issued")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Crash()
	loginApp(t, w2) // application setup replays idempotently
	resp = w2.HandleRequest(httpd.NewRequest("POST", "/login"))
	if resp.Status != 200 {
		t.Fatalf("post-restart login failed: %d %s (seeded token stream replayed from the start?)", resp.Status, resp.Body)
	}
	if got := resp.SetCookies["sid"]; got == firstSid {
		t.Fatalf("post-restart login re-issued recovered sid %q", got)
	}
	// Both sessions are live.
	res, _, err := w2.DB.Exec("SELECT COUNT(*) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsInt() != 2 {
		t.Fatalf("sessions = %d, want 2", res.FirstValue().AsInt())
	}
}

// TestRNGCursorsSurviveCrash: the checkpointed cursors fix restart after
// a clean Close, but a hard crash between checkpoints used to replay
// the nondeterminism streams' unsynced tail. Cursor advances are now
// WAL-logged (recRNGCursors), so recovery after a crash — with no
// checkpoint ever written — must also resume both streams exactly.
func TestRNGCursorsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 42, RepairWorkers: 1, Durability: store.Options{SyncEveryAppend: true}}
	w, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loginApp(t, w)
	resp := w.HandleRequest(httpd.NewRequest("POST", "/login"))
	if resp.Status != 200 {
		t.Fatalf("first login failed: %d %s", resp.Status, resp.Body)
	}
	firstSid := resp.SetCookies["sid"]
	firstClient := w.NewBrowser().ClientID
	w.Crash() // hard crash: WAL tail only, no checkpoint

	w2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Crash()
	if w2.Recovery().FromSnapshot {
		t.Fatal("test expects WAL-only recovery, found a checkpoint")
	}
	loginApp(t, w2)
	resp = w2.HandleRequest(httpd.NewRequest("POST", "/login"))
	if resp.Status != 200 {
		t.Fatalf("post-crash login failed: %d %s (cursor WAL records not replayed?)", resp.Status, resp.Body)
	}
	if got := resp.SetCookies["sid"]; got == firstSid {
		t.Fatalf("post-crash login re-issued recovered sid %q", got)
	}
	if got := w2.NewBrowser().ClientID; got == firstClient {
		t.Fatalf("post-crash browser re-issued recovered client ID %q", got)
	}
	res, _, err := w2.DB.Exec("SELECT COUNT(*) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsInt() != 2 {
		t.Fatalf("sessions = %d, want 2", res.FirstValue().AsInt())
	}
}

// TestBrowserSeedStreamResumes: browser identities drawn after a restart
// must not collide with recovered ones (the deployment-level half of the
// seeded-RNG restart issue).
func TestBrowserSeedStreamResumes(t *testing.T) {
	dir := t.TempDir()
	dur := store.Options{SyncEveryAppend: true}
	w := buildWarpDur(t, dir, 1, dur)
	b1 := w.NewBrowser()
	b1.Open("/?author=ann&msg=hi")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := buildWarpDur(t, dir, 1, dur)
	defer w2.Crash()
	b2 := w2.NewBrowser()
	if b2.ClientID == b1.ClientID {
		t.Fatalf("post-restart browser re-issued recovered client ID %q", b2.ClientID)
	}
}

// TestStaleCodeDetectedAfterRestart: a deployment checkpointed while
// running patched (v2) code, reopened with only v1 registered, must
// report the stale file and refuse repairs other than re-patching the
// stale file itself.
func TestStaleCodeDetectedAfterRestart(t *testing.T) {
	dir := t.TempDir()
	w := buildWarpDur(t, dir, 1, store.Options{SyncEveryAppend: true})
	b := w.NewBrowser()
	b.Open("/?author=ann&msg=hello")
	patch := app.Version{Entry: guestbookHandler(true), Note: "sanitize"}
	if _, err := w.RetroPatch("guestbook.php", patch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := buildWarpDur(t, dir, 1, store.Options{SyncEveryAppend: true}) // registers v1 only
	defer w2.Crash()
	stale := w2.StaleFiles()
	if len(stale) != 1 || stale[0] != "guestbook.php" {
		t.Fatalf("StaleFiles = %v, want [guestbook.php]", stale)
	}

	// Any repair that would re-execute runs through the stale handler is
	// refused with a diagnosis.
	if _, err := w2.UndoVisit(b.ClientID, 1, true); err == nil ||
		!strings.Contains(err.Error(), "guestbook.php") {
		t.Fatalf("repair with stale code: err = %v, want stale-code refusal naming the file", err)
	}

	// Re-applying the newer version is the fix, and is allowed through as
	// a retroactive patch of the stale file itself.
	if _, err := w2.RetroPatch("guestbook.php", patch); err != nil {
		t.Fatalf("re-patching the stale file: %v", err)
	}
	if stale := w2.StaleFiles(); len(stale) != 0 {
		t.Fatalf("StaleFiles after re-patch = %v, want none", stale)
	}
	// With versions caught up, other repairs run again.
	if _, err := w2.UndoVisit(b.ClientID, 1, true); err != nil {
		t.Fatalf("repair after re-patch: %v", err)
	}
}
