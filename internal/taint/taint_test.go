package taint

import (
	"testing"
)

// TestTable5Rows reproduces the shape of the paper's Table 5 on all four
// corruption bugs: the taint baseline needs administrator input and flags
// false positives under its no-false-negative policy (reduced by white-
// listing), while WARP recovers exactly, with no false positives and no
// user input.
func TestTable5Rows(t *testing.T) {
	for _, bug := range Bugs() {
		bug := bug
		t.Run(string(bug), func(t *testing.T) {
			cmp, err := RunComparison(bug, 30)
			if err != nil {
				t.Fatal(err)
			}
			if cmp.Corrupted == 0 {
				t.Fatal("bug corrupted nothing; scenario broken")
			}
			var flow, flowWL *PolicyResult
			for i := range cmp.Baseline {
				switch cmp.Baseline[i].Policy {
				case PolicyFlow:
					flow = &cmp.Baseline[i]
				case PolicyFlowWhitelist:
					flowWL = &cmp.Baseline[i]
				}
			}
			// Flow is the no-false-negative policy of Table 5.
			if flow.FalseNegatives != 0 {
				t.Fatalf("flow policy has false negatives: %+v", flow)
			}
			// ...but it over-flags.
			if flow.FalsePositives == 0 {
				t.Fatalf("flow policy should have false positives: %+v", flow)
			}
			// White-listing trims the false positives (Table 5's
			// before/after-slash numbers).
			if flowWL.FalsePositives > flow.FalsePositives {
				t.Fatalf("whitelisting increased FPs: %d > %d", flowWL.FalsePositives, flow.FalsePositives)
			}
			// WARP: exact recovery, no input.
			if cmp.WARPFalsePositives != 0 {
				t.Fatalf("WARP left %d rows differing from the oracle", cmp.WARPFalsePositives)
			}
			if cmp.WARPConflicts != 0 {
				t.Fatalf("WARP needed user input: %d conflicts", cmp.WARPConflicts)
			}
		})
	}
}

// TestDirectPolicyFalseNegatives: the blog bugs corrupt derived data (the
// stats digest); a policy that only flags the buggy request's own writes
// misses it — the baseline's false-negative failure mode.
func TestDirectPolicyFalseNegatives(t *testing.T) {
	for _, bug := range []Bug{BugLostVotes, BugLostComments} {
		cmp, err := RunComparison(bug, 20)
		if err != nil {
			t.Fatal(err)
		}
		var direct *PolicyResult
		for i := range cmp.Baseline {
			if cmp.Baseline[i].Policy == PolicyDirect {
				direct = &cmp.Baseline[i]
			}
		}
		if direct.FalseNegatives == 0 {
			t.Fatalf("%s: direct policy should miss the derived digest corruption", bug)
		}
	}
}

// TestWhitelistReducesFPs: on the gallery perms bug the whitelist cuts the
// false positives substantially (the paper's 82 → 10 shape).
func TestWhitelistReducesFPs(t *testing.T) {
	cmp, err := RunComparison(BugRemovePerms, 40)
	if err != nil {
		t.Fatal(err)
	}
	var flow, flowWL *PolicyResult
	for i := range cmp.Baseline {
		switch cmp.Baseline[i].Policy {
		case PolicyFlow:
			flow = &cmp.Baseline[i]
		case PolicyFlowWhitelist:
			flowWL = &cmp.Baseline[i]
		}
	}
	if flowWL.FalsePositives >= flow.FalsePositives {
		t.Fatalf("whitelist did not reduce FPs: %d vs %d", flowWL.FalsePositives, flow.FalsePositives)
	}
}
