// Package storefs is the store's pluggable filesystem seam. Every byte
// internal/store reads or writes — WAL segments, checkpoint delta
// files, manifests, directory fsyncs — goes through an FS, so a test
// can substitute an error-injecting implementation (faultfs) and prove
// the store's behavior under ENOSPC, failed fsyncs, and corrupted
// reads without ever touching a real disk fault.
//
// The interface is deliberately narrow: exactly the operations the
// store performs, nothing more. OS is the production implementation;
// a nil Options.FS selects it.
package storefs

import (
	"io"
	"os"
)

// File is one open file. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync fsyncs the file. A failed Sync leaves every write since the
	// last successful Sync in unknown durability state — the store
	// treats the failure as poisonous (see internal/store's shard
	// sealing), never as retryable.
	Sync() error
	// Truncate durably shortens the file to size bytes (the caller
	// still Syncs).
	Truncate(size int64) error
	// Stat returns file metadata (the store uses only Size).
	Stat() (os.FileInfo, error)
}

// FS is the filesystem the store runs on.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file (WAL segment replay, manifests).
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making renames, creates, and
	// removals within it durable.
	SyncDir(dir string) error
}

// OS is the real operating-system filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
