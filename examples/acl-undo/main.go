// acl-undo demonstrates user-initiated repair (§5.5): an administrator
// accidentally grants the wrong user access to a protected page, the user
// exploits it, and the administrator undoes the granting page visit. The
// user's illegitimate edit is reverted and a conflict is queued for them.
package main

import (
	"fmt"

	"warp"
	"warp/internal/webapp/wiki"
)

func main() {
	sys := warp.New(warp.Config{Seed: 11})
	app, err := wiki.Install(sys.Warp)
	must(err)
	must(app.CreateUser("admin", "pw-admin", true))
	must(app.CreateUser("eve", "pw-eve", false))
	must(app.CreatePage("Payroll", "salaries: confidential", true))

	admin := sys.NewBrowser()
	login(admin, "admin")

	fmt.Println("== the mistake ==")
	form := admin.Open("/acl.php?title=Payroll")
	must(form.TypeInto("user", "eve")) // meant to type "eva"…
	grant, err := form.Submit(0)
	must(err)
	fmt.Println("admin granted eve access to Payroll (visit", grant.Log.VisitID, ")")

	eve := sys.NewBrowser()
	login(eve, "eve")
	p := eve.Open("/edit.php?title=Payroll")
	must(p.TypeInto("content", "salaries: I SAW EVERYTHING - eve"))
	_, err = p.Submit(0)
	must(err)
	got, _ := app.PageContent("Payroll")
	fmt.Printf("eve exploited it: %q\n\n", got)

	fmt.Println("== the undo ==")
	report, err := sys.UndoVisit(admin.ClientID, grant.Log.VisitID, true)
	must(err)
	fmt.Println("repair:", report.String())

	got, _ = app.PageContent("Payroll")
	fmt.Printf("\nPayroll after undo: %q\n", got)
	fmt.Printf("eve still has access: %v\n", app.HasACL("Payroll", "eve"))
	for _, c := range sys.ConflictsFor(eve.ClientID) {
		fmt.Printf("queued conflict for eve: %s (%s)\n", c.Kind, c.Detail)
	}
}

func login(b *warp.Browser, user string) {
	p := b.Open("/login.php")
	must(p.TypeInto("user", user))
	must(p.TypeInto("password", "pw-"+user))
	_, err := p.Submit(0)
	must(err)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
