package bench

import (
	"strings"
	"testing"
	"time"

	"warp/internal/core"
)

// TestFormatTable6FixedInput pins the Table 6 layout on a fixed input, so
// the paper-style rendering cannot drift silently.
func TestFormatTable6FixedInput(t *testing.T) {
	rows := []Table6Row{
		{
			Workload:           "Reading",
			NoWARPVisitsPerSec: 1200.4, WARPVisitsPerSec: 900.26, DuringRepairPerSec: 700.91,
			BrowserBytesPerVisit: 512.2, AppBytesPerVisit: 1024.7, DBBytesPerVisit: 2048.1,
		},
		{
			Workload:           "Editing",
			NoWARPVisitsPerSec: 600, WARPVisitsPerSec: 450.5, DuringRepairPerSec: 300.049,
			BrowserBytesPerVisit: 1024, AppBytesPerVisit: 2048, DBBytesPerVisit: 4096,
		},
	}
	got := FormatTable6(rows)
	want := "Table 6: Overheads for users browsing and editing Wiki pages.\n" +
		"Workload      No WARP       WARP During repair    Browser B/v      App B/v       DB B/v\n" +
		"Reading      1200.4/s    900.3/s       700.9/s            512         1025         2048\n" +
		"Editing       600.0/s    450.5/s       300.0/s           1024         2048         4096\n"
	if got != want {
		t.Fatalf("FormatTable6 drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFormatTable3FixedInput pins the Table 3 layout.
func TestFormatTable3FixedInput(t *testing.T) {
	rows := []Table3Row{
		{Scenario: "Reflected XSS", InitialRepair: "Retroactive patching", Repaired: true, UsersConflict: 0},
		{Scenario: "ACL error", InitialRepair: "Admin-initiated", Repaired: false, UsersConflict: 1},
	}
	got := FormatTable3(rows)
	want := "Table 3: WARP repairs the attack scenarios listed in Table 2.\n" +
		"Attack scenario   Initial repair          Repaired?  # users with conflicts\n" +
		"Reflected XSS     Retroactive patching    yes        0\n" +
		"ACL error         Admin-initiated         NO         1\n"
	if got != want {
		t.Fatalf("FormatTable3 drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFormatTable7FixedInput exercises the Tables 7/8 renderer, including
// the duration rounding tiers.
func TestFormatTable7FixedInput(t *testing.T) {
	rows := []Table7Row{
		{
			Scenario:       "Stored XSS",
			VisitsReplayed: 4, VisitsTotal: 400,
			RunsReexecuted: 6, RunsTotal: 600,
			QueriesReexecuted: 40, QueryTotal: 4000,
			OriginalExec: 1500 * time.Millisecond,
			Repair: core.Timing{
				Total: 42 * time.Millisecond, Graph: 3 * time.Millisecond,
				Browser: 10 * time.Millisecond, DB: 12 * time.Millisecond,
				App: 9 * time.Millisecond, Ctrl: 8 * time.Millisecond,
			},
		},
	}
	got := FormatTable7("Table 7: WARP repairs attacks.", rows)
	for _, frag := range []string{
		"Table 7: WARP repairs attacks.",
		"Stored XSS",
		"4/400",
		"6/600",
		"40/4000",
		"1.5s",
		"42ms",
		"3ms/10ms/12ms/9ms/8ms",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("FormatTable7 output missing %q:\n%s", frag, got)
		}
	}
}

// TestRoundTiers pins the duration rounding used across table renderers.
func TestRoundTiers(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{2340 * time.Millisecond, "2.34s"},
		{1234 * time.Microsecond, "1.2ms"},
		{987 * time.Nanosecond, "1µs"},
	}
	for _, c := range cases {
		if got := round(c.in); got != c.want {
			t.Errorf("round(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
